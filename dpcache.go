// Package dpcache is a proxy-based accelerator for dynamically generated
// web content: a Go implementation of the Dynamic Proxy Cache / Back End
// Monitor architecture of Datta et al., "Proxy-Based Acceleration of
// Dynamically Generated Content on the World Wide Web" (SIGMOD 2002).
//
// The idea: cache dynamic *fragments* at a reverse proxy, but compute the
// page *layout* fresh at the origin on every request. Scripts at the
// origin mark cacheable code blocks with the tagging API; at run time the
// origin emits a small template — literal HTML plus GET("use cached slot
// k") and SET("store this content in slot k") instructions — and the proxy
// splices the page together from its in-memory fragment store. Layout and
// personalization stay fully dynamic while the origin link carries a
// fraction of the bytes.
//
// # Quick start
//
//	sys, _ := dpcache.NewSystem(dpcache.SystemConfig{Capacity: 1024}, dpcache.ModeCached)
//	page := dpcache.NewScript("hello", func(ctx *dpcache.Context) []dpcache.Block {
//		return []dpcache.Block{
//			dpcache.Static("head", "<html>"),
//			dpcache.Tagged("body", time.Minute, nil, renderBody),
//			dpcache.Static("tail", "</html>"),
//		}
//	})
//	sys.Register(page)
//	sys.Start()
//	defer sys.Close()
//	resp, _ := http.Get(sys.FrontURL() + "/page/hello")
//
// See examples/ for complete programs and EXPERIMENTS.md for the paper's
// evaluation regenerated against this implementation.
package dpcache

import (
	"time"

	"dpcache/internal/analytical"
	"dpcache/internal/bem"
	"dpcache/internal/coherency"
	"dpcache/internal/core"
	"dpcache/internal/dpc"
	"dpcache/internal/experiments"
	"dpcache/internal/fragstore"
	"dpcache/internal/repository"
	"dpcache/internal/routing"
	"dpcache/internal/script"
	"dpcache/internal/site"
	"dpcache/internal/tmpl"
	"dpcache/internal/workload"
)

// Core system types.
type (
	// System is a wired origin + BEM + DPC deployment.
	System = core.System
	// SystemConfig parameterizes NewSystem.
	SystemConfig = core.Config
	// Mode selects cached vs no-cache operation.
	Mode = core.Mode
	// Monitor is the Back End Monitor (cache directory + freeList).
	Monitor = bem.Monitor
	// MonitorStats summarizes BEM activity (hits, misses, evictions…).
	MonitorStats = bem.Stats
	// Proxy is the Dynamic Proxy Cache.
	Proxy = dpc.Proxy
)

// Fragment-store subsystem: the proxy's fragment memory is pluggable (see
// internal/fragstore). Select a backend per system via SystemConfig's
// StoreBackend/StoreShards/StoreByteBudget/StoreEviction fields, or build
// one directly with NewFragmentStore.
type (
	// FragmentStore is the fragment-memory contract shared by all
	// backends.
	FragmentStore = fragstore.FragmentStore
	// StoreConfig selects and parameterizes a store backend.
	StoreConfig = fragstore.Config
	// StoreStats is a point-in-time snapshot of store activity.
	StoreStats = fragstore.Stats
	// KeyedStore is the string-keyed, TTL-aware, globally byte-budgeted
	// sharded store backing the static and whole-page cache tiers.
	KeyedStore = fragstore.KeyedStore
	// KeyedStoreConfig parameterizes NewKeyedStore.
	KeyedStoreConfig = fragstore.KeyedConfig
)

// Store backend names for StoreConfig.Backend / SystemConfig.StoreBackend.
const (
	// StoreBackendSlot is the paper-faithful single-lock slot array.
	StoreBackendSlot = fragstore.BackendSlot
	// StoreBackendSharded is the sharded, byte-budgeted store with
	// pluggable eviction ("none", "lru", "gdsf").
	StoreBackendSharded = fragstore.BackendSharded
	// StoreBackendTiered is the disk-backed two-tier store: a keyed RAM
	// tier that demotes eviction victims into a heap file
	// (StoreConfig.DiskPath) replayed on restart, so a bounced proxy
	// serves warm. See SystemConfig.StoreDiskDir.
	StoreBackendTiered = fragstore.BackendTiered
)

// NewFragmentStore builds a standalone fragment store (most callers
// instead set SystemConfig.StoreBackend and let the system wire it).
func NewFragmentStore(cfg StoreConfig) (FragmentStore, error) { return fragstore.New(cfg) }

// NewKeyedStore builds a standalone keyed store (the proxy wires its own
// for the static and page tiers; see SystemConfig.PageCache*).
func NewKeyedStore(cfg KeyedStoreConfig) (*KeyedStore, error) { return fragstore.NewKeyed(cfg) }

// System modes.
const (
	// ModeCached runs the full DPC/BEM pipeline.
	ModeCached = core.ModeCached
	// ModeNoCache serves plain pages through a pass-through proxy (the
	// baseline configuration).
	ModeNoCache = core.ModeNoCache
)

// NewSystem builds a system; Register scripts, then Start it.
func NewSystem(cfg SystemConfig, mode Mode) (*System, error) {
	return core.NewSystem(cfg, mode)
}

// Scripting types: pages as run-time-composed blocks.
type (
	// Script generates one page with a per-request dynamic layout.
	Script = script.Script
	// Block is one code block of a script.
	Block = script.Block
	// Context carries per-request state (params, user, repository).
	Context = script.Context
	// RenderFunc writes a block's output.
	RenderFunc = script.RenderFunc
)

// NewScript builds a script from a name and a layout function.
func NewScript(name string, layout func(*Context) []Block) *Script {
	return &Script{Name: name, Layout: layout}
}

// Tagged marks a code block cacheable — the paper's tagging API. keyParams
// (optional) contributes the parameter list of the fragmentID; ttl zero
// means no time-based expiry.
func Tagged(name string, ttl time.Duration, keyParams func(*Context) string, render RenderFunc) Block {
	return script.Tagged(name, ttl, keyParams, render)
}

// Untagged wraps a non-cacheable code block.
func Untagged(name string, render RenderFunc) Block { return script.Untagged(name, render) }

// Static is an untagged block with fixed output.
func Static(name, html string) Block { return script.Static(name, html) }

// RenderPage runs a script to a full page without any caching — the
// reference output.
func RenderPage(s *Script, ctx *Context) ([]byte, error) { return script.RenderPage(s, ctx) }

// NewContext builds a request context (nil params allowed).
func NewContext(repo *Repo, userID string, params map[string]string) *Context {
	return script.NewContext(repo, userID, params)
}

// Content repository types.
type (
	// Repo is the versioned content repository backing scripts.
	Repo = repository.Repo
	// RepoKey identifies a row; fragments declare these as dependencies.
	RepoKey = repository.Key
	// LatencyModel simulates back-end query delay.
	LatencyModel = repository.LatencyModel
)

// Template codecs.
type (
	// Codec is a template wire format.
	Codec = tmpl.Codec
	// BinaryCodec is the compact production format (~10-byte tags).
	BinaryCodec = tmpl.Binary
	// TextCodec is the human-readable debug format.
	TextCodec = tmpl.Text
)

// Built-in sites (used by the examples and experiments).
var (
	// BuildBookstore seeds a repo and returns the dynamic-layout catalog
	// site of the paper's Section 4.3.2.
	BuildBookstore = site.BuildBookstore
	// BuildBrokerage seeds a repo and returns the stock-quote page of
	// Section 3.2.1 (three fragments, three lifetimes).
	BuildBrokerage = site.BuildBrokerage
	// BuildPortal seeds a repo and returns the case-study portal.
	BuildPortal = site.BuildPortal
	// BuildSynthetic seeds a repo and returns the Table 2-shaped
	// synthetic site plus its structural manifest.
	BuildSynthetic = site.BuildSynthetic
)

// Site configuration re-exports.
type (
	// SyntheticConfig parameterizes BuildSynthetic.
	SyntheticConfig = site.SyntheticConfig
	// PortalConfig parameterizes BuildPortal.
	PortalConfig = site.PortalConfig
)

// DefaultSynthetic mirrors Table 2; DefaultPortal mirrors the case study.
var (
	DefaultSynthetic = site.DefaultSynthetic
	DefaultPortal    = site.DefaultPortal
)

// Forward-proxy extension (paper Section 7).
type (
	// Router routes requests across edge DPCs with session affinity and
	// failover.
	Router = routing.Router
	// CoherencyHub broadcasts BEM invalidations to edge caches.
	CoherencyHub = coherency.Hub
	// Edge is a forward-deployed DPC created by System.StartEdge.
	Edge = core.Edge
	// StoreSubscriber applies hub invalidations to an edge's fragment
	// store.
	StoreSubscriber = coherency.StoreSubscriber
	// TierSubscriber keeps a keyed cache tier (page or static) coherent
	// with the hub via the proxy's dependency index.
	TierSubscriber = coherency.TierSubscriber
	// CoherencyEvent is one typed hub event (fragment, purge, or flush).
	CoherencyEvent = coherency.Event
)

// NewRouter returns an empty edge router.
func NewRouter() *Router { return routing.NewRouter(nil) }

// NewCoherencyHub wires a hub to a system's monitor.
func NewCoherencyHub(mon *Monitor) *CoherencyHub { return coherency.NewHub(mon) }

// NewStoreSubscriber wraps an edge proxy's store for hub subscription.
func NewStoreSubscriber(p *Proxy) *StoreSubscriber {
	return coherency.NewStoreSubscriber(p.Store())
}

// NewPageSubscriber wraps a proxy's whole-page tier (with its dependency
// index) for hub subscription, so fragment invalidations drop dependent
// pages the moment they happen. Returns nil when the proxy runs no page
// tier.
func NewPageSubscriber(p *Proxy) *TierSubscriber {
	pages := p.Pages()
	if pages == nil {
		return nil
	}
	sub := coherency.NewPageSubscriber(pages, p.DepIndex())
	sub.KeyPrefix = dpc.PageKeyPrefix
	return sub
}

// Analytical model (paper Section 5).
type (
	// AnalyticalParams mirrors Table 2.
	AnalyticalParams = analytical.Params
)

// BaselineParams returns Table 2's settings.
func BaselineParams() AnalyticalParams { return analytical.Baseline() }

// Experiments: regenerate the paper's tables and figures.
type (
	// Experiment is a runnable table/figure reproduction.
	ExperimentTable = experiments.Table
	// ExperimentOptions tunes live experiment runs.
	ExperimentOptions = experiments.Options
)

// RunExperiment regenerates one paper artifact by ID (table2, fig2a,
// fig2b, fig3a, result1, fig3b, fig5, fig6, casestudy).
func RunExperiment(id string, opts ExperimentOptions) (ExperimentTable, error) {
	run, err := experiments.ByID(id)
	if err != nil {
		return ExperimentTable{}, err
	}
	return run(opts)
}

// ExperimentIDs lists all regenerable artifacts in presentation order.
func ExperimentIDs() []string {
	var ids []string
	for _, e := range experiments.All() {
		ids = append(ids, e.ID)
	}
	return ids
}

// Workload generation.
type (
	// ZipfSampler draws page ranks with Zipfian popularity.
	ZipfSampler = workload.Zipf
	// LoadDriver issues closed-loop HTTP load.
	LoadDriver = workload.Driver
	// UserPool models the registered/anonymous visitor mix.
	UserPool = workload.UserPool
)

// NewZipf builds a Zipf sampler over n ranks.
func NewZipf(n int, alpha float64) (*ZipfSampler, error) { return workload.NewZipf(n, alpha) }

// NewUserPool builds a visitor population.
func NewUserPool(n int, registeredFraction float64) (*UserPool, error) {
	return workload.NewUserPool(n, registeredFraction)
}
