module dpcache

go 1.24
