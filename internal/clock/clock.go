// Package clock abstracts time so that TTL-driven cache logic is testable.
//
// Production code uses Real; tests use a Fake that only moves when told to.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current time.
type Clock interface {
	Now() time.Time
}

// Real is a Clock backed by the system clock.
type Real struct{}

// Now returns the current system time.
func (Real) Now() time.Time { return time.Now() }

// Fake is a manually advanced Clock. The zero value starts at the Unix
// epoch; use New or Set to pick a different origin. Fake is safe for
// concurrent use.
type Fake struct {
	mu  sync.Mutex
	now time.Time
}

// NewFake returns a Fake clock set to start.
func NewFake(start time.Time) *Fake { return &Fake{now: start} }

// Now returns the fake's current time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Advance moves the fake clock forward by d.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

// Set jumps the fake clock to t.
func (f *Fake) Set(t time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = t
}
