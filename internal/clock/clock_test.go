package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealNowAdvances(t *testing.T) {
	c := Real{}
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
}

func TestFakeStartsAtGivenTime(t *testing.T) {
	start := time.Date(2002, 6, 4, 0, 0, 0, 0, time.UTC) // SIGMOD 2002 opening day
	f := NewFake(start)
	if !f.Now().Equal(start) {
		t.Fatalf("Now() = %v, want %v", f.Now(), start)
	}
}

func TestFakeAdvance(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	f.Advance(90 * time.Second)
	if got := f.Now(); !got.Equal(time.Unix(90, 0)) {
		t.Fatalf("after Advance, Now() = %v, want %v", got, time.Unix(90, 0))
	}
}

func TestFakeSet(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	target := time.Unix(1e6, 0)
	f.Set(target)
	if !f.Now().Equal(target) {
		t.Fatalf("after Set, Now() = %v, want %v", f.Now(), target)
	}
}

func TestFakeZeroValueUsable(t *testing.T) {
	var f Fake
	f.Advance(time.Hour)
	if f.Now().IsZero() {
		t.Fatal("zero-value Fake did not advance")
	}
}

func TestFakeConcurrentAdvance(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.Advance(time.Second)
			_ = f.Now()
		}()
	}
	wg.Wait()
	if got := f.Now(); !got.Equal(time.Unix(50, 0)) {
		t.Fatalf("after 50 concurrent 1s advances, Now() = %v, want %v", got, time.Unix(50, 0))
	}
}
