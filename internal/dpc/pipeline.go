package dpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dpcache/internal/metrics"
	"dpcache/internal/trace"
)

// The request path is an explicit pipeline of named stages:
//
//	admin → static-cache → pagecache → coalesce → origin-fetch →
//	assemble → stale-fallback → respond
//
// Each stage owns a latency histogram (dpc.stage.<name>.latency) so
// per-stage cost is observable from /_dpc/stats, and each can short-circuit
// the rest of the pipeline (a static hit jumps straight to respond; a
// coalesced follower is served its leader's page). Every served response —
// hit, miss, coalesced, bypass, streamed — is counted exactly once, in the
// respond stage.

// stageOutcome directs the pipeline runner after a stage returns.
type stageOutcome int

const (
	// stageNext falls through to the next stage.
	stageNext stageOutcome = iota
	// stageRespond jumps forward to the respond stage.
	stageRespond
	// stageDone reports the response fully handled; the pipeline stops.
	stageDone
)

// Stage is one named step of the proxy's request pipeline.
type Stage struct {
	// Name identifies the stage in metrics and /_dpc/stats.
	Name string
	hist *metrics.Histogram
	run  func(*reqState) (stageOutcome, error)
}

func (p *Proxy) newStage(name string, run func(*reqState) (stageOutcome, error)) *Stage {
	return &Stage{
		Name: name,
		//dpclint:ignore metriccatalog stage names come from pipelineStageNames, which MetricCatalog enumerates and TestMetricsDocumented asserts against the stage list
		hist: p.reg.Histogram("dpc.stage." + name + ".latency"),
		run:  run,
	}
}

// reqState carries one request through the pipeline.
type reqState struct {
	w     http.ResponseWriter
	r     *http.Request
	start time.Time

	// trace is the request's root span and span the current stage's child
	// span; both are nil (and every use a no-op) when tracing is off.
	trace *trace.Span
	span  *trace.Span

	// Response under construction.
	body       []byte // buffered page (nil when streamed)
	ctype      string
	cacheState string // STATIC, PAGE, MISS, COALESCE-FOLLOWER, or BYPASS
	streamed   bool   // body (or part of it) already reached the client

	// reqBody is the client's request body, buffered once so the
	// stale-fallback retry can replay it to the origin.
	reqBody []byte

	// resp is the open origin response handed from origin-fetch to
	// assemble (template mode only).
	resp *http.Response

	// staleRefs, when set by assemble, routes the request through the
	// stale-fallback stage.
	staleRefs []StaleRef

	// flight is non-nil while this request leads a coalesced fetch.
	flight *flight

	// pageKey/pageCapture are set by the pagecache stage on a cacheable
	// miss: w is wrapped so the outgoing response is teed aside, and
	// respond files it under pageKey.
	pageKey     string
	pageCapture *pageCapture
	// pageETag is the stored entity tag of a page-tier hit; respond
	// relays it so clients can revalidate conditionally next time.
	pageETag string
	// depRefs are the fragment references whose bytes flowed into this
	// response (assembly only); fillPageCache records them as dependency
	// edges and re-checks them against invalidation tombstones.
	depRefs []string
	// depEpoch snapshots the dependency index's flush generation when the
	// capture began; a flush in between voids the fill.
	depEpoch uint64
	// pageUncacheable records that the origin's response headers forbade
	// page caching (no-store/no-cache/private or Set-Cookie); the proxy
	// strips origin headers before the client sees them, so this is
	// decided at fetch time, not from the capture.
	pageUncacheable bool
	// staticFilled records that origin-fetch stored this response in the
	// static tier, so the page tier need not duplicate it.
	staticFilled bool

	// admitRelease releases the admission stage's in-flight token
	// (idempotent; nil when the stage took none). Called in respond and
	// fail — the token covers the request's whole origin-bound lifetime.
	admitRelease func()
	// originCancel releases the leader's detached origin context (see
	// originRequest): it cancels the fetch if still running and frees the
	// client-disconnect watcher. Idempotent; nil for non-leaders.
	originCancel func()
}

// --- admin ---

func (p *Proxy) stageAdmin(rs *reqState) (stageOutcome, error) {
	if !strings.HasPrefix(rs.r.URL.Path, AdminPrefix) {
		return stageNext, nil
	}
	p.adminOnce.Do(p.initAdmin)
	p.admin.ServeHTTP(rs.w, rs.r)
	return stageDone, nil
}

// --- static-cache ---

func (p *Proxy) stageStaticCache(rs *reqState) (stageOutcome, error) {
	if p.static == nil || (rs.r.Method != http.MethodGet && rs.r.Method != http.MethodHead) {
		return stageNext, nil
	}
	if p.admit != nil && isReval(rs.r.Context()) {
		// A background revalidation exists to refresh the tiers; serving
		// it from cache would refresh nothing.
		return stageNext, nil
	}
	var (
		body  []byte
		ctype string
		ok    bool
	)
	if p.admit != nil {
		// Keep expired entries resident: the admission stage may serve
		// them stale under pressure (see KeyedStore.GetKeep).
		body, ctype, ok = p.static.GetKeep(staticKey(rs.r))
	} else {
		body, ctype, ok = p.static.Get(staticKey(rs.r))
	}
	if !ok {
		rs.span.Event(trace.KindMiss, "static", "", 0)
		return stageNext, nil
	}
	p.reg.Counter("dpc.static_hits").Inc()
	rs.span.Event(trace.KindHit, "static", "", int64(len(body)))
	rs.body, rs.ctype, rs.cacheState = body, ctype, "STATIC"
	return stageRespond, nil
}

// --- coalesce ---

func (p *Proxy) stageCoalesce(rs *reqState) (stageOutcome, error) {
	if p.flights == nil || !coalescable(rs.r) {
		return stageNext, nil
	}
	f, leader, fol := p.flights.join(flightKey(rs.r), rs.r.Method)
	if leader {
		rs.flight = f
		rs.span.Event(trace.KindRole, "coalesce", "leader", int64(f.id))
		return stageNext, nil
	}
	if f == nil {
		// Method mismatch: a GET cannot be served from a HEAD-led flight
		// (the leader's response has no body). Fetch independently.
		rs.span.Event(trace.KindMiss, "coalesce", "method-mismatch", 0)
		return stageNext, nil
	}
	if fol == nil {
		// The flight sealed (broadcast buffer over its byte cap) before we
		// arrived: the replay window is gone, so fetch independently.
		p.reg.Counter("dpc.coalesce_overflows").Inc()
		rs.span.Event(trace.KindMiss, "coalesce", "sealed", int64(f.id))
		return stageNext, nil
	}
	if rs.r.Method == http.MethodHead && f.method == http.MethodGet {
		// HEAD rides the GET broadcast: it needs only the flight's
		// committed headers, never the body bytes.
		rs.span.Event(trace.KindRole, "coalesce", "head-follower", int64(f.id))
		return p.serveHeadFollower(rs, f, fol)
	}
	rs.span.Event(trace.KindRole, "coalesce", "follower", int64(f.id))
	if rs.pageCapture != nil {
		// The leader is filling this page key; buffering a duplicate
		// through the follower's tee would be copied and dropped.
		rs.pageCapture.discard()
	}
	return p.serveFollower(rs, f, fol)
}

// serveHeadFollower serves a HEAD request from a GET leader's broadcast:
// one origin fetch satisfies both methods. It waits for the flight to
// close cleanly — only then is the page length exact — and replicates the
// committed headers with no body. An aborted flight falls back to the
// follower's own fetch (nothing was committed).
func (p *Proxy) serveHeadFollower(rs *reqState, f *flight, fol *follower) (stageOutcome, error) {
	defer f.detach(fol)
	ctx := rs.r.Context()
	stop := context.AfterFunc(ctx, f.wake)
	defer stop()
	c := f.awaitClose(fol, func() bool { return ctx.Err() != nil })
	if ctx.Err() != nil {
		return stageDone, nil // client gone; nothing left to serve
	}
	if c.state != flightDone {
		p.reg.Counter("dpc.coalesce_fallbacks").Inc()
		rs.span.Event(trace.KindMiss, "coalesce", "leader-aborted", 0)
		return stageNext, nil
	}
	h := rs.w.Header()
	ctype := c.ctype
	if ctype == "" {
		ctype = "text/html; charset=utf-8"
	}
	clen := c.total
	if clen == 0 && c.clen > 0 {
		clen = c.clen // bodyless leader response: its declared length
	}
	h.Set("Content-Type", ctype)
	h.Set("Content-Length", strconv.FormatInt(clen, 10))
	h.Set("Via", "dpcache-dpc/1.0")
	h.Set("X-Cache", "COALESCE-FOLLOWER")
	rs.w.WriteHeader(http.StatusOK)
	rs.streamed = true // headers committed; respond must not write a body
	rs.cacheState = "COALESCE-FOLLOWER"
	p.reg.Counter("dpc.coalesced").Inc()
	p.reg.Counter("dpc.coalesce_head_shared").Inc()
	return stageRespond, nil
}

// serveFollower streams a flight to one parked request: replay the chunks
// already buffered, then live chunks as the leader appends them, until the
// flight closes. The follower's first byte goes out as soon as the leader
// has produced one — it does not wait for the completed page.
func (p *Proxy) serveFollower(rs *reqState, f *flight, fol *follower) (stageOutcome, error) {
	defer f.detach(fol)
	ctx := rs.r.Context()
	stop := context.AfterFunc(ctx, f.wake)
	defer stop()
	cancelled := func() bool { return ctx.Err() != nil }
	bufp := copyBufPool.Get().(*[]byte)
	defer copyBufPool.Put(bufp)
	committed := false
	commit := func(c flightChunk) {
		h := rs.w.Header()
		ctype := c.ctype
		if ctype == "" {
			ctype = "text/html; charset=utf-8"
		}
		h.Set("Content-Type", ctype)
		if c.state == flightDone {
			// The whole page is already buffered: its length is exact.
			clen := c.total
			if clen == 0 && c.clen > 0 {
				clen = c.clen // bodyless response (HEAD): leader's declared length
			}
			h.Set("Content-Length", strconv.FormatInt(clen, 10))
		}
		h.Set("Via", "dpcache-dpc/1.0")
		h.Set("X-Cache", "COALESCE-FOLLOWER")
		rs.w.WriteHeader(http.StatusOK)
		committed = true
		rs.streamed = true
		rs.cacheState = "COALESCE-FOLLOWER"
	}
	for {
		c := f.next(fol, *bufp, cancelled)
		if cancelled() {
			return stageDone, nil // client gone; nothing left to serve
		}
		if c.state == flightAborted {
			// Terminal states outrank buffered bytes: an aborted flight's
			// buffer is a torn prefix, and a follower that has not
			// committed must never be served any of it.
			if committed {
				// Part of the leader's page already reached our client;
				// the only honest signal left is an aborted connection.
				return stageDone, fmt.Errorf("dpc: coalesced leader aborted mid-stream")
			}
			// Nothing committed: fetch independently instead of amplifying
			// the leader's failure to every parked request.
			p.reg.Counter("dpc.coalesce_fallbacks").Inc()
			rs.span.Event(trace.KindMiss, "coalesce", "leader-aborted", 0)
			return stageNext, nil
		}
		if c.overrun {
			// We fell more than the buffer cap behind the leader and our
			// unread bytes were dropped to bound the flight's memory.
			if committed {
				return stageDone, fmt.Errorf("dpc: follower overran the coalesce broadcast buffer")
			}
			p.reg.Counter("dpc.coalesce_overflows").Inc()
			rs.span.Event(trace.KindMiss, "coalesce", "overrun", 0)
			return stageNext, nil
		}
		if c.n > 0 {
			if !committed {
				commit(c)
			}
			if _, err := rs.w.Write((*bufp)[:c.n]); err != nil {
				return stageDone, nil // client write failed mid-stream
			}
			if fl, ok := rs.w.(http.Flusher); ok {
				fl.Flush()
			}
			continue
		}
		if c.state == flightDone {
			if !committed {
				commit(c) // empty page or bodyless response
			}
			p.reg.Counter("dpc.coalesced").Inc()
			return stageRespond, nil
		}
		// flightOpen with no bytes: spurious wakeup.
	}
}

// finishFlight closes the leader's flight, releasing its followers. A
// buffered leader (nothing streamed yet) publishes its complete page as one
// chunk first; a streaming leader has already broadcast every chunk through
// its spoolWriter or streamPlain. Safe to call when the request leads no
// flight.
func (p *Proxy) finishFlight(rs *reqState, err error) {
	if rs.flight == nil {
		return
	}
	f := rs.flight
	rs.flight = nil
	if err == nil && !rs.streamed {
		f.publishHeaders(rs.ctype, -1)
		f.append(rs.body)
	}
	p.flights.finish(f, err != nil)
}

// --- origin-fetch ---

// maxForwardBody bounds the request-body bytes buffered for replay.
const maxForwardBody = 8 << 20

// forwardedHeaders are the client headers relayed to the origin. Hop-by-hop
// headers and Accept-Encoding (the proxy must see templates uncompressed)
// are deliberately absent.
var forwardedHeaders = []string{
	"X-User", "Cookie", "Accept", "Accept-Language", "Authorization",
	"Content-Type", "Referer", "User-Agent", "X-Requested-With",
}

// originRequest forwards the client's method, body, and relevant headers to
// the origin and returns the (status-200) response. A non-nil bypassStale
// forces a plain non-template response and reports the stale slots so the
// BEM invalidates them.
func (p *Proxy) originRequest(rs *reqState, bypassStale []StaleRef) (*http.Response, error) {
	r := rs.r
	if rs.reqBody == nil && r.Body != nil && (r.ContentLength != 0 || len(r.TransferEncoding) > 0) {
		b, err := io.ReadAll(io.LimitReader(r.Body, maxForwardBody+1))
		if err != nil {
			return nil, fmt.Errorf("reading request body: %w", err)
		}
		if len(b) > maxForwardBody {
			return nil, fmt.Errorf("request body exceeds %d bytes", maxForwardBody)
		}
		rs.reqBody = b
	}
	var body io.Reader
	if rs.reqBody != nil {
		body = bytes.NewReader(rs.reqBody)
	}
	ctx := r.Context()
	if f := rs.flight; f != nil {
		// A coalesce leader fetches on behalf of every follower, so its
		// origin context must not die with its own client: detach it, and
		// re-arm cancellation only when the client disconnects with no
		// followers attached (then nobody is left to drain for). A leader
		// whose client goes away mid-flight keeps draining the origin and
		// broadcasting to committed followers (see streamPlain and
		// spoolWriter.send) instead of aborting the flight.
		if rs.originCancel != nil {
			rs.originCancel() // a previous fetch's watcher (bypass retry)
		}
		dctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
		stop := context.AfterFunc(ctx, func() {
			if f.waiterCount() == 0 {
				cancel()
			}
		})
		rs.originCancel = func() { stop(); cancel() }
		ctx = dctx
	}
	req, err := http.NewRequestWithContext(ctx, r.Method,
		p.cfg.OriginURL+r.URL.RequestURI(), body)
	if err != nil {
		return nil, err
	}
	for _, h := range forwardedHeaders {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	if host, _, splitErr := net.SplitHostPort(r.RemoteAddr); splitErr == nil && host != "" {
		//dpclint:ignore headerkey X-Forwarded-For is appended to the outbound forwarding chain only; it never selects a response, so it cannot cross-serve
		if prior := r.Header.Get("X-Forwarded-For"); prior != "" {
			host = prior + ", " + host
		}
		req.Header.Set("X-Forwarded-For", host)
	}
	req.Header.Set(headerCapable, "1")
	if rs.trace.Sampled() {
		// Propagate the trace id so a downstream dpc hop (edge → interior
		// proxy) stitches its trace to this one. Deliberately not part of
		// forwardedHeaders: it must never enter the coalesce key.
		req.Header.Set(trace.Header, rs.trace.TraceID())
	}
	if bypassStale != nil {
		req.Header.Set(headerBypass, "1")
		if s := FormatStaleRefs(bypassStale); s != "" {
			req.Header.Set(headerStale, s)
		}
	}
	t0 := time.Now()
	resp, err := p.client.Do(req)
	if a := p.admit; a != nil {
		a.observe(time.Since(t0))
	}
	if err != nil {
		if a := p.admit; a != nil && negEligible(r, err) {
			if a.negFill(flightKey(r)) {
				p.reg.Counter("dpc.negcache_fills").Inc()
			}
		}
		return nil, fmt.Errorf("origin fetch: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if a := p.admit; a != nil && negEligible(r, nil) {
			if a.negFill(flightKey(r)) {
				p.reg.Counter("dpc.negcache_fills").Inc()
			}
		}
		return nil, fmt.Errorf("origin status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	return resp, nil
}

func (p *Proxy) stageOriginFetch(rs *reqState) (stageOutcome, error) {
	resp, err := p.originRequest(rs, nil)
	if err != nil {
		return stageNext, err
	}
	if rs.pageCapture != nil && !pageCacheable(resp.Header) {
		rs.pageUncacheable = true
		rs.pageCapture.discard()
		rs.span.Event(trace.KindBypass, "page", "origin-uncacheable", 0)
	}
	ctype := resp.Header.Get("Content-Type")
	codecName := resp.Header.Get(headerTemplate)
	if rs.span != nil {
		shape := "template"
		if codecName == "" {
			shape = "plain"
		}
		rs.span.Event(trace.KindInfo, "origin", shape, resp.ContentLength)
	}
	if codecName == "" {
		// Plain response: pass through untouched, caching it by URL when
		// the origin explicitly allows (static content only — templates
		// and bypass pages never carry Cache-Control).
		defer resp.Body.Close()
		p.reg.Counter("dpc.plain_passthrough").Inc()
		var ttl time.Duration
		if p.static != nil && rs.r.Method == http.MethodGet {
			var varied bool
			ttl, varied = cacheableStatic(resp)
			if varied {
				// Cacheable by Cache-Control but varying on a header the
				// static key does not fold in: a URL-keyed entry would
				// serve one variant to every client.
				p.reg.Counter("dpc.static_uncacheable_vary").Inc()
			}
		}
		rs.ctype, rs.cacheState = ctype, "MISS"
		// Spool-free passthrough: origin→client with a pooled copy
		// buffer instead of materializing the body, teeing each chunk
		// into the flight broadcast for any followers. Only buffer when
		// the body must be retained for the static cache.
		if p.cfg.Stream && ttl <= 0 {
			if err := p.streamPlain(rs, resp); err != nil {
				return stageNext, err
			}
			return stageRespond, nil
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return stageNext, err
		}
		if ttl > 0 {
			p.static.Put(staticKey(rs.r), body, ctype, ttl)
			rs.staticFilled = true
			rs.span.Event(trace.KindFill, "static", "", int64(len(body)))
			if rs.pageCapture != nil {
				rs.pageCapture.discard() // the static tier owns this body now
			}
		}
		rs.body = body
		return stageRespond, nil
	}
	if codecName != p.asm.codec.Name() {
		resp.Body.Close()
		return stageNext, fmt.Errorf("origin codec %q does not match proxy codec %q",
			codecName, p.asm.codec.Name())
	}
	rs.resp, rs.ctype, rs.cacheState = resp, ctype, "MISS"
	return stageNext, nil
}

// streamPlain copies a passthrough body straight to the client, teeing
// each chunk into the flight broadcast when this request leads one.
// Headers are committed at the first body byte — or at clean EOF, so an
// empty-bodied response (HEAD, 0-length GET) still goes out with the
// origin's real Content-Length instead of falling through to writePage and
// having it clobbered. An error before any byte still yields a clean 502.
func (p *Proxy) streamPlain(rs *reqState, resp *http.Response) error {
	h := rs.w.Header()
	ctype := rs.ctype
	if ctype == "" {
		ctype = "text/html; charset=utf-8"
	}
	h.Set("Content-Type", ctype)
	if resp.ContentLength >= 0 {
		h.Set("Content-Length", strconv.FormatInt(resp.ContentLength, 10))
	}
	h.Set("Via", "dpcache-dpc/1.0")
	h.Set("X-Cache", rs.cacheState)
	if rs.flight != nil {
		rs.flight.publishHeaders(ctype, resp.ContentLength)
	}
	bufp := copyBufPool.Get().(*[]byte)
	defer copyBufPool.Put(bufp)
	buf := *bufp
	clientGone := false
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if !rs.streamed {
				rs.w.WriteHeader(http.StatusOK)
				rs.streamed = true
			}
			if clientGone {
				// Drain mode: the client is gone but followers are still
				// parked on this flight, so keep reading the origin and
				// broadcasting complete chunks. The dead client's writer
				// is still fed (errors ignored) so the page-capture tee
				// stays complete and the fill can happen.
				if rs.flight != nil {
					rs.flight.append(buf[:n])
				}
				_, _ = rs.w.Write(buf[:n])
			} else {
				wn, werr := rs.w.Write(buf[:n])
				if rs.flight != nil {
					rs.flight.append(buf[:wn])
				}
				if werr != nil || wn < n {
					if rs.flight != nil && rs.flight.waiterCount() > 0 {
						// The leader's client disconnected mid-body with
						// followers attached: drain the origin for them
						// instead of aborting the flight they committed to.
						clientGone = true
						p.reg.Counter("dpc.coalesce_leader_drains").Inc()
						if wn < n {
							rs.flight.append(buf[wn:n])
						}
						continue
					}
					if werr != nil {
						return werr
					}
					return io.ErrShortWrite
				}
			}
		}
		switch err {
		case nil:
		case io.EOF:
			if !rs.streamed {
				rs.w.WriteHeader(http.StatusOK)
				rs.streamed = true
			}
			return nil
		default:
			return err
		}
	}
}

// --- assemble ---

func (p *Proxy) recordAssembleStats(st AssembleStats) {
	p.reg.Counter("dpc.template_bytes").Add(st.TemplateBytes)
	p.reg.Counter("dpc.page_bytes").Add(st.PageBytes)
	p.reg.Counter("dpc.gets").Add(int64(st.Gets))
	p.reg.Counter("dpc.sets").Add(int64(st.Sets))
	if st.ParallelGets > 0 {
		p.reg.Counter("dpc.plancache_parallel_gets").Add(int64(st.ParallelGets))
	}
}

func (p *Proxy) stageAssemble(rs *reqState) (stageOutcome, error) {
	resp := rs.resp
	rs.resp = nil
	defer resp.Body.Close()

	if !p.cfg.Stream {
		// Snapshot the dependency index's flush generation before assembly
		// reads any fragment, so an assembled-static fill can detect a
		// fabric flush racing this response (see fillStaticAssembled).
		var staticEpoch uint64
		if p.depix != nil {
			staticEpoch = p.depix.Epoch()
		}
		var page bytes.Buffer
		stats, err := p.assembleTrace(&page, resp.Body, rs.span)
		p.recordAssembleStats(stats)
		if err != nil {
			if errors.Is(err, ErrStale) {
				rs.staleRefs = stats.Stale
				return stageNext, nil
			}
			return stageNext, err
		}
		p.reg.Counter("dpc.assembled").Inc()
		rs.body = page.Bytes()
		if rs.pageKey != "" {
			rs.depRefs = refIDs(stats.Refs)
		}
		p.fillStaticAssembled(rs, resp, stats.Refs, staticEpoch)
		return stageRespond, nil
	}

	// Streaming: output is held in a bounded look-ahead spool (staleness
	// caught inside it — unset slots in any mode, generation mismatches
	// in strict mode — aborts to a clean bypass), then streams straight
	// to the client, with every post-spool chunk teed into the flight
	// broadcast so followers stream it live.
	sw := newSpoolWriter(rs, p.spool)
	sw.drains = p.reg.Counter("dpc.coalesce_leader_drains")
	defer sw.release()
	stats, err := p.assembleTrace(sw, resp.Body, rs.span)
	p.recordAssembleStats(stats)
	if err != nil {
		if errors.Is(err, ErrStale) && !sw.committed {
			// Clean abort-to-bypass: nothing reached the client, and
			// nothing entered the flight broadcast (the spool holds
			// uncommitted bytes back from both).
			rs.staleRefs = stats.Stale
			return stageNext, nil
		}
		if sw.committed {
			rs.streamed = true // the runner aborts the torn response
			if errors.Is(err, ErrStale) {
				// The page is torn, but the BEM must still learn about
				// the stale slots or the next template repeats the same
				// doomed GET and every request aborts forever.
				p.reg.Counter("dpc.stream_aborts").Inc()
				p.reportStaleAsync(rs.r.Context(), rs.r.URL.RequestURI(), stats.Stale)
			}
		}
		return stageNext, err
	}
	if err := sw.flush(); err != nil {
		rs.streamed = sw.committed
		return stageNext, err
	}
	rs.streamed = true
	if rs.pageKey != "" {
		rs.depRefs = refIDs(stats.Refs)
	}
	p.reg.Counter("dpc.assembled").Inc()
	p.reg.Counter("dpc.streamed").Inc()
	return stageRespond, nil
}

// fillStaticAssembled files a buffered assembled page into the static
// tier when the origin explicitly opted the template's result in
// (Cache-Control: max-age on the template response; see
// cacheableAssembled) and the request carries no identity the page could
// have been personalized on. The paper's rule that dynamic pages are
// never URL-keyed stays the default — this path exists only for origins
// that declare an assembled page cacheable. Unlike a plain static fill
// the entry is fragment-composed, so its dependency edges are recorded
// under the static key and the static-tier subscriber drops it the
// moment a source fragment dies. epoch is the dependency index's flush
// generation snapshotted before assembly read any fragment; a flush in
// between voids the fill. Streaming assembly never files here — the
// assembled bytes are not retained.
func (p *Proxy) fillStaticAssembled(rs *reqState, resp *http.Response, refs []StaleRef, epoch uint64) {
	if p.static == nil || rs.r.Method != http.MethodGet || !anonymousSession(rs.r) {
		return
	}
	ttl, varied := cacheableAssembled(resp)
	if ttl <= 0 {
		if varied {
			p.reg.Counter("dpc.static_uncacheable_vary").Inc()
		}
		return
	}
	key := staticKey(rs.r)
	ids := refIDs(refs)
	if p.depix != nil {
		// Record the edges before the entry becomes servable, so an
		// invalidation landing right after the Put finds them and deletes
		// the entry.
		for _, ref := range ids {
			p.depix.Record(ref, key)
		}
	}
	p.static.Put(key, rs.body, rs.ctype, ttl)
	if p.depix != nil && (p.depix.AnyInvalid(ids) || p.depix.Epoch() != epoch) {
		// Fill/invalidate race, exactly as in fillPageCache: a source
		// fragment died (or the tier flushed) while this page was being
		// assembled. The subscriber's Delete may have run before our Put
		// and missed it; its tombstone/epoch cannot have — unfile.
		p.static.Delete(key)
		p.reg.Counter("dpc.static_invalidations").Inc()
		rs.span.Event(trace.KindInvalidated, "static", "fill-race", 0)
		return
	}
	rs.staticFilled = true
	p.reg.Counter("dpc.static_assembled_fills").Inc()
	rs.span.Event(trace.KindFill, "static", "assembled", int64(len(rs.body)))
}

// reportStaleAsync delivers a stale report to the BEM when no bypass fetch
// will carry it (a torn streamed response): a fire-and-forget request with
// the bypass and stale headers whose body is discarded. Without this the
// directory keeps believing the slots are cached and every later template
// repeats the doomed GETs.
func (p *Proxy) reportStaleAsync(ctx context.Context, requestURI string, refs []StaleRef) {
	// The report must outlive the request that spawned it — the client
	// connection is already torn, so the request context is dead or
	// dying — but it should keep the request's values (trace id) rather
	// than detach entirely: WithoutCancel sheds the cancellation, the
	// timeout below re-bounds the work.
	ctx = context.WithoutCancel(ctx)
	go func() {
		ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.cfg.OriginURL+requestURI, nil)
		if err != nil {
			return
		}
		req.Header.Set(headerCapable, "1")
		req.Header.Set(headerBypass, "1")
		req.Header.Set(headerStale, FormatStaleRefs(refs))
		resp, err := p.client.Do(req)
		if err != nil {
			return
		}
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		p.reg.Counter("dpc.stale_reports").Inc()
	}()
}

// --- stale-fallback ---

func (p *Proxy) stageStaleFallback(rs *reqState) (stageOutcome, error) {
	if rs.staleRefs == nil {
		return stageRespond, nil
	}
	// Recover with a bypass fetch, reporting the stale slots so the BEM
	// invalidates them and the next template carries fresh SETs instead
	// of looping here.
	p.reg.Counter("dpc.stale_fallbacks").Inc()
	if rs.span != nil {
		rs.span.Event(trace.KindStaleBypass, "fragment",
			FormatStaleRefs(rs.staleRefs), int64(len(rs.staleRefs)))
	}
	resp, err := p.originRequest(rs, rs.staleRefs)
	if err != nil {
		return stageNext, err
	}
	defer resp.Body.Close()
	if rs.pageCapture != nil && !pageCacheable(resp.Header) {
		rs.pageUncacheable = true
		rs.pageCapture.discard()
	}
	rs.ctype, rs.cacheState = resp.Header.Get("Content-Type"), "BYPASS"
	if name := resp.Header.Get(headerTemplate); name != "" {
		// An origin that ignores the bypass header still gets one
		// buffered assembly; a second staleness is a hard error rather
		// than a retry loop.
		if name != p.asm.codec.Name() {
			return stageNext, fmt.Errorf("origin codec %q does not match proxy codec %q",
				name, p.asm.codec.Name())
		}
		var page bytes.Buffer
		stats, err := p.assembleTrace(&page, resp.Body, rs.span)
		p.recordAssembleStats(stats)
		if err != nil {
			return stageNext, err
		}
		p.reg.Counter("dpc.assembled").Inc()
		rs.body = page.Bytes()
		if rs.pageKey != "" {
			rs.depRefs = refIDs(stats.Refs)
		}
		return stageRespond, nil
	}
	p.reg.Counter("dpc.plain_passthrough").Inc()
	if rs.pageCapture != nil {
		// A plain bypass page was generated by the origin straight from
		// the repository: it is composed of fragments the proxy cannot
		// see, so it carries no dependency edges and the invalidation
		// fabric could never drop it — a filed copy would serve stale
		// fragment bytes until the TTL. Serve it uncached.
		rs.pageCapture.discard()
	}
	if p.cfg.Stream {
		// The bypass page streams to the client through the same teeing
		// path as a first-try passthrough — followers parked on this
		// flight receive the recovery page live instead of waiting for
		// an io.ReadAll of the whole body.
		if err := p.streamPlain(rs, resp); err != nil {
			return stageNext, err
		}
		return stageRespond, nil
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return stageNext, err
	}
	rs.body = body
	return stageRespond, nil
}

// --- respond ---

func (p *Proxy) stageRespond(rs *reqState) (stageOutcome, error) {
	p.finishFlight(rs, nil)
	if rs.originCancel != nil {
		rs.originCancel()
		rs.originCancel = nil
	}
	if rs.admitRelease != nil {
		rs.admitRelease()
		rs.admitRelease = nil
	}
	if !rs.streamed {
		if rs.pageETag != "" {
			// A page-tier hit replays its stored strong ETag so the
			// client's next revisit can revalidate into a 304.
			rs.w.Header().Set("ETag", rs.pageETag)
		}
		p.writePage(rs.w, rs.body, rs.ctype, rs.cacheState)
	}
	p.fillPageCache(rs)
	// Every served response — hit, miss, coalesced, bypass, streamed —
	// is counted here and nowhere else.
	p.reg.Counter("dpc.requests").Inc()
	p.reg.Histogram("dpc.latency").Observe(time.Since(rs.start))
	return stageDone, nil
}
