package dpc

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dpcache/internal/tmpl"
)

// clientKey builds the coalesce key a real Go http.Client request for path
// produces (the client stamps its default User-Agent, which the key now
// covers).
func clientKey(method, path string) string {
	r := httptest.NewRequest(method, path, nil)
	r.Header.Set("User-Agent", "Go-http-client/1.1")
	return coalesceKey(r)
}

// The coalesce key must cover every header forwarded to the origin except
// the provably response-invariant ones — otherwise two clients whose
// requests differ in a forwarded header the origin varies on would share a
// page. This is the stated invariant of coalesceIdentityHeaders, checked
// against forwardedHeaders itself so the two lists cannot drift apart.
func TestCoalesceKeyCoversForwardedHeaders(t *testing.T) {
	base := httptest.NewRequest(http.MethodGet, "/page/x", nil)
	baseKey := coalesceKey(base)
	for _, h := range forwardedHeaders {
		r := base.Clone(base.Context())
		r.Header.Set(h, "distinct-value")
		changed := coalesceKey(r) != baseKey
		if coalesceInvariantHeaders[h] {
			if changed {
				t.Errorf("invariant header %s changed the coalesce key", h)
			}
			continue
		}
		if !changed {
			t.Errorf("forwarded header %s does not affect the coalesce key: "+
				"origin responses varying on it would be cross-served", h)
		}
	}
	// X-Forwarded-For is synthesized per connection and deliberately NOT
	// part of the key (see coalesceIdentityHeaders): origins varying on
	// client IP must not enable coalescing. Assert the exclusion stays
	// deliberate rather than silently flipping.
	r := base.Clone(base.Context())
	r.Header.Set("X-Forwarded-For", "203.0.113.9")
	if coalesceKey(r) != baseKey {
		t.Error("X-Forwarded-For entered the coalesce key; it would disable coalescing entirely")
	}
}

// blockingOrigin serves plain responses and blocks the first request
// mid-body so tests can park a leader: it writes head, flushes, waits for
// release, then writes tail. Subsequent requests get head+tail at once.
type blockingOrigin struct {
	head, tail []byte
	entered    chan struct{} // closed when the first request has flushed head
	release    chan struct{} // close to let the first request finish
	fetches    atomic.Int64
}

func newBlockingOrigin(head, tail []byte) *blockingOrigin {
	return &blockingOrigin{
		head: head, tail: tail,
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
}

func (o *blockingOrigin) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		n := o.fetches.Add(1)
		if n == 1 {
			_, _ = w.Write(o.head)
			w.(http.Flusher).Flush()
			close(o.entered)
			<-o.release
		} else {
			_, _ = w.Write(o.head)
		}
		_, _ = w.Write(o.tail)
	}
}

// A follower that joins while the leader's fetch is mid-flight must get its
// first byte from the broadcast before the leader's page completes, and its
// final bytes must be identical to the leader's.
func TestFollowerStreamsLeaderInProgressPage(t *testing.T) {
	head := []byte(strings.Repeat("H", 4096))
	tail := []byte(strings.Repeat("T", 4096))
	o := newBlockingOrigin(head, tail)
	origin := httptest.NewServer(o.handler())
	defer origin.Close()

	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.Coalesce = true
		c.Stream = true
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	leaderBody := make(chan []byte, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/page/live")
		if err != nil {
			leaderBody <- nil
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		leaderBody <- b
	}()
	<-o.entered // origin flushed head and is now blocked

	// Join as a follower while the leader is mid-page.
	followerFirst := make(chan byte, 1)
	followerRest := make(chan []byte, 1)
	followerHdr := make(chan string, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/page/live")
		if err != nil {
			close(followerFirst)
			return
		}
		defer resp.Body.Close()
		followerHdr <- resp.Header.Get("X-Cache")
		br := bufio.NewReader(resp.Body)
		b, err := br.ReadByte()
		if err != nil {
			close(followerFirst)
			return
		}
		followerFirst <- b
		rest, _ := io.ReadAll(br)
		followerRest <- append([]byte{b}, rest...)
	}()

	// The follower's first byte must arrive while the origin — and thus
	// the leader's page — is still unfinished.
	select {
	case b, ok := <-followerFirst:
		if !ok {
			t.Fatal("follower request failed before first byte")
		}
		if b != 'H' {
			t.Fatalf("follower first byte = %q, want 'H'", b)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower got no byte while the leader was mid-page: live attach is not streaming")
	}
	if got := <-followerHdr; got != "COALESCE-FOLLOWER" {
		t.Fatalf("follower X-Cache = %q, want COALESCE-FOLLOWER", got)
	}

	close(o.release)
	want := append(append([]byte{}, head...), tail...)
	if got := <-leaderBody; string(got) != string(want) {
		t.Fatalf("leader body corrupted (%d bytes, want %d)", len(got), len(want))
	}
	if got := <-followerRest; string(got) != string(want) {
		t.Fatalf("follower bytes diverged from leader bytes (%d vs %d)", len(got), len(want))
	}
	if got := o.fetches.Load(); got != 1 {
		t.Fatalf("origin saw %d fetches, want 1 (mid-flight joiner must not re-fetch)", got)
	}
	if got := p.Registry().Counter("dpc.coalesced").Value(); got != 1 {
		t.Fatalf("dpc.coalesced = %d, want 1", got)
	}
}

// Followers that disconnect while parked must leave the flight: a departed
// follower must not count as a waiter nor pin the broadcast buffer.
func TestCancelledFollowerDetaches(t *testing.T) {
	o := newBlockingOrigin(nil, []byte("page")) // first request blocks before any body byte
	origin := httptest.NewServer(o.handler())
	defer origin.Close()

	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.Coalesce = true
		c.Stream = true
	})

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		req := httptest.NewRequest(http.MethodGet, "/page/cancel", nil)
		p.ServeHTTP(httptest.NewRecorder(), req)
	}()
	<-o.entered

	key := coalesceKey(httptest.NewRequest(http.MethodGet, "/page/cancel", nil))
	ctx, cancel := context.WithCancel(context.Background())
	followerDone := make(chan struct{})
	go func() {
		defer close(followerDone)
		req := httptest.NewRequest(http.MethodGet, "/page/cancel", nil).WithContext(ctx)
		p.ServeHTTP(httptest.NewRecorder(), req)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for p.flights.waiting(key) != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("follower never attached (waiting=%d)", p.flights.waiting(key))
		}
		time.Sleep(time.Millisecond)
	}

	cancel()
	select {
	case <-followerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled follower never returned")
	}
	// The leader is still in flight; the departed follower must be gone.
	if got := p.flights.waiting(key); got != 0 {
		t.Fatalf("waiting = %d after follower cancellation, want 0 (waiter leak)", got)
	}

	close(o.release)
	<-leaderDone
}

// When the leader aborts before producing a byte, parked followers must
// fall back to their own origin fetch instead of inheriting the failure or
// serving a torn page.
func TestLeaderAbortFollowersFallBack(t *testing.T) {
	const followers = 3
	var fetches atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fetches.Add(1) == 1 {
			close(entered)
			<-release
			panic(http.ErrAbortHandler) // leader's fetch dies without a byte
		}
		fmt.Fprint(w, "recovered page")
	}))
	defer origin.Close()

	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.Coalesce = true
		c.Stream = true
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	type result struct {
		status int
		cache  string
		body   string
		err    error
	}
	results := make(chan result, followers+1)
	get := func() {
		resp, err := http.Get(ts.URL + "/page/abort")
		if err != nil {
			results <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		results <- result{status: resp.StatusCode, cache: resp.Header.Get("X-Cache"), body: string(b), err: err}
	}
	go get() // leader
	<-entered
	key := clientKey(http.MethodGet, "/page/abort")
	for i := 0; i < followers; i++ {
		go get()
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.flights.waiting(key) < followers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d followers parked", p.flights.waiting(key))
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	var recovered, failed int
	for i := 0; i < followers+1; i++ {
		res := <-results
		switch {
		case res.err == nil && res.status == http.StatusOK && res.body == "recovered page":
			recovered++
		default:
			failed++ // the leader's own request fails; that is expected
		}
	}
	if recovered != followers {
		t.Fatalf("%d followers recovered via their own fetch, want %d", recovered, followers)
	}
	if failed != 1 {
		t.Fatalf("%d requests failed, want exactly 1 (the leader)", failed)
	}
	if got := p.Registry().Counter("dpc.coalesce_fallbacks").Value(); got != followers {
		t.Fatalf("dpc.coalesce_fallbacks = %d, want %d", got, followers)
	}
}

// A leader abort after followers have already been fed broadcast bytes must
// not end in a clean response for anyone: committed followers abort their
// connections rather than serve a torn page.
func TestLeaderAbortMidStreamTearsCommittedFollowers(t *testing.T) {
	var fetches atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	head := strings.Repeat("x", 8192)
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fetches.Add(1) == 1 {
			fmt.Fprint(w, head)
			w.(http.Flusher).Flush()
			close(entered)
			<-release
			panic(http.ErrAbortHandler) // torn mid-body
		}
		fmt.Fprint(w, head+"tail")
	}))
	defer origin.Close()

	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.Coalesce = true
		c.Stream = true
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	leaderErr := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/page/torn")
		if err == nil {
			_, err = io.ReadAll(resp.Body)
			resp.Body.Close()
		}
		leaderErr <- err
	}()
	<-entered

	// Follower attaches and receives the head.
	resp, err := http.Get(ts.URL + "/page/torn")
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadByte(); err != nil {
		t.Fatalf("follower never received the broadcast head: %v", err)
	}
	close(release)
	if _, err := io.ReadAll(br); err == nil {
		t.Fatal("committed follower read a clean EOF from a torn flight")
	}
	resp.Body.Close()
	if err := <-leaderErr; err == nil {
		t.Fatal("leader read a clean EOF from a torn origin response")
	}
}

// A follower arriving after the flight's broadcast buffer exceeded its cap
// must degrade to its own origin fetch — the replay window is gone — while
// the leader streams on unaffected.
func TestLateJoinerPastBufferCapRefetches(t *testing.T) {
	head := []byte(strings.Repeat("H", 8192))
	tail := []byte("tail")
	o := newBlockingOrigin(head, tail)
	origin := httptest.NewServer(o.handler())
	defer origin.Close()

	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.Coalesce = true
		c.Stream = true
		c.CoalesceBufferBytes = 1024 // seals after the 8KB head
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	leaderBody := make(chan []byte, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/page/cap")
		if err != nil {
			leaderBody <- nil
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		leaderBody <- b
	}()
	<-o.entered

	// The flight seals once the head clears the 1KB cap; the seal races
	// the leader's client write by a few instructions, so poll.
	deadline := time.Now().Add(5 * time.Second)
	var cache string
	for {
		resp, err := http.Get(ts.URL + "/page/cap")
		if err != nil {
			t.Fatal(err)
		}
		cache = resp.Header.Get("X-Cache")
		if cache == "MISS" {
			b, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if want := string(head) + string(tail); string(b) != want {
				t.Fatalf("late joiner body = %d bytes, want %d", len(b), len(want))
			}
			break
		}
		resp.Body.Close() // attached before the seal; abandon and retry
		if time.Now().After(deadline) {
			t.Fatalf("late joiner never degraded to its own fetch (X-Cache=%s)", cache)
		}
		time.Sleep(time.Millisecond)
	}
	if got := p.Registry().Counter("dpc.coalesce_overflows").Value(); got == 0 {
		t.Fatal("dpc.coalesce_overflows never counted the sealed-flight refusal")
	}
	if got := o.fetches.Load(); got < 2 {
		t.Fatalf("origin saw %d fetches, want >= 2 (late joiner must fetch for itself)", got)
	}

	close(o.release)
	if got := <-leaderBody; string(got) != string(head)+string(tail) {
		t.Fatalf("leader body corrupted (%d bytes)", len(got))
	}
}

// The stale-fallback bypass page must stream through the flight broadcast
// too: followers parked behind a leader whose template went stale receive
// the recovery page without a second origin fetch.
func TestStaleBypassStreamsToFollowers(t *testing.T) {
	var templateFetches, bypassFetches atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(headerBypass) != "" {
			bypassFetches.Add(1)
			fmt.Fprint(w, "bypass page")
			return
		}
		if templateFetches.Add(1) == 1 {
			close(entered)
			<-release
		}
		var b strings.Builder
		enc := tmpl.Binary{}.NewEncoder(&b)
		_ = enc.Literal([]byte("<html>"))
		_ = enc.Get(7, 3) // never SET: stale, caught in the spool
		_ = enc.Flush()
		w.Header().Set(headerTemplate, "binary")
		fmt.Fprint(w, b.String())
	}))
	defer origin.Close()

	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.Coalesce = true
		c.Stream = true
		c.Strict = true
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	type result struct {
		body  string
		cache string
		err   error
	}
	results := make(chan result, 2)
	get := func() {
		resp, err := http.Get(ts.URL + "/page/stalecoalesce")
		if err != nil {
			results <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		results <- result{body: string(b), cache: resp.Header.Get("X-Cache"), err: err}
	}
	go get() // leader
	<-entered
	key := clientKey(http.MethodGet, "/page/stalecoalesce")
	go get() // follower
	deadline := time.Now().Add(5 * time.Second)
	for p.flights.waiting(key) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("follower never parked")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	for i := 0; i < 2; i++ {
		res := <-results
		if res.err != nil {
			t.Fatal(res.err)
		}
		if res.body != "bypass page" {
			t.Fatalf("body = %q, want the bypass page", res.body)
		}
	}
	if got := bypassFetches.Load(); got != 1 {
		t.Fatalf("origin saw %d bypass fetches, want 1 (follower must ride the leader's recovery)", got)
	}
}

// An aborted flight's buffered bytes are a torn prefix: a follower that
// has not committed anything to its client must fall back to its own
// fetch, never be served the prefix.
func TestAbortedFlightPrefixNotServedToUncommittedFollower(t *testing.T) {
	p, err := New(Config{
		OriginURL: "http://127.0.0.1:0", Capacity: 8, PublishInterval: -1,
		Coalesce: true, Stream: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	f, leader, _ := p.flights.join("k", http.MethodGet)
	if !leader {
		t.Fatal("first join must lead")
	}
	f.publishHeaders("text/html", -1)
	f.append([]byte("torn prefix"))
	_, l2, fol := p.flights.join("k", http.MethodGet)
	if l2 || fol == nil {
		t.Fatal("second join must attach as a follower")
	}
	p.flights.finish(f, true) // leader aborts with bytes already buffered

	rec := httptest.NewRecorder()
	rs := &reqState{w: rec, r: httptest.NewRequest(http.MethodGet, "/page/x", nil)}
	out, err := p.serveFollower(rs, f, fol)
	if err != nil || out != stageNext {
		t.Fatalf("serveFollower = (%v, %v), want fallback to own fetch", out, err)
	}
	if rs.streamed || rec.Body.Len() != 0 {
		t.Fatalf("torn prefix reached the uncommitted follower: %q", rec.Body.String())
	}
	if got := p.Registry().Counter("dpc.coalesce_fallbacks").Value(); got != 1 {
		t.Fatalf("dpc.coalesce_fallbacks = %d, want 1", got)
	}
}

// The buffer cap must bound retained memory even against a follower whose
// client never reads: the laggard is shed (overrun) instead of pinning the
// whole page.
func TestStalledFollowerIsShedAndBufferStaysBounded(t *testing.T) {
	const max = 1024
	f := newFlight("k", http.MethodGet, max)
	fol := f.attach()
	if fol == nil {
		t.Fatal("attach failed on a fresh flight")
	}
	f.publishHeaders("text/html", -1)
	chunk := []byte(strings.Repeat("x", 512))
	for i := 0; i < 20; i++ { // 10 KB through a 1 KB cap, cursor frozen at 0
		f.append(chunk)
	}
	f.mu.Lock()
	bufLen, total := len(f.buf), f.total
	f.mu.Unlock()
	if total != 20*512 {
		t.Fatalf("total = %d", total)
	}
	if bufLen > max+len(chunk) {
		t.Fatalf("buffer retained %d bytes despite the %d cap: a stalled follower pins memory", bufLen, max)
	}
	c := f.next(fol, make([]byte, 64), func() bool { return false })
	if !c.overrun {
		t.Fatal("laggard follower was not shed (overrun)")
	}
	if c.n != 0 {
		t.Fatal("shed follower was handed bytes from a trimmed window")
	}
	f.close(false)
}

// BenchmarkCoalesceFollowerTTFB contrasts the completed-page handoff
// (buffered coalescing: the follower's first byte waits for the leader's
// whole page) against live attach (streaming: the follower's first byte
// tracks the leader's first chunk). Handoff TTFB scales with page size;
// live-attach TTFB must not.
func BenchmarkCoalesceFollowerTTFB(b *testing.B) {
	for _, mode := range []struct {
		name   string
		stream bool
	}{
		{"handoff", false},
		{"live", true},
	} {
		for _, pageKB := range []int{64, 512, 2048} {
			b.Run(fmt.Sprintf("%s/page=%dKB", mode.name, pageKB), func(b *testing.B) {
				benchFollowerTTFB(b, mode.stream, pageKB)
			})
		}
	}
}

type ttfbGate struct {
	headSent chan struct{}
	release  chan struct{}
}

func benchFollowerTTFB(b *testing.B, stream bool, pageKB int) {
	head := []byte(strings.Repeat("H", 512))
	tail := []byte(strings.Repeat("T", pageKB*1024-len(head)))
	var gate atomic.Pointer[ttfbGate]
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		g := gate.Load()
		_, _ = w.Write(head)
		w.(http.Flusher).Flush()
		close(g.headSent)
		<-g.release
		_, _ = w.Write(tail)
	}))
	defer origin.Close()

	p, err := New(Config{
		OriginURL: origin.URL, Capacity: 8, PublishInterval: -1,
		Coalesce: true, Stream: stream,
		CoalesceBufferBytes: 8 << 20, // never seal: isolate the handoff-vs-live contrast
	})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	ts := httptest.NewServer(p)
	defer ts.Close()

	var totalTTFB time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := &ttfbGate{headSent: make(chan struct{}), release: make(chan struct{})}
		gate.Store(g)
		path := fmt.Sprintf("/page/ttfb-%d", i)
		leaderDone := make(chan error, 1)
		go func() {
			resp, err := http.Get(ts.URL + path)
			if err == nil {
				_, err = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			leaderDone <- err
		}()
		<-g.headSent

		ttfb := make(chan time.Duration, 1)
		folErr := make(chan error, 1) // carries only failures
		folDone := make(chan struct{})
		go func() {
			defer close(folDone)
			t0 := time.Now()
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				folErr <- err
				return
			}
			defer resp.Body.Close()
			br := bufio.NewReader(resp.Body)
			if _, err := br.ReadByte(); err != nil {
				folErr <- err
				return
			}
			ttfb <- time.Since(t0)
			_, _ = io.Copy(io.Discard, br)
		}()

		if stream {
			// Live attach: the follower's first byte must arrive while the
			// origin is still parked on the head — the tail does not exist
			// yet, which is the whole point.
			select {
			case d := <-ttfb:
				totalTTFB += d
			case err := <-folErr:
				b.Fatal(err)
			case <-time.After(10 * time.Second):
				b.Fatal("live-attach follower got no byte while the leader was mid-page")
			}
			close(g.release)
		} else {
			// Completed-page handoff: the follower cannot see a byte until
			// the whole page exists, so release the tail once it is parked.
			key := clientKey(http.MethodGet, path)
			for p.flights.waiting(key) < 1 {
				select {
				case err := <-folErr:
					b.Fatal(err)
				default:
					time.Sleep(50 * time.Microsecond)
				}
			}
			close(g.release)
			select {
			case d := <-ttfb:
				totalTTFB += d
			case err := <-folErr:
				b.Fatal(err)
			}
		}
		<-folDone
		if err := <-leaderDone; err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(totalTTFB.Nanoseconds())/float64(b.N), "ttfb-ns/op")
	}
}

// A HEAD request arriving while a GET fetch of the same resource is in
// flight must ride the GET broadcast: one origin fetch serves both, and
// the HEAD follower replicates the flight's committed headers with the
// exact final length and no body.
func TestHeadFollowerSharesGetFlight(t *testing.T) {
	const wantBody = "<html>shared page</html>"
	var fetches atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fetches.Add(1)
		close(entered)
		<-release
		fmt.Fprint(w, wantBody)
	}))
	defer origin.Close()
	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.Coalesce = true
		c.Stream = true
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	leaderDone := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/page/shared")
		if err == nil {
			_, err = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		leaderDone <- err
	}()
	<-entered

	// The HEAD must attach to the GET-normalized flight key.
	keyReq := httptest.NewRequest(http.MethodHead, "/page/shared", nil)
	keyReq.Header.Set("User-Agent", "Go-http-client/1.1")
	key := flightKey(keyReq)
	headDone := make(chan *http.Response, 1)
	headErr := make(chan error, 1)
	go func() {
		resp, err := http.Head(ts.URL + "/page/shared")
		if err != nil {
			headErr <- err
			return
		}
		resp.Body.Close()
		headDone <- resp
	}()
	deadline := time.Now().Add(5 * time.Second)
	for p.flights.waiting(key) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("HEAD never attached to the GET flight")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	if err := <-leaderDone; err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-headErr:
		t.Fatal(err)
	case resp := <-headDone:
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("HEAD status = %d", resp.StatusCode)
		}
		if got := resp.Header.Get("X-Cache"); got != "COALESCE-FOLLOWER" {
			t.Fatalf("HEAD X-Cache = %q, want COALESCE-FOLLOWER", got)
		}
		if got := resp.ContentLength; got != int64(len(wantBody)) {
			t.Fatalf("HEAD Content-Length = %d, want %d", got, len(wantBody))
		}
	}
	if got := fetches.Load(); got != 1 {
		t.Fatalf("origin saw %d fetches, want 1 (HEAD shared the GET flight)", got)
	}
	if got := p.Registry().Counter("dpc.coalesce_head_shared").Value(); got != 1 {
		t.Fatalf("dpc.coalesce_head_shared = %d, want 1", got)
	}
}

// The one unservable pairing: a GET arriving while a HEAD leads the key
// must fetch for itself (a HEAD response has no body to broadcast), and
// the HEAD flight must be left undisturbed.
func TestGetDoesNotRideHeadFlight(t *testing.T) {
	var fetches atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := fetches.Add(1)
		if n == 1 {
			close(entered)
			<-release
		}
		fmt.Fprint(w, "<html>page</html>")
	}))
	defer origin.Close()
	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.Coalesce = true
		c.Stream = true
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	headDone := make(chan error, 1)
	go func() {
		resp, err := http.Head(ts.URL + "/page/h")
		if err == nil {
			resp.Body.Close()
		}
		headDone <- err
	}()
	<-entered // a HEAD leads the flight and is parked inside the origin

	// The concurrent GET must not join it: it fetches independently and
	// completes even though the HEAD leader is still blocked.
	getDone := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/page/h")
		if err == nil {
			var b []byte
			b, err = io.ReadAll(resp.Body)
			resp.Body.Close()
			if err == nil && string(b) != "<html>page</html>" {
				err = fmt.Errorf("GET body = %q", b)
			}
		}
		getDone <- err
	}()
	select {
	case err := <-getDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("GET blocked behind the HEAD flight")
	}
	close(release)
	if err := <-headDone; err != nil {
		t.Fatal(err)
	}
	if got := fetches.Load(); got != 2 {
		t.Fatalf("origin saw %d fetches, want 2 (GET fetched independently)", got)
	}
}

// Regression: a coalesce leader whose OWN client disconnects mid-body
// must keep draining the origin for committed followers instead of
// tearing the flight. Before the fix, the leader's failed client write
// aborted the fetch, every committed follower was torn, and uncommitted
// ones refetched (origin saw 2+ fetches). Now the leader flips to drain
// mode (dpc.coalesce_leader_drains) and the follower receives the full
// page off one origin fetch.
func TestLeaderClientGoneKeepsDrainingForFollowers(t *testing.T) {
	head := []byte(strings.Repeat("H", 8192))
	tail := []byte(strings.Repeat("T", 256<<10)) // several copy-buffer chunks: the dead client's write must fail mid-drain
	o := newBlockingOrigin(head, tail)
	origin := httptest.NewServer(o.handler())
	defer origin.Close()

	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.Coalesce = true
		c.Stream = true
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	key := clientKey(http.MethodGet, "/page/drain")

	// Leader: a real client on a cancellable context, committed once the
	// flushed head arrives.
	lctx, lcancel := context.WithCancel(context.Background())
	defer lcancel()
	lreq, err := http.NewRequestWithContext(lctx, http.MethodGet, ts.URL+"/page/drain", nil)
	if err != nil {
		t.Fatal(err)
	}
	lresp, err := http.DefaultClient.Do(lreq)
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	<-o.entered
	lbuf := make([]byte, 1)
	if _, err := io.ReadFull(lresp.Body, lbuf); err != nil {
		t.Fatalf("leader first byte: %v", err)
	}

	// Follower: attaches to the flight and commits to the broadcast.
	fresp, err := http.Get(ts.URL + "/page/drain")
	if err != nil {
		t.Fatal(err)
	}
	defer fresp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for p.flights.waiting(key) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("follower never attached to the flight")
		}
		time.Sleep(time.Millisecond)
	}
	fr := bufio.NewReader(fresp.Body)
	if _, err := fr.ReadByte(); err != nil {
		t.Fatalf("follower first byte: %v", err)
	}
	if err := fr.UnreadByte(); err != nil {
		t.Fatal(err)
	}

	// The leader's client walks away; the origin then finishes the page.
	lcancel()
	time.Sleep(100 * time.Millisecond) // let the closed connection surface at the server
	close(o.release)

	body, err := io.ReadAll(fr)
	if err != nil {
		t.Fatalf("follower read after leader disconnect: %v", err)
	}
	want := string(head) + string(tail)
	if string(body) != want {
		t.Fatalf("follower body = %d bytes, want the full %d-byte page", len(body), len(want))
	}
	if got := o.fetches.Load(); got != 1 {
		t.Fatalf("origin saw %d fetches, want 1 (the flight must survive the leader's disconnect)", got)
	}
	deadline = time.Now().Add(5 * time.Second)
	for p.Registry().Counter("dpc.coalesce_leader_drains").Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("dpc.coalesce_leader_drains = %d, want 1",
				p.Registry().Counter("dpc.coalesce_leader_drains").Value())
		}
		time.Sleep(time.Millisecond)
	}
}
