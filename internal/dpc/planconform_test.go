package dpc

// Conformance suite for the compiled plan path: internal/tmplplan must be
// byte-identical and stats-identical to the streaming interpreter (the
// oracle in assembler.go) for every template shape, across both codecs,
// sequentially and under parallel prefetch.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dpcache/internal/tmpl"
	"dpcache/internal/tmplplan"
)

// seedFrag is a fragment pre-loaded into the store before a conformance run.
type seedFrag struct {
	key, gen uint32
	content  []byte
}

// confCase is one golden template: instructions plus the store state it
// runs against. Nested include bodies are encoded per codec via nest.
type confCase struct {
	name string
	ins  []tmpl.Instruction
	seed []seedFrag
	// nest maps an include key to the instructions of the nested
	// template stored under it (encoded per codec at seed time).
	nest map[uint32][]tmpl.Instruction
	// checkSets lists key/gen pairs whose post-run store content must
	// match between the two paths (SET side effects, incl. doomed runs).
	checkSets []StaleRef
}

func conformanceCases() []confCase {
	big := bytes.Repeat([]byte("x"), 4096)
	return []confCase{
		{name: "empty"},
		{name: "literal-only", ins: []tmpl.Instruction{
			{Op: tmpl.OpLiteral, Data: []byte("<html>static</html>")},
		}},
		{name: "set-then-get", ins: []tmpl.Instruction{
			{Op: tmpl.OpLiteral, Data: []byte("<a>")},
			{Op: tmpl.OpSet, Key: 3, Gen: 9, Data: []byte("FRAG")},
			{Op: tmpl.OpGet, Key: 3, Gen: 9},
			{Op: tmpl.OpLiteral, Data: []byte("</a>")},
		}, checkSets: []StaleRef{{Key: 3, Gen: 9}}},
		{name: "independent-gets", ins: []tmpl.Instruction{
			{Op: tmpl.OpGet, Key: 1, Gen: 1},
			{Op: tmpl.OpLiteral, Data: []byte("|")},
			{Op: tmpl.OpGet, Key: 2, Gen: 1},
			{Op: tmpl.OpLiteral, Data: []byte("|")},
			{Op: tmpl.OpGet, Key: 3, Gen: 1},
			{Op: tmpl.OpGet, Key: 4, Gen: 1},
			{Op: tmpl.OpGet, Key: 5, Gen: 1},
			{Op: tmpl.OpGet, Key: 1, Gen: 1}, // dup ref dedups
		}, seed: []seedFrag{
			{1, 1, []byte("one")}, {2, 1, []byte("two")}, {3, 1, []byte("three")},
			{4, 1, big}, {5, 1, []byte("five")},
		}},
		{name: "stale-dooms-but-sets-land", ins: []tmpl.Instruction{
			{Op: tmpl.OpLiteral, Data: []byte("head")},
			{Op: tmpl.OpGet, Key: 9, Gen: 3}, // unset: first stale
			{Op: tmpl.OpLiteral, Data: []byte("never")},
			{Op: tmpl.OpSet, Key: 5, Gen: 1, Data: []byte("landed")},
			{Op: tmpl.OpGet, Key: 8, Gen: 1}, // second stale
		}, checkSets: []StaleRef{{Key: 5, Gen: 1}}},
		{name: "strict-gen-mismatch", ins: []tmpl.Instruction{
			{Op: tmpl.OpGet, Key: 2, Gen: 7},
		}, seed: []seedFrag{{2, 6, []byte("old-gen")}}},
		{name: "nested-includes", ins: []tmpl.Instruction{
			{Op: tmpl.OpLiteral, Data: []byte("A")},
			{Op: tmpl.OpInclude, Key: 20, Gen: 1},
			{Op: tmpl.OpGet, Key: 1, Gen: 1},
		}, seed: []seedFrag{{1, 1, []byte("leaf")}},
			nest: map[uint32][]tmpl.Instruction{
				20: {
					{Op: tmpl.OpLiteral, Data: []byte("(")},
					{Op: tmpl.OpInclude, Key: 21, Gen: 1},
					{Op: tmpl.OpSet, Key: 6, Gen: 2, Data: []byte("nested-set")},
					{Op: tmpl.OpLiteral, Data: []byte(")")},
				},
				21: {
					{Op: tmpl.OpGet, Key: 1, Gen: 1},
				},
			}, checkSets: []StaleRef{{Key: 6, Gen: 2}}},
		{name: "include-stale", ins: []tmpl.Instruction{
			{Op: tmpl.OpLiteral, Data: []byte("A")},
			{Op: tmpl.OpInclude, Key: 20, Gen: 5}, // unset include slot
			{Op: tmpl.OpSet, Key: 7, Gen: 1, Data: []byte("after")},
		}, checkSets: []StaleRef{{Key: 7, Gen: 1}}},
		{name: "include-doomed-sets-still-land", ins: []tmpl.Instruction{
			{Op: tmpl.OpGet, Key: 9, Gen: 9}, // dooms the page up front
			{Op: tmpl.OpInclude, Key: 20, Gen: 1},
		}, nest: map[uint32][]tmpl.Instruction{
			20: {{Op: tmpl.OpSet, Key: 8, Gen: 4, Data: []byte("doomed-include-set")}},
		}, checkSets: []StaleRef{{Key: 8, Gen: 4}}},
	}
}

func seedConformance(t *testing.T, s *Store, codec tmpl.Codec, tc confCase) {
	t.Helper()
	for _, f := range tc.seed {
		if err := s.Set(f.key, f.gen, f.content); err != nil {
			t.Fatal(err)
		}
	}
	for key, ins := range tc.nest {
		// The include gen is whatever the template references; store
		// them under every gen the case uses (strict lookups must hit).
		for _, in := range append(append([]tmpl.Instruction{}, tc.ins...), flattenNest(tc.nest)...) {
			if in.Op == tmpl.OpInclude && in.Key == key {
				if err := s.Set(key, in.Gen, encodeTemplate(t, codec, ins)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func flattenNest(nest map[uint32][]tmpl.Instruction) []tmpl.Instruction {
	var out []tmpl.Instruction
	for _, ins := range nest {
		out = append(out, ins...)
	}
	return out
}

func TestPlanConformance(t *testing.T) {
	for _, codec := range []tmpl.Codec{tmpl.Binary{}, tmpl.Text{}} {
		for _, parallelism := range []int{1, 8} {
			for _, tc := range conformanceCases() {
				name := fmt.Sprintf("%s/par%d/%s", codec.Name(), parallelism, tc.name)
				t.Run(name, func(t *testing.T) {
					body := encodeTemplate(t, codec, tc.ins)

					// Oracle: the streaming interpreter on its own store.
					oracleStore, _ := NewStore(64)
					seedConformance(t, oracleStore, codec, tc)
					asm := NewAssembler(oracleStore, codec, true)
					var wantPage bytes.Buffer
					wantStats, wantErr := asm.Assemble(&wantPage, bytes.NewReader(body))

					// Compiled path on an identically seeded store, plans
					// resolved through the cache (as the proxy runs it).
					planStore, _ := NewStore(64)
					seedConformance(t, planStore, codec, tc)
					cache, err := tmplplan.NewCache(codec, tmplplan.CacheConfig{})
					if err != nil {
						t.Fatal(err)
					}
					ex := &tmplplan.Exec{
						Store: planStore, Strict: true, Codec: codec,
						Plans: cache, Parallelism: parallelism, MinParallelGets: 2,
					}
					plan, _, err := cache.Get(body)
					if err != nil {
						t.Fatalf("compile: %v", err)
					}
					var gotPage bytes.Buffer
					gotStats, gotErr := ex.Run(plan, &gotPage, nil)

					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("errors diverge: interpreter=%v compiled=%v", wantErr, gotErr)
					}
					if wantErr != nil && wantErr.Error() != gotErr.Error() {
						t.Fatalf("error text diverges:\ninterpreter %q\ncompiled    %q", wantErr, gotErr)
					}
					if !bytes.Equal(wantPage.Bytes(), gotPage.Bytes()) {
						t.Fatalf("pages diverge:\ninterpreter %q\ncompiled    %q", wantPage.String(), gotPage.String())
					}
					gotStats.ParallelGets = 0 // the one field allowed to differ
					if fmt.Sprintf("%+v", wantStats) != fmt.Sprintf("%+v", gotStats) {
						t.Fatalf("stats diverge:\ninterpreter %+v\ncompiled    %+v", wantStats, gotStats)
					}
					for _, ref := range tc.checkSets {
						w, wok := oracleStore.Get(ref.Key, ref.Gen, true)
						g, gok := planStore.Get(ref.Key, ref.Gen, true)
						if wok != gok || !bytes.Equal(w, g) {
							t.Fatalf("SET side effects diverge at %d:%d: interpreter (%q,%v) compiled (%q,%v)",
								ref.Key, ref.Gen, w, wok, g, gok)
						}
					}
				})
			}
		}
	}
}

// The plan path must be invisible end to end: a proxy with the plan cache
// enabled serves byte-identical pages, repeat templates hit the cache, and
// the plancache counters and /_dpc/stats section move.
func TestPlanCachePipeline(t *testing.T) {
	tmplBody := func() []byte {
		var buf bytes.Buffer
		enc := tmpl.Binary{}.NewEncoder(&buf)
		_ = enc.Literal([]byte("<html>"))
		_ = enc.Set(1, 1, []byte("planned page"))
		_ = enc.Get(1, 1)
		_ = enc.Literal([]byte("</html>"))
		_ = enc.Flush()
		return buf.Bytes()
	}()
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-DPC-Template", "binary")
		_, _ = w.Write(tmplBody)
	}))
	defer origin.Close()

	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.PlanCache = true
		c.Stream = false
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	const want = "<html>planned pageplanned page</html>"
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/page")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != want {
			t.Fatalf("request %d: body = %q, want %q", i, body, want)
		}
	}
	snap := p.Registry().Snapshot()
	if snap["dpc.plancache_misses"] != 1 || snap["dpc.plancache_compiles"] != 1 {
		t.Fatalf("misses=%d compiles=%d, want 1/1", snap["dpc.plancache_misses"], snap["dpc.plancache_compiles"])
	}
	if snap["dpc.plancache_hits"] != 2 {
		t.Fatalf("hits = %d, want 2", snap["dpc.plancache_hits"])
	}
	if p.Plans() == nil {
		t.Fatal("Plans() nil with PlanCache on")
	}
	if st := p.Plans().Stats(); st.Resident != 1 || st.Compiles != 1 {
		t.Fatalf("plan cache stats = %+v", st)
	}

	// The stats endpoint serves the plancache section.
	resp, err := http.Get(ts.URL + "/_dpc/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(stats), `"plancache"`) {
		t.Fatal("/_dpc/stats missing plancache section")
	}
}

// A HEAD request for a template response must produce an empty body with
// the same headers on the plan path — assembly still runs (SETs land).
func TestPlanCacheHeadEmptyBody(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		enc := tmpl.Binary{}.NewEncoder(&buf)
		_ = enc.Set(2, 5, []byte("head-set"))
		_ = enc.Flush()
		w.Header().Set("X-DPC-Template", "binary")
		if r.Method != http.MethodHead {
			_, _ = w.Write(buf.Bytes())
		}
	}))
	defer origin.Close()
	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.PlanCache = true
		c.Stream = false
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	resp, err := http.Head(ts.URL + "/page")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != 0 {
		t.Fatalf("HEAD: status %d body %q", resp.StatusCode, body)
	}
}

// Streams and oversized or corrupt templates fall back to the streaming
// interpreter; the page is identical to a plan-cache-off proxy's.
func TestPlanCacheFallbackCorrupt(t *testing.T) {
	// A valid binary prefix (the SET lands) followed by garbage: the
	// interpreter consumes the prefix and reports a decode error; the
	// plan path must do exactly the same through its fallback.
	var buf bytes.Buffer
	enc := tmpl.Binary{}.NewEncoder(&buf)
	_ = enc.Set(4, 2, []byte("prefix-set"))
	_ = enc.Flush()
	corrupt := append(buf.Bytes(), 0xFF, 0xFE, 0xFD)

	run := func(planCache bool) (int, string, bool) {
		origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("X-DPC-Template", "binary")
			_, _ = w.Write(corrupt)
		}))
		defer origin.Close()
		p := newTestProxy(t, origin.URL, func(c *Config) {
			c.PlanCache = planCache
			c.Stream = false
		})
		ts := httptest.NewServer(p)
		defer ts.Close()
		resp, err := http.Get(ts.URL + "/page")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		_, ok := p.Store().Get(4, 2, true)
		return resp.StatusCode, string(body), ok
	}
	offStatus, offBody, offSet := run(false)
	onStatus, onBody, onSet := run(true)
	if offStatus != onStatus || offBody != onBody || offSet != onSet {
		t.Fatalf("fallback diverges: off=(%d,%q,set=%v) on=(%d,%q,set=%v)",
			offStatus, offBody, offSet, onStatus, onBody, onSet)
	}
	if !onSet {
		t.Fatal("prefix SET did not land before the corrupt tail")
	}
}

// Enough independent GETs trigger the parallel prefetch, and the
// dpc.plancache_parallel_gets counter records them.
func TestPlanCacheParallelGetsCounter(t *testing.T) {
	var first bytes.Buffer
	enc := tmpl.Binary{}.NewEncoder(&first)
	for k := uint32(1); k <= 6; k++ {
		_ = enc.Set(k, 1, []byte(fmt.Sprintf("f%d", k)))
	}
	_ = enc.Flush()
	var second bytes.Buffer
	enc = tmpl.Binary{}.NewEncoder(&second)
	for k := uint32(1); k <= 6; k++ {
		_ = enc.Get(k, 1)
	}
	_ = enc.Flush()

	var phase int
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-DPC-Template", "binary")
		if r.URL.Path == "/seed" {
			_, _ = w.Write(first.Bytes())
			return
		}
		phase++
		_, _ = w.Write(second.Bytes())
	}))
	defer origin.Close()
	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.PlanCache = true
		c.PlanParallelism = 4
		c.Stream = false
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	for _, path := range []string{"/seed", "/page"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if got := p.Registry().Snapshot()["dpc.plancache_parallel_gets"]; got != 6 {
		t.Fatalf("dpc.plancache_parallel_gets = %d, want 6", got)
	}
}
