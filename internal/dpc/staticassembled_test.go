package dpc

// Assembled pages entering the static tier: a template response carrying
// an explicit Cache-Control max-age is the origin's opt-in to cache the
// assembled result like any static asset — filed under the static key
// with fragment dependency edges, so the invalidation fabric can drop it
// surgically when a composing fragment dies.

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"dpcache/internal/coherency"
	"dpcache/internal/tmpl"
)

// assembledStaticOrigin serves a template page (SET 1:1 + GET 1:1) with
// the given extra headers, counting fetches.
func assembledStaticOrigin(extra map[string]string) (*httptest.Server, *atomic.Int64) {
	var fetches atomic.Int64
	var buf bytes.Buffer
	enc := tmpl.Binary{}.NewEncoder(&buf)
	_ = enc.Literal([]byte("<html>"))
	_ = enc.Set(1, 1, []byte("assembled body"))
	_ = enc.Literal([]byte("</html>"))
	_ = enc.Flush()
	body := buf.Bytes()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fetches.Add(1)
		w.Header().Set("X-DPC-Template", "binary")
		for k, v := range extra {
			w.Header().Set(k, v)
		}
		_, _ = w.Write(body)
	}))
	return srv, &fetches
}

func assembledGet(t *testing.T, url string, hdr map[string]string) (string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b), resp.Header.Get("X-Cache")
}

func TestAssembledStaticFillServesStatic(t *testing.T) {
	origin, fetches := assembledStaticOrigin(map[string]string{"Cache-Control": "max-age=60"})
	defer origin.Close()
	p := newTestProxy(t, origin.URL, func(c *Config) { c.Stream = false; c.PlanCache = true })
	ts := httptest.NewServer(p)
	defer ts.Close()

	body1, state1 := assembledGet(t, ts.URL+"/page", nil)
	if state1 == "STATIC" {
		t.Fatalf("first request X-Cache = %q", state1)
	}
	if got := p.Registry().Snapshot()["dpc.static_assembled_fills"]; got != 1 {
		t.Fatalf("dpc.static_assembled_fills = %d, want 1", got)
	}
	body2, state2 := assembledGet(t, ts.URL+"/page", nil)
	if state2 != "STATIC" {
		t.Fatalf("second request X-Cache = %q, want STATIC", state2)
	}
	if body1 != body2 || body1 != "<html>assembled body</html>" {
		t.Fatalf("bodies: %q then %q", body1, body2)
	}
	if fetches.Load() != 1 {
		t.Fatalf("origin fetched %d times, want 1", fetches.Load())
	}
}

// A fragment invalidation through the fabric drops the assembled entry
// surgically: its dependency edges were recorded under the static key.
func TestAssembledStaticFragmentInvalidation(t *testing.T) {
	origin, fetches := assembledStaticOrigin(map[string]string{"Cache-Control": "max-age=60"})
	defer origin.Close()
	p := newTestProxy(t, origin.URL, func(c *Config) { c.Stream = false })
	ts := httptest.NewServer(p)
	defer ts.Close()

	assembledGet(t, ts.URL+"/page", nil)
	if _, state := assembledGet(t, ts.URL+"/page", nil); state != "STATIC" {
		t.Fatalf("warm X-Cache = %q, want STATIC", state)
	}

	// The same wiring core.ProxySubscribers uses for the static tier.
	sub := coherency.NewStaticSubscriber(p.Static().Cache, p.DepIndex())
	sub.KeyPrefix = StaticKeyPrefix
	dropped := p.Registry().Counter("dpc.static_invalidations")
	sub.OnDrop = func(n int) { dropped.Add(int64(n)) }

	sub.Apply(coherency.Event{Seq: 1, Kind: coherency.KindFragment, Key: 1, Gen: 1})
	if sub.Dropped() != 1 {
		t.Fatalf("subscriber dropped %d entries (fallbacks=%d), want surgical 1", sub.Dropped(), sub.Fallbacks())
	}
	if dropped.Value() != 1 {
		t.Fatalf("dpc.static_invalidations = %d, want 1", dropped.Value())
	}
	if _, state := assembledGet(t, ts.URL+"/page", nil); state == "STATIC" {
		t.Fatal("stale assembled entry served after its fragment was invalidated")
	}
	if fetches.Load() != 2 {
		t.Fatalf("origin fetched %d times, want 2 (refetched after invalidation)", fetches.Load())
	}
}

// Without the origin's explicit max-age, assembled pages never enter the
// static tier; identity-bearing requests never do either; a non-allowlisted
// Vary refuses the opt-in and counts it.
func TestAssembledStaticRefusals(t *testing.T) {
	for _, tc := range []struct {
		name    string
		extra   map[string]string
		reqHdr  map[string]string
		counter string
	}{
		{name: "no-opt-in"},
		{name: "identity", extra: map[string]string{"Cache-Control": "max-age=60"},
			reqHdr: map[string]string{"Cookie": "sid=1"}},
		{name: "vary", extra: map[string]string{"Cache-Control": "max-age=60", "Vary": "X-User"},
			counter: "dpc.static_uncacheable_vary"},
		{name: "private", extra: map[string]string{"Cache-Control": "private, max-age=60"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			origin, _ := assembledStaticOrigin(tc.extra)
			defer origin.Close()
			p := newTestProxy(t, origin.URL, func(c *Config) { c.Stream = false })
			ts := httptest.NewServer(p)
			defer ts.Close()

			assembledGet(t, ts.URL+"/page", tc.reqHdr)
			snap := p.Registry().Snapshot()
			if got := snap["dpc.static_assembled_fills"]; got != 0 {
				t.Fatalf("dpc.static_assembled_fills = %d, want 0", got)
			}
			if _, state := assembledGet(t, ts.URL+"/page", tc.reqHdr); state == "STATIC" {
				t.Fatal("refused page served STATIC")
			}
			if tc.counter != "" {
				if got := snap[tc.counter]; got != 1 {
					t.Fatalf("%s = %d, want 1", tc.counter, got)
				}
			}
		})
	}
}

// Plan-tier coherency: fragment events and purges are no-ops (plans hold
// no fragment bytes); plan-scoped and global flushes empty it; a sequence
// gap flushes conservatively.
func TestPlanSubscriber(t *testing.T) {
	origin, _ := assembledStaticOrigin(nil)
	defer origin.Close()
	p := newTestProxy(t, origin.URL, func(c *Config) { c.Stream = false; c.PlanCache = true })
	ts := httptest.NewServer(p)
	defer ts.Close()

	warm := func() {
		t.Helper()
		assembledGet(t, ts.URL+"/page", nil)
		if st := p.Plans().Stats(); st.Resident != 1 {
			t.Fatalf("plan cache resident = %d, want 1", st.Resident)
		}
	}
	warm()
	sub := coherency.NewPlanSubscriber(p.Plans().Store())

	// Fragment and purge events leave compiled plans alone.
	sub.Apply(coherency.Event{Seq: 1, Kind: coherency.KindFragment, Key: 1, Gen: 1})
	sub.Apply(coherency.Event{Seq: 2, Kind: coherency.KindPurge, URI: "/page"})
	// Foreign-scope flush too.
	sub.Apply(coherency.Event{Seq: 3, Kind: coherency.KindFlush, Scope: "page"})
	if st := p.Plans().Stats(); st.Resident != 1 {
		t.Fatalf("plan survived nothing: resident = %d after no-op events", st.Resident)
	}

	// A plan-scoped flush empties the tier.
	sub.Apply(coherency.Event{Seq: 4, Kind: coherency.KindFlush, Scope: "plan"})
	if st := p.Plans().Stats(); st.Resident != 0 {
		t.Fatalf("resident = %d after plan flush, want 0", st.Resident)
	}

	// A sequence gap is conservative: flush and recompile on demand.
	warm()
	sub.Apply(coherency.Event{Seq: 9, Kind: coherency.KindFragment, Key: 1, Gen: 1})
	if st := p.Plans().Stats(); st.Resident != 0 {
		t.Fatalf("resident = %d after gap, want 0 (conservative flush)", st.Resident)
	}
	if sub.Flushes() != 2 {
		t.Fatalf("flushes = %d, want 2", sub.Flushes())
	}
}
