package dpc

import (
	"net/http"
	"strings"
	"sync"
)

// Single-flight coalescing of identical in-flight origin fetches: when N
// concurrent requests carry the same coalesce key, one leader performs the
// origin fetch and assembly while the other N-1 attach to the flight as
// followers. The paper puts the DPC on the critical path of every dynamic
// request, so a popular page going cold must not fan out as a thundering
// herd on the origin link.
//
// The flight is a chunked broadcast buffer (Varnish-style streaming
// object): the leader appends decoded output chunks as assembly proceeds,
// and each follower carries its own cursor into the buffer — it replays
// whatever is already buffered, then streams live until the leader closes
// the flight. Follower time-to-first-byte is therefore O(chunk), not
// O(page), and a follower that joins mid-assembly still sees the page from
// byte zero. When the leader aborts (origin error, torn stream), followers
// that have not committed any byte fall back to their own fetch instead of
// serving a torn page; committed followers abort their connections.
//
// The buffer retains the full page while the flight is joinable. Once it
// exceeds maxBytes the flight is sealed — late arrivals degrade to their
// own fetch — the retained prefix is trimmed up to the slowest attached
// cursor, and followers lagging more than maxBytes behind the leader are
// shed (overrun): their bytes are dropped so the retained window never
// exceeds the cap, and they recover via their own fetch (uncommitted) or
// an aborted connection (committed). A stalled client therefore cannot pin
// an unbounded page in memory.

// defaultBroadcastBytes bounds the broadcast buffer when
// Config.CoalesceBufferBytes is zero.
const defaultBroadcastBytes = 4 << 20

// flightState is the lifecycle of a broadcast flight.
type flightState int

const (
	// flightOpen: the leader is still producing chunks.
	flightOpen flightState = iota
	// flightDone: clean EOF; the buffer holds the complete page tail.
	flightDone
	// flightAborted: the leader failed; the buffered prefix must not be
	// served as a page.
	flightAborted
)

// follower is one attached request's cursor into the broadcast stream.
type follower struct {
	pos int64 // absolute offset of the next unread byte
	// overrun reports the follower fell more than the buffer cap behind
	// the leader: its unread bytes were dropped to bound the buffer, so
	// it can no longer be served from this flight.
	overrun bool
}

// flightChunk is one follower read: a chunk copied out of the buffer plus
// the flight state observed atomically with it.
type flightChunk struct {
	n       int // bytes copied into the caller's scratch buffer
	state   flightState
	total   int64  // absolute bytes appended so far
	ctype   string // leader's Content-Type (set before the first chunk)
	clen    int64  // leader's declared Content-Length, -1 when unknown
	overrun bool   // this follower's unread bytes were dropped (see follower)
}

// flight is one in-flight origin fetch that concurrent identical requests
// attach to.
type flight struct {
	key string
	// id identifies the flight in trace role events, so a leader and its
	// followers can be grouped across captured traces.
	id uint64
	// method is the leader's request method. HEAD followers may ride a
	// GET flight (they need only its committed headers); a GET must
	// never ride a HEAD flight, whose response has no body.
	method string
	max    int

	mu        sync.Mutex
	cond      sync.Cond
	buf       []byte // bytes [start, start+len(buf)) of the stream
	start     int64  // absolute offset of buf[0]
	total     int64  // absolute bytes appended so far
	ctype     string
	clen      int64 // declared Content-Length for bodyless responses (-1 unknown)
	state     flightState
	sealed    bool // over the byte cap: no new followers may attach
	followers map[*follower]struct{}
}

func newFlight(key, method string, max int) *flight {
	f := &flight{key: key, method: method, max: max, clen: -1, followers: make(map[*follower]struct{})}
	f.cond.L = &f.mu
	return f
}

// attach registers a new follower cursor at byte zero, or returns nil when
// the flight is sealed (the replay window is gone; the caller must fetch
// independently).
func (f *flight) attach() *follower {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.sealed {
		return nil
	}
	fol := &follower{pos: f.start} // start is 0 until the flight seals
	f.followers[fol] = struct{}{}
	return fol
}

// detach removes a follower cursor. Departed followers must not pin the
// buffer prefix (sealed flights trim to the slowest live cursor) nor
// inflate the waiter count.
func (f *flight) detach(fol *follower) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.followers, fol)
	f.trimLocked()
}

// publishHeaders records the response metadata followers replicate. Must be
// called before the first append. clen is the declared Content-Length for
// responses whose body does not carry it (HEAD), -1 when unknown.
func (f *flight) publishHeaders(ctype string, clen int64) {
	f.mu.Lock()
	f.ctype, f.clen = ctype, clen
	f.mu.Unlock()
}

// append broadcasts one decoded output chunk to the attached followers.
func (f *flight) append(p []byte) {
	if len(p) == 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.state != flightOpen {
		return
	}
	if !f.sealed || len(f.followers) > 0 {
		f.buf = append(f.buf, p...)
	} else {
		// Sealed with nobody attached: no present or future reader exists,
		// so the bytes need not be retained at all.
		f.start += int64(len(p))
	}
	f.total += int64(len(p))
	if int64(len(f.buf)) > int64(f.max) {
		f.sealed = true
		// Shed followers too far behind to serve within the cap; their
		// cursors no longer pin the prefix, so the trim below restores
		// the bound no matter how slowly their clients read.
		floor := f.total - int64(f.max)
		for fol := range f.followers {
			if fol.pos < floor {
				fol.overrun = true
			}
		}
		f.trimLocked()
	}
	f.cond.Broadcast()
}

// close finishes the flight: clean EOF when aborted is false, otherwise the
// abort flag that sends followers to their own fetch.
func (f *flight) close(aborted bool) {
	f.mu.Lock()
	if f.state == flightOpen {
		if aborted {
			f.state = flightAborted
		} else {
			f.state = flightDone
		}
	}
	f.cond.Broadcast()
	f.mu.Unlock()
}

// wake interrupts waiting followers (context cancellation). Taking the lock
// orders the broadcast against the waiter's cancellation check, so a
// cancelled follower cannot park forever.
func (f *flight) wake() {
	f.mu.Lock()
	f.cond.Broadcast()
	f.mu.Unlock()
}

// next blocks until bytes past fol's cursor exist, the flight closes, or
// cancelled reports true; it copies at most len(scratch) bytes. The copy
// happens under the flight lock, so callers may write the scratch buffer
// out without racing the leader's appends or the trimmer.
func (f *flight) next(fol *follower, scratch []byte, cancelled func() bool) flightChunk {
	f.mu.Lock()
	defer f.mu.Unlock()
	for fol.pos == f.total && f.state == flightOpen && !fol.overrun && !cancelled() {
		f.cond.Wait()
	}
	c := flightChunk{state: f.state, total: f.total, ctype: f.ctype, clen: f.clen, overrun: fol.overrun}
	if fol.overrun {
		return c // the bytes at fol.pos were dropped; nothing left to copy
	}
	if fol.pos < f.total {
		c.n = copy(scratch, f.buf[fol.pos-f.start:])
		fol.pos += int64(c.n)
		f.trimLocked()
	}
	return c
}

// awaitClose blocks until the flight reaches a terminal state (or
// cancelled reports true), consuming — without copying — any bytes past
// the follower's cursor so a headers-only reader never pins the sealed
// buffer's trim window. HEAD followers riding a GET flight use it: they
// need the committed headers and the final byte count, not the body.
func (f *flight) awaitClose(fol *follower, cancelled func() bool) flightChunk {
	f.mu.Lock()
	defer f.mu.Unlock()
	for f.state == flightOpen && !cancelled() {
		if fol.pos < f.total {
			fol.pos = f.total
			f.trimLocked()
		}
		f.cond.Wait()
	}
	if fol.pos < f.total {
		fol.pos = f.total
		f.trimLocked()
	}
	return flightChunk{state: f.state, total: f.total, ctype: f.ctype, clen: f.clen}
}

// trimLocked drops the buffer prefix every live cursor has passed. Only
// sealed flights trim: an open, unsealed flight must keep byte zero for
// followers yet to attach.
func (f *flight) trimLocked() {
	if !f.sealed {
		return
	}
	min := f.total
	for fol := range f.followers {
		if !fol.overrun && fol.pos < min {
			min = fol.pos
		}
	}
	if drop := min - f.start; drop > 0 {
		n := copy(f.buf, f.buf[drop:])
		f.buf = f.buf[:n]
		f.start = min
	}
}

// waiterCount reports attached followers (tests, and the leader's tee
// decision is gone — every leader broadcasts until sealed).
func (f *flight) waiterCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.followers)
}

// flightGroup tracks in-flight origin fetches by coalesce key.
type flightGroup struct {
	mu  sync.Mutex
	m   map[string]*flight
	seq uint64 // flight-id counter (trace role events)
	max int    // broadcast buffer byte cap per flight
}

func newFlightGroup(maxBytes int) *flightGroup {
	if maxBytes <= 0 {
		maxBytes = defaultBroadcastBytes
	}
	return &flightGroup{m: make(map[string]*flight), max: maxBytes}
}

// join returns the flight for key. leader is true for the caller that must
// perform the fetch and eventually call finish. Followers receive their
// attached cursor; a nil cursor with leader false means the flight is
// sealed and the caller must fetch independently. A nil *flight* with
// leader false is a method mismatch: the key is GET-normalized so HEAD
// can ride a GET broadcast, but a GET arriving while a HEAD leads the key
// cannot be served a body and must fetch for itself.
func (g *flightGroup) join(key, method string) (f *flight, leader bool, fol *follower) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		if method != f.method && method != http.MethodHead {
			return nil, false, nil
		}
		return f, false, f.attach()
	}
	f = newFlight(key, method, g.max)
	g.seq++
	f.id = g.seq
	g.m[key] = f
	return f, true, nil
}

// finish closes the leader's flight and releases its followers. The flight
// is removed from the group first so late arrivals start a fresh fetch
// instead of attaching to a closed one.
func (g *flightGroup) finish(f *flight, aborted bool) {
	g.mu.Lock()
	if g.m[f.key] == f {
		delete(g.m, f.key)
	}
	g.mu.Unlock()
	f.close(aborted)
}

// depth reports whether a flight is open for key and how many followers
// it currently has. The admission stage uses it to bound the coalesce
// queue: a request that would join an already-deep flight is shed.
func (g *flightGroup) depth(key string) (exists bool, waiters int) {
	g.mu.Lock()
	f, ok := g.m[key]
	g.mu.Unlock()
	if !ok {
		return false, 0
	}
	return true, f.waiterCount()
}

// waiting reports how many followers are attached to key (tests).
func (g *flightGroup) waiting(key string) int64 {
	g.mu.Lock()
	f, ok := g.m[key]
	g.mu.Unlock()
	if !ok {
		return 0
	}
	return int64(f.waiterCount())
}

// coalescable restricts sharing to idempotent, bodyless requests;
// side-effecting methods must each reach the origin.
func coalescable(r *http.Request) bool {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		return false
	}
	return r.ContentLength == 0 && len(r.TransferEncoding) == 0
}

// coalesceInvariantHeaders are the forwarded request headers that provably
// cannot change the response to a coalescable request: Content-Type
// describes a request body, and coalescable requests (bodyless GET/HEAD)
// carry none.
var coalesceInvariantHeaders = map[string]bool{
	"Content-Type": true,
}

// coalesceIdentityHeaders are the headers the coalesce key covers. They are
// derived from forwardedHeaders — the single source of truth for what the
// origin sees — minus the provably response-invariant ones, so the
// invariant "key covers every forwarded client header the origin may vary
// on" holds by construction instead of by parallel maintenance.
//
// Known, deliberate exclusion: X-Forwarded-For. It is synthesized from the
// connection's remote address (not taken from forwardedHeaders), differs
// for every client, and including it would disable coalescing outright.
// Origins that vary responses on client IP (geo-targeting) must not enable
// Coalesce; the paper's DPC personalizes by session identity headers,
// which the key covers.
var coalesceIdentityHeaders = coalesceIdentityFrom(forwardedHeaders)

func coalesceIdentityFrom(forwarded []string) []string {
	ids := make([]string, 0, len(forwarded))
	for _, h := range forwarded {
		if !coalesceInvariantHeaders[h] {
			ids = append(ids, h)
		}
	}
	return ids
}

// coalesceKey identifies an origin fetch: method, full request URI, and
// the identity headers above. Two requests sharing a key would receive
// byte-identical origin responses, so one fetch may serve all of them.
func coalesceKey(r *http.Request) string {
	return coalesceKeyAs(r, r.Method)
}

func coalesceKeyAs(r *http.Request, method string) string {
	var b strings.Builder
	b.WriteString(method)
	b.WriteByte(0)
	b.WriteString(r.URL.RequestURI())
	for _, h := range coalesceIdentityHeaders {
		b.WriteByte(0)
		b.WriteString(r.Header.Get(h))
	}
	return b.String()
}

// flightKey maps a request onto the flight group: the coalesce key with
// HEAD normalized to GET, so a HEAD and a GET for the same resource
// share one flight — a GET fetch answers both, the HEAD follower served
// from the broadcast's committed headers alone. The flight records its
// leader's real method; join refuses the one unservable pairing (a GET
// arriving on a HEAD-led flight).
func flightKey(r *http.Request) string {
	if r.Method == http.MethodHead {
		return coalesceKeyAs(r, http.MethodGet)
	}
	return coalesceKey(r)
}
