package dpc

import (
	"bytes"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
)

// Single-flight coalescing of identical in-flight origin fetches: when N
// concurrent requests carry the same coalesce key, one leader performs the
// origin fetch and assembly while the other N-1 park on the flight and are
// served the leader's finished page. The paper puts the DPC on the critical
// path of every dynamic request, so a popular page going cold must not fan
// out as a thundering herd on the origin link.

// flightResult is what a coalescing leader shares with its followers.
type flightResult struct {
	// ok reports the page is servable; followers re-fetch independently
	// when false rather than amplifying the leader's failure.
	ok    bool
	page  []byte
	ctype string
}

// flight is one in-flight origin fetch that concurrent identical requests
// attach to.
type flight struct {
	key     string
	done    chan struct{}
	res     flightResult
	waiters atomic.Int64
	// buf is the leader's tee target in streaming mode: the leader
	// streams to its own client while accumulating the page for the
	// followers. Only the leader touches it (and tee) before done is
	// closed; tee records that buf holds the complete page.
	buf bytes.Buffer
	tee bool
}

// flightGroup tracks in-flight origin fetches by coalesce key.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

func newFlightGroup() *flightGroup { return &flightGroup{m: make(map[string]*flight)} }

// join returns the flight for key; leader is true for the caller that must
// perform the fetch and eventually call finish.
func (g *flightGroup) join(key string) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		f.waiters.Add(1)
		return f, false
	}
	f = &flight{key: key, done: make(chan struct{})}
	g.m[key] = f
	return f, true
}

// finish publishes the leader's result and releases all waiters. The
// flight is removed from the group first so late arrivals start a fresh
// fetch instead of reading a completed one.
func (g *flightGroup) finish(f *flight, res flightResult) {
	g.mu.Lock()
	if g.m[f.key] == f {
		delete(g.m, f.key)
	}
	g.mu.Unlock()
	f.res = res
	close(f.done)
}

// waiting reports how many followers are parked on key (tests).
func (g *flightGroup) waiting(key string) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		return f.waiters.Load()
	}
	return 0
}

// coalescable restricts sharing to idempotent, bodyless requests;
// side-effecting methods must each reach the origin.
func coalescable(r *http.Request) bool {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		return false
	}
	return r.ContentLength == 0 && len(r.TransferEncoding) == 0
}

// coalesceIdentityHeaders are the forwarded request headers the origin may
// vary a response on: the session identity (X-User, Cookie, Authorization)
// plus content negotiation. Every header forwarded to the origin that can
// change the response MUST appear here, or coalescing would hand one
// user's page to another.
var coalesceIdentityHeaders = []string{
	"X-User", "Cookie", "Authorization", "Accept", "Accept-Language",
}

// coalesceKey identifies an origin fetch: method, full request URI, and
// the identity headers above. Two requests sharing a key would receive
// byte-identical origin responses, so one fetch may serve all of them.
func coalesceKey(r *http.Request) string {
	var b strings.Builder
	b.WriteString(r.Method)
	b.WriteByte(0)
	b.WriteString(r.URL.RequestURI())
	for _, h := range coalesceIdentityHeaders {
		b.WriteByte(0)
		b.WriteString(r.Header.Get(h))
	}
	return b.String()
}
