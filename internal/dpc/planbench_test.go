package dpc

// The tentpole benchmark: repeat assemblies of the same template through
// the interpreter (per-request decode, sequential GETs) versus a warm
// plan cache (zero-decode compiled program, optionally parallel GETs).
// CI runs this at -benchtime=1x as a smoke test; run it properly with
//
//	go test -run xxx -bench BenchmarkAssembleCompiledVsInterpreted ./internal/dpc/

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"dpcache/internal/tmpl"
	"dpcache/internal/tmplplan"
)

func benchTemplate(b *testing.B, codec tmpl.Codec, frags int) ([]byte, *Store) {
	b.Helper()
	store, err := NewStore(frags + 1)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	enc := codec.NewEncoder(&buf)
	content := bytes.Repeat([]byte("f"), 512)
	for k := 0; k < frags; k++ {
		if err := store.Set(uint32(k), 1, content); err != nil {
			b.Fatal(err)
		}
		_ = enc.Literal([]byte("<div>"))
		_ = enc.Get(uint32(k), 1)
		_ = enc.Literal([]byte("</div>"))
	}
	if err := enc.Flush(); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes(), store
}

func BenchmarkAssembleCompiledVsInterpreted(b *testing.B) {
	const frags = 16
	for _, codec := range []tmpl.Codec{tmpl.Binary{}, tmpl.Text{}} {
		body, store := benchTemplate(b, codec, frags)
		b.Run("interpreted/"+codec.Name(), func(b *testing.B) {
			asm := NewAssembler(store, codec, true)
			b.ReportAllocs()
			b.SetBytes(int64(len(body)))
			for i := 0; i < b.N; i++ {
				if _, err := asm.Assemble(io.Discard, bytes.NewReader(body)); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, par := range []int{1, 4} {
			b.Run(fmt.Sprintf("compiled/%s/par%d", codec.Name(), par), func(b *testing.B) {
				cache, err := tmplplan.NewCache(codec, tmplplan.CacheConfig{})
				if err != nil {
					b.Fatal(err)
				}
				ex := &tmplplan.Exec{
					Store: store, Strict: true, Codec: codec,
					Plans: cache, Parallelism: par,
				}
				if _, _, err := cache.Get(body); err != nil { // warm the cache
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.SetBytes(int64(len(body)))
				for i := 0; i < b.N; i++ {
					plan, hit, err := cache.Get(body)
					if err != nil || !hit {
						b.Fatalf("hit=%v err=%v", hit, err)
					}
					if _, err := ex.Run(plan, io.Discard, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
