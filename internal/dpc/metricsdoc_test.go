package dpc

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"dpcache/internal/tmpl"
)

// docMetrics parses docs/METRICS.md's tables into name → type.
func docMetrics(t *testing.T) map[string]string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "docs", "METRICS.md"))
	if err != nil {
		t.Fatalf("reading docs/METRICS.md: %v", err)
	}
	row := regexp.MustCompile("^\\| `(dpc\\.[^`]+)` \\| (counter|gauge|histogram) \\|")
	out := make(map[string]string)
	for _, line := range strings.Split(string(raw), "\n") {
		if m := row.FindStringSubmatch(line); m != nil {
			if _, dup := out[m[1]]; dup {
				t.Errorf("docs/METRICS.md documents %s twice", m[1])
			}
			out[m[1]] = m[2]
		}
	}
	if len(out) == 0 {
		t.Fatal("docs/METRICS.md contains no metric rows")
	}
	return out
}

// TestMetricsDocumented is the doc-drift gate: docs/METRICS.md must match
// MetricCatalog exactly, the catalog must cover every metric name the dpc
// sources register, the catalog's stage histograms must match the actual
// pipeline, and a running, broadly exercised system must publish nothing
// undocumented.
func TestMetricsDocumented(t *testing.T) {
	catalog := make(map[string]string)
	for _, m := range MetricCatalog() {
		if _, dup := catalog[m.Name]; dup {
			t.Errorf("MetricCatalog lists %s twice", m.Name)
		}
		catalog[m.Name] = m.Type
	}

	// 1. Documentation == catalog, both directions.
	documented := docMetrics(t)
	for name, typ := range catalog {
		if dt, ok := documented[name]; !ok {
			t.Errorf("%s (%s) is in MetricCatalog but not documented in docs/METRICS.md", name, typ)
		} else if dt != typ {
			t.Errorf("%s documented as %s, catalog says %s", name, dt, typ)
		}
	}
	for name := range documented {
		if _, ok := catalog[name]; !ok {
			t.Errorf("docs/METRICS.md documents %s, which is not in MetricCatalog (removed from code?)", name)
		}
	}

	// 2. Every literal dpc.* metric registration in the sources is
	// catalogued (catches a new Counter("dpc.x") with no catalog entry
	// even if no test path exercises it).
	srcRe := regexp.MustCompile(`(?:Counter|Gauge|Histogram)\("(dpc\.[^"]+)"\)`)
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range srcRe.FindAllSubmatch(src, -1) {
			if name := string(m[1]); catalog[name] == "" {
				t.Errorf("%s registers %s, which is not in MetricCatalog", f, name)
			}
		}
	}

	// 3. The catalog's stage histograms match the real pipeline.
	p := newMetricsTestSystem(t)
	var stageHists []string
	for _, s := range p.Stages() {
		name := "dpc.stage." + s.Name + ".latency"
		stageHists = append(stageHists, name)
		if catalog[name] != "histogram" {
			t.Errorf("pipeline stage %q has no catalogued histogram %s", s.Name, name)
		}
	}
	for name, typ := range catalog {
		if typ == "histogram" && strings.HasPrefix(name, "dpc.stage.") {
			found := false
			for _, h := range stageHists {
				if h == name {
					found = true
				}
			}
			if !found {
				t.Errorf("catalog documents %s but the pipeline has no such stage", name)
			}
		}
	}

	// 4. A running system publishes only documented metrics.
	snap := p.Registry().Snapshot()
	for key := range snap {
		if !strings.HasPrefix(key, "dpc.") {
			continue // origin.*, bem.* etc. are other components' metrics
		}
		name := key
		for _, suffix := range []string{".count", ".mean_ns"} {
			if base := strings.TrimSuffix(key, suffix); base != key && catalog[base] == "histogram" {
				name = base
			}
		}
		if _, ok := catalog[name]; !ok {
			t.Errorf("running system published %s, which is not documented", key)
		}
	}
	// Sanity: the exercise really did touch the major surfaces.
	for _, want := range []string{
		"dpc.requests", "dpc.assembled", "dpc.static_hits", "dpc.static_uncacheable_vary",
		"dpc.pagecache_hits", "dpc.pagecache_bypass_identity", "dpc.store.resident",
	} {
		if _, ok := snap[want]; !ok {
			t.Errorf("exercise did not populate %s — broaden newMetricsTestSystem", want)
		}
	}
}

// newMetricsTestSystem stands up a proxy with every tier enabled and
// drives requests through the major pipeline paths so the registry holds
// a representative metric surface.
func newMetricsTestSystem(t *testing.T) *Proxy {
	t.Helper()
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasPrefix(r.URL.Path, "/static"):
			w.Header().Set("Cache-Control", "max-age=60")
			fmt.Fprint(w, "static body")
		case strings.HasPrefix(r.URL.Path, "/varied"):
			w.Header().Set("Cache-Control", "max-age=60")
			w.Header().Set("Vary", "Cookie")
			fmt.Fprint(w, "varied body")
		case strings.HasPrefix(r.URL.Path, "/template"):
			var buf bytes.Buffer
			enc := tmpl.Binary{}.NewEncoder(&buf)
			_ = enc.Literal([]byte("<html>"))
			_ = enc.Set(1, 1, []byte("fragment"))
			_ = enc.Literal([]byte("</html>"))
			_ = enc.Flush()
			w.Header().Set("X-DPC-Template", "binary")
			_, _ = w.Write(buf.Bytes())
		default:
			fmt.Fprint(w, "plain body")
		}
	}))
	t.Cleanup(origin.Close)

	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.PageCache = true
		c.PageCacheTTL = time.Minute
		c.Coalesce = true
		c.Stream = true
		c.Trace = true
		c.TraceSampleEvery = 1
		c.TraceSlow = -1
	})
	ts := httptest.NewServer(p)
	t.Cleanup(ts.Close)

	get := func(path string, hdr map[string]string) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	get("/static/a", map[string]string{"Cookie": "sid=x"}) // fills static cache (identity skips page tier)
	get("/static/a", map[string]string{"Cookie": "sid=x"}) // static hit
	get("/varied", map[string]string{"Cookie": "sid=x"})   // Vary refusal counted
	get("/template", nil)                                  // template assemble + page-tier fill
	get("/template", nil)                                  // page-tier hit
	get("/plain", map[string]string{"Authorization": "b"}) // identity bypass + plain passthrough
	get(AdminPrefix+"stats", nil)                          // publishes dpc.store.* gauges
	return p
}
