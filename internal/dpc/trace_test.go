package dpc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"dpcache/internal/metrics"
	"dpcache/internal/tmpl"
	"dpcache/internal/trace"
)

// templateBody encodes a binary template from ops for test origins.
func templateBody(t *testing.T, build func(enc tmpl.Encoder)) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := tmpl.Binary{}.NewEncoder(&buf)
	build(enc)
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// traceDump fetches /_dpc/trace and decodes it.
func traceDump(t *testing.T, base, query string) (enabled bool, traces []trace.TraceJSON) {
	t.Helper()
	resp, err := http.Get(base + "/_dpc/trace" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/_dpc/trace Content-Type = %q", ct)
	}
	var out struct {
		Enabled bool              `json:"enabled"`
		Traces  []trace.TraceJSON `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Enabled, out.Traces
}

// findChild returns the first child span with the given name.
func findChild(s trace.SpanJSON, name string) *trace.SpanJSON {
	for i := range s.Children {
		if s.Children[i].Name == name {
			return &s.Children[i]
		}
	}
	return nil
}

func hasEvent(s *trace.SpanJSON, kind trace.Kind, tier, note string) bool {
	if s == nil {
		return false
	}
	for _, e := range s.Events {
		if e.Kind == kind && (tier == "" || e.Tier == tier) && (note == "" || e.Note == note) {
			return true
		}
	}
	return false
}

// The acceptance-criteria trace: a sampled request through the full
// pipeline — page-tier miss, coalesce leader, origin fetch, assembly with
// two fragment refs — yields a /_dpc/trace entry with the stage spans,
// per-fragment spans, and tier-decision annotations, and the response
// carries X-DPC-Trace-Id.
func TestTraceFullPipelineCapture(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-DPC-Template", "binary")
		switch r.URL.Path {
		case "/prime":
			_, _ = w.Write(templateBody(t, func(enc tmpl.Encoder) {
				_ = enc.Literal([]byte("<html>"))
				_ = enc.Set(1, 1, []byte("frag one"))
				_ = enc.Set(2, 1, []byte("frag two"))
				_ = enc.Literal([]byte("</html>"))
			}))
		default:
			_, _ = w.Write(templateBody(t, func(enc tmpl.Encoder) {
				_ = enc.Literal([]byte("<html>"))
				_ = enc.Get(1, 1)
				_ = enc.Literal([]byte(" + "))
				_ = enc.Get(2, 1)
				_ = enc.Literal([]byte("</html>"))
			}))
		}
	}))
	defer origin.Close()

	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.PageCache = true
		c.Coalesce = true
		c.Trace = true
		c.TraceSampleEvery = 1
		c.TraceSlow = -1
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	if _, err := http.Get(ts.URL + "/prime"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/page")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if want := "<html>frag one + frag two</html>"; string(body) != want {
		t.Fatalf("body = %q, want %q", body, want)
	}
	id := resp.Header.Get(trace.ResponseHeader)
	if id == "" {
		t.Fatal("sampled response carries no X-DPC-Trace-Id")
	}

	enabled, traces := traceDump(t, ts.URL, "")
	if !enabled {
		t.Fatal("/_dpc/trace reports tracing disabled")
	}
	var captured *trace.TraceJSON
	for i := range traces {
		if traces[i].ID == id {
			captured = &traces[i]
		}
	}
	if captured == nil {
		t.Fatalf("trace %s not in ring (%d traces)", id, len(traces))
	}
	root := captured.Root
	if root.Name != "GET /page" {
		t.Fatalf("root span = %q", root.Name)
	}
	for _, stage := range []string{"static-cache", "pagecache", "coalesce", "origin-fetch", "assemble", "respond"} {
		if findChild(root, stage) == nil {
			t.Errorf("trace lacks a %q stage span (children: %+v)", stage, root.Children)
		}
	}
	if !hasEvent(findChild(root, "pagecache"), trace.KindMiss, "page", "") {
		t.Error("pagecache span lacks a page-tier miss event")
	}
	if !hasEvent(findChild(root, "coalesce"), trace.KindRole, "coalesce", "leader") {
		t.Error("coalesce span lacks a leader role event")
	}
	if !hasEvent(findChild(root, "origin-fetch"), trace.KindInfo, "origin", "template") {
		t.Error("origin-fetch span lacks the origin shape annotation")
	}
	asm := findChild(root, "assemble")
	if asm == nil {
		t.Fatal("no assemble span")
	}
	var frags int
	for _, c := range asm.Children {
		if c.Name == "fragment" && hasEvent(&c, trace.KindHit, "fragment", "") {
			frags++
		}
	}
	if frags < 2 {
		t.Fatalf("assemble span has %d fragment hit spans, want >= 2", frags)
	}
	if !hasEvent(findChild(root, "respond"), trace.KindFill, "page", "") {
		t.Error("respond span lacks the page-tier fill event")
	}
	if root.Bytes != int64(len(body)) {
		t.Errorf("root bytes = %d, want %d", root.Bytes, len(body))
	}
	if root.TTFBUS <= 0 {
		t.Error("root span has no TTFB")
	}

	// min_ms filtering applies.
	if _, fast := traceDump(t, ts.URL, "?min_ms=60000"); len(fast) != 0 {
		t.Fatalf("min_ms=60000 returned %d traces", len(fast))
	}
}

// A trace id propagates proxy→proxy over X-DPC-Trace: chaining a front
// proxy to a back proxy yields one id in both rings, with the back hop
// marked remote.
func TestTraceChainsAcrossProxies(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "origin body")
	}))
	defer origin.Close()

	back := newTestProxy(t, origin.URL, func(c *Config) {
		c.Trace = true
		c.TraceSampleEvery = 1
		c.TraceSlow = -1
	})
	backTS := httptest.NewServer(back)
	defer backTS.Close()

	front := newTestProxy(t, backTS.URL, func(c *Config) {
		c.Trace = true
		c.TraceSampleEvery = 1
		c.TraceSlow = -1
	})
	frontTS := httptest.NewServer(front)
	defer frontTS.Close()

	resp, err := http.Get(frontTS.URL + "/page")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	id := resp.Header.Get(trace.ResponseHeader)
	if id == "" {
		t.Fatal("front proxy stamped no trace id")
	}

	_, frontTraces := traceDump(t, frontTS.URL, "")
	_, backTraces := traceDump(t, backTS.URL, "")
	if len(frontTraces) != 1 || frontTraces[0].ID != id {
		t.Fatalf("front ring: %+v, want one trace with id %s", frontTraces, id)
	}
	if frontTraces[0].Remote {
		t.Fatal("front hop wrongly marked remote")
	}
	if len(backTraces) != 1 || backTraces[0].ID != id {
		t.Fatalf("back ring: %+v, want one trace with id %s", backTraces, id)
	}
	if !backTraces[0].Remote {
		t.Fatal("back hop not marked remote despite the propagated id")
	}
}

// With tracing disabled the proxy stamps no trace header and /_dpc/trace
// reports disabled with an empty list.
func TestTraceDisabledSurface(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "plain")
	}))
	defer origin.Close()
	p := newTestProxy(t, origin.URL, nil)
	ts := httptest.NewServer(p)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(trace.ResponseHeader); got != "" {
		t.Fatalf("disabled tracing stamped %s: %q", trace.ResponseHeader, got)
	}
	enabled, traces := traceDump(t, ts.URL, "")
	if enabled || len(traces) != 0 {
		t.Fatalf("disabled surface: enabled=%v traces=%d", enabled, len(traces))
	}
}

// promLine matches one Prometheus text-exposition sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+="[^"]*"(,[a-zA-Z0-9_]+="[^"]*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// /_dpc/metrics serves every catalog metric in valid Prometheus text
// exposition format.
func TestMetricsExposition(t *testing.T) {
	p := newMetricsTestSystem(t)
	ts := httptest.NewServer(p)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/_dpc/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != metrics.PromContentType {
		t.Fatalf("Content-Type = %q, want %q", got, metrics.PromContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	// Structural parse: every line is a comment or a well-formed sample;
	// every sample's metric family was declared by a preceding TYPE line.
	declared := map[string]string{}
	samples := map[string]bool{}
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			declared[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("line %d: not a valid exposition sample: %q", ln+1, line)
		}
		name := line[:strings.IndexAny(line, "{ ")]
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && declared[base] == "histogram" {
				family = base
			}
		}
		if declared[family] == "" {
			t.Fatalf("line %d: sample %q has no TYPE declaration", ln+1, line)
		}
		samples[family] = true
	}

	// Coverage: every catalog metric is declared and sampled.
	for _, m := range MetricCatalog() {
		name := metrics.PromName(m.Name)
		if declared[name] != m.Type {
			t.Errorf("catalog metric %s: declared as %q, want %q", m.Name, declared[name], m.Type)
		}
		if !samples[name] {
			t.Errorf("catalog metric %s: no sample line", m.Name)
		}
	}

	// Histograms carry cumulative buckets ending in +Inf.
	if !strings.Contains(body, `dpc_latency_bucket{le="+Inf"}`) {
		t.Error("dpc_latency has no +Inf bucket")
	}
	if !regexp.MustCompile(`(?m)^dpc_requests [1-9]`).MatchString(body) {
		t.Error("dpc_requests not positive after the exercise")
	}
}

// Read-only admin endpoints accept GET and HEAD only and answer 405 (with
// Allow) otherwise.
func TestAdminEndpointsMethodGated(t *testing.T) {
	p := newTestProxy(t, "http://127.0.0.1:0", func(c *Config) {
		c.Trace = true
		c.TraceSlow = -1
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	wantCT := map[string]string{
		"/_dpc/stats":   "application/json",
		"/_dpc/trace":   "application/json",
		"/_dpc/metrics": metrics.PromContentType,
	}
	for path, ct := range wantCT {
		for _, method := range []string{http.MethodGet, http.MethodHead} {
			req, _ := http.NewRequest(method, ts.URL+path, nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("%s %s = %d, want 200", method, path, resp.StatusCode)
			}
			if got := resp.Header.Get("Content-Type"); got != ct {
				t.Errorf("%s %s Content-Type = %q, want %q", method, path, got, ct)
			}
		}
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
			req, _ := http.NewRequest(method, ts.URL+path, strings.NewReader("x"))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("%s %s = %d, want 405", method, path, resp.StatusCode)
			}
			if got := resp.Header.Get("Allow"); got != "GET, HEAD" {
				t.Errorf("%s %s Allow = %q, want \"GET, HEAD\"", method, path, got)
			}
		}
	}
}

// The pprof mux mounts under /_dpc/pprof/ only behind Config.Pprof.
func TestPprofGatedByFlag(t *testing.T) {
	for _, enabled := range []bool{false, true} {
		t.Run(strconv.FormatBool(enabled), func(t *testing.T) {
			p := newTestProxy(t, "http://127.0.0.1:0", func(c *Config) {
				c.Pprof = enabled
			})
			ts := httptest.NewServer(p)
			defer ts.Close()
			resp, err := http.Get(ts.URL + "/_dpc/pprof/goroutine?debug=1")
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if enabled {
				if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
					t.Fatalf("pprof enabled: status %d body %q", resp.StatusCode, body)
				}
			} else if resp.StatusCode != http.StatusNotFound {
				t.Fatalf("pprof disabled but /_dpc/pprof/ answered %d", resp.StatusCode)
			}
		})
	}
}
