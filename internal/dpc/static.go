package dpc

import (
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"dpcache/internal/clock"
	"dpcache/internal/pagecache"
)

// StaticCache is the conventional URL-keyed cache the DPC also runs
// (Section 4.2: "the DPC can also cache other types of content as well,
// e.g., rich content, static fragments"; the paper's test setup serves
// all static content from the ISA proxy cache so it never touches the
// measured origin link).
//
// Only responses the origin explicitly marks with Cache-Control: max-age
// are cached, and never template responses — dynamic pages must not be
// URL-keyed, which is the paper's core correctness argument. Storage is
// the same wrapper the whole-page tier uses (pagecache.Cache over
// fragstore.KeyedStore — sharded, globally byte-ledgered), so this tier
// carries no locking or eviction logic of its own: the keyed store owns
// LRU eviction beyond MaxEntries and lazy TTL expiry. Only the keying
// policy (staticKey's Vary fold) and admission rules (cacheableStatic)
// live here.
type StaticCache struct {
	*pagecache.Cache
}

// NewStaticCache returns a cache bounded to maxEntries (<=0 selects 1024).
// A nil clk uses the real clock.
func NewStaticCache(maxEntries int, clk clock.Clock) *StaticCache {
	c, err := pagecache.NewCache(pagecache.CacheConfig{MaxEntries: maxEntries, Clock: clk})
	if err != nil {
		// Only an unknown eviction name can fail, and none is passed.
		panic(err)
	}
	return &StaticCache{Cache: c}
}

// Stats returns hit and miss counts (the full keyed-store snapshot is
// available via Store().Stats()).
func (c *StaticCache) Stats() (hits, misses int64) {
	st := c.Cache.Stats()
	return st.Hits, st.Misses
}

// maxAgeFrom parses Cache-Control for a positive max-age; no-store and
// no-cache disable caching.
func maxAgeFrom(cacheControl string) time.Duration {
	if cacheControl == "" {
		return 0
	}
	var age time.Duration
	for _, part := range strings.Split(cacheControl, ",") {
		part = strings.TrimSpace(strings.ToLower(part))
		switch {
		case part == "no-store", part == "no-cache", part == "private":
			return 0
		case strings.HasPrefix(part, "max-age="):
			secs, err := strconv.Atoi(part[len("max-age="):])
			if err != nil || secs <= 0 {
				return 0
			}
			age = time.Duration(secs) * time.Second
		}
	}
	return age
}

// staticVaryAllowlist names the Vary request headers the static tier can
// serve correctly by folding the header's request value into the store
// key (see staticKey). Everything else makes a response uncacheable here:
// the cache is URL-keyed, and a variant served under a bare URL key would
// reach every client regardless of what they sent.
//
// Accept-Encoding is safe because the proxy always fetches and serves the
// identity encoding (it strips Accept-Encoding toward the origin — it
// must see templates uncompressed), so keyed variants differ at most in
// name; correctness never depends on matching an encoded body to the
// client.
var staticVaryAllowlist = map[string]bool{
	"Accept-Encoding": true,
}

// staticKey builds the static tier's store key for a request: the full
// request URI plus the request's values for every allowlisted Vary header.
// Folding them in unconditionally (rather than per-entry Vary metadata)
// keeps lookups a single Get. The cost is duplication: today the proxy
// strips Accept-Encoding toward the origin and always serves identity
// encoding, so the folded variants hold byte-identical bodies and a
// non-varying asset is resident once per distinct client encoding
// preference. The sorted-token normalization below bounds that to the
// handful of genuinely different preference sets browsers send; the fold
// itself is kept so the key is already correct if the proxy ever starts
// negotiating encodings.
func staticKey(r *http.Request) string {
	var b strings.Builder
	b.WriteString(r.URL.RequestURI())
	b.WriteByte(0)
	//dpclint:ignore headerkey Accept-Encoding is folded into the static-tier variant key itself, and the proxy strips it toward the origin (it is not forwarded), so stored bodies cannot vary on it cross-user
	b.WriteString(normalizeVariant(r.Header.Get("Accept-Encoding")))
	return b.String()
}

// normalizeVariant canonicalizes a variant header value to a sorted,
// deduplicated, lowercased token set, so different spellings and
// orderings of the same preference ("gzip, br" vs "BR,gzip", trailing
// commas, repeated tokens) share one cache entry. Quality values are
// kept as part of the token — a preference with q-weights is a genuinely
// different ask.
func normalizeVariant(v string) string {
	if v == "" {
		return ""
	}
	tokens := strings.Split(strings.ToLower(strings.ReplaceAll(v, " ", "")), ",")
	sort.Strings(tokens)
	out := tokens[:0]
	for _, tok := range tokens {
		if tok == "" || (len(out) > 0 && out[len(out)-1] == tok) {
			continue
		}
		out = append(out, tok)
	}
	return strings.Join(out, ",")
}

// cacheableStatic reports whether a proxied response may enter the static
// cache: 200, explicitly cacheable, not a template, and carrying no Vary
// beyond the allowlist. The cache is URL-keyed (plus the allowlisted
// variant fold), so a response the origin varies on any other request
// header (Vary: Cookie, Vary: User-Agent, …) would be served to clients
// that sent different values; such responses are refused. varied reports
// that a non-allowlisted Vary alone blocked an otherwise-cacheable
// response, so the caller can count the remaining refusals
// (dpc.static_uncacheable_vary).
func cacheableStatic(resp *http.Response) (ttl time.Duration, varied bool) {
	if resp.StatusCode != http.StatusOK {
		return 0, false
	}
	if resp.Header.Get(headerTemplate) != "" {
		return 0, false // dynamic: never URL-keyed (Section 3.2.1)
	}
	// Join every Cache-Control line before parsing: directives may
	// legally arrive on separate header lines, and a no-store on the
	// second line must veto a max-age on the first.
	age := maxAgeFrom(strings.Join(resp.Header.Values("Cache-Control"), ","))
	if age > 0 && !varyAllowlisted(resp.Header) {
		return 0, true
	}
	return age, false
}

// cacheableAssembled reports the TTL an origin granted an *assembled*
// template page for URL-keyed caching. cacheableStatic refuses template
// responses as a matter of course — a dynamic page must not be URL-keyed
// unless the origin says so — and this check is that explicit opt-in: a
// template response carrying Cache-Control: max-age (and no Vary beyond
// the allowlist) asks the proxy to serve the assembled result from the
// static tier for the TTL, with the invalidation fabric dropping the
// entry early if a source fragment dies (its dependency edges are
// recorded under the static key; see fillStaticAssembled). varied
// mirrors cacheableStatic's.
func cacheableAssembled(resp *http.Response) (ttl time.Duration, varied bool) {
	age := maxAgeFrom(strings.Join(resp.Header.Values("Cache-Control"), ","))
	if age > 0 && !varyAllowlisted(resp.Header) {
		return 0, true
	}
	return age, false
}

// varyAllowlisted reports whether every header named by Vary is one the
// static tier folds into its key. "Vary: *" is never cacheable.
func varyAllowlisted(h http.Header) bool {
	for _, v := range h.Values("Vary") {
		for _, name := range strings.Split(v, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !staticVaryAllowlist[http.CanonicalHeaderKey(name)] {
				return false
			}
		}
	}
	return true
}
