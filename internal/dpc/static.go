package dpc

import (
	"container/list"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"dpcache/internal/clock"
)

// StaticCache is the conventional URL-keyed cache the DPC also runs
// (Section 4.2: "the DPC can also cache other types of content as well,
// e.g., rich content, static fragments"; the paper's test setup serves
// all static content from the ISA proxy cache so it never touches the
// measured origin link).
//
// Only responses the origin explicitly marks with Cache-Control: max-age
// are cached, and never template responses — dynamic pages must not be
// URL-keyed, which is the paper's core correctness argument. Entries are
// LRU-evicted beyond MaxEntries and lazily expired.
type StaticCache struct {
	mu         sync.Mutex
	entries    map[string]*list.Element
	lru        *list.List // front = most recent
	maxEntries int
	clk        clock.Clock

	hits, misses int64
}

type staticEntry struct {
	url     string
	body    []byte
	ctype   string
	expires time.Time
}

// NewStaticCache returns a cache bounded to maxEntries (<=0 selects 1024).
// A nil clk uses the real clock.
func NewStaticCache(maxEntries int, clk clock.Clock) *StaticCache {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	if clk == nil {
		clk = clock.Real{}
	}
	return &StaticCache{
		entries:    make(map[string]*list.Element),
		lru:        list.New(),
		maxEntries: maxEntries,
		clk:        clk,
	}
}

// Get returns a cached body and content type for the URL, if fresh.
func (c *StaticCache) Get(url string) (body []byte, contentType string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.entries[url]
	if !found {
		c.misses++
		return nil, "", false
	}
	e := el.Value.(*staticEntry)
	if !c.clk.Now().Before(e.expires) {
		c.lru.Remove(el)
		delete(c.entries, url)
		c.misses++
		return nil, "", false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return e.body, e.ctype, true
}

// Put stores a response body under the URL for ttl. Non-positive ttl is
// ignored.
func (c *StaticCache) Put(url string, body []byte, contentType string, ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	cp := make([]byte, len(body))
	copy(cp, body)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, found := c.entries[url]; found {
		e := el.Value.(*staticEntry)
		e.body, e.ctype, e.expires = cp, contentType, c.clk.Now().Add(ttl)
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.maxEntries {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*staticEntry).url)
	}
	el := c.lru.PushFront(&staticEntry{url: url, body: cp, ctype: contentType, expires: c.clk.Now().Add(ttl)})
	c.entries[url] = el
}

// Len returns the resident entry count.
func (c *StaticCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns hit and miss counts.
func (c *StaticCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// maxAgeFrom parses Cache-Control for a positive max-age; no-store and
// no-cache disable caching.
func maxAgeFrom(cacheControl string) time.Duration {
	if cacheControl == "" {
		return 0
	}
	var age time.Duration
	for _, part := range strings.Split(cacheControl, ",") {
		part = strings.TrimSpace(strings.ToLower(part))
		switch {
		case part == "no-store", part == "no-cache", part == "private":
			return 0
		case strings.HasPrefix(part, "max-age="):
			secs, err := strconv.Atoi(part[len("max-age="):])
			if err != nil || secs <= 0 {
				return 0
			}
			age = time.Duration(secs) * time.Second
		}
	}
	return age
}

// cacheableStatic reports whether a proxied response may enter the static
// cache: 200, explicitly cacheable, not a template, and carrying no Vary.
// The cache is URL-keyed, so a response the origin varies on any request
// header (Vary: Cookie, Accept-Encoding, …) would be served to every
// client regardless of their variant; such responses are refused. varied
// reports that Vary alone blocked an otherwise-cacheable response, so the
// caller can count the refusals (dpc.static_uncacheable_vary).
func cacheableStatic(resp *http.Response) (ttl time.Duration, varied bool) {
	if resp.StatusCode != http.StatusOK {
		return 0, false
	}
	if resp.Header.Get(headerTemplate) != "" {
		return 0, false // dynamic: never URL-keyed (Section 3.2.1)
	}
	age := maxAgeFrom(resp.Header.Get("Cache-Control"))
	if age > 0 && resp.Header.Get("Vary") != "" {
		return 0, true
	}
	return age, false
}
