package dpc

// This file is the single source of truth for the proxy's metric surface.
// docs/METRICS.md documents exactly this catalog, and TestMetricsDocumented
// fails when either side drifts: a metric added in code without a catalog
// entry, a catalog entry without documentation, or documentation for a
// metric that no longer exists.

// MetricDoc describes one metric the proxy publishes.
type MetricDoc struct {
	// Name is the full metric name as it appears in registry snapshots
	// and /_dpc/stats.
	Name string
	// Type is "counter", "gauge", or "histogram". Histograms appear in
	// snapshots as <name>.count and <name>.mean_ns.
	Type string
	// When says when the metric moves.
	When string
}

// pipelineStageNames lists the request-pipeline stages in execution
// order; each owns a dpc.stage.<name>.latency histogram. New keeps its
// stage list consistent with this (asserted by TestMetricsDocumented).
var pipelineStageNames = []string{
	"admin", "static-cache", "pagecache", "admission", "coalesce",
	"origin-fetch", "assemble", "stale-fallback", "respond",
}

// MetricCatalog enumerates every dpc.* metric the proxy can publish —
// request counters, cache-tier counters, dpc.store.* gauges, and the
// latency histograms.
func MetricCatalog() []MetricDoc {
	c := []MetricDoc{
		// Request path.
		{"dpc.requests", "counter", "every served response (hit, miss, coalesced, bypass, streamed), counted once in the respond stage"},
		{"dpc.errors", "counter", "a request fails mid-pipeline (502 or aborted stream)"},
		{"dpc.assembled", "counter", "a template is assembled into a page (buffered or streamed)"},
		{"dpc.streamed", "counter", "a streamed assembly completes cleanly to the client"},
		{"dpc.plain_passthrough", "counter", "a non-template origin response is passed through"},
		{"dpc.template_bytes", "counter", "template bytes read from the origin (cumulative)"},
		{"dpc.page_bytes", "counter", "assembled page bytes produced (cumulative)"},
		{"dpc.gets", "counter", "GET instructions executed against the fragment store"},
		{"dpc.sets", "counter", "SET instructions executed against the fragment store"},
		// Staleness recovery.
		{"dpc.stale_fallbacks", "counter", "an assembly found stale slots and recovered with a bypass fetch"},
		{"dpc.stream_aborts", "counter", "staleness past the streaming spool tore an in-flight response"},
		{"dpc.stale_reports", "counter", "an out-of-band stale report was delivered to the BEM after a torn stream"},
		// Coalescing.
		{"dpc.coalesced", "counter", "a follower was served its leader's broadcast page"},
		{"dpc.coalesce_fallbacks", "counter", "a leader aborted before a follower committed; the follower re-fetched"},
		{"dpc.coalesce_overflows", "counter", "a flight sealed past its buffer cap (late joiner or lagging follower re-fetched)"},
		{"dpc.coalesce_head_shared", "counter", "a HEAD request was served from a GET leader's committed flight headers"},
		{"dpc.coalesce_leader_drains", "counter", "a leader's client disconnected mid-body with followers attached; the leader kept draining the origin and broadcasting for them"},
		// Admission control (populated only when Config.Admission is on).
		{"dpc.shed_503s", "counter", "a request was refused with a fast 503 + Retry-After (hard pressure, no stale copy available)"},
		{"dpc.shed_inflight", "counter", "a shed tripped on the global origin in-flight bound"},
		{"dpc.shed_queue", "counter", "a shed tripped on the coalesce-flight waiter bound"},
		{"dpc.shed_per_key", "counter", "a shed tripped on the per-key origin concurrency bound"},
		{"dpc.shed_per_tenant", "counter", "a shed tripped on the per-tenant (X-User) origin concurrency bound"},
		{"dpc.negcache_hits", "counter", "a request hit the negative cache of a recent origin failure and was answered stale or shed without touching the origin"},
		{"dpc.negcache_fills", "counter", "an origin failure (transport error or non-200) was negative-cached for NegTTL"},
		{"dpc.stale_served_page", "counter", "a request under pressure was served an expired page-tier entry (X-Cache: STALE)"},
		{"dpc.stale_served_static", "counter", "a request under pressure was served an expired static-tier entry (X-Cache: STALE)"},
		{"dpc.stale_revalidations", "counter", "a stale serve kicked one background revalidation to refresh the tier"},
		// Static cache tier.
		{"dpc.static_hits", "counter", "a request was served from the URL-keyed static cache"},
		{"dpc.static_uncacheable_vary", "counter", "a cacheable response was refused because it varies on a non-allowlisted header"},
		{"dpc.static_assembled_fills", "counter", "an assembled template page the origin opted in (Cache-Control: max-age) was filed into the static tier with dependency edges"},
		{"dpc.static_invalidations", "counter", "a static-tier entry was dropped by the invalidation fabric (subscriber drop or in-flight assembled fill unfiled)"},
		// Whole-page cache tier.
		{"dpc.pagecache_hits", "counter", "an anonymous GET was served whole from the page tier (X-Cache: PAGE)"},
		{"dpc.pagecache_misses", "counter", "an anonymous GET missed the page tier and continued down the pipeline"},
		{"dpc.pagecache_fills", "counter", "a completed anonymous response was filed into the page tier"},
		{"dpc.pagecache_bypass_identity", "counter", "a request carried identity (Cookie, Authorization, X-User) and bypassed the page tier"},
		{"dpc.pagecache_uncacheable", "counter", "a captured response was not cacheable (non-200, over the capture bound, no-store/private, or Set-Cookie)"},
		{"dpc.pagecache_304s", "counter", "a page-tier hit with a matching If-None-Match was answered 304 with no body"},
		{"dpc.pagecache_invalidations", "counter", "a page-tier entry was dropped by the invalidation fabric (subscriber drop or in-flight fill unfiled)"},
		// Compiled-template plan cache (populated only when
		// Config.PlanCache is on; nested-include plan lookups are counted
		// in the cache's own /_dpc/stats snapshot, not here).
		{"dpc.plancache_hits", "counter", "a template body hashed to an already-compiled plan"},
		{"dpc.plancache_misses", "counter", "a template body had no cached plan (compiled fresh, or fell back to the interpreter on a corrupt template)"},
		{"dpc.plancache_compiles", "counter", "a template was compiled into a new cached plan"},
		{"dpc.plancache_parallel_gets", "counter", "fragment GETs resolved through the plan executor's parallel prefetch fan-out"},
		// Dependency index (fragment → page-key edges; refreshed like
		// dpc.store.* by the background publisher and /_dpc/stats).
		{"dpc.depindex_fragments", "gauge", "fragments with recorded dependency edges"},
		{"dpc.depindex_edges", "gauge", "fragment→page dependency edges currently retained"},
		{"dpc.depindex_bytes", "gauge", "bytes the dependency index retains (budget-bounded)"},
		{"dpc.depindex_evictions", "gauge", "fragments whose edges were evicted under byte pressure since creation"},
		{"dpc.depindex_lookups", "gauge", "invalidation lookups against the index since creation"},
		{"dpc.depindex_inexact", "gauge", "lookups answered conservatively (forcing a tier-flush fallback) since creation"},
		// Fragment store occupancy (refreshed by the background publisher
		// and on each /_dpc/stats request).
		{"dpc.store.capacity", "gauge", "the store's key-space size"},
		{"dpc.store.shards", "gauge", "the store's shard count"},
		{"dpc.store.resident", "gauge", "entries currently resident"},
		{"dpc.store.bytes", "gauge", "resident content bytes"},
		{"dpc.store.byte_budget", "gauge", "the configured global byte budget (0 = unbounded)"},
		{"dpc.store.sets", "gauge", "store SET operations since creation"},
		{"dpc.store.hits", "gauge", "store GET hits since creation"},
		{"dpc.store.misses", "gauge", "store GET misses since creation"},
		{"dpc.store.drops", "gauge", "entries dropped by invalidation since creation"},
		{"dpc.store.evictions", "gauge", "entries evicted by the budget policy since creation"},
		{"dpc.store.evicted_bytes", "gauge", "cumulative bytes evicted by the budget policy"},
		// Disk tier (published only when the tiered backend is mounted;
		// refreshed alongside the dpc.store.* gauges above).
		{"dpc.store.disk_hits", "gauge", "GETs answered by the disk tier since creation"},
		{"dpc.store.disk_promotions", "gauge", "disk hits copied back into the RAM tier since creation"},
		{"dpc.store.disk_demotions", "gauge", "RAM evictions written through to the disk tier since creation"},
		{"dpc.store.disk_resident", "gauge", "entries currently resident on the disk tier"},
		{"dpc.store.disk_bytes", "gauge", "bytes currently charged against the disk tier's budget"},
		{"dpc.store.disk_byte_budget", "gauge", "the disk tier's configured byte budget (0 = unbounded)"},
		{"dpc.store.disk_recovered_entries", "gauge", "entries replayed from the heap file at the last open (warm restart)"},
		{"dpc.store.disk_checksum_discards", "gauge", "torn or checksum-bad pages discarded at the last open"},
		// Request tracing (internal/trace; populated only when tracing is
		// enabled).
		{"dpc.trace.sampled", "counter", "a finished trace was admitted to the capture ring (rate-sampled, slow, or remote-propagated id)"},
		{"dpc.trace.dropped", "counter", "a finished trace was not admitted to the ring"},
		{"dpc.trace.slow", "counter", "a trace met the slow threshold (also summarized in the one-line slow-request log)"},
		// Latency.
		{"dpc.latency", "histogram", "end-to-end latency of every served response"},
	}
	for _, name := range pipelineStageNames {
		c = append(c, MetricDoc{
			Name: "dpc.stage." + name + ".latency",
			Type: "histogram",
			When: "time spent in the " + name + " pipeline stage, per request that entered it",
		})
	}
	return c
}
