// Package dpc implements the Dynamic Proxy Cache of Section 4.3.3: a
// reverse proxy that stores dynamic fragments in an in-memory fragment
// store indexed by dpcKey and assembles pages on demand by following the
// GET/SET instructions in origin templates.
package dpc

import "dpcache/internal/fragstore"

// Store is the paper-faithful slot-array fragment memory, now implemented
// by fragstore.SlotStore (see internal/fragstore for the FragmentStore
// contract and the alternative sharded backend). The alias keeps the
// original Section 4.3.3 name in this package's API.
type Store = fragstore.SlotStore

// NewStore returns a slot store with the given capacity.
func NewStore(capacity int) (*Store, error) {
	return fragstore.NewSlotStore(capacity)
}
