// Package dpc implements the Dynamic Proxy Cache of Section 4.3.3: a
// reverse proxy that stores dynamic fragments in an in-memory slot array
// indexed by dpcKey and assembles pages on demand by following the GET/SET
// instructions in origin templates.
package dpc

import (
	"fmt"
	"sync"
)

// Store is the DPC's fragment memory: "an in-memory array of pointers to
// cached fragments, where the DpcKey serves as the array index" (Section
// 4.3.3). Slots are written only by SET instructions; invalid slots are
// never explicitly cleared — their content simply goes unreferenced until
// a SET reuses the slot, exactly the freeList discipline the BEM enforces.
type Store struct {
	mu       sync.RWMutex
	slots    []slot
	capacity int
	bytes    int64
}

type slot struct {
	set  bool
	gen  uint32
	data []byte
}

// NewStore returns a store with the given slot capacity.
func NewStore(capacity int) (*Store, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("dpc: store capacity must be positive, got %d", capacity)
	}
	return &Store{slots: make([]slot, capacity), capacity: capacity}, nil
}

// Capacity returns the slot count.
func (s *Store) Capacity() int { return s.capacity }

// Set stores content into a slot, stamping it with the generation from the
// SET tag. The content is copied.
func (s *Store) Set(key uint32, gen uint32, content []byte) error {
	if int(key) >= s.capacity {
		return fmt.Errorf("dpc: key %d outside store capacity %d", key, s.capacity)
	}
	cp := make([]byte, len(content))
	copy(cp, content)
	s.mu.Lock()
	defer s.mu.Unlock()
	sl := &s.slots[key]
	s.bytes += int64(len(cp)) - int64(len(sl.data))
	sl.set = true
	sl.gen = gen
	sl.data = cp
	return nil
}

// Get returns the slot's content. When strict is true the slot generation
// must equal gen (a mismatch means the slot was reassigned after the
// template referencing it was produced); when false any set slot matches,
// which is the paper's original fast path.
func (s *Store) Get(key uint32, gen uint32, strict bool) ([]byte, bool) {
	if int(key) >= s.capacity {
		return nil, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	sl := &s.slots[key]
	if !sl.set {
		return nil, false
	}
	if strict && sl.gen != gen {
		return nil, false
	}
	return sl.data, true
}

// Drop clears a slot (used by the coherency extension when an edge cache
// must stop serving a fragment immediately rather than waiting for slot
// reuse).
func (s *Store) Drop(key uint32) {
	if int(key) >= s.capacity {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sl := &s.slots[key]
	s.bytes -= int64(len(sl.data))
	sl.set = false
	sl.data = nil
	sl.gen = 0
}

// Bytes returns the total content bytes currently resident.
func (s *Store) Bytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Resident returns the number of set slots.
func (s *Store) Resident() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for i := range s.slots {
		if s.slots[i].set {
			n++
		}
	}
	return n
}
