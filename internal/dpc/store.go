// Package dpc implements the Dynamic Proxy Cache of Section 4.3.3: a
// reverse proxy that stores dynamic fragments in an in-memory fragment
// store indexed by dpcKey and assembles pages on demand by following the
// GET/SET instructions in origin templates.
//
// Requests flow through an explicit stage pipeline (pipeline.go):
//
//	admin → static-cache → pagecache → coalesce → origin-fetch →
//	assemble → stale-fallback → respond
//
// crossing three cache tiers. The fragment store (assemble) holds
// slot-keyed fragments invalidated by the BEM; the static cache
// (static-cache) holds URL-keyed responses the origin explicitly marked
// cacheable, with allowlisted Vary headers (Accept-Encoding) folded into
// the key; the whole-page cache (pagecache) holds complete pages for
// anonymous-session GETs only, bounded by a micro-TTL. See
// docs/ARCHITECTURE.md for the full design and docs/METRICS.md for the
// metric surface (MetricCatalog is its in-code source of truth).
//
// Storage ownership after the unified-cache refactor: this package
// implements no cache storage of its own. All three tiers store through
// internal/fragstore — the fragment store behind the FragmentStore
// contract, the static and page tiers as thin wrappers over
// fragstore.KeyedStore — so locking, TTL expiry, entry bounds, and
// byte-budget eviction (one global ledger per store, never per-shard
// partitions) live in exactly one place.
package dpc

import "dpcache/internal/fragstore"

// Store is the paper-faithful slot-array fragment memory, now implemented
// by fragstore.SlotStore (see internal/fragstore for the FragmentStore
// contract and the alternative sharded backend). The alias keeps the
// original Section 4.3.3 name in this package's API.
type Store = fragstore.SlotStore

// NewStore returns a slot store with the given capacity.
func NewStore(capacity int) (*Store, error) {
	return fragstore.NewSlotStore(capacity)
}
