package dpc

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dpcache/internal/trace"
)

// The admission stage is the proxy's overload valve, mounted between the
// cache-hit tiers and coalesce. Every stage before it can answer from
// memory; everything after it queues work on the origin. Under measured
// pressure — origin in-flight count, origin latency EWMA, per-key and
// per-tenant concurrency, coalesce-flight queue depth, page-ledger byte
// pressure, or a negative-cache hit from a recent origin failure — the
// stage answers from an expired cache entry (stale-while-revalidate,
// X-Cache: STALE, with one background revalidation refreshing the tier)
// rather than queueing, and sheds with a fast 503 + Retry-After when no
// stale copy exists and the signal is hard. The paper's DPC sits on the
// critical path of every dynamic request; without this valve a saturated
// origin queues every miss and a capture storm degrades all users
// equally (ROADMAP open item 4).

// Defaults when the corresponding Config field is zero.
const (
	// defaultStaleWindow bounds how far past its TTL a cache entry may be
	// served under pressure.
	defaultStaleWindow = 30 * time.Second
	// defaultNegTTL is the negative-cache lifetime of an origin failure.
	defaultNegTTL = time.Second
	// defaultRetryAfter is the Retry-After hint on shed 503s.
	defaultRetryAfter = time.Second
	// maxNegEntries bounds the negative cache; past it, inserts sweep
	// expired entries and are dropped if the map is still full.
	maxNegEntries = 4096
	// maxConcurrentRevals bounds in-flight background revalidations, so a
	// burst of stale serves cannot itself become an origin storm.
	maxConcurrentRevals = 4
	// revalTimeout bounds one background revalidation.
	revalTimeout = 30 * time.Second
	// ewmaWeight is the denominator of the latency EWMA's update step
	// (alpha = 1/ewmaWeight).
	ewmaWeight = 5
)

// admitVerdict is the admission decision for one request.
type admitVerdict int

const (
	// admitOK: no pressure; proceed to the origin path.
	admitOK admitVerdict = iota
	// admitStale: soft pressure (latency EWMA, byte ledger). Prefer a
	// stale cache entry; admit anyway when none exists — soft signals
	// degrade quality, they do not refuse work.
	admitStale
	// admitShed: hard pressure (a bound is at its cap, or the origin
	// recently failed this key). Serve stale if a copy exists, else a
	// fast 503 + Retry-After — queueing would only deepen the overload.
	admitShed
)

// pressureSignals is one request's snapshot of every input the admission
// decision consumes. It is plain data so decide stays a pure function
// (table-tested in admission_test.go).
type pressureSignals struct {
	// flightExists reports a coalesce flight already open for this key:
	// the request will ride it as a follower, costing no origin work, so
	// only the queue bound applies.
	flightExists bool
	waiters      int // followers parked on that flight
	maxWaiters   int // Config.MaxFlightWaiters (0 = unbounded)

	negCached bool // the negative cache holds a recent origin failure for this key

	inFlight    int64 // origin requests currently in flight through this proxy
	maxInFlight int   // Config.MaxOriginInFlight (0 = unbounded)

	keyInFlight int // in-flight origin requests for this key
	maxKey      int // Config.MaxKeyInFlight (0 = unbounded)

	tenant         string // X-User, "" when anonymous
	tenantInFlight int    // in-flight origin requests for this tenant
	maxTenant      int    // Config.MaxTenantInFlight (0 = unbounded)

	latency     time.Duration // origin latency EWMA
	shedLatency time.Duration // Config.ShedLatency (0 disables the signal)

	ledgerBytes  int64 // page-tier resident + in-flight capture bytes
	ledgerBudget int64 // Config.PageCacheBudget (0 disables the signal)
}

// decide maps a pressure snapshot to a verdict plus the signal that
// tripped ("queue", "negcache", "inflight", "per-key", "per-tenant",
// "latency", "bytes"). Hard bounds are checked before soft signals: a
// capped queue must shed even when the latency EWMA is calm.
func decide(sig pressureSignals) (admitVerdict, string) {
	if sig.flightExists {
		// A follower joins an existing fetch: the only way it adds load
		// is by deepening the flight's queue.
		if sig.maxWaiters > 0 && sig.waiters >= sig.maxWaiters {
			return admitShed, "queue"
		}
		return admitOK, ""
	}
	switch {
	case sig.negCached:
		return admitShed, "negcache"
	case sig.maxInFlight > 0 && sig.inFlight >= int64(sig.maxInFlight):
		return admitShed, "inflight"
	case sig.maxKey > 0 && sig.keyInFlight >= sig.maxKey:
		return admitShed, "per-key"
	case sig.maxTenant > 0 && sig.tenant != "" && sig.tenantInFlight >= sig.maxTenant:
		return admitShed, "per-tenant"
	case sig.shedLatency > 0 && sig.latency >= sig.shedLatency:
		return admitStale, "latency"
	case sig.ledgerBudget > 0 && sig.ledgerBytes*10 >= sig.ledgerBudget*9:
		// Past 90% of the page tier's byte budget a capture storm is
		// evicting the very pages it fills; prefer serving what exists.
		return admitStale, "bytes"
	}
	return admitOK, ""
}

// admission is the pressure-measuring controller behind the stage. One
// instance per proxy; every field is safe for concurrent use.
type admission struct {
	staleWindow time.Duration
	negTTL      time.Duration
	retryAfter  time.Duration
	maxInFlight int
	maxKey      int
	maxTenant   int
	maxWaiters  int
	shedLatency time.Duration

	inflight atomic.Int64
	ewmaNS   atomic.Int64 // origin latency EWMA, nanoseconds

	mu        sync.Mutex
	perKey    map[string]int
	perTenant map[string]int
	neg       map[string]time.Time // key → negative-cache expiry
	revals    map[string]struct{}  // keys with a revalidation in flight
	revalN    int
}

func newAdmission(cfg Config) *admission {
	a := &admission{
		staleWindow: cfg.StaleWindow,
		negTTL:      cfg.NegTTL,
		retryAfter:  cfg.RetryAfter,
		maxInFlight: cfg.MaxOriginInFlight,
		maxKey:      cfg.MaxKeyInFlight,
		maxTenant:   cfg.MaxTenantInFlight,
		maxWaiters:  cfg.MaxFlightWaiters,
		shedLatency: cfg.ShedLatency,
		perKey:      make(map[string]int),
		perTenant:   make(map[string]int),
		neg:         make(map[string]time.Time),
		revals:      make(map[string]struct{}),
	}
	if a.staleWindow <= 0 {
		a.staleWindow = defaultStaleWindow
	}
	if a.negTTL <= 0 {
		a.negTTL = defaultNegTTL
	}
	if a.retryAfter <= 0 {
		a.retryAfter = defaultRetryAfter
	}
	return a
}

// observe folds one origin round-trip into the latency EWMA.
func (a *admission) observe(d time.Duration) {
	for {
		old := a.ewmaNS.Load()
		nw := int64(d)
		if old != 0 {
			nw = old + (int64(d)-old)/ewmaWeight
		}
		if a.ewmaNS.CompareAndSwap(old, nw) {
			return
		}
	}
}

// latency returns the current origin latency EWMA.
func (a *admission) latency() time.Duration {
	return time.Duration(a.ewmaNS.Load())
}

// acquire charges one origin-bound request against the global, per-key,
// and per-tenant in-flight counts, returning an idempotent release.
func (a *admission) acquire(key, tenant string) func() {
	a.inflight.Add(1)
	a.mu.Lock()
	a.perKey[key]++
	if tenant != "" {
		a.perTenant[tenant]++
	}
	a.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			a.inflight.Add(-1)
			a.mu.Lock()
			if a.perKey[key] <= 1 {
				delete(a.perKey, key)
			} else {
				a.perKey[key]--
			}
			if tenant != "" {
				if a.perTenant[tenant] <= 1 {
					delete(a.perTenant, tenant)
				} else {
					a.perTenant[tenant]--
				}
			}
			a.mu.Unlock()
		})
	}
}

// negLookup reports whether key has an unexpired negative-cache entry.
func (a *admission) negLookup(key string) bool {
	now := time.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	exp, ok := a.neg[key]
	if !ok {
		return false
	}
	if now.After(exp) {
		delete(a.neg, key)
		return false
	}
	return true
}

// negFill records an origin failure for key. Bounded: at the cap an
// insert sweeps expired entries first and is dropped if the map is still
// full — losing a negative entry only costs one extra origin attempt.
func (a *admission) negFill(key string) bool {
	now := time.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.neg[key]; !ok && len(a.neg) >= maxNegEntries {
		for k, exp := range a.neg {
			if now.After(exp) {
				delete(a.neg, k)
			}
		}
		if len(a.neg) >= maxNegEntries {
			return false
		}
	}
	a.neg[key] = now.Add(a.negTTL)
	return true
}

// revalTryStart claims the single revalidation slot for key, bounded
// globally by maxConcurrentRevals. revalDone releases it.
func (a *admission) revalTryStart(key string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.revalN >= maxConcurrentRevals {
		return false
	}
	if _, ok := a.revals[key]; ok {
		return false
	}
	a.revals[key] = struct{}{}
	a.revalN++
	return true
}

func (a *admission) revalDone(key string) {
	a.mu.Lock()
	delete(a.revals, key)
	a.revalN--
	a.mu.Unlock()
}

// revalCtxKey marks a background revalidation request's context, so the
// admission stage waves it through (its concurrency is bounded by
// maxConcurrentRevals, not the shed thresholds) and the cache-hit stages
// skip their lookups (the point is to refresh the entry, and a lazy-expiry
// Get would delete the stale copy other requests are still serving).
type revalCtxKey struct{}

func isReval(ctx context.Context) bool {
	v, _ := ctx.Value(revalCtxKey{}).(bool)
	return v
}

// --- admission ---

func (p *Proxy) stageAdmission(rs *reqState) (stageOutcome, error) {
	a := p.admit
	r := rs.r
	if a == nil || (r.Method != http.MethodGet && r.Method != http.MethodHead) {
		return stageNext, nil
	}
	if isReval(r.Context()) {
		return stageNext, nil
	}
	key := flightKey(r)
	// X-User feeds per-tenant concurrency accounting only; it never
	// selects a cached response (and it is part of the coalesce key
	// already), so it is safe to read outside the key-building path.
	tenant := r.Header.Get("X-User")
	sig := pressureSignals{
		maxWaiters:   a.maxWaiters,
		maxInFlight:  a.maxInFlight,
		maxKey:       a.maxKey,
		maxTenant:    a.maxTenant,
		tenant:       tenant,
		shedLatency:  a.shedLatency,
		ledgerBudget: p.cfg.PageCacheBudget,
	}
	if p.flights != nil && coalescable(r) {
		sig.flightExists, sig.waiters = p.flights.depth(key)
	}
	if !sig.flightExists {
		sig.negCached = a.negLookup(key)
		sig.inFlight = a.inflight.Load()
		sig.latency = a.latency()
		a.mu.Lock()
		sig.keyInFlight = a.perKey[key]
		sig.tenantInFlight = a.perTenant[tenant]
		a.mu.Unlock()
		if sig.ledgerBudget > 0 && p.pages != nil {
			sig.ledgerBytes = p.pages.Bytes()
		}
	}
	verdict, reason := decide(sig)
	if verdict == admitOK {
		if !sig.flightExists {
			// Followers take no token: they add no origin work. The
			// leader-to-be is charged until respond/fail releases it.
			rs.admitRelease = a.acquire(key, tenant)
		}
		return stageNext, nil
	}
	if reason == "negcache" {
		p.reg.Counter("dpc.negcache_hits").Inc()
	}
	if out, ok := p.serveStale(rs, key, reason); ok {
		return out, nil
	}
	if verdict == admitStale {
		// Soft signal with no stale copy: degrade nothing, admit.
		rs.admitRelease = a.acquire(key, tenant)
		return stageNext, nil
	}
	return p.shed(rs, reason)
}

// serveStale answers a GET from an expired cache entry within the stale
// window, kicking one background revalidation to refresh the tier. The
// page tier is consulted under the same predicate as its stage
// (anonymous bodyless GET), then the static tier.
func (p *Proxy) serveStale(rs *reqState, key, reason string) (stageOutcome, bool) {
	r := rs.r
	if r.Method != http.MethodGet {
		return stageNext, false
	}
	a := p.admit
	if p.pages != nil && anonymousSession(r) &&
		r.ContentLength == 0 && len(r.TransferEncoding) == 0 {
		if body, ctype, _, age, ok := p.pages.GetStale(pageKey(r)); ok && age <= a.staleWindow {
			p.reg.Counter("dpc.stale_served_page").Inc()
			p.serveStaleBody(rs, key, reason, "page", body, ctype, age)
			return stageRespond, true
		}
	}
	if p.static != nil {
		if body, ctype, _, age, ok := p.static.GetStale(staticKey(r)); ok && age <= a.staleWindow {
			p.reg.Counter("dpc.stale_served_static").Inc()
			p.serveStaleBody(rs, key, reason, "static", body, ctype, age)
			return stageRespond, true
		}
	}
	return stageNext, false
}

func (p *Proxy) serveStaleBody(rs *reqState, key, reason, tier string, body []byte, ctype string, age time.Duration) {
	if rs.pageCapture != nil {
		// The stale bytes must not be re-filed under a fresh TTL; the
		// background revalidation replaces the entry instead.
		rs.pageCapture.discard()
		rs.w = rs.pageCapture.ResponseWriter
		rs.pageCapture = nil
	}
	rs.body, rs.ctype, rs.cacheState = body, ctype, "STALE"
	rs.span.Event(trace.KindStaleServe, tier, reason, age.Milliseconds())
	p.kickRevalidate(rs, key)
}

// kickRevalidate starts at most one background revalidation for key: the
// request is cloned onto a detached context marked as a revalidation and
// driven through the full pipeline against a discarding writer, so the
// refresh reuses every existing fill path — page-tier capture, static
// fill, and crucially fillPageCache's fill/invalidate race check, which
// voids the fill if the fabric invalidates a source fragment while the
// revalidation is in flight.
func (p *Proxy) kickRevalidate(rs *reqState, key string) {
	a := p.admit
	if a.negLookup(key) {
		// The origin just failed this key; revalidating now would hammer
		// it inside the negative-cache window.
		return
	}
	if !a.revalTryStart(key) {
		return
	}
	p.reg.Counter("dpc.stale_revalidations").Inc()
	req := rs.r.Clone(context.WithValue(
		context.WithoutCancel(rs.r.Context()), revalCtxKey{}, true))
	go func() {
		defer a.revalDone(key)
		ctx, cancel := context.WithTimeout(req.Context(), revalTimeout)
		defer cancel()
		p.ServeHTTP(&discardResponseWriter{h: make(http.Header)}, req.WithContext(ctx))
	}()
}

// shed refuses a request with a fast 503 + Retry-After: under a hard
// bound, queueing on the origin would deepen the overload for everyone.
func (p *Proxy) shed(rs *reqState, reason string) (stageOutcome, error) {
	if rs.pageCapture != nil {
		rs.pageCapture.discard()
		rs.w = rs.pageCapture.ResponseWriter
		rs.pageCapture = nil
	}
	p.reg.Counter("dpc.shed_503s").Inc()
	switch reason {
	case "inflight":
		p.reg.Counter("dpc.shed_inflight").Inc()
	case "queue":
		p.reg.Counter("dpc.shed_queue").Inc()
	case "per-key":
		p.reg.Counter("dpc.shed_per_key").Inc()
	case "per-tenant":
		p.reg.Counter("dpc.shed_per_tenant").Inc()
	}
	rs.span.Event(trace.KindShed, "", reason, 0)
	h := rs.w.Header()
	h.Set("Retry-After", strconv.Itoa(int((p.admit.retryAfter+time.Second-1)/time.Second)))
	h.Set("Content-Type", "text/plain; charset=utf-8")
	h.Set("Via", "dpcache-dpc/1.0")
	h.Set("X-Cache", "SHED")
	rs.w.WriteHeader(http.StatusServiceUnavailable)
	_, _ = rs.w.Write([]byte("dpc: origin overloaded, retry later\n"))
	rs.streamed = true // response fully written; respond must not write a body
	rs.cacheState = "SHED"
	return stageRespond, nil
}

// negEligible reports whether an origin failure should be negative-cached:
// a cancelled fetch is the client's doing (or the shutdown path), not
// origin health.
func negEligible(r *http.Request, err error) bool {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		return false
	}
	return !errors.Is(err, context.Canceled)
}

// discardResponseWriter swallows a background revalidation's response;
// the fill side effects are the point.
type discardResponseWriter struct {
	h http.Header
}

func (w *discardResponseWriter) Header() http.Header         { return w.h }
func (w *discardResponseWriter) WriteHeader(int)             {}
func (w *discardResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
