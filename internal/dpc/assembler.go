package dpc

import (
	"bytes"
	"fmt"
	"io"

	"dpcache/internal/fragstore"
	"dpcache/internal/tmpl"
	"dpcache/internal/tmplplan"
	"dpcache/internal/trace"
)

// ErrStale reports that one or more GET instructions referenced slots that
// are empty or (in strict mode) carry a different generation than the
// template expected. The proxy recovers by re-fetching the page with the
// bypass header, reporting the stale references so the BEM invalidates
// them (see AssembleStats.Stale). It is the same value both execution
// paths return — the streaming interpreter here and the compiled executor
// in internal/tmplplan.
var ErrStale = tmplplan.ErrStale

// StaleRef identifies a slot reference that failed during assembly.
type StaleRef = tmplplan.Ref

// AssembleStats reports what one assembly consumed and produced. See
// tmplplan.Stats for field semantics; the interpreter and the compiled
// executor fill it identically.
type AssembleStats = tmplplan.Stats

// Assembler splices fragments into page layouts — the streaming
// interpreter: it re-decodes the template per request and resolves GETs
// strictly in stream order. It remains the conformance oracle for the
// compiled plan path and the fallback for templates the plan path cannot
// take (oversized bodies, corrupt streams whose partial-SET semantics
// require streaming consumption). It is stateless apart from the store
// reference and safe for concurrent use. It works against any fragstore
// backend.
type Assembler struct {
	store  fragstore.FragmentStore
	codec  tmpl.Codec
	strict bool
}

// NewAssembler returns an assembler reading templates in the given codec.
func NewAssembler(store fragstore.FragmentStore, codec tmpl.Codec, strict bool) *Assembler {
	return &Assembler{store: store, codec: codec, strict: strict}
}

// countingReader counts template bytes as the decoder consumes them.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Assemble reads a template from r, applies SET instructions to the store,
// resolves GET instructions from it, and writes the assembled page to w.
//
// On stale GETs, assembly keeps consuming the template (so its SETs still
// land in the store) and returns ErrStale at the end with the failing
// references in AssembleStats.Stale; callers must discard the page and
// fall back. Once the first stale reference is seen no further output is
// written — the page is already unusable, and suppressing the tail is what
// lets a streaming caller with an uncommitted spool abort cleanly.
func (a *Assembler) Assemble(w io.Writer, r io.Reader) (AssembleStats, error) {
	return a.AssembleTrace(w, r, nil)
}

// AssembleTrace is Assemble with decision provenance: each GET or include
// instruction resolves under its own child span of sp, annotated with the
// interned fragment reference and whether the store answered (the
// per-fragment spans of a request trace). A nil sp records nothing and
// allocates nothing extra.
func (a *Assembler) AssembleTrace(w io.Writer, r io.Reader, sp *trace.Span) (AssembleStats, error) {
	var st AssembleStats
	x := &interpState{a: a, w: w, st: &st}
	cr := &countingReader{r: r}
	dec := a.codec.NewDecoder(cr)
	for {
		in, err := dec.Next()
		if err == io.EOF {
			st.TemplateBytes = cr.n
			if len(st.Stale) > 0 {
				first := st.Stale[0]
				return st, fmt.Errorf("%w (first: key %d gen %d, %d total)",
					ErrStale, first.Key, first.Gen, len(st.Stale))
			}
			return st, nil
		}
		if err != nil {
			st.TemplateBytes = cr.n
			return st, fmt.Errorf("dpc: decoding template: %w", err)
		}
		if err := x.step(in, sp, 0); err != nil {
			return st, err
		}
	}
}

// interpState threads the interpreter's per-run mutable state through
// include recursion.
type interpState struct {
	a    *Assembler
	w    io.Writer
	st   *AssembleStats
	seen map[uint64]struct{} // lazily allocated ref dedup
}

func (x *interpState) addRef(key, gen uint32) {
	id := uint64(key)<<32 | uint64(gen)
	if x.seen == nil {
		x.seen = make(map[uint64]struct{}, 8)
	} else if _, dup := x.seen[id]; dup {
		return
	}
	x.seen[id] = struct{}{}
	x.st.Refs = append(x.st.Refs, StaleRef{Key: key, Gen: gen})
}

// step executes one decoded instruction. Nested includes recurse with the
// include's span as the parent, sharing the run's stats and dedup state,
// so staleness doom and SET application span the whole page.
func (x *interpState) step(in tmpl.Instruction, sp *trace.Span, depth int) error {
	st := x.st
	doomed := len(st.Stale) > 0
	switch in.Op {
	case tmpl.OpLiteral:
		st.Literals++
		if doomed {
			return nil
		}
		n, err := x.w.Write(in.Data)
		st.PageBytes += int64(n)
		return err
	case tmpl.OpSet:
		st.Sets++
		if err := x.a.store.Set(in.Key, in.Gen, in.Data); err != nil {
			return err
		}
		x.addRef(in.Key, in.Gen)
		if doomed {
			return nil
		}
		n, err := x.w.Write(in.Data)
		st.PageBytes += int64(n)
		return err
	case tmpl.OpGet:
		st.Gets++
		var fsp *trace.Span
		if sp != nil {
			fsp = sp.Child("fragment")
		}
		data, ok := x.a.store.Get(in.Key, in.Gen, x.a.strict)
		if !ok {
			if fsp != nil {
				fsp.Event(trace.KindMiss, "fragment",
					tmplplan.RefString(in.Key, in.Gen), 0)
				fsp.Finish()
			}
			st.Stale = append(st.Stale, StaleRef{Key: in.Key, Gen: in.Gen})
			return nil
		}
		if fsp != nil {
			fsp.Event(trace.KindHit, "fragment",
				tmplplan.RefString(in.Key, in.Gen), int64(len(data)))
			fsp.Finish()
		}
		x.addRef(in.Key, in.Gen)
		if doomed {
			return nil
		}
		n, err := x.w.Write(data)
		st.PageBytes += int64(n)
		return err
	case tmpl.OpInclude:
		st.Includes++
		if depth >= tmplplan.MaxIncludeDepth {
			return fmt.Errorf("dpc: include depth exceeds %d (key %d gen %d)",
				tmplplan.MaxIncludeDepth, in.Key, in.Gen)
		}
		var fsp *trace.Span
		if sp != nil {
			fsp = sp.Child("include")
		}
		data, ok := x.a.store.Get(in.Key, in.Gen, x.a.strict)
		if !ok {
			if fsp != nil {
				fsp.Event(trace.KindMiss, "fragment",
					tmplplan.RefString(in.Key, in.Gen), 0)
				fsp.Finish()
			}
			st.Stale = append(st.Stale, StaleRef{Key: in.Key, Gen: in.Gen})
			return nil
		}
		if fsp != nil {
			fsp.Event(trace.KindHit, "fragment",
				tmplplan.RefString(in.Key, in.Gen), int64(len(data)))
		}
		x.addRef(in.Key, in.Gen)
		// The nested body is decoded whole before execution (it is already
		// resident fragment memory, not a stream), so a corrupt nested
		// template errors out before any of its side effects apply — the
		// same all-or-nothing the compiled path gets from Compile.
		// Execution still runs even when the page is doomed: the nested
		// template's SETs must land in the store like any others.
		ins, err := tmpl.DecodeAll(x.a.codec, bytes.NewReader(data))
		if err != nil {
			if fsp != nil {
				fsp.Finish()
			}
			return fmt.Errorf("dpc: decoding template: %w", err)
		}
		for _, sub := range ins {
			if err := x.step(sub, fsp, depth+1); err != nil {
				if fsp != nil {
					fsp.Finish()
				}
				return err
			}
		}
		if fsp != nil {
			fsp.Finish()
		}
		return nil
	default:
		return fmt.Errorf("dpc: unexpected op %v in template", in.Op)
	}
}
