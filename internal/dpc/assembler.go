package dpc

import (
	"errors"
	"fmt"
	"io"

	"dpcache/internal/fragstore"
	"dpcache/internal/tmpl"
	"dpcache/internal/trace"
)

// ErrStale reports that one or more GET instructions referenced slots that
// are empty or (in strict mode) carry a different generation than the
// template expected. The proxy recovers by re-fetching the page with the
// bypass header, reporting the stale references so the BEM invalidates
// them (see AssembleStats.Stale).
var ErrStale = errors.New("dpc: template references stale or unset slot")

// StaleRef identifies a slot reference that failed during assembly.
type StaleRef struct {
	Key uint32
	Gen uint32
}

// AssembleStats reports what one assembly consumed and produced.
type AssembleStats struct {
	// TemplateBytes is the template stream size — the bytes that crossed
	// the origin↔DPC link and were scanned for tags (the z·B_C term of
	// the paper's scan-cost analysis).
	TemplateBytes int64
	// PageBytes is the assembled page size delivered to the client.
	PageBytes int64
	Gets      int
	Sets      int
	Literals  int
	// Stale lists GET references that could not be satisfied. When
	// non-empty the page output is unusable and Assemble returns
	// ErrStale — but the template was still consumed to the end, so
	// every SET it carried has been applied to the store. (Aborting at
	// the first bad GET would discard those SETs while the directory
	// already believes them cached, wedging the fragments into a
	// permanent fallback loop.)
	Stale []StaleRef
	// Refs lists the unique fragment references (SETs and satisfied
	// GETs) whose content flowed into the page — the dependency edges
	// the page-tier invalidation fabric records, so a later
	// invalidation of any of them can drop the cached page.
	Refs []StaleRef
}

// Assembler splices fragments into page layouts. It is stateless apart
// from the store reference and safe for concurrent use. It works against
// any fragstore backend.
type Assembler struct {
	store  fragstore.FragmentStore
	codec  tmpl.Codec
	strict bool
}

// NewAssembler returns an assembler reading templates in the given codec.
func NewAssembler(store fragstore.FragmentStore, codec tmpl.Codec, strict bool) *Assembler {
	return &Assembler{store: store, codec: codec, strict: strict}
}

// countingReader counts template bytes as the decoder consumes them.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Assemble reads a template from r, applies SET instructions to the store,
// resolves GET instructions from it, and writes the assembled page to w.
//
// On stale GETs, assembly keeps consuming the template (so its SETs still
// land in the store) and returns ErrStale at the end with the failing
// references in AssembleStats.Stale; callers must discard the page and
// fall back. Once the first stale reference is seen no further output is
// written — the page is already unusable, and suppressing the tail is what
// lets a streaming caller with an uncommitted spool abort cleanly.
func (a *Assembler) Assemble(w io.Writer, r io.Reader) (AssembleStats, error) {
	return a.AssembleTrace(w, r, nil)
}

// AssembleTrace is Assemble with decision provenance: each GET
// instruction resolves under its own child span of sp, annotated with the
// fragment reference and whether the store answered (the per-fragment
// spans of a request trace). A nil sp records nothing and allocates
// nothing extra.
func (a *Assembler) AssembleTrace(w io.Writer, r io.Reader, sp *trace.Span) (AssembleStats, error) {
	var st AssembleStats
	var seen map[uint64]struct{} // lazily allocated ref dedup
	addRef := func(key, gen uint32) {
		id := uint64(key)<<32 | uint64(gen)
		if seen == nil {
			seen = make(map[uint64]struct{}, 8)
		} else if _, dup := seen[id]; dup {
			return
		}
		seen[id] = struct{}{}
		st.Refs = append(st.Refs, StaleRef{Key: key, Gen: gen})
	}
	cr := &countingReader{r: r}
	dec := a.codec.NewDecoder(cr)
	for {
		in, err := dec.Next()
		if err == io.EOF {
			st.TemplateBytes = cr.n
			if len(st.Stale) > 0 {
				first := st.Stale[0]
				return st, fmt.Errorf("%w (first: key %d gen %d, %d total)",
					ErrStale, first.Key, first.Gen, len(st.Stale))
			}
			return st, nil
		}
		if err != nil {
			st.TemplateBytes = cr.n
			return st, fmt.Errorf("dpc: decoding template: %w", err)
		}
		doomed := len(st.Stale) > 0
		switch in.Op {
		case tmpl.OpLiteral:
			st.Literals++
			if doomed {
				continue
			}
			n, err := w.Write(in.Data)
			st.PageBytes += int64(n)
			if err != nil {
				return st, err
			}
		case tmpl.OpSet:
			st.Sets++
			if err := a.store.Set(in.Key, in.Gen, in.Data); err != nil {
				return st, err
			}
			addRef(in.Key, in.Gen)
			if doomed {
				continue
			}
			n, err := w.Write(in.Data)
			st.PageBytes += int64(n)
			if err != nil {
				return st, err
			}
		case tmpl.OpGet:
			st.Gets++
			var fsp *trace.Span
			if sp != nil {
				fsp = sp.Child("fragment")
			}
			data, ok := a.store.Get(in.Key, in.Gen, a.strict)
			if !ok {
				if fsp != nil {
					fsp.Event(trace.KindMiss, "fragment",
						fmt.Sprintf("%d:%d", in.Key, in.Gen), 0)
					fsp.Finish()
				}
				st.Stale = append(st.Stale, StaleRef{Key: in.Key, Gen: in.Gen})
				continue
			}
			if fsp != nil {
				fsp.Event(trace.KindHit, "fragment",
					fmt.Sprintf("%d:%d", in.Key, in.Gen), int64(len(data)))
				fsp.Finish()
			}
			addRef(in.Key, in.Gen)
			if doomed {
				continue
			}
			n, err := w.Write(data)
			st.PageBytes += int64(n)
			if err != nil {
				return st, err
			}
		default:
			return st, fmt.Errorf("dpc: unexpected op %v in template", in.Op)
		}
	}
}
