package dpc

import (
	"net/http"
	"time"

	"dpcache/internal/metrics"
	"dpcache/internal/trace"
)

// NewTracer builds a request tracer with its dpc.trace.* metric family
// wired to reg: sampled (a finished trace admitted to the capture ring),
// dropped (finished but not admitted), slow (met the slow threshold, also
// logged). core shares one tracer across the interior proxy and every
// edge, so a cluster request lands in one ring regardless of which hop
// sampled it.
func NewTracer(reg *metrics.Registry, sampleEvery int, slow time.Duration, ringSize int) *trace.Tracer {
	return trace.New(trace.Config{
		SampleEvery:   sampleEvery,
		SlowThreshold: slow,
		RingSize:      ringSize,
		OnSampled:     func() { reg.Counter("dpc.trace.sampled").Inc() },
		OnDropped:     func() { reg.Counter("dpc.trace.dropped").Inc() },
		OnSlow:        func() { reg.Counter("dpc.trace.slow").Inc() },
	})
}

// traceWriter attributes response bytes and time-to-first-byte to the
// request's root span on their way to the client. It wraps the real
// ResponseWriter *under* any later tee (the pageCapture wraps it in
// turn), so buffered pages, streamed chunks, and coalesced replays are
// all attributed.
type traceWriter struct {
	http.ResponseWriter
	sp *trace.Span
}

func (t *traceWriter) WriteHeader(code int) {
	t.sp.MarkFirstByte()
	t.ResponseWriter.WriteHeader(code)
}

func (t *traceWriter) Write(b []byte) (int, error) {
	t.sp.MarkFirstByte()
	n, err := t.ResponseWriter.Write(b)
	t.sp.AddBytes(int64(n))
	return n, err
}

// Flush forwards to the underlying writer so streaming paths keep their
// flush-per-chunk behavior through the attribution layer.
func (t *traceWriter) Flush() {
	if f, ok := t.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// expositionMetrics renders MetricCatalog in the Prometheus writer's
// form — the catalog's When sentence becomes the HELP line — so
// /_dpc/metrics and docs/METRICS.md can never disagree about the metric
// surface.
func expositionMetrics() []metrics.ExpositionMetric {
	docs := MetricCatalog()
	out := make([]metrics.ExpositionMetric, len(docs))
	for i, d := range docs {
		out[i] = metrics.ExpositionMetric{Name: d.Name, Type: d.Type, Help: d.When}
	}
	return out
}
