package dpc

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"dpcache/internal/clock"
)

// cacheableStatic must refuse responses carrying Vary: the cache is
// URL-keyed, so a varied response would be served to every client
// regardless of their variant. varied reports the refusal so callers can
// count it.
func TestCacheableStaticRefusesVary(t *testing.T) {
	mk := func(h http.Header) *http.Response {
		return &http.Response{StatusCode: http.StatusOK, Header: h}
	}
	ttl, varied := cacheableStatic(mk(http.Header{"Cache-Control": {"max-age=60"}}))
	if ttl != time.Minute || varied {
		t.Fatalf("plain cacheable: ttl=%v varied=%v", ttl, varied)
	}
	ttl, varied = cacheableStatic(mk(http.Header{
		"Cache-Control": {"max-age=60"}, "Vary": {"Cookie"},
	}))
	if ttl != 0 || !varied {
		t.Fatalf("Vary response: ttl=%v varied=%v, want refused and counted", ttl, varied)
	}
	// Uncacheable responses with Vary are not counted as Vary refusals:
	// Cache-Control already blocked them.
	ttl, varied = cacheableStatic(mk(http.Header{"Vary": {"Cookie"}}))
	if ttl != 0 || varied {
		t.Fatalf("no-cache-control Vary response: ttl=%v varied=%v", ttl, varied)
	}
}

// End to end: a max-age response with Vary: Cookie must not be URL-keyed —
// each cookie variant reaches the origin and gets its own body, and the
// refusals are counted.
func TestStaticCacheVaryNotCrossServed(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Cache-Control", "max-age=60")
		w.Header().Set("Vary", "Cookie")
		fmt.Fprintf(w, "variant for %s", r.Header.Get("Cookie"))
	}))
	defer origin.Close()

	p := newTestProxy(t, origin.URL, nil)
	ts := httptest.NewServer(p)
	defer ts.Close()

	get := func(cookie string) string {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/page/varied", nil)
		req.Header.Set("Cookie", cookie)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if got := get("sid=alice"); got != "variant for sid=alice" {
		t.Fatalf("alice got %q", got)
	}
	if got := get("sid=bob"); got != "variant for sid=bob" {
		t.Fatalf("bob got %q — served alice's cached variant", got)
	}
	if got := p.Static().Len(); got != 0 {
		t.Fatalf("static cache holds %d entries, want 0 (Vary responses must not enter)", got)
	}
	if got := p.Registry().Counter("dpc.static_uncacheable_vary").Value(); got != 2 {
		t.Fatalf("dpc.static_uncacheable_vary = %d, want 2", got)
	}
}

// Vary: Accept-Encoding is allowlisted: the varied header's request value
// is folded into the store key, so such responses ARE cacheable — per
// variant — and are not counted as refusals.
func TestCacheableStaticAllowsVaryAcceptEncoding(t *testing.T) {
	resp := &http.Response{StatusCode: http.StatusOK, Header: http.Header{
		"Cache-Control": {"max-age=60"}, "Vary": {"Accept-Encoding"},
	}}
	ttl, varied := cacheableStatic(resp)
	if ttl != time.Minute || varied {
		t.Fatalf("Vary: Accept-Encoding: ttl=%v varied=%v, want cacheable and uncounted", ttl, varied)
	}
	// A mixed Vary with a non-allowlisted member is still refused.
	resp.Header.Set("Vary", "Accept-Encoding, Cookie")
	if ttl, varied = cacheableStatic(resp); ttl != 0 || !varied {
		t.Fatalf("Vary: Accept-Encoding, Cookie: ttl=%v varied=%v, want refused and counted", ttl, varied)
	}
	resp.Header.Set("Vary", "*")
	if ttl, varied = cacheableStatic(resp); ttl != 0 || !varied {
		t.Fatalf("Vary: *: ttl=%v varied=%v, want refused and counted", ttl, varied)
	}
}

// End to end: a Vary: Accept-Encoding response is served from cache to
// clients sending the same Accept-Encoding, while a different encoding
// preference gets its own origin fetch and entry; no Vary refusals are
// counted.
func TestStaticCacheVaryAcceptEncodingKeyed(t *testing.T) {
	var origins atomic.Int64
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		origins.Add(1)
		w.Header().Set("Cache-Control", "max-age=60")
		w.Header().Set("Vary", "Accept-Encoding")
		fmt.Fprintf(w, "encoded for %q", r.Header.Get("Accept-Encoding"))
	}))
	defer origin.Close()

	p := newTestProxy(t, origin.URL, nil)
	ts := httptest.NewServer(p)
	defer ts.Close()

	get := func(ae string) (string, string) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/asset.css", nil)
		if ae != "" {
			req.Header.Set("Accept-Encoding", ae)
		}
		// Suppress the transport's automatic gzip negotiation so the
		// header reaches the proxy exactly as set.
		tr := &http.Transport{DisableCompression: true}
		defer tr.CloseIdleConnections()
		resp, err := (&http.Client{Transport: tr}).Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b), resp.Header.Get("X-Cache")
	}
	if _, state := get("gzip"); state != "MISS" {
		t.Fatalf("first gzip fetch state = %s", state)
	}
	if _, state := get("gzip"); state != "STATIC" {
		t.Fatalf("second gzip fetch state = %s, want STATIC (allowlisted Vary must be cacheable)", state)
	}
	if _, state := get("br"); state != "MISS" {
		t.Fatalf("br fetch state = %s, want MISS (different variant, own key)", state)
	}
	if got := origins.Load(); got != 2 {
		t.Fatalf("origin fetches = %d, want 2 (one per encoding variant)", got)
	}
	if got := p.Static().Len(); got != 2 {
		t.Fatalf("static entries = %d, want 2 variant entries", got)
	}
	if got := p.Registry().Counter("dpc.static_uncacheable_vary").Value(); got != 0 {
		t.Fatalf("dpc.static_uncacheable_vary = %d, want 0 (allowlisted Vary is not a refusal)", got)
	}
}

// Cache-Control directives split across header lines must all be seen: a
// no-store on the second line vetoes a max-age on the first.
func TestCacheableStaticMultiLineCacheControl(t *testing.T) {
	h := http.Header{}
	h.Add("Cache-Control", "max-age=60")
	h.Add("Cache-Control", "no-store")
	ttl, varied := cacheableStatic(&http.Response{StatusCode: http.StatusOK, Header: h})
	if ttl != 0 || varied {
		t.Fatalf("multi-line no-store response: ttl=%v varied=%v, want uncacheable", ttl, varied)
	}
}

// Different spellings and orderings of the same encoding preference must
// share one cache entry; genuinely different preferences must not.
func TestNormalizeVariantTokenSet(t *testing.T) {
	if a, b := normalizeVariant("gzip, br"), normalizeVariant("BR,gzip"); a != b {
		t.Fatalf("same preference set normalized differently: %q vs %q", a, b)
	}
	if a, b := normalizeVariant("gzip, br"), normalizeVariant("gzip, br,"); a != b {
		t.Fatalf("trailing comma changed the key: %q vs %q", a, b)
	}
	if a, b := normalizeVariant("gzip"), normalizeVariant("gzip,gzip"); a != b {
		t.Fatalf("duplicate token changed the key: %q vs %q", a, b)
	}
	if a, b := normalizeVariant("gzip"), normalizeVariant("gzip, br"); a == b {
		t.Fatal("distinct preference sets collapsed")
	}
	if got := normalizeVariant(""); got != "" {
		t.Fatalf("empty value normalized to %q", got)
	}
}

func TestStaticCachePutGet(t *testing.T) {
	c := NewStaticCache(4, nil)
	c.Put("/static/logo", []byte("png-bytes"), "image/png", time.Minute)
	body, ctype, ok := c.Get("/static/logo")
	if !ok || string(body) != "png-bytes" || ctype != "image/png" {
		t.Fatalf("get = %q %q %v", body, ctype, ok)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 0 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
}

func TestStaticCacheMiss(t *testing.T) {
	c := NewStaticCache(4, nil)
	if _, _, ok := c.Get("/nope"); ok {
		t.Fatal("hit on empty cache")
	}
	if _, misses := c.Stats(); misses != 1 {
		t.Fatal("miss not counted")
	}
}

func TestStaticCacheExpiry(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	c := NewStaticCache(4, fake)
	c.Put("/a", []byte("x"), "text/plain", 10*time.Second)
	fake.Advance(9 * time.Second)
	if _, _, ok := c.Get("/a"); !ok {
		t.Fatal("expired early")
	}
	fake.Advance(2 * time.Second)
	if _, _, ok := c.Get("/a"); ok {
		t.Fatal("served past expiry")
	}
	if c.Len() != 0 {
		t.Fatal("expired entry not removed")
	}
}

func TestStaticCacheZeroTTLIgnored(t *testing.T) {
	c := NewStaticCache(4, nil)
	c.Put("/a", []byte("x"), "text/plain", 0)
	if c.Len() != 0 {
		t.Fatal("zero-TTL entry stored")
	}
}

func TestStaticCacheLRUEviction(t *testing.T) {
	c := NewStaticCache(2, nil)
	c.Put("/a", []byte("a"), "t", time.Hour)
	c.Put("/b", []byte("b"), "t", time.Hour)
	if _, _, ok := c.Get("/a"); !ok { // touch a; b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("/c", []byte("c"), "t", time.Hour)
	if _, _, ok := c.Get("/b"); ok {
		t.Fatal("LRU entry b survived")
	}
	if _, _, ok := c.Get("/a"); !ok {
		t.Fatal("recently used entry a evicted")
	}
}

func TestStaticCacheOverwrite(t *testing.T) {
	c := NewStaticCache(2, nil)
	c.Put("/a", []byte("v1"), "t", time.Hour)
	c.Put("/a", []byte("v2"), "t", time.Hour)
	body, _, _ := c.Get("/a")
	if string(body) != "v2" {
		t.Fatalf("body = %q", body)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestStaticCacheCopiesBody(t *testing.T) {
	c := NewStaticCache(2, nil)
	src := []byte("abc")
	c.Put("/a", src, "t", time.Hour)
	src[0] = 'z'
	body, _, _ := c.Get("/a")
	if string(body) != "abc" {
		t.Fatal("cache aliased caller buffer")
	}
}

func TestMaxAgeParsing(t *testing.T) {
	cases := []struct {
		cc   string
		want time.Duration
	}{
		{"", 0},
		{"max-age=60", time.Minute},
		{"public, max-age=300", 5 * time.Minute},
		{"max-age=60, no-store", 0},
		{"no-cache, max-age=60", 0},
		{"private, max-age=60", 0},
		{"max-age=-5", 0},
		{"max-age=abc", 0},
		{"MAX-AGE=10", 10 * time.Second}, // case-insensitive
	}
	for _, tc := range cases {
		if got := maxAgeFrom(tc.cc); got != tc.want {
			t.Errorf("maxAgeFrom(%q) = %v, want %v", tc.cc, got, tc.want)
		}
	}
}

func TestStaticCacheManyEntriesBounded(t *testing.T) {
	c := NewStaticCache(8, nil)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("/f%d", i), []byte("x"), "t", time.Hour)
	}
	if c.Len() != 8 {
		t.Fatalf("len = %d, want 8", c.Len())
	}
}
