package dpc

import "dpcache/internal/trace"

// responseInvariantHeaders declares the request headers that may be
// read on the request path without being folded into the coalesce
// identity key, because the bytes of the selected representation never
// vary on them. forwardedHeaders (pipeline.go) answers "which headers
// make two requests different requests"; this list answers "which
// headers may be consulted anyway". Everything else read off the
// inbound request is a PR 3-class cross-user hazard, and the headerkey
// analyzer (internal/lint) holds every Header.Get/Values in this
// package to one of the two lists.
var responseInvariantHeaders = []string{
	// Conditional revalidation: chooses between 304 and a 200 of the
	// same cached entity; the entity itself is keyed elsewhere.
	"If-None-Match",
	// Trace-id propagation: observability only, never touches
	// response bytes.
	trace.Header,
}

// ForwardedHeaders returns a copy of the identity header set that is
// forwarded to the origin and folded into the coalesce key.
func ForwardedHeaders() []string {
	return append([]string(nil), forwardedHeaders...)
}

// ResponseInvariantHeaders returns a copy of the declared
// response-invariant request-header allowlist.
func ResponseInvariantHeaders() []string {
	return append([]string(nil), responseInvariantHeaders...)
}
