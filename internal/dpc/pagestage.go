package dpc

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"net/http"
	"strings"
	"time"

	"dpcache/internal/tmplplan"
	"dpcache/internal/trace"
)

// The pagecache stage is the whole-page cache tier: a cache of complete
// responses keyed like a coalesced flight (method, URI, forwarded
// variant headers), mounted ahead of coalesce, for anonymous-session
// traffic only. The paper's correctness argument against page-level
// caching (Section 3.2.1) is that the URL does not identify the content —
// but that argument rests on identity the cache cannot see. A request
// carrying no identity (no Cookie, Authorization, or X-User) gives the
// origin nothing to personalize on, so for that slice of traffic the URL
// *does* identify the content and a whole-page tier is sound: an
// anonymous burst on a hot page is served N−1 times from memory with one
// origin fetch. Identity-bearing requests bypass the stage
// (dpc.pagecache_bypass_identity) and take the fragment-assembly path.
//
// Freshness has two signals. The TTL (PageCacheTTL) is the baseline
// bound, and for pages containing *non-cacheable* fragments — content
// the BEM never tracks, regenerated per request — it is the only one, so
// micro-caching windows remain right for such pages. For the cacheable
// fragments, the invalidation fabric closes the gap: assembly records
// fragment→pageKey edges in the proxy's dependency index
// (internal/depindex), and a coherency PageSubscriber wired to the BEM
// drops the exact pages composed from an invalidated fragment the moment
// it dies. With the fabric attached, fragment-backed staleness no longer
// waits for the TTL, which makes realistic (multi-second) TTLs safe.
//
// Entries are stamped with a strong ETag at capture time; an anonymous
// revalidation carrying a matching If-None-Match is answered 304 with no
// body (dpc.pagecache_304s), so pages that survive invalidation cost a
// handshake instead of a transfer.

// defaultPageTTL is the page-cache freshness window when
// Config.PageCacheTTL is zero: a micro-caching TTL, long enough to absorb
// a burst, short enough that staleness of per-request (non-cacheable)
// fragment content stays invisible at human timescales.
const defaultPageTTL = 2 * time.Second

// maxPageCaptureBytes bounds the response bytes teed aside to fill the
// page cache; larger pages are served normally but not captured
// (dpc.pagecache_uncacheable). In-flight capture bytes are charged
// against the page tier's byte ledger, so a storm of concurrent misses
// evicts resident pages instead of holding budget-busting bytes off the
// books.
const maxPageCaptureBytes = 1 << 20

// pageIdentityHeaders mark a request as belonging to an identified
// session. Any of them present → the response may be personalized → the
// whole-page tier must not serve or store it.
var pageIdentityHeaders = []string{"X-User", "Cookie", "Authorization"}

// anonymousSession reports whether the request carries no identity the
// origin could personalize on.
func anonymousSession(r *http.Request) bool {
	for _, h := range pageIdentityHeaders {
		if r.Header.Get(h) != "" {
			return false
		}
	}
	return true
}

// pageKey identifies a cached page. It is the coalesce key — method, full
// request URI, and every forwarded header the origin may vary a response
// on (Accept, Accept-Language, User-Agent, X-Requested-With, …) — so two
// requests share a cached page exactly when they would have shared a
// coalesced fetch: only if the origin would have produced byte-identical
// responses for both. Keying on the URL alone would hand one client's
// variant (a French page, a JSON XHR body) to another. The identity
// headers in the key are always empty here: identity-bearing requests
// bypassed the stage already.
func pageKey(r *http.Request) string { return coalesceKey(r) }

// PageKeyPrefix returns the page-tier store-key prefix shared by every
// variant of one request URI. The coherency fabric's purge events use it
// to drop a URI surgically without knowing the full variant-header key.
func PageKeyPrefix(uri string) string {
	return http.MethodGet + "\x00" + uri + "\x00"
}

// StaticKeyPrefix is PageKeyPrefix's static-tier counterpart (the static
// key is URI plus the folded Accept-Encoding variant).
func StaticKeyPrefix(uri string) string { return uri + "\x00" }

// pageETag computes the strong entity tag a page-tier entry is stamped
// with at capture time: a content hash, so the tag changes exactly when
// the body does and survives re-captures of identical bytes.
func pageETag(body []byte, ctype string) string {
	h := fnv.New128a()
	_, _ = h.Write(body)
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(ctype))
	return fmt.Sprintf("\"%x\"", h.Sum(nil))
}

// etagMatches reports whether an If-None-Match header value matches the
// stored entity tag, per RFC 9110's weak comparison (a W/ prefix on the
// client's copy is ignored — weak comparison is what If-None-Match
// specifies) with support for "*" and comma-separated lists.
func etagMatches(r *http.Request, etag string) bool {
	for _, line := range r.Header.Values("If-None-Match") {
		for _, tok := range strings.Split(line, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "*" {
				return true
			}
			tok = strings.TrimPrefix(tok, "W/")
			if tok != "" && tok == etag {
				return true
			}
		}
	}
	return false
}

// pageCacheable inspects an *origin* response's headers (the proxy does
// not relay them to clients, so the capture cannot be consulted) and
// reports whether the page may enter the page tier: the origin did not
// forbid caching (Cache-Control: no-store, no-cache, private — checked
// across every Cache-Control header line) and set no cookie (a
// Set-Cookie response is per-client state even on an anonymous request).
// Vary needs no check here — every *header* the origin can vary on is
// either folded into pageKey or never forwarded. The one non-header
// exclusion is client IP: X-Forwarded-For is deliberately outside
// pageKey (as it is outside the coalesce key, and for the same reason —
// it differs per client and would disable the tier outright), so origins
// that vary responses on client IP must not enable PageCache.
func pageCacheable(h http.Header) bool {
	if h.Get("Set-Cookie") != "" {
		return false
	}
	for _, v := range h.Values("Cache-Control") {
		for _, part := range strings.Split(v, ",") {
			switch strings.TrimSpace(strings.ToLower(part)) {
			case "no-store", "no-cache", "private":
				return false
			}
		}
	}
	return true
}

// --- pagecache ---

func (p *Proxy) stagePageCache(rs *reqState) (stageOutcome, error) {
	// Bodyless GETs only, the coalescable() discipline: a request body is
	// forwarded to the origin and can vary the response, but is not part
	// of pageKey — caching a bodied GET would serve one body's page to
	// another.
	if p.pages == nil || rs.r.Method != http.MethodGet ||
		rs.r.ContentLength != 0 || len(rs.r.TransferEncoding) > 0 {
		return stageNext, nil
	}
	if !anonymousSession(rs.r) {
		p.reg.Counter("dpc.pagecache_bypass_identity").Inc()
		rs.span.Event(trace.KindBypass, "page", "identity", 0)
		return stageNext, nil
	}
	key := pageKey(rs.r)
	if p.admit != nil && isReval(rs.r.Context()) {
		// A background revalidation skips the lookup — its purpose is to
		// refresh this very entry — but still captures its response below
		// so fillPageCache replaces the stale copy, with the usual
		// fill/invalidate race check voiding the fill if the fabric
		// invalidates a source fragment mid-revalidation.
		rs.pageKey = key
		if p.depix != nil {
			rs.depEpoch = p.depix.Epoch()
		}
		pc := &pageCapture{ResponseWriter: rs.w, reserve: p.pages.ReserveCapture}
		rs.pageCapture = pc
		rs.w = pc
		return stageNext, nil
	}
	lookup := p.pages.GetTagged
	if p.admit != nil {
		// Keep expired pages resident for the admission stage's
		// stale-while-revalidate path (see KeyedStore.GetKeep).
		lookup = p.pages.GetTaggedKeep
	}
	if body, ctype, etag, ok := lookup(key); ok {
		p.reg.Counter("dpc.pagecache_hits").Inc()
		if etag != "" && etagMatches(rs.r, etag) {
			// Conditional hit: the client already holds these bytes. A
			// 304 carries the tag back and nothing else — zero body
			// bytes for a revalidation of a surviving page.
			p.reg.Counter("dpc.pagecache_304s").Inc()
			rs.span.Event(trace.KindHit, "page", "304", 0)
			h := rs.w.Header()
			h.Set("ETag", etag)
			h.Set("Via", "dpcache-dpc/1.0")
			h.Set("X-Cache", "PAGE")
			rs.w.WriteHeader(http.StatusNotModified)
			rs.streamed = true // headers committed; respond must not write a body
			rs.cacheState = "PAGE"
			return stageRespond, nil
		}
		rs.span.Event(trace.KindHit, "page", "", int64(len(body)))
		rs.body, rs.ctype, rs.cacheState = body, ctype, "PAGE"
		rs.pageETag = etag
		return stageRespond, nil
	}
	p.reg.Counter("dpc.pagecache_misses").Inc()
	rs.span.Event(trace.KindMiss, "page", "", 0)
	// Tee everything the rest of the pipeline writes to this client —
	// buffered page, streamed assembly, coalesced broadcast — into a
	// bounded side buffer; stageRespond files it under this key. The
	// epoch snapshot dates the capture: if the fabric flushes the tier
	// while this response is in flight, the fill is discarded (the flush
	// could not have removed an entry not yet filed).
	rs.pageKey = key
	if p.depix != nil {
		rs.depEpoch = p.depix.Epoch()
	}
	pc := &pageCapture{ResponseWriter: rs.w, reserve: p.pages.ReserveCapture}
	rs.pageCapture = pc
	rs.w = pc
	return stageNext, nil
}

// fillPageCache files a captured response into the whole-page tier; called
// from the respond stage once the response has fully reached the client.
func (p *Proxy) fillPageCache(rs *reqState) {
	c := rs.pageCapture
	if p.pages == nil || c == nil {
		return
	}
	defer c.settle()
	if rs.staticFilled {
		// The body just entered the static tier, whose stage runs first
		// and whose TTL the origin chose; a page-tier copy would be dead
		// weight duplicating the bytes.
		return
	}
	if rs.cacheState == "COALESCE-FOLLOWER" {
		// pageKey == coalesce key, so the flight's leader is filling this
		// exact key (with origin-header knowledge the follower lacks).
		return
	}
	if c.status != http.StatusOK || c.overflow || rs.pageUncacheable {
		p.reg.Counter("dpc.pagecache_uncacheable").Inc()
		rs.span.Event(trace.KindBypass, "page", "uncacheable", 0)
		return
	}
	if c.discarded {
		// The capture was dropped mid-request for a reason none of the
		// cases above explain (e.g. this request parked as a follower,
		// then the leader aborted and it fell back to its own fetch):
		// the buffer no longer holds the page. Filing it would poison
		// the key with an empty body.
		return
	}
	body := c.buf.Bytes()
	ctype := c.Header().Get("Content-Type")
	// Settle the in-flight reservation before the Put reserves the stored
	// copy: double-charging the same bytes would evict the very entry
	// being filed on a tight budget.
	c.settle()
	if p.depix != nil {
		// Record the dependency edges *before* the entry becomes
		// servable, so an invalidation landing right after the Put finds
		// the edge and deletes the entry.
		for _, ref := range rs.depRefs {
			p.depix.Record(ref, rs.pageKey)
		}
	}
	p.pages.PutTagged(rs.pageKey, body, ctype, pageETag(body, ctype), p.pageTTL)
	if p.depix != nil &&
		(p.depix.AnyInvalid(rs.depRefs) || p.depix.Epoch() != rs.depEpoch) {
		// Fill/invalidate race: one of this page's fragments died (or
		// the tier was flushed) while the response was in flight. The
		// subscriber's Delete may have run before our Put and missed it;
		// its tombstone/epoch cannot have — unfile the stale page.
		p.pages.Delete(rs.pageKey)
		p.reg.Counter("dpc.pagecache_invalidations").Inc()
		if rs.span != nil {
			cause := "fragment-tombstone"
			if p.depix.Epoch() != rs.depEpoch {
				cause = "epoch-flush"
			}
			rs.span.Event(trace.KindInvalidated, "page", cause, 0)
		}
		return
	}
	p.reg.Counter("dpc.pagecache_fills").Inc()
	rs.span.Event(trace.KindFill, "page", "", int64(len(body)))
}

// pageCapture tees a response into a bounded buffer on its way to the
// client. It deliberately wraps every downstream write path — writePage,
// streamPlain, the streaming spool, a coalesced follower's replay — so
// the page cache fills regardless of which pipeline branch produced the
// page. Buffered bytes are reserved against the page tier's byte ledger
// while in flight (see maxPageCaptureBytes) and settled when the capture
// is filed, discarded, or the request ends.
type pageCapture struct {
	http.ResponseWriter
	status    int
	buf       bytes.Buffer
	overflow  bool
	discarded bool // the fill is already known moot; stop buffering

	reserve  func(delta int64) // page tier's ledger hook; nil skips accounting
	reserved int64
}

// discard drops the retained bytes and stops buffering: called as soon as
// a request learns its fill can never be used (it became a coalesced
// follower — the leader fills the same key — or its body already entered
// the static tier), so a hot burst does not copy the page N extra times.
func (c *pageCapture) discard() {
	c.buf = bytes.Buffer{}
	c.discarded = true
	c.settle()
}

// settle releases the capture's ledger reservation; idempotent, and
// called on every terminal path (fill, discard, overflow, request
// failure).
func (c *pageCapture) settle() {
	if c.reserved != 0 && c.reserve != nil {
		c.reserve(-c.reserved)
		c.reserved = 0
	}
}

func (c *pageCapture) WriteHeader(code int) {
	if c.status == 0 {
		c.status = code
	}
	c.ResponseWriter.WriteHeader(code)
}

func (c *pageCapture) Write(b []byte) (int, error) {
	if c.status == 0 {
		c.status = http.StatusOK
	}
	if !c.overflow && !c.discarded {
		if c.buf.Len()+len(b) <= maxPageCaptureBytes {
			before := int64(c.buf.Cap())
			c.buf.Write(b)
			if delta := int64(c.buf.Cap()) - before; delta > 0 && c.reserve != nil {
				c.reserved += delta
				c.reserve(delta)
			}
		} else {
			c.overflow = true
			c.buf = bytes.Buffer{} // release what was retained
			c.settle()
		}
	}
	return c.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so streaming paths keep their
// flush-per-chunk behavior through the tee.
func (c *pageCapture) Flush() {
	if f, ok := c.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// refIDs converts assembler fragment references into the dependency
// index's ref strings, through the interner so a hot page's refs resolve
// to the same strings every request instead of reformatting
// (tmplplan.RefString and depindex.Ref produce the identical "key:gen"
// form; asserted by TestRefStringMatchesDepindex).
func refIDs(refs []StaleRef) []string {
	if len(refs) == 0 {
		return nil
	}
	out := make([]string, len(refs))
	for i, r := range refs {
		out[i] = tmplplan.RefString(r.Key, r.Gen)
	}
	return out
}
