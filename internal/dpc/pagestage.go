package dpc

import (
	"bytes"
	"net/http"
	"strings"
	"time"
)

// The pagecache stage is the whole-page cache tier: a cache of complete
// responses keyed like a coalesced flight (method, URI, forwarded
// variant headers), mounted ahead of coalesce, for anonymous-session
// traffic only. The paper's correctness argument against page-level
// caching (Section 3.2.1) is that the URL does not identify the content —
// but that argument rests on identity the cache cannot see. A request
// carrying no identity (no Cookie, Authorization, or X-User) gives the
// origin nothing to personalize on, so for that slice of traffic the URL
// *does* identify the content and a short-TTL whole-page tier is sound:
// an anonymous burst on a hot page is served N−1 times from memory with
// one origin fetch. Identity-bearing requests bypass the stage
// (dpc.pagecache_bypass_identity) and take the fragment-assembly path.
//
// Staleness is bounded by PageCacheTTL alone — a page cache cannot see
// fragment invalidations, which is exactly why the tier refuses to hold
// pages longer than a micro-caching window unless told to.

// defaultPageTTL is the page-cache freshness window when
// Config.PageCacheTTL is zero: a micro-caching TTL, long enough to absorb
// a burst, short enough that fragment-level invalidation lag stays
// invisible at human timescales.
const defaultPageTTL = 2 * time.Second

// maxPageCaptureBytes bounds the response bytes teed aside to fill the
// page cache; larger pages are served normally but not captured
// (dpc.pagecache_uncacheable).
const maxPageCaptureBytes = 1 << 20

// pageIdentityHeaders mark a request as belonging to an identified
// session. Any of them present → the response may be personalized → the
// whole-page tier must not serve or store it.
var pageIdentityHeaders = []string{"X-User", "Cookie", "Authorization"}

// anonymousSession reports whether the request carries no identity the
// origin could personalize on.
func anonymousSession(r *http.Request) bool {
	for _, h := range pageIdentityHeaders {
		if r.Header.Get(h) != "" {
			return false
		}
	}
	return true
}

// pageKey identifies a cached page. It is the coalesce key — method, full
// request URI, and every forwarded header the origin may vary a response
// on (Accept, Accept-Language, User-Agent, X-Requested-With, …) — so two
// requests share a cached page exactly when they would have shared a
// coalesced fetch: only if the origin would have produced byte-identical
// responses for both. Keying on the URL alone would hand one client's
// variant (a French page, a JSON XHR body) to another. The identity
// headers in the key are always empty here: identity-bearing requests
// bypassed the stage already.
func pageKey(r *http.Request) string { return coalesceKey(r) }

// pageCacheable inspects an *origin* response's headers (the proxy does
// not relay them to clients, so the capture cannot be consulted) and
// reports whether the page may enter the page tier: the origin did not
// forbid caching (Cache-Control: no-store, no-cache, private — checked
// across every Cache-Control header line) and set no cookie (a
// Set-Cookie response is per-client state even on an anonymous request).
// Vary needs no check here — every *header* the origin can vary on is
// either folded into pageKey or never forwarded. The one non-header
// exclusion is client IP: X-Forwarded-For is deliberately outside
// pageKey (as it is outside the coalesce key, and for the same reason —
// it differs per client and would disable the tier outright), so origins
// that vary responses on client IP must not enable PageCache.
func pageCacheable(h http.Header) bool {
	if h.Get("Set-Cookie") != "" {
		return false
	}
	for _, v := range h.Values("Cache-Control") {
		for _, part := range strings.Split(v, ",") {
			switch strings.TrimSpace(strings.ToLower(part)) {
			case "no-store", "no-cache", "private":
				return false
			}
		}
	}
	return true
}

// --- pagecache ---

func (p *Proxy) stagePageCache(rs *reqState) (stageOutcome, error) {
	// Bodyless GETs only, the coalescable() discipline: a request body is
	// forwarded to the origin and can vary the response, but is not part
	// of pageKey — caching a bodied GET would serve one body's page to
	// another.
	if p.pages == nil || rs.r.Method != http.MethodGet ||
		rs.r.ContentLength != 0 || len(rs.r.TransferEncoding) > 0 {
		return stageNext, nil
	}
	if !anonymousSession(rs.r) {
		p.reg.Counter("dpc.pagecache_bypass_identity").Inc()
		return stageNext, nil
	}
	key := pageKey(rs.r)
	if body, ctype, ok := p.pages.Get(key); ok {
		p.reg.Counter("dpc.pagecache_hits").Inc()
		rs.body, rs.ctype, rs.cacheState = body, ctype, "PAGE"
		return stageRespond, nil
	}
	p.reg.Counter("dpc.pagecache_misses").Inc()
	// Tee everything the rest of the pipeline writes to this client —
	// buffered page, streamed assembly, coalesced broadcast — into a
	// bounded side buffer; stageRespond files it under this key.
	rs.pageKey = key
	pc := &pageCapture{ResponseWriter: rs.w}
	rs.pageCapture = pc
	rs.w = pc
	return stageNext, nil
}

// fillPageCache files a captured response into the whole-page tier; called
// from the respond stage once the response has fully reached the client.
func (p *Proxy) fillPageCache(rs *reqState) {
	c := rs.pageCapture
	if p.pages == nil || c == nil {
		return
	}
	if rs.staticFilled {
		// The body just entered the static tier, whose stage runs first
		// and whose TTL the origin chose; a page-tier copy would be dead
		// weight duplicating the bytes.
		return
	}
	if rs.cacheState == "COALESCED" {
		// pageKey == coalesce key, so the flight's leader is filling this
		// exact key (with origin-header knowledge the follower lacks).
		return
	}
	if c.status != http.StatusOK || c.overflow || rs.pageUncacheable {
		p.reg.Counter("dpc.pagecache_uncacheable").Inc()
		return
	}
	if c.discarded {
		// The capture was dropped mid-request for a reason none of the
		// cases above explain (e.g. this request parked as a follower,
		// then the leader aborted and it fell back to its own fetch):
		// the buffer no longer holds the page. Filing it would poison
		// the key with an empty body.
		return
	}
	p.pages.Put(rs.pageKey, c.buf.Bytes(), c.Header().Get("Content-Type"), p.pageTTL)
	p.reg.Counter("dpc.pagecache_fills").Inc()
}

// pageCapture tees a response into a bounded buffer on its way to the
// client. It deliberately wraps every downstream write path — writePage,
// streamPlain, the streaming spool, a coalesced follower's replay — so
// the page cache fills regardless of which pipeline branch produced the
// page.
type pageCapture struct {
	http.ResponseWriter
	status    int
	buf       bytes.Buffer
	overflow  bool
	discarded bool // the fill is already known moot; stop buffering
}

// discard drops the retained bytes and stops buffering: called as soon as
// a request learns its fill can never be used (it became a coalesced
// follower — the leader fills the same key — or its body already entered
// the static tier), so a hot burst does not copy the page N extra times.
func (c *pageCapture) discard() {
	c.buf = bytes.Buffer{}
	c.discarded = true
}

func (c *pageCapture) WriteHeader(code int) {
	if c.status == 0 {
		c.status = code
	}
	c.ResponseWriter.WriteHeader(code)
}

func (c *pageCapture) Write(b []byte) (int, error) {
	if c.status == 0 {
		c.status = http.StatusOK
	}
	if !c.overflow && !c.discarded {
		if c.buf.Len()+len(b) <= maxPageCaptureBytes {
			c.buf.Write(b)
		} else {
			c.overflow = true
			c.buf = bytes.Buffer{} // release what was retained
		}
	}
	return c.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so streaming paths keep their
// flush-per-chunk behavior through the tee.
func (c *pageCapture) Flush() {
	if f, ok := c.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
