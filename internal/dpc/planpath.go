package dpc

import (
	"bytes"
	"io"

	"dpcache/internal/trace"
)

// The plan path is the assemble stage's fast lane: instead of re-decoding
// the template stream per request (the interpreter in assembler.go), the
// template body is buffered, hashed, and looked up in a compiled-plan
// cache (internal/tmplplan). A hit executes an immutable operator program
// — literal bytes retained once and emitted zero-copy, independent
// fragment GETs prefetched by a bounded worker pool — and a miss compiles
// once and caches for every later request carrying the same bytes. The
// interpreter remains both the conformance oracle (the compiled executor
// must be byte- and stats-identical; see planconform_test.go) and the
// runtime fallback for the cases the plan path refuses: oversized bodies
// and corrupt streams, whose partial-consumption semantics require
// decoding in stream order.

// planMaxTemplate bounds the template bytes buffered for plan-cache
// hashing. Larger templates are handed to the streaming interpreter
// instead of being held resident — the same ceiling the request-body
// replay buffer uses.
const planMaxTemplate = 8 << 20

// Plan-cache defaults (overridden by the PlanCache* config knobs).
const (
	defaultPlanEntries     = 512
	defaultPlanBudget      = 32 << 20
	defaultPlanParallelism = 4
)

// errReader replays a terminal read error so a fallback interpreter run
// over already-buffered bytes still observes the stream failing at the
// same point the plan path saw it.
type errReader struct{ err error }

func (e errReader) Read([]byte) (int, error) { return 0, e.err }

// assembleTrace is the single assemble chokepoint: every template
// assembly — buffered, streaming, and stale-fallback — runs through it.
// With the plan cache disabled it is exactly the interpreter; with it
// enabled the compiled path runs whenever the template can be buffered
// and compiled, falling back to the interpreter otherwise with identical
// output and error semantics either way.
func (p *Proxy) assembleTrace(w io.Writer, body io.Reader, sp *trace.Span) (AssembleStats, error) {
	if p.plans == nil {
		return p.asm.AssembleTrace(w, body, sp)
	}
	buf, err := io.ReadAll(io.LimitReader(body, planMaxTemplate+1))
	if err != nil {
		// The origin stream died mid-template. Replay the prefix through
		// the interpreter so its SETs still land, then surface the read
		// error exactly where a streaming decode would have hit it.
		return p.asm.AssembleTrace(w, io.MultiReader(bytes.NewReader(buf), errReader{err}), sp)
	}
	if len(buf) > planMaxTemplate {
		// Oversized template: stream it rather than holding it resident.
		return p.asm.AssembleTrace(w, io.MultiReader(bytes.NewReader(buf), body), sp)
	}
	plan, hit, err := p.plans.Get(buf)
	if err != nil {
		// Corrupt template: the interpreter over the buffered bytes
		// reproduces the exact partial-consumption semantics (the prefix's
		// SETs apply, then the decode error).
		p.reg.Counter("dpc.plancache_misses").Inc()
		return p.asm.AssembleTrace(w, bytes.NewReader(buf), sp)
	}
	if hit {
		p.reg.Counter("dpc.plancache_hits").Inc()
	} else {
		p.reg.Counter("dpc.plancache_misses").Inc()
		p.reg.Counter("dpc.plancache_compiles").Inc()
	}
	return p.planExec.Run(plan, w, sp)
}
