package dpc

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dpcache/internal/tmpl"
)

func newTestProxy(t *testing.T, originURL string, mutate func(*Config)) *Proxy {
	t.Helper()
	cfg := Config{OriginURL: originURL, Capacity: 32, PublishInterval: -1}
	if mutate != nil {
		mutate(&cfg)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p
}

// K concurrent identical requests must produce exactly one origin fetch,
// with every client receiving the intact page — for plain and template
// responses, buffered and streaming (the streaming leader tees the page
// into the flight buffer for its followers).
func TestCoalesceStorm(t *testing.T) {
	for _, tc := range []struct {
		name     string
		stream   bool
		template bool
	}{
		{"plain/buffered", false, false},
		{"plain/streaming", true, false},
		{"template/buffered", false, true},
		{"template/streaming", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			testCoalesceStorm(t, tc.stream, tc.template)
		})
	}
}

func testCoalesceStorm(t *testing.T, stream, template bool) {
	const followers = 8
	const wantBody = "<html>storm page</html>"
	var fetches atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fetches.Add(1)
		close(entered)
		<-release
		if !template {
			fmt.Fprint(w, wantBody)
			return
		}
		var buf bytes.Buffer
		enc := tmpl.Binary{}.NewEncoder(&buf)
		_ = enc.Literal([]byte("<html>"))
		_ = enc.Set(1, 1, []byte("storm page"))
		_ = enc.Literal([]byte("</html>"))
		_ = enc.Flush()
		w.Header().Set("X-DPC-Template", "binary")
		_, _ = w.Write(buf.Bytes())
	}))
	defer origin.Close()

	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.Coalesce = true
		c.Stream = stream
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	type result struct {
		body  string
		cache string
		err   error
	}
	get := func(ch chan<- result) {
		resp, err := http.Get(ts.URL + "/page/storm")
		if err != nil {
			ch <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		ch <- result{body: string(b), cache: resp.Header.Get("X-Cache"), err: err}
	}

	results := make(chan result, followers+1)
	go get(results) // leader
	<-entered       // origin is now blocked inside the leader's fetch
	// The key must match what the real client sends — the coalesce key now
	// covers every forwarded header, including the client's User-Agent.
	keyReq := httptest.NewRequest(http.MethodGet, "/page/storm", nil)
	keyReq.Header.Set("User-Agent", "Go-http-client/1.1")
	key := coalesceKey(keyReq)
	for i := 0; i < followers; i++ {
		go get(results)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.flights.waiting(key) < followers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d followers parked", p.flights.waiting(key))
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	var coalesced int
	for i := 0; i < followers+1; i++ {
		res := <-results
		if res.err != nil {
			t.Fatal(res.err)
		}
		if res.body != wantBody {
			t.Fatalf("body = %q", res.body)
		}
		if res.cache == "COALESCE-FOLLOWER" {
			coalesced++
		}
	}
	if got := fetches.Load(); got != 1 {
		t.Fatalf("origin saw %d fetches, want 1", got)
	}
	if coalesced != followers {
		t.Fatalf("%d responses marked COALESCE-FOLLOWER, want %d", coalesced, followers)
	}
	if got := p.Registry().Counter("dpc.coalesced").Value(); got != followers {
		t.Fatalf("dpc.coalesced = %d, want %d", got, followers)
	}
	if got := p.Registry().Counter("dpc.requests").Value(); got != followers+1 {
		t.Fatalf("dpc.requests = %d, want %d", got, followers+1)
	}
}

// Requests that differ in session identity must not share a fetch.
func TestCoalesceKeySeparatesIdentities(t *testing.T) {
	base := httptest.NewRequest(http.MethodGet, "/page/x?a=1", nil)
	alice := base.Clone(base.Context())
	alice.Header.Set("X-User", "alice")
	bob := base.Clone(base.Context())
	bob.Header.Set("X-User", "bob")
	cookie := base.Clone(base.Context())
	cookie.Header.Set("Cookie", "sid=1")
	auth := base.Clone(base.Context())
	auth.Header.Set("Authorization", "Bearer tok")
	lang := base.Clone(base.Context())
	lang.Header.Set("Accept-Language", "de")
	otherURL := httptest.NewRequest(http.MethodGet, "/page/x?a=2", nil)
	head := httptest.NewRequest(http.MethodHead, "/page/x?a=1", nil)

	keys := map[string]string{
		"anon":   coalesceKey(base),
		"alice":  coalesceKey(alice),
		"bob":    coalesceKey(bob),
		"cookie": coalesceKey(cookie),
		"auth":   coalesceKey(auth),
		"lang":   coalesceKey(lang),
		"url":    coalesceKey(otherURL),
		"head":   coalesceKey(head),
	}
	seen := map[string]string{}
	for name, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Fatalf("%s and %s share a coalesce key", prev, name)
		}
		seen[k] = name
	}

	post := httptest.NewRequest(http.MethodPost, "/page/x", strings.NewReader("body"))
	if coalescable(post) {
		t.Fatal("POST must not coalesce")
	}
	if !coalescable(base) {
		t.Fatal("bodyless GET must coalesce")
	}
}

// templateOrigin serves a SET-template on the first capable fetch of a
// path and a GET-template afterwards, mirroring the BEM's behavior.
func templateOrigin(t *testing.T, lit []byte, frag []byte) *httptest.Server {
	t.Helper()
	var mu sync.Mutex
	seen := map[string]bool{}
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		enc := tmpl.Binary{}.NewEncoder(&buf)
		mu.Lock()
		warm := seen[r.URL.Path]
		seen[r.URL.Path] = true
		mu.Unlock()
		if err := enc.Literal(lit); err != nil {
			t.Error(err)
		}
		if warm {
			_ = enc.Get(1, 1)
		} else {
			_ = enc.Set(1, 1, frag)
		}
		_ = enc.Literal([]byte("</page>"))
		_ = enc.Flush()
		w.Header().Set("X-DPC-Template", "binary")
		_, _ = w.Write(buf.Bytes())
	}))
}

// Streaming assembly must produce byte-identical pages to the buffered
// path, on both the SET (cold) and GET (warm) requests — including
// literals that contain the codec's own magic bytes.
func TestStreamingGoldenIdentical(t *testing.T) {
	lit := append([]byte("<html>"), tmpl.Magic...)
	lit = append(lit, []byte("payload")...)
	frag := bytes.Repeat([]byte("F"), 2048)
	origin := templateOrigin(t, lit, frag)
	defer origin.Close()

	want := append(append(append([]byte{}, lit...), frag...), []byte("</page>")...)

	for _, strict := range []bool{false, true} {
		for _, stream := range []bool{false, true} {
			name := fmt.Sprintf("strict=%v/stream=%v", strict, stream)
			p := newTestProxy(t, origin.URL, func(c *Config) {
				c.Strict = strict
				c.Stream = stream
			})
			ts := httptest.NewServer(p)
			path := fmt.Sprintf("/page/golden-%v-%v", strict, stream)
			for i := 0; i < 2; i++ { // cold (SET) then warm (GET)
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !bytes.Equal(body, want) {
					t.Fatalf("%s request %d: body %q, want %q", name, i, body, want)
				}
			}
			ts.Close()
		}
	}
}

// In strict streaming mode, staleness caught inside the look-ahead spool
// must abort cleanly to the bypass path: the client sees a complete 200
// page, never a torn response.
func TestStreamingStrictStaleAbortToBypass(t *testing.T) {
	var sawBypass atomic.Bool
	var staleReport atomic.Value
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("X-DPC-Bypass") != "" {
			sawBypass.Store(true)
			staleReport.Store(r.Header.Get("X-DPC-Stale"))
			fmt.Fprint(w, "<html>bypass page</html>")
			return
		}
		var buf bytes.Buffer
		enc := tmpl.Binary{}.NewEncoder(&buf)
		_ = enc.Literal([]byte("<html>head</html>"))
		_ = enc.Get(5, 9) // never SET: stale
		_ = enc.Flush()
		w.Header().Set("X-DPC-Template", "binary")
		_, _ = w.Write(buf.Bytes())
	}))
	defer origin.Close()

	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.Strict = true
		c.Stream = true
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/page/stale")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d err=%v", resp.StatusCode, err)
	}
	if string(body) != "<html>bypass page</html>" {
		t.Fatalf("body = %q", body)
	}
	if !sawBypass.Load() {
		t.Fatal("origin never saw the bypass fetch")
	}
	if got := staleReport.Load(); got != "5:9" {
		t.Fatalf("stale report = %q, want 5:9", got)
	}
	if got := p.Registry().Counter("dpc.stale_fallbacks").Value(); got != 1 {
		t.Fatalf("stale_fallbacks = %d", got)
	}
	if got := p.Registry().Counter("dpc.stream_aborts").Value(); got != 0 {
		t.Fatalf("stream_aborts = %d, want 0", got)
	}
}

// When staleness surfaces only after the spool has overflowed, the page is
// torn: the proxy must abort the response rather than silently serving a
// truncated or patched-together page — but it must still report the stale
// slots to the BEM out of band, or every later request repeats the abort.
func TestStreamingStaleOverflowAborts(t *testing.T) {
	var staleReport atomic.Value
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("X-DPC-Bypass") != "" {
			staleReport.Store(r.Header.Get("X-DPC-Stale"))
			fmt.Fprint(w, "report acknowledged")
			return
		}
		var buf bytes.Buffer
		enc := tmpl.Binary{}.NewEncoder(&buf)
		_ = enc.Literal(bytes.Repeat([]byte("x"), 100)) // overflows the 16-byte spool
		_ = enc.Get(5, 9)                               // stale after commit
		_ = enc.Flush()
		w.Header().Set("X-DPC-Template", "binary")
		_, _ = w.Write(buf.Bytes())
	}))
	defer origin.Close()

	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.Strict = true
		c.Stream = true
		c.StreamSpoolBytes = 16
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/page/torn")
	if err == nil {
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Fatal("torn streamed page was delivered as a clean response")
	}
	if got := p.Registry().Counter("dpc.stream_aborts").Value(); got != 1 {
		t.Fatalf("stream_aborts = %d, want 1", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for staleReport.Load() == nil {
		if time.Now().After(deadline) {
			t.Fatal("stale slots never reported to the BEM after the abort")
		}
		time.Sleep(time.Millisecond)
	}
	if got := staleReport.Load(); got != "5:9" {
		t.Fatalf("stale report = %q, want 5:9", got)
	}
}

// Non-strict streaming must still recover cleanly from an unset slot
// caught inside the spool (cold-start staleness is not strict-only).
func TestStreamingNonStrictStaleRecovers(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("X-DPC-Bypass") != "" {
			fmt.Fprint(w, "bypass page")
			return
		}
		var buf bytes.Buffer
		enc := tmpl.Binary{}.NewEncoder(&buf)
		_ = enc.Literal([]byte("<html>"))
		_ = enc.Get(2, 1) // never SET
		_ = enc.Flush()
		w.Header().Set("X-DPC-Template", "binary")
		_, _ = w.Write(buf.Bytes())
	}))
	defer origin.Close()

	p := newTestProxy(t, origin.URL, func(c *Config) { c.Stream = true }) // Strict=false
	ts := httptest.NewServer(p)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/page/cold")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "bypass page" {
		t.Fatalf("status=%d body=%q", resp.StatusCode, body)
	}
}

// The proxy must forward the client's real method, body, and headers to
// the origin — not rewrite everything into a bare GET.
func TestMethodBodyAndHeadersForwarded(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		fmt.Fprintf(w, "%s|%s|%s|%s", r.Method, body,
			r.Header.Get("Content-Type"), r.Header.Get("Authorization"))
	}))
	defer origin.Close()

	p := newTestProxy(t, origin.URL, nil)
	ts := httptest.NewServer(p)
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/page/form", strings.NewReader("a=1&b=2"))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("Authorization", "Bearer tok")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want := "POST|a=1&b=2|application/x-www-form-urlencoded|Bearer tok"
	if string(body) != want {
		t.Fatalf("origin saw %q, want %q", body, want)
	}
}

// A streamed plain response with an empty body (HEAD) must commit the
// origin's headers: streamPlain used to leave the response uncommitted when
// no byte was copied, letting writePage clobber the origin's real
// Content-Length with 0.
func TestStreamedHeadKeepsContentLength(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodHead {
			t.Errorf("origin saw method %s, want HEAD", r.Method)
		}
		w.Header().Set("Content-Type", "text/plain")
		w.Header().Set("Content-Length", "42")
	}))
	defer origin.Close()

	p := newTestProxy(t, origin.URL, func(c *Config) { c.Stream = true })
	ts := httptest.NewServer(p)
	defer ts.Close()

	resp, err := http.Head(ts.URL + "/page/asset")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Length"); got != "42" {
		t.Fatalf("Content-Length = %q, want the origin's 42", got)
	}
	if got := resp.Header.Get("Content-Type"); got != "text/plain" {
		t.Fatalf("Content-Type = %q", got)
	}
}

// Static-cache hits must be counted like every other served response (the
// respond stage owns the counters), not skip metrics entirely.
func TestStaticHitCountedInRespondStage(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Cache-Control", "max-age=60")
		w.Header().Set("Content-Type", "text/css")
		fmt.Fprint(w, "body{}")
	}))
	defer origin.Close()

	p := newTestProxy(t, origin.URL, nil)
	ts := httptest.NewServer(p)
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/static/site.css")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	reg := p.Registry()
	if got := reg.Counter("dpc.static_hits").Value(); got != 2 {
		t.Fatalf("static_hits = %d, want 2", got)
	}
	if got := reg.Counter("dpc.requests").Value(); got != 3 {
		t.Fatalf("dpc.requests = %d, want 3 (hits must be counted)", got)
	}
	if got := reg.Histogram("dpc.latency").Count(); got != 3 {
		t.Fatalf("dpc.latency count = %d, want 3", got)
	}
}

// Every request must leave per-stage latency observations behind.
func TestPerStageLatencyRecorded(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "plain")
	}))
	defer origin.Close()
	p := newTestProxy(t, origin.URL, nil)
	ts := httptest.NewServer(p)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/page/x")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	counts := map[string]int64{}
	for _, st := range p.Stages() {
		counts[st.Name] = st.hist.Count()
	}
	for _, name := range []string{"admin", "static-cache", "coalesce", "origin-fetch", "respond"} {
		if counts[name] != 1 {
			t.Fatalf("stage %s observed %d requests, want 1 (all: %v)", name, counts[name], counts)
		}
	}
	// A plain passthrough short-circuits before assemble/stale-fallback.
	if counts["assemble"] != 0 || counts["stale-fallback"] != 0 {
		t.Fatalf("short-circuited stages ran: %v", counts)
	}
	snap := p.Registry().Snapshot()
	if snap["dpc.stage.respond.latency.count"] != 1 {
		t.Fatalf("stage histogram missing from registry snapshot: %v", snap)
	}
}

// The background publisher must refresh dpc.store.* gauges without anyone
// scraping /_dpc/stats, and stop on Close.
func TestBackgroundStorePublish(t *testing.T) {
	origin := httptest.NewServer(http.NotFoundHandler())
	defer origin.Close()
	p, err := New(Config{OriginURL: origin.URL, Capacity: 8, PublishInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Store().Set(3, 1, []byte("fragment")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Registry().Gauge("dpc.store.resident").Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("publisher never refreshed dpc.store.resident")
		}
		time.Sleep(time.Millisecond)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	_ = p.Close() // idempotent
}

// BenchmarkAssembleStreamingVsBuffered shows the allocation contrast the
// streaming mode exists for: buffered assembly allocates O(page) per
// request while streaming assembly stays O(spool) regardless of page size.
func BenchmarkAssembleStreamingVsBuffered(b *testing.B) {
	for _, pageKB := range []int{64, 512, 2048} {
		store, _ := NewStore(64)
		frag := bytes.Repeat([]byte("f"), 1024)
		var ins []tmpl.Instruction
		for k := uint32(0); k < uint32(pageKB); k++ {
			key := k % 64
			_ = store.Set(key, 1, frag)
			ins = append(ins, tmpl.Instruction{Op: tmpl.OpGet, Key: key, Gen: 1})
		}
		var buf bytes.Buffer
		_ = tmpl.EncodeAll(tmpl.Binary{}, &buf, ins)
		raw := buf.Bytes()
		asm := NewAssembler(store, tmpl.Binary{}, true)

		b.Run(fmt.Sprintf("buffered/page=%dKB", pageKB), func(b *testing.B) {
			b.SetBytes(int64(pageKB) * 1024)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var page bytes.Buffer
				if _, err := asm.Assemble(&page, bytes.NewReader(raw)); err != nil {
					b.Fatal(err)
				}
				_, _ = io.Copy(io.Discard, &page)
			}
		})
		b.Run(fmt.Sprintf("streaming/page=%dKB", pageKB), func(b *testing.B) {
			b.SetBytes(int64(pageKB) * 1024)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := asm.Assemble(io.Discard, bytes.NewReader(raw)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
