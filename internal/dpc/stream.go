package dpc

import (
	"net/http"
	"strconv"
	"sync"
)

// Streaming assembly support: instead of materializing every page in a
// full-size buffer before the first client byte, the assemble stage writes
// through a spoolWriter. A bounded look-ahead spool (both modes — unset
// slots make staleness reachable even without strict generation checks)
// holds back the head of the page so staleness detected early can still
// abort to a clean bypass fetch with nothing committed to the client.

// defaultSpoolBytes is the look-ahead window when Config.StreamSpoolBytes
// is zero.
const defaultSpoolBytes = 64 << 10

// maxPooledSpool caps the capacity of spools returned to the pool so one
// giant page does not pin memory forever.
const maxPooledSpool = 1 << 20

// copyBufPool provides scratch buffers for spool-free passthrough copies
// (the io.Copy replacement for the old full-body ReadAll).
var copyBufPool = sync.Pool{New: func() any {
	b := make([]byte, 32<<10)
	return &b
}}

// spoolPool recycles look-ahead spools across requests.
var spoolPool = sync.Pool{New: func() any { return new([]byte) }}

// spoolWriter streams assembled output to the client, holding back up to
// max bytes. Until the spool overflows nothing — not even response headers
// — has been committed, so the caller can still discard the page and fall
// back. Once committed, writes pass straight through to the client and,
// when the request leads a coalesced flight, are teed into its broadcast
// buffer so followers stream the page live. Bytes still in the spool are
// deliberately not broadcast: an abort-to-bypass must leave followers a
// clean slate.
type spoolWriter struct {
	rs        *reqState
	max       int
	spool     []byte
	spoolRef  *[]byte
	committed bool
	written   int64
	// clientGone flips when the client's write fails while followers are
	// parked on the leader's flight: from then on assembly keeps running
	// and every chunk is broadcast in full, the dead client's writes
	// ignored, so committed followers receive the complete page instead
	// of an aborted flight.
	clientGone bool
	// drains counts leader-drain activations (dpc.coalesce_leader_drains;
	// nil when the proxy registry is absent in unit tests).
	drains interface{ Inc() }
}

// send delivers committed bytes to the client and the flight broadcast.
func (s *spoolWriter) send(b []byte) (int, error) {
	if s.clientGone {
		if f := s.rs.flight; f != nil {
			f.append(b)
		}
		_, _ = s.rs.w.Write(b) // keep the page-capture tee complete
		s.written += int64(len(b))
		return len(b), nil
	}
	n, err := s.rs.w.Write(b)
	s.written += int64(n)
	if f := s.rs.flight; f != nil {
		f.append(b[:n])
	}
	if err != nil || n < len(b) {
		if f := s.rs.flight; f != nil && f.waiterCount() > 0 {
			s.clientGone = true
			if s.drains != nil {
				s.drains.Inc()
			}
			if n < len(b) {
				f.append(b[n:]) // complete the chunk for followers
			}
			s.written += int64(len(b) - n)
			return len(b), nil
		}
	}
	return n, err
}

func newSpoolWriter(rs *reqState, max int) *spoolWriter {
	s := &spoolWriter{rs: rs, max: max}
	if max > 0 {
		s.spoolRef = spoolPool.Get().(*[]byte)
		s.spool = (*s.spoolRef)[:0]
	}
	return s
}

func (s *spoolWriter) Write(b []byte) (int, error) {
	if !s.committed {
		if len(s.spool)+len(b) <= s.max {
			s.spool = append(s.spool, b...)
			return len(b), nil
		}
		if err := s.commit(false); err != nil {
			return 0, err
		}
	}
	return s.send(b)
}

// commit sends response headers and any spooled bytes. final reports that
// the page is already complete, in which case the exact Content-Length is
// known and set (the whole page fit in the spool).
func (s *spoolWriter) commit(final bool) error {
	s.committed = true
	h := s.rs.w.Header()
	ctype := s.rs.ctype
	if ctype == "" {
		ctype = "text/html; charset=utf-8"
	}
	h.Set("Content-Type", ctype)
	if final {
		h.Set("Content-Length", strconv.Itoa(len(s.spool)))
	}
	h.Set("Via", "dpcache-dpc/1.0")
	h.Set("X-Cache", s.rs.cacheState)
	if f := s.rs.flight; f != nil {
		f.publishHeaders(ctype, -1)
	}
	s.rs.w.WriteHeader(http.StatusOK)
	if len(s.spool) > 0 {
		_, err := s.send(s.spool)
		s.spool = s.spool[:0]
		if err != nil {
			return err
		}
	}
	return nil
}

// flush finalizes a successful assembly, committing the spool if nothing
// has been sent yet.
func (s *spoolWriter) flush() error {
	if s.committed {
		return nil
	}
	return s.commit(true)
}

// release returns the spool to the pool.
func (s *spoolWriter) release() {
	if s.spoolRef != nil && cap(s.spool) <= maxPooledSpool {
		*s.spoolRef = s.spool[:0]
		spoolPool.Put(s.spoolRef)
	}
	s.spoolRef, s.spool = nil, nil
}
