package dpc

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"dpcache/internal/clock"
	"dpcache/internal/depindex"
	"dpcache/internal/fragstore"
	"dpcache/internal/metrics"
	"dpcache/internal/pagecache"
	"dpcache/internal/tmpl"
	"dpcache/internal/tmplplan"
	"dpcache/internal/trace"
)

// Headers shared with the origin (duplicated here to avoid an import cycle
// with package origin; the contract is defined in that package's docs).
const (
	headerCapable  = "X-DPC-Capable"
	headerBypass   = "X-DPC-Bypass"
	headerTemplate = "X-DPC-Template"
	headerStale    = "X-DPC-Stale"
)

// Config parameterizes a Proxy.
type Config struct {
	// OriginURL is the base URL of the origin site, e.g.
	// "http://127.0.0.1:8080". Required.
	OriginURL string
	// Capacity is the slot count; it must match (or exceed) the BEM's
	// configured capacity. Required unless Store is provided.
	Capacity int
	// Store overrides the fragment-store backend. When nil a
	// paper-faithful slot store of Capacity slots is created; pass a
	// fragstore.Sharded (or any other FragmentStore) to change the
	// concurrency and capacity model without touching the proxy.
	Store fragstore.FragmentStore
	// Codec must match the origin's template codec; defaults to binary.
	Codec tmpl.Codec
	// Strict enables generation checking on GETs plus transparent
	// re-fetch on staleness (design decision 4 in DESIGN.md).
	Strict bool
	// Coalesce collapses concurrent identical in-flight origin fetches
	// (same method, URL, and session identity) into a single fetch whose
	// page is broadcast, chunk by chunk, to every parked request as the
	// leader's assembly proceeds.
	Coalesce bool
	// CoalesceBufferBytes bounds each flight's broadcast buffer (0 selects
	// 4 MiB). Once a leader has produced more than this, the flight seals:
	// followers already attached keep streaming, late arrivals degrade to
	// their own origin fetch instead of replaying the oversized page, and
	// followers lagging more than the cap behind the leader are shed (a
	// stalled client cannot pin the page in memory).
	CoalesceBufferBytes int
	// Stream writes pages to the client as the template decodes instead
	// of buffering whole pages: assembly streams after a bounded
	// look-ahead spool and plain passthrough bodies are copied with a
	// pooled buffer.
	Stream bool
	// StreamSpoolBytes bounds the streaming look-ahead spool (0 selects
	// 64 KiB). Staleness detected while the head of the page still fits
	// in the spool aborts cleanly to a bypass fetch; past it, the
	// response is torn, the connection is aborted, and the stale slots
	// are reported to the BEM out of band.
	StreamSpoolBytes int
	// PublishInterval is the period of the background ticker that
	// refreshes the dpc.store.* gauges via fragstore.Publish (0 selects
	// 10s; negative disables the ticker). Stop it with Close.
	PublishInterval time.Duration
	// Transport overrides the HTTP transport used to reach the origin
	// (tests inject metered or in-memory transports).
	Transport http.RoundTripper
	// Registry receives dpc.* metrics; optional.
	Registry *metrics.Registry
	// DisableStaticCache turns off URL-keyed caching of explicitly
	// cacheable non-template responses (on by default, as in the
	// paper's ISA-server setup).
	DisableStaticCache bool
	// StaticCacheEntries bounds the static cache (0 selects 1024).
	StaticCacheEntries int
	// StaticClock overrides the static cache's expiry clock (tests).
	StaticClock clock.Clock
	// PageCache mounts the whole-page cache stage ahead of coalesce:
	// complete responses to anonymous-session GETs (no Cookie,
	// Authorization, or X-User) are cached for PageCacheTTL — keyed like
	// a coalesced flight (method, URI, forwarded variant headers) — and
	// served with X-Cache: PAGE. Identity-bearing requests bypass the
	// stage. Off by default — a page cache cannot see fragment
	// invalidations, so enabling it trades bounded staleness for burst
	// absorption. Like Coalesce, the key excludes the per-client
	// X-Forwarded-For: origins that vary responses on client IP
	// (geo-targeting) must not enable PageCache.
	PageCache bool
	// PageCacheTTL bounds page-cache staleness (0 selects the 2s
	// micro-caching default).
	PageCacheTTL time.Duration
	// PageCacheEntries bounds resident pages (0 selects 1024).
	PageCacheEntries int
	// PageCacheBudget bounds resident page bytes across the tier (0 =
	// unbounded); enforced by the keyed store's global ledger.
	PageCacheBudget int64
	// PageCacheStore overrides the page cache's keyed backend (the
	// disk-backed tiered store, or a test double). When non-nil,
	// PageCacheEntries, PageCacheBudget, and PageClock stop applying —
	// the caller owns the store's sizing and lifecycle. Ignored unless
	// PageCache is set.
	PageCacheStore fragstore.Keyed
	// PageClock overrides the page cache's expiry clock (tests).
	PageClock clock.Clock
	// PlanCache compiles each distinct template body into an immutable
	// operator program, cached by content hash (internal/tmplplan), so
	// repeat assemblies skip the per-request decode and resolve
	// independent fragment GETs with a bounded parallel prefetch. The
	// streaming interpreter remains the fallback for oversized or corrupt
	// templates; output bytes and error semantics are identical on both
	// paths. Content hashing makes origin redeploys miss naturally, and
	// the coherency fabric's "plan" scope flushes the tier explicitly.
	PlanCache bool
	// PlanCacheEntries bounds resident compiled plans (0 selects 512).
	PlanCacheEntries int
	// PlanCacheBudget bounds the summed retained footprint of resident
	// plans (0 selects 32 MiB).
	PlanCacheBudget int64
	// PlanParallelism bounds the worker fan-out resolving a plan's
	// independent fragment GETs (0 selects 4; 1 resolves everything
	// sequentially in walk order).
	PlanParallelism int
	// DepIndexBudget bounds the dependency index's retained edge bytes
	// (0 selects 1 MiB). The index records which fragments flowed into
	// which page-tier entries so the coherency fabric can invalidate
	// them surgically; over budget it evicts edges and the fabric falls
	// back to scoped flushes (see internal/depindex).
	DepIndexBudget int64
	// Trace enables request-scoped tracing (internal/trace): a span tree
	// per request with per-stage and per-fragment child spans, sampled
	// into a bounded ring served at /_dpc/trace. Off by default; the
	// disabled path adds zero allocations per request.
	Trace bool
	// TraceSampleEvery admits 1 in N finished traces to the ring by rate
	// (0 selects 64; 1 samples everything). Slow requests are always
	// admitted regardless of the rate.
	TraceSampleEvery int
	// TraceSlow is the always-capture slow threshold (0 selects 250ms;
	// negative disables slow capture and the slow-request log).
	TraceSlow time.Duration
	// TraceRingSize bounds retained traces (0 selects 256).
	TraceRingSize int
	// Tracer overrides the proxy's tracer with a shared one (core wires
	// one tracer across the interior proxy and its edges so a cluster
	// request lands in one ring). Non-nil implies Trace.
	Tracer *trace.Tracer
	// Pprof mounts net/http/pprof under /_dpc/pprof/ on the admin mux.
	// Off by default: profiles expose internals and cost CPU on demand.
	Pprof bool
	// Admission mounts the admission-control stage between the cache-hit
	// tiers and coalesce (see admission.go): under measured pressure the
	// proxy serves stale-while-revalidate from the page or static tier
	// instead of queueing on the origin, negative-caches origin failures,
	// and sheds with a fast 503 + Retry-After when a hard bound is hit
	// and no stale copy exists. Off by default. When on, the cache-hit
	// stages stop lazily removing expired entries (GetKeep), so the stale
	// copies the stage serves stay resident until refreshed or evicted.
	Admission bool
	// MaxOriginInFlight bounds concurrent origin-bound requests through
	// this proxy (0 = unbounded). At the bound, new origin work is shed.
	MaxOriginInFlight int
	// MaxKeyInFlight bounds concurrent origin-bound requests per coalesce
	// key (0 = unbounded). Mostly relevant with coalescing off.
	MaxKeyInFlight int
	// MaxTenantInFlight bounds concurrent origin-bound requests per
	// tenant, identified by the X-User header (0 = unbounded). Anonymous
	// requests are never tenant-bounded.
	MaxTenantInFlight int
	// MaxFlightWaiters bounds followers parked on one coalesce flight
	// (0 = unbounded). Past the bound, further arrivals for the key are
	// shed rather than queued.
	MaxFlightWaiters int
	// ShedLatency is the origin-latency EWMA threshold past which the
	// stage prefers serving stale over queueing new origin work (0
	// disables the signal). A soft signal: with no stale copy the request
	// is admitted anyway.
	ShedLatency time.Duration
	// StaleWindow bounds how far past its TTL a cache entry may be served
	// under pressure (0 selects 30s).
	StaleWindow time.Duration
	// NegTTL is the negative-cache lifetime of an origin failure (0
	// selects 1s): requests for a key that just failed are shed (or
	// served stale) for this long instead of re-queueing on a sick origin.
	NegTTL time.Duration
	// RetryAfter is the Retry-After hint stamped on shed 503s (0 selects
	// 1s; rounded up to whole seconds).
	RetryAfter time.Duration
}

// Proxy is the Dynamic Proxy Cache in reverse-proxy mode: it fronts the
// origin, stores fragments, and assembles pages. Requests flow through an
// explicit stage pipeline (see pipeline.go).
type Proxy struct {
	cfg      Config
	store    fragstore.FragmentStore
	asm      *Assembler
	plans    *tmplplan.Cache  // nil unless Config.PlanCache
	planExec *tmplplan.Exec   // nil unless Config.PlanCache
	static   *StaticCache     // nil when disabled
	pages    *pagecache.Cache // nil when disabled
	depix    *depindex.Index  // nil unless a keyed tier exists
	pageTTL  time.Duration
	client   *http.Client
	reg      *metrics.Registry

	stages     []*Stage
	respondIdx int
	flights    *flightGroup  // nil when coalescing disabled
	admit      *admission    // nil when admission control disabled
	tracer     *trace.Tracer // nil when tracing disabled
	spool      int

	adminOnce sync.Once
	admin     *http.ServeMux

	closeOnce sync.Once
	stopPub   chan struct{}
}

// New returns a Proxy with an empty store.
func New(cfg Config) (*Proxy, error) {
	if cfg.OriginURL == "" {
		return nil, fmt.Errorf("dpc: OriginURL is required")
	}
	store := cfg.Store
	if store == nil {
		var err error
		store, err = NewStore(cfg.Capacity)
		if err != nil {
			return nil, err
		}
	}
	codec := cfg.Codec
	if codec == nil {
		codec = tmpl.Binary{}
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	transport := cfg.Transport
	if transport == nil {
		transport = &http.Transport{MaxIdleConnsPerHost: 64}
	}
	var static *StaticCache
	if !cfg.DisableStaticCache {
		static = NewStaticCache(cfg.StaticCacheEntries, cfg.StaticClock)
	}
	spool := cfg.StreamSpoolBytes
	if spool <= 0 {
		spool = defaultSpoolBytes
	}
	var pages *pagecache.Cache
	pageTTL := cfg.PageCacheTTL
	if pageTTL <= 0 {
		pageTTL = defaultPageTTL
	}
	if cfg.PageCache {
		var err error
		pages, err = pagecache.NewCache(pagecache.CacheConfig{
			MaxEntries: cfg.PageCacheEntries,
			ByteBudget: cfg.PageCacheBudget,
			Clock:      cfg.PageClock,
			Store:      cfg.PageCacheStore,
		})
		if err != nil {
			return nil, err
		}
	}
	var depix *depindex.Index
	if pages != nil || static != nil {
		// The dependency index exists whenever a keyed tier does, so the
		// coherency fabric's tier subscribers always have an
		// authoritative (possibly empty) edge set to consult. Its
		// horizon is the page TTL — the longest a described entry lives.
		depix = depindex.New(depindex.Config{
			ByteBudget: cfg.DepIndexBudget,
			Horizon:    pageTTL,
			Clock:      cfg.PageClock,
		})
	}
	p := &Proxy{
		cfg:     cfg,
		store:   store,
		asm:     NewAssembler(store, codec, cfg.Strict),
		static:  static,
		pages:   pages,
		depix:   depix,
		pageTTL: pageTTL,
		client:  &http.Client{Transport: transport, Timeout: 30 * time.Second},
		reg:     reg,
		spool:   spool,
	}
	if cfg.PlanCache {
		entries := cfg.PlanCacheEntries
		if entries <= 0 {
			entries = defaultPlanEntries
		}
		budget := cfg.PlanCacheBudget
		if budget <= 0 {
			budget = defaultPlanBudget
		}
		plans, err := tmplplan.NewCache(codec, tmplplan.CacheConfig{
			MaxEntries: entries,
			ByteBudget: budget,
		})
		if err != nil {
			return nil, err
		}
		par := cfg.PlanParallelism
		if par <= 0 {
			par = defaultPlanParallelism
		}
		p.plans = plans
		p.planExec = &tmplplan.Exec{
			Store:       store,
			Strict:      cfg.Strict,
			Codec:       codec,
			Plans:       plans,
			Parallelism: par,
		}
	}
	if cfg.Coalesce {
		p.flights = newFlightGroup(cfg.CoalesceBufferBytes)
	}
	if cfg.Admission {
		p.admit = newAdmission(cfg)
	}
	switch {
	case cfg.Tracer != nil:
		p.tracer = cfg.Tracer
	case cfg.Trace:
		p.tracer = NewTracer(reg, cfg.TraceSampleEvery, cfg.TraceSlow, cfg.TraceRingSize)
	}
	p.stages = []*Stage{
		p.newStage("admin", p.stageAdmin),
		p.newStage("static-cache", p.stageStaticCache),
		p.newStage("pagecache", p.stagePageCache),
		p.newStage("admission", p.stageAdmission),
		p.newStage("coalesce", p.stageCoalesce),
		p.newStage("origin-fetch", p.stageOriginFetch),
		p.newStage("assemble", p.stageAssemble),
		p.newStage("stale-fallback", p.stageStaleFallback),
		p.newStage("respond", p.stageRespond),
	}
	p.respondIdx = len(p.stages) - 1
	if interval := cfg.PublishInterval; interval >= 0 {
		if interval == 0 {
			interval = 10 * time.Second
		}
		p.stopPub = make(chan struct{})
		go p.publishLoop(interval)
	}
	return p, nil
}

// publishLoop refreshes the dpc.store.* gauges until Close.
func (p *Proxy) publishLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.publishStore()
			p.publishDepIndex()
		case <-p.stopPub:
			return
		}
	}
}

// publishStore refreshes the dpc.store.* gauges, including the
// dpc.store.disk_* tier gauges when the fragment store is disk-backed.
func (p *Proxy) publishStore() {
	fragstore.Publish(p.reg, "dpc.store", p.store.Stats())
	if dt, ok := p.store.(fragstore.DiskTiered); ok {
		fragstore.PublishDisk(p.reg, "dpc.store", dt.TierStats())
	}
}

// publishDepIndex refreshes the dpc.depindex_* gauges from the dependency
// index's stats snapshot (no-op when no keyed tier exists).
func (p *Proxy) publishDepIndex() {
	if p.depix == nil {
		return
	}
	st := p.depix.Stats()
	p.reg.Gauge("dpc.depindex_fragments").Set(int64(st.Fragments))
	p.reg.Gauge("dpc.depindex_edges").Set(int64(st.Edges))
	p.reg.Gauge("dpc.depindex_bytes").Set(st.Bytes)
	p.reg.Gauge("dpc.depindex_evictions").Set(st.Evictions)
	p.reg.Gauge("dpc.depindex_lookups").Set(st.Lookups)
	p.reg.Gauge("dpc.depindex_inexact").Set(st.Inexact)
}

// Close stops the proxy's background work (the store-stats publisher). The
// proxy itself remains usable; Close is idempotent.
func (p *Proxy) Close() error {
	p.closeOnce.Do(func() {
		if p.stopPub != nil {
			close(p.stopPub)
		}
	})
	return nil
}

// Plans exposes the compiled-template plan cache (nil unless
// Config.PlanCache). The coherency fabric's plan subscriber drives its
// backing KeyedStore to flush plans on "plan"-scoped events.
func (p *Proxy) Plans() *tmplplan.Cache { return p.plans }

// Static exposes the URL-keyed static-content cache (nil when disabled).
func (p *Proxy) Static() *StaticCache { return p.static }

// Pages exposes the whole-page cache tier (nil unless Config.PageCache).
func (p *Proxy) Pages() *pagecache.Cache { return p.pages }

// DepIndex exposes the fragment→page dependency index (nil when no keyed
// tier exists). The coherency fabric's tier subscribers consult it to
// invalidate page-tier entries surgically.
func (p *Proxy) DepIndex() *depindex.Index { return p.depix }

// Store exposes the fragment store (the coherency extension drops slots
// through it).
func (p *Proxy) Store() fragstore.FragmentStore { return p.store }

// Registry returns the proxy's metrics registry.
func (p *Proxy) Registry() *metrics.Registry { return p.reg }

// Tracer returns the proxy's request tracer (nil when tracing is
// disabled; the nil tracer is valid and fully no-op).
func (p *Proxy) Tracer() *trace.Tracer { return p.tracer }

// Stages lists the pipeline stages in execution order.
func (p *Proxy) Stages() []*Stage { return p.stages }

// AdminPrefix routes requests handled by the proxy itself rather than
// forwarded: /_dpc/stats, plus anything mounted via HandleAdmin (e.g. the
// coherency invalidation endpoint).
const AdminPrefix = "/_dpc/"

// HandleAdmin mounts an extra handler under the admin prefix (path must
// include the prefix, e.g. "/_dpc/invalidate").
func (p *Proxy) HandleAdmin(path string, h http.Handler) {
	p.adminOnce.Do(p.initAdmin)
	p.admin.Handle(path, h)
}

// getOnly restricts a read-only admin endpoint to GET and HEAD; every
// other method is answered 405 with an Allow header.
func getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

func (p *Proxy) initAdmin() {
	p.admin = http.NewServeMux()
	p.admin.HandleFunc("/_dpc/trace", getOnly(func(w http.ResponseWriter, r *http.Request) {
		traces := p.tracer.Traces(trace.ParseMinMS(r.URL.Query().Get("min_ms")))
		if traces == nil {
			traces = []trace.TraceJSON{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"enabled": p.tracer.Enabled(),
			"traces":  traces, // newest first
		})
	}))
	p.admin.HandleFunc("/_dpc/metrics", getOnly(func(w http.ResponseWriter, _ *http.Request) {
		// Refresh the pull-model gauges first, as /_dpc/stats does, so a
		// scrape observes current occupancy rather than the last tick's.
		p.publishStore()
		p.publishDepIndex()
		w.Header().Set("Content-Type", metrics.PromContentType)
		_ = metrics.WritePrometheus(w, p.reg, expositionMetrics())
	}))
	if p.cfg.Pprof {
		p.admin.HandleFunc("/_dpc/pprof/", func(w http.ResponseWriter, r *http.Request) {
			switch name := strings.TrimPrefix(r.URL.Path, "/_dpc/pprof/"); name {
			case "":
				pprof.Index(w, r)
			case "cmdline":
				pprof.Cmdline(w, r)
			case "profile":
				pprof.Profile(w, r)
			case "symbol":
				pprof.Symbol(w, r)
			case "trace":
				pprof.Trace(w, r)
			default:
				pprof.Handler(name).ServeHTTP(w, r)
			}
		})
	}
	p.admin.HandleFunc("/_dpc/stats", getOnly(func(w http.ResponseWriter, _ *http.Request) {
		st := p.store.Stats()
		p.publishStore()
		p.publishDepIndex() // before the snapshot below, so gauges are current
		stages := make(map[string]any, len(p.stages))
		for _, s := range p.stages {
			stages[s.Name] = map[string]int64{
				"count":   s.hist.Count(),
				"mean_ns": int64(s.hist.Mean()),
				"p50_ns":  int64(s.hist.Quantile(0.50)),
				"p99_ns":  int64(s.hist.Quantile(0.99)),
			}
		}
		out := map[string]any{
			"metrics":        p.reg.Snapshot(),
			"store":          st,
			"stages":         stages,
			"slots_resident": st.Resident,
			"slots_capacity": st.Capacity,
			"fragment_bytes": st.Bytes,
		}
		if dt, ok := p.store.(fragstore.DiskTiered); ok {
			out["disk"] = dt.TierStats()
		}
		if p.static != nil {
			ss := p.static.Store().Stats()
			out["static"] = map[string]any{
				"entries": ss.Resident, "bytes": ss.Bytes,
				"hits": ss.Hits, "misses": ss.Misses,
				"evictions": ss.Evictions, "expired": ss.Expired,
			}
		}
		if p.pages != nil {
			ps := p.pages.Stats()
			out["pagecache"] = map[string]any{
				"entries": ps.Resident, "bytes": ps.Bytes,
				"hits": ps.Hits, "misses": ps.Misses,
				"evictions": ps.Evictions, "expired": ps.Expired,
			}
		}
		if p.plans != nil {
			out["plancache"] = p.plans.Stats()
		}
		if p.depix != nil {
			out["depindex"] = p.depix.Stats()
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(out)
	}))
}

// ServeHTTP implements http.Handler: it drives the request through the
// stage pipeline, timing each stage. When tracing is enabled (and the
// request is not an admin request) a root span wraps the whole pipeline,
// each stage runs under a child span, and response bytes/TTFB are
// attributed through a wrapping writer; the nil-tracer path adds zero
// allocations.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rs := &reqState{w: w, r: r, start: time.Now()}
	if p.tracer.Enabled() && !strings.HasPrefix(r.URL.Path, AdminPrefix) {
		root := p.tracer.StartRequest(r.Method+" "+r.URL.RequestURI(), r.Header.Get(trace.Header))
		rs.trace = root
		rs.r = r.WithContext(trace.NewContext(r.Context(), root))
		rs.w = &traceWriter{ResponseWriter: w, sp: root}
		if root.Sampled() {
			// Known at request start (rate- or remote-sampled), so a
			// single curl can be correlated with its /_dpc/trace entry.
			w.Header().Set(trace.ResponseHeader, root.TraceID())
		}
		defer root.Finish()
	}
	for i := 0; i < len(p.stages); {
		st := p.stages[i]
		t0 := time.Now()
		sp := rs.trace.Child(st.Name)
		rs.span = sp
		out, err := st.run(rs)
		sp.Finish()
		st.hist.Observe(time.Since(t0))
		if err != nil {
			p.fail(rs, err)
			return
		}
		switch out {
		case stageNext:
			i++
		case stageRespond:
			i = p.respondIdx
		case stageDone:
			return
		}
	}
}

// fail terminates a request that errored mid-pipeline. When part of the
// body already reached the client the only honest signal left is an
// aborted response; otherwise a 502 is returned.
func (p *Proxy) fail(rs *reqState, err error) {
	p.finishFlight(rs, err)
	if rs.originCancel != nil {
		rs.originCancel()
		rs.originCancel = nil
	}
	if rs.admitRelease != nil {
		rs.admitRelease()
		rs.admitRelease = nil
	}
	if rs.pageCapture != nil {
		rs.pageCapture.settle() // release the capture's ledger reservation
	}
	if rs.trace != nil {
		rs.trace.Event(trace.KindError, "", err.Error(), 0)
	}
	p.reg.Counter("dpc.errors").Inc()
	if rs.streamed {
		panic(http.ErrAbortHandler)
	}
	http.Error(rs.w, fmt.Sprintf("dpc: %v", err), http.StatusBadGateway)
}

func (p *Proxy) writePage(w http.ResponseWriter, body []byte, ctype, cacheState string) {
	if ctype == "" {
		ctype = "text/html; charset=utf-8"
	}
	w.Header().Set("Content-Type", ctype)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.Header().Set("Via", "dpcache-dpc/1.0")
	w.Header().Set("X-Cache", cacheState)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// FormatStaleRefs encodes stale references for the X-DPC-Stale header:
// "key:gen,key:gen".
func FormatStaleRefs(refs []StaleRef) string {
	var b strings.Builder
	for i, ref := range refs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d:%d", ref.Key, ref.Gen)
	}
	return b.String()
}
