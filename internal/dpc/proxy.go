package dpc

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"dpcache/internal/clock"
	"dpcache/internal/fragstore"
	"dpcache/internal/metrics"
	"dpcache/internal/tmpl"
)

// Headers shared with the origin (duplicated here to avoid an import cycle
// with package origin; the contract is defined in that package's docs).
const (
	headerCapable  = "X-DPC-Capable"
	headerBypass   = "X-DPC-Bypass"
	headerTemplate = "X-DPC-Template"
	headerStale    = "X-DPC-Stale"
)

// Config parameterizes a Proxy.
type Config struct {
	// OriginURL is the base URL of the origin site, e.g.
	// "http://127.0.0.1:8080". Required.
	OriginURL string
	// Capacity is the slot count; it must match (or exceed) the BEM's
	// configured capacity. Required unless Store is provided.
	Capacity int
	// Store overrides the fragment-store backend. When nil a
	// paper-faithful slot store of Capacity slots is created; pass a
	// fragstore.Sharded (or any other FragmentStore) to change the
	// concurrency and capacity model without touching the proxy.
	Store fragstore.FragmentStore
	// Codec must match the origin's template codec; defaults to binary.
	Codec tmpl.Codec
	// Strict enables generation checking on GETs plus transparent
	// re-fetch on staleness (design decision 4 in DESIGN.md).
	Strict bool
	// Transport overrides the HTTP transport used to reach the origin
	// (tests inject metered or in-memory transports).
	Transport http.RoundTripper
	// Registry receives dpc.* metrics; optional.
	Registry *metrics.Registry
	// DisableStaticCache turns off URL-keyed caching of explicitly
	// cacheable non-template responses (on by default, as in the
	// paper's ISA-server setup).
	DisableStaticCache bool
	// StaticCacheEntries bounds the static cache (0 selects 1024).
	StaticCacheEntries int
	// StaticClock overrides the static cache's expiry clock (tests).
	StaticClock clock.Clock
}

// Proxy is the Dynamic Proxy Cache in reverse-proxy mode: it fronts the
// origin, stores fragments, and assembles pages.
type Proxy struct {
	cfg    Config
	store  fragstore.FragmentStore
	asm    *Assembler
	static *StaticCache // nil when disabled
	client *http.Client
	reg    *metrics.Registry

	adminOnce sync.Once
	admin     *http.ServeMux
}

// New returns a Proxy with an empty store.
func New(cfg Config) (*Proxy, error) {
	if cfg.OriginURL == "" {
		return nil, fmt.Errorf("dpc: OriginURL is required")
	}
	store := cfg.Store
	if store == nil {
		var err error
		store, err = NewStore(cfg.Capacity)
		if err != nil {
			return nil, err
		}
	}
	codec := cfg.Codec
	if codec == nil {
		codec = tmpl.Binary{}
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	transport := cfg.Transport
	if transport == nil {
		transport = &http.Transport{MaxIdleConnsPerHost: 64}
	}
	var static *StaticCache
	if !cfg.DisableStaticCache {
		static = NewStaticCache(cfg.StaticCacheEntries, cfg.StaticClock)
	}
	return &Proxy{
		cfg:    cfg,
		store:  store,
		asm:    NewAssembler(store, codec, cfg.Strict),
		static: static,
		client: &http.Client{Transport: transport, Timeout: 30 * time.Second},
		reg:    reg,
	}, nil
}

// Static exposes the URL-keyed static-content cache (nil when disabled).
func (p *Proxy) Static() *StaticCache { return p.static }

// Store exposes the fragment store (the coherency extension drops slots
// through it).
func (p *Proxy) Store() fragstore.FragmentStore { return p.store }

// Registry returns the proxy's metrics registry.
func (p *Proxy) Registry() *metrics.Registry { return p.reg }

// AdminPrefix routes requests handled by the proxy itself rather than
// forwarded: /_dpc/stats, plus anything mounted via HandleAdmin (e.g. the
// coherency invalidation endpoint).
const AdminPrefix = "/_dpc/"

// HandleAdmin mounts an extra handler under the admin prefix (path must
// include the prefix, e.g. "/_dpc/invalidate").
func (p *Proxy) HandleAdmin(path string, h http.Handler) {
	p.adminOnce.Do(p.initAdmin)
	p.admin.Handle(path, h)
}

func (p *Proxy) initAdmin() {
	p.admin = http.NewServeMux()
	p.admin.HandleFunc("/_dpc/stats", func(w http.ResponseWriter, _ *http.Request) {
		st := p.store.Stats()
		fragstore.Publish(p.reg, "dpc.store", st)
		out := map[string]any{
			"metrics":        p.reg.Snapshot(),
			"store":          st,
			"slots_resident": st.Resident,
			"slots_capacity": st.Capacity,
			"fragment_bytes": st.Bytes,
		}
		if p.static != nil {
			hits, misses := p.static.Stats()
			out["static"] = map[string]any{"entries": p.static.Len(), "hits": hits, "misses": misses}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(out)
	})
}

// ServeHTTP implements http.Handler: the client-facing side of the proxy.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, AdminPrefix) {
		p.adminOnce.Do(p.initAdmin)
		p.admin.ServeHTTP(w, r)
		return
	}
	start := time.Now()
	// Explicitly cacheable static content is served without touching
	// the origin at all (the paper's steady-state setup: "static
	// content will be served from the ISA Server proxy cache and
	// therefore will not impact bandwidth requirements").
	if p.static != nil {
		if body, ctype, ok := p.static.Get(r.URL.RequestURI()); ok {
			p.reg.Counter("dpc.static_hits").Inc()
			p.writePage(w, body, ctype, "HIT")
			return
		}
	}
	page, ctype, err := p.fetchAndAssemble(r, nil)
	if err != nil {
		var stale *staleness
		if errors.As(err, &stale) {
			// Recover with a bypass fetch, reporting the stale slots
			// so the BEM invalidates them and the next template
			// carries fresh SETs instead of looping here.
			p.reg.Counter("dpc.stale_fallbacks").Inc()
			page, ctype, err = p.fetchAndAssemble(r, stale.refs)
		}
	}
	if err != nil {
		p.reg.Counter("dpc.errors").Inc()
		http.Error(w, fmt.Sprintf("dpc: %v", err), http.StatusBadGateway)
		return
	}
	p.reg.Counter("dpc.requests").Inc()
	p.reg.Histogram("dpc.latency").Observe(time.Since(start))
	p.writePage(w, page, ctype, "MISS")
}

func (p *Proxy) writePage(w http.ResponseWriter, body []byte, ctype, cacheState string) {
	if ctype == "" {
		ctype = "text/html; charset=utf-8"
	}
	w.Header().Set("Content-Type", ctype)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.Header().Set("Via", "dpcache-dpc/1.0")
	w.Header().Set("X-Cache", cacheState)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// staleness wraps ErrStale so ServeHTTP can distinguish recoverable
// staleness from transport errors, carrying the failed references.
type staleness struct {
	err  error
	refs []StaleRef
}

func (s *staleness) Error() string { return s.err.Error() }
func (s *staleness) Unwrap() error { return s.err }

// FormatStaleRefs encodes stale references for the X-DPC-Stale header:
// "key:gen,key:gen".
func FormatStaleRefs(refs []StaleRef) string {
	var b strings.Builder
	for i, ref := range refs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d:%d", ref.Key, ref.Gen)
	}
	return b.String()
}

// fetchAndAssemble forwards the request to the origin and assembles the
// result, returning the body and its content type. A non-nil bypassStale
// forces a plain (non-template) response and reports the stale slots to
// the BEM.
func (p *Proxy) fetchAndAssemble(r *http.Request, bypassStale []StaleRef) ([]byte, string, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
		p.cfg.OriginURL+r.URL.RequestURI(), nil)
	if err != nil {
		return nil, "", err
	}
	// Forward the session identity and advertise assembly capability.
	for _, h := range []string{"X-User", "Cookie", "Accept"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	req.Header.Set(headerCapable, "1")
	if bypassStale != nil {
		req.Header.Set(headerBypass, "1")
		if s := FormatStaleRefs(bypassStale); s != "" {
			req.Header.Set(headerStale, s)
		}
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, "", fmt.Errorf("origin fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, "", fmt.Errorf("origin status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	ctype := resp.Header.Get("Content-Type")

	codecName := resp.Header.Get(headerTemplate)
	if codecName == "" {
		// Plain response: pass through untouched, caching it by URL
		// when the origin explicitly allows (static content only —
		// templates and bypass pages never carry Cache-Control).
		p.reg.Counter("dpc.plain_passthrough").Inc()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, "", err
		}
		if p.static != nil {
			if ttl := cacheableStatic(resp); ttl > 0 {
				p.static.Put(r.URL.RequestURI(), body, ctype, ttl)
			}
		}
		return body, ctype, nil
	}
	if codecName != p.asm.codec.Name() {
		return nil, "", fmt.Errorf("origin codec %q does not match proxy codec %q", codecName, p.asm.codec.Name())
	}

	var page bytes.Buffer
	stats, err := p.asm.Assemble(&page, resp.Body)
	p.reg.Counter("dpc.template_bytes").Add(stats.TemplateBytes)
	p.reg.Counter("dpc.page_bytes").Add(stats.PageBytes)
	p.reg.Counter("dpc.gets").Add(int64(stats.Gets))
	p.reg.Counter("dpc.sets").Add(int64(stats.Sets))
	if err != nil {
		if errors.Is(err, ErrStale) {
			return nil, "", &staleness{err: err, refs: stats.Stale}
		}
		return nil, "", err
	}
	p.reg.Counter("dpc.assembled").Inc()
	return page.Bytes(), ctype, nil
}
