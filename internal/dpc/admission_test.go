package dpc

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dpcache/internal/clock"
)

// decide is a pure function of one request's pressure snapshot; this
// table pins its full decision surface — each signal alone, the
// unbounded (zero) configurations, the follower short-circuit, and the
// hard-before-soft priority the stage comment promises.
func TestAdmissionDecideTable(t *testing.T) {
	cases := []struct {
		name   string
		sig    pressureSignals
		want   admitVerdict
		reason string
	}{
		{"no pressure", pressureSignals{}, admitOK, ""},
		{"queue below cap", pressureSignals{flightExists: true, waiters: 1, maxWaiters: 2}, admitOK, ""},
		{"queue at cap", pressureSignals{flightExists: true, waiters: 2, maxWaiters: 2}, admitShed, "queue"},
		{"queue unbounded", pressureSignals{flightExists: true, waiters: 500}, admitOK, ""},
		// A follower adds no origin work: every non-queue signal is
		// ignored when a flight already exists for the key.
		{"follower ignores origin pressure", pressureSignals{
			flightExists: true, waiters: 0, maxWaiters: 4,
			negCached: true, inFlight: 99, maxInFlight: 1,
			keyInFlight: 9, maxKey: 1,
			latency: time.Second, shedLatency: time.Millisecond,
		}, admitOK, ""},
		{"negcache", pressureSignals{negCached: true}, admitShed, "negcache"},
		{"inflight at cap", pressureSignals{inFlight: 4, maxInFlight: 4}, admitShed, "inflight"},
		{"inflight below cap", pressureSignals{inFlight: 3, maxInFlight: 4}, admitOK, ""},
		{"inflight unbounded", pressureSignals{inFlight: 1000}, admitOK, ""},
		{"per-key at cap", pressureSignals{keyInFlight: 1, maxKey: 1}, admitShed, "per-key"},
		{"per-key unbounded", pressureSignals{keyInFlight: 50}, admitOK, ""},
		{"per-tenant at cap", pressureSignals{tenant: "alice", tenantInFlight: 2, maxTenant: 2}, admitShed, "per-tenant"},
		{"anonymous skips tenant bound", pressureSignals{tenant: "", tenantInFlight: 5, maxTenant: 1}, admitOK, ""},
		{"latency at threshold", pressureSignals{latency: 250 * time.Millisecond, shedLatency: 250 * time.Millisecond}, admitStale, "latency"},
		{"latency below threshold", pressureSignals{latency: 249 * time.Millisecond, shedLatency: 250 * time.Millisecond}, admitOK, ""},
		{"latency signal disabled", pressureSignals{latency: time.Hour}, admitOK, ""},
		{"bytes at 90 percent", pressureSignals{ledgerBytes: 90, ledgerBudget: 100}, admitStale, "bytes"},
		{"bytes below 90 percent", pressureSignals{ledgerBytes: 89, ledgerBudget: 100}, admitOK, ""},
		{"bytes signal disabled", pressureSignals{ledgerBytes: 1 << 40}, admitOK, ""},
		// Hard bounds outrank soft signals: a capped pipeline must shed
		// even when the EWMA alone would merely prefer stale.
		{"inflight outranks latency", pressureSignals{
			inFlight: 1, maxInFlight: 1,
			latency: time.Second, shedLatency: time.Millisecond,
		}, admitShed, "inflight"},
		{"negcache outranks inflight", pressureSignals{
			negCached: true, inFlight: 9, maxInFlight: 1,
		}, admitShed, "negcache"},
		{"per-key outranks bytes", pressureSignals{
			keyInFlight: 1, maxKey: 1,
			ledgerBytes: 100, ledgerBudget: 100,
		}, admitShed, "per-key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, reason := decide(tc.sig)
			if got != tc.want || reason != tc.reason {
				t.Fatalf("decide() = (%v, %q), want (%v, %q)", got, reason, tc.want, tc.reason)
			}
		})
	}
}

// holdOrigin blocks requests to blockPath until release is closed and
// answers everything else immediately, counting fetches per path.
type holdOrigin struct {
	blockPath string
	entered   chan struct{}
	release   chan struct{}
	enterOnce sync.Once

	mu      sync.Mutex
	fetches map[string]int
	status  map[string]int // per-path response status override
}

func newHoldOrigin(blockPath string) *holdOrigin {
	return &holdOrigin{
		blockPath: blockPath,
		entered:   make(chan struct{}),
		release:   make(chan struct{}),
		fetches:   make(map[string]int),
		status:    make(map[string]int),
	}
}

func (o *holdOrigin) count(path string) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.fetches[path]
}

func (o *holdOrigin) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		o.mu.Lock()
		o.fetches[r.URL.Path]++
		n := o.fetches[r.URL.Path]
		status := o.status[r.URL.Path]
		o.mu.Unlock()
		if r.URL.Path == o.blockPath {
			o.enterOnce.Do(func() { close(o.entered) })
			<-o.release
		}
		if status != 0 {
			http.Error(w, "origin fault", status)
			return
		}
		fmt.Fprintf(w, "body-%s-%d", r.URL.Path, n)
	}
}

// get performs one GET with optional headers and returns status, the
// X-Cache header, the Retry-After header, and the body.
func get(t *testing.T, url string, hdr map[string]string) (int, string, string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("X-Cache"), resp.Header.Get("Retry-After"), string(b)
}

// With the global origin in-flight bound at its cap and no stale copy to
// fall back on, a fresh-key request must be refused with a fast 503
// carrying Retry-After (rounded up to whole seconds) and X-Cache: SHED.
func TestAdmissionShed503RetryAfter(t *testing.T) {
	o := newHoldOrigin("/page/block")
	origin := httptest.NewServer(o.handler())
	defer origin.Close()

	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.Admission = true
		c.MaxOriginInFlight = 1
		c.RetryAfter = 1500 * time.Millisecond // must surface as ceil() = 2
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	leaderDone := make(chan int, 1)
	go func() {
		status, _, _, _ := get(t, ts.URL+"/page/block", nil)
		leaderDone <- status
	}()
	<-o.entered // the leader holds the only origin token

	status, cache, retry, body := get(t, ts.URL+"/page/other", nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", status)
	}
	if cache != "SHED" {
		t.Fatalf("X-Cache = %q, want SHED", cache)
	}
	if retry != "2" {
		t.Fatalf("Retry-After = %q, want 2 (1500ms rounded up)", retry)
	}
	if !strings.Contains(body, "overloaded") {
		t.Fatalf("shed body = %q, want an overload notice", body)
	}
	if got := p.Registry().Counter("dpc.shed_503s").Value(); got != 1 {
		t.Fatalf("dpc.shed_503s = %d, want 1", got)
	}
	if got := p.Registry().Counter("dpc.shed_inflight").Value(); got != 1 {
		t.Fatalf("dpc.shed_inflight = %d, want 1", got)
	}
	if got := o.count("/page/other"); got != 0 {
		t.Fatalf("shed request reached the origin %d times", got)
	}

	close(o.release)
	if status := <-leaderDone; status != http.StatusOK {
		t.Fatalf("leader status = %d after release, want 200", status)
	}
	// With the token released the next request must be admitted again.
	if status, _, _, _ := get(t, ts.URL+"/page/other", nil); status != http.StatusOK {
		t.Fatalf("post-release status = %d, want 200", status)
	}
}

// A follower joining an open flight costs no origin work, so it is only
// bounded by the flight's queue depth: under MaxFlightWaiters the
// (cap+1)th follower is shed while earlier ones ride the broadcast.
func TestAdmissionQueueBoundSheds(t *testing.T) {
	head := []byte(strings.Repeat("H", 1024))
	tail := []byte("tail")
	o := newBlockingOrigin(head, tail)
	origin := httptest.NewServer(o.handler())
	defer origin.Close()

	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.Coalesce = true
		c.Stream = true
		c.Admission = true
		c.MaxFlightWaiters = 1
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	key := clientKey(http.MethodGet, "/page/q")
	type res struct {
		status int
		body   string
	}
	rider := make(chan res, 2)
	ride := func() {
		status, _, _, body := get(t, ts.URL+"/page/q", nil)
		rider <- res{status, body}
	}
	go ride() // leader
	<-o.entered
	go ride() // first follower: waiters 0 < 1, admitted
	deadline := time.Now().Add(5 * time.Second)
	for p.flights.waiting(key) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("follower never attached to the flight")
		}
		time.Sleep(time.Millisecond)
	}

	status, cache, retry, _ := get(t, ts.URL+"/page/q", nil)
	if status != http.StatusServiceUnavailable || cache != "SHED" || retry == "" {
		t.Fatalf("over-cap follower: status=%d cache=%q retry=%q, want a shed 503", status, cache, retry)
	}
	if got := p.Registry().Counter("dpc.shed_queue").Value(); got != 1 {
		t.Fatalf("dpc.shed_queue = %d, want 1", got)
	}

	close(o.release)
	want := string(head) + string(tail)
	for i := 0; i < 2; i++ {
		r := <-rider
		if r.status != http.StatusOK || r.body != want {
			t.Fatalf("rider %d: status=%d body=%d bytes, want 200 with the full page", i, r.status, len(r.body))
		}
	}
	if got := o.fetches.Load(); got != 1 {
		t.Fatalf("origin fetches = %d, want 1 (shed follower must not fan out)", got)
	}
}

// Without coalescing, concurrent fetches for one key pile onto the origin
// individually; MaxKeyInFlight bounds that key without starving others.
func TestAdmissionPerKeyBound(t *testing.T) {
	o := newHoldOrigin("/page/hot")
	origin := httptest.NewServer(o.handler())
	defer origin.Close()

	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.Admission = true
		c.MaxKeyInFlight = 1
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	leaderDone := make(chan int, 1)
	go func() {
		status, _, _, _ := get(t, ts.URL+"/page/hot", nil)
		leaderDone <- status
	}()
	<-o.entered

	status, cache, _, _ := get(t, ts.URL+"/page/hot", nil)
	if status != http.StatusServiceUnavailable || cache != "SHED" {
		t.Fatalf("same-key status=%d cache=%q, want shed 503", status, cache)
	}
	if got := p.Registry().Counter("dpc.shed_per_key").Value(); got != 1 {
		t.Fatalf("dpc.shed_per_key = %d, want 1", got)
	}
	// A different key is under no bound and must be admitted.
	if status, _, _, _ := get(t, ts.URL+"/page/cold", nil); status != http.StatusOK {
		t.Fatalf("other-key status = %d, want 200", status)
	}

	close(o.release)
	if status := <-leaderDone; status != http.StatusOK {
		t.Fatalf("leader status = %d, want 200", status)
	}
}

// MaxTenantInFlight bounds one tenant's concurrent origin work across
// keys; anonymous requests and other tenants are unaffected.
func TestAdmissionPerTenantBound(t *testing.T) {
	o := newHoldOrigin("/page/t1")
	origin := httptest.NewServer(o.handler())
	defer origin.Close()

	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.Admission = true
		c.MaxTenantInFlight = 1
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	alice := map[string]string{"X-User": "alice"}
	leaderDone := make(chan int, 1)
	go func() {
		status, _, _, _ := get(t, ts.URL+"/page/t1", alice)
		leaderDone <- status
	}()
	<-o.entered

	status, cache, _, _ := get(t, ts.URL+"/page/t2", alice)
	if status != http.StatusServiceUnavailable || cache != "SHED" {
		t.Fatalf("same-tenant status=%d cache=%q, want shed 503", status, cache)
	}
	if got := p.Registry().Counter("dpc.shed_per_tenant").Value(); got != 1 {
		t.Fatalf("dpc.shed_per_tenant = %d, want 1", got)
	}
	// Another tenant and the anonymous population stay admitted.
	if status, _, _, _ := get(t, ts.URL+"/page/t2", map[string]string{"X-User": "bob"}); status != http.StatusOK {
		t.Fatalf("other-tenant status = %d, want 200", status)
	}
	if status, _, _, _ := get(t, ts.URL+"/page/t2", nil); status != http.StatusOK {
		t.Fatalf("anonymous status = %d, want 200", status)
	}

	close(o.release)
	if status := <-leaderDone; status != http.StatusOK {
		t.Fatalf("leader status = %d, want 200", status)
	}
}

// An origin failure is negative-cached: for NegTTL the key answers with a
// fast 503 without re-touching the origin, then the entry lapses and the
// origin is probed again.
func TestAdmissionNegativeCache(t *testing.T) {
	o := newHoldOrigin("/never")
	o.status["/page/err"] = http.StatusInternalServerError
	origin := httptest.NewServer(o.handler())
	defer origin.Close()

	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.Admission = true
		c.NegTTL = 100 * time.Millisecond
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	status, _, _, _ := get(t, ts.URL+"/page/err", nil)
	if status != http.StatusBadGateway {
		t.Fatalf("first status = %d, want 502 (origin 500 surfaces as a gateway error)", status)
	}
	if got := p.Registry().Counter("dpc.negcache_fills").Value(); got != 1 {
		t.Fatalf("dpc.negcache_fills = %d, want 1", got)
	}

	status, cache, retry, _ := get(t, ts.URL+"/page/err", nil)
	if status != http.StatusServiceUnavailable || cache != "SHED" || retry == "" {
		t.Fatalf("negative-cached: status=%d cache=%q retry=%q, want shed 503", status, cache, retry)
	}
	if got := p.Registry().Counter("dpc.negcache_hits").Value(); got != 1 {
		t.Fatalf("dpc.negcache_hits = %d, want 1", got)
	}
	if got := o.count("/page/err"); got != 1 {
		t.Fatalf("origin fetches = %d inside the negative window, want 1", got)
	}

	time.Sleep(150 * time.Millisecond) // past NegTTL
	status, _, _, _ = get(t, ts.URL+"/page/err", nil)
	if status != http.StatusBadGateway {
		t.Fatalf("post-expiry status = %d, want 502 (origin probed again)", status)
	}
	if got := o.count("/page/err"); got != 2 {
		t.Fatalf("origin fetches = %d after expiry, want 2", got)
	}
}

// Under hard pressure an expired page-tier entry inside the stale window
// is served with X-Cache: STALE, and exactly one background revalidation
// replaces it — the expired miss on the hit path must not destroy the
// stale copy first (GetKeep), and the stale bytes must not be re-filed
// under a fresh TTL.
func TestAdmissionStaleServePage(t *testing.T) {
	fake := clock.NewFake(time.Unix(1700000000, 0))
	o := newHoldOrigin("/page/block")
	origin := httptest.NewServer(o.handler())
	defer origin.Close()

	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.Admission = true
		c.MaxOriginInFlight = 1
		c.Coalesce = true
		c.PageCache = true
		c.PageCacheTTL = time.Second
		c.PageClock = fake
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	// Warm the page tier, then expire the entry.
	if status, _, _, body := get(t, ts.URL+"/page/x", nil); status != http.StatusOK || body != "body-/page/x-1" {
		t.Fatalf("warm fetch: status=%d body=%q", status, body)
	}
	if _, cache, _, _ := get(t, ts.URL+"/page/x", nil); cache != "PAGE" {
		t.Fatalf("second fetch X-Cache = %q, want PAGE", cache)
	}
	fake.Advance(2 * time.Second)

	// Saturate the origin bound with an unrelated key.
	blockDone := make(chan int, 1)
	go func() {
		status, _, _, _ := get(t, ts.URL+"/page/block", nil)
		blockDone <- status
	}()
	<-o.entered
	defer func() {
		close(o.release)
		<-blockDone
	}()

	status, cache, _, body := get(t, ts.URL+"/page/x", nil)
	if status != http.StatusOK || cache != "STALE" {
		t.Fatalf("pressured fetch: status=%d X-Cache=%q, want 200 STALE", status, cache)
	}
	if body != "body-/page/x-1" {
		t.Fatalf("stale body = %q, want the expired entry's bytes", body)
	}
	if got := p.Registry().Counter("dpc.stale_served_page").Value(); got < 1 {
		t.Fatalf("dpc.stale_served_page = %d, want >= 1", got)
	}

	// The background revalidation bypasses admission, refetches, and
	// replaces the stale entry; later hits see the fresh body.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, cache, _, body := get(t, ts.URL+"/page/x", nil)
		if cache == "PAGE" && body == "body-/page/x-2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("revalidation never replaced the entry: cache=%q body=%q", cache, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := o.count("/page/x"); got != 2 {
		t.Fatalf("origin fetches for /page/x = %d, want 2 (warm + one revalidation)", got)
	}
	if got := p.Registry().Counter("dpc.stale_revalidations").Value(); got != 1 {
		t.Fatalf("dpc.stale_revalidations = %d, want exactly 1", got)
	}
}

// A burst of stale serves for one key must collapse to ONE revalidation:
// the per-key reval slot is claimed once, every other pressured request
// serves the stale copy (or rides the revalidation's flight), and the
// entry is replaced exactly once.
func TestStaleRevalidationReplacesOnce(t *testing.T) {
	fake := clock.NewFake(time.Unix(1700000000, 0))
	o := newHoldOrigin("/page/block")
	origin := httptest.NewServer(o.handler())
	defer origin.Close()

	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.Admission = true
		c.MaxOriginInFlight = 1
		c.Coalesce = true
		c.PageCache = true
		c.PageCacheTTL = time.Second
		c.PageClock = fake
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	if status, _, _, _ := get(t, ts.URL+"/page/burst", nil); status != http.StatusOK {
		t.Fatal("warm fetch failed")
	}
	fake.Advance(2 * time.Second)

	// Pin the origin token with the dedicated blocking path.
	blockStatus := make(chan int, 1)
	go func() {
		status, _, _, _ := get(t, ts.URL+"/page/block", nil)
		blockStatus <- status
	}()
	<-o.entered
	defer func() {
		close(o.release)
		<-blockStatus
	}()

	const burst = 8
	var wg sync.WaitGroup
	var staleSeen atomic.Int64
	errs := make(chan error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, cache, _, body := get(t, ts.URL+"/page/burst", nil)
			if status != http.StatusOK {
				errs <- fmt.Errorf("burst request: status %d cache %q", status, cache)
				return
			}
			if cache == "STALE" {
				staleSeen.Add(1)
				if body != "body-/page/burst-1" {
					errs <- fmt.Errorf("stale body = %q", body)
				}
				return
			}
			// Rode the revalidation's flight or landed after the
			// replacement: must see the refreshed page.
			if body != "body-/page/burst-2" {
				errs <- fmt.Errorf("fresh-path body = %q (cache %q)", body, cache)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if staleSeen.Load() == 0 {
		t.Error("no burst request was served stale")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		_, cache, _, body := get(t, ts.URL+"/page/burst", nil)
		if cache == "PAGE" && body == "body-/page/burst-2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("revalidation never replaced the entry: cache=%q body=%q", cache, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := o.count("/page/burst"); got != 2 {
		t.Fatalf("origin fetches = %d, want 2 (duplicate revalidations or fills)", got)
	}
	if got := p.Registry().Counter("dpc.stale_revalidations").Value(); got != 1 {
		t.Fatalf("dpc.stale_revalidations = %d, want exactly 1", got)
	}
}

// The static tier serves stale under pressure too: an expired
// Cache-Control entry inside the window answers with X-Cache: STALE.
func TestAdmissionStaleServeStatic(t *testing.T) {
	fake := clock.NewFake(time.Unix(1700000000, 0))
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	var cssFetches atomic.Int64
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/page/block" {
			once.Do(func() { close(entered) })
			<-release
			fmt.Fprint(w, "blocked")
			return
		}
		n := cssFetches.Add(1)
		w.Header().Set("Cache-Control", "max-age=1")
		w.Header().Set("Content-Type", "text/css")
		fmt.Fprintf(w, "css-%d", n)
	}))
	defer origin.Close()

	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.Admission = true
		c.MaxOriginInFlight = 1
		c.StaticClock = fake
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	if status, _, _, body := get(t, ts.URL+"/static/app.css", nil); status != http.StatusOK || body != "css-1" {
		t.Fatalf("warm fetch: status=%d body=%q", status, body)
	}
	if _, cache, _, _ := get(t, ts.URL+"/static/app.css", nil); cache != "STATIC" {
		t.Fatalf("second fetch X-Cache = %q, want STATIC", cache)
	}
	fake.Advance(2 * time.Second)

	blockDone := make(chan struct{})
	go func() {
		defer close(blockDone)
		get(t, ts.URL+"/page/block", nil)
	}()
	<-entered
	defer func() {
		close(release)
		<-blockDone
	}()

	status, cache, _, body := get(t, ts.URL+"/static/app.css", nil)
	if status != http.StatusOK || cache != "STALE" || body != "css-1" {
		t.Fatalf("pressured fetch: status=%d cache=%q body=%q, want 200 STALE css-1", status, cache, body)
	}
	if got := p.Registry().Counter("dpc.stale_served_static").Value(); got < 1 {
		t.Fatalf("dpc.stale_served_static = %d, want >= 1", got)
	}
}

// Storm the admission stage from many goroutines against a flaky, slow
// origin with every bound armed (run under -race in CI): all responses
// must be well-formed — fresh 200, stale 200, shed 503, or gateway 502 —
// and the proxy must still serve cleanly once the storm passes.
func TestAdmissionStormRace(t *testing.T) {
	var n atomic.Int64
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%4 == 0 {
			http.Error(w, "origin fault", http.StatusInternalServerError)
			return
		}
		time.Sleep(2 * time.Millisecond)
		fmt.Fprintf(w, "storm-body-%s", r.URL.RawQuery)
	}))
	defer origin.Close()

	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.Admission = true
		c.MaxOriginInFlight = 2
		c.MaxKeyInFlight = 1
		c.MaxTenantInFlight = 2
		c.MaxFlightWaiters = 2
		c.NegTTL = 20 * time.Millisecond
		c.Coalesce = true
		c.Stream = true
		c.PageCache = true
		c.PageCacheTTL = 50 * time.Millisecond
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	const workers = 8
	const perWorker = 40
	var wg sync.WaitGroup
	bad := make(chan string, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				hdr := map[string]string{}
				if w%3 == 1 {
					hdr["X-User"] = fmt.Sprintf("tenant-%d", w%2)
				}
				status, _, _, _ := get(t, fmt.Sprintf("%s/page/storm?k=%d", ts.URL, i%4), hdr)
				switch status {
				case http.StatusOK, http.StatusBadGateway, http.StatusServiceUnavailable:
				default:
					bad <- fmt.Sprintf("worker %d request %d: status %d", w, i, status)
				}
			}
		}(w)
	}
	wg.Wait()
	close(bad)
	for msg := range bad {
		t.Error(msg)
	}

	// After the storm and the negative window, a clean key must serve.
	time.Sleep(50 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		status, _, _, _ := get(t, ts.URL+"/page/after-storm", nil)
		if status == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("proxy never recovered after the storm: status %d", status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
