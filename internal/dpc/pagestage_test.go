package dpc

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dpcache/internal/clock"
	"dpcache/internal/tmpl"
)

func pageGet(t *testing.T, url string, hdr map[string]string) (string, string) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	return string(b), resp.Header.Get("X-Cache")
}

// The acceptance shape: an anonymous-session burst of N identical requests
// costs one origin fetch; the other N−1 are served from the whole-page
// tier with X-Cache: PAGE — for plain and template pages, buffered and
// streaming (the capture tee must fill the cache on every pipeline
// branch).
func TestPageCacheBurstServesFromPage(t *testing.T) {
	for _, tc := range []struct {
		name     string
		stream   bool
		template bool
	}{
		{"plain/buffered", false, false},
		{"plain/streaming", true, false},
		{"template/buffered", false, true},
		{"template/streaming", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const wantBody = "<html>hot page</html>"
			var fetches atomic.Int64
			origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				fetches.Add(1)
				if !tc.template {
					fmt.Fprint(w, wantBody)
					return
				}
				var buf bytes.Buffer
				enc := tmpl.Binary{}.NewEncoder(&buf)
				_ = enc.Literal([]byte("<html>"))
				_ = enc.Set(1, 1, []byte("hot page"))
				_ = enc.Literal([]byte("</html>"))
				_ = enc.Flush()
				w.Header().Set("X-DPC-Template", "binary")
				_, _ = w.Write(buf.Bytes())
			}))
			defer origin.Close()

			p := newTestProxy(t, origin.URL, func(c *Config) {
				c.PageCache = true
				c.PageCacheTTL = time.Minute
				c.Stream = tc.stream
			})
			ts := httptest.NewServer(p)
			defer ts.Close()

			const n = 6
			var pageHits int
			for i := 0; i < n; i++ {
				body, state := pageGet(t, ts.URL+"/page/hot", nil)
				if body != wantBody {
					t.Fatalf("request %d body = %q", i, body)
				}
				if state == "PAGE" {
					pageHits++
				}
			}
			if got := fetches.Load(); got != 1 {
				t.Fatalf("origin saw %d fetches, want 1", got)
			}
			if pageHits != n-1 {
				t.Fatalf("%d of %d requests served with X-Cache: PAGE, want %d", pageHits, n, n-1)
			}
			if got := p.Registry().Counter("dpc.pagecache_hits").Value(); got != n-1 {
				t.Fatalf("dpc.pagecache_hits = %d, want %d", got, n-1)
			}
			if got := p.Registry().Counter("dpc.pagecache_fills").Value(); got != 1 {
				t.Fatalf("dpc.pagecache_fills = %d, want 1", got)
			}
		})
	}
}

// Identity-bearing requests must bypass the whole-page tier entirely —
// neither served from it nor stored into it — or the baseline's
// Bob/Alice failure comes back.
func TestPageCacheIdentityBypass(t *testing.T) {
	var fetches atomic.Int64
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fetches.Add(1)
		fmt.Fprintf(w, "page for %q/%q", r.Header.Get("X-User"), r.Header.Get("Cookie"))
	}))
	defer origin.Close()

	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.PageCache = true
		c.PageCacheTTL = time.Minute
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	// Bob (cookie session) fetches twice: the page cache must not serve
	// or store his personalized page.
	for i := 0; i < 2; i++ {
		body, state := pageGet(t, ts.URL+"/page/p", map[string]string{"Cookie": "sid=bob"})
		if state == "PAGE" {
			t.Fatalf("identity-bearing request %d served from the page cache", i)
		}
		if body != `page for ""/"sid=bob"` {
			t.Fatalf("bob got %q", body)
		}
	}
	// Same for Authorization and X-User.
	if _, state := pageGet(t, ts.URL+"/page/p", map[string]string{"Authorization": "Bearer x"}); state == "PAGE" {
		t.Fatal("Authorization-bearing request served from the page cache")
	}
	if _, state := pageGet(t, ts.URL+"/page/p", map[string]string{"X-User": "bob"}); state == "PAGE" {
		t.Fatal("X-User-bearing request served from the page cache")
	}
	if got := fetches.Load(); got != 4 {
		t.Fatalf("origin saw %d fetches, want 4 (no identity request cached)", got)
	}
	if got := p.Registry().Counter("dpc.pagecache_bypass_identity").Value(); got != 4 {
		t.Fatalf("dpc.pagecache_bypass_identity = %d, want 4", got)
	}
	// An anonymous request after Bob must not receive Bob's page.
	body, _ := pageGet(t, ts.URL+"/page/p", nil)
	if body != `page for ""/""` {
		t.Fatalf("anonymous visitor got %q — an identified page leaked into the page tier", body)
	}
	if p.Pages().Len() != 1 {
		t.Fatalf("page tier holds %d entries, want 1 (the anonymous page only)", p.Pages().Len())
	}
}

// Pages expire after PageCacheTTL: a page cache cannot see fragment
// invalidations, so the TTL is its only staleness bound.
func TestPageCacheTTLExpiry(t *testing.T) {
	var fetches atomic.Int64
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "version %d", fetches.Add(1))
	}))
	defer origin.Close()

	fake := clock.NewFake(time.Unix(0, 0))
	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.PageCache = true
		c.PageCacheTTL = 10 * time.Second
		c.PageClock = fake
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	if body, _ := pageGet(t, ts.URL+"/p", nil); body != "version 1" {
		t.Fatalf("first fetch = %q", body)
	}
	fake.Advance(9 * time.Second)
	if body, state := pageGet(t, ts.URL+"/p", nil); state != "PAGE" || body != "version 1" {
		t.Fatalf("within TTL: %q, %s", body, state)
	}
	fake.Advance(2 * time.Second)
	if body, state := pageGet(t, ts.URL+"/p", nil); state == "PAGE" || body != "version 2" {
		t.Fatalf("past TTL: %q, %s — stale page served", body, state)
	}
}

// HEAD requests, POSTs, and GETs carrying a body skip the page tier: a
// request body is forwarded to the origin and can vary the response, but
// is not part of the page key.
func TestPageCacheOnlyBodylessGET(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		fmt.Fprintf(w, "body for %q", b)
	}))
	defer origin.Close()
	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.PageCache = true
		c.PageCacheTTL = time.Minute
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	pageGet(t, ts.URL+"/p", nil) // warm the page tier via GET
	resp, err := http.Head(ts.URL + "/p")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Cache") == "PAGE" {
		t.Fatal("HEAD served from the page tier")
	}
	// A GET carrying a body must neither be served from the tier nor
	// stored into it.
	bodied := func(body string) (string, string) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/search", strings.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b), resp.Header.Get("X-Cache")
	}
	if got, _ := bodied("q=alice"); got != `body for "q=alice"` {
		t.Fatalf("alice got %q", got)
	}
	got, state := bodied("q=bob")
	if state == "PAGE" || got != `body for "q=bob"` {
		t.Fatalf("bob got %q (%s) — served alice's bodied-GET page", got, state)
	}
}

// The page key covers the forwarded variant headers, not just the URL:
// two anonymous clients differing in Accept-Language must not be served
// each other's variant.
func TestPageCacheKeysByVariantHeaders(t *testing.T) {
	var fetches atomic.Int64
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fetches.Add(1)
		fmt.Fprintf(w, "lang %s", r.Header.Get("Accept-Language"))
	}))
	defer origin.Close()
	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.PageCache = true
		c.PageCacheTTL = time.Minute
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	if body, _ := pageGet(t, ts.URL+"/p", map[string]string{"Accept-Language": "fr"}); body != "lang fr" {
		t.Fatalf("fr fetch = %q", body)
	}
	body, state := pageGet(t, ts.URL+"/p", map[string]string{"Accept-Language": "en"})
	if state == "PAGE" || body != "lang en" {
		t.Fatalf("en client got %q (%s) — served the fr variant", body, state)
	}
	if body, state := pageGet(t, ts.URL+"/p", map[string]string{"Accept-Language": "fr"}); state != "PAGE" || body != "lang fr" {
		t.Fatalf("fr revisit = %q (%s), want a PAGE hit on its own variant", body, state)
	}
	if got := fetches.Load(); got != 2 {
		t.Fatalf("origin saw %d fetches, want 2 (one per variant)", got)
	}
}

// Responses the origin marked uncacheable (no-store or Set-Cookie) must
// not enter the page tier, even for anonymous requests.
func TestPageCacheHonorsOriginUncacheable(t *testing.T) {
	var fetches atomic.Int64
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := fetches.Add(1)
		switch r.URL.Path {
		case "/nostore":
			w.Header().Set("Cache-Control", "no-store")
		case "/cookie":
			w.Header().Set("Set-Cookie", "csrf=tok")
		}
		fmt.Fprintf(w, "fresh %d", n)
	}))
	defer origin.Close()
	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.PageCache = true
		c.PageCacheTTL = time.Minute
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	for _, path := range []string{"/nostore", "/cookie"} {
		pageGet(t, ts.URL+path, nil)
		if _, state := pageGet(t, ts.URL+path, nil); state == "PAGE" {
			t.Fatalf("%s revisit served from the page tier despite the origin forbidding caching", path)
		}
	}
	if got := p.Pages().Len(); got != 0 {
		t.Fatalf("page tier holds %d entries, want 0", got)
	}
	if got := p.Registry().Counter("dpc.pagecache_uncacheable").Value(); got != 4 {
		t.Fatalf("dpc.pagecache_uncacheable = %d, want 4", got)
	}
}

// A capture discarded mid-request (the request parked as a follower,
// then the leader aborted and it fell back to its own fetch) must never
// be filed: its buffer is empty and would poison the key with a 0-byte
// page for the whole TTL.
func TestFillPageCacheSkipsDiscardedCapture(t *testing.T) {
	p := newTestProxy(t, "http://127.0.0.1:0", func(c *Config) {
		c.PageCache = true
		c.PageCacheTTL = time.Minute
	})
	pc := &pageCapture{ResponseWriter: httptest.NewRecorder()}
	if _, err := pc.Write([]byte("page bytes")); err != nil {
		t.Fatal(err)
	}
	pc.discard()
	rs := &reqState{w: pc, pageKey: "GET\x00/x", pageCapture: pc, cacheState: "MISS"}
	p.fillPageCache(rs)
	if got := p.Pages().Len(); got != 0 {
		t.Fatalf("discarded capture filed into the page tier (%d entries)", got)
	}
	if got := p.Registry().Counter("dpc.pagecache_fills").Value(); got != 0 {
		t.Fatalf("dpc.pagecache_fills = %d, want 0", got)
	}
}

// A no-store sent on a second Cache-Control header line must be seen.
func TestPageCacheableMultiValueCacheControl(t *testing.T) {
	h := http.Header{}
	h.Add("Cache-Control", "public")
	h.Add("Cache-Control", "no-store")
	if pageCacheable(h) {
		t.Fatal("no-store on the second Cache-Control line was ignored")
	}
	if !pageCacheable(http.Header{"Cache-Control": {"public, max-age=5"}}) {
		t.Fatal("plain public response rejected")
	}
}

// A statically cacheable anonymous response is filed once, in the static
// tier; the page tier must not duplicate the bytes.
func TestPageCacheSkipsStaticallyCached(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Cache-Control", "max-age=60")
		fmt.Fprint(w, "asset body")
	}))
	defer origin.Close()
	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.PageCache = true
		c.PageCacheTTL = time.Minute
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	pageGet(t, ts.URL+"/asset.css", nil)
	if _, state := pageGet(t, ts.URL+"/asset.css", nil); state != "STATIC" {
		t.Fatalf("revisit state = %s, want static STATIC", state)
	}
	if got := p.Pages().Len(); got != 0 {
		t.Fatalf("page tier duplicated a statically cached body (%d entries)", got)
	}
	if got := p.Static().Len(); got != 1 {
		t.Fatalf("static tier holds %d entries, want 1", got)
	}
}

// Distinct URLs get distinct page entries.
func TestPageCacheKeysByURI(t *testing.T) {
	var fetches atomic.Int64
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fetches.Add(1)
		fmt.Fprintf(w, "page %s", r.URL.RawQuery)
	}))
	defer origin.Close()
	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.PageCache = true
		c.PageCacheTTL = time.Minute
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	pageGet(t, ts.URL+"/p?q=1", nil)
	pageGet(t, ts.URL+"/p?q=2", nil)
	if body, state := pageGet(t, ts.URL+"/p?q=1", nil); state != "PAGE" || body != "page q=1" {
		t.Fatalf("q=1 revisit: %q, %s", body, state)
	}
	if got := fetches.Load(); got != 2 {
		t.Fatalf("origin saw %d fetches, want 2", got)
	}
}

// condGet issues a GET with an optional If-None-Match and returns the
// full response for status/header assertions.
func condGet(t *testing.T, url, inm string) *http.Response {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// Page-tier entries are stamped with a strong ETag at capture time; an
// anonymous revalidation with a matching If-None-Match — exact, weak
// (W/), in a list, or "*" — is answered 304 with zero body bytes.
func TestPageCacheConditional304(t *testing.T) {
	var fetches atomic.Int64
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fetches.Add(1)
		fmt.Fprint(w, "<html>conditional page</html>")
	}))
	defer origin.Close()
	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.PageCache = true
		c.PageCacheTTL = time.Minute
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	// Miss fills the tier; the hit replays the stored ETag.
	pageGet(t, ts.URL+"/p", nil)
	hit := condGet(t, ts.URL+"/p", "")
	etag := hit.Header.Get("ETag")
	if hit.Header.Get("X-Cache") != "PAGE" || etag == "" {
		t.Fatalf("page hit: X-Cache=%q ETag=%q", hit.Header.Get("X-Cache"), etag)
	}
	if !strings.HasPrefix(etag, `"`) || strings.HasPrefix(etag, "W/") {
		t.Fatalf("stored ETag %q is not strong", etag)
	}

	for name, inm := range map[string]string{
		"exact":    etag,
		"weak":     "W/" + etag,
		"multiple": `"bogus", ` + etag + `, "other"`,
		"star":     "*",
	} {
		resp := condGet(t, ts.URL+"/p", inm)
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("%s If-None-Match: status = %d, want 304", name, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		if len(b) != 0 {
			t.Fatalf("%s 304 carried %d body bytes", name, len(b))
		}
		if resp.Header.Get("ETag") != etag {
			t.Fatalf("%s 304 ETag = %q, want %q", name, resp.Header.Get("ETag"), etag)
		}
		if resp.Header.Get("X-Cache") != "PAGE" {
			t.Fatalf("%s 304 X-Cache = %q", name, resp.Header.Get("X-Cache"))
		}
	}
	// A non-matching validator gets the full body.
	resp := condGet(t, ts.URL+"/p", `"deadbeef"`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("non-matching If-None-Match: status = %d", resp.StatusCode)
	}
	if b, _ := io.ReadAll(resp.Body); string(b) != "<html>conditional page</html>" {
		t.Fatalf("non-matching body = %q", b)
	}
	if got := fetches.Load(); got != 1 {
		t.Fatalf("origin saw %d fetches — conditional hits must not refetch", got)
	}
	if got := p.Registry().Counter("dpc.pagecache_304s").Value(); got != 4 {
		t.Fatalf("dpc.pagecache_304s = %d, want 4", got)
	}
	// Every 304 is still a served response.
	if got := p.Registry().Counter("dpc.requests").Value(); got != 7 {
		t.Fatalf("dpc.requests = %d, want 7", got)
	}
}

// An If-None-Match on a page-tier *miss* must not 304: the proxy holds no
// entry to validate against, so the full response is served (and filed).
func TestPageCacheConditionalMissServesBody(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "body")
	}))
	defer origin.Close()
	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.PageCache = true
		c.PageCacheTTL = time.Minute
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	resp := condGet(t, ts.URL+"/p", `"anything"`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d on a page-tier miss", resp.StatusCode)
	}
	if b, _ := io.ReadAll(resp.Body); string(b) != "body" {
		t.Fatalf("body = %q", b)
	}
	if got := p.Registry().Counter("dpc.pagecache_304s").Value(); got != 0 {
		t.Fatalf("dpc.pagecache_304s = %d on a miss", got)
	}
}

// Two pages sharing a fragment: invalidating the fragment (simulated
// through the dependency index + a page subscriber is exercised in the
// coherency and core tests; here the proxy-side fill must record edges
// for exactly the refs that flowed into the page).
func TestFillRecordsDependencyEdges(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		enc := tmpl.Binary{}.NewEncoder(&buf)
		_ = enc.Literal([]byte("<html>"))
		_ = enc.Set(7, 3, []byte("fragment A"))
		_ = enc.Set(9, 4, []byte("fragment B"))
		_ = enc.Literal([]byte("</html>"))
		_ = enc.Flush()
		w.Header().Set("X-DPC-Template", "binary")
		_, _ = w.Write(buf.Bytes())
	}))
	defer origin.Close()
	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.PageCache = true
		c.PageCacheTTL = time.Minute
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	pageGet(t, ts.URL+"/page/x", nil)
	if p.Pages().Len() != 1 {
		t.Fatalf("page tier holds %d entries", p.Pages().Len())
	}
	for _, ref := range []string{"7:3", "9:4"} {
		keys, exact := p.DepIndex().Dependents(ref)
		if !exact || len(keys) != 1 {
			t.Fatalf("Dependents(%s) = %v, exact=%v", ref, keys, exact)
		}
		if !p.Pages().Delete(keys[0]) && p.Pages().Len() != 0 {
			t.Fatalf("recorded key %q does not address the page entry", keys[0])
		}
	}
	if keys, exact := p.DepIndex().Dependents("1:1"); !exact || len(keys) != 0 {
		t.Fatalf("unrelated ref has dependents: %v exact=%v", keys, exact)
	}
}

// In-flight capture bytes are charged against the page tier's byte
// ledger: a capture storm must evict resident pages, never let
// resident + in-flight exceed the budget, and must settle its
// reservation on every terminal path.
func TestPageCaptureAccountedAgainstBudget(t *testing.T) {
	big := strings.Repeat("x", 700)
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, big)
	}))
	defer origin.Close()
	p := newTestProxy(t, origin.URL, func(c *Config) {
		c.PageCache = true
		c.PageCacheTTL = time.Minute
		c.PageCacheBudget = 1024
	})
	ts := httptest.NewServer(p)
	defer ts.Close()

	pageGet(t, ts.URL+"/a", nil) // resident: ~700 bytes
	if p.Pages().Len() != 1 {
		t.Fatalf("warm page not resident")
	}
	// A second page's capture reserves ~700 in-flight bytes: the resident
	// page must be evicted to keep the ledger under budget, and after the
	// fill the reservation must be fully released.
	pageGet(t, ts.URL+"/b", nil)
	if used := p.Pages().Store().BudgetUsed(); used > 1024 {
		t.Fatalf("ledger settled at %d, over the 1024 budget", used)
	}
	if bytes, used := p.Pages().Bytes(), p.Pages().Store().BudgetUsed(); bytes != used {
		t.Fatalf("unsettled capture reservation: resident=%d ledger=%d", bytes, used)
	}
}
