package dpc

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"dpcache/internal/tmpl"
)

func TestStoreRejectsBadCapacity(t *testing.T) {
	if _, err := NewStore(0); err == nil {
		t.Fatal("capacity 0 accepted")
	}
}

func TestStoreSetGet(t *testing.T) {
	s, err := NewStore(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Set(2, 7, []byte("frag")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(2, 7, true)
	if !ok || string(got) != "frag" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
}

func TestStoreGetUnsetSlot(t *testing.T) {
	s, _ := NewStore(4)
	if _, ok := s.Get(1, 0, false); ok {
		t.Fatal("unset slot returned content")
	}
}

func TestStoreStrictGenerationCheck(t *testing.T) {
	s, _ := NewStore(4)
	_ = s.Set(0, 5, []byte("old"))
	if _, ok := s.Get(0, 6, true); ok {
		t.Fatal("strict Get matched wrong generation")
	}
	if got, ok := s.Get(0, 6, false); !ok || string(got) != "old" {
		t.Fatal("fast Get must ignore generation")
	}
}

func TestStoreKeyOutOfRange(t *testing.T) {
	s, _ := NewStore(2)
	if err := s.Set(2, 0, nil); err == nil {
		t.Fatal("out-of-range Set accepted")
	}
	if _, ok := s.Get(9, 0, false); ok {
		t.Fatal("out-of-range Get returned content")
	}
}

func TestStoreSetCopiesContent(t *testing.T) {
	s, _ := NewStore(2)
	src := []byte("abc")
	_ = s.Set(0, 1, src)
	src[0] = 'z'
	got, _ := s.Get(0, 1, true)
	if string(got) != "abc" {
		t.Fatal("store aliased caller buffer")
	}
}

func TestStoreBytesAndResident(t *testing.T) {
	s, _ := NewStore(4)
	_ = s.Set(0, 1, []byte("12345"))
	_ = s.Set(1, 1, []byte("12"))
	if s.Bytes() != 7 || s.Resident() != 2 {
		t.Fatalf("Bytes=%d Resident=%d", s.Bytes(), s.Resident())
	}
	_ = s.Set(0, 2, []byte("1")) // overwrite shrinks
	if s.Bytes() != 3 {
		t.Fatalf("Bytes after overwrite = %d, want 3", s.Bytes())
	}
	s.Drop(1)
	if s.Bytes() != 1 || s.Resident() != 1 {
		t.Fatalf("after Drop: Bytes=%d Resident=%d", s.Bytes(), s.Resident())
	}
	if _, ok := s.Get(1, 1, false); ok {
		t.Fatal("dropped slot still readable")
	}
}

func encodeTemplate(t *testing.T, c tmpl.Codec, ins []tmpl.Instruction) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tmpl.EncodeAll(c, &buf, ins); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestAssembleSetThenGet(t *testing.T) {
	for _, codec := range []tmpl.Codec{tmpl.Binary{}, tmpl.Text{}} {
		store, _ := NewStore(8)
		asm := NewAssembler(store, codec, true)

		// First response: SET populates the slot and the content
		// appears inline.
		t1 := encodeTemplate(t, codec, []tmpl.Instruction{
			{Op: tmpl.OpLiteral, Data: []byte("<a>")},
			{Op: tmpl.OpSet, Key: 3, Gen: 9, Data: []byte("FRAG")},
			{Op: tmpl.OpLiteral, Data: []byte("</a>")},
		})
		var page1 bytes.Buffer
		st1, err := asm.Assemble(&page1, bytes.NewReader(t1))
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		if page1.String() != "<a>FRAG</a>" {
			t.Fatalf("%s: page1 = %q", codec.Name(), page1.String())
		}
		if st1.Sets != 1 || st1.Gets != 0 {
			t.Fatalf("%s: stats = %+v", codec.Name(), st1)
		}
		if st1.TemplateBytes != int64(len(t1)) {
			t.Fatalf("%s: TemplateBytes = %d, want %d", codec.Name(), st1.TemplateBytes, len(t1))
		}

		// Second response: GET splices from the store.
		t2 := encodeTemplate(t, codec, []tmpl.Instruction{
			{Op: tmpl.OpLiteral, Data: []byte("<b>")},
			{Op: tmpl.OpGet, Key: 3, Gen: 9},
			{Op: tmpl.OpLiteral, Data: []byte("</b>")},
		})
		var page2 bytes.Buffer
		st2, err := asm.Assemble(&page2, bytes.NewReader(t2))
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		if page2.String() != "<b>FRAG</b>" {
			t.Fatalf("%s: page2 = %q", codec.Name(), page2.String())
		}
		if st2.Gets != 1 {
			t.Fatalf("%s: stats = %+v", codec.Name(), st2)
		}
		// The GET template must be smaller than the SET template —
		// that is the whole bandwidth argument.
		if st2.TemplateBytes >= st1.TemplateBytes {
			t.Fatalf("%s: GET template (%d) not smaller than SET template (%d)",
				codec.Name(), st2.TemplateBytes, st1.TemplateBytes)
		}
	}
}

func TestAssembleStaleUnsetSlot(t *testing.T) {
	store, _ := NewStore(8)
	asm := NewAssembler(store, tmpl.Binary{}, false)
	raw := encodeTemplate(t, tmpl.Binary{}, []tmpl.Instruction{{Op: tmpl.OpGet, Key: 1, Gen: 1}})
	_, err := asm.Assemble(&bytes.Buffer{}, bytes.NewReader(raw))
	if !errors.Is(err, ErrStale) {
		t.Fatalf("err = %v, want ErrStale", err)
	}
}

func TestAssembleStrictGenMismatch(t *testing.T) {
	store, _ := NewStore(8)
	_ = store.Set(1, 1, []byte("old"))
	strict := NewAssembler(store, tmpl.Binary{}, true)
	fast := NewAssembler(store, tmpl.Binary{}, false)
	raw := encodeTemplate(t, tmpl.Binary{}, []tmpl.Instruction{{Op: tmpl.OpGet, Key: 1, Gen: 2}})

	if _, err := strict.Assemble(&bytes.Buffer{}, bytes.NewReader(raw)); !errors.Is(err, ErrStale) {
		t.Fatalf("strict err = %v, want ErrStale", err)
	}
	var page bytes.Buffer
	if _, err := fast.Assemble(&page, bytes.NewReader(raw)); err != nil {
		t.Fatalf("fast err = %v", err)
	}
	if page.String() != "old" {
		t.Fatalf("fast page = %q", page.String())
	}
}

func TestAssembleCorruptTemplate(t *testing.T) {
	store, _ := NewStore(2)
	asm := NewAssembler(store, tmpl.Binary{}, false)
	raw := append(append([]byte{}, tmpl.Magic...), 'Q') // unknown op
	if _, err := asm.Assemble(&bytes.Buffer{}, bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupt template assembled")
	}
}

func TestAssemblePlainLiteralOnly(t *testing.T) {
	store, _ := NewStore(2)
	asm := NewAssembler(store, tmpl.Binary{}, false)
	raw := encodeTemplate(t, tmpl.Binary{}, []tmpl.Instruction{{Op: tmpl.OpLiteral, Data: []byte("static page")}})
	var page bytes.Buffer
	st, err := asm.Assemble(&page, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if page.String() != "static page" || st.Gets+st.Sets != 0 {
		t.Fatalf("page=%q stats=%+v", page.String(), st)
	}
}

func TestNewProxyValidation(t *testing.T) {
	if _, err := New(Config{Capacity: 4}); err == nil {
		t.Fatal("missing OriginURL accepted")
	}
	if _, err := New(Config{OriginURL: "http://x", Capacity: 0}); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func BenchmarkAssembleAllHits(b *testing.B) {
	store, _ := NewStore(16)
	frag := bytes.Repeat([]byte("f"), 1024)
	for k := uint32(0); k < 4; k++ {
		_ = store.Set(k, 1, frag)
	}
	var ins []tmpl.Instruction
	for k := uint32(0); k < 4; k++ {
		ins = append(ins, tmpl.Instruction{Op: tmpl.OpLiteral, Data: []byte("<div>")})
		ins = append(ins, tmpl.Instruction{Op: tmpl.OpGet, Key: k, Gen: 1})
	}
	var buf bytes.Buffer
	_ = tmpl.EncodeAll(tmpl.Binary{}, &buf, ins)
	raw := buf.Bytes()
	asm := NewAssembler(store, tmpl.Binary{}, true)
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var page bytes.Buffer
		if _, err := asm.Assemble(&page, bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAssembleAllMisses(b *testing.B) {
	store, _ := NewStore(16)
	frag := bytes.Repeat([]byte("f"), 1024)
	var ins []tmpl.Instruction
	for k := uint32(0); k < 4; k++ {
		ins = append(ins, tmpl.Instruction{Op: tmpl.OpLiteral, Data: []byte("<div>")})
		ins = append(ins, tmpl.Instruction{Op: tmpl.OpSet, Key: k, Gen: 1, Data: frag})
	}
	var buf bytes.Buffer
	_ = tmpl.EncodeAll(tmpl.Binary{}, &buf, ins)
	raw := buf.Bytes()
	asm := NewAssembler(store, tmpl.Binary{}, true)
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var page bytes.Buffer
		if _, err := asm.Assemble(&page, bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// A stale GET must not abort the template: SET instructions after it must
// still land in the store, and all failing references must be reported
// (the anti-poisoning property of DESIGN.md decision 4).
func TestAssembleAppliesSetsAfterStaleGet(t *testing.T) {
	store, _ := NewStore(8)
	asm := NewAssembler(store, tmpl.Binary{}, true)
	raw := encodeTemplate(t, tmpl.Binary{}, []tmpl.Instruction{
		{Op: tmpl.OpGet, Key: 0, Gen: 1}, // stale: never set
		{Op: tmpl.OpSet, Key: 1, Gen: 2, Data: []byte("later")},
		{Op: tmpl.OpGet, Key: 5, Gen: 9}, // also stale
	})
	st, err := asm.Assemble(&bytes.Buffer{}, bytes.NewReader(raw))
	if !errors.Is(err, ErrStale) {
		t.Fatalf("err = %v", err)
	}
	if got, ok := store.Get(1, 2, true); !ok || string(got) != "later" {
		t.Fatal("SET after stale GET was not applied")
	}
	if len(st.Stale) != 2 || st.Stale[0] != (StaleRef{Key: 0, Gen: 1}) || st.Stale[1] != (StaleRef{Key: 5, Gen: 9}) {
		t.Fatalf("Stale = %v", st.Stale)
	}
}

func TestFormatStaleRefs(t *testing.T) {
	if got := FormatStaleRefs(nil); got != "" {
		t.Fatalf("empty = %q", got)
	}
	refs := []StaleRef{{Key: 3, Gen: 7}, {Key: 10, Gen: 2}}
	if got := FormatStaleRefs(refs); got != "3:7,10:2" {
		t.Fatalf("refs = %q", got)
	}
}

// Property: for any random template whose GETs reference previously SET
// slots, assembly reproduces exactly the concatenation of literals and
// fragment contents, byte for byte — including literals that contain the
// codec's own magic bytes.
func TestAssembleIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2002))
	alphabet := []byte("ab<dpc:\x01DPC\"/>xyz")
	genBytes := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return b
	}
	for _, codec := range []tmpl.Codec{tmpl.Binary{}, tmpl.Text{}} {
		for trial := 0; trial < 120; trial++ {
			store, _ := NewStore(32)
			asm := NewAssembler(store, codec, true)
			type setFrag struct {
				key, gen uint32
				data     []byte
			}
			var sets []setFrag
			var ins []tmpl.Instruction
			var want bytes.Buffer
			nextKey := uint32(0)
			gen := uint32(1)
			for step, n := 0, 2+rng.Intn(12); step < n; step++ {
				switch {
				case len(sets) > 0 && rng.Intn(3) == 0:
					f := sets[rng.Intn(len(sets))]
					ins = append(ins, tmpl.Instruction{Op: tmpl.OpGet, Key: f.key, Gen: f.gen})
					want.Write(f.data)
				case rng.Intn(2) == 0 && nextKey < 31:
					data := genBytes(rng.Intn(150))
					f := setFrag{key: nextKey, gen: gen, data: data}
					nextKey++
					gen++
					sets = append(sets, f)
					ins = append(ins, tmpl.Instruction{Op: tmpl.OpSet, Key: f.key, Gen: f.gen, Data: data})
					want.Write(data)
				default:
					lit := genBytes(rng.Intn(120))
					ins = append(ins, tmpl.Instruction{Op: tmpl.OpLiteral, Data: lit})
					want.Write(lit)
				}
			}
			raw := encodeTemplate(t, codec, ins)
			var page bytes.Buffer
			if _, err := asm.Assemble(&page, bytes.NewReader(raw)); err != nil {
				t.Fatalf("%s trial %d: %v", codec.Name(), trial, err)
			}
			if !bytes.Equal(page.Bytes(), want.Bytes()) {
				t.Fatalf("%s trial %d: assembled %q, want %q", codec.Name(), trial, page.Bytes(), want.Bytes())
			}
		}
	}
}
