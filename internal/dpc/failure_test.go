package dpc

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"testing/quick"

	"dpcache/internal/tmpl"
)

// Failure injection: the proxy must degrade to clean HTTP errors — never
// panic, never emit a torn page — when the origin misbehaves.

func proxyFor(t *testing.T, origin *httptest.Server) *httptest.Server {
	t.Helper()
	p, err := New(Config{OriginURL: origin.URL, Capacity: 8, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p)
	t.Cleanup(ts.Close)
	return ts
}

func TestOriginDownReturns502(t *testing.T) {
	p, err := New(Config{OriginURL: "http://127.0.0.1:1", Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/page/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestOriginErrorStatusPropagates(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer origin.Close()
	ts := proxyFor(t, origin)
	resp, err := http.Get(ts.URL + "/page/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestGarbageTemplateReturns502(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-DPC-Template", "binary")
		_, _ = w.Write(append(append([]byte{}, tmpl.Magic...), 0xFF)) // unknown op
	}))
	defer origin.Close()
	ts := proxyFor(t, origin)
	resp, err := http.Get(ts.URL + "/page/x")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d body=%s", resp.StatusCode, body)
	}
}

func TestTruncatedTemplateReturns502(t *testing.T) {
	// A SET open tag whose content never arrives.
	var buf []byte
	buf = append(buf, tmpl.Magic...)
	buf = append(buf, 'S', 1, 1, 200) // key=1 gen=1 len=200, then EOF
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-DPC-Template", "binary")
		_, _ = w.Write(buf)
	}))
	defer origin.Close()
	ts := proxyFor(t, origin)
	resp, err := http.Get(ts.URL + "/page/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

// A flapping origin (alternating failures) must not wedge the proxy: the
// successes keep succeeding.
func TestFlappingOrigin(t *testing.T) {
	var n atomic.Int64
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%2 == 0 {
			http.Error(w, "flap", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, "<html>ok</html>")
	}))
	defer origin.Close()
	ts := proxyFor(t, origin)
	okCount, failCount := 0, 0
	for i := 0; i < 10; i++ {
		resp, err := http.Get(ts.URL + "/page/x")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			okCount++
		} else {
			failCount++
		}
	}
	if okCount == 0 || failCount == 0 {
		t.Fatalf("ok=%d fail=%d; expected a mix", okCount, failCount)
	}
}

// testing/quick property: arbitrary random byte slices survive a binary
// literal-encode/decode roundtrip (the escaping path under fuzz-ish
// input).
func TestBinaryLiteralRoundTripQuick(t *testing.T) {
	f := func(data []byte) bool {
		var wire []byte
		{
			var buf writerBuf
			enc := tmpl.Binary{}.NewEncoder(&buf)
			if err := enc.Literal(data); err != nil {
				return false
			}
			if err := enc.Flush(); err != nil {
				return false
			}
			wire = buf.b
		}
		ins, err := tmpl.DecodeAll(tmpl.Binary{}, &readerBuf{b: wire})
		if err != nil {
			return false
		}
		var got []byte
		for _, in := range ins {
			if in.Op != tmpl.OpLiteral {
				return false
			}
			got = append(got, in.Data...)
		}
		return string(got) == string(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

type readerBuf struct {
	b []byte
	i int
}

func (r *readerBuf) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}
