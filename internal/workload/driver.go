package workload

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dpcache/internal/metrics"
)

// Request describes one generated request: the path (with query) and the
// user identity to attach.
type Request struct {
	Path string
	User string
}

// Generator produces the next request; implementations must be safe to
// call from the driver goroutine that owns the passed rng.
type Generator func(rng *rand.Rand) Request

// PageGenerator builds the standard experimental workload: Zipf-popular
// pages addressed as basePath?page=<rank>, with users drawn from a pool.
func PageGenerator(z *Zipf, users *UserPool, basePath string) Generator {
	return func(rng *rand.Rand) Request {
		rank := z.Sample(rng)
		return Request{
			Path: fmt.Sprintf("%s?page=%d", basePath, rank),
			User: users.Pick(rng),
		}
	}
}

// Result summarizes a driver run.
type Result struct {
	Requests  int64
	Errors    int64
	BodyBytes int64
	Elapsed   time.Duration
	Latency   *metrics.Histogram
}

// Throughput returns requests per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// Driver issues HTTP requests against a front-end URL (the DPC, or the
// origin in no-cache experiments) in a closed loop with fixed concurrency.
type Driver struct {
	// BaseURL is the front end, e.g. "http://127.0.0.1:9000".
	BaseURL string
	// Gen produces requests.
	Gen Generator
	// Concurrency is the virtual-client count; defaults to 1.
	Concurrency int
	// Seed makes runs reproducible.
	Seed int64
	// Client overrides the HTTP client (tests inject transports).
	Client *http.Client
}

// Run issues total requests and returns aggregate results. Workers split
// the request budget; each has a derived deterministic RNG.
func (d *Driver) Run(total int) (Result, error) {
	if d.BaseURL == "" || d.Gen == nil {
		return Result{}, fmt.Errorf("workload: driver needs BaseURL and Gen")
	}
	conc := d.Concurrency
	if conc <= 0 {
		conc = 1
	}
	if conc > total && total > 0 {
		conc = total
	}
	client := d.Client
	if client == nil {
		client = &http.Client{
			Transport: &http.Transport{MaxIdleConnsPerHost: conc},
			Timeout:   30 * time.Second,
		}
	}

	var reqs, errs, body atomic.Int64
	hist := metrics.NewHistogram(100*time.Microsecond, 30*time.Second)
	var wg sync.WaitGroup
	start := time.Now()
	per := total / conc
	extra := total % conc
	for w := 0; w < conc; w++ {
		n := per
		if w < extra {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(worker, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(d.Seed + int64(worker)*7919))
			for i := 0; i < n; i++ {
				r := d.Gen(rng)
				t0 := time.Now()
				ok, nbytes := d.do(client, r)
				hist.Observe(time.Since(t0))
				reqs.Add(1)
				if !ok {
					errs.Add(1)
				}
				body.Add(nbytes)
			}
		}(w, n)
	}
	wg.Wait()
	return Result{
		Requests:  reqs.Load(),
		Errors:    errs.Load(),
		BodyBytes: body.Load(),
		Elapsed:   time.Since(start),
		Latency:   hist,
	}, nil
}

// RunTrace issues requests open-loop at the given arrival offsets (in
// seconds from start, ascending — e.g. a Poisson.Trace). Unlike Run's
// closed loop, arrivals are not gated on completions; MaxInFlight bounds
// concurrency (0 = 256) and arrivals that would exceed it are dropped and
// counted as errors, modeling an overloaded client farm.
func (d *Driver) RunTrace(trace []float64) (Result, error) {
	if d.BaseURL == "" || d.Gen == nil {
		return Result{}, fmt.Errorf("workload: driver needs BaseURL and Gen")
	}
	limit := d.Concurrency
	if limit <= 0 {
		limit = 256
	}
	client := d.Client
	if client == nil {
		client = &http.Client{
			Transport: &http.Transport{MaxIdleConnsPerHost: limit},
			Timeout:   30 * time.Second,
		}
	}
	rng := rand.New(rand.NewSource(d.Seed))
	reqs := make([]Request, len(trace))
	for i := range reqs {
		reqs[i] = d.Gen(rng)
	}

	var done, errs, body atomic.Int64
	hist := metrics.NewHistogram(100*time.Microsecond, 30*time.Second)
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	start := time.Now()
	for i, at := range trace {
		if wait := time.Duration(at*float64(time.Second)) - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		select {
		case sem <- struct{}{}:
		default:
			done.Add(1)
			errs.Add(1) // dropped: client farm saturated
			continue
		}
		wg.Add(1)
		go func(r Request) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			ok, n := d.do(client, r)
			hist.Observe(time.Since(t0))
			done.Add(1)
			if !ok {
				errs.Add(1)
			}
			body.Add(n)
		}(reqs[i])
	}
	wg.Wait()
	return Result{
		Requests:  done.Load(),
		Errors:    errs.Load(),
		BodyBytes: body.Load(),
		Elapsed:   time.Since(start),
		Latency:   hist,
	}, nil
}

func (d *Driver) do(client *http.Client, r Request) (ok bool, bodyBytes int64) {
	req, err := http.NewRequest(http.MethodGet, d.BaseURL+r.Path, nil)
	if err != nil {
		return false, 0
	}
	if r.User != "" {
		req.Header.Set("X-User", r.User)
	}
	resp, err := client.Do(req)
	if err != nil {
		return false, 0
	}
	defer resp.Body.Close()
	n, err := io.Copy(io.Discard, resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return false, n
	}
	return true, n
}
