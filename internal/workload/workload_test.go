package workload

import (
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewZipf(5, -1); err == nil {
		t.Fatal("negative alpha accepted")
	}
}

func TestZipfPmfSumsToOne(t *testing.T) {
	z, err := NewZipf(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("pmf sums to %v", sum)
	}
}

// Property: empirical sample frequencies match the analytical pmf.
func TestZipfEmpiricalMatchesPmf(t *testing.T) {
	z, err := NewZipf(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	const n = 200000
	counts := make([]int, z.N())
	for i := 0; i < n; i++ {
		counts[z.Sample(rng)]++
	}
	for i := 0; i < z.N(); i++ {
		got := float64(counts[i]) / n
		want := z.Prob(i)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("rank %d: empirical %v vs pmf %v", i, got, want)
		}
	}
}

func TestZipfRankOrdering(t *testing.T) {
	z, _ := NewZipf(10, 1)
	for i := 1; i < z.N(); i++ {
		if z.Prob(i) >= z.Prob(i-1) {
			t.Fatalf("pmf not decreasing at rank %d", i)
		}
	}
}

func TestZipfAlphaZeroUniform(t *testing.T) {
	z, _ := NewZipf(4, 0)
	for i := 0; i < 4; i++ {
		if math.Abs(z.Prob(i)-0.25) > 1e-12 {
			t.Fatalf("alpha=0 pmf = %v", z.Prob(i))
		}
	}
}

func TestPoissonValidation(t *testing.T) {
	if _, err := NewPoisson(0); err == nil {
		t.Fatal("rate 0 accepted")
	}
}

func TestPoissonMeanInterarrival(t *testing.T) {
	p, err := NewPoisson(100) // 100 req/s → mean gap 10ms
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += p.Interarrival(rng)
	}
	mean := sum / n
	if math.Abs(mean-0.01) > 0.0005 {
		t.Fatalf("mean interarrival %v, want ~0.01", mean)
	}
}

func TestPoissonTraceMonotonic(t *testing.T) {
	p, _ := NewPoisson(10)
	rng := rand.New(rand.NewSource(1))
	tr := p.Trace(rng, 100)
	for i := 1; i < len(tr); i++ {
		if tr[i] <= tr[i-1] {
			t.Fatalf("trace not increasing at %d", i)
		}
	}
}

func TestUserPoolFractions(t *testing.T) {
	u, err := NewUserPool(20, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	reg := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if u.Pick(rng) != "" {
			reg++
		}
	}
	frac := float64(reg) / n
	if math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("registered fraction %v, want ~0.3", frac)
	}
}

func TestUserPoolAllAnonymous(t *testing.T) {
	u, _ := NewUserPool(0, 1)
	rng := rand.New(rand.NewSource(1))
	if u.Pick(rng) != "" {
		t.Fatal("empty pool returned a user")
	}
	if u.Size() != 0 {
		t.Fatal("size")
	}
}

func TestUserPoolValidation(t *testing.T) {
	if _, err := NewUserPool(-1, 0.5); err == nil {
		t.Fatal("negative n accepted")
	}
	if _, err := NewUserPool(1, 1.5); err == nil {
		t.Fatal("frac > 1 accepted")
	}
}

func TestPageGeneratorShape(t *testing.T) {
	z, _ := NewZipf(5, 1)
	u, _ := NewUserPool(2, 1)
	gen := PageGenerator(z, u, "/page/synth")
	rng := rand.New(rand.NewSource(9))
	r := gen(rng)
	if r.User == "" {
		t.Fatal("expected registered user at frac=1")
	}
	var rank int
	if _, err := fmt.Sscanf(r.Path, "/page/synth?page=%d", &rank); err != nil {
		t.Fatalf("path %q: %v", r.Path, err)
	}
	if rank < 0 || rank >= 5 {
		t.Fatalf("rank %d out of range", rank)
	}
}

func TestDriverRunAgainstTestServer(t *testing.T) {
	var hits atomic.Int64
	var userSeen atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if r.Header.Get("X-User") != "" {
			userSeen.Add(1)
		}
		fmt.Fprint(w, "0123456789") // 10 bytes
	}))
	defer ts.Close()

	z, _ := NewZipf(3, 1)
	u, _ := NewUserPool(4, 0.5)
	d := &Driver{BaseURL: ts.URL, Gen: PageGenerator(z, u, "/page/synth"), Concurrency: 4, Seed: 11}
	res, err := d.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 100 || hits.Load() != 100 {
		t.Fatalf("requests = %d, server saw %d", res.Requests, hits.Load())
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.BodyBytes != 1000 {
		t.Fatalf("body bytes = %d, want 1000", res.BodyBytes)
	}
	if userSeen.Load() == 0 {
		t.Fatal("no requests carried a user header")
	}
	if res.Latency.Count() != 100 {
		t.Fatalf("latency observations = %d", res.Latency.Count())
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput not positive")
	}
}

func TestDriverCountsErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	}))
	defer ts.Close()
	z, _ := NewZipf(1, 1)
	u, _ := NewUserPool(0, 0)
	d := &Driver{BaseURL: ts.URL, Gen: PageGenerator(z, u, "/x"), Seed: 1}
	res, err := d.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 5 {
		t.Fatalf("errors = %d, want 5", res.Errors)
	}
}

func TestDriverValidation(t *testing.T) {
	d := &Driver{}
	if _, err := d.Run(1); err == nil {
		t.Fatal("empty driver accepted")
	}
}

func TestDriverDeterministicRequestMix(t *testing.T) {
	// Two runs with the same seed against a recording server must produce
	// the same multiset of paths.
	record := func(seed int64) map[string]int {
		got := map[string]int{}
		var mu = make(chan struct{}, 1)
		mu <- struct{}{}
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			<-mu
			got[r.URL.RawQuery]++
			mu <- struct{}{}
			fmt.Fprint(w, "ok")
		}))
		defer ts.Close()
		z, _ := NewZipf(4, 1)
		u, _ := NewUserPool(0, 0)
		d := &Driver{BaseURL: ts.URL, Gen: PageGenerator(z, u, "/p"), Concurrency: 2, Seed: seed}
		if _, err := d.Run(40); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := record(5), record(5)
	if len(a) != len(b) {
		t.Fatalf("mix differs: %v vs %v", a, b)
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("query %q: %d vs %d", k, v, b[k])
		}
	}
}

func TestRunTraceOpenLoop(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		fmt.Fprint(w, "ok")
	}))
	defer ts.Close()
	z, _ := NewZipf(2, 1)
	u, _ := NewUserPool(0, 0)
	d := &Driver{BaseURL: ts.URL, Gen: PageGenerator(z, u, "/p"), Seed: 3, Concurrency: 8}
	// 30 arrivals over ~60ms.
	trace := make([]float64, 30)
	for i := range trace {
		trace[i] = float64(i) * 0.002
	}
	res, err := d.RunTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 30 {
		t.Fatalf("requests = %d", res.Requests)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if hits.Load() != 30 {
		t.Fatalf("server saw %d", hits.Load())
	}
	if res.Elapsed < 50*time.Millisecond {
		t.Fatalf("open loop finished in %v; arrivals not paced", res.Elapsed)
	}
}

func TestRunTraceDropsWhenSaturated(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		fmt.Fprint(w, "ok")
	}))
	defer ts.Close()
	z, _ := NewZipf(1, 1)
	u, _ := NewUserPool(0, 0)
	d := &Driver{BaseURL: ts.URL, Gen: PageGenerator(z, u, "/p"), Seed: 3, Concurrency: 2}
	trace := []float64{0, 0, 0, 0, 0} // 5 simultaneous arrivals, 2 slots
	resCh := make(chan Result, 1)
	go func() {
		res, _ := d.RunTrace(trace)
		resCh <- res
	}()
	time.Sleep(50 * time.Millisecond)
	close(release)
	res := <-resCh
	if res.Requests != 5 {
		t.Fatalf("requests = %d", res.Requests)
	}
	if res.Errors < 3 {
		t.Fatalf("errors = %d, want >= 3 dropped arrivals", res.Errors)
	}
}

func TestRunTraceValidation(t *testing.T) {
	d := &Driver{}
	if _, err := d.RunTrace([]float64{0}); err == nil {
		t.Fatal("empty driver accepted")
	}
}
