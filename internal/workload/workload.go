// Package workload generates the offered load of the paper's experiments:
// the WebLoad client-cluster stand-in.
//
// Page popularity follows a Zipf distribution, "which has been shown to
// describe Web page requests with reasonable accuracy" (Section 5, citing
// Almeida et al. and Cunha et al.). Request arrivals can follow a Poisson
// process; the bandwidth experiments use a closed loop with fixed
// concurrency, which is what WebLoad does at a fixed virtual-client count.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks 0..n-1 with P(rank i) ∝ 1/(i+1)^alpha. Unlike
// math/rand's Zipf it supports alpha ≤ 1 and exposes the exact pmf, which
// the experiments need to line up measurement with the analytical model.
type Zipf struct {
	cdf []float64
	pmf []float64
}

// NewZipf builds a sampler over n ranks with the given exponent.
func NewZipf(n int, alpha float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: zipf needs n > 0, got %d", n)
	}
	if alpha < 0 {
		return nil, fmt.Errorf("workload: zipf exponent must be >= 0, got %v", alpha)
	}
	pmf := make([]float64, n)
	var sum float64
	for i := range pmf {
		pmf[i] = 1 / math.Pow(float64(i+1), alpha)
		sum += pmf[i]
	}
	cdf := make([]float64, n)
	var acc float64
	for i := range pmf {
		pmf[i] /= sum
		acc += pmf[i]
		cdf[i] = acc
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf, pmf: pmf}, nil
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.pmf) }

// Prob returns P(rank).
func (z *Zipf) Prob(rank int) float64 { return z.pmf[rank] }

// Sample draws a rank using the supplied source.
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Poisson models request arrivals at a given rate (requests/second). The
// experiments use it for open-loop traces; Interarrival returns the next
// gap in seconds.
type Poisson struct {
	rate float64
}

// NewPoisson returns an arrival process with the given mean rate.
func NewPoisson(rate float64) (*Poisson, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("workload: poisson rate must be positive, got %v", rate)
	}
	return &Poisson{rate: rate}, nil
}

// Interarrival draws the next exponential gap, in seconds.
func (p *Poisson) Interarrival(rng *rand.Rand) float64 {
	return rng.ExpFloat64() / p.rate
}

// Trace generates n cumulative arrival times starting at 0.
func (p *Poisson) Trace(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	t := 0.0
	for i := range out {
		t += p.Interarrival(rng)
		out[i] = t
	}
	return out
}

// UserPool models the site's visitor population: a fixed set of registered
// users plus anonymous traffic. RegisteredFraction of requests carry a
// user identity (Section 2.1's registered/non-registered split).
type UserPool struct {
	users   []string
	regFrac float64
}

// NewUserPool creates n registered users named u0..u(n-1).
func NewUserPool(n int, registeredFraction float64) (*UserPool, error) {
	if n < 0 || registeredFraction < 0 || registeredFraction > 1 {
		return nil, fmt.Errorf("workload: bad user pool (n=%d, frac=%v)", n, registeredFraction)
	}
	users := make([]string, n)
	for i := range users {
		users[i] = fmt.Sprintf("u%d", i)
	}
	return &UserPool{users: users, regFrac: registeredFraction}, nil
}

// Pick returns a user ID for the next request, or "" for anonymous.
func (u *UserPool) Pick(rng *rand.Rand) string {
	if len(u.users) == 0 || rng.Float64() >= u.regFrac {
		return ""
	}
	return u.users[rng.Intn(len(u.users))]
}

// Size returns the registered-user count.
func (u *UserPool) Size() int { return len(u.users) }
