// Package script is the dynamic-scripting substrate: the stand-in for the
// JSP/ASP page-generation layer of Section 2.
//
// A Script generates one page. Its Layout function runs per request and
// returns the ordered code blocks that make up the page — so both the
// *content* and the *layout* are decided at run time, the property
// (Section 2.1) that defeats URL-keyed proxy caches and ESI-style
// templates, and that the DPC/BEM design exists to support.
//
// Cacheable code blocks are created with Tagged — the initialization-time
// tagging API of Section 4.3.1. A tagged block carries the fragment name,
// a TTL, and a KeyParams function producing the parameter list that
// completes the fragmentID (fragmentID = name "+" parameterList).
//
// Script execution is sink-driven: the same script runs unchanged against
//
//   - a PlainSink (full page bytes — the no-cache baseline server), or
//   - the origin server's BEM sink (template output with GET/SET tags).
//
// That shared code path is what makes the with/without-cache comparisons
// of Section 6 apples-to-apples.
package script

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"dpcache/internal/repository"
)

// Context carries per-request state through a script run: the request
// parameters, the requesting user (empty for anonymous visitors), and the
// repository handle. It also collects the data dependencies touched while
// rendering the current fragment, which the BEM uses for update-driven
// invalidation.
type Context struct {
	// Params are the request's query parameters (e.g. categoryID).
	Params map[string]string
	// UserID identifies a registered user; empty means anonymous.
	UserID string
	// Repo is the content repository backing the site.
	Repo *repository.Repo

	deps []repository.Key
}

// NewContext returns a request context.
func NewContext(repo *repository.Repo, userID string, params map[string]string) *Context {
	if params == nil {
		params = map[string]string{}
	}
	return &Context{Params: params, UserID: userID, Repo: repo}
}

// Param returns a request parameter or def when absent.
func (c *Context) Param(name, def string) string {
	if v, ok := c.Params[name]; ok {
		return v
	}
	return def
}

// Anonymous reports whether the request has no registered user.
func (c *Context) Anonymous() bool { return c.UserID == "" }

// Query reads a repository row, recording the dependency for the fragment
// currently being rendered.
func (c *Context) Query(table, row string) (repository.Row, error) {
	k := repository.Key{Table: table, Row: row}
	c.deps = append(c.deps, k)
	return c.Repo.Get(k)
}

// Field reads one column, recording the dependency; def is returned when
// the row or column is missing.
func (c *Context) Field(table, row, column, def string) string {
	k := repository.Key{Table: table, Row: row}
	c.deps = append(c.deps, k)
	return c.Repo.Field(k, column, def)
}

// resetDeps clears and returns the dependencies recorded so far.
func (c *Context) resetDeps() []repository.Key {
	d := c.deps
	c.deps = nil
	return d
}

// RenderFunc writes a block's output.
type RenderFunc func(ctx *Context, w io.Writer) error

// Block is one code block of a script.
type Block struct {
	// Name identifies the block; for tagged blocks it is the first half
	// of the fragmentID.
	Name string
	// Cacheable marks the block as tagged.
	Cacheable bool
	// TTL bounds fragment freshness; zero means no time-based expiry.
	TTL time.Duration
	// KeyParams returns the parameter list completing the fragmentID.
	// Only consulted for tagged blocks. Nil means no parameters.
	KeyParams func(*Context) string
	// Render produces the block's output.
	Render RenderFunc
}

// FragmentID computes the block's fragment identifier for a request:
// name + parameterList, as in Section 4.3.1.
func (b Block) FragmentID(ctx *Context) string {
	if b.KeyParams == nil {
		return b.Name
	}
	return b.Name + "+" + b.KeyParams(ctx)
}

// Tagged constructs a cacheable code block — the tagging API the paper
// inserts around cacheable regions at initialization time.
func Tagged(name string, ttl time.Duration, keyParams func(*Context) string, render RenderFunc) Block {
	return Block{Name: name, Cacheable: true, TTL: ttl, KeyParams: keyParams, Render: render}
}

// Untagged constructs a non-cacheable code block; its output is always
// generated fresh and shipped as literal bytes.
func Untagged(name string, render RenderFunc) Block {
	return Block{Name: name, Render: render}
}

// Static is a convenience for an untagged block with fixed output.
func Static(name, html string) Block {
	return Untagged(name, func(_ *Context, w io.Writer) error {
		_, err := io.WriteString(w, html)
		return err
	})
}

// Script generates one page.
type Script struct {
	// Name is the script's path component, e.g. "catalog".
	Name string
	// Layout returns, per request, the ordered blocks composing the page.
	Layout func(*Context) []Block
}

// Sink receives script output. Implementations decide what "cacheable"
// means: the plain sink renders everything; the origin's BEM sink turns
// tagged blocks into GET/SET template instructions.
type Sink interface {
	// Literal receives non-cacheable output bytes.
	Literal(p []byte) error
	// Fragment handles one tagged block. render generates the fragment
	// body on demand and returns the repository keys it depended on.
	Fragment(fragmentID string, ttl time.Duration, render func(w io.Writer) ([]repository.Key, error)) error
}

// Run executes the script against the sink.
func Run(s *Script, ctx *Context, sink Sink) error {
	if s.Layout == nil {
		return fmt.Errorf("script %q has no layout", s.Name)
	}
	for _, b := range s.Layout(ctx) {
		b := b
		if !b.Cacheable {
			var buf bytes.Buffer
			ctx.resetDeps()
			if err := b.Render(ctx, &buf); err != nil {
				return fmt.Errorf("script %q block %q: %w", s.Name, b.Name, err)
			}
			if err := sink.Literal(buf.Bytes()); err != nil {
				return err
			}
			continue
		}
		fragID := b.FragmentID(ctx)
		err := sink.Fragment(fragID, b.TTL, func(w io.Writer) ([]repository.Key, error) {
			ctx.resetDeps()
			if err := b.Render(ctx, w); err != nil {
				return nil, fmt.Errorf("script %q block %q: %w", s.Name, b.Name, err)
			}
			return ctx.resetDeps(), nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// PlainSink renders every block — cacheable or not — straight to a writer.
// It is the no-cache baseline: the page exactly as a conventional
// application server would emit it.
type PlainSink struct {
	W io.Writer
	// Bytes counts total output.
	Bytes int64
}

// Literal implements Sink.
func (p *PlainSink) Literal(b []byte) error {
	n, err := p.W.Write(b)
	p.Bytes += int64(n)
	return err
}

// Fragment implements Sink by always generating.
func (p *PlainSink) Fragment(_ string, _ time.Duration, render func(io.Writer) ([]repository.Key, error)) error {
	var buf bytes.Buffer
	if _, err := render(&buf); err != nil {
		return err
	}
	n, err := p.W.Write(buf.Bytes())
	p.Bytes += int64(n)
	return err
}

// RenderPage is a convenience that runs a script against a PlainSink and
// returns the full page bytes.
func RenderPage(s *Script, ctx *Context) ([]byte, error) {
	var buf bytes.Buffer
	if err := Run(s, ctx, &PlainSink{W: &buf}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
