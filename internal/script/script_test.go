package script

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"dpcache/internal/repository"
)

func newRepo() *repository.Repo {
	r := repository.New(repository.LatencyModel{})
	r.Put(repository.Key{Table: "cat", Row: "fiction"}, map[string]string{"title": "Fiction"})
	r.Put(repository.Key{Table: "users", Row: "bob"}, map[string]string{"name": "Bob"})
	return r
}

func greetingScript() *Script {
	return &Script{
		Name: "page",
		Layout: func(ctx *Context) []Block {
			blocks := []Block{Static("head", "<html>")}
			if !ctx.Anonymous() {
				blocks = append(blocks, Tagged("greet", 0,
					func(c *Context) string { return c.UserID },
					func(c *Context, w io.Writer) error {
						name := c.Field("users", c.UserID, "name", c.UserID)
						_, err := fmt.Fprintf(w, "Hello, %s", name)
						return err
					}))
			}
			blocks = append(blocks,
				Tagged("cat", time.Minute,
					func(c *Context) string { return c.Param("categoryID", "none") },
					func(c *Context, w io.Writer) error {
						title := c.Field("cat", c.Param("categoryID", "none"), "title", "?")
						_, err := fmt.Fprintf(w, "[%s]", title)
						return err
					}),
				Static("tail", "</html>"))
			return blocks
		},
	}
}

func TestRenderPagePlain(t *testing.T) {
	repo := newRepo()
	s := greetingScript()
	page, err := RenderPage(s, NewContext(repo, "bob", map[string]string{"categoryID": "fiction"}))
	if err != nil {
		t.Fatal(err)
	}
	want := "<html>Hello, Bob[Fiction]</html>"
	if string(page) != want {
		t.Fatalf("page = %q, want %q", page, want)
	}
}

// The same URL must yield different layouts for different users — the
// dynamic-layout property of Section 2.1 (Bob vs Alice).
func TestDynamicLayoutPerUser(t *testing.T) {
	repo := newRepo()
	s := greetingScript()
	params := map[string]string{"categoryID": "fiction"}
	bob, err := RenderPage(s, NewContext(repo, "bob", params))
	if err != nil {
		t.Fatal(err)
	}
	alice, err := RenderPage(s, NewContext(repo, "", params)) // anonymous
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(alice), "Hello") {
		t.Fatalf("anonymous user got a greeting: %q", alice)
	}
	if !strings.Contains(string(bob), "Hello, Bob") {
		t.Fatalf("registered user missing greeting: %q", bob)
	}
}

func TestFragmentIDIncludesParams(t *testing.T) {
	b := Tagged("cat", 0, func(c *Context) string { return c.Param("categoryID", "x") }, nil)
	ctx := NewContext(nil, "", map[string]string{"categoryID": "fiction"})
	if got := b.FragmentID(ctx); got != "cat+fiction" {
		t.Fatalf("FragmentID = %q", got)
	}
	plain := Tagged("nav", 0, nil, nil)
	if got := plain.FragmentID(ctx); got != "nav" {
		t.Fatalf("FragmentID without params = %q", got)
	}
}

// recordingSink captures the fragment/literal sequence a run produces.
type recordingSink struct {
	events []string
	deps   map[string][]repository.Key
}

func (r *recordingSink) Literal(p []byte) error {
	r.events = append(r.events, "lit:"+string(p))
	return nil
}

func (r *recordingSink) Fragment(id string, _ time.Duration, render func(io.Writer) ([]repository.Key, error)) error {
	var buf bytes.Buffer
	deps, err := render(&buf)
	if err != nil {
		return err
	}
	if r.deps == nil {
		r.deps = map[string][]repository.Key{}
	}
	r.deps[id] = deps
	r.events = append(r.events, "frag:"+id+":"+buf.String())
	return nil
}

func TestRunRoutesBlocksToSink(t *testing.T) {
	repo := newRepo()
	s := greetingScript()
	sink := &recordingSink{}
	ctx := NewContext(repo, "bob", map[string]string{"categoryID": "fiction"})
	if err := Run(s, ctx, sink); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"lit:<html>",
		"frag:greet+bob:Hello, Bob",
		"frag:cat+fiction:[Fiction]",
		"lit:</html>",
	}
	if len(sink.events) != len(want) {
		t.Fatalf("events = %v", sink.events)
	}
	for i := range want {
		if sink.events[i] != want[i] {
			t.Fatalf("event %d = %q, want %q", i, sink.events[i], want[i])
		}
	}
}

// Dependencies recorded inside a fragment render must be scoped to that
// fragment only — the interdependent-fragments problem of Section 3.2.2 is
// solved by tracking actual reads per block.
func TestDependencyScopingPerFragment(t *testing.T) {
	repo := newRepo()
	s := greetingScript()
	sink := &recordingSink{}
	ctx := NewContext(repo, "bob", map[string]string{"categoryID": "fiction"})
	if err := Run(s, ctx, sink); err != nil {
		t.Fatal(err)
	}
	greetDeps := sink.deps["greet+bob"]
	if len(greetDeps) != 1 || greetDeps[0] != (repository.Key{Table: "users", Row: "bob"}) {
		t.Fatalf("greet deps = %v", greetDeps)
	}
	catDeps := sink.deps["cat+fiction"]
	if len(catDeps) != 1 || catDeps[0] != (repository.Key{Table: "cat", Row: "fiction"}) {
		t.Fatalf("cat deps = %v", catDeps)
	}
}

func TestRunErrorsPropagate(t *testing.T) {
	boom := errors.New("boom")
	s := &Script{
		Name: "bad",
		Layout: func(*Context) []Block {
			return []Block{Untagged("x", func(*Context, io.Writer) error { return boom })}
		},
	}
	err := Run(s, NewContext(nil, "", nil), &PlainSink{W: io.Discard})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestTaggedBlockErrorPropagates(t *testing.T) {
	boom := errors.New("frag boom")
	s := &Script{
		Name: "bad",
		Layout: func(*Context) []Block {
			return []Block{Tagged("f", 0, nil, func(*Context, io.Writer) error { return boom })}
		},
	}
	err := Run(s, NewContext(nil, "", nil), &PlainSink{W: io.Discard})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestNilLayoutErrors(t *testing.T) {
	if err := Run(&Script{Name: "empty"}, NewContext(nil, "", nil), &PlainSink{W: io.Discard}); err == nil {
		t.Fatal("nil layout accepted")
	}
}

func TestPlainSinkCountsBytes(t *testing.T) {
	repo := newRepo()
	var buf bytes.Buffer
	sink := &PlainSink{W: &buf}
	ctx := NewContext(repo, "", map[string]string{"categoryID": "fiction"})
	if err := Run(greetingScript(), ctx, sink); err != nil {
		t.Fatal(err)
	}
	if sink.Bytes != int64(buf.Len()) {
		t.Fatalf("Bytes = %d, buffer = %d", sink.Bytes, buf.Len())
	}
}

func TestContextParamDefault(t *testing.T) {
	ctx := NewContext(nil, "", nil)
	if ctx.Param("missing", "d") != "d" {
		t.Fatal("default not returned")
	}
}

func TestContextQueryRecordsDepEvenOnMiss(t *testing.T) {
	repo := repository.New(repository.LatencyModel{})
	ctx := NewContext(repo, "", nil)
	_, err := ctx.Query("t", "missing")
	if err == nil {
		t.Fatal("expected not-found error")
	}
	deps := ctx.resetDeps()
	if len(deps) != 1 {
		t.Fatalf("deps = %v; a miss must still record the dependency", deps)
	}
}
