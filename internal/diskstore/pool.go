package diskstore

import (
	"container/list"
	"errors"
)

var (
	errClosed    = errors.New("diskstore: closed")
	errShortPage = errors.New("diskstore: short page read")
	errBadPage   = errors.New("diskstore: page failed checksum")
)

// The buffer pool. Frames live under the store latch (s.mu); every
// disk syscall happens with the latch released:
//
//   - loads publish through frame.loading: the loader inserts a frame
//     with an open channel, releases the latch, reads and verifies the
//     page, then closes the channel; waiters pin first and block on the
//     channel outside the latch.
//   - write-backs snapshot the frame under the latch and WriteAt the
//     private copy after releasing it, with at most one in-flight write
//     per page id so page images land on disk in staging order.
//   - slot kills replace the frame copy-on-write, so lock-free readers
//     still holding the old frame never race the edit.
//
// Clock (second-chance) eviction only considers unpinned, clean,
// loaded frames — evicting one is a pure map delete, never I/O.

type frame struct {
	page int
	data []byte
	elem *list.Element // position in the clock ring

	pins    int  // eviction guard; guarded by s.mu
	ref     bool // clock reference bit
	loading chan struct{}
	loadErr error
}

// replaceFrameLocked installs f as the current frame for its page,
// orphaning any previous frame object (in-flight readers that pinned
// the old one keep reading its stable bytes).
func (s *Store) replaceFrameLocked(page int, f *frame) {
	if old := s.frames[page]; old != nil {
		s.removeClockLocked(old)
	}
	s.frames[page] = f
	s.addClockLocked(f)
}

func (s *Store) addClockLocked(f *frame) {
	f.elem = s.clock.PushBack(f)
}

func (s *Store) removeClockLocked(f *frame) {
	if f.elem == nil {
		return
	}
	if s.hand == f.elem {
		s.hand = f.elem.Next()
	}
	s.clock.Remove(f.elem)
	f.elem = nil
}

// evictFramesLocked runs the clock hand until the pool is within its
// frame budget or no frame is evictable. Dirty, pinned, loading, and
// flushing frames are skipped; a skipped clean frame loses its
// reference bit, so hot pages survive one extra sweep.
func (s *Store) evictFramesLocked() {
	budget := s.cfg.PoolPages
	if budget <= 0 || s.clock.Len() <= budget {
		return
	}
	scans := 2 * s.clock.Len()
	for s.clock.Len() > budget && scans > 0 {
		scans--
		if s.hand == nil {
			s.hand = s.clock.Front()
			if s.hand == nil {
				return
			}
		}
		e := s.hand
		s.hand = e.Next()
		f := e.Value.(*frame)
		if f.pins > 0 || f.loading != nil || s.dirty[f.page] == f || s.flushing[f.page] {
			f.ref = false
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		s.clock.Remove(e)
		f.elem = nil
		if s.frames[f.page] == f {
			delete(s.frames, f.page)
		}
		s.poolEvictions.Add(1)
	}
}

// markDirtyLocked records that f's page needs a write-back.
func (s *Store) markDirtyLocked(f *frame) {
	s.dirty[f.page] = f
}

// pin returns the loaded frame for page with its pin count raised,
// loading it from disk (outside the latch) if absent. The caller must
// unpin it.
func (s *Store) pin(page int) (*frame, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errClosed
	}
	if f := s.frames[page]; f != nil {
		f.pins++
		f.ref = true
		if ch := f.loading; ch != nil {
			s.mu.Unlock()
			<-ch
			if f.loadErr != nil {
				s.unpin(f)
				return nil, f.loadErr
			}
			s.poolHits.Add(1)
			return f, nil
		}
		s.mu.Unlock()
		s.poolHits.Add(1)
		return f, nil
	}
	f := &frame{page: page, data: make([]byte, s.pageBytes), loading: make(chan struct{}), pins: 1}
	s.frames[page] = f
	s.addClockLocked(f)
	s.evictFramesLocked()
	s.mu.Unlock()

	n, err := s.file.ReadAt(f.data, int64(page)*int64(s.pageBytes))
	if err == nil && n < len(f.data) {
		err = errShortPage
	}
	if err == nil && !verifyPage(f.data) {
		err = errBadPage
	}
	s.poolLoads.Add(1)

	s.mu.Lock()
	f.loadErr = err
	ch := f.loading
	f.loading = nil
	if err != nil && s.frames[page] == f {
		if f.elem != nil {
			s.removeClockLocked(f)
		}
		delete(s.frames, page)
	}
	s.mu.Unlock()
	close(ch)
	if err != nil {
		s.unpin(f)
		return nil, err
	}
	return f, nil
}

func (s *Store) unpin(f *frame) {
	s.mu.Lock()
	f.pins--
	s.mu.Unlock()
}

// flushDirty writes back dirty pages until none remain (or a truncate
// is in flight, which will re-drive the flush when it completes). Safe
// to call from any goroutine; per-page in-flight flags serialize
// write-backs for the same page id.
func (s *Store) flushDirty() {
	var scratch []byte
	for {
		s.mu.Lock()
		if s.truncating || s.closed {
			s.mu.Unlock()
			return
		}
		var f *frame
		for page, cand := range s.dirty {
			if !s.flushing[page] {
				f = cand
				break
			}
		}
		if f == nil {
			s.mu.Unlock()
			return
		}
		page := f.page
		delete(s.dirty, page)
		s.flushing[page] = true
		if scratch == nil {
			scratch = make([]byte, s.pageBytes)
		}
		copy(scratch, f.data)
		s.writes.Add(1)
		s.mu.Unlock()

		sealPage(scratch)
		_, err := s.file.WriteAt(scratch, int64(page)*int64(s.pageBytes))
		if err != nil {
			s.writeErrsCount.Add(1)
		}

		s.mu.Lock()
		delete(s.flushing, page)
		s.writes.Done()
		// The page just became clean, so the pool may shrink now.
		s.evictFramesLocked()
		s.mu.Unlock()
	}
}

// applyKills zeroes the slot directory entries of deleted records. For
// each affected page the current frame is loaded (if needed), cloned,
// edited, and swapped in under the latch — copy-on-write, so readers
// holding the old frame are never raced — then marked dirty for
// write-back. Must be called without s.mu held.
func (s *Store) applyKills(kills []segLoc) {
	if len(kills) == 0 {
		return
	}
	byPage := make(map[int][]segLoc)
	for _, loc := range kills {
		byPage[loc.page] = append(byPage[loc.page], loc)
	}
	for page, locs := range byPage {
		f, err := s.pin(page)
		if err != nil {
			continue // unreadable page: its records are unreachable anyway
		}
		s.mu.Lock()
		cur := s.frames[page]
		pi := s.pages[page]
		if cur == nil || pi == nil || pi.gen != locs[0].pgen || pi.free {
			// Page was freed or reincarnated since the kill was queued;
			// nothing on it belongs to the deleted record anymore.
			s.mu.Unlock()
			s.unpin(f)
			continue
		}
		nf := &frame{page: page, data: append([]byte(nil), cur.data...)}
		nSlots := pageSlotCount(nf.data)
		for _, loc := range locs {
			if loc.slot >= 0 && loc.slot < nSlots {
				setPageSlot(nf.data, loc.slot, 0, 0)
			}
		}
		s.replaceFrameLocked(page, nf)
		s.markDirtyLocked(nf)
		s.mu.Unlock()
		s.unpin(f)
	}
	s.flushDirty()
}
