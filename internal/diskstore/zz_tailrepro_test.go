package diskstore

import (
	"fmt"
	"path/filepath"
	"testing"
)

func TestTailFrameSurvivesKillAndPoolPressure(t *testing.T) {
	s, err := Open(Config{
		Path:      filepath.Join(t.TempDir(), "h.heap"),
		PageBytes: MinPageBytes,
		PoolPages: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	big := make([]byte, MinPageBytes/2)
	for _, k := range []string{"a1", "a2", "b1", "b2"} {
		s.Put(k, Entry{Value: big})
	}
	s.Put("tailkey", Entry{Value: []byte("x")})
	s.Put("tailkey2", Entry{Value: []byte("y")})
	s.Delete("tailkey") // kill in the unsealed tail -> frame cloned, pin lost
	// Read only keys on sealed pages, so the (now unpinned) tail frame is
	// evicted and never reloaded.
	for round := 0; round < 3; round++ {
		for _, k := range []string{"a1", "b1", "a2"} {
			if _, ok := s.Get(k); !ok {
				t.Fatalf("lost %q", k)
			}
		}
	}
	s.Put("after", Entry{Value: []byte("z")})
	if _, ok := s.Get("after"); !ok {
		t.Fatal("lost 'after'")
	}
	if _, ok := s.Get("tailkey2"); !ok {
		t.Fatal("lost 'tailkey2'")
	}
	fmt.Println("survived")
}
