// Package diskstore is a page-structured heap file behind a pinning
// buffer pool: the disk tier under fragstore's tiered backend.
//
// The store keeps a full in-memory index (key → record location + LRU
// position + byte accounting); the heap file holds the bytes. All disk
// I/O happens outside the store latch: reads go through buffer-pool
// frames loaded via a publish-on-channel protocol, and writes are
// staged into pinned frames under the latch, then written back from
// private snapshots after it is released (one in-flight write per page,
// so page images land in staging order). Deleting a record rewrites its
// page with the slot zeroed via copy-on-write, so concurrent lock-free
// readers of the old frame are never raced.
//
// Crash behavior: a record is committed once its page(s) carry valid
// checksums on disk, which the prompt write-back makes true moments
// after Put returns; replay at Open discards torn or checksum-bad pages
// wholesale and keeps, per key, the highest-sequence fully-present
// record that has not expired. Deletions are durable once their page
// rewrite lands — a crash in that instant can resurrect entries deleted
// in the final moments, which a cache tier tolerates (recovered entries
// still honor their TTL deadlines and remain subject to invalidation).
// A clean Close flushes everything and is exact.
package diskstore

import (
	"container/list"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dpcache/internal/clock"
)

// Config parameterizes Open.
type Config struct {
	// Path is the heap-file path; created on first open, replayed on
	// reopen. Required.
	Path string
	// ByteBudget bounds resident key+meta+value bytes; 0 = unbounded.
	// Over-budget Puts evict least-recently-used entries.
	ByteBudget int64
	// PageBytes is the heap-file page size (0 = DefaultPageBytes).
	// Changing it across restarts invalidates the existing file: every
	// old page fails its checksum at replay and is recycled.
	PageBytes int
	// PoolPages caps resident buffer-pool frames (0 = DefaultPoolPages).
	PoolPages int
	// Clock drives TTL expiry (nil = wall clock).
	Clock clock.Clock
}

// Validate checks the static configuration without touching the
// filesystem.
func (c Config) Validate() error {
	if c.Path == "" {
		return errors.New("diskstore: Path required")
	}
	if c.PageBytes != 0 && (c.PageBytes < MinPageBytes || c.PageBytes > MaxPageBytes) {
		return fmt.Errorf("diskstore: PageBytes %d outside [%d, %d]", c.PageBytes, MinPageBytes, MaxPageBytes)
	}
	if c.ByteBudget < 0 {
		return fmt.Errorf("diskstore: negative ByteBudget %d", c.ByteBudget)
	}
	if c.PoolPages < 0 {
		return fmt.Errorf("diskstore: negative PoolPages %d", c.PoolPages)
	}
	return nil
}

// Entry is one stored record.
type Entry struct {
	Value []byte
	Meta  string
	Gen   uint64
	// Deadline is the absolute expiry instant; zero means no TTL. The
	// store lazily drops expired entries on Get and at replay.
	Deadline time.Time
}

// Stats is a point-in-time snapshot plus monotonic counters.
type Stats struct {
	Resident   int   `json:"resident"`
	Bytes      int64 `json:"bytes"`
	ByteBudget int64 `json:"byte_budget"`
	PageBytes  int   `json:"page_bytes"`
	Pages      int   `json:"pages"`
	FreePages  int   `json:"free_pages"`

	Puts             int64 `json:"puts"`
	Hits             int64 `json:"hits"`
	Misses           int64 `json:"misses"`
	Deletes          int64 `json:"deletes"`
	Expired          int64 `json:"expired"`
	Evictions        int64 `json:"evictions"`
	EvictedBytes     int64 `json:"evicted_bytes"`
	RecoveredEntries int64 `json:"recovered_entries"`
	ChecksumDiscards int64 `json:"checksum_discards"`
	PoolHits         int64 `json:"pool_hits"`
	PoolLoads        int64 `json:"pool_loads"`
	PoolEvictions    int64 `json:"pool_evictions"`
	WriteErrors      int64 `json:"write_errors"`
}

// segLoc addresses one record segment; pgen guards against the page
// being freed and reincarnated between unlock and kill application.
type segLoc struct {
	page, slot int
	pgen       uint64
}

type dentry struct {
	key      string
	elem     *list.Element
	segs     []segLoc
	seq      uint64
	gen      uint64
	meta     string
	deadline int64
	valLen   int
	charge   int64
}

type pageInfo struct {
	gen    uint64
	live   int
	sealed bool
	free   bool
}

// Store is a disk-backed key/value cache tier. Safe for concurrent use.
type Store struct {
	cfg       Config
	clk       clock.Clock
	file      *os.File
	pageBytes int

	mu         sync.Mutex
	index      map[string]*dentry
	lru        list.List // *dentry; front = most recently used
	bytes      int64
	pages      map[int]*pageInfo
	freeList   []int
	nextPage   int
	tail       int // current append page, -1 when none
	seq        uint64
	epoch      uint64
	truncating bool
	closed     bool

	frames   map[int]*frame
	clock    list.List // *frame, clock ring
	hand     *list.Element
	dirty    map[int]*frame
	flushing map[int]bool // pages with a write-back in flight
	writes   sync.WaitGroup

	puts, hits, misses, deletes   atomic.Int64
	expired, evictions            atomic.Int64
	evictedBytes                  atomic.Int64
	recovered, checksumDiscards   atomic.Int64
	poolHits, poolLoads           atomic.Int64
	poolEvictions, writeErrsCount atomic.Int64
}

// Open opens (creating if absent) the heap file at cfg.Path and replays
// it: checksum-bad or torn pages are discarded and recycled, and the
// highest-sequence complete record per key is re-indexed unless already
// expired.
func Open(cfg Config) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.PageBytes == 0 {
		cfg.PageBytes = DefaultPageBytes
	}
	if cfg.PoolPages == 0 {
		cfg.PoolPages = DefaultPoolPages
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	f, err := os.OpenFile(cfg.Path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("diskstore: open %s: %w", cfg.Path, err)
	}
	s := &Store{
		cfg:       cfg,
		clk:       clk,
		file:      f,
		pageBytes: cfg.PageBytes,
		index:     make(map[string]*dentry),
		pages:     make(map[int]*pageInfo),
		tail:      -1,
		frames:    make(map[int]*frame),
		dirty:     make(map[int]*frame),
		flushing:  make(map[int]bool),
	}
	if err := s.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// replay scans the heap file sequentially (no pool involvement),
// rebuilding the index, page accounting, and free list.
func (s *Store) replay() error {
	fi, err := s.file.Stat()
	if err != nil {
		return fmt.Errorf("diskstore: stat: %w", err)
	}
	size := fi.Size()
	nPages := int(size / int64(s.pageBytes))
	if size%int64(s.pageBytes) != 0 {
		// Torn trailing page: unreadable as a whole, discard it.
		s.checksumDiscards.Add(1)
		nPages++ // account the partial page so its space is recycled
	}
	now := s.clk.Now().UnixNano()
	type recSeg struct {
		seg segment
		loc segLoc
	}
	type group struct {
		recs []recSeg
	}
	byKey := make(map[string]map[uint64]*group) // key → seq → group
	buf := make([]byte, s.pageBytes)
	for p := 0; p < nPages; p++ {
		s.pages[p] = &pageInfo{sealed: true}
		n, err := s.file.ReadAt(buf, int64(p)*int64(s.pageBytes))
		if n < len(buf) || err != nil || !verifyPage(buf) {
			s.checksumDiscards.Add(1)
			s.pages[p].free = true
			s.freeList = append(s.freeList, p)
			continue
		}
		nSlots := pageSlotCount(buf)
		if nSlots < 0 || pageHeaderLen+slotLen*nSlots > len(buf) {
			s.checksumDiscards.Add(1)
			s.pages[p].free = true
			s.freeList = append(s.freeList, p)
			continue
		}
		for i := 0; i < nSlots; i++ {
			off, length := pageSlot(buf, i)
			if off == 0 {
				continue // dead slot
			}
			seg, ok := parseSegment(buf, off, length)
			if !ok {
				continue
			}
			seg.val = append([]byte(nil), seg.val...) // buf is reused per page
			m := byKey[seg.key]
			if m == nil {
				m = make(map[uint64]*group)
				byKey[seg.key] = m
			}
			g := m[seg.hdr.seq]
			if g == nil {
				g = &group{}
				m[seg.hdr.seq] = g
			}
			g.recs = append(g.recs, recSeg{seg: seg, loc: segLoc{page: p, slot: i}})
		}
	}
	s.nextPage = nPages

	// Keep, per key, the highest-seq complete unexpired record.
	var winners []*dentry
	winnerPages := make(map[*dentry][]int)
	for key, m := range byKey {
		var best *group
		var bestSeq uint64
		for seq, g := range m {
			segs := make([]segment, len(g.recs))
			for i, r := range g.recs {
				segs[i] = r.seg
			}
			if !completeGroup(segs) {
				continue
			}
			if best == nil || seq > bestSeq {
				best, bestSeq = g, seq
			}
		}
		if best == nil {
			continue
		}
		sort.Slice(best.recs, func(i, j int) bool {
			return best.recs[i].seg.hdr.segIdx < best.recs[j].seg.hdr.segIdx
		})
		h0 := best.recs[0].seg.hdr
		if h0.deadline != 0 && h0.deadline <= now {
			s.expired.Add(1)
			continue
		}
		locs := make([]segLoc, len(best.recs))
		pagesOf := make([]int, len(best.recs))
		for i, r := range best.recs {
			locs[i] = r.loc
			pagesOf[i] = r.loc.page
		}
		d := &dentry{
			key:      key,
			segs:     locs,
			seq:      bestSeq,
			gen:      h0.gen,
			meta:     best.recs[0].seg.meta,
			deadline: h0.deadline,
			valLen:   h0.totalVal,
			charge:   int64(len(key) + len(best.recs[0].seg.meta) + h0.totalVal),
		}
		winners = append(winners, d)
		winnerPages[d] = pagesOf
		if bestSeq >= s.seq {
			s.seq = bestSeq + 1
		}
	}
	// LRU order = sequence order (older seq = colder).
	sort.Slice(winners, func(i, j int) bool { return winners[i].seq < winners[j].seq })
	for _, d := range winners {
		d.elem = s.lru.PushFront(d)
		s.index[d.key] = d
		s.bytes += d.charge
		for _, p := range winnerPages[d] {
			s.pages[p].live++
		}
		s.recovered.Add(1)
	}
	// Pages with no surviving records are recycled. Their stale bytes
	// are erased lazily: reuse rewrites the whole page.
	for p, pi := range s.pages {
		if !pi.free && pi.live == 0 {
			pi.free = true
			s.freeList = append(s.freeList, p)
		}
	}
	sort.Ints(s.freeList)
	// Enforce a (possibly shrunken) budget on the recovered set.
	if s.cfg.ByteBudget > 0 {
		var kills []segLoc
		for s.bytes > s.cfg.ByteBudget && s.lru.Len() > 0 {
			d := s.lru.Back().Value.(*dentry)
			s.removeLocked(d, &kills)
			s.evictions.Add(1)
			s.evictedBytes.Add(d.charge)
		}
		kills = s.settlePagesLocked(kills)
		// Replay holds no locks and has no readers yet: apply inline.
		s.applyKills(kills)
		s.flushDirty()
	}
	return nil
}

// completeGroup reports whether segs form indices 0..n-1 with exactly
// one final segment flagged last and value lengths summing to the total.
func completeGroup(segs []segment) bool {
	if len(segs) == 0 {
		return false
	}
	seen := make(map[int]bool, len(segs))
	total, sum, lastIdx := segs[0].hdr.totalVal, 0, -1
	for _, seg := range segs {
		if seg.hdr.totalVal != total || seen[seg.hdr.segIdx] {
			return false
		}
		seen[seg.hdr.segIdx] = true
		sum += seg.hdr.segVal
		if seg.hdr.flags&recFlagLast != 0 {
			if lastIdx >= 0 {
				return false
			}
			lastIdx = seg.hdr.segIdx
		}
	}
	if lastIdx != len(segs)-1 || sum != total {
		return false
	}
	for i := 0; i < len(segs); i++ {
		if !seen[i] {
			return false
		}
	}
	return true
}

// Put stores (or overwrites) key. It returns false when the entry can
// never fit (over budget on its own, or key/meta exceed the page
// format); refused entries count as evictions, mirroring KeyedStore.
func (s *Store) Put(key string, e Entry) bool {
	s.puts.Add(1)
	charge := int64(len(key) + len(e.Meta) + len(e.Value))
	if len(key) > 1<<16-1 || len(e.Meta) > 1<<16-1 || int64(len(e.Value)) > 1<<32-1 ||
		(s.cfg.ByteBudget > 0 && charge > s.cfg.ByteBudget) ||
		recHeaderLen+len(key)+len(e.Meta)+minSeg(len(e.Value)) > s.pageBytes-pageHeaderLen-slotLen {
		s.evictions.Add(1)
		s.evictedBytes.Add(charge)
		return false
	}
	var deadline int64
	if !e.Deadline.IsZero() {
		deadline = e.Deadline.UnixNano()
	}
	var kills []segLoc
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	if old := s.index[key]; old != nil {
		s.removeLocked(old, &kills)
	}
	for s.cfg.ByteBudget > 0 && s.bytes+charge > s.cfg.ByteBudget && s.lru.Len() > 0 {
		victim := s.lru.Back().Value.(*dentry)
		s.removeLocked(victim, &kills)
		s.evictions.Add(1)
		s.evictedBytes.Add(victim.charge)
	}
	seq := s.seq
	s.seq++
	segs := s.stageLocked(key, e, seq, deadline)
	if segs != nil {
		d := &dentry{
			key: key, segs: segs, seq: seq, gen: e.Gen, meta: e.Meta,
			deadline: deadline, valLen: len(e.Value), charge: charge,
		}
		d.elem = s.lru.PushFront(d)
		s.index[key] = d
		s.bytes += charge
	}
	kills = s.settlePagesLocked(kills)
	s.mu.Unlock()
	s.applyKills(kills)
	s.flushDirty()
	return segs != nil
}

// minSeg is the smallest value chunk a fresh page must accommodate.
func minSeg(valLen int) int {
	if valLen == 0 {
		return 0
	}
	return 1
}

// stageLocked appends the record's segments into tail pages, returning
// their locations (nil only on internal inconsistency; fit was
// pre-checked by Put).
func (s *Store) stageLocked(key string, e Entry, seq uint64, deadline int64) []segLoc {
	remaining := e.Value
	first := true
	var segs []segLoc
	for first || len(remaining) > 0 {
		if s.tail < 0 {
			s.allocTailLocked()
		}
		f := s.frames[s.tail]
		pi := s.pages[s.tail]
		nSlots := pageSlotCount(f.data)
		dirTop := pageHeaderLen + slotLen*nSlots
		overhead := recHeaderLen + len(key) + len(e.Meta)
		avail := pageDataLo(f.data) - dirTop - slotLen - overhead
		if avail < 0 || (len(remaining) > 0 && avail == 0) {
			s.sealTailLocked()
			continue
		}
		take := len(remaining)
		if take > avail {
			take = avail
		}
		segLen := overhead + take
		off := pageDataLo(f.data) - segLen
		h := recHeader{
			seq: seq, gen: e.Gen, deadline: deadline,
			keyLen: len(key), metaLen: len(e.Meta),
			segIdx: len(segs), segVal: take, totalVal: len(e.Value),
		}
		if take == len(remaining) {
			h.flags |= recFlagLast
		}
		putRecHeader(f.data[off:], h)
		p := off + recHeaderLen
		copy(f.data[p:], key)
		p += len(key)
		copy(f.data[p:], e.Meta)
		p += len(e.Meta)
		copy(f.data[p:], remaining[:take])
		setPageSlot(f.data, nSlots, off, segLen)
		setPageSlotCount(f.data, nSlots+1)
		setPageDataLo(f.data, off)
		s.markDirtyLocked(f)
		pi.live++
		segs = append(segs, segLoc{page: s.tail, slot: nSlots, pgen: pi.gen})
		remaining = remaining[take:]
		first = false
	}
	return segs
}

// Get returns the entry for key, lazily dropping it if expired.
func (s *Store) Get(key string) (Entry, bool) {
	return s.lookup(key, true)
}

// Peek returns the entry for key even when its deadline has passed;
// callers inspect Entry.Deadline (stale-while-revalidate reads).
func (s *Store) Peek(key string) (Entry, bool) {
	return s.lookup(key, false)
}

func (s *Store) lookup(key string, expire bool) (Entry, bool) {
	s.mu.Lock()
	d := s.index[key]
	if d == nil {
		s.mu.Unlock()
		s.misses.Add(1)
		return Entry{}, false
	}
	if expire && d.deadline != 0 && d.deadline <= s.clk.Now().UnixNano() {
		var kills []segLoc
		s.removeLocked(d, &kills)
		kills = s.settlePagesLocked(kills)
		s.mu.Unlock()
		s.expired.Add(1)
		s.misses.Add(1)
		s.applyKills(kills)
		s.flushDirty()
		return Entry{}, false
	}
	s.lru.MoveToFront(d.elem)
	locs := make([]segLoc, len(d.segs))
	copy(locs, d.segs)
	seq, gen, meta, deadline, valLen := d.seq, d.gen, d.meta, d.deadline, d.valLen
	s.mu.Unlock()

	val, ok := s.readRecord(key, locs, seq, valLen)
	if !ok {
		// Concurrently deleted or page recycled between unlock and
		// read: indistinguishable from a miss.
		s.misses.Add(1)
		return Entry{}, false
	}
	s.hits.Add(1)
	e := Entry{Value: val, Meta: meta, Gen: gen}
	if deadline != 0 {
		e.Deadline = time.Unix(0, deadline)
	}
	return e, true
}

// readRecord assembles the record's value from its segments via the
// buffer pool, verifying key and sequence on every segment so a stale
// location can never yield another record's bytes.
func (s *Store) readRecord(key string, locs []segLoc, seq uint64, valLen int) ([]byte, bool) {
	val := make([]byte, 0, valLen)
	for i, loc := range locs {
		f, err := s.pin(loc.page)
		if err != nil {
			return nil, false
		}
		nSlots := pageSlotCount(f.data)
		ok := loc.slot >= 0 && loc.slot < nSlots
		var seg segment
		if ok {
			off, length := pageSlot(f.data, loc.slot)
			if off == 0 {
				ok = false
			} else {
				seg, ok = parseSegment(f.data, off, length)
			}
		}
		if ok && (seg.hdr.seq != seq || seg.key != key || seg.hdr.segIdx != i) {
			ok = false
		}
		if !ok {
			s.unpin(f)
			return nil, false
		}
		val = append(val, seg.val...)
		s.unpin(f)
	}
	if len(val) != valLen {
		return nil, false
	}
	return val, true
}

// Delete removes key from the store, reporting whether it was present.
func (s *Store) Delete(key string) bool {
	s.mu.Lock()
	d := s.index[key]
	if d == nil {
		s.mu.Unlock()
		return false
	}
	var kills []segLoc
	s.removeLocked(d, &kills)
	kills = s.settlePagesLocked(kills)
	s.mu.Unlock()
	s.deletes.Add(1)
	s.applyKills(kills)
	s.flushDirty()
	return true
}

// DeleteFunc removes every key matching pred, returning the count. The
// predicate runs without store locks held (keys are snapshotted first),
// so it may be arbitrarily slow.
func (s *Store) DeleteFunc(pred func(key string) bool) int {
	s.mu.Lock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	n := 0
	for _, k := range keys {
		if pred(k) && s.Delete(k) {
			n++
		}
	}
	return n
}

// Flush empties the store and truncates the heap file.
func (s *Store) Flush() {
	s.mu.Lock()
	s.resetLocked()
	s.epoch++
	if s.truncating {
		// A concurrent Flush owns the truncate; state is already reset,
		// and its truncate covers a superset of our pages.
		s.mu.Unlock()
		return
	}
	s.truncating = true
	s.mu.Unlock()
	s.writes.Wait() // drain in-flight page write-backs
	if err := s.file.Truncate(0); err != nil {
		s.writeErrsCount.Add(1)
	}
	s.mu.Lock()
	s.truncating = false
	s.mu.Unlock()
	s.flushDirty() // anything staged while the truncate was in flight
}

func (s *Store) resetLocked() {
	s.index = make(map[string]*dentry)
	s.lru.Init()
	s.bytes = 0
	s.pages = make(map[int]*pageInfo)
	s.freeList = nil
	s.nextPage = 0
	s.tail = -1
	s.frames = make(map[int]*frame)
	s.clock.Init()
	s.hand = nil
	s.dirty = make(map[int]*frame)
	// flushing stays: in-flight write-backs still complete and clear
	// their own page flags (harmless — their pages are being dropped).
}

// Len returns the number of resident entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Bytes returns resident key+meta+value bytes.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Stats snapshots occupancy and counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Resident:   len(s.index),
		Bytes:      s.bytes,
		ByteBudget: s.cfg.ByteBudget,
		PageBytes:  s.pageBytes,
		Pages:      len(s.pages),
		FreePages:  len(s.freeList),
	}
	s.mu.Unlock()
	st.Puts = s.puts.Load()
	st.Hits = s.hits.Load()
	st.Misses = s.misses.Load()
	st.Deletes = s.deletes.Load()
	st.Expired = s.expired.Load()
	st.Evictions = s.evictions.Load()
	st.EvictedBytes = s.evictedBytes.Load()
	st.RecoveredEntries = s.recovered.Load()
	st.ChecksumDiscards = s.checksumDiscards.Load()
	st.PoolHits = s.poolHits.Load()
	st.PoolLoads = s.poolLoads.Load()
	st.PoolEvictions = s.poolEvictions.Load()
	st.WriteErrors = s.writeErrsCount.Load()
	return st
}

// Close writes back all dirty pages, syncs, and closes the heap file.
// Idempotent.
func (s *Store) Close() error {
	s.flushDirty()
	s.writes.Wait()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	if err := s.file.Sync(); err != nil {
		s.file.Close()
		return err
	}
	return s.file.Close()
}

// removeLocked unlinks d from the index, LRU, and byte ledger, and
// queues its segment slots for the copy-on-write page kills that happen
// after the latch is released.
func (s *Store) removeLocked(d *dentry, kills *[]segLoc) {
	delete(s.index, d.key)
	s.lru.Remove(d.elem)
	s.bytes -= d.charge
	for _, loc := range d.segs {
		if pi := s.pages[loc.page]; pi != nil && pi.gen == loc.pgen {
			pi.live--
			*kills = append(*kills, loc)
		}
	}
}

// settlePagesLocked frees pages whose last record just died (their
// kills need no page rewrite — the whole page is recycled and erased)
// and returns the kills that still require a slot rewrite.
func (s *Store) settlePagesLocked(kills []segLoc) []segLoc {
	if len(kills) == 0 {
		return kills
	}
	out := kills[:0]
	for _, loc := range kills {
		pi := s.pages[loc.page]
		if pi == nil || pi.gen != loc.pgen || pi.free {
			continue
		}
		if pi.live == 0 && pi.sealed {
			s.freePageLocked(loc.page, pi)
			continue
		}
		out = append(out, loc)
	}
	return out
}

// freePageLocked recycles a fully-dead sealed page: its frame is
// replaced by a fresh empty image marked dirty, so the stale on-disk
// bytes are erased by the next write-back and a clean Close can never
// resurrect deleted records.
func (s *Store) freePageLocked(page int, pi *pageInfo) {
	pi.free = true
	pi.sealed = false
	f := &frame{page: page, data: make([]byte, s.pageBytes)}
	initPage(f.data)
	s.replaceFrameLocked(page, f)
	s.markDirtyLocked(f)
	s.freeList = append(s.freeList, page)
}

// allocTailLocked makes a fresh append page current, reusing the free
// list when possible.
func (s *Store) allocTailLocked() {
	var page int
	if n := len(s.freeList); n > 0 {
		page = s.freeList[0]
		s.freeList = s.freeList[1:]
	} else {
		page = s.nextPage
		s.nextPage++
	}
	pi := s.pages[page]
	if pi == nil {
		pi = &pageInfo{}
		s.pages[page] = pi
	}
	pi.gen++
	pi.live = 0
	pi.sealed = false
	pi.free = false
	f := s.frames[page]
	if f == nil || f.loading != nil {
		f = &frame{page: page, data: make([]byte, s.pageBytes)}
		s.replaceFrameLocked(page, f)
	}
	initPage(f.data)
	s.markDirtyLocked(f)
	f.pins++ // the tail stays pinned so appends never need a reload
	s.tail = page
}

func (s *Store) sealTailLocked() {
	if s.tail < 0 {
		return
	}
	pi := s.pages[s.tail]
	pi.sealed = true
	if f := s.frames[s.tail]; f != nil {
		f.pins--
	}
	if pi.live == 0 {
		s.freePageLocked(s.tail, pi)
	}
	s.tail = -1
}
