package diskstore

import (
	"encoding/binary"
	"hash/crc32"
)

// On-disk layout. The heap file is an array of fixed-size slotted pages:
//
//	page header (24 B): magic u32 | checksum u32 | slotCount u32 | dataLo u32 | reserved 8 B
//	slot directory    : slotCount × {off u32, len u32}, growing up from the header
//	record data       : grows down from the end of the page toward the directory
//
// The checksum (CRC-32C over the whole page with the checksum field zeroed)
// is computed when a dirty page is written back, so a page is either wholly
// committed or — after a torn write or crash — wholly discarded at replay.
// Slots are never reused within a page incarnation: a deleted record's slot
// is zeroed and the space is reclaimed only when the entire page dies and
// returns through the free list.
//
// A record is stored as one or more segments, each carrying the full record
// header plus a contiguous chunk of the value; a record is valid only when
// segments 0..n are all present with the final one flagged last and the
// segment lengths summing to the declared total (append-then-commit: a
// partially written record can never be mistaken for a complete one).
//
//	record header (40 B):
//	  seq u64 | gen u64 | deadline i64 (unixnano, 0 = none)
//	  keyLen u16 | metaLen u16 | segIdx u16 | flags u16
//	  segVal u32 | totalVal u32
//	followed by key, meta, and segVal value bytes.
const (
	pageMagic     = 0x44504348 // "DPCH"
	pageHeaderLen = 24
	slotLen       = 8
	recHeaderLen  = 40

	recFlagLast = 1 << 0

	// DefaultPageBytes is the heap-file page size when Config.PageBytes
	// is zero. 32 KiB fits several typical fragments per page while
	// keeping torn-write blast radius small.
	DefaultPageBytes = 32 << 10
	// MinPageBytes and MaxPageBytes bound Config.PageBytes.
	MinPageBytes = 4 << 10
	MaxPageBytes = 1 << 20

	// DefaultPoolPages is the buffer-pool frame count when
	// Config.PoolPages is zero (64 × 32 KiB = 2 MiB resident).
	DefaultPoolPages = 64
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func initPage(buf []byte) {
	clear(buf)
	binary.LittleEndian.PutUint32(buf[0:], pageMagic)
	binary.LittleEndian.PutUint32(buf[8:], 0)                 // slotCount
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(buf))) // dataLo
}

func pageSlotCount(buf []byte) int {
	return int(binary.LittleEndian.Uint32(buf[8:]))
}

func setPageSlotCount(buf []byte, n int) {
	binary.LittleEndian.PutUint32(buf[8:], uint32(n))
}

func pageDataLo(buf []byte) int {
	return int(binary.LittleEndian.Uint32(buf[12:]))
}

func setPageDataLo(buf []byte, off int) {
	binary.LittleEndian.PutUint32(buf[12:], uint32(off))
}

func pageSlot(buf []byte, i int) (off, length int) {
	base := pageHeaderLen + slotLen*i
	return int(binary.LittleEndian.Uint32(buf[base:])),
		int(binary.LittleEndian.Uint32(buf[base+4:]))
}

func setPageSlot(buf []byte, i, off, length int) {
	base := pageHeaderLen + slotLen*i
	binary.LittleEndian.PutUint32(buf[base:], uint32(off))
	binary.LittleEndian.PutUint32(buf[base+4:], uint32(length))
}

// sealPage stamps the page checksum; called on a private snapshot
// immediately before it is written back.
func sealPage(buf []byte) {
	binary.LittleEndian.PutUint32(buf[4:], 0)
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(buf, crcTable))
}

// verifyPage checks magic and checksum. It briefly zeroes the checksum
// field in place, so the caller must own buf exclusively.
func verifyPage(buf []byte) bool {
	if len(buf) < pageHeaderLen || binary.LittleEndian.Uint32(buf[0:]) != pageMagic {
		return false
	}
	want := binary.LittleEndian.Uint32(buf[4:])
	binary.LittleEndian.PutUint32(buf[4:], 0)
	got := crc32.Checksum(buf, crcTable)
	binary.LittleEndian.PutUint32(buf[4:], want)
	return got == want
}

type recHeader struct {
	seq      uint64
	gen      uint64
	deadline int64
	keyLen   int
	metaLen  int
	segIdx   int
	flags    int
	segVal   int
	totalVal int
}

func putRecHeader(buf []byte, h recHeader) {
	binary.LittleEndian.PutUint64(buf[0:], h.seq)
	binary.LittleEndian.PutUint64(buf[8:], h.gen)
	binary.LittleEndian.PutUint64(buf[16:], uint64(h.deadline))
	binary.LittleEndian.PutUint16(buf[24:], uint16(h.keyLen))
	binary.LittleEndian.PutUint16(buf[26:], uint16(h.metaLen))
	binary.LittleEndian.PutUint16(buf[28:], uint16(h.segIdx))
	binary.LittleEndian.PutUint16(buf[30:], uint16(h.flags))
	binary.LittleEndian.PutUint32(buf[32:], uint32(h.segVal))
	binary.LittleEndian.PutUint32(buf[36:], uint32(h.totalVal))
}

func parseRecHeader(buf []byte) recHeader {
	return recHeader{
		seq:      binary.LittleEndian.Uint64(buf[0:]),
		gen:      binary.LittleEndian.Uint64(buf[8:]),
		deadline: int64(binary.LittleEndian.Uint64(buf[16:])),
		keyLen:   int(binary.LittleEndian.Uint16(buf[24:])),
		metaLen:  int(binary.LittleEndian.Uint16(buf[26:])),
		segIdx:   int(binary.LittleEndian.Uint16(buf[28:])),
		flags:    int(binary.LittleEndian.Uint16(buf[30:])),
		segVal:   int(binary.LittleEndian.Uint32(buf[32:])),
		totalVal: int(binary.LittleEndian.Uint32(buf[36:])),
	}
}

// segment is one decoded record segment, used by reads and recovery.
type segment struct {
	hdr  recHeader
	key  string
	meta string
	val  []byte // aliases the page buffer it was parsed from
}

// parseSegment decodes the record at [off, off+length) within a page
// buffer, returning false if any bound is inconsistent.
func parseSegment(buf []byte, off, length int) (segment, bool) {
	if off < pageHeaderLen || length < recHeaderLen || off+length > len(buf) {
		return segment{}, false
	}
	h := parseRecHeader(buf[off:])
	if recHeaderLen+h.keyLen+h.metaLen+h.segVal != length {
		return segment{}, false
	}
	p := off + recHeaderLen
	key := string(buf[p : p+h.keyLen])
	p += h.keyLen
	meta := string(buf[p : p+h.metaLen])
	p += h.metaLen
	return segment{hdr: h, key: key, meta: meta, val: buf[p : p+h.segVal]}, true
}
