package diskstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dpcache/internal/clock"
)

func openTemp(t *testing.T, cfg Config) *Store {
	t.Helper()
	if cfg.Path == "" {
		cfg.Path = filepath.Join(t.TempDir(), "test.heap")
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestValidate(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Fatal("empty Path accepted")
	}
	if err := (Config{Path: "x", PageBytes: 100}).Validate(); err == nil {
		t.Fatal("tiny PageBytes accepted")
	}
	if err := (Config{Path: "x", ByteBudget: -1}).Validate(); err == nil {
		t.Fatal("negative budget accepted")
	}
	if err := (Config{Path: "x", PageBytes: 8192}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestPutGetRoundtrip(t *testing.T) {
	s := openTemp(t, Config{})
	dl := time.Now().Add(time.Hour).Truncate(0)
	if !s.Put("k1", Entry{Value: []byte("hello"), Meta: "m1", Gen: 7, Deadline: dl}) {
		t.Fatal("Put refused")
	}
	e, ok := s.Get("k1")
	if !ok {
		t.Fatal("Get miss")
	}
	if string(e.Value) != "hello" || e.Meta != "m1" || e.Gen != 7 {
		t.Fatalf("roundtrip mismatch: %+v", e)
	}
	if !e.Deadline.Equal(dl) {
		t.Fatalf("deadline: got %v want %v", e.Deadline, dl)
	}
	if _, ok := s.Get("absent"); ok {
		t.Fatal("hit on absent key")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Resident != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestEmptyValueAndOverwrite(t *testing.T) {
	s := openTemp(t, Config{})
	if !s.Put("k", Entry{Value: nil, Meta: "empty"}) {
		t.Fatal("empty value refused")
	}
	e, ok := s.Get("k")
	if !ok || len(e.Value) != 0 || e.Meta != "empty" {
		t.Fatalf("empty roundtrip: %+v ok=%v", e, ok)
	}
	if !s.Put("k", Entry{Value: []byte("second"), Gen: 2}) {
		t.Fatal("overwrite refused")
	}
	e, ok = s.Get("k")
	if !ok || string(e.Value) != "second" || e.Gen != 2 {
		t.Fatalf("overwrite: %+v ok=%v", e, ok)
	}
	if s.Len() != 1 || s.Bytes() != int64(len("k")+len("second")) {
		t.Fatalf("occupancy after overwrite: len=%d bytes=%d", s.Len(), s.Bytes())
	}
}

func TestMultiPageValue(t *testing.T) {
	s := openTemp(t, Config{PageBytes: MinPageBytes})
	val := make([]byte, 3*MinPageBytes+123)
	for i := range val {
		val[i] = byte(i * 31)
	}
	if !s.Put("big", Entry{Value: val}) {
		t.Fatal("Put refused")
	}
	e, ok := s.Get("big")
	if !ok || !bytes.Equal(e.Value, val) {
		t.Fatalf("multi-page roundtrip failed (ok=%v, len=%d)", ok, len(e.Value))
	}
	if st := s.Stats(); st.Pages < 4 {
		t.Fatalf("expected >=4 pages, got %d", st.Pages)
	}
}

func TestDeleteAndPageReuse(t *testing.T) {
	s := openTemp(t, Config{PageBytes: MinPageBytes})
	val := make([]byte, MinPageBytes/2)
	for round := 0; round < 20; round++ {
		for i := 0; i < 8; i++ {
			if !s.Put(fmt.Sprintf("k%d", i), Entry{Value: val}) {
				t.Fatal("Put refused")
			}
		}
		for i := 0; i < 8; i++ {
			if !s.Delete(fmt.Sprintf("k%d", i)) {
				t.Fatal("Delete missed")
			}
		}
	}
	if s.Delete("k0") {
		t.Fatal("double delete reported true")
	}
	st := s.Stats()
	if st.Resident != 0 || st.Deletes != 160 {
		t.Fatalf("stats after churn: %+v", st)
	}
	// The free list must recycle pages: 20 rounds of 8 half-page values
	// would need ~80+ pages without reuse.
	if st.Pages > 20 {
		t.Fatalf("heap file grew without reuse: %d pages", st.Pages)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	val := make([]byte, 100)
	charge := int64(len("k0") + 100)
	s := openTemp(t, Config{ByteBudget: 3 * charge})
	s.Put("k0", Entry{Value: val})
	s.Put("k1", Entry{Value: val})
	s.Put("k2", Entry{Value: val})
	// Touch k0 so k1 is now the least recently used.
	if _, ok := s.Get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	s.Put("k3", Entry{Value: val})
	if _, ok := s.Get("k1"); ok {
		t.Fatal("k1 should have been the LRU victim")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("%s evicted out of order", k)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 || st.EvictedBytes != charge {
		t.Fatalf("eviction stats: %+v", st)
	}
}

func TestOversizedRefused(t *testing.T) {
	s := openTemp(t, Config{ByteBudget: 64})
	if s.Put("k", Entry{Value: make([]byte, 100)}) {
		t.Fatal("oversized entry admitted")
	}
	if st := s.Stats(); st.Evictions != 1 || st.Resident != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestTTLLazyExpiry(t *testing.T) {
	fc := clock.NewFake(time.Unix(1000, 0))
	s := openTemp(t, Config{Clock: fc})
	s.Put("k", Entry{Value: []byte("v"), Deadline: fc.Now().Add(time.Minute)})
	if _, ok := s.Get("k"); !ok {
		t.Fatal("fresh entry missing")
	}
	fc.Advance(2 * time.Minute)
	if _, ok := s.Get("k"); ok {
		t.Fatal("expired entry served")
	}
	if st := s.Stats(); st.Expired != 1 || st.Resident != 0 {
		t.Fatalf("stats: %+v", st)
	}
	// Peek serves past the deadline (stale-while-revalidate reads).
	s.Put("p", Entry{Value: []byte("v"), Deadline: fc.Now().Add(time.Second)})
	fc.Advance(time.Hour)
	if _, ok := s.Peek("p"); !ok {
		t.Fatal("Peek dropped stale entry")
	}
	if _, ok := s.Get("p"); ok {
		t.Fatal("Get served stale entry")
	}
}

func TestFlushEmptiesAndTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.heap")
	s := openTemp(t, Config{Path: path})
	for i := 0; i < 50; i++ {
		s.Put(fmt.Sprintf("k%d", i), Entry{Value: make([]byte, 500)})
	}
	s.Flush()
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("flush left %d entries / %d bytes", s.Len(), s.Bytes())
	}
	if _, ok := s.Get("k0"); ok {
		t.Fatal("entry survived flush")
	}
	// Post-flush writes land on a clean file.
	s.Put("after", Entry{Value: []byte("x")})
	if e, ok := s.Get("after"); !ok || string(e.Value) != "x" {
		t.Fatal("post-flush put lost")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2 := openTemp(t, Config{Path: path})
	if s2.Len() != 1 {
		t.Fatalf("reopen after flush: %d entries, want 1", s2.Len())
	}
	if _, ok := s2.Get("after"); !ok {
		t.Fatal("post-flush entry not recovered")
	}
}

func TestWarmReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "warm.heap")
	big := make([]byte, 2*DefaultPageBytes)
	for i := range big {
		big[i] = byte(i)
	}
	s := openTemp(t, Config{Path: path})
	s.Put("small", Entry{Value: []byte("sv"), Meta: "sm", Gen: 3})
	s.Put("big", Entry{Value: big, Meta: "bm"})
	s.Put("gone", Entry{Value: []byte("x")})
	s.Put("rewritten", Entry{Value: []byte("old")})
	s.Put("rewritten", Entry{Value: []byte("new")})
	s.Delete("gone")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := openTemp(t, Config{Path: path})
	st := s2.Stats()
	if st.RecoveredEntries != 3 || st.ChecksumDiscards != 0 {
		t.Fatalf("recovery stats: %+v", st)
	}
	if e, ok := s2.Get("small"); !ok || string(e.Value) != "sv" || e.Meta != "sm" || e.Gen != 3 {
		t.Fatalf("small not recovered: %+v ok=%v", e, ok)
	}
	if e, ok := s2.Get("big"); !ok || !bytes.Equal(e.Value, big) {
		t.Fatal("big not recovered intact")
	}
	if _, ok := s2.Get("gone"); ok {
		t.Fatal("deleted entry resurrected by clean reopen")
	}
	if e, ok := s2.Get("rewritten"); !ok || string(e.Value) != "new" {
		t.Fatalf("overwrite not recovered at latest version: %+v ok=%v", e, ok)
	}
}

func TestReopenExpiresTTL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ttl.heap")
	fc := clock.NewFake(time.Unix(5000, 0))
	s := openTemp(t, Config{Path: path, Clock: fc})
	s.Put("stale", Entry{Value: []byte("a"), Deadline: fc.Now().Add(time.Minute)})
	s.Put("fresh", Entry{Value: []byte("b"), Deadline: fc.Now().Add(time.Hour)})
	s.Put("forever", Entry{Value: []byte("c")})
	s.Close()

	fc.Advance(30 * time.Minute)
	s2 := openTemp(t, Config{Path: path, Clock: fc})
	if _, ok := s2.Get("stale"); ok {
		t.Fatal("expired entry recovered")
	}
	if _, ok := s2.Get("fresh"); !ok {
		t.Fatal("fresh entry lost")
	}
	// TTLs keep expiring after recovery.
	fc.Advance(time.Hour)
	if _, ok := s2.Get("fresh"); ok {
		t.Fatal("recovered entry ignored its deadline")
	}
	if _, ok := s2.Get("forever"); !ok {
		t.Fatal("no-TTL entry lost")
	}
}

func TestPoolBoundAndReload(t *testing.T) {
	// 4 frames over a file that needs dozens of pages: reads must
	// reload evicted pages and still verify.
	s := openTemp(t, Config{PageBytes: MinPageBytes, PoolPages: 4})
	val := make([]byte, MinPageBytes/2)
	const n = 40
	for i := 0; i < n; i++ {
		rand.New(rand.NewSource(int64(i))).Read(val)
		if !s.Put(fmt.Sprintf("k%d", i), Entry{Value: append([]byte(nil), val...)}) {
			t.Fatal("Put refused")
		}
	}
	for i := 0; i < n; i++ {
		rand.New(rand.NewSource(int64(i))).Read(val)
		e, ok := s.Get(fmt.Sprintf("k%d", i))
		if !ok || !bytes.Equal(e.Value, val) {
			t.Fatalf("k%d corrupted through pool churn", i)
		}
	}
	st := s.Stats()
	if st.PoolEvictions == 0 || st.PoolLoads == 0 {
		t.Fatalf("pool never cycled: %+v", st)
	}
}

func TestConcurrentChurn(t *testing.T) {
	s := openTemp(t, Config{PageBytes: MinPageBytes, ByteBudget: 256 << 10, PoolPages: 8})
	const (
		workers = 8
		ops     = 400
		keys    = 48
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				k := fmt.Sprintf("k%d", rng.Intn(keys))
				switch rng.Intn(10) {
				case 0:
					s.Delete(k)
				case 1:
					s.Flush()
				default:
					if rng.Intn(2) == 0 {
						v := make([]byte, rng.Intn(3*MinPageBytes))
						s.Put(k, Entry{Value: v, Meta: k})
					} else {
						if e, ok := s.Get(k); ok && e.Meta != k {
							t.Errorf("cross-key read: key %s got meta %s", k, e.Meta)
						}
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	// Accounting must be internally consistent at quiescence.
	s.mu.Lock()
	var sum int64
	for _, d := range s.index {
		sum += d.charge
	}
	got, n := s.bytes, len(s.index)
	s.mu.Unlock()
	if got != sum {
		t.Fatalf("byte ledger drifted: accounted %d, recomputed %d over %d entries", got, sum, n)
	}
	if budget := int64(256 << 10); got > budget {
		t.Fatalf("budget exceeded at quiescence: %d > %d", got, budget)
	}
}
