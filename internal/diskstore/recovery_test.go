package diskstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dpcache/internal/clock"
)

// entryFor derives a deterministic value for key i so recovery checks
// can verify content, not just presence.
func entryFor(i, size int) []byte {
	v := make([]byte, size)
	rand.New(rand.NewSource(int64(i) * 7919)).Read(v)
	return v
}

// TestRecoveryTornFile is the crash-drill: fill the store under
// concurrent write load, then simulate a crash-torn heap file by
// truncating it mid-page AND bit-flipping a byte inside a surviving
// page. Reopening must discard exactly the damaged pages — no panic,
// no corrupt reads — while every entry on intact pages is served with
// its bytes verified, and TTLs keep expiring after recovery.
func TestRecoveryTornFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.heap")
	fc := clock.NewFake(time.Unix(10_000, 0))
	s, err := Open(Config{Path: path, PageBytes: MinPageBytes, Clock: fc})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const n = 64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 4 {
				e := Entry{Value: entryFor(i, 1024+i*17), Meta: fmt.Sprintf("m%d", i)}
				if i%8 == 0 {
					e.Deadline = fc.Now().Add(time.Minute) // expires before reopen
				}
				if !s.Put(fmt.Sprintf("k%d", i), e) {
					t.Errorf("Put k%d refused", i)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	pages := int(fi.Size() / MinPageBytes)
	if pages < 6 {
		t.Fatalf("want a multi-page file for a meaningful tear, got %d pages", pages)
	}

	// Tear 1: truncate mid-page, leaving a partial final page.
	tornSize := fi.Size() - MinPageBytes/2
	if err := os.Truncate(path, tornSize); err != nil {
		t.Fatal(err)
	}
	// Tear 2: flip one bit inside the record area of an interior page.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	flippedPage := pages / 2
	flipOff := int64(flippedPage)*MinPageBytes + MinPageBytes/2
	one := make([]byte, 1)
	if _, err := f.ReadAt(one, flipOff); err != nil {
		t.Fatal(err)
	}
	one[0] ^= 0x40
	if _, err := f.WriteAt(one, flipOff); err != nil {
		t.Fatal(err)
	}
	f.Close()

	fc.Advance(10 * time.Minute) // the one-minute TTLs are now dead
	s2, err := Open(Config{Path: path, PageBytes: MinPageBytes, Clock: fc})
	if err != nil {
		t.Fatalf("reopen after tear: %v", err)
	}
	defer s2.Close()

	st := s2.Stats()
	// The torn tail and the bit-flipped page must both be discarded.
	if st.ChecksumDiscards < 2 {
		t.Fatalf("expected >=2 checksum discards (torn tail + bit flip), got %d", st.ChecksumDiscards)
	}
	if st.RecoveredEntries == 0 {
		t.Fatal("nothing recovered from intact pages")
	}
	if st.RecoveredEntries >= n {
		t.Fatalf("recovered %d entries; damage and TTLs should have claimed some", st.RecoveredEntries)
	}

	// Every recovered entry must serve exact bytes; entries lost to the
	// tear miss cleanly; TTL'd entries never come back.
	served := 0
	for i := 0; i < n; i++ {
		e, ok := s2.Get(fmt.Sprintf("k%d", i))
		if !ok {
			continue
		}
		if i%8 == 0 {
			t.Fatalf("k%d recovered despite expired TTL", i)
		}
		if !bytes.Equal(e.Value, entryFor(i, 1024+i*17)) || e.Meta != fmt.Sprintf("m%d", i) {
			t.Fatalf("k%d served corrupt bytes after recovery", i)
		}
		served++
	}
	if served == 0 {
		t.Fatal("no intact entries served after tear")
	}

	// The recovered store must remain fully writable, including reuse
	// of the discarded pages' space.
	for i := 0; i < 32; i++ {
		k := fmt.Sprintf("new%d", i)
		if !s2.Put(k, Entry{Value: entryFor(1000+i, 2048)}) {
			t.Fatalf("post-recovery Put %s refused", k)
		}
		if e, ok := s2.Get(k); !ok || !bytes.Equal(e.Value, entryFor(1000+i, 2048)) {
			t.Fatalf("post-recovery roundtrip %s failed", k)
		}
	}

	// And TTLs still expire going forward.
	s2.Put("ttl", Entry{Value: []byte("x"), Deadline: fc.Now().Add(time.Second)})
	fc.Advance(time.Hour)
	if _, ok := s2.Get("ttl"); ok {
		t.Fatal("TTL ignored after recovery")
	}
}

// TestRecoveryAllPagesCorrupt drives the degenerate case: every page
// damaged. The store must open empty and be usable.
func TestRecoveryAllPagesCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dead.heap")
	s, err := Open(Config{Path: path, PageBytes: MinPageBytes})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		s.Put(fmt.Sprintf("k%d", i), Entry{Value: entryFor(i, 900)})
	}
	s.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 16; off < len(raw); off += MinPageBytes {
		raw[off] ^= 0xFF
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Config{Path: path, PageBytes: MinPageBytes})
	if err != nil {
		t.Fatalf("reopen over fully-corrupt file: %v", err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.RecoveredEntries != 0 || st.Resident != 0 {
		t.Fatalf("recovered entries from corrupt pages: %+v", st)
	}
	if st.ChecksumDiscards == 0 {
		t.Fatal("no discards counted")
	}
	if !s2.Put("fresh", Entry{Value: []byte("v")}) {
		t.Fatal("store unusable after total corruption")
	}
	if e, ok := s2.Get("fresh"); !ok || string(e.Value) != "v" {
		t.Fatal("post-corruption put lost")
	}
}
