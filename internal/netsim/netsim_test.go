package netsim

import (
	"bytes"
	"io"
	"net"
	"testing"
)

// pipePair connects a client to a metered loopback listener and returns
// both ends.
func pipePair(t *testing.T, m *Meter) (client net.Conn, server net.Conn) {
	t.Helper()
	l, err := ListenLoopback(m)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	done := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		done <- c
	}()
	client, err = net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	server = <-done
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestMeterCountsBothDirections(t *testing.T) {
	m := NewMeter(0)
	client, server := pipePair(t, m)

	msg := []byte("hello origin")
	if _, err := client.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	reply := bytes.Repeat([]byte("x"), 3000)
	if _, err := server.Write(reply); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(reply))
	if _, err := io.ReadFull(client, got); err != nil {
		t.Fatal(err)
	}

	if m.BytesIn() != int64(len(msg)) {
		t.Fatalf("BytesIn = %d, want %d", m.BytesIn(), len(msg))
	}
	if m.BytesOut() != int64(len(reply)) {
		t.Fatalf("BytesOut = %d, want %d", m.BytesOut(), len(reply))
	}
	if m.Conns() != 1 {
		t.Fatalf("Conns = %d, want 1", m.Conns())
	}
	if m.Bytes() != int64(len(msg)+len(reply)) {
		t.Fatalf("Bytes = %d", m.Bytes())
	}
}

func TestPacketSegmentation(t *testing.T) {
	m := NewMeter(1000)
	client, server := pipePair(t, m)

	// 2500 bytes written by the server = 3 segments at MSS 1000 (the
	// reader side may see different chunking; we assert on the writer).
	payload := bytes.Repeat([]byte("y"), 2500)
	go func() {
		_, _ = server.Write(payload)
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(client, got); err != nil {
		t.Fatal(err)
	}
	if m.PacketsOut() != 3 {
		t.Fatalf("PacketsOut = %d, want 3", m.PacketsOut())
	}
}

func TestSegmentsMath(t *testing.T) {
	m := NewMeter(1460)
	cases := []struct {
		n    int64
		want int64
	}{{0, 0}, {1, 1}, {1460, 1}, {1461, 2}, {2920, 2}, {5000, 4}}
	for _, c := range cases {
		if got := m.segments(c.n); got != c.want {
			t.Errorf("segments(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestWireBytesModel(t *testing.T) {
	m := NewMeter(1460)
	m.onWrite(1460 * 4) // 4 data packets out
	m.onRead(100)       // 1 data packet in
	m.conns.Add(1)
	o := OverheadModel{HeaderBytes: 40, AckEvery: 2, ConnSetupPackets: 7}
	// data=5940, packets=5, acks=2, setup=7 → headers 40*(5+2+7)=560.
	if got, want := o.WireBytes(m), int64(5940+560); got != want {
		t.Fatalf("WireBytes = %d, want %d", got, want)
	}
}

func TestWireBytesNoAcks(t *testing.T) {
	m := NewMeter(1460)
	m.onWrite(100)
	o := OverheadModel{HeaderBytes: 40}
	if got := o.WireBytes(m); got != 140 {
		t.Fatalf("WireBytes = %d, want 140", got)
	}
}

func TestWireExceedsAppBytes(t *testing.T) {
	m := NewMeter(0)
	m.onWrite(999)
	if DefaultOverhead().WireBytes(m) <= m.Bytes() {
		t.Fatal("wire bytes should exceed app bytes")
	}
}

func TestReset(t *testing.T) {
	m := NewMeter(0)
	m.onWrite(10)
	m.onRead(10)
	m.conns.Add(1)
	m.Reset()
	if m.Bytes() != 0 || m.Conns() != 0 || m.PacketsIn() != 0 || m.PacketsOut() != 0 {
		t.Fatal("Reset left residue")
	}
}

func TestSmallerResponsesPayProportionallyMoreOverhead(t *testing.T) {
	// The root cause of the analytical/experimental gaps in the paper:
	// header overhead is constant per packet, so the overhead *ratio*
	// shrinks as responses grow.
	small := NewMeter(1460)
	small.onWrite(100)
	small.conns.Add(1)
	large := NewMeter(1460)
	large.onWrite(10000)
	large.conns.Add(1)
	o := DefaultOverhead()
	ratioSmall := float64(o.WireBytes(small)) / float64(small.Bytes())
	ratioLarge := float64(o.WireBytes(large)) / float64(large.Bytes())
	if ratioSmall <= ratioLarge {
		t.Fatalf("overhead ratio small=%v large=%v; small responses must pay more", ratioSmall, ratioLarge)
	}
}
