// Package netsim measures the bytes a link actually carries — the stand-in
// for the Sniffer network monitor the paper uses in Section 6.
//
// A Meter-wrapped listener counts application bytes flowing in each
// direction. On top of the raw counts, an OverheadModel estimates what a
// wire capture would add: TCP/IP headers per data packet, pure ACKs, and
// connection handshake/teardown packets. The paper's experimental curves
// differ from its analytical ones exactly because the Sniffer sees this
// overhead while the model of Section 5 does not; reproducing the gap
// (Figures 3(b), 5, 6) requires reproducing the overhead.
package netsim

import (
	"net"
	"sync/atomic"
)

// Meter accumulates traffic statistics for one measured link. All fields
// are updated atomically; read them with the accessor methods.
type Meter struct {
	bytesIn    atomic.Int64 // application bytes read from peers
	bytesOut   atomic.Int64 // application bytes written to peers
	packetsIn  atomic.Int64 // modeled data packets carrying bytesIn
	packetsOut atomic.Int64 // modeled data packets carrying bytesOut
	conns      atomic.Int64 // accepted connections

	mss int64
}

// NewMeter returns a meter using the given maximum segment size for packet
// accounting (0 selects the Ethernet-typical 1460).
func NewMeter(mss int) *Meter {
	if mss <= 0 {
		mss = 1460
	}
	return &Meter{mss: int64(mss)}
}

// BytesIn returns application bytes received.
func (m *Meter) BytesIn() int64 { return m.bytesIn.Load() }

// BytesOut returns application bytes sent.
func (m *Meter) BytesOut() int64 { return m.bytesOut.Load() }

// Bytes returns total application bytes in both directions.
func (m *Meter) Bytes() int64 { return m.BytesIn() + m.BytesOut() }

// PacketsIn returns modeled inbound data packets.
func (m *Meter) PacketsIn() int64 { return m.packetsIn.Load() }

// PacketsOut returns modeled outbound data packets.
func (m *Meter) PacketsOut() int64 { return m.packetsOut.Load() }

// Conns returns the number of connections accepted.
func (m *Meter) Conns() int64 { return m.conns.Load() }

// Reset zeroes all counters (between experiment phases).
func (m *Meter) Reset() {
	m.bytesIn.Store(0)
	m.bytesOut.Store(0)
	m.packetsIn.Store(0)
	m.packetsOut.Store(0)
	m.conns.Store(0)
}

func (m *Meter) segments(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return (n + m.mss - 1) / m.mss
}

func (m *Meter) onRead(n int) {
	m.bytesIn.Add(int64(n))
	m.packetsIn.Add(m.segments(int64(n)))
}

func (m *Meter) onWrite(n int) {
	m.bytesOut.Add(int64(n))
	m.packetsOut.Add(m.segments(int64(n)))
}

// Listener wraps l so every accepted connection feeds the meter.
func Listener(l net.Listener, m *Meter) net.Listener {
	return &meteredListener{Listener: l, m: m}
}

type meteredListener struct {
	net.Listener
	m *Meter
}

func (l *meteredListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.m.conns.Add(1)
	return &meteredConn{Conn: c, m: l.m}, nil
}

type meteredConn struct {
	net.Conn
	m *Meter
}

func (c *meteredConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.m.onRead(n)
	}
	return n, err
}

func (c *meteredConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.m.onWrite(n)
	}
	return n, err
}

// OverheadModel converts a Meter's application-level counts into an
// estimate of wire bytes, the quantity a packet capture reports.
type OverheadModel struct {
	// HeaderBytes is the TCP+IP header cost charged per packet (40 for
	// IPv4 without options).
	HeaderBytes int64
	// AckEvery models one pure-ACK packet per this many data packets.
	// Zero disables ACK accounting.
	AckEvery int64
	// ConnSetupPackets is the handshake+teardown packet count charged
	// per connection (3-way handshake plus 4-segment close = 7).
	ConnSetupPackets int64
}

// DefaultOverhead is the model used by the experiments: 40-byte headers,
// an ACK per two data segments, seven setup/teardown packets.
func DefaultOverhead() OverheadModel {
	return OverheadModel{HeaderBytes: 40, AckEvery: 2, ConnSetupPackets: 7}
}

// WireBytes estimates total on-the-wire bytes for the meter's traffic.
func (o OverheadModel) WireBytes(m *Meter) int64 {
	data := m.Bytes()
	packets := m.PacketsIn() + m.PacketsOut()
	acks := int64(0)
	if o.AckEvery > 0 {
		acks = packets / o.AckEvery
	}
	packets += acks + o.ConnSetupPackets*m.Conns()
	return data + o.HeaderBytes*packets
}

// WireBytesOut estimates wire bytes in the origin→proxy direction only:
// the paper's "outbound bytes served" B, as a Sniffer would report it.
// Inbound ACKs acknowledging outbound data and the connection setup share
// are charged here because the paper's bandwidth numbers are per-link, not
// per-direction-of-header.
func (o OverheadModel) WireBytesOut(m *Meter) int64 {
	data := m.BytesOut()
	packets := m.PacketsOut()
	acks := int64(0)
	if o.AckEvery > 0 {
		acks = packets / o.AckEvery
	}
	packets += acks + o.ConnSetupPackets*m.Conns()
	return data + o.HeaderBytes*packets
}

// ListenLoopback opens a TCP listener on an ephemeral loopback port and
// wraps it with the meter. It is the standard way experiments stand up the
// measured origin↔DPC link.
func ListenLoopback(m *Meter) (net.Listener, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return Listener(l, m), nil
}
