package analytical

import (
	"math"
	"testing"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBaselineMatchesTable2(t *testing.T) {
	p := Baseline()
	if p.HitRatio != 0.8 || p.FragmentBytes != 1024 || p.FragmentsPerPage != 4 ||
		p.Pages != 10 || p.HeaderBytes != 500 || p.TagBytes != 10 ||
		p.Cacheability != 0.6 || p.Requests != 1e6 {
		t.Fatalf("baseline drifted from Table 2: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	bad := []Params{
		func() Params { p := Baseline(); p.HitRatio = 1.2; return p }(),
		func() Params { p := Baseline(); p.Cacheability = -0.1; return p }(),
		func() Params { p := Baseline(); p.FragmentsPerPage = 0; return p }(),
		func() Params { p := Baseline(); p.Pages = 0; return p }(),
		func() Params { p := Baseline(); p.FragmentBytes = -1; return p }(),
		func() Params { p := Baseline(); p.Requests = -5; return p }(),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: bad params validated: %+v", i, p)
		}
	}
}

// Hand-computed S_NC and S_C at the Table 2 baseline.
func TestResponseSizesAtBaseline(t *testing.T) {
	p := Baseline()
	if got := p.ResponseSizeNoCache(); got != 4*1024+500 {
		t.Fatalf("S_NC = %v, want 4596", got)
	}
	// per cacheable fragment: 0.8·10 + 0.2·(1024+20) = 8 + 208.8 = 216.8
	// per fragment: 0.6·216.8 + 0.4·1024 = 130.08 + 409.6 = 539.68
	// page: 4·539.68 + 500 = 2658.72
	if got := p.ResponseSizeCached(); !almost(got, 2658.72, 0.01) {
		t.Fatalf("S_C = %v, want 2658.72", got)
	}
	if got := p.Ratio(); !almost(got, 2658.72/4596, 1e-9) {
		t.Fatalf("ratio = %v", got)
	}
}

// Figure 2(a) shape: ratio > 1 as fragment size → 0 (tags cost more than
// they save), steep drop below ~1KB, monotonically decreasing, approaching
// the asymptote 1 − c·h·(s/(s)) … numerically ≈ c·(1−h) + (1−c) = 0.52.
func TestFig2aShape(t *testing.T) {
	p := Baseline()
	pts := SweepFragmentSize(p, 0, 5120, 64)
	if pts[0].Y <= 1 {
		t.Fatalf("ratio at tiny fragments = %v, want > 1 (tag overhead dominates)", pts[0].Y)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y >= pts[i-1].Y {
			t.Fatalf("ratio not strictly decreasing at s=%v: %v then %v", pts[i].X, pts[i-1].Y, pts[i].Y)
		}
	}
	last := pts[len(pts)-1].Y
	asymptote := p.Cacheability*(1-p.HitRatio) + (1 - p.Cacheability)
	if !almost(last, asymptote, 0.03) {
		t.Fatalf("ratio at 5KB = %v, want near asymptote %v", last, asymptote)
	}
}

// Figure 2(b) shape: negative savings at h=0, break-even at small h
// (paper: ≈1%; exact value 2g/(s+g) ≈ 1.9% at Table 2 settings), then
// monotone increase to the h=1 maximum.
func TestFig2bShape(t *testing.T) {
	p := Baseline()
	pts := SweepHitRatio(p, 0, 1, 0.01)
	if pts[0].Y >= 0 {
		t.Fatalf("savings at h=0 = %v, want negative", pts[0].Y)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y <= pts[i-1].Y {
			t.Fatalf("savings not increasing at h=%v", pts[i].X)
		}
	}
	be := p.BreakEvenHitRatio()
	if !almost(be, 2*10/(1024.0+10), 1e-9) {
		t.Fatalf("break-even h = %v", be)
	}
	if be > 0.05 {
		t.Fatalf("break-even h = %v, paper reports ~1%%", be)
	}
	// Verify the crossing is where the formula says.
	q := p
	q.HitRatio = be
	if !almost(q.SavingsPercent(), 0, 1e-6) {
		t.Fatalf("savings at break-even = %v, want 0", q.SavingsPercent())
	}
}

// Figure 3(a) shape: network savings positive over the whole 20–100%
// cacheability range (paper: "always decrease the bytes served"), >70% at
// full cacheability; firewall savings negative at low cacheability and
// crossing zero somewhere in the middle of the range.
func TestFig3aShape(t *testing.T) {
	p := Baseline()
	network, firewall := SweepCacheability(p, 0.2, 1.0, 0.05)
	for _, pt := range network {
		if pt.Y <= 0 {
			t.Fatalf("network savings at c=%v%% = %v, want positive", pt.X, pt.Y)
		}
	}
	if last := network[len(network)-1].Y; last < 70 {
		t.Fatalf("network savings at c=100%% = %v, want > 70 (paper's >70%% claim)", last)
	}
	if firewall[0].Y >= 0 {
		t.Fatalf("firewall savings at c=20%% = %v, want negative", firewall[0].Y)
	}
	if firewall[len(firewall)-1].Y <= 0 {
		t.Fatalf("firewall savings at c=100%% = %v, want positive", firewall[len(firewall)-1].Y)
	}
	// Find the crossover; Result 1 says it is where B_NC = 2·B_C.
	crossed := false
	for i := 1; i < len(firewall); i++ {
		if firewall[i-1].Y < 0 && firewall[i].Y >= 0 {
			crossed = true
			c := firewall[i].X / 100
			q := p
			q.Cacheability = c
			if q.BytesNoCache() < 2*q.BytesCached()*0.95 {
				t.Fatalf("crossover at c=%v does not satisfy Result 1", c)
			}
		}
	}
	if !crossed {
		t.Fatal("firewall savings never crossed zero")
	}
}

func TestResult1ConsistentWithScanCosts(t *testing.T) {
	for _, c := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		p := Baseline()
		p.Cacheability = c
		y := 3.0 // arbitrary per-byte cost; Result 1 must hold for any y
		prefer := p.ScanCostCached(y) < p.ScanCostNoCache(y)
		if prefer != p.PreferCache() {
			t.Fatalf("c=%v: PreferCache()=%v but scan costs say %v", c, p.PreferCache(), prefer)
		}
	}
}

func TestScanCostsScaleLinearlyInY(t *testing.T) {
	p := Baseline()
	if !almost(p.ScanCostNoCache(2), 2*p.ScanCostNoCache(1), 1e-6) {
		t.Fatal("ScanCostNoCache not linear in y")
	}
	if !almost(p.ScanCostCached(2), 2*p.ScanCostCached(1), 1e-6) {
		t.Fatal("ScanCostCached not linear in y")
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(10, 1)
	var sum float64
	for i, v := range w {
		sum += v
		if i > 0 && v >= w[i-1] {
			t.Fatalf("weights not decreasing at rank %d", i+1)
		}
	}
	if !almost(sum, 1, 1e-9) {
		t.Fatalf("weights sum to %v", sum)
	}
	// α=1 over 10 pages: P(1) = 1/H_10 ≈ 0.3414.
	if !almost(w[0], 0.34141715, 1e-6) {
		t.Fatalf("P(1) = %v", w[0])
	}
}

func TestZipfUniformWhenAlphaZero(t *testing.T) {
	w := ZipfWeights(4, 0)
	for _, v := range w {
		if !almost(v, 0.25, 1e-9) {
			t.Fatalf("α=0 weights = %v", w)
		}
	}
}

func TestCacheableStripeFractions(t *testing.T) {
	for _, c := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
		n := 0
		const total = 200 // multiple of 20
		for j := 0; j < total; j++ {
			if CacheableStripe(j, c) {
				n++
			}
		}
		if got := float64(n) / total; !almost(got, c, 1e-9) {
			t.Fatalf("stripe fraction at c=%v is %v", c, got)
		}
	}
}

// Under uniform page access (α=0) the explicit Model — whose 0/1
// cacheable assignment is a concrete instantiation of the closed form's
// fractional expectation — must agree with Params exactly, because the
// per-page response size is linear in the count of cacheable fragments and
// the stripe makes the global count exact.
func TestModelMatchesParamsUnderUniformAccess(t *testing.T) {
	p := Baseline()
	p.ZipfExponent = 0
	m := FromParams(p)
	if got, want := m.Ratio(), p.Ratio(); !almost(got, want, 1e-9) {
		t.Fatalf("model ratio %v != params ratio %v", got, want)
	}
	if got, want := m.ExpectedBytes(false, p.Requests), p.BytesNoCache(); !almost(got, want, 1) {
		t.Fatalf("model B_NC %v != params %v", got, want)
	}
	if got, want := m.ExpectedBytes(true, p.Requests), p.BytesCached(); !almost(got, want, 1) {
		t.Fatalf("model B_C %v != params %v", got, want)
	}
}

// Under Zipf access the concrete assignment interacts with popularity: the
// ratio may deviate from the closed form, but must stay within the
// physically possible band (all-cacheable page vs no-cacheable page).
func TestModelZipfStaysInBand(t *testing.T) {
	p := Baseline()
	m := FromParams(p)
	lo := func() float64 { q := p; q.Cacheability = 1; return q.Ratio() }()
	hi := func() float64 { q := p; q.Cacheability = 0; return q.Ratio() }()
	r := m.Ratio()
	if r < lo-1e-9 || r > hi+1e-9 {
		t.Fatalf("Zipf model ratio %v outside band [%v, %v]", r, lo, hi)
	}
}

// Heterogeneous model: popular pages dominate B under Zipf.
func TestModelZipfWeighting(t *testing.T) {
	m := Model{
		FragmentBytes: []float64{1000, 10},
		Cacheable:     []bool{false, false},
		Pages:         [][]int{{0}, {1}},
		AccessProb:    []float64{0.9, 0.1},
		HeaderBytes:   0,
	}
	if got := m.ExpectedBytes(false, 1); !almost(got, 0.9*1000+0.1*10, 1e-9) {
		t.Fatalf("B = %v", got)
	}
}

func TestBreakEvenEdgeCases(t *testing.T) {
	p := Baseline()
	p.Cacheability = 0
	if !math.IsNaN(p.BreakEvenHitRatio()) {
		t.Fatal("break-even defined with zero cacheability")
	}
}

// Paper headline: at the baseline operating point with full cacheability,
// savings exceed 70%.
func TestHeadlineSavingsClaim(t *testing.T) {
	p := Baseline()
	p.Cacheability = 1.0
	if s := p.SavingsPercent(); s < 70 {
		t.Fatalf("savings at full cacheability = %v%%, paper claims > 70%%", s)
	}
}
