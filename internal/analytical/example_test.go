package analytical_test

import (
	"fmt"

	"dpcache/internal/analytical"
)

// Evaluate the Section 5 model at the Table 2 baseline.
func Example() {
	p := analytical.Baseline()
	fmt.Printf("S_NC = %.0f bytes\n", p.ResponseSizeNoCache())
	fmt.Printf("S_C  = %.2f bytes\n", p.ResponseSizeCached())
	fmt.Printf("savings = %.1f%%\n", p.SavingsPercent())
	fmt.Printf("prefer DPC on scan cost (Result 1): %v\n", p.PreferCache())

	p.Cacheability = 1.0
	fmt.Printf("savings at full cacheability = %.1f%%\n", p.SavingsPercent())
	// Output:
	// S_NC = 4596 bytes
	// S_C  = 2658.72 bytes
	// savings = 42.2%
	// prefer DPC on scan cost (Result 1): false
	// savings at full cacheability = 70.3%
}
