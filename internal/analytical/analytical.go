// Package analytical implements the closed-form bandwidth model of the
// paper's Section 5.
//
// The model compares the expected bytes served by the origin over an
// observation window in two configurations:
//
//	no cache:  S_NC(c_i) = Σ_{e_j ∈ c_i} s_{e_j} + f
//	DPC:       S_C(c_i)  = Σ_{e_j ∈ c_i} [ X_j·(h·g + (1−h)·(s_{e_j}+2g)) + (1−X_j)·s_{e_j} ] + f
//
// where h is the hit ratio, g the tag size, f the header size, and X_j the
// design-time cacheability indicator. Total bytes B = Σ_i S(c_i)·n_i(t)
// with page popularity n_i(t) Zipfian (the paper cites [2, 12]).
//
// The scan-cost comparison (Result 1) charges the firewall y per byte in
// both configurations and the DPC an additional z ≈ y per byte in the
// cached configuration, giving scanCost_NC = B_NC·y versus
// scanCost_C = B_C·2y — so the DPC wins on total scan cost exactly when
// B_NC > 2·B_C.
package analytical

import (
	"fmt"
	"math"
)

// Params mirrors Table 2 of the paper (baseline parameter settings).
type Params struct {
	// HitRatio is h, the fraction of cacheable-fragment lookups served
	// from cache.
	HitRatio float64
	// FragmentBytes is s_e, the average fragment size in bytes.
	FragmentBytes float64
	// FragmentsPerPage is the number of fragments composing each page.
	FragmentsPerPage int
	// Pages is the number of distinct pages |C|.
	Pages int
	// HeaderBytes is f, per-response header information.
	HeaderBytes float64
	// TagBytes is g, the average template tag size.
	TagBytes float64
	// Cacheability is the fraction of fragments that are cacheable
	// (E[X_j]).
	Cacheability float64
	// Requests is R, the number of requests in the observation window.
	Requests float64
	// ZipfExponent shapes page popularity P(i) ∝ 1/i^α. It does not
	// change the byte totals when all pages have equal composition (the
	// baseline), but the general Model below uses it.
	ZipfExponent float64
}

// Baseline returns Table 2's settings: h=0.8, s_e=1KB, 4 fragments/page,
// 10 pages, f=500B, g=10B, cacheability 0.6, R=1M, Zipf α=1.
func Baseline() Params {
	return Params{
		HitRatio:         0.8,
		FragmentBytes:    1024,
		FragmentsPerPage: 4,
		Pages:            10,
		HeaderBytes:      500,
		TagBytes:         10,
		Cacheability:     0.6,
		Requests:         1e6,
		ZipfExponent:     1,
	}
}

// Validate reports obviously nonsensical parameters.
func (p Params) Validate() error {
	switch {
	case p.HitRatio < 0 || p.HitRatio > 1:
		return fmt.Errorf("analytical: hit ratio %v outside [0,1]", p.HitRatio)
	case p.Cacheability < 0 || p.Cacheability > 1:
		return fmt.Errorf("analytical: cacheability %v outside [0,1]", p.Cacheability)
	case p.FragmentsPerPage <= 0:
		return fmt.Errorf("analytical: fragments per page must be positive")
	case p.Pages <= 0:
		return fmt.Errorf("analytical: pages must be positive")
	case p.FragmentBytes < 0 || p.HeaderBytes < 0 || p.TagBytes < 0:
		return fmt.Errorf("analytical: negative sizes")
	case p.Requests < 0:
		return fmt.Errorf("analytical: negative request count")
	}
	return nil
}

// ResponseSizeNoCache returns S_NC for one page: all fragments plus the
// header.
func (p Params) ResponseSizeNoCache() float64 {
	return float64(p.FragmentsPerPage)*p.FragmentBytes + p.HeaderBytes
}

// ResponseSizeCached returns S_C for one page: each cacheable fragment
// costs a GET tag on a hit (h·g) or its content bracketed in SET tags on a
// miss ((1−h)·(s_e+2g)); non-cacheable fragments always ship whole.
func (p Params) ResponseSizeCached() float64 {
	perCacheable := p.HitRatio*p.TagBytes + (1-p.HitRatio)*(p.FragmentBytes+2*p.TagBytes)
	perFragment := p.Cacheability*perCacheable + (1-p.Cacheability)*p.FragmentBytes
	return float64(p.FragmentsPerPage)*perFragment + p.HeaderBytes
}

// BytesNoCache returns B_NC over the window.
func (p Params) BytesNoCache() float64 { return p.ResponseSizeNoCache() * p.Requests }

// BytesCached returns B_C over the window.
func (p Params) BytesCached() float64 { return p.ResponseSizeCached() * p.Requests }

// Ratio returns B_C/B_NC, the y-axis of Figures 2(a) and 3(b).
func (p Params) Ratio() float64 {
	return p.ResponseSizeCached() / p.ResponseSizeNoCache()
}

// SavingsPercent returns (1 − B_C/B_NC)·100, the y-axis of Figures 2(b)
// and 5. Negative values mean the tags cost more than caching saves.
func (p Params) SavingsPercent() float64 { return (1 - p.Ratio()) * 100 }

// ScanCostNoCache returns B_NC·y: only the firewall scans.
func (p Params) ScanCostNoCache(y float64) float64 { return p.BytesNoCache() * y }

// ScanCostCached returns B_C·2y: firewall plus DPC tag scan, with z ≈ y
// per the paper's KMP linearity argument.
func (p Params) ScanCostCached(y float64) float64 { return p.BytesCached() * 2 * y }

// FirewallSavingsPercent returns the scan-cost savings
// (1 − 2·B_C/B_NC)·100, the lower curve of Figure 3(a).
func (p Params) FirewallSavingsPercent() float64 { return (1 - 2*p.Ratio()) * 100 }

// PreferCache implements Result 1: the DPC wins on scan cost iff
// B_NC > 2·B_C.
func (p Params) PreferCache() bool { return p.BytesNoCache() > 2*p.BytesCached() }

// BreakEvenHitRatio returns the h at which B_C = B_NC (the zero crossing
// of Figure 2(b)), or NaN when no crossing exists in [0,1].
func (p Params) BreakEvenHitRatio() float64 {
	// Solve c·(h·g + (1−h)(s+2g)) + (1−c)·s = s for h:
	// h = 2g / (s + 2g − g) = 2g / (s + g)   … independent of c (c>0).
	if p.Cacheability == 0 || p.FragmentBytes+p.TagBytes == 0 {
		return math.NaN()
	}
	h := 2 * p.TagBytes / (p.FragmentBytes + p.TagBytes)
	if h < 0 || h > 1 {
		return math.NaN()
	}
	return h
}

// Point is one sample of a sweep.
type Point struct{ X, Y float64 }

// SweepFragmentSize reproduces Figure 2(a): B_C/B_NC as s_e varies over
// [from, to] in the given step (bytes).
func SweepFragmentSize(p Params, from, to, step float64) []Point {
	var out []Point
	for s := from; s <= to+1e-9; s += step {
		q := p
		q.FragmentBytes = s
		out = append(out, Point{X: s, Y: q.Ratio()})
	}
	return out
}

// SweepHitRatio reproduces Figure 2(b): savings percent as h varies.
func SweepHitRatio(p Params, from, to, step float64) []Point {
	var out []Point
	for h := from; h <= to+1e-9; h += step {
		q := p
		q.HitRatio = h
		out = append(out, Point{X: h, Y: q.SavingsPercent()})
	}
	return out
}

// SweepCacheability reproduces Figure 3(a): network savings and firewall
// (scan-cost) savings as the cacheability factor varies.
func SweepCacheability(p Params, from, to, step float64) (network, firewall []Point) {
	for c := from; c <= to+1e-9; c += step {
		q := p
		q.Cacheability = c
		network = append(network, Point{X: c * 100, Y: q.SavingsPercent()})
		firewall = append(firewall, Point{X: c * 100, Y: q.FirewallSavingsPercent()})
	}
	return network, firewall
}

// ZipfWeights returns the normalized page access probabilities P(i) for n
// pages with exponent alpha (rank 1 is most popular).
func ZipfWeights(n int, alpha float64) []float64 {
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), alpha)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// Model is the general form of the Section 5 analysis: explicit pages over
// a shared fragment pool with a many-to-many mapping, heterogeneous
// fragment sizes, and Zipfian page popularity. The uniform Params collapse
// to this with identical pages.
type Model struct {
	// FragmentBytes[j] is s_{e_j}.
	FragmentBytes []float64
	// Cacheable[j] is X_j.
	Cacheable []bool
	// Pages[i] lists fragment indices composing page c_i.
	Pages [][]int
	// AccessProb[i] is P(i); must sum to 1.
	AccessProb []float64
	// HeaderBytes, TagBytes, HitRatio as in Params.
	HeaderBytes float64
	TagBytes    float64
	HitRatio    float64
}

// FromParams expands uniform parameters into an explicit Model with
// Zipfian access probabilities and disjoint per-page fragment sets.
func FromParams(p Params) Model {
	m := Model{
		HeaderBytes: p.HeaderBytes,
		TagBytes:    p.TagBytes,
		HitRatio:    p.HitRatio,
		AccessProb:  ZipfWeights(p.Pages, p.ZipfExponent),
	}
	total := p.Pages * p.FragmentsPerPage
	m.FragmentBytes = make([]float64, total)
	m.Cacheable = make([]bool, total)
	for j := 0; j < total; j++ {
		m.FragmentBytes[j] = p.FragmentBytes
		// Deterministic striping yields exactly the requested fraction
		// when Cacheability is a multiple of 1/FragmentsPerPage-denominator;
		// the site package uses the same rule so model and measurement
		// agree. See site.Cacheable.
		m.Cacheable[j] = CacheableStripe(j, p.Cacheability)
	}
	m.Pages = make([][]int, p.Pages)
	for i := 0; i < p.Pages; i++ {
		for k := 0; k < p.FragmentsPerPage; k++ {
			m.Pages[i] = append(m.Pages[i], i*p.FragmentsPerPage+k)
		}
	}
	return m
}

// CacheableStripe deterministically marks fragment j cacheable so that the
// cacheable fraction over any run of 20 consecutive fragments equals c
// exactly (for c a multiple of 0.05). Both the analytical model and the
// synthetic site use this rule, keeping the two in exact agreement even
// for small fragment pools.
func CacheableStripe(j int, c float64) bool {
	return c >= 1 || float64(j%20) < c*20-1e-9
}

// PageSizeNoCache returns S_NC for page i.
func (m Model) PageSizeNoCache(i int) float64 {
	s := m.HeaderBytes
	for _, j := range m.Pages[i] {
		s += m.FragmentBytes[j]
	}
	return s
}

// PageSizeCached returns expected S_C for page i.
func (m Model) PageSizeCached(i int) float64 {
	s := m.HeaderBytes
	for _, j := range m.Pages[i] {
		if m.Cacheable[j] {
			s += m.HitRatio*m.TagBytes + (1-m.HitRatio)*(m.FragmentBytes[j]+2*m.TagBytes)
		} else {
			s += m.FragmentBytes[j]
		}
	}
	return s
}

// ExpectedBytes returns B over the window for either configuration.
func (m Model) ExpectedBytes(cached bool, requests float64) float64 {
	var b float64
	for i := range m.Pages {
		var s float64
		if cached {
			s = m.PageSizeCached(i)
		} else {
			s = m.PageSizeNoCache(i)
		}
		b += s * m.AccessProb[i] * requests
	}
	return b
}

// Ratio returns B_C/B_NC for the explicit model.
func (m Model) Ratio() float64 {
	return m.ExpectedBytes(true, 1) / m.ExpectedBytes(false, 1)
}
