// Package kmp implements Knuth–Morris–Pratt string matching.
//
// The paper (Section 5) models both the site firewall and the Dynamic Proxy
// Cache as linear-time byte scanners and cites KMP [18] as the canonical
// such algorithm; this package is the shared scanning substrate for the
// firewall signature scanner and for the template-tag scanner in the DPC
// assembler. The Stream matcher is the piece the DPC actually needs: origin
// responses arrive in arbitrary chunks, and a tag may straddle a chunk
// boundary.
package kmp

// Matcher is a compiled pattern.
type Matcher struct {
	pattern []byte
	fail    []int // classic KMP failure function
}

// Compile builds the failure function for pattern. It panics on an empty
// pattern: matching the empty string everywhere is never what a scanner
// wants and would hide caller bugs.
func Compile(pattern []byte) *Matcher {
	if len(pattern) == 0 {
		panic("kmp: empty pattern")
	}
	p := make([]byte, len(pattern))
	copy(p, pattern)
	fail := make([]int, len(p))
	k := 0
	for i := 1; i < len(p); i++ {
		for k > 0 && p[k] != p[i] {
			k = fail[k-1]
		}
		if p[k] == p[i] {
			k++
		}
		fail[i] = k
	}
	return &Matcher{pattern: p, fail: fail}
}

// Pattern returns a copy of the compiled pattern.
func (m *Matcher) Pattern() []byte {
	p := make([]byte, len(m.pattern))
	copy(p, m.pattern)
	return p
}

// Index returns the index of the first occurrence of the pattern in text,
// or -1 if absent.
func (m *Matcher) Index(text []byte) int {
	k := 0
	for i := 0; i < len(text); i++ {
		for k > 0 && m.pattern[k] != text[i] {
			k = m.fail[k-1]
		}
		if m.pattern[k] == text[i] {
			k++
		}
		if k == len(m.pattern) {
			return i - len(m.pattern) + 1
		}
	}
	return -1
}

// Count returns the number of (possibly overlapping) occurrences of the
// pattern in text.
func (m *Matcher) Count(text []byte) int {
	n, k := 0, 0
	for i := 0; i < len(text); i++ {
		for k > 0 && m.pattern[k] != text[i] {
			k = m.fail[k-1]
		}
		if m.pattern[k] == text[i] {
			k++
		}
		if k == len(m.pattern) {
			n++
			k = m.fail[k-1]
		}
	}
	return n
}

// Stream is an incremental matcher: feed it bytes in arbitrary chunks and it
// reports matches that may straddle chunk boundaries. The zero value is not
// usable; obtain one from Matcher.Stream.
type Stream struct {
	m *Matcher
	k int   // current automaton state
	n int64 // total bytes consumed
}

// Stream returns a fresh incremental matcher for the compiled pattern.
func (m *Matcher) Stream() *Stream { return &Stream{m: m} }

// Feed consumes chunk and returns the offsets (relative to the start of the
// chunk) at which a pattern occurrence *ends*. An ending offset e means the
// match occupies stream positions [pos+e-len(pattern)+1, pos+e] where pos is
// the stream position of the chunk start.
func (s *Stream) Feed(chunk []byte) []int {
	var ends []int
	p, fail := s.m.pattern, s.m.fail
	for i := 0; i < len(chunk); i++ {
		for s.k > 0 && p[s.k] != chunk[i] {
			s.k = fail[s.k-1]
		}
		if p[s.k] == chunk[i] {
			s.k++
		}
		if s.k == len(p) {
			ends = append(ends, i)
			s.k = fail[s.k-1]
		}
	}
	s.n += int64(len(chunk))
	return ends
}

// Consumed reports the total number of bytes fed so far — the scan-cost
// denominator used by the firewall and DPC cost accounting.
func (s *Stream) Consumed() int64 { return s.n }

// Reset returns the stream to its initial state, keeping the pattern.
func (s *Stream) Reset() { s.k, s.n = 0, 0 }

// State exposes the internal automaton state; the DPC assembler uses it to
// know how many pattern-prefix bytes are currently withheld pending more
// input (those bytes cannot be emitted as literal output yet).
func (s *Stream) State() int { return s.k }
