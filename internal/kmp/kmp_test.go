package kmp

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIndexBasic(t *testing.T) {
	cases := []struct {
		pat, text string
		want      int
	}{
		{"abc", "xxabcxx", 2},
		{"abc", "abc", 0},
		{"abc", "ab", -1},
		{"aaa", "aaaa", 0},
		{"abab", "abacabab", 4},
		{"dpc", "", -1},
		{"a", "ba", 1},
	}
	for _, c := range cases {
		m := Compile([]byte(c.pat))
		if got := m.Index([]byte(c.text)); got != c.want {
			t.Errorf("Index(%q in %q) = %d, want %d", c.pat, c.text, got, c.want)
		}
	}
}

func TestCompileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Compile(empty) did not panic")
		}
	}()
	Compile(nil)
}

func TestPatternReturnsCopy(t *testing.T) {
	src := []byte("abc")
	m := Compile(src)
	src[0] = 'z' // mutating caller's slice must not affect matcher
	if m.Index([]byte("abc")) != 0 {
		t.Fatal("matcher was corrupted by caller mutation")
	}
	p := m.Pattern()
	p[0] = 'q'
	if m.Index([]byte("abc")) != 0 {
		t.Fatal("matcher was corrupted by Pattern() mutation")
	}
}

func TestCountOverlapping(t *testing.T) {
	m := Compile([]byte("aa"))
	if got := m.Count([]byte("aaaa")); got != 3 {
		t.Fatalf("Count(aa in aaaa) = %d, want 3 (overlapping)", got)
	}
}

// Property: Index agrees with bytes.Index on random inputs drawn from a
// small alphabet (small alphabets maximize partial-match stress).
func TestIndexMatchesBytesIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gen := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(3))
		}
		return b
	}
	for trial := 0; trial < 2000; trial++ {
		pat := gen(1 + rng.Intn(6))
		text := gen(rng.Intn(64))
		want := bytes.Index(text, pat)
		if got := Compile(pat).Index(text); got != want {
			t.Fatalf("pattern %q text %q: kmp=%d bytes.Index=%d", pat, text, got, want)
		}
	}
}

// Property: the streaming matcher finds exactly the same match end
// positions as a whole-buffer scan, no matter where chunk boundaries fall.
func TestStreamMatchesWholeBufferScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		pat := make([]byte, 1+rng.Intn(5))
		for i := range pat {
			pat[i] = byte('a' + rng.Intn(2))
		}
		text := make([]byte, rng.Intn(200))
		for i := range text {
			text[i] = byte('a' + rng.Intn(2))
		}
		m := Compile(pat)

		// Whole-buffer ends.
		var want []int
		s := m.Stream()
		for _, e := range s.Feed(text) {
			want = append(want, e)
		}

		// Chunked ends, translated to absolute positions.
		var got []int
		s2 := m.Stream()
		pos := 0
		for pos < len(text) {
			n := 1 + rng.Intn(7)
			if pos+n > len(text) {
				n = len(text) - pos
			}
			for _, e := range s2.Feed(text[pos : pos+n]) {
				got = append(got, pos+e)
			}
			pos += n
		}
		if len(got) != len(want) {
			t.Fatalf("pattern %q text %q: chunked found %d matches, whole found %d", pat, text, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("pattern %q text %q: match %d at %d, want %d", pat, text, i, got[i], want[i])
			}
		}
	}
}

func TestStreamConsumedAndReset(t *testing.T) {
	m := Compile([]byte("xy"))
	s := m.Stream()
	s.Feed([]byte("x"))
	if s.State() != 1 {
		t.Fatalf("state = %d, want 1 (one prefix byte pending)", s.State())
	}
	s.Feed([]byte("y"))
	if s.Consumed() != 2 {
		t.Fatalf("consumed = %d, want 2", s.Consumed())
	}
	s.Reset()
	if s.Consumed() != 0 || s.State() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestStreamMatchAcrossBoundary(t *testing.T) {
	m := Compile([]byte("DPC"))
	s := m.Stream()
	if ends := s.Feed([]byte("xxD")); len(ends) != 0 {
		t.Fatal("premature match")
	}
	if ends := s.Feed([]byte("PCyy")); len(ends) != 1 || ends[0] != 1 {
		t.Fatalf("ends = %v, want [1]", ends)
	}
}

// Property via testing/quick: Count is never negative and never exceeds
// len(text) occurrences.
func TestCountBounds(t *testing.T) {
	f := func(pat, text []byte) bool {
		if len(pat) == 0 {
			pat = []byte{0}
		}
		n := Compile(pat).Count(text)
		return n >= 0 && n <= len(text)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIndex4KB(b *testing.B) {
	text := bytes.Repeat([]byte("the quick brown fox "), 205)[:4096]
	m := Compile([]byte{0x01, 'D', 'P', 'C'})
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Index(text)
	}
}

func BenchmarkStreamFeed4KB(b *testing.B) {
	text := bytes.Repeat([]byte("the quick brown fox "), 205)[:4096]
	m := Compile([]byte{0x01, 'D', 'P', 'C'})
	s := m.Stream()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Feed(text)
	}
}
