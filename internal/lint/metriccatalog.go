package lint

import (
	"go/ast"
	"go/types"
)

// MetricCatalogConfig parameterizes the metriccatalog analyzer.
type MetricCatalogConfig struct {
	// Funcs maps a metric-constructor full name (as rendered by
	// (*types.Func).FullName, e.g.
	// "(*dpcache/internal/metrics.Registry).Counter") to the index of
	// its metric-name argument.
	Funcs map[string]int
	// Prefix is the governed namespace ("dpc."). Names outside it
	// (origin.*, router.*, experiment-local registries) are not the
	// proxy's surface and are ignored.
	Prefix string
	// Known is the set of catalog-documented metric names.
	Known map[string]bool
}

// MetricCatalogAnalyzer enforces that every metric name in the governed
// namespace handed to a metrics constructor is documented in
// dpc.MetricCatalog. TestMetricsDocumented catches drift only for
// metrics a test actually publishes; this catches every call site at
// build time, including cold paths. A name assembled dynamically from a
// governed-prefix literal cannot be checked and must carry a
// //dpclint:ignore with the argument for why the catalog still covers
// it.
func MetricCatalogAnalyzer(cfg MetricCatalogConfig) *Analyzer {
	a := &Analyzer{
		Name: "metriccatalog",
		Doc:  "every " + cfg.Prefix + "* metric name passed to a metrics constructor must appear in dpc.MetricCatalog",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				idx, ok := cfg.Funcs[calleeFullName(pass.Info, call)]
				if !ok || idx >= len(call.Args) {
					return true
				}
				arg := call.Args[idx]
				if name, ok := constString(pass.Info, arg); ok {
					if len(name) >= len(cfg.Prefix) && name[:len(cfg.Prefix)] == cfg.Prefix && !cfg.Known[name] {
						pass.Reportf(arg.Pos(), "metric %q is not documented in dpc.MetricCatalog (docs/METRICS.md)", name)
					}
					return true
				}
				if containsStringLiteralWithPrefix(pass.Info, arg, cfg.Prefix) {
					pass.Reportf(arg.Pos(), "dynamically constructed %s* metric name %s cannot be checked against dpc.MetricCatalog; add a //dpclint:ignore stating why the catalog covers every value it can take", cfg.Prefix, types.ExprString(arg))
				}
				return true
			})
		}
	}
	return a
}
