package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// One loader for the whole test binary: the stdlib source-importing is
// the expensive part and is memoized inside it.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			loaderErr = err
			return
		}
		loader, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loader
}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	l := sharedLoader(t)
	dir, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	return pkg
}

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// expectations parses the // want "rx" comments of every file in the
// fixture, keyed "basename:line".
func expectations(t *testing.T, pkg *Package) map[string][]*regexp.Regexp {
	t.Helper()
	out := make(map[string][]*regexp.Regexp)
	names, err := goSourceFiles(pkg.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		b, err := os.ReadFile(filepath.Join(pkg.Dir, name))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(b), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				rx, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, m[1], err)
				}
				key := fmt.Sprintf("%s:%d", name, i+1)
				out[key] = append(out[key], rx)
			}
		}
	}
	return out
}

// runFixture runs the analyzers over the fixture through the full
// driver (directives included) and matches the findings against the
// // want comments: every want must be hit, every finding must be
// wanted.
func runFixture(t *testing.T, name string, analyzers ...*Analyzer) {
	t.Helper()
	pkg := loadFixture(t, name)
	want := expectations(t, pkg)
	for _, d := range RunPackage(pkg, analyzers) {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		rxs := want[key]
		matched := false
		for i, rx := range rxs {
			if rx.MatchString(d.Message) {
				want[key] = append(rxs[:i], rxs[i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s: [%s] %s", key, d.Analyzer, d.Message)
		}
	}
	for key, rxs := range want {
		for _, rx := range rxs {
			t.Errorf("missing finding at %s: want match for %q", key, rx)
		}
	}
}

func fixtureMetricCatalog() *Analyzer {
	return MetricCatalogAnalyzer(MetricCatalogConfig{
		Funcs: map[string]int{
			"(*dpcache/internal/metrics.Registry).Counter":   0,
			"(*dpcache/internal/metrics.Registry).Gauge":     0,
			"(*dpcache/internal/metrics.Registry).Histogram": 0,
		},
		Prefix: "dpc.",
		Known:  map[string]bool{"dpc.requests": true, "dpc.store.resident": true},
	})
}

func fixtureHeaderKey() *Analyzer {
	return HeaderKeyAnalyzer(HeaderKeyConfig{
		Allowed: map[string]bool{"X-User": true, "Cookie": true, "If-None-Match": true},
		TrustedLists: map[string]bool{
			"fixture/headerkey.trustedHeaders": true,
		},
	})
}

func fixtureCtxFlow() *Analyzer {
	return CtxFlowAnalyzer(CtxFlowConfig{
		Forbidden: map[string]string{
			"context.Background": "derive from the request context",
			"context.TODO":       "derive from the request context",
		},
	})
}

func fixtureLockScope() *Analyzer {
	return LockScopeAnalyzer(LockScopeConfig{
		DenyFuncs: map[string]string{
			"net/http.Get":           "origin round trip",
			"(*net/http.Client).Do":  "origin round trip",
			"time.Sleep":             "sleep",
			"(*sync.WaitGroup).Wait": "goroutine wait",
			"io.ReadAll":             "unbounded read",
			"io.Copy":                "unbounded copy",
			"(*os.File).ReadAt":      "disk read under latch",
			"(*os.File).WriteAt":     "disk write under latch",
			"(*os.File).Sync":        "disk flush under latch",
			"(*os.File).Truncate":    "disk truncate under latch",
		},
		FlagFuncValueCalls: true,
	})
}

func TestMetricCatalogFixture(t *testing.T) { runFixture(t, "metriccatalog", fixtureMetricCatalog()) }
func TestHeaderKeyFixture(t *testing.T)     { runFixture(t, "headerkey", fixtureHeaderKey()) }
func TestCtxFlowFixture(t *testing.T)       { runFixture(t, "ctxflow", fixtureCtxFlow()) }
func TestLockScopeFixture(t *testing.T)     { runFixture(t, "lockscope", fixtureLockScope()) }
func TestUnlockPathFixture(t *testing.T)    { runFixture(t, "unlockpath", UnlockPathAnalyzer()) }

// TestDirectives pins the driver's directive semantics: a used
// suppression silences exactly its line, an unused one is itself a
// finding, unknown analyzer names and missing reasons are findings.
func TestDirectives(t *testing.T) {
	pkg := loadFixture(t, "directives")
	diags := RunPackage(pkg, []*Analyzer{fixtureCtxFlow()})

	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%d:%s", d.Pos.Line, d.Analyzer))
	}
	wantSubstr := []struct {
		analyzer string
		substr   string
	}{
		{"dpclint", "unused //dpclint:ignore"},
		{"dpclint", "unknown analyzer"},
		{"dpclint", "malformed directive"},
		{"ctxflow", "context.Background"},
	}
	for _, w := range wantSubstr {
		found := false
		for _, d := range diags {
			if d.Analyzer == w.analyzer && strings.Contains(d.Message, w.substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s finding containing %q in %v", w.analyzer, w.substr, got)
		}
	}
	// Exactly these four: the two used suppressions must not surface as
	// ctxflow findings or unused-directive findings.
	if len(diags) != 4 {
		for _, d := range diags {
			t.Logf("finding: %s", d)
		}
		t.Errorf("got %d findings, want 4", len(diags))
	}
}

// TestProjectTreeClean is the self-clean gate: the analyzers, as
// configured for CI, report nothing on the real tree. This is the same
// check `go run ./cmd/dpclint ./...` performs.
func TestProjectTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module plus stdlib from source")
	}
	l := sharedLoader(t)
	pkgs, err := l.LoadTree()
	if err != nil {
		t.Fatalf("load tree: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; tree walk is broken", len(pkgs))
	}
	for _, d := range RunPackages(pkgs, ProjectAnalyzers()) {
		t.Errorf("finding on clean tree: %s", d)
	}
}
