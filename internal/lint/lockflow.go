package lint

// A small abstract interpreter over function bodies tracking which
// mutexes are held at each statement, shared by the lockscope and
// unlockpath analyzers. It is deliberately conservative and syntactic:
// a lock is identified by the rendered receiver expression of its
// Lock() call ("sh.mu", with an #r suffix for read locks), branches
// merge by union (held-on-any-path counts as held), branches that
// provably terminate (return, panic, os.Exit) do not contribute to the
// merged fall-through state, `defer mu.Unlock()` marks the lock as
// released on every later exit, and loop bodies are analyzed once with
// the post-loop state taken from the pre-loop state (the store loops
// are lock-neutral; a lock deliberately escaping a loop needs a
// suppression). Function literals do not inherit the enclosing lock
// state — a goroutine body runs after Unlock may have returned — and
// are analyzed separately with a fresh state.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockInfo describes one held lock.
type lockInfo struct {
	pos      token.Pos // the Lock() call
	deferred bool      // a defer Unlock() covers every later exit
}

// lockState maps lock key → info for locks held at a program point.
type lockState map[string]*lockInfo

func (st lockState) clone() lockState {
	out := make(lockState, len(st))
	for k, v := range st {
		cp := *v
		out[k] = &cp
	}
	return out
}

// mergeLockStates unions two fall-through states. A lock held on only
// one path stays held (conservative); deferred only if deferred on
// every path that holds it.
func mergeLockStates(a, b lockState) lockState {
	out := a.clone()
	for k, v := range b {
		if cur, ok := out[k]; ok {
			cur.deferred = cur.deferred && v.deferred
		} else {
			cp := *v
			out[k] = &cp
		}
	}
	for k, cur := range out {
		if v, ok := b[k]; ok {
			cur.deferred = cur.deferred && v.deferred
		}
	}
	return out
}

// lockWalker drives the interpretation, with analyzer-specific hooks.
type lockWalker struct {
	pass *Pass
	// onCall fires for every resolved call evaluated while at least
	// one lock is held (lock/unlock operations themselves excluded).
	onCall func(call *ast.CallExpr, held lockState)
	// onSelect fires for every select statement reached while at
	// least one lock is held.
	onSelect func(sel *ast.SelectStmt, held lockState)
	// onExit fires at every return statement and at function-end
	// fall-through with the locks held there.
	onExit func(pos token.Pos, held lockState)
}

// walkFuncs runs the walker over every function body in the pass:
// declarations and, independently and with fresh state, every function
// literal.
func (w *lockWalker) walkFuncs() {
	for _, f := range w.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			st, terminated := w.walkStmts(body.List, make(lockState))
			if !terminated && w.onExit != nil {
				w.onExit(body.Rbrace, st)
			}
			return true // descend: nested FuncLits get their own fresh walk
		})
	}
}

// walkStmts interprets a statement list. It returns the fall-through
// state and whether every path through the list terminates (so no
// fall-through exists).
func (w *lockWalker) walkStmts(stmts []ast.Stmt, st lockState) (lockState, bool) {
	for _, s := range stmts {
		var terminated bool
		st, terminated = w.stmt(s, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (w *lockWalker) stmt(s ast.Stmt, st lockState) (lockState, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if key, op := w.lockOp(call); op != "" {
				w.applyLockOp(st, key, op, call.Pos())
				w.scanCalls(st, call.Args...)
				return st, false
			}
			if isTerminatorCall(w.pass.Info, call) {
				w.scanCalls(st, call.Args...)
				return st, true
			}
		}
		w.scanCalls(st, s.X)
		return st, false
	case *ast.DeferStmt:
		if key, op := w.lockOp(s.Call); op == "unlock" || op == "runlock" {
			if li, ok := st[key]; ok {
				li.deferred = true
			}
			return st, false
		}
		// A deferred call runs at return; if a lock is still held
		// there it runs under it. Treat it as a call made now —
		// conservative but simple.
		w.scanCalls(st, s.Call)
		return st, false
	case *ast.ReturnStmt:
		w.scanCalls(st, s.Results...)
		if w.onExit != nil {
			w.onExit(s.Pos(), st)
		}
		return st, true
	case *ast.BranchStmt:
		// break/continue/goto leave the current statement list; the
		// enclosing loop's post-state is the pre-loop state, so this
		// path simply stops contributing.
		return st, true
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		w.scanCalls(st, s.Cond)
		thenSt, thenTerm := w.walkStmts(s.Body.List, st.clone())
		elseSt, elseTerm := st, false
		if s.Else != nil {
			elseSt, elseTerm = w.stmt(s.Else, st.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return mergeLockStates(thenSt, elseSt), false
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		w.scanCalls(st, s.Tag)
		return w.branches(st, caseBodies(s.Body), hasDefaultClause(s.Body))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		return w.branches(st, caseBodies(s.Body), hasDefaultClause(s.Body))
	case *ast.SelectStmt:
		if len(st) > 0 && w.onSelect != nil {
			w.onSelect(s, st)
		}
		return w.branches(st, caseBodies(s.Body), true)
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		w.scanCalls(st, s.Cond)
		body := st.clone()
		body, _ = w.walkStmts(s.Body.List, body)
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
		return st, false
	case *ast.RangeStmt:
		w.scanCalls(st, s.X)
		w.walkStmts(s.Body.List, st.clone())
		return st, false
	case *ast.GoStmt:
		// The goroutine body does not run under the caller's locks;
		// only the argument expressions are evaluated now.
		w.scanCalls(st, s.Call.Args...)
		return st, false
	case *ast.AssignStmt:
		w.scanCalls(st, s.Rhs...)
		w.scanCalls(st, s.Lhs...)
		return st, false
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		w.scanCallsNode(st, s)
		return st, false
	default:
		return st, false
	}
}

// branches analyzes each clause body from a copy of st and merges the
// fall-through states. Without a default clause the pre-state is a
// possible outcome too.
func (w *lockWalker) branches(st lockState, bodies [][]ast.Stmt, exhaustive bool) (lockState, bool) {
	var fallthroughs []lockState
	for _, body := range bodies {
		out, term := w.walkStmts(body, st.clone())
		if !term {
			fallthroughs = append(fallthroughs, out)
		}
	}
	if !exhaustive || len(bodies) == 0 {
		fallthroughs = append(fallthroughs, st)
	}
	if len(fallthroughs) == 0 {
		return st, true
	}
	out := fallthroughs[0]
	for _, f := range fallthroughs[1:] {
		out = mergeLockStates(out, f)
	}
	return out, false
}

func (w *lockWalker) applyLockOp(st lockState, key, op string, pos token.Pos) {
	switch op {
	case "lock", "rlock":
		st[key] = &lockInfo{pos: pos}
	case "unlock", "runlock":
		delete(st, key)
	}
}

// lockOp recognizes mu.Lock/RLock/Unlock/RUnlock on sync.Mutex,
// sync.RWMutex, or sync.Locker receivers and returns a stable key for
// the mutex plus the operation. Read and write locks of an RWMutex get
// distinct keys: they pair with their own release.
func (w *lockWalker) lockOp(call *ast.CallExpr) (key, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch calleeFullName(w.pass.Info, call) {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock", "(sync.Locker).Lock":
		op = "lock"
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock", "(sync.Locker).Unlock":
		op = "unlock"
	case "(*sync.RWMutex).RLock":
		op = "rlock"
	case "(*sync.RWMutex).RUnlock":
		op = "runlock"
	default:
		return "", ""
	}
	key = types.ExprString(sel.X)
	if op == "rlock" || op == "runlock" {
		key += "#r"
	}
	return key, op
}

// scanCalls reports (via onCall) every resolved call inside the given
// expressions while a lock is held. Function-literal bodies are not
// descended into: they execute when invoked, under their own state.
func (w *lockWalker) scanCalls(st lockState, exprs ...ast.Expr) {
	for _, e := range exprs {
		if e != nil {
			w.scanCallsNode(st, e)
		}
	}
}

func (w *lockWalker) scanCallsNode(st lockState, n ast.Node) {
	if len(st) == 0 || w.onCall == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if _, op := w.lockOp(n); op == "" {
				w.onCall(n, st)
			}
		}
		return true
	})
}

// isTerminatorCall reports calls that never return: panic and the
// process/goroutine terminators.
func isTerminatorCall(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			return true
		}
	}
	switch calleeFullName(info, call) {
	case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
		return true
	}
	return false
}

func caseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			out = append(out, c.Body)
		case *ast.CommClause:
			stmts := c.Body
			if c.Comm != nil {
				stmts = append([]ast.Stmt{c.Comm}, stmts...)
			}
			out = append(out, stmts)
		}
	}
	return out
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}
