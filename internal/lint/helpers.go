package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// calleeFunc resolves the function or method a call invokes, or nil for
// calls through function values, conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call (http.Get): no selection entry.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// calleeFullName renders the called function as go/types does:
// "net/http.Get", "(*net/http.Client).Do", "(net/http.Header).Get".
// Empty for unresolvable callees.
func calleeFullName(info *types.Info, call *ast.CallExpr) string {
	if f := calleeFunc(info, call); f != nil {
		return f.FullName()
	}
	return ""
}

// constString folds expr to its compile-time string value, if it has
// one (string literals, named constants, and constant concatenations).
func constString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// containsStringLiteralWithPrefix reports whether any string literal
// inside expr starts with prefix — the signature of a dynamically
// assembled name in a checked namespace.
func containsStringLiteralWithPrefix(info *types.Info, expr ast.Expr, prefix string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if lit, ok := n.(ast.Expr); ok {
			if s, ok := constString(info, lit); ok && strings.HasPrefix(s, prefix) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// namedOrPointee unwraps pointers and returns the named type under t,
// or nil.
func namedOrPointee(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamedType reports whether t (or its pointee) is the named type
// pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	n := namedOrPointee(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// trustedRangeVars maps loop-variable objects to the qualified name of
// the trusted list they range over, for every `for _, v := range list`
// in the pass whose list is a package-level variable in trusted (keyed
// "pkgpath.varname"). An analyzer can then accept v where a literal
// from the list would be accepted.
func trustedRangeVars(pass *Pass, trusted map[string]bool) map[types.Object]string {
	out := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if ok {
				listObj := exprObject(pass.Info, rng.X)
				if listObj == nil || listObj.Pkg() == nil {
					return true
				}
				qual := listObj.Pkg().Path() + "." + listObj.Name()
				if !trusted[qual] {
					return true
				}
				if v, ok := rng.Value.(*ast.Ident); ok {
					if obj := identObject(pass.Info, v); obj != nil {
						out[obj] = qual
					}
				}
			}
			return true
		})
	}
	return out
}

// exprObject resolves an identifier or selector expression to the
// object it names.
func exprObject(info *types.Info, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return identObject(info, e)
	case *ast.SelectorExpr:
		return identObject(info, e.Sel)
	}
	return nil
}

func identObject(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// pkgPathPrefixes builds an Applies predicate accepting packages whose
// import path equals one of the prefixes or sits beneath one.
func pkgPathPrefixes(prefixes ...string) func(string) bool {
	return func(path string) bool {
		for _, p := range prefixes {
			if path == p || strings.HasPrefix(path, p+"/") {
				return true
			}
		}
		return false
	}
}
