// Golden corpus for the ctxflow analyzer.
package fixture

import "context"

func spawn(ctx context.Context) context.Context {
	_ = context.Background() // want "context.Background.. on the request path"
	_ = context.TODO()       // want "context.TODO.. on the request path"

	detached := context.WithoutCancel(ctx) // deriving from the request context: ok
	c, cancel := context.WithTimeout(detached, 0)
	cancel()
	return c
}
