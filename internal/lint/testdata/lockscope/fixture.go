// Golden corpus for the lockscope analyzer. The test configures the
// deny list with the project's entries (net/http round trips,
// time.Sleep, WaitGroup.Wait, io.ReadAll/Copy, os.File positioned I/O
// under the buffer-pool latch) and FlagFuncValueCalls.
package fixture

import (
	"net/http"
	"os"
	"sync"
	"time"
)

type shard struct {
	mu sync.Mutex
	rw sync.RWMutex
	m  map[string]string
}

func (s *shard) deniedUnderDefer(url string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	http.Get(url) // want "origin round trip"
}

func (s *shard) deniedBetweenLockUnlock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "sleep"
	s.mu.Unlock()
}

func (s *shard) deniedUnderReadLock(url string) {
	s.rw.RLock()
	http.Get(url) // want "origin round trip"
	s.rw.RUnlock()
}

func (s *shard) deniedInBranch(url string, cond bool) {
	s.mu.Lock()
	if cond {
		http.Get(url) // want "origin round trip"
	}
	s.mu.Unlock()
}

func (s *shard) selectUnderLock(ch chan int) {
	s.mu.Lock()
	select { // want "select while holding s.mu"
	case <-ch:
	default:
	}
	s.mu.Unlock()
}

func (s *shard) callbackUnderLock(pred func(string) bool) {
	s.mu.Lock()
	pred("k") // want "call through function value pred"
	s.mu.Unlock()
}

func (s *shard) okAfterUnlock(url string) {
	s.mu.Lock()
	v := s.m["k"]
	s.mu.Unlock()
	http.Get(url + v) // lock already released: ok
}

func (s *shard) okAfterEarlyReturn(url string) {
	s.mu.Lock()
	if len(s.m) == 0 {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	http.Get(url) // every path released before this: ok
}

func (s *shard) okInGoroutine(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Add(1)
	go func() {
		defer wg.Done()
		http.Get("http://example.test") // goroutine does not hold the caller's lock: ok
	}()
}

func (s *shard) okMethodCall() {
	s.mu.Lock()
	s.touch() // calls to declared functions outside the deny list: ok
	s.mu.Unlock()
}

func (s *shard) touch() {}

// The diskstore buffer-pool invariant: no blocking file syscalls while
// the store latch is held.
func (s *shard) deniedDiskReadUnderLatch(f *os.File, buf []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f.ReadAt(buf, 0) // want "disk read under latch"
}

func (s *shard) deniedWriteBackUnderLatch(f *os.File, page []byte) {
	s.mu.Lock()
	f.WriteAt(page, 0) // want "disk write under latch"
	f.Sync()           // want "disk flush under latch"
	s.mu.Unlock()
}

func (s *shard) deniedTruncateUnderReadLock(f *os.File) {
	s.rw.RLock()
	f.Truncate(0) // want "disk truncate under latch"
	s.rw.RUnlock()
}

func (s *shard) okSnapshotThenWrite(f *os.File) {
	s.mu.Lock()
	page := append([]byte(nil), s.m["page"]...)
	s.mu.Unlock()
	f.WriteAt(page, 0) // latch released before the syscall: ok
}
