// Corpus for the driver's directive handling, exercised by
// TestDirectives (which asserts exact diagnostics rather than // want
// comments, since the findings under test are about the directives
// themselves).
package fixture

import "context"

// A used suppression: the flagged call on the next line is silenced.
func suppressed() {
	//dpclint:ignore ctxflow fixture demonstrates a reviewed suppression
	_ = context.Background()
}

// Same-line form.
func suppressedSameLine() {
	_ = context.Background() //dpclint:ignore ctxflow fixture demonstrates the same-line form
}

// An unused suppression: nothing on the next line is flagged, so the
// directive itself becomes a finding.
func unused() {
	//dpclint:ignore ctxflow nothing here actually trips the analyzer
	_ = context.WithoutCancel(context.WithValue(todoFree(), ctxKey{}, 1))
}

// A directive naming an analyzer that does not exist.
func unknown() {
	//dpclint:ignore nosuchanalyzer typo in the analyzer name
	_ = 1
}

// A directive with no reason is malformed: a suppression is a reviewed
// claim and the claim must be stated.
func malformed() {
	//dpclint:ignore ctxflow
	_ = context.Background()
}

type ctxKey struct{}

func todoFree() context.Context { return context.WithoutCancel(context.Background()) } //dpclint:ignore ctxflow helper exists so unused() has a clean context source
