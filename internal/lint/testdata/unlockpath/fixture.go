// Golden corpus for the unlockpath analyzer.
package fixture

import "sync"

type store struct {
	mu sync.Mutex
	rw sync.RWMutex
	m  map[string]int
}

func (s *store) leakOnErrorPath(k string) int {
	s.mu.Lock()
	v, ok := s.m[k]
	if !ok {
		return -1 // want "s.mu is still held on this return path"
	}
	s.mu.Unlock()
	return v
}

func (s *store) leakAtFallthrough() {
	s.mu.Lock()
	s.m["k"] = 1
} // want "s.mu is still held on this return path"

func (s *store) leakReadLock(k string) (int, bool) {
	s.rw.RLock()
	v, ok := s.m[k]
	if !ok {
		s.rw.RUnlock()
		return 0, false
	}
	return v, true // want "s.rw#r is still held on this return path"
}

func (s *store) okDefer(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[k]
}

func (s *store) okEveryBranch(k string) int {
	s.mu.Lock()
	if v, ok := s.m[k]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	return 0
}

func (s *store) okStraightLine(k string) int {
	s.rw.RLock()
	v := s.m[k]
	s.rw.RUnlock()
	return v
}

func (s *store) okSwitch(k string, mode int) int {
	s.mu.Lock()
	switch mode {
	case 0:
		s.mu.Unlock()
		return 0
	default:
		v := s.m[k]
		s.mu.Unlock()
		return v
	}
}

func (s *store) okLockNeutralLoop(keys []string) int {
	n := 0
	for _, k := range keys {
		s.mu.Lock()
		if _, ok := s.m[k]; ok {
			n++
		}
		s.mu.Unlock()
	}
	return n
}
