// Golden corpus for the headerkey analyzer. The test configures the
// analyzer with Allowed = {X-User, Cookie, If-None-Match} and
// TrustedLists = {fixture/headerkey.trustedHeaders}.
package fixture

import "net/http"

var trustedHeaders = []string{"X-User", "Cookie"}

var untrustedHeaders = []string{"X-Secret"}

func read(r *http.Request, resp *http.Response, h http.Header, dynamic string) {
	_ = r.Header.Get("X-User")        // forwarded: ok
	_ = r.Header.Get("cookie")        // canonicalized before the check: ok
	_ = r.Header.Get("If-None-Match") // response-invariant: ok

	_ = r.Header.Get("X-Secret")    // want "request header .X-Secret. is read on the request path"
	_ = r.Header.Values("X-Tenant") // want "request header .X-Tenant. is read on the request path"

	//dpclint:ignore headerkey fixture demonstrates a reviewed suppression
	_ = r.Header.Get("X-Reviewed") // suppressed by the directive above

	_ = resp.Header.Get("X-Anything") // response headers are out of scope
	_ = h.Get("X-Anything")           // detached header values are out of scope

	for _, name := range trustedHeaders {
		_ = r.Header.Get(name) // ranging over a trusted list: ok
	}
	for _, name := range untrustedHeaders {
		_ = r.Header.Get(name) // want "cannot be statically resolved"
	}
	_ = r.Header.Get(dynamic) // want "cannot be statically resolved"
}
