// Golden corpus for the metriccatalog analyzer: a want-comment marks a
// line the analyzer must flag with a message matching the quoted
// pattern; every other line must stay silent.
package fixture

import "dpcache/internal/metrics"

func use(reg *metrics.Registry, dynamic string) {
	reg.Counter("dpc.requests").Inc()      // documented in the catalog
	reg.Gauge("dpc.store.resident").Set(1) // documented in the catalog
	reg.Counter("origin.requests").Inc()   // other namespace: not governed

	reg.Counter("dpc.bogus_counter").Inc()                // want "dpc.bogus_counter. is not documented in dpc.MetricCatalog"
	reg.Gauge("dpc.bogus_gauge").Set(1)                   // want "dpc.bogus_gauge. is not documented"
	reg.Histogram("dpc.bogus_histogram").Observe(0)       // want "dpc.bogus_histogram. is not documented"
	reg.Histogram("dpc.stage." + dynamic + ".latency")    // want "dynamically constructed"
	reg.Counter(dynamic)                                  // dynamic but no governed literal inside: not checkable, not flagged
	reg.Counter("dpc." + "requests").Inc()                // constant folding: still the documented name
	reg.Counter("dpc.nope_" + dynamic).Inc()              // want "dynamically constructed"
	helperTakingName("dpc.unchecked_but_not_constructor") // only constructor calls are governed
}

func helperTakingName(string) {}
