package lint

import (
	"go/ast"
	"go/types"
	"net/textproto"
)

// HeaderKeyConfig parameterizes the headerkey analyzer.
type HeaderKeyConfig struct {
	// Allowed holds canonical header names that may be read from the
	// inbound request: the forwardedHeaders identity set (folded into
	// the coalesce key) plus the declared response-invariant
	// allowlist.
	Allowed map[string]bool
	// TrustedLists names package-level header slices
	// ("dpcache/internal/dpc.forwardedHeaders") whose elements are
	// by-construction allowed; a loop variable ranging over one may be
	// passed as the header name.
	TrustedLists map[string]bool
}

// HeaderKeyAnalyzer enforces the PR 3 lesson: a request header that can
// change the response must be part of the coalesce identity key, or two
// users' responses can cross-serve through a shared flight. Any
// Header.Get/Header.Values on an inbound *http.Request must therefore
// name a header in forwardedHeaders, in the declared response-invariant
// allowlist, or carry a //dpclint:ignore arguing response invariance.
// Reads on http.Response headers are out of scope (they describe the
// origin's answer, not the client's identity).
func HeaderKeyAnalyzer(cfg HeaderKeyConfig) *Analyzer {
	a := &Analyzer{
		Name: "headerkey",
		Doc:  "request-header reads must name a forwarded (coalesce-keyed) or declared response-invariant header",
	}
	a.Run = func(pass *Pass) {
		trusted := trustedRangeVars(pass, cfg.TrustedLists)
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				full := calleeFullName(pass.Info, call)
				if full != "(net/http.Header).Get" && full != "(net/http.Header).Values" {
					return true
				}
				if !isRequestHeaderExpr(pass.Info, call.Fun) || len(call.Args) != 1 {
					return true
				}
				arg := call.Args[0]
				if name, ok := constString(pass.Info, arg); ok {
					if !cfg.Allowed[textproto.CanonicalMIMEHeaderKey(name)] {
						pass.Reportf(arg.Pos(), "request header %q is read on the request path but is neither in forwardedHeaders (coalesce identity) nor in the response-invariant allowlist; a response that varies on it can cross-serve between users (the PR 3 bug class)", name)
					}
					return true
				}
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if obj := identObject(pass.Info, id); obj != nil {
						if _, ok := trusted[obj]; ok {
							return true
						}
					}
				}
				pass.Reportf(arg.Pos(), "request-header name %s cannot be statically resolved; read only forwarded or declared response-invariant headers (or range over one of the trusted header lists)", types.ExprString(arg))
				return true
			})
		}
	}
	return a
}

// isRequestHeaderExpr reports whether the call target is
// <expr>.Header.Get/Values with <expr> of type *net/http.Request — the
// inbound request, as opposed to an http.Response or a detached
// http.Header value.
func isRequestHeaderExpr(info *types.Info, fun ast.Expr) bool {
	sel, ok := ast.Unparen(fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || recv.Sel.Name != "Header" {
		return false
	}
	tv, ok := info.Types[recv.X]
	if !ok {
		return false
	}
	return isNamedType(tv.Type, "net/http", "Request")
}
