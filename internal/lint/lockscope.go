package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockScopeConfig parameterizes the lockscope analyzer.
type LockScopeConfig struct {
	// DenyFuncs maps blocked-call full names (network round trips,
	// sleeps, waits, unbounded reads) to a short phrase naming the
	// hazard.
	DenyFuncs map[string]string
	// FlagFuncValueCalls also reports calls through function values
	// (callbacks, injected predicates) made under a lock: the callee
	// is unknowable statically, so the caller must prove it cannot
	// block and suppress.
	FlagFuncValueCalls bool
}

// LockScopeAnalyzer forbids blocking operations under a shard lock. A
// store shard's mutex serializes every reader and writer of that shard;
// an origin round trip or channel wait held under it turns one slow
// origin into a store-wide stall. Channel selects under a lock are
// flagged unconditionally.
func LockScopeAnalyzer(cfg LockScopeConfig) *Analyzer {
	a := &Analyzer{
		Name: "lockscope",
		Doc:  "no blocking call (HTTP round trip, sleep, wait, select) may run between a shard Lock() and its Unlock()",
	}
	a.Run = func(pass *Pass) {
		w := &lockWalker{pass: pass}
		w.onCall = func(call *ast.CallExpr, held lockState) {
			f := calleeFunc(pass.Info, call)
			if f == nil {
				if cfg.FlagFuncValueCalls && isFuncValueCall(pass.Info, call) {
					pass.Reportf(call.Pos(), "call through function value %s while holding %s: the callee is not statically known and may block; prove it cannot and suppress", types.ExprString(call.Fun), heldKeys(held))
				}
				return
			}
			if hazard, ok := cfg.DenyFuncs[f.FullName()]; ok {
				pass.Reportf(call.Pos(), "%s (%s) called while holding %s: a blocked call stalls every request hashing to this shard", f.FullName(), hazard, heldKeys(held))
			}
		}
		w.onSelect = func(sel *ast.SelectStmt, held lockState) {
			pass.Reportf(sel.Pos(), "select while holding %s: a channel wait under a shard lock stalls every request hashing to this shard", heldKeys(held))
		}
		w.walkFuncs()
	}
	return a
}

// isFuncValueCall reports a call whose operand is a plain expression of
// function type — not a declared func/method, builtin, or conversion.
func isFuncValueCall(info *types.Info, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	tv, ok := info.Types[fun]
	if !ok || !tv.IsValue() {
		return false // conversion, builtin, or unresolved
	}
	if _, ok := tv.Type.Underlying().(*types.Signature); !ok {
		return false
	}
	// Exclude identifiers bound to declared functions (local helper
	// calls are fine; they are walked as their own bodies).
	if id, ok := fun.(*ast.Ident); ok {
		if _, isFunc := info.Uses[id].(*types.Func); isFunc {
			return false
		}
	}
	return true
}

// heldKeys renders the held lock set for a finding, deterministically.
func heldKeys(held lockState) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += ", "
		}
		out += k
	}
	return out
}

// UnlockPathAnalyzer enforces that every acquired lock is released on
// every return path, by defer or by an explicit unlock on each branch.
// A missed path deadlocks the shard the first time it executes — and
// the paths that miss are exactly the rare error branches tests don't
// reach.
func UnlockPathAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "unlockpath",
		Doc:  "every Lock() must be released on all return paths (defer or every-branch unlock)",
	}
	a.Run = func(pass *Pass) {
		w := &lockWalker{pass: pass}
		w.onExit = func(pos token.Pos, held lockState) {
			for key, li := range held {
				if !li.deferred {
					pass.Reportf(pos, "%s is still held on this return path (locked at %s); unlock on every path or defer the unlock", key, pass.Fset.Position(li.pos))
				}
			}
		}
		w.walkFuncs()
	}
	return a
}
