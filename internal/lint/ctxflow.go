package lint

import "go/ast"

// CtxFlowConfig parameterizes the ctxflow analyzer.
type CtxFlowConfig struct {
	// Forbidden maps banned context constructors
	// ("context.Background", "context.TODO") to the suggestion shown
	// in the finding.
	Forbidden map[string]string
}

// CtxFlowAnalyzer forbids minting fresh root contexts inside
// request-path packages. A context.Background() there detaches the work
// from the traced request: cancellation stops propagating, trace ids
// vanish from spans, and deadlines silently reset. Work that must
// outlive the request derives from it with context.WithoutCancel, which
// keeps the values (trace id) while shedding cancellation.
func CtxFlowAnalyzer(cfg CtxFlowConfig) *Analyzer {
	a := &Analyzer{
		Name: "ctxflow",
		Doc:  "request-path packages must thread the request context; context.Background/TODO detach tracing and cancellation",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				full := calleeFullName(pass.Info, call)
				if hint, ok := cfg.Forbidden[full]; ok {
					pass.Reportf(call.Pos(), "%s() on the request path detaches tracing and cancellation; %s", full, hint)
				}
				return true
			})
		}
	}
	return a
}
