package lint

// Dependency-free package loading. The driver must typecheck the whole
// module (go/types needs resolved imports to answer "is this receiver a
// *net/http.Request?") without pulling golang.org/x/tools into go.mod.
// Module-internal imports are resolved by walking the module tree and
// loading recursively; standard-library imports are delegated to the
// compiler's source importer, which typechecks the stdlib from GOROOT
// source. The first load of a package that pulls in net/http pays a few
// seconds of stdlib typechecking; everything after that is memoized.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, typechecked package.
type Package struct {
	// Path is the import path ("dpcache/internal/dpc").
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Fset is the loader's shared file set (positions for every package).
	Fset *token.FileSet
	// Files are the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Pkg is the typechecked package.
	Pkg *types.Package
	// Info carries the type-and-object resolution for Files.
	Info *types.Info
}

// Loader loads and typechecks packages of a single module plus their
// standard-library dependencies. It implements types.Importer.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string // filesystem path of the module root
	ModulePath string // module path from go.mod ("dpcache")

	std     types.Importer
	pkgs    map[string]*Package // memoized by import path
	loading map[string]bool     // import-cycle guard
}

// NewLoader builds a Loader for the module rooted at dir (the directory
// holding go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: abs,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir looking for go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		abs = parent
	}
}

func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module line", gomod)
}

// Import implements types.Importer: module-internal paths load from the
// module tree, "unsafe" is the sentinel package, everything else is
// assumed to be standard library and handed to the source importer
// (go.mod declares no dependencies, so there is nothing else).
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		p, err := l.LoadDir(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

// LoadDir parses and typechecks the package in dir under the given
// import path. Test files (_test.go) are skipped: the analyzers enforce
// production invariants, and test packages would need their own
// typechecking universe. Results are memoized by import path.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goSourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no non-test Go files", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Pkg: pkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// LoadTree loads every package under the module root (skipping testdata
// and hidden directories), in deterministic order.
func (l *Loader) LoadTree() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(path)
		if path != l.ModuleRoot && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") || base == "testdata") {
			return filepath.SkipDir
		}
		names, err := goSourceFiles(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path += "/" + filepath.ToSlash(rel)
		}
		p, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// goSourceFiles lists the non-test .go files in dir, sorted.
func goSourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
