package lint

import (
	"net/textproto"

	"dpcache/internal/dpc"
)

// Import paths the analyzers scope to.
const (
	pkgDPC       = "dpcache/internal/dpc"
	pkgFragment  = "dpcache/internal/fragstore"
	pkgDepindex  = "dpcache/internal/depindex"
	pkgTmplplan  = "dpcache/internal/tmplplan"
	pkgDiskstore = "dpcache/internal/diskstore"
)

// requestPathPkgs are the packages a live request flows through (or
// that run on its behalf): minting a fresh root context in any of them
// severs tracing and cancellation from the request.
var requestPathPkgs = []string{
	pkgDPC, pkgFragment, pkgDepindex, pkgTmplplan,
	"dpcache/internal/pagecache",
	"dpcache/internal/trace",
	"dpcache/internal/origin",
	"dpcache/internal/coherency",
}

// ProjectAnalyzers builds the five dpcache analyzers wired to the
// project's real contracts: the live MetricCatalog, the live
// forwardedHeaders and response-invariant sets (via internal/dpc), the
// shard-lock deny list, and the request-path package scopes. This is
// the configuration `go run ./cmd/dpclint ./...` enforces in CI.
func ProjectAnalyzers() []*Analyzer {
	catalog := make(map[string]bool)
	for _, m := range dpc.MetricCatalog() {
		catalog[m.Name] = true
	}

	headers := make(map[string]bool)
	for _, h := range dpc.ForwardedHeaders() {
		headers[textproto.CanonicalMIMEHeaderKey(h)] = true
	}
	for _, h := range dpc.ResponseInvariantHeaders() {
		headers[textproto.CanonicalMIMEHeaderKey(h)] = true
	}

	metric := MetricCatalogAnalyzer(MetricCatalogConfig{
		Funcs: map[string]int{
			"(*dpcache/internal/metrics.Registry).Counter":   0,
			"(*dpcache/internal/metrics.Registry).Gauge":     0,
			"(*dpcache/internal/metrics.Registry).Histogram": 0,
		},
		Prefix: "dpc.",
		Known:  catalog,
	})

	headerkey := HeaderKeyAnalyzer(HeaderKeyConfig{
		Allowed: headers,
		TrustedLists: map[string]bool{
			pkgDPC + ".forwardedHeaders":        true,
			pkgDPC + ".coalesceIdentityHeaders": true,
			pkgDPC + ".pageIdentityHeaders":     true,
		},
	})
	headerkey.Applies = pkgPathPrefixes(pkgDPC)

	lockscope := LockScopeAnalyzer(LockScopeConfig{
		DenyFuncs: map[string]string{
			"net/http.Get":                          "origin round trip",
			"net/http.Head":                         "origin round trip",
			"net/http.Post":                         "origin round trip",
			"net/http.PostForm":                     "origin round trip",
			"(*net/http.Client).Do":                 "origin round trip",
			"(*net/http.Client).Get":                "origin round trip",
			"(*net/http.Client).Head":               "origin round trip",
			"(*net/http.Client).Post":               "origin round trip",
			"(*net/http.Client).PostForm":           "origin round trip",
			"(*net/http.Transport).RoundTrip":       "origin round trip",
			"(net/http.RoundTripper).RoundTrip":     "origin round trip",
			"(*dpcache/internal/routing.Router).Do": "routed origin round trip",
			// sync.Cond.Wait is deliberately absent: it atomically
			// releases the associated mutex while waiting, so a wait
			// under a lock is the condvar protocol, not a stall.
			"time.Sleep":             "sleep",
			"(*sync.WaitGroup).Wait": "goroutine wait",
			"io.ReadAll":             "unbounded read",
			"io.Copy":                "unbounded copy",
			// The buffer pool's contract: every disk syscall happens
			// outside the store latch (loads via pin's loading channel,
			// write-backs on a snapshot taken under the latch).
			"(*os.File).ReadAt":   "disk read under latch",
			"(*os.File).WriteAt":  "disk write under latch",
			"(*os.File).Sync":     "disk flush under latch",
			"(*os.File).Truncate": "disk truncate under latch",
		},
		FlagFuncValueCalls: true,
	})
	lockscope.Applies = pkgPathPrefixes(pkgFragment, pkgDepindex, pkgTmplplan, pkgDiskstore,
		"dpcache/internal/repository")

	ctxflow := CtxFlowAnalyzer(CtxFlowConfig{
		Forbidden: map[string]string{
			"context.Background": "derive from the request context (context.WithoutCancel(ctx) for work that must outlive the response)",
			"context.TODO":       "derive from the request context (context.WithoutCancel(ctx) for work that must outlive the response)",
		},
	})
	ctxflow.Applies = pkgPathPrefixes(requestPathPkgs...)

	// unlockpath runs tree-wide: a leaked lock is a deadlock anywhere,
	// and the analyzer is cheap.
	unlockpath := UnlockPathAnalyzer()

	return []*Analyzer{metric, headerkey, lockscope, ctxflow, unlockpath}
}
