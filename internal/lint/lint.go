// Package lint is dpcache's project-invariant static-analysis driver.
//
// Seven PRs of cross-cutting contracts — every dpc.* metric documented in
// the catalog, every request-header read folded into the coalesce key or
// provably response-invariant, no blocking call under a shard lock, the
// traced request context threaded through every stage — were enforced
// only by runtime tests and reviewer memory. The analyzers here check
// them at build time over the typechecked tree. The framework mirrors
// golang.org/x/tools/go/analysis in miniature (Analyzer, Pass, Report)
// but is built purely on the standard library so go.mod stays
// dependency-free; see docs/LINTING.md for the invariant catalog and the
// suppression directive.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer checks one project invariant.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// //dpclint:ignore directives.
	Name string
	// Doc is the one-paragraph invariant statement shown by -help.
	Doc string
	// Applies reports whether the analyzer runs on the package with
	// the given import path. nil means every package.
	Applies func(pkgPath string) bool
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
	PkgPath string

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// DirectivePrefix introduces a suppression comment:
//
//	//dpclint:ignore <analyzer> <reason>
//
// placed on the flagged line or the line directly above it. The reason
// is mandatory: a suppression is a reviewed claim that the invariant
// holds for non-mechanical reasons, and the claim must be stated.
const DirectivePrefix = "dpclint:ignore"

// directive is one parsed //dpclint:ignore comment.
type directive struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

// RunPackage runs every applicable analyzer over pkg, applies
// suppression directives, and returns the surviving diagnostics plus
// driver-level findings (malformed, unknown-analyzer, or unused
// directives — a stale suppression is itself a finding, so directives
// cannot outlive the code they excuse).
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	known := make(map[string]bool, len(analyzers))
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
		if a.Applies != nil && !a.Applies(pkg.Path) {
			continue
		}
		ran[a.Name] = true
		pass := &Pass{
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			PkgPath:  pkg.Path,
			analyzer: a,
			diags:    &raw,
		}
		a.Run(pass)
	}

	directives, malformed := collectDirectives(pkg)
	var out []Diagnostic
	out = append(out, malformed...)
	for _, d := range raw {
		if dir := matchDirective(directives, d); dir != nil {
			dir.used = true
			continue
		}
		out = append(out, d)
	}
	for _, dir := range directives {
		switch {
		case !known[dir.analyzer]:
			out = append(out, Diagnostic{Pos: dir.pos, Analyzer: "dpclint",
				Message: fmt.Sprintf("//dpclint:ignore names unknown analyzer %q", dir.analyzer)})
		case !dir.used && ran[dir.analyzer]:
			out = append(out, Diagnostic{Pos: dir.pos, Analyzer: "dpclint",
				Message: fmt.Sprintf("unused //dpclint:ignore directive: %s reports nothing here", dir.analyzer)})
		}
	}
	sortDiagnostics(out)
	return out
}

// RunPackages runs analyzers over every package and returns all
// findings in deterministic order.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		out = append(out, RunPackage(pkg, analyzers)...)
	}
	sortDiagnostics(out)
	return out
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// collectDirectives scans every comment in the package for
// //dpclint:ignore directives. Malformed ones (missing analyzer or
// reason) are returned as driver diagnostics.
func collectDirectives(pkg *Package) ([]*directive, []Diagnostic) {
	var dirs []*directive
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, DirectivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, DirectivePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      pkg.Fset.Position(c.Pos()),
						Analyzer: "dpclint",
						Message:  "malformed directive: want //dpclint:ignore <analyzer> <reason>",
					})
					continue
				}
				dirs = append(dirs, &directive{
					pos:      pkg.Fset.Position(c.Pos()),
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return dirs, bad
}

// matchDirective finds a directive suppressing d: same analyzer, same
// file, on the flagged line or the line directly above it.
func matchDirective(dirs []*directive, d Diagnostic) *directive {
	for _, dir := range dirs {
		if dir.analyzer != d.Analyzer || dir.pos.Filename != d.Pos.Filename {
			continue
		}
		if dir.pos.Line == d.Pos.Line || dir.pos.Line == d.Pos.Line-1 {
			return dir
		}
	}
	return nil
}
