package site

import (
	"fmt"
	"io"
	"time"

	"dpcache/internal/repository"
	"dpcache/internal/script"
)

// BrokerageTickers are the symbols seeded by BuildBrokerage.
var BrokerageTickers = []string{"IBM", "SUNW", "MSFT", "ORCL", "GE"}

// BuildBrokerage seeds repo and returns the online-brokerage quote page of
// Section 3.2.1: given a ticker, the page combines three content elements
// with very different lifetimes —
//
//   - the current price quote (invalid within seconds),
//   - recent headlines (updated ~every thirty minutes),
//   - historical research data (monthly).
//
// Fragment-granularity caching invalidates each at its own rate; a page
// cache would regenerate all three whenever the price ticks, which is the
// paper's unnecessary-invalidation argument.
//
// Pages are addressed as /page/quote?ticker=<sym>.
func BuildBrokerage(repo *repository.Repo) *script.Script {
	for i, t := range BrokerageTickers {
		repo.Put(repository.Key{Table: "quotes", Row: t},
			map[string]string{"px": fmt.Sprintf("%d.%02d", 50+7*i, 13*i%100), "t": "09:30:00"})
		repo.Put(repository.Key{Table: "news", Row: t},
			map[string]string{"h1": t + " announces quarterly results", "h2": "Analysts weigh in on " + t})
		repo.Put(repository.Key{Table: "research", Row: t},
			map[string]string{"pe": fmt.Sprintf("%d.%d", 12+i, i), "high52": fmt.Sprintf("%d.00", 80+10*i)})
	}

	quote := script.Tagged("pxquote", 2*time.Second,
		func(c *script.Context) string { return c.Param("ticker", "IBM") },
		func(c *script.Context, w io.Writer) error {
			t := c.Param("ticker", "IBM")
			px := c.Field("quotes", t, "px", "n/a")
			at := c.Field("quotes", t, "t", "")
			_, err := fmt.Fprintf(w, `<div class="px">%s: $%s <small>as of %s</small></div>`, t, px, at)
			return err
		})

	headlines := script.Tagged("headlines", 30*time.Minute,
		func(c *script.Context) string { return c.Param("ticker", "IBM") },
		func(c *script.Context, w io.Writer) error {
			t := c.Param("ticker", "IBM")
			h1 := c.Field("news", t, "h1", "")
			h2 := c.Field("news", t, "h2", "")
			_, err := io.WriteString(w, padTo(fmt.Sprintf(`<ul class="news"><li>%s</li><li>%s</li></ul>`, h1, h2), 600))
			return err
		})

	historical := script.Tagged("historical", 30*24*time.Hour,
		func(c *script.Context) string { return c.Param("ticker", "IBM") },
		func(c *script.Context, w io.Writer) error {
			t := c.Param("ticker", "IBM")
			pe := c.Field("research", t, "pe", "")
			hi := c.Field("research", t, "high52", "")
			_, err := io.WriteString(w, padTo(fmt.Sprintf(
				`<table class="hist"><tr><td>P/E</td><td>%s</td></tr><tr><td>52wk high</td><td>%s</td></tr></table>`, pe, hi), 900))
			return err
		})

	return &script.Script{
		Name: "quote",
		Layout: func(ctx *script.Context) []script.Block {
			return []script.Block{
				script.Static("head", "<html><head><title>quotes</title></head><body>"),
				quote,
				headlines,
				historical,
				script.Static("tail", "</body></html>"),
			}
		},
	}
}

// TickQuote updates a ticker's price, invalidating only the price
// fragment.
func TickQuote(repo *repository.Repo, ticker, px, at string) {
	repo.Put(repository.Key{Table: "quotes", Row: ticker},
		map[string]string{"px": px, "t": at})
}
