package site

import (
	"fmt"
	"io"
	"time"

	"dpcache/internal/repository"
	"dpcache/internal/script"
)

// BuildBookstore seeds repo with the www.booksOnline.com content of
// Section 4.3.2 and returns the catalog script. The page layout is
// dynamic: registered users get a personal greeting and a recommendations
// rail that anonymous visitors do not — the Bob/Alice scenario of Section
// 3.2.1 that makes URL-keyed page caches serve wrong pages.
//
// Pages are addressed as /page/catalog?categoryID=<cat>.
func BuildBookstore(repo *repository.Repo) *script.Script {
	categories := map[string][]string{
		"Fiction":   {"The Dispossessed", "Snow Crash", "Middlemarch"},
		"Science":   {"Gödel Escher Bach", "The Selfish Gene"},
		"History":   {"The Guns of August", "SPQR"},
		"Computing": {"TAOCP", "The C Programming Language", "Transaction Processing"},
	}
	for cat, books := range categories {
		repo.Put(repository.Key{Table: "categories", Row: cat},
			map[string]string{"title": cat, "count": fmt.Sprint(len(books))})
		for i, b := range books {
			repo.Put(repository.Key{Table: "books", Row: fmt.Sprintf("%s/%d", cat, i)},
				map[string]string{"title": b, "category": cat})
		}
	}
	for _, u := range []struct{ id, name, likes string }{
		{"bob", "Bob", "Fiction"},
		{"carol", "Carol", "Computing"},
		{"dave", "Dave", "Science"},
	} {
		repo.Put(repository.Key{Table: "users", Row: u.id},
			map[string]string{"name": u.name, "likes": u.likes})
	}

	navBar := script.Tagged("navbar", time.Hour, nil,
		func(ctx *script.Context, w io.Writer) error {
			_, err := io.WriteString(w, padTo(`<nav><a href="/page/catalog?categoryID=Fiction">Fiction</a> | `+
				`<a href="/page/catalog?categoryID=Science">Science</a> | `+
				`<a href="/page/catalog?categoryID=History">History</a> | `+
				`<a href="/page/catalog?categoryID=Computing">Computing</a></nav>`, 512))
			return err
		})

	greeting := script.Tagged("greeting", 0,
		func(c *script.Context) string { return c.UserID },
		func(c *script.Context, w io.Writer) error {
			name := c.Field("users", c.UserID, "name", c.UserID)
			_, err := fmt.Fprintf(w, `<div class="greet">Hello, %s!</div>`, name)
			return err
		})

	category := script.Tagged("category", 30*time.Minute,
		func(c *script.Context) string { return c.Param("categoryID", "Fiction") },
		func(c *script.Context, w io.Writer) error {
			cat := c.Param("categoryID", "Fiction")
			row, err := c.Query("categories", cat)
			if err != nil {
				_, werr := fmt.Fprintf(w, `<div class="cat">Unknown category %q</div>`, cat)
				return werr
			}
			n := 0
			fmt.Sscanf(row.Fields["count"], "%d", &n)
			fmt.Fprintf(w, `<div class="cat"><h1>%s</h1><ul>`, row.Fields["title"])
			for i := 0; i < n; i++ {
				title := c.Field("books", fmt.Sprintf("%s/%d", cat, i), "title", "?")
				fmt.Fprintf(w, "<li>%s</li>", title)
			}
			_, err = io.WriteString(w, "</ul></div>")
			return err
		})

	recommendations := script.Tagged("recs", 0,
		func(c *script.Context) string { return c.UserID },
		func(c *script.Context, w io.Writer) error {
			likes := c.Field("users", c.UserID, "likes", "Fiction")
			top := c.Field("books", likes+"/0", "title", "our bestsellers")
			_, err := fmt.Fprintf(w, `<aside>Because you like %s: %s</aside>`, likes, top)
			return err
		})

	return &script.Script{
		Name: "catalog",
		Layout: func(ctx *script.Context) []script.Block {
			blocks := []script.Block{
				script.Static("head", "<html><head><title>booksOnline</title></head><body>"),
				navBar,
			}
			if !ctx.Anonymous() {
				blocks = append(blocks, greeting)
			}
			blocks = append(blocks, category)
			if !ctx.Anonymous() {
				blocks = append(blocks, recommendations)
			}
			blocks = append(blocks, script.Static("tail", "<footer>© booksOnline 2002</footer></body></html>"))
			return blocks
		},
	}
}
