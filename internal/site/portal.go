package site

import (
	"fmt"
	"io"
	"strings"
	"time"

	"dpcache/internal/repository"
	"dpcache/internal/script"
)

// PortalConfig shapes the case-study portal: a personalized home page like
// the one at the financial institution where the paper's system was
// deployed. Each registered user has a profile selecting which modules
// appear and in what order — the fully dynamic layout case.
type PortalConfig struct {
	// Users is the registered-user count; user IDs are "u0".."u<n-1>".
	Users int
	// Modules is the size of the content-module pool.
	Modules int
	// ModulesPerPage is how many modules a profile selects.
	ModulesPerPage int
	// ModuleBytes is the rendered size of each module.
	ModuleBytes int
}

// DefaultPortal returns the case-study shape: 50 users choosing 6 of 20
// modules of 2KB each.
func DefaultPortal() PortalConfig {
	return PortalConfig{Users: 50, Modules: 20, ModulesPerPage: 6, ModuleBytes: 2048}
}

// Validate reports nonsensical configurations.
func (c PortalConfig) Validate() error {
	switch {
	case c.Users <= 0 || c.Modules <= 0 || c.ModulesPerPage <= 0:
		return fmt.Errorf("site: portal counts must be positive")
	case c.ModulesPerPage > c.Modules:
		return fmt.Errorf("site: modules per page exceeds module pool")
	case c.ModuleBytes < 32:
		return fmt.Errorf("site: module bytes too small")
	}
	return nil
}

// BuildPortal seeds repo and returns the portal script. Module content is
// shared across users (so fragments are reusable — the portal's win), but
// the greeting is per-user and the layout order is profile-driven.
//
// Pages are addressed as /page/portal with the user on X-User.
func BuildPortal(cfg PortalConfig, repo *repository.Repo) (*script.Script, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	moduleNames := make([]string, cfg.Modules)
	for m := range moduleNames {
		moduleNames[m] = fmt.Sprintf("mod%d", m)
		repo.Put(repository.Key{Table: "modules", Row: moduleNames[m]},
			map[string]string{"title": fmt.Sprintf("Module %d", m), "body": fmt.Sprintf("content of module %d", m)})
	}
	for u := 0; u < cfg.Users; u++ {
		// Deterministic profile: user u takes modules u, u+1, … (mod
		// pool), in rotated order, so layouts differ user to user.
		picks := make([]string, cfg.ModulesPerPage)
		for k := range picks {
			picks[k] = moduleNames[(u+k*3)%cfg.Modules]
		}
		repo.Put(repository.Key{Table: "profiles", Row: fmt.Sprintf("u%d", u)},
			map[string]string{"name": fmt.Sprintf("User %d", u), "modules": strings.Join(picks, ",")})
	}

	moduleBlock := func(name string) script.Block {
		return script.Tagged("portal-"+name, time.Hour, nil,
			func(c *script.Context, w io.Writer) error {
				title := c.Field("modules", name, "title", name)
				body := c.Field("modules", name, "body", "")
				_, err := io.WriteString(w, padTo(
					fmt.Sprintf(`<section><h2>%s</h2><p>%s</p></section>`, title, body), cfg.ModuleBytes))
				return err
			})
	}

	greeting := script.Tagged("portal-greet", 0,
		func(c *script.Context) string { return c.UserID },
		func(c *script.Context, w io.Writer) error {
			name := c.Field("profiles", c.UserID, "name", c.UserID)
			_, err := fmt.Fprintf(w, `<header>Welcome back, %s</header>`, name)
			return err
		})

	return &script.Script{
		Name: "portal",
		Layout: func(ctx *script.Context) []script.Block {
			blocks := []script.Block{script.Static("head", "<html><body class=\"portal\">")}
			if ctx.Anonymous() {
				// Anonymous visitors get a default front page.
				blocks = append(blocks, moduleBlock(moduleNames[0]), moduleBlock(moduleNames[1]))
			} else {
				blocks = append(blocks, greeting)
				mods := ctx.Field("profiles", ctx.UserID, "modules", moduleNames[0])
				for _, m := range strings.Split(mods, ",") {
					blocks = append(blocks, moduleBlock(m))
				}
			}
			blocks = append(blocks, script.Static("tail", "</body></html>"))
			return blocks
		},
	}, nil
}

// UpdateModule rewrites a module's body, invalidating it for every user
// whose layout includes it.
func UpdateModule(repo *repository.Repo, module int, body string) {
	name := fmt.Sprintf("mod%d", module)
	title := repo.Field(repository.Key{Table: "modules", Row: name}, "title", name)
	repo.Put(repository.Key{Table: "modules", Row: name},
		map[string]string{"title": title, "body": body})
}
