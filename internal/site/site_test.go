package site

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"dpcache/internal/analytical"
	"dpcache/internal/repository"
	"dpcache/internal/script"
)

func newRepo() *repository.Repo { return repository.New(repository.LatencyModel{}) }

func TestSyntheticConfigValidation(t *testing.T) {
	bad := []SyntheticConfig{
		{Pages: 0, FragmentsPerPage: 4, FragmentBytes: 1024},
		{Pages: 1, FragmentsPerPage: 0, FragmentBytes: 1024},
		{Pages: 1, FragmentsPerPage: 1, FragmentBytes: 4},
		{Pages: 1, FragmentsPerPage: 1, FragmentBytes: 1024, Cacheability: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
	if err := DefaultSynthetic().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticFragmentSizesExact(t *testing.T) {
	repo := newRepo()
	cfg := DefaultSynthetic()
	sc, man, err := BuildSynthetic(cfg, repo)
	if err != nil {
		t.Fatal(err)
	}
	for page := 0; page < cfg.Pages; page++ {
		ctx := script.NewContext(repo, "", map[string]string{"page": fmt.Sprint(page)})
		body, err := script.RenderPage(sc, ctx)
		if err != nil {
			t.Fatal(err)
		}
		want := cfg.FragmentsPerPage * cfg.FragmentBytes
		if len(body) != want {
			t.Fatalf("page %d renders %d bytes, want %d", page, len(body), want)
		}
	}
	if len(man.FragmentBytes) != cfg.Pages*cfg.FragmentsPerPage {
		t.Fatalf("manifest fragments = %d", len(man.FragmentBytes))
	}
}

func TestSyntheticCacheabilityExact(t *testing.T) {
	repo := newRepo()
	cfg := DefaultSynthetic() // 40 fragments, c=0.6
	_, man, err := BuildSynthetic(cfg, repo)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, c := range man.Cacheable {
		if c {
			n++
		}
	}
	if got := float64(n) / float64(len(man.Cacheable)); math.Abs(got-0.6) > 1e-9 {
		t.Fatalf("cacheable fraction = %v, want 0.6 exactly", got)
	}
}

func TestSyntheticOutOfRangePageClamps(t *testing.T) {
	repo := newRepo()
	sc, _, err := BuildSynthetic(DefaultSynthetic(), repo)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"-3", "999", "junk"} {
		ctx := script.NewContext(repo, "", map[string]string{"page": p})
		if _, err := script.RenderPage(sc, ctx); err != nil {
			t.Fatalf("page=%q: %v", p, err)
		}
	}
}

func TestSyntheticTouchFragmentChangesOutput(t *testing.T) {
	repo := newRepo()
	sc, _, err := BuildSynthetic(DefaultSynthetic(), repo)
	if err != nil {
		t.Fatal(err)
	}
	ctx := func() *script.Context { return script.NewContext(repo, "", map[string]string{"page": "0"}) }
	before, _ := script.RenderPage(sc, ctx())
	TouchFragment(repo, 0, "2")
	after, _ := script.RenderPage(sc, ctx())
	if string(before) == string(after) {
		t.Fatal("TouchFragment did not change rendered output")
	}
	if len(before) != len(after) {
		t.Fatal("TouchFragment changed page size")
	}
}

func TestManifestModelRoundTrip(t *testing.T) {
	repo := newRepo()
	cfg := DefaultSynthetic()
	_, man, err := BuildSynthetic(cfg, repo)
	if err != nil {
		t.Fatal(err)
	}
	access := analytical.ZipfWeights(cfg.Pages, 0)
	m := man.Model(500, 10, 0.8, access)
	// With α=0 the model must equal the closed form.
	p := analytical.Baseline()
	if got, want := m.Ratio(), p.Ratio(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("manifest model ratio %v != closed form %v", got, want)
	}
}

func TestBookstorePlainRender(t *testing.T) {
	repo := newRepo()
	sc := BuildBookstore(repo)
	body, err := script.RenderPage(sc, script.NewContext(repo, "bob", map[string]string{"categoryID": "Fiction"}))
	if err != nil {
		t.Fatal(err)
	}
	s := string(body)
	for _, want := range []string{"Hello, Bob!", "<h1>Fiction</h1>", "The Dispossessed", "Because you like Fiction"} {
		if !strings.Contains(s, want) {
			t.Fatalf("page missing %q:\n%s", want, s)
		}
	}
}

func TestBookstoreAnonymousLayout(t *testing.T) {
	repo := newRepo()
	sc := BuildBookstore(repo)
	body, err := script.RenderPage(sc, script.NewContext(repo, "", map[string]string{"categoryID": "Science"}))
	if err != nil {
		t.Fatal(err)
	}
	s := string(body)
	if strings.Contains(s, "Hello,") || strings.Contains(s, "Because you like") {
		t.Fatalf("anonymous page contains personalized fragments:\n%s", s)
	}
	if !strings.Contains(s, "<h1>Science</h1>") {
		t.Fatalf("missing category content:\n%s", s)
	}
}

func TestBookstoreUnknownCategoryGraceful(t *testing.T) {
	repo := newRepo()
	sc := BuildBookstore(repo)
	body, err := script.RenderPage(sc, script.NewContext(repo, "", map[string]string{"categoryID": "Nope"}))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "Unknown category") {
		t.Fatalf("unknown category not handled: %s", body)
	}
}

func TestBrokerageRenderAndTTLStructure(t *testing.T) {
	repo := newRepo()
	sc := BuildBrokerage(repo)
	body, err := script.RenderPage(sc, script.NewContext(repo, "", map[string]string{"ticker": "IBM"}))
	if err != nil {
		t.Fatal(err)
	}
	s := string(body)
	for _, want := range []string{"IBM: $", "announces quarterly results", "52wk high"} {
		if !strings.Contains(s, want) {
			t.Fatalf("quote page missing %q:\n%s", want, s)
		}
	}
	// The three content elements carry the paper's three lifetimes.
	ctx := script.NewContext(repo, "", map[string]string{"ticker": "IBM"})
	var ttls []string
	for _, b := range sc.Layout(ctx) {
		if b.Cacheable {
			ttls = append(ttls, fmt.Sprintf("%s=%v", b.Name, b.TTL))
		}
	}
	want := []string{"pxquote=2s", "headlines=30m0s", "historical=720h0m0s"}
	if fmt.Sprint(ttls) != fmt.Sprint(want) {
		t.Fatalf("ttls = %v, want %v", ttls, want)
	}
}

func TestBrokerageTickQuoteChangesOnlyPrice(t *testing.T) {
	repo := newRepo()
	sc := BuildBrokerage(repo)
	render := func() string {
		b, err := script.RenderPage(sc, script.NewContext(repo, "", map[string]string{"ticker": "IBM"}))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	before := render()
	TickQuote(repo, "IBM", "999.99", "10:00:00")
	after := render()
	if before == after {
		t.Fatal("tick did not change page")
	}
	if !strings.Contains(after, "$999.99") {
		t.Fatalf("new price missing: %s", after)
	}
	// Headlines and research must be unchanged.
	if !strings.Contains(after, "announces quarterly results") || !strings.Contains(after, "52wk high") {
		t.Fatal("tick disturbed other fragments")
	}
}

func TestPortalValidation(t *testing.T) {
	bad := []PortalConfig{
		{Users: 0, Modules: 5, ModulesPerPage: 2, ModuleBytes: 100},
		{Users: 1, Modules: 2, ModulesPerPage: 5, ModuleBytes: 100},
		{Users: 1, Modules: 5, ModulesPerPage: 2, ModuleBytes: 4},
	}
	for i, c := range bad {
		if _, err := BuildPortal(c, newRepo()); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPortalPerUserLayouts(t *testing.T) {
	repo := newRepo()
	cfg := DefaultPortal()
	sc, err := BuildPortal(cfg, repo)
	if err != nil {
		t.Fatal(err)
	}
	u0, err := script.RenderPage(sc, script.NewContext(repo, "u0", nil))
	if err != nil {
		t.Fatal(err)
	}
	u1, err := script.RenderPage(sc, script.NewContext(repo, "u1", nil))
	if err != nil {
		t.Fatal(err)
	}
	if string(u0) == string(u1) {
		t.Fatal("different users got identical portal pages")
	}
	if !strings.Contains(string(u0), "Welcome back, User 0") {
		t.Fatalf("u0 greeting missing: %s", u0[:120])
	}
	anon, err := script.RenderPage(sc, script.NewContext(repo, "", nil))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(anon), "Welcome back") {
		t.Fatal("anonymous portal page is personalized")
	}
}

func TestPortalModuleSizesStable(t *testing.T) {
	repo := newRepo()
	cfg := DefaultPortal()
	sc, err := BuildPortal(cfg, repo)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := script.RenderPage(sc, script.NewContext(repo, "u3", nil))
	UpdateModule(repo, 3, "completely new body text")
	b, _ := script.RenderPage(sc, script.NewContext(repo, "u3", nil))
	if len(a) != len(b) {
		t.Fatalf("module update changed page size: %d → %d", len(a), len(b))
	}
}

func TestPadTo(t *testing.T) {
	if got := padTo("abc", 10); len(got) != 10 || !strings.HasPrefix(got, "abc") {
		t.Fatalf("padTo = %q", got)
	}
	if got := padTo("abcdef", 3); got != "abc" {
		t.Fatalf("padTo truncation = %q", got)
	}
	long := padTo("x", 200)
	if len(long) != 200 {
		t.Fatalf("padTo long = %d", len(long))
	}
}
