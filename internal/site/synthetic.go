// Package site provides the web applications the experiments and examples
// run: a parameterized synthetic site mirroring the analytical model's
// structure (Table 2), plus three realistic sites drawn from the paper's
// motivating scenarios — a bookstore catalog (Section 4.3.2), a brokerage
// quote page (Section 3.2.1), and a personalized portal (the
// financial-institution case study).
package site

import (
	"fmt"
	"io"
	"strings"
	"time"

	"dpcache/internal/analytical"
	"dpcache/internal/repository"
	"dpcache/internal/script"
)

// SyntheticConfig parameterizes the synthetic site. The defaults mirror
// Table 2.
type SyntheticConfig struct {
	// Pages is the number of distinct pages (Table 2: 10).
	Pages int
	// FragmentsPerPage is the per-page fragment count (Table 2: 4).
	FragmentsPerPage int
	// FragmentBytes is the exact rendered size of each fragment
	// (Table 2: 1KB).
	FragmentBytes int
	// Cacheability is the fraction of fragments tagged cacheable
	// (Table 2: 0.6), realized with analytical.CacheableStripe so the
	// model and the site agree exactly.
	Cacheability float64
	// FragmentSizeFactors, when non-empty, makes rendered fragment sizes
	// heterogeneous: fragment j renders to exactly
	// FragmentBytes × FragmentSizeFactors[j mod len] bytes. Empty keeps
	// Table 2's uniform sizes. Size-aware eviction policies (GDSF) only
	// separate from LRU when sizes vary — the memory experiment uses a
	// heavy-tailed cycle here.
	FragmentSizeFactors []int
	// TTL applies to every cacheable fragment; zero disables time-based
	// expiry (the bandwidth experiments drive invalidation through the
	// BEM's forced-miss hook instead).
	TTL time.Duration
}

// FragmentSize returns fragment j's exact rendered byte size.
func (c SyntheticConfig) FragmentSize(j int) int {
	if len(c.FragmentSizeFactors) == 0 {
		return c.FragmentBytes
	}
	return c.FragmentBytes * c.FragmentSizeFactors[j%len(c.FragmentSizeFactors)]
}

// TotalFragmentBytes is the site's nominal working set: the sum of every
// fragment's rendered size (the budget sweeps are expressed against it).
func (c SyntheticConfig) TotalFragmentBytes() int64 {
	var total int64
	for j := 0; j < c.Pages*c.FragmentsPerPage; j++ {
		total += int64(c.FragmentSize(j))
	}
	return total
}

// DefaultSynthetic returns Table 2's structural settings.
func DefaultSynthetic() SyntheticConfig {
	return SyntheticConfig{Pages: 10, FragmentsPerPage: 4, FragmentBytes: 1024, Cacheability: 0.6}
}

// Validate reports nonsensical configurations.
func (c SyntheticConfig) Validate() error {
	switch {
	case c.Pages <= 0:
		return fmt.Errorf("site: pages must be positive")
	case c.FragmentsPerPage <= 0:
		return fmt.Errorf("site: fragments per page must be positive")
	case c.FragmentBytes < 16:
		return fmt.Errorf("site: fragment bytes must be >= 16 (room for the fragment header)")
	case c.Cacheability < 0 || c.Cacheability > 1:
		return fmt.Errorf("site: cacheability outside [0,1]")
	}
	for _, f := range c.FragmentSizeFactors {
		if f < 1 {
			return fmt.Errorf("site: fragment size factor %d must be >= 1", f)
		}
	}
	return nil
}

// Manifest records the structure a site builder produced, in the shape the
// analytical model consumes.
type Manifest struct {
	FragmentBytes []float64
	Cacheable     []bool
	Pages         [][]int
}

// Model converts the manifest into an analytical.Model with the given
// header size, tag size, hit ratio, and page-access distribution. This is
// the "Analytical" curve plotted beside measurements in Figures 3(b), 5,
// and 6: same structure, closed-form expectation.
func (m Manifest) Model(headerBytes, tagBytes, hitRatio float64, accessProb []float64) analytical.Model {
	return analytical.Model{
		FragmentBytes: m.FragmentBytes,
		Cacheable:     m.Cacheable,
		Pages:         m.Pages,
		AccessProb:    accessProb,
		HeaderBytes:   headerBytes,
		TagBytes:      tagBytes,
		HitRatio:      hitRatio,
	}
}

const syntheticTable = "synth"

// BuildSynthetic seeds repo with fragment source rows and returns the
// synthetic script plus its manifest. Pages are addressed as
// /page/synth?page=<i>. Every fragment renders to exactly
// cfg.FragmentBytes bytes, so measured byte counts line up with the model.
func BuildSynthetic(cfg SyntheticConfig, repo *repository.Repo) (*script.Script, Manifest, error) {
	if err := cfg.Validate(); err != nil {
		return nil, Manifest{}, err
	}
	total := cfg.Pages * cfg.FragmentsPerPage
	man := Manifest{
		FragmentBytes: make([]float64, total),
		Cacheable:     make([]bool, total),
		Pages:         make([][]int, cfg.Pages),
	}
	for j := 0; j < total; j++ {
		man.FragmentBytes[j] = float64(cfg.FragmentSize(j))
		man.Cacheable[j] = analytical.CacheableStripe(j, cfg.Cacheability)
		repo.Put(repository.Key{Table: syntheticTable, Row: fragRow(j)},
			map[string]string{"v": "1"})
	}
	for i := 0; i < cfg.Pages; i++ {
		for k := 0; k < cfg.FragmentsPerPage; k++ {
			man.Pages[i] = append(man.Pages[i], i*cfg.FragmentsPerPage+k)
		}
	}

	sc := &script.Script{
		Name: "synth",
		Layout: func(ctx *script.Context) []script.Block {
			page := 0
			fmt.Sscanf(ctx.Param("page", "0"), "%d", &page)
			if page < 0 || page >= cfg.Pages {
				page = 0
			}
			blocks := make([]script.Block, 0, cfg.FragmentsPerPage)
			for k := 0; k < cfg.FragmentsPerPage; k++ {
				j := page*cfg.FragmentsPerPage + k
				render := syntheticFragment(j, cfg.FragmentSize(j))
				if man.Cacheable[j] {
					blocks = append(blocks, script.Tagged(
						fmt.Sprintf("synthfrag%d", j), cfg.TTL, nil, render))
				} else {
					blocks = append(blocks, script.Untagged(
						fmt.Sprintf("synthfrag%d", j), render))
				}
			}
			return blocks
		},
	}
	return sc, man, nil
}

func fragRow(j int) string { return fmt.Sprintf("f%d", j) }

// syntheticFragment renders fragment j to exactly size bytes: a small
// header identifying the fragment and its source-row version, padded with
// deterministic filler.
func syntheticFragment(j, size int) script.RenderFunc {
	return func(ctx *script.Context, w io.Writer) error {
		v := ctx.Field(syntheticTable, fragRow(j), "v", "0")
		head := fmt.Sprintf("<!--frag %d v%s-->", j, v)
		if len(head) > size {
			head = head[:size]
		}
		if _, err := io.WriteString(w, head); err != nil {
			return err
		}
		pad := size - len(head)
		const filler = "abcdefghijklmnopqrstuvwxyz0123456789"
		for pad > 0 {
			n := pad
			if n > len(filler) {
				n = len(filler)
			}
			if _, err := io.WriteString(w, filler[:n]); err != nil {
				return err
			}
			pad -= n
		}
		return nil
	}
}

// TouchFragment bumps the source row behind fragment j, driving
// data-dependency invalidation (used by freshness experiments).
func TouchFragment(repo *repository.Repo, j int, version string) {
	repo.Put(repository.Key{Table: syntheticTable, Row: fragRow(j)},
		map[string]string{"v": version})
}

// padTo pads s with '·'-free ASCII filler to exactly n bytes (helper for
// the realistic sites, which also want stable sizes).
func padTo(s string, n int) string {
	if len(s) >= n {
		return s[:n]
	}
	var b strings.Builder
	b.WriteString(s)
	const filler = " lorem ipsum dolor sit amet consectetur adipiscing elit"
	for b.Len() < n {
		remaining := n - b.Len()
		if remaining >= len(filler) {
			b.WriteString(filler)
		} else {
			b.WriteString(filler[:remaining])
		}
	}
	return b.String()
}
