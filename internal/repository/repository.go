// Package repository is the content-repository substrate: the stand-in for
// the Oracle 8.1.6 database behind the test site in the paper's Section 6
// and for the CMS/DBMS tier of Figure 1.
//
// It is an in-memory store of versioned rows organized into tables, with
//
//   - a configurable per-query latency model (content generation delay is
//     one of the server-side bottlenecks the paper catalogs in Section 2.2),
//   - an update bus: every write publishes an event, which is how the BEM's
//     invalidation manager learns that fragments depending on that row are
//     stale ("updates to the underlying data sources", Section 4.3.3).
package repository

import (
	"fmt"
	"sync"
	"time"

	"dpcache/internal/metrics"
)

// Key identifies a row: a (table, primary key) pair. Fragments declare
// their data dependencies as sets of Keys.
type Key struct {
	Table string
	Row   string
}

// String renders the key as table/row.
func (k Key) String() string { return k.Table + "/" + k.Row }

// Row is a versioned record. Fields maps column name to value.
type Row struct {
	Fields  map[string]string
	Version uint64
}

// UpdateEvent describes one committed write.
type UpdateEvent struct {
	Key     Key
	Version uint64
	Deleted bool
}

// LatencyModel simulates query processing delay. QueryDelay is charged per
// Get; UpdateDelay per write. Zero values disable sleeping, which is what
// the bandwidth experiments use (they measure bytes, not time); the
// response-time case study sets these to emulate the multi-tier workflow of
// Figure 1.
type LatencyModel struct {
	QueryDelay  time.Duration
	UpdateDelay time.Duration
}

// Repo is an in-memory versioned table store. It is safe for concurrent
// use.
type Repo struct {
	mu      sync.RWMutex
	tables  map[string]map[string]Row
	lat     LatencyModel
	version uint64 // global monotonically increasing commit counter

	subMu sync.RWMutex
	subs  []func(UpdateEvent)

	queries *metrics.Counter
	updates *metrics.Counter
}

// New returns an empty repository using the given latency model.
func New(lat LatencyModel) *Repo {
	return &Repo{
		tables:  make(map[string]map[string]Row),
		lat:     lat,
		queries: &metrics.Counter{},
		updates: &metrics.Counter{},
	}
}

// SetLatency replaces the latency model (used by experiments to switch a
// built site between bandwidth and response-time modes).
func (r *Repo) SetLatency(lat LatencyModel) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lat = lat
}

// Subscribe registers fn to be called synchronously with every committed
// update. Subscribers must be fast and must not call back into the Repo's
// write methods.
func (r *Repo) Subscribe(fn func(UpdateEvent)) {
	r.subMu.Lock()
	defer r.subMu.Unlock()
	r.subs = append(r.subs, fn)
}

func (r *Repo) publish(ev UpdateEvent) {
	r.subMu.RLock()
	subs := r.subs
	r.subMu.RUnlock()
	for _, fn := range subs {
		fn(ev)
	}
}

// Put upserts a row and returns its new version. The update bus fires
// after the write commits.
func (r *Repo) Put(k Key, fields map[string]string) uint64 {
	// Charge the simulated update latency before taking the table
	// lock, mirroring Get: the delay models query processing, and
	// sleeping under the lock would serialize every unrelated read and
	// write behind one slow update.
	if r.lat.UpdateDelay > 0 {
		time.Sleep(r.lat.UpdateDelay)
	}
	r.mu.Lock()
	t, ok := r.tables[k.Table]
	if !ok {
		t = make(map[string]Row)
		r.tables[k.Table] = t
	}
	r.version++
	v := r.version
	cp := make(map[string]string, len(fields))
	for fk, fv := range fields {
		cp[fk] = fv
	}
	t[k.Row] = Row{Fields: cp, Version: v}
	r.mu.Unlock()
	r.updates.Inc()
	r.publish(UpdateEvent{Key: k, Version: v})
	return v
}

// Delete removes a row if present; the update bus fires either way so that
// dependent fragments are conservatively invalidated.
func (r *Repo) Delete(k Key) {
	r.mu.Lock()
	if t, ok := r.tables[k.Table]; ok {
		delete(t, k.Row)
	}
	r.version++
	v := r.version
	r.mu.Unlock()
	r.updates.Inc()
	r.publish(UpdateEvent{Key: k, Version: v, Deleted: true})
}

// ErrNotFound reports a missing row.
type ErrNotFound struct{ Key Key }

func (e ErrNotFound) Error() string { return fmt.Sprintf("repository: %s not found", e.Key) }

// Get returns a copy of the row at k, charging the query latency.
func (r *Repo) Get(k Key) (Row, error) {
	r.mu.RLock()
	lat := r.lat.QueryDelay
	row, ok := r.tables[k.Table][k.Row]
	var cp Row
	if ok {
		cp = Row{Fields: make(map[string]string, len(row.Fields)), Version: row.Version}
		for fk, fv := range row.Fields {
			cp.Fields[fk] = fv
		}
	}
	r.mu.RUnlock()
	if lat > 0 {
		time.Sleep(lat)
	}
	r.queries.Inc()
	if !ok {
		return Row{}, ErrNotFound{Key: k}
	}
	return cp, nil
}

// Field is a convenience returning a single column, or def when the row or
// column is missing.
func (r *Repo) Field(k Key, column, def string) string {
	row, err := r.Get(k)
	if err != nil {
		return def
	}
	if v, ok := row.Fields[column]; ok {
		return v
	}
	return def
}

// Version returns the current version of row k, or 0 when absent. It does
// not charge query latency (the BEM uses it for cheap staleness probes).
func (r *Repo) Version(k Key) uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.tables[k.Table][k.Row].Version
}

// Scan returns the row keys of a table in unspecified order.
func (r *Repo) Scan(table string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t := r.tables[table]
	keys := make([]string, 0, len(t))
	for k := range t {
		keys = append(keys, k)
	}
	return keys
}

// Len returns the number of rows in a table.
func (r *Repo) Len(table string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tables[table])
}

// QueryCount reports the total number of Get calls served.
func (r *Repo) QueryCount() int64 { return r.queries.Value() }

// UpdateCount reports the total number of committed writes.
func (r *Repo) UpdateCount() int64 { return r.updates.Value() }
