package repository

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestPutGetRoundtrip(t *testing.T) {
	r := New(LatencyModel{})
	k := Key{Table: "books", Row: "fiction"}
	r.Put(k, map[string]string{"title": "Dune"})
	row, err := r.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if row.Fields["title"] != "Dune" {
		t.Fatalf("title = %q", row.Fields["title"])
	}
}

func TestGetMissingRow(t *testing.T) {
	r := New(LatencyModel{})
	_, err := r.Get(Key{Table: "t", Row: "nope"})
	var nf ErrNotFound
	if !errors.As(err, &nf) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if nf.Key.Row != "nope" {
		t.Fatalf("ErrNotFound.Key = %v", nf.Key)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	r := New(LatencyModel{})
	k := Key{Table: "t", Row: "r"}
	r.Put(k, map[string]string{"a": "1"})
	row, _ := r.Get(k)
	row.Fields["a"] = "tampered"
	row2, _ := r.Get(k)
	if row2.Fields["a"] != "1" {
		t.Fatal("Get leaked internal map")
	}
}

func TestPutCopiesCallerMap(t *testing.T) {
	r := New(LatencyModel{})
	k := Key{Table: "t", Row: "r"}
	m := map[string]string{"a": "1"}
	r.Put(k, m)
	m["a"] = "tampered"
	if r.Field(k, "a", "") != "1" {
		t.Fatal("Put aliased caller map")
	}
}

func TestVersionsMonotonic(t *testing.T) {
	r := New(LatencyModel{})
	k := Key{Table: "t", Row: "r"}
	v1 := r.Put(k, map[string]string{"a": "1"})
	v2 := r.Put(k, map[string]string{"a": "2"})
	if v2 <= v1 {
		t.Fatalf("versions not monotonic: %d then %d", v1, v2)
	}
	if r.Version(k) != v2 {
		t.Fatalf("Version = %d, want %d", r.Version(k), v2)
	}
}

func TestVersionMissingRowIsZero(t *testing.T) {
	r := New(LatencyModel{})
	if v := r.Version(Key{Table: "x", Row: "y"}); v != 0 {
		t.Fatalf("Version of missing row = %d, want 0", v)
	}
}

func TestUpdateBusFiresOnPutAndDelete(t *testing.T) {
	r := New(LatencyModel{})
	var events []UpdateEvent
	var mu sync.Mutex
	r.Subscribe(func(ev UpdateEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	k := Key{Table: "t", Row: "r"}
	r.Put(k, map[string]string{"a": "1"})
	r.Delete(k)
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].Deleted || !events[1].Deleted {
		t.Fatalf("events = %+v", events)
	}
	if events[0].Key != k {
		t.Fatalf("event key = %v", events[0].Key)
	}
}

func TestDeleteMissingStillPublishes(t *testing.T) {
	r := New(LatencyModel{})
	fired := false
	r.Subscribe(func(UpdateEvent) { fired = true })
	r.Delete(Key{Table: "none", Row: "none"})
	if !fired {
		t.Fatal("delete of missing row did not publish (must be conservative)")
	}
}

func TestFieldDefaulting(t *testing.T) {
	r := New(LatencyModel{})
	k := Key{Table: "t", Row: "r"}
	if got := r.Field(k, "a", "def"); got != "def" {
		t.Fatalf("missing row Field = %q", got)
	}
	r.Put(k, map[string]string{"a": "1"})
	if got := r.Field(k, "b", "def"); got != "def" {
		t.Fatalf("missing column Field = %q", got)
	}
	if got := r.Field(k, "a", "def"); got != "1" {
		t.Fatalf("present Field = %q", got)
	}
}

func TestScanAndLen(t *testing.T) {
	r := New(LatencyModel{})
	for _, row := range []string{"a", "b", "c"} {
		r.Put(Key{Table: "t", Row: row}, nil)
	}
	if r.Len("t") != 3 {
		t.Fatalf("Len = %d", r.Len("t"))
	}
	seen := map[string]bool{}
	for _, k := range r.Scan("t") {
		seen[k] = true
	}
	if len(seen) != 3 || !seen["a"] || !seen["b"] || !seen["c"] {
		t.Fatalf("Scan = %v", seen)
	}
}

func TestQueryLatencyCharged(t *testing.T) {
	r := New(LatencyModel{QueryDelay: 20 * time.Millisecond})
	k := Key{Table: "t", Row: "r"}
	r.Put(k, map[string]string{"a": "1"})
	start := time.Now()
	if _, err := r.Get(k); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("Get returned in %v, want >= ~20ms latency", elapsed)
	}
}

func TestCounters(t *testing.T) {
	r := New(LatencyModel{})
	k := Key{Table: "t", Row: "r"}
	r.Put(k, nil)
	_, _ = r.Get(k)
	_, _ = r.Get(k)
	if r.QueryCount() != 2 || r.UpdateCount() != 1 {
		t.Fatalf("counts = %d queries, %d updates", r.QueryCount(), r.UpdateCount())
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	r := New(LatencyModel{})
	k := Key{Table: "t", Row: "r"}
	r.Put(k, map[string]string{"n": "0"})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Put(k, map[string]string{"n": "x"})
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				_, _ = r.Get(k)
				_ = r.Version(k)
			}
		}()
	}
	wg.Wait()
	if r.UpdateCount() != 8*200+1 { // +1 for the seed Put
		t.Fatalf("updates = %d, want %d", r.UpdateCount(), 8*200+1)
	}
}

func TestKeyString(t *testing.T) {
	if (Key{Table: "a", Row: "b"}).String() != "a/b" {
		t.Fatal("Key.String format changed")
	}
}
