package origin

import (
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// Fault injection: a deterministic misbehavior layer in front of the
// origin's page and static handlers, so tests and experiments can
// provoke overload, errors, hangs, and torn responses on demand. The
// admission-control work in internal/dpc is only provable against an
// origin that can be made to saturate and fail; a healthy in-process
// origin never exercises those paths. Admin endpoints (/healthz, /stats)
// are never fault-injected — a saturation experiment still needs to
// observe the origin.

// FaultConfig parameterizes a FaultInjector. The zero value injects
// nothing.
type FaultConfig struct {
	// Latency is added to every page/static request before it is served;
	// Jitter adds a uniform random extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// ErrorRate is the probability in [0, 1] a request is answered 500
	// before the handler runs.
	ErrorRate float64
	// HangRate is the probability a request sleeps Hang before being
	// served — the slow-backend tail, distinct from the base Latency.
	HangRate float64
	// Hang is the extra stall applied to hung requests (0 selects 5s).
	Hang time.Duration
	// AbortRate is the probability a page/static response is torn
	// mid-body: roughly half the body is written and flushed, then the
	// connection is aborted.
	AbortRate float64
	// MaxConcurrent bounds requests inside the fault layer (0 =
	// unbounded): excess arrivals queue, modeling a fixed origin worker
	// pool — offered load past MaxConcurrent/Latency collapses into
	// queueing delay, which is what a saturation experiment sweeps.
	MaxConcurrent int
	// Seed makes the random draws reproducible (0 selects 1).
	Seed int64
}

// FaultInjector applies a FaultConfig; safe for concurrent use.
type FaultInjector struct {
	cfg  FaultConfig
	sem  chan struct{} // nil when unbounded
	mu   sync.Mutex
	rng  *rand.Rand
	reg  *faultMetrics
	hang time.Duration
}

// faultMetrics is the injector's counter set, bound when the Server
// attaches the injector (the Server owns the registry).
type faultMetrics struct {
	errors, hangs, aborts, queued interface{ Inc() }
}

// NewFaultInjector returns an injector for cfg.
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	hang := cfg.Hang
	if hang <= 0 {
		hang = 5 * time.Second
	}
	f := &FaultInjector{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(seed)),
		hang: hang,
	}
	if cfg.MaxConcurrent > 0 {
		f.sem = make(chan struct{}, cfg.MaxConcurrent)
	}
	return f
}

// roll draws a uniform float in [0, 1) under the injector's lock, so
// concurrent requests share one deterministic sequence.
func (f *FaultInjector) roll() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64()
}

func (f *FaultInjector) jitter() time.Duration {
	if f.cfg.Jitter <= 0 {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return time.Duration(f.rng.Int63n(int64(f.cfg.Jitter)))
}

// wrap applies the configured faults around next. It returns true when
// the request was fully handled (error injected or slot wait cancelled)
// and next must not run.
func (f *FaultInjector) wrap(w http.ResponseWriter, r *http.Request, next func(http.ResponseWriter, *http.Request)) {
	if f.sem != nil {
		select {
		case f.sem <- struct{}{}:
		default:
			// Worker pool busy: queue (the whole point — queueing delay
			// is the saturation signal), but respect client cancellation
			// so a shed/timed-out caller does not hold a queue slot.
			if f.reg != nil {
				f.reg.queued.Inc()
			}
			select {
			case f.sem <- struct{}{}:
			case <-r.Context().Done():
				w.WriteHeader(http.StatusServiceUnavailable)
				return
			}
		}
		defer func() { <-f.sem }()
	}
	if d := f.cfg.Latency + f.jitter(); d > 0 {
		f.sleep(r, d)
	}
	if f.cfg.HangRate > 0 && f.roll() < f.cfg.HangRate {
		if f.reg != nil {
			f.reg.hangs.Inc()
		}
		f.sleep(r, f.hang)
	}
	if f.cfg.ErrorRate > 0 && f.roll() < f.cfg.ErrorRate {
		if f.reg != nil {
			f.reg.errors.Inc()
		}
		http.Error(w, "origin: injected failure", http.StatusInternalServerError)
		return
	}
	if f.cfg.AbortRate > 0 && f.roll() < f.cfg.AbortRate {
		if f.reg != nil {
			f.reg.aborts.Inc()
		}
		next(&abortWriter{ResponseWriter: w}, r)
		return
	}
	next(w, r)
}

// sleep waits d or until the client gives up.
func (f *FaultInjector) sleep(r *http.Request, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-r.Context().Done():
	}
}

// abortWriter tears a response mid-body: roughly half of the first body
// write goes out (flushed, so the bytes actually reach the wire), then
// the connection is aborted via http.ErrAbortHandler. Downstream, the
// proxy sees an unexpected EOF partway through the declared length.
type abortWriter struct {
	http.ResponseWriter
	wrote bool
}

func (a *abortWriter) Write(b []byte) (int, error) {
	if a.wrote {
		panic(http.ErrAbortHandler)
	}
	a.wrote = true
	n := len(b) / 2
	if n > 0 {
		_, _ = a.ResponseWriter.Write(b[:n])
		if fl, ok := a.ResponseWriter.(http.Flusher); ok {
			fl.Flush()
		}
	}
	panic(http.ErrAbortHandler)
}
