// Package origin implements the origin-site application server: the
// IIS+ASP stand-in of the paper's test configuration (Figure 4).
//
// The server executes dynamic scripts (package script) against the content
// repository. It serves two kinds of responses from the same scripts:
//
//   - plain pages — full HTML, exactly what a conventional application
//     server would produce (the no-cache baseline of Section 5/6), and
//   - templates — the instruction streams of Section 4, produced by
//     running scripts through the BEM sink, which consults the Back End
//     Monitor per tagged block and emits GET or SET instructions.
//
// A request is served as a template only when the caller advertises DPC
// capability (the reverse proxy sets the X-DPC-Capable header); direct
// browser requests always receive plain pages, so deploying the system is
// transparent to non-proxy clients. The X-DPC-Bypass header forces a plain
// page even from a capable caller — the strict-mode recovery path the DPC
// uses when it detects a stale slot.
package origin

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dpcache/internal/bem"
	"dpcache/internal/metrics"
	"dpcache/internal/repository"
	"dpcache/internal/script"
	"dpcache/internal/tmpl"
)

// Request headers forming the origin↔proxy contract.
const (
	// HeaderCapable marks the caller as a DPC that can assemble
	// templates.
	HeaderCapable = "X-DPC-Capable"
	// HeaderBypass forces a plain page regardless of capability.
	HeaderBypass = "X-DPC-Bypass"
	// HeaderTemplate is set on responses whose body is a template; its
	// value names the codec.
	HeaderTemplate = "X-DPC-Template"
	// HeaderUser carries the authenticated user (the session layer of a
	// real site; a header keeps the substrate simple).
	HeaderUser = "X-User"
	// HeaderStale carries "key:gen,key:gen" slot references the DPC
	// could not satisfy; the BEM invalidates them so the next template
	// regenerates the fragments (set on bypass recovery fetches).
	HeaderStale = "X-DPC-Stale"
)

// Config parameterizes a Server.
type Config struct {
	// Repo is the content repository scripts read from. Required.
	Repo *repository.Repo
	// Monitor enables template responses. Nil runs the server in pure
	// no-cache mode (plain pages only).
	Monitor *bem.Monitor
	// Codec selects the template wire format; defaults to tmpl.Binary.
	Codec tmpl.Codec
	// ExtraHeaderBytes pads every response with an X-Pad header of this
	// size, letting experiments match Table 2's 500-byte per-response
	// header figure (bare HTTP headers are smaller).
	ExtraHeaderBytes int
	// Registry receives origin.* metrics; optional.
	Registry *metrics.Registry
	// Faults injects configured misbehavior — latency, errors, hangs,
	// mid-body aborts, a bounded worker pool — in front of the page and
	// static handlers (see faults.go). Nil serves faithfully. Admin
	// endpoints (/healthz, /stats) are never fault-injected.
	Faults *FaultInjector
}

// Server is the origin application server. Register scripts, then serve.
type Server struct {
	cfg     Config
	codec   tmpl.Codec
	scripts map[string]*script.Script
	statics map[string]staticAsset
	reg     *metrics.Registry
}

// staticAsset is a fixed response served under /static/ with an explicit
// freshness lifetime, so proxies may cache it by URL.
type staticAsset struct {
	contentType string
	body        []byte
	maxAge      time.Duration
}

// New returns a Server with no scripts registered.
func New(cfg Config) (*Server, error) {
	if cfg.Repo == nil {
		return nil, fmt.Errorf("origin: Repo is required")
	}
	codec := cfg.Codec
	if codec == nil {
		codec = tmpl.Binary{}
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	if cfg.Faults != nil {
		cfg.Faults.reg = &faultMetrics{
			errors: reg.Counter("origin.fault_errors"),
			hangs:  reg.Counter("origin.fault_hangs"),
			aborts: reg.Counter("origin.fault_aborts"),
			queued: reg.Counter("origin.fault_queued"),
		}
	}
	return &Server{
		cfg:     cfg,
		codec:   codec,
		scripts: make(map[string]*script.Script),
		statics: make(map[string]staticAsset),
		reg:     reg,
	}, nil
}

// RegisterStatic serves body at /static/<name> with Cache-Control
// max-age, making it URL-cacheable at the proxy (the rich-content /
// static-fragment case of Section 4.2).
func (s *Server) RegisterStatic(name, contentType string, body []byte, maxAge time.Duration) error {
	if name == "" {
		return fmt.Errorf("origin: static asset needs a name")
	}
	if _, dup := s.statics[name]; dup {
		return fmt.Errorf("origin: static asset %q already registered", name)
	}
	cp := make([]byte, len(body))
	copy(cp, body)
	s.statics[name] = staticAsset{contentType: contentType, body: cp, maxAge: maxAge}
	return nil
}

// Register adds a script; requests for /page/<name> execute it.
func (s *Server) Register(sc *script.Script) error {
	if sc == nil || sc.Name == "" {
		return fmt.Errorf("origin: script must have a name")
	}
	if _, dup := s.scripts[sc.Name]; dup {
		return fmt.Errorf("origin: script %q already registered", sc.Name)
	}
	s.scripts[sc.Name] = sc
	return nil
}

// Scripts lists registered script names.
func (s *Server) Scripts() []string {
	names := make([]string, 0, len(s.scripts))
	for n := range s.scripts {
		names = append(names, n)
	}
	return names
}

// Monitor returns the attached Back End Monitor (nil in no-cache mode).
func (s *Server) Monitor() *bem.Monitor { return s.cfg.Monitor }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case strings.HasPrefix(r.URL.Path, "/page/"):
		if f := s.cfg.Faults; f != nil {
			f.wrap(w, r, s.servePage)
			return
		}
		s.servePage(w, r)
	case strings.HasPrefix(r.URL.Path, "/static/"):
		if f := s.cfg.Faults; f != nil {
			f.wrap(w, r, s.serveStatic)
			return
		}
		s.serveStatic(w, r)
	case r.URL.Path == "/healthz":
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	case r.URL.Path == "/stats":
		s.serveStats(w)
	default:
		http.NotFound(w, r)
	}
}

// serveStats reports origin metrics and, when a monitor is attached, the
// BEM's cache-directory statistics, as JSON.
func (s *Server) serveStats(w http.ResponseWriter) {
	out := map[string]any{
		"metrics": s.reg.Snapshot(),
		"scripts": s.Scripts(),
	}
	if s.cfg.Monitor != nil {
		st := s.cfg.Monitor.Stats()
		top := s.cfg.Monitor.TopFragments(10)
		hot := make([]map[string]any, 0, len(top))
		for _, f := range top {
			hot = append(hot, map[string]any{
				"fragment": f.FragmentID,
				"hits":     f.Hits,
				"size":     f.Size,
				"valid":    f.Valid,
			})
		}
		out["hot_fragments"] = hot
		out["bem"] = map[string]any{
			"lookups":             st.Lookups,
			"hits":                st.Hits,
			"misses":              st.Misses,
			"hit_ratio":           st.HitRatio(),
			"evictions":           st.Evictions,
			"ttl_invalidations":   st.TTLInvalidations,
			"data_invalidations":  st.DataInvalidations,
			"stale_invalidations": st.StaleInvalidations,
			"directory_size":      st.DirectorySize,
			"valid_fragments":     st.ValidFragments,
			"free_keys":           st.FreeKeys,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

func (s *Server) servePage(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/page/")
	sc, ok := s.scripts[name]
	if !ok {
		http.NotFound(w, r)
		return
	}
	params := map[string]string{}
	for k, vs := range r.URL.Query() {
		if len(vs) > 0 {
			params[k] = vs[0]
		}
	}
	ctx := script.NewContext(s.cfg.Repo, r.Header.Get(HeaderUser), params)

	if s.cfg.Monitor != nil {
		s.applyStaleReport(r.Header.Get(HeaderStale))
	}

	templateMode := s.cfg.Monitor != nil &&
		r.Header.Get(HeaderCapable) != "" &&
		r.Header.Get(HeaderBypass) == ""

	start := time.Now()
	var body bytes.Buffer
	if templateMode {
		enc := s.codec.NewEncoder(&body)
		sink := &bemSink{enc: enc, mon: s.cfg.Monitor}
		if err := script.Run(sc, ctx, sink); err != nil {
			s.fail(w, name, err)
			return
		}
		if err := enc.Flush(); err != nil {
			s.fail(w, name, err)
			return
		}
		w.Header().Set(HeaderTemplate, s.codec.Name())
		s.reg.Counter("origin.templates").Inc()
	} else {
		if err := script.Run(sc, ctx, &script.PlainSink{W: &body}); err != nil {
			s.fail(w, name, err)
			return
		}
		s.reg.Counter("origin.plain_pages").Inc()
	}
	s.reg.Histogram("origin.generate").Observe(time.Since(start))
	s.reg.Counter("origin.requests").Inc()

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(body.Len()))
	w.Header().Set("Server", "dpcache-origin/1.0")
	if s.cfg.ExtraHeaderBytes > 0 {
		w.Header().Set("X-Pad", strings.Repeat("p", s.cfg.ExtraHeaderBytes))
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body.Bytes())
}

func (s *Server) serveStatic(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/static/")
	asset, ok := s.statics[name]
	if !ok {
		http.NotFound(w, r)
		return
	}
	s.reg.Counter("origin.static_requests").Inc()
	w.Header().Set("Content-Type", asset.contentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(asset.body)))
	if asset.maxAge > 0 {
		w.Header().Set("Cache-Control", fmt.Sprintf("max-age=%d", int(asset.maxAge.Seconds())))
	} else {
		w.Header().Set("Cache-Control", "no-store")
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(asset.body)
}

// applyStaleReport invalidates slots the DPC reported as unsatisfiable.
// The header format is "key:gen,key:gen"; malformed entries are ignored
// (a bad report must never break page serving).
func (s *Server) applyStaleReport(report string) {
	if report == "" {
		return
	}
	for _, part := range strings.Split(report, ",") {
		kg := strings.SplitN(part, ":", 2)
		if len(kg) != 2 {
			continue
		}
		key, err1 := strconv.ParseUint(kg[0], 10, 32)
		gen, err2 := strconv.ParseUint(kg[1], 10, 32)
		if err1 != nil || err2 != nil {
			continue
		}
		if s.cfg.Monitor.InvalidateStale(uint32(key), uint32(gen)) {
			s.reg.Counter("origin.stale_reports_applied").Inc()
		}
	}
}

func (s *Server) fail(w http.ResponseWriter, page string, err error) {
	s.reg.Counter("origin.errors").Inc()
	http.Error(w, fmt.Sprintf("origin: page %q: %v", page, err), http.StatusInternalServerError)
}

// bemSink adapts the Back End Monitor to the script.Sink interface: the
// run-time operation of Section 4.3.2. A valid directory entry becomes a
// GET tag; anything else regenerates the fragment and becomes a SET tag
// pair carrying the fresh content.
type bemSink struct {
	enc tmpl.Encoder
	mon *bem.Monitor
}

// Literal implements script.Sink.
func (s *bemSink) Literal(p []byte) error { return s.enc.Literal(p) }

// Fragment implements script.Sink.
func (s *bemSink) Fragment(fragmentID string, ttl time.Duration, render func(io.Writer) ([]repository.Key, error)) error {
	d, err := s.mon.Lookup(fragmentID, ttl)
	if err != nil {
		return err
	}
	if d.Hit {
		return s.enc.Get(d.Key, d.Gen)
	}
	var buf bytes.Buffer
	deps, err := render(&buf)
	if err != nil {
		return err
	}
	s.mon.Commit(fragmentID, buf.Len(), deps)
	return s.enc.Set(d.Key, d.Gen, buf.Bytes())
}
