package origin

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func okHandler(body string) (http.HandlerFunc, *int) {
	calls := new(int)
	return func(w http.ResponseWriter, r *http.Request) {
		*calls++
		_, _ = io.WriteString(w, body)
	}, calls
}

// ErrorRate 1 answers 500 before the handler runs.
func TestFaultErrorInjection(t *testing.T) {
	f := NewFaultInjector(FaultConfig{ErrorRate: 1})
	next, calls := okHandler("page")
	rec := httptest.NewRecorder()
	f.wrap(rec, httptest.NewRequest(http.MethodGet, "/page/x", nil), next)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if *calls != 0 {
		t.Fatal("handler ran despite the injected error")
	}
}

// The configured base latency is added to every request.
func TestFaultLatency(t *testing.T) {
	f := NewFaultInjector(FaultConfig{Latency: 30 * time.Millisecond})
	next, calls := okHandler("page")
	rec := httptest.NewRecorder()
	start := time.Now()
	f.wrap(rec, httptest.NewRequest(http.MethodGet, "/page/x", nil), next)
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("request served in %v, want >= 30ms", d)
	}
	if *calls != 1 || rec.Body.String() != "page" {
		t.Fatalf("handler calls = %d body = %q", *calls, rec.Body.String())
	}
}

// HangRate 1 stalls every request by Hang on top of the base latency,
// then serves it normally.
func TestFaultHang(t *testing.T) {
	f := NewFaultInjector(FaultConfig{HangRate: 1, Hang: 25 * time.Millisecond})
	next, calls := okHandler("page")
	rec := httptest.NewRecorder()
	start := time.Now()
	f.wrap(rec, httptest.NewRequest(http.MethodGet, "/page/x", nil), next)
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("request served in %v, want >= 25ms (the hang)", d)
	}
	if *calls != 1 || rec.Code != http.StatusOK {
		t.Fatalf("handler calls = %d status = %d", *calls, rec.Code)
	}
}

// AbortRate 1 tears every response mid-body: the client sees roughly
// half the payload and a transport error instead of a clean EOF.
func TestFaultAbortTearsBody(t *testing.T) {
	f := NewFaultInjector(FaultConfig{AbortRate: 1})
	body := strings.Repeat("B", 4096)
	next, _ := okHandler(body)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.wrap(w, r, next)
	}))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/page/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err == nil && len(got) == len(body) {
		t.Fatal("aborted response arrived complete with a clean EOF")
	}
	if len(got) >= len(body) {
		t.Fatalf("client read %d bytes of a torn %d-byte body", len(got), len(body))
	}
}

// MaxConcurrent models a fixed worker pool: with one slot held, a second
// arrival queues (counted) and a cancelled waiter is answered 503 without
// ever reaching the handler.
func TestFaultWorkerPoolQueuesAndCancels(t *testing.T) {
	f := NewFaultInjector(FaultConfig{MaxConcurrent: 1})
	release := make(chan struct{})
	var handled int
	var mu sync.Mutex
	slow := func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		handled++
		mu.Unlock()
		<-release
		w.WriteHeader(http.StatusOK)
	}

	firstIn := make(chan struct{})
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		rec := httptest.NewRecorder()
		f.wrap(rec, httptest.NewRequest(http.MethodGet, "/page/a", nil), func(w http.ResponseWriter, r *http.Request) {
			close(firstIn)
			slow(w, r)
		})
	}()
	<-firstIn // the single worker slot is now held

	ctx, cancel := context.WithCancel(context.Background())
	rec := httptest.NewRecorder()
	secondDone := make(chan struct{})
	go func() {
		defer close(secondDone)
		req := httptest.NewRequest(http.MethodGet, "/page/b", nil).WithContext(ctx)
		f.wrap(rec, req, slow)
	}()
	// The second request must be parked in the queue, not handled.
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	if handled != 1 {
		mu.Unlock()
		t.Fatalf("handled = %d with one slot held, want 1", handled)
	}
	mu.Unlock()

	cancel()
	<-secondDone
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("cancelled waiter status = %d, want 503", rec.Code)
	}
	mu.Lock()
	if handled != 1 {
		mu.Unlock()
		t.Fatal("cancelled waiter still reached the handler")
	}
	mu.Unlock()

	close(release)
	<-firstDone
}

// The Server wraps only the page and static handlers: a fault-injected
// page request fails (and is counted), while /healthz stays clean so
// experiments can still observe the origin.
func TestServerFaultWiring(t *testing.T) {
	srv, err := New(Config{
		Repo:   testRepo(),
		Faults: NewFaultInjector(FaultConfig{ErrorRate: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Register(catalogScript()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, _ := get(t, ts.URL+"/page/catalog?categoryID=fiction", nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted page status = %d, want 500", resp.StatusCode)
	}
	if got := srv.reg.Counter("origin.fault_errors").Value(); got != 1 {
		t.Fatalf("origin.fault_errors = %d, want 1", got)
	}
	resp, _ = get(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status = %d, want 200 (admin paths are never fault-injected)", resp.StatusCode)
	}
}

// Identical seeds must produce identical fault sequences (the saturation
// experiment depends on reproducible draws).
func TestFaultDeterministicSeed(t *testing.T) {
	draw := func() []bool {
		f := NewFaultInjector(FaultConfig{ErrorRate: 0.5, Seed: 42})
		out := make([]bool, 32)
		for i := range out {
			rec := httptest.NewRecorder()
			next, _ := okHandler("x")
			f.wrap(rec, httptest.NewRequest(http.MethodGet, "/page/x", nil), next)
			out[i] = rec.Code == http.StatusInternalServerError
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged across identically-seeded injectors", i)
		}
	}
}
