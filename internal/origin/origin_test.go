package origin

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dpcache/internal/bem"
	"dpcache/internal/dpc"
	"dpcache/internal/repository"
	"dpcache/internal/script"
	"dpcache/internal/tmpl"
)

func testRepo() *repository.Repo {
	r := repository.New(repository.LatencyModel{})
	r.Put(repository.Key{Table: "cat", Row: "fiction"}, map[string]string{"title": "Fiction"})
	r.Put(repository.Key{Table: "users", Row: "bob"}, map[string]string{"name": "Bob"})
	return r
}

func catalogScript() *script.Script {
	return &script.Script{
		Name: "catalog",
		Layout: func(ctx *script.Context) []script.Block {
			blocks := []script.Block{script.Static("head", "<html>")}
			if !ctx.Anonymous() {
				blocks = append(blocks, script.Tagged("greet", 0,
					func(c *script.Context) string { return c.UserID },
					func(c *script.Context, w io.Writer) error {
						_, err := fmt.Fprintf(w, "Hello, %s!", c.Field("users", c.UserID, "name", c.UserID))
						return err
					}))
			}
			blocks = append(blocks,
				script.Tagged("cat", time.Minute,
					func(c *script.Context) string { return c.Param("categoryID", "none") },
					func(c *script.Context, w io.Writer) error {
						_, err := fmt.Fprintf(w, "[%s]", c.Field("cat", c.Param("categoryID", "none"), "title", "?"))
						return err
					}),
				script.Static("tail", "</html>"))
			return blocks
		},
	}
}

func newOrigin(t *testing.T, mon *bem.Monitor) *Server {
	t.Helper()
	srv, err := New(Config{Repo: testRepo(), Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Register(catalogScript()); err != nil {
		t.Fatal(err)
	}
	return srv
}

func get(t *testing.T, url string, headers map[string]string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestNewRequiresRepo(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil repo accepted")
	}
}

func TestRegisterValidation(t *testing.T) {
	srv := newOrigin(t, nil)
	if err := srv.Register(&script.Script{}); err == nil {
		t.Fatal("nameless script accepted")
	}
	if err := srv.Register(catalogScript()); err == nil {
		t.Fatal("duplicate script accepted")
	}
	if len(srv.Scripts()) != 1 {
		t.Fatalf("Scripts() = %v", srv.Scripts())
	}
}

func TestPlainPageWithoutMonitor(t *testing.T) {
	ts := httptest.NewServer(newOrigin(t, nil))
	defer ts.Close()
	resp, body := get(t, ts.URL+"/page/catalog?categoryID=fiction", map[string]string{HeaderUser: "bob"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get(HeaderTemplate) != "" {
		t.Fatal("no-monitor server emitted a template")
	}
	if body != "<html>Hello, Bob![Fiction]</html>" {
		t.Fatalf("body = %q", body)
	}
}

func TestDirectClientGetsPlainPageEvenWithMonitor(t *testing.T) {
	mon, _ := bem.New(bem.Config{Capacity: 16})
	ts := httptest.NewServer(newOrigin(t, mon))
	defer ts.Close()
	resp, body := get(t, ts.URL+"/page/catalog?categoryID=fiction", nil)
	if resp.Header.Get(HeaderTemplate) != "" {
		t.Fatal("non-capable client received a template")
	}
	if body != "<html>[Fiction]</html>" {
		t.Fatalf("body = %q", body)
	}
}

func TestCapableClientGetsTemplate(t *testing.T) {
	mon, _ := bem.New(bem.Config{Capacity: 16})
	ts := httptest.NewServer(newOrigin(t, mon))
	defer ts.Close()
	resp, body := get(t, ts.URL+"/page/catalog?categoryID=fiction",
		map[string]string{HeaderCapable: "1"})
	if got := resp.Header.Get(HeaderTemplate); got != "binary" {
		t.Fatalf("template header = %q", got)
	}
	if !strings.Contains(body, "[Fiction]") {
		t.Fatalf("first template should carry SET content inline: %q", body)
	}
}

func TestBypassForcesPlainPage(t *testing.T) {
	mon, _ := bem.New(bem.Config{Capacity: 16})
	ts := httptest.NewServer(newOrigin(t, mon))
	defer ts.Close()
	resp, body := get(t, ts.URL+"/page/catalog?categoryID=fiction",
		map[string]string{HeaderCapable: "1", HeaderBypass: "1"})
	if resp.Header.Get(HeaderTemplate) != "" {
		t.Fatal("bypass request received a template")
	}
	if body != "<html>[Fiction]</html>" {
		t.Fatalf("body = %q", body)
	}
}

func TestSecondTemplateShrinks(t *testing.T) {
	mon, _ := bem.New(bem.Config{Capacity: 16})
	ts := httptest.NewServer(newOrigin(t, mon))
	defer ts.Close()
	url := ts.URL + "/page/catalog?categoryID=fiction"
	_, first := get(t, url, map[string]string{HeaderCapable: "1"})
	_, second := get(t, url, map[string]string{HeaderCapable: "1"})
	if len(second) >= len(first) {
		t.Fatalf("second template (%dB) not smaller than first (%dB)", len(second), len(first))
	}
	if strings.Contains(second, "[Fiction]") {
		t.Fatal("second template still carries fragment content")
	}
}

func TestUnknownPage404(t *testing.T) {
	ts := httptest.NewServer(newOrigin(t, nil))
	defer ts.Close()
	resp, _ := get(t, ts.URL+"/page/nope", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	ts := httptest.NewServer(newOrigin(t, nil))
	defer ts.Close()
	resp, _ := get(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

// End-to-end: origin + DPC proxy. The page assembled by the proxy must be
// byte-identical to the plain page, for every user and hit/miss state —
// the central correctness property.
func TestEndToEndAssemblyIdentity(t *testing.T) {
	mon, _ := bem.New(bem.Config{Capacity: 32})
	originSrv := newOrigin(t, mon)
	originTS := httptest.NewServer(originSrv)
	defer originTS.Close()

	proxy, err := dpc.New(dpc.Config{OriginURL: originTS.URL, Capacity: 32, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	proxyTS := httptest.NewServer(proxy)
	defer proxyTS.Close()

	plainSrv := newOrigin(t, nil) // reference no-cache server (fresh repo, same content)
	plainTS := httptest.NewServer(plainSrv)
	defer plainTS.Close()

	cases := []struct {
		user string
		url  string
	}{
		{"bob", "/page/catalog?categoryID=fiction"},
		{"", "/page/catalog?categoryID=fiction"},
		{"bob", "/page/catalog?categoryID=fiction"}, // warm
		{"", "/page/catalog?categoryID=fiction"},    // warm
	}
	for i, c := range cases {
		hdr := map[string]string{}
		if c.user != "" {
			hdr[HeaderUser] = c.user
		}
		_, viaProxy := get(t, proxyTS.URL+c.url, hdr)
		_, plain := get(t, plainTS.URL+c.url, hdr)
		if viaProxy != plain {
			t.Fatalf("case %d (user=%q): proxy page %q != plain page %q", i, c.user, viaProxy, plain)
		}
	}
}

// Bob/Alice from Section 3.2.1: Alice (anonymous) must never receive Bob's
// greeting even though both use the same URL through the same proxy.
func TestBobAliceCorrectness(t *testing.T) {
	mon, _ := bem.New(bem.Config{Capacity: 32})
	originTS := httptest.NewServer(newOrigin(t, mon))
	defer originTS.Close()
	proxy, err := dpc.New(dpc.Config{OriginURL: originTS.URL, Capacity: 32, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	proxyTS := httptest.NewServer(proxy)
	defer proxyTS.Close()

	url := proxyTS.URL + "/page/catalog?categoryID=fiction"
	_, bobPage := get(t, url, map[string]string{HeaderUser: "bob"})
	if !strings.Contains(bobPage, "Hello, Bob!") {
		t.Fatalf("bob page missing greeting: %q", bobPage)
	}
	_, alicePage := get(t, url, nil)
	if strings.Contains(alicePage, "Hello") {
		t.Fatalf("alice received bob's greeting: %q", alicePage)
	}
}

// After a data update invalidates a fragment, the next page through the
// proxy must carry fresh content.
func TestInvalidationFreshness(t *testing.T) {
	repo := testRepo()
	mon, _ := bem.New(bem.Config{Capacity: 32})
	mon.BindRepo(repo)
	srv, err := New(Config{Repo: repo, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Register(catalogScript()); err != nil {
		t.Fatal(err)
	}
	originTS := httptest.NewServer(srv)
	defer originTS.Close()
	proxy, err := dpc.New(dpc.Config{OriginURL: originTS.URL, Capacity: 32, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	proxyTS := httptest.NewServer(proxy)
	defer proxyTS.Close()

	url := proxyTS.URL + "/page/catalog?categoryID=fiction"
	_, page1 := get(t, url, nil)
	if !strings.Contains(page1, "[Fiction]") {
		t.Fatalf("page1 = %q", page1)
	}
	_, _ = get(t, url, nil) // warm: served from cache

	repo.Put(repository.Key{Table: "cat", Row: "fiction"}, map[string]string{"title": "New Fiction"})
	_, page3 := get(t, url, nil)
	if !strings.Contains(page3, "[New Fiction]") {
		t.Fatalf("stale content after update: %q", page3)
	}
}

// A proxy whose store was wiped (e.g. restarted) recovers via the bypass
// fallback instead of failing, in strict mode.
func TestStaleSlotFallback(t *testing.T) {
	mon, _ := bem.New(bem.Config{Capacity: 32})
	originTS := httptest.NewServer(newOrigin(t, mon))
	defer originTS.Close()
	proxy, err := dpc.New(dpc.Config{OriginURL: originTS.URL, Capacity: 32, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	proxyTS := httptest.NewServer(proxy)
	defer proxyTS.Close()

	url := proxyTS.URL + "/page/catalog?categoryID=fiction"
	_, _ = get(t, url, nil) // populates BEM directory + proxy store
	proxy.Store().Drop(0)   // simulate proxy restart losing a slot
	proxy.Store().Drop(1)
	_, page := get(t, url, nil)
	if !strings.Contains(page, "[Fiction]") {
		t.Fatalf("fallback page wrong: %q", page)
	}
	fallbacks := proxy.Registry().Counter("dpc.stale_fallbacks").Value()
	if fallbacks == 0 {
		t.Fatal("fallback path not exercised")
	}
	// The stale report must have invalidated the wedged fragments, so
	// the next request re-SETs them and later requests hit cleanly: no
	// permanent fallback loop.
	_, _ = get(t, url, nil) // carries SETs, repopulates the store
	_, _ = get(t, url, nil) // must assemble from cache
	if got := proxy.Registry().Counter("dpc.stale_fallbacks").Value(); got != fallbacks {
		t.Fatalf("fallbacks kept growing after recovery: %d → %d", fallbacks, got)
	}
}

func TestCodecMismatchRejected(t *testing.T) {
	mon, _ := bem.New(bem.Config{Capacity: 8})
	srv, err := New(Config{Repo: testRepo(), Monitor: mon, Codec: tmpl.Text{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Register(catalogScript()); err != nil {
		t.Fatal(err)
	}
	originTS := httptest.NewServer(srv)
	defer originTS.Close()
	proxy, err := dpc.New(dpc.Config{OriginURL: originTS.URL, Capacity: 8, Codec: tmpl.Binary{}})
	if err != nil {
		t.Fatal(err)
	}
	proxyTS := httptest.NewServer(proxy)
	defer proxyTS.Close()
	resp, _ := get(t, proxyTS.URL+"/page/catalog", nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502 on codec mismatch", resp.StatusCode)
	}
}

// Text codec end-to-end (both sides configured for it).
func TestEndToEndTextCodec(t *testing.T) {
	mon, _ := bem.New(bem.Config{Capacity: 8})
	srv, err := New(Config{Repo: testRepo(), Monitor: mon, Codec: tmpl.Text{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Register(catalogScript()); err != nil {
		t.Fatal(err)
	}
	originTS := httptest.NewServer(srv)
	defer originTS.Close()
	proxy, err := dpc.New(dpc.Config{OriginURL: originTS.URL, Capacity: 8, Codec: tmpl.Text{}, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	proxyTS := httptest.NewServer(proxy)
	defer proxyTS.Close()
	for i := 0; i < 2; i++ {
		_, page := get(t, proxyTS.URL+"/page/catalog?categoryID=fiction", nil)
		if page != "<html>[Fiction]</html>" {
			t.Fatalf("iteration %d: page = %q", i, page)
		}
	}
}

// Static assets marked cacheable must be served from the proxy's static
// cache after the first fetch — the origin sees exactly one request.
func TestStaticContentCachedAtProxy(t *testing.T) {
	srv := newOrigin(t, nil)
	if err := srv.RegisterStatic("logo.png", "image/png", []byte("PNGDATA"), time.Hour); err != nil {
		t.Fatal(err)
	}
	originTS := httptest.NewServer(srv)
	defer originTS.Close()
	proxy, err := dpc.New(dpc.Config{OriginURL: originTS.URL, Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	proxyTS := httptest.NewServer(proxy)
	defer proxyTS.Close()

	for i := 0; i < 3; i++ {
		resp, body := get(t, proxyTS.URL+"/static/logo.png", nil)
		if body != "PNGDATA" {
			t.Fatalf("body = %q", body)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "image/png" {
			t.Fatalf("content type = %q", ct)
		}
		wantCache := "MISS"
		if i > 0 {
			wantCache = "STATIC"
		}
		if got := resp.Header.Get("X-Cache"); got != wantCache {
			t.Fatalf("request %d: X-Cache = %q, want %q", i, got, wantCache)
		}
	}
	reg := srv.reg
	if got := reg.Counter("origin.static_requests").Value(); got != 1 {
		t.Fatalf("origin saw %d static requests, want 1", got)
	}
}

// No-store assets must never be cached by URL.
func TestStaticNoStoreNotCached(t *testing.T) {
	srv := newOrigin(t, nil)
	if err := srv.RegisterStatic("volatile.json", "application/json", []byte("{}"), 0); err != nil {
		t.Fatal(err)
	}
	originTS := httptest.NewServer(srv)
	defer originTS.Close()
	proxy, err := dpc.New(dpc.Config{OriginURL: originTS.URL, Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	proxyTS := httptest.NewServer(proxy)
	defer proxyTS.Close()
	for i := 0; i < 2; i++ {
		resp, _ := get(t, proxyTS.URL+"/static/volatile.json", nil)
		if resp.Header.Get("X-Cache") != "MISS" {
			t.Fatalf("request %d cached a no-store asset", i)
		}
	}
	if got := srv.reg.Counter("origin.static_requests").Value(); got != 2 {
		t.Fatalf("origin saw %d requests, want 2", got)
	}
}

// Dynamic pages must NEVER be served from the URL-keyed static cache —
// that is exactly the incorrect-page failure of Section 3.2.1.
func TestDynamicPagesNeverURLCached(t *testing.T) {
	mon, _ := bem.New(bem.Config{Capacity: 16})
	originTS := httptest.NewServer(newOrigin(t, mon))
	defer originTS.Close()
	proxy, err := dpc.New(dpc.Config{OriginURL: originTS.URL, Capacity: 16, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	proxyTS := httptest.NewServer(proxy)
	defer proxyTS.Close()

	url := proxyTS.URL + "/page/catalog?categoryID=fiction"
	_, bobPage := get(t, url, map[string]string{HeaderUser: "bob"})
	if !strings.Contains(bobPage, "Hello, Bob!") {
		t.Fatal("bob page missing greeting")
	}
	// Alice, same URL: a URL-keyed cache would replay Bob's page.
	_, alicePage := get(t, url, nil)
	if strings.Contains(alicePage, "Hello") {
		t.Fatalf("dynamic page leaked through URL cache: %q", alicePage)
	}
	if proxy.Static().Len() != 0 {
		t.Fatal("dynamic response entered the static cache")
	}
}

func TestRegisterStaticValidation(t *testing.T) {
	srv := newOrigin(t, nil)
	if err := srv.RegisterStatic("", "t", nil, time.Hour); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := srv.RegisterStatic("a", "t", nil, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterStatic("a", "t", nil, time.Hour); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestStatsEndpoints(t *testing.T) {
	mon, _ := bem.New(bem.Config{Capacity: 16})
	originTS := httptest.NewServer(newOrigin(t, mon))
	defer originTS.Close()
	proxy, err := dpc.New(dpc.Config{OriginURL: originTS.URL, Capacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	proxyTS := httptest.NewServer(proxy)
	defer proxyTS.Close()

	_, _ = get(t, proxyTS.URL+"/page/catalog?categoryID=fiction", nil)

	resp, body := get(t, originTS.URL+"/stats", nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("origin stats: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var originStats map[string]any
	if err := json.Unmarshal([]byte(body), &originStats); err != nil {
		t.Fatal(err)
	}
	bemStats, ok := originStats["bem"].(map[string]any)
	if !ok || bemStats["lookups"].(float64) == 0 {
		t.Fatalf("origin stats missing bem data: %v", originStats)
	}

	resp, body = get(t, proxyTS.URL+"/_dpc/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxy stats status %d", resp.StatusCode)
	}
	var proxyStats map[string]any
	if err := json.Unmarshal([]byte(body), &proxyStats); err != nil {
		t.Fatal(err)
	}
	if proxyStats["slots_resident"].(float64) == 0 {
		t.Fatalf("proxy stats show empty store after a request: %v", proxyStats)
	}
	if _, ok := proxyStats["static"]; !ok {
		t.Fatal("proxy stats missing static cache section")
	}
}
