package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// BenchRecord is the serialized form of one experiment run — a
// BENCH_<id>.json trajectory file. Committing these per PR makes
// performance drift visible in review: the rows are the same series the
// table prints, and the options block says exactly how the numbers were
// produced, so two records with equal options are directly comparable.
type BenchRecord struct {
	// ID is the experiment ID ("pipeline", "memory", …).
	ID string `json:"id"`
	// Title is the table's human title.
	Title string `json:"title"`
	// GeneratedAt is the run's UTC wall-clock time (RFC 3339).
	GeneratedAt string `json:"generated_at"`
	// Options echoes the knobs that shaped the run.
	Options BenchOptions `json:"options"`
	// Columns and Rows mirror the rendered table.
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// Notes carries the table's caveats (measured hit ratios, …).
	Notes []string `json:"notes,omitempty"`
}

// BenchOptions is the reproducibility-relevant subset of Options.
type BenchOptions struct {
	Requests    int   `json:"requests"`
	Warmup      int   `json:"warmup"`
	Concurrency int   `json:"concurrency"`
	Seed        int64 `json:"seed"`
}

// WriteBench serializes one experiment result as dir/BENCH_<id>.json and
// returns the written path. The file is rewritten whole each run; diffs
// against the committed copy are the trajectory.
func WriteBench(dir string, tab Table, opts Options) (string, error) {
	opts = opts.withDefaults()
	rec := BenchRecord{
		ID:          tab.ID,
		Title:       tab.Title,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Options: BenchOptions{
			Requests:    opts.Requests,
			Warmup:      opts.Warmup,
			Concurrency: opts.Concurrency,
			Seed:        opts.Seed,
		},
		Columns: tab.Columns,
		Rows:    tab.Rows,
		Notes:   tab.Notes,
	}
	raw, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", tab.ID))
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
