package experiments

import (
	"fmt"
	"time"

	"dpcache/internal/core"
	"dpcache/internal/netsim"
	"dpcache/internal/repository"
	"dpcache/internal/site"
	"dpcache/internal/tmpl"
	"dpcache/internal/workload"
)

// The ablations quantify the design decisions DESIGN.md calls out. They
// are not paper artifacts; they justify implementation choices the paper
// leaves open.

// ablationPoint runs the synthetic site at the Table 2 operating point
// under a specific system configuration and reports origin bytes, request
// latency, and fallback counts.
type ablationPoint struct {
	wireOut     int64
	meanLatency time.Duration
	fallbacks   int64
}

func runAblation(codec tmpl.Codec, strict bool, churnProb float64, opts Options) (ablationPoint, error) {
	sys, err := core.NewSystem(core.Config{
		Capacity:         256,
		Codec:            codec,
		Strict:           strict,
		ForcedMissProb:   churnProb,
		Seed:             opts.Seed,
		ExtraHeaderBytes: opts.ExtraHeaderBytes,
	}, core.ModeCached)
	if err != nil {
		return ablationPoint{}, err
	}
	sc, _, err := site.BuildSynthetic(site.DefaultSynthetic(), sys.Repo)
	if err != nil {
		return ablationPoint{}, err
	}
	if err := sys.Register(sc); err != nil {
		return ablationPoint{}, err
	}
	if err := sys.Start(); err != nil {
		return ablationPoint{}, err
	}
	defer sys.Close()

	z, err := workload.NewZipf(10, opts.ZipfAlpha)
	if err != nil {
		return ablationPoint{}, err
	}
	users, err := workload.NewUserPool(0, 0)
	if err != nil {
		return ablationPoint{}, err
	}
	d := &workload.Driver{
		BaseURL:     sys.FrontURL(),
		Gen:         workload.PageGenerator(z, users, "/page/synth"),
		Concurrency: opts.Concurrency,
		Seed:        opts.Seed,
	}
	if _, err := d.Run(opts.Warmup + 10); err != nil {
		return ablationPoint{}, err
	}
	sys.Meter.Reset()
	fallbacks0 := sys.Registry.Counter("dpc.stale_fallbacks").Value()
	res, err := d.Run(opts.Requests)
	if err != nil {
		return ablationPoint{}, err
	}
	if res.Errors > 0 {
		return ablationPoint{}, fmt.Errorf("%d errors", res.Errors)
	}
	return ablationPoint{
		wireOut:     netsim.DefaultOverhead().WireBytesOut(sys.Meter),
		meanLatency: res.Latency.Mean(),
		fallbacks:   sys.Registry.Counter("dpc.stale_fallbacks").Value() - fallbacks0,
	}, nil
}

// AblationCodec compares the binary and text template codecs on the full
// request path (DESIGN.md decision 1): same site, same workload, measured
// origin bytes and latency.
func AblationCodec(opts Options) (Table, error) {
	opts = opts.withDefaults()
	t := Table{
		ID:      "ablation-codec",
		Title:   "Ablation: template codec (binary vs text) at the Table 2 operating point",
		Columns: []string{"codec", "origin wire bytes/req", "mean latency"},
	}
	for _, codec := range []tmpl.Codec{tmpl.Binary{}, tmpl.Text{}} {
		// No churn: the codec comparison is about tag encoding on the
		// steady-state hit path, so invalidation noise is excluded.
		pt, err := runAblation(codec, true, 0, opts)
		if err != nil {
			return t, fmt.Errorf("codec %s: %w", codec.Name(), err)
		}
		t.Rows = append(t.Rows, []string{
			codec.Name(),
			fmt.Sprint(pt.wireOut / int64(opts.Requests)),
			pt.meanLatency.Round(time.Microsecond).String(),
		})
	}
	t.Notes = append(t.Notes, "binary tags are ~2-3x smaller; at 1KB fragments the wire difference is small, which is why the paper could treat g as a 10-byte constant")
	return t, nil
}

// AblationStrict compares strict (generation-checked) and fast assembly
// under invalidation churn (DESIGN.md decision 4). Strict mode pays a
// per-GET comparison and occasional fallbacks; fast mode risks serving a
// reused slot's bytes.
func AblationStrict(opts Options) (Table, error) {
	opts = opts.withDefaults()
	t := Table{
		ID:      "ablation-strict",
		Title:   "Ablation: strict vs fast assembly under 20% invalidation churn",
		Columns: []string{"mode", "origin wire bytes/req", "mean latency", "stale fallbacks"},
	}
	for _, strict := range []bool{true, false} {
		name := "fast"
		if strict {
			name = "strict"
		}
		pt, err := runAblation(tmpl.Binary{}, strict, 0.2, opts)
		if err != nil {
			return t, fmt.Errorf("%s: %w", name, err)
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprint(pt.wireOut / int64(opts.Requests)),
			pt.meanLatency.Round(time.Microsecond).String(),
			fmt.Sprint(pt.fallbacks),
		})
	}
	t.Notes = append(t.Notes, "fast mode never falls back but may serve stale bytes during slot reuse races; strict mode is the default")
	return t, nil
}

// AblationLatencyModel sweeps the repository's simulated query delay to
// show where the DPC's response-time win comes from: the deeper the
// back-end workflow (Figure 1), the larger the cached-path advantage.
func AblationLatencyModel(opts Options) (Table, error) {
	opts = opts.withDefaults()
	t := Table{
		ID:      "ablation-latency",
		Title:   "Ablation: response-time win vs back-end query delay (portal site)",
		Columns: []string{"query delay", "no-cache mean", "cached mean", "speedup"},
	}
	for _, delay := range []time.Duration{0, time.Millisecond, 4 * time.Millisecond} {
		var means [2]time.Duration
		for i, mode := range []core.Mode{core.ModeNoCache, core.ModeCached} {
			sys, err := core.NewSystem(core.Config{
				Capacity: 1024,
				Strict:   true,
				Seed:     opts.Seed,
				Latency:  repository.LatencyModel{QueryDelay: delay},
			}, mode)
			if err != nil {
				return t, err
			}
			sc, err := site.BuildPortal(site.DefaultPortal(), sys.Repo)
			if err != nil {
				return t, err
			}
			if err := sys.Register(sc); err != nil {
				return t, err
			}
			if err := sys.Start(); err != nil {
				return t, err
			}
			users, _ := workload.NewUserPool(50, 1)
			z, _ := workload.NewZipf(1, 0)
			d := &workload.Driver{
				BaseURL:     sys.FrontURL(),
				Gen:         workload.PageGenerator(z, users, "/page/portal"),
				Concurrency: opts.Concurrency,
				Seed:        opts.Seed,
			}
			warm := opts.Warmup
			if warm < 50 {
				warm = 50
			}
			if _, err := d.Run(warm); err != nil {
				sys.Close()
				return t, err
			}
			res, err := d.Run(opts.Requests)
			sys.Close()
			if err != nil {
				return t, err
			}
			means[i] = res.Latency.Mean()
		}
		speedup := float64(means[0]) / float64(means[1])
		t.Rows = append(t.Rows, []string{
			delay.String(),
			means[0].Round(10 * time.Microsecond).String(),
			means[1].Round(10 * time.Microsecond).String(),
			fmt.Sprintf("%.1fx", speedup),
		})
	}
	t.Notes = append(t.Notes, "content-generation delay, not transfer time, dominates the case-study response-time reduction — matching Section 2.2's bottleneck analysis")
	return t, nil
}
