// Package experiments regenerates every table and figure in the paper's
// evaluation (Sections 5 and 6), plus the Result 1 break-even check and
// the deployment case study.
//
// Each runner returns a Table whose rows are the series the paper plots.
// Analytical figures (2a, 2b, 3a) come straight from the closed-form model
// in package analytical; experimental figures (3b, 5, 6) stand up a live
// origin+BEM+DPC system per point, drive it with a Zipf workload, and
// measure real bytes on the origin↔DPC link the way the paper's Sniffer
// did (application bytes plus modeled TCP/IP overhead).
package experiments

import (
	"fmt"
	"strings"
)

// Table is one regenerated paper artifact.
type Table struct {
	// ID matches DESIGN.md's experiment index ("fig2a", "table2", …).
	ID string
	// Title describes the artifact.
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows hold formatted cells.
	Rows [][]string
	// Notes records caveats (measured hit ratios, substitutions, …).
	Notes []string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Options tune the live-system experiments. Analytical runners ignore
// them.
type Options struct {
	// Requests is the measured-window request count per point per mode.
	Requests int
	// Warmup requests run before the meter resets (steady-state, as in
	// the paper's "in steady-state …" setup).
	Warmup int
	// Concurrency is the client worker count.
	Concurrency int
	// Seed drives all randomness.
	Seed int64
	// ExtraHeaderBytes pads origin headers toward Table 2's f = 500.
	ExtraHeaderBytes int
	// ZipfAlpha shapes page popularity.
	ZipfAlpha float64
	// Coalesce enables single-flight broadcast coalescing at the measured
	// system's proxy (SystemConfig.Coalesce) in the live runners.
	Coalesce bool
	// Stream enables streaming assembly at the measured system's proxy
	// (SystemConfig.Stream) in the live runners.
	Stream bool
	// StoreBackend selects the measured proxy's fragment-store backend
	// ("" = the paper-faithful slot store; "sharded" enables budgets).
	StoreBackend string
	// StoreByteBudget bounds the measured proxy's resident fragment
	// bytes (0 = unbounded; requires StoreBackend "sharded" and a
	// StoreEviction policy). The memory experiment sweeps this.
	StoreByteBudget int64
	// StoreEviction is the sharded store's policy: "none", "lru", or
	// "gdsf".
	StoreEviction string
	// StoreDiskDir is the tiered backend's heap-file directory
	// (SystemConfig.StoreDiskDir); required when StoreBackend is
	// "tiered". The memory experiment's disk rows point this at a
	// temporary directory per point.
	StoreDiskDir string
	// StoreDiskBudget bounds the tiered backend's disk-resident bytes
	// (0 = unbounded).
	StoreDiskBudget int64
	// PageCache mounts the whole-page cache stage at the measured
	// proxy (SystemConfig.PageCache) in the live runners.
	PageCache bool
}

// DefaultOptions sizes runs for the CLI: large enough for stable numbers.
func DefaultOptions() Options {
	return Options{Requests: 400, Warmup: 40, Concurrency: 4, Seed: 2002, ExtraHeaderBytes: 300, ZipfAlpha: 1}
}

// QuickOptions sizes runs for -short tests and smoke benchmarks.
func QuickOptions() Options {
	return Options{Requests: 60, Warmup: 20, Concurrency: 4, Seed: 2002, ExtraHeaderBytes: 300, ZipfAlpha: 1}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.Requests <= 0 {
		o.Requests = d.Requests
	}
	if o.Warmup <= 0 {
		o.Warmup = d.Warmup
	}
	if o.Concurrency <= 0 {
		o.Concurrency = d.Concurrency
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.ZipfAlpha < 0 {
		o.ZipfAlpha = d.ZipfAlpha
	}
	return o
}

// Registry maps experiment IDs to runners so the CLI and the benchmarks
// share one catalogue.
type Runner func(Options) (Table, error)

// All returns the full experiment catalogue in presentation order.
func All() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"table2", func(Options) (Table, error) { return Table2(), nil }},
		{"fig2a", func(Options) (Table, error) { return Fig2a(), nil }},
		{"fig2b", func(Options) (Table, error) { return Fig2b(), nil }},
		{"fig3a", func(Options) (Table, error) { return Fig3a(), nil }},
		{"result1", func(Options) (Table, error) { return Result1(), nil }},
		{"fig3b", Fig3b},
		{"fig5", Fig5},
		{"fig6", Fig6},
		{"memory", Memory},
		{"pipeline", Pipeline},
		{"casestudy", CaseStudy},
		{"baselines", Baselines},
		{"ablation-codec", AblationCodec},
		{"ablation-strict", AblationStrict},
		{"ablation-latency", AblationLatencyModel},
		{"saturation", Saturation},
	}
}

// ByID returns the runner for one experiment.
func ByID(id string) (Runner, error) {
	for _, e := range All() {
		if e.ID == id {
			return e.Run, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
