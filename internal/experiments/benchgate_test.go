package experiments

// Gate over the committed BENCH_<id>.json trajectory files: CI fails if
// a committed record is malformed or drifts from the BenchRecord schema
// (stale fields left behind after a schema change, hand-edits, truncated
// writes). The experiments themselves rewrite these files; this test
// only checks that what is committed still parses as what the code
// writes today.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// repoRoot walks up from the package directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above package directory")
		}
		dir = parent
	}
}

func TestCommittedBenchRecords(t *testing.T) {
	root := repoRoot(t)
	paths, err := filepath.Glob(filepath.Join(root, "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Skip("no committed BENCH_*.json records")
	}
	for _, path := range paths {
		name := filepath.Base(path)
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}

			// Strict decode: a field the current schema does not declare
			// means the record predates a schema change and must be
			// regenerated, not silently half-read.
			dec := json.NewDecoder(bytes.NewReader(raw))
			dec.DisallowUnknownFields()
			var rec BenchRecord
			if err := dec.Decode(&rec); err != nil {
				t.Fatalf("%s does not parse as BenchRecord: %v", name, err)
			}
			var trailing json.RawMessage
			if err := dec.Decode(&trailing); err == nil || !strings.Contains(err.Error(), "EOF") {
				t.Fatalf("%s has trailing data after the record", name)
			}

			if want := "BENCH_" + rec.ID + ".json"; name != want {
				t.Errorf("id %q does not match filename (want %s)", rec.ID, want)
			}
			if rec.Title == "" {
				t.Error("empty title")
			}
			if _, err := time.Parse(time.RFC3339, rec.GeneratedAt); err != nil {
				t.Errorf("generated_at %q is not RFC 3339: %v", rec.GeneratedAt, err)
			}
			if rec.Options.Requests <= 0 || rec.Options.Concurrency <= 0 {
				t.Errorf("implausible options %+v: requests and concurrency must be positive", rec.Options)
			}
			if rec.Options.Warmup < 0 {
				t.Errorf("negative warmup %d", rec.Options.Warmup)
			}
			if len(rec.Columns) == 0 {
				t.Error("no columns")
			}
			if len(rec.Rows) == 0 {
				t.Error("no rows")
			}
			for i, row := range rec.Rows {
				if len(row) != len(rec.Columns) {
					t.Errorf("row %d has %d cells, table has %d columns", i, len(row), len(rec.Columns))
				}
			}
		})
	}
}
