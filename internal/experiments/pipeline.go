package experiments

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"dpcache/internal/core"
	"dpcache/internal/repository"
	"dpcache/internal/site"
	"dpcache/internal/workload"
)

// Pipeline measures what the request-pipeline knobs (single-flight
// broadcast coalescing, streaming assembly) buy under the Figure 5
// workload: origin fan-in (origin fetches per served response) and the
// time-to-first-byte a parked follower sees when a burst of identical
// requests lands on one page. With the completed-page handoff the follower
// TTFB equals the leader's full page time; with live attach it tracks the
// leader's first chunk.
func Pipeline(opts Options) (Table, error) {
	opts = opts.withDefaults()
	configs := []struct {
		name      string
		coalesce  bool
		stream    bool
		pagecache bool
	}{
		{"no coalesce", false, false, false},
		{"coalesce (barrier)", true, false, false},
		{"coalesce+stream (live attach)", true, true, false},
		{"coalesce+stream+pagecache", true, true, true},
	}
	t := Table{
		ID:    "pipeline",
		Title: "Pipeline knobs under the Figure 5 workload: origin fan-in and follower TTFB",
		Columns: []string{
			"config", "origin req/resp", "coalesced %", "mean latency", "burst follower TTFB",
		},
	}
	for _, c := range configs {
		fanIn, coalesced, mean, ttfb, err := runPipelinePoint(opts, c.coalesce, c.stream, c.pagecache)
		if err != nil {
			return t, fmt.Errorf("pipeline %s: %w", c.name, err)
		}
		t.Rows = append(t.Rows, []string{
			c.name, f3(fanIn), f1(coalesced),
			mean.Round(10 * time.Microsecond).String(),
			ttfb.Round(10 * time.Microsecond).String(),
		})
	}
	t.Notes = append(t.Notes,
		"origin req/resp < 1 means coalescing collapsed concurrent identical fetches (origin fan-in stays 1 per flight)",
		"burst follower TTFB: mean first-byte latency of followers that join while a leader's fetch of the same page is in flight",
		"the pagecache row serves anonymous revisits whole from the page tier, so origin fan-in falls below the coalesce-only rows")
	return t, nil
}

// runPipelinePoint stands up a cached system with the given pipeline knobs,
// drives the standard Zipf workload, then probes follower TTFB with a
// burst of identical requests against one page.
func runPipelinePoint(opts Options, coalesce, stream, pagecache bool) (fanIn, coalescedPct float64, mean, ttfb time.Duration, err error) {
	siteCfg := site.DefaultSynthetic()
	sys, err := core.NewSystem(core.Config{
		Capacity:         2 * siteCfg.Pages * siteCfg.FragmentsPerPage,
		Strict:           true,
		ForcedMissProb:   0.2, // the Figure 5 h=0.8 operating point
		Seed:             opts.Seed,
		Latency:          repository.LatencyModel{QueryDelay: 200 * time.Microsecond},
		ExtraHeaderBytes: opts.ExtraHeaderBytes,
		Coalesce:         coalesce,
		Stream:           stream,
		PageCache:        pagecache,
	}, core.ModeCached)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	sc, _, err := site.BuildSynthetic(siteCfg, sys.Repo)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if err := sys.Register(sc); err != nil {
		return 0, 0, 0, 0, err
	}
	if err := sys.Start(); err != nil {
		return 0, 0, 0, 0, err
	}
	defer sys.Close()

	for p := 0; p < siteCfg.Pages; p++ {
		if err := fetchOnce(fmt.Sprintf("%s/page/synth?page=%d", sys.FrontURL(), p)); err != nil {
			return 0, 0, 0, 0, fmt.Errorf("warmup fetch: %w", err)
		}
	}

	z, err := workload.NewZipf(siteCfg.Pages, opts.ZipfAlpha)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	users, err := workload.NewUserPool(0, 0)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	driver := &workload.Driver{
		BaseURL:     sys.FrontURL(),
		Gen:         workload.PageGenerator(z, users, "/page/synth"),
		Concurrency: opts.Concurrency,
		Seed:        opts.Seed,
	}
	origin0 := sys.Registry.Counter("origin.requests").Value()
	coalesced0 := sys.Registry.Counter("dpc.coalesced").Value()
	res, err := driver.Run(opts.Requests)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if res.Errors > 0 {
		return 0, 0, 0, 0, fmt.Errorf("%d of %d requests failed", res.Errors, res.Requests)
	}
	fanIn = float64(sys.Registry.Counter("origin.requests").Value()-origin0) / float64(res.Requests)
	coalescedPct = 100 * float64(sys.Registry.Counter("dpc.coalesced").Value()-coalesced0) / float64(res.Requests)
	mean = res.Latency.Mean()

	ttfb, err = burstFollowerTTFB(sys.FrontURL()+"/page/synth?page=0", 4)
	return fanIn, coalescedPct, mean, ttfb, err
}

// burstFollowerTTFB fires one leader request, then followers while the
// leader is presumed in flight, and returns the followers' mean
// time-to-first-body-byte.
func burstFollowerTTFB(url string, followers int) (time.Duration, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	drain := func() error {
		resp, err := client.Get(url)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	leaderErr := make(chan error, 1)
	go func() { leaderErr <- drain() }()

	var mu sync.Mutex
	var total time.Duration
	var firstErr error
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			resp, err := client.Get(url)
			if err == nil {
				br := bufio.NewReader(resp.Body)
				_, err = br.ReadByte()
				elapsed := time.Since(start)
				if err == nil {
					mu.Lock()
					total += elapsed
					mu.Unlock()
					_, err = io.Copy(io.Discard, br)
				}
				resp.Body.Close()
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if err := <-leaderErr; err != nil {
		return 0, err
	}
	if firstErr != nil {
		return 0, firstErr
	}
	return total / time.Duration(followers), nil
}
