package experiments

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"dpcache/internal/core"
	"dpcache/internal/dpc"
	"dpcache/internal/repository"
	"dpcache/internal/site"
	"dpcache/internal/tmpl"
	"dpcache/internal/tmplplan"
	"dpcache/internal/workload"
)

// Pipeline measures what the request-pipeline knobs (single-flight
// broadcast coalescing, streaming assembly) buy under the Figure 5
// workload: origin fan-in (origin fetches per served response) and the
// time-to-first-byte a parked follower sees when a burst of identical
// requests lands on one page. With the completed-page handoff the follower
// TTFB equals the leader's full page time; with live attach it tracks the
// leader's first chunk.
//
// Two extensions ride along: a paper-style *concurrency sweep* (fan-in
// and follower TTFB vs offered concurrency — coalescing's win grows with
// load, since every extra concurrent client of a hot page is one more
// collapsed fetch), and an *invalidation* pair measuring the page tier's
// staleness window after a fragment dies — bounded by the TTL alone
// without the coherency fabric, and by one request with it.
func Pipeline(opts Options) (Table, error) {
	opts = opts.withDefaults()
	configs := []struct {
		name      string
		coalesce  bool
		stream    bool
		pagecache bool
	}{
		{"no coalesce", false, false, false},
		{"coalesce (barrier)", true, false, false},
		{"coalesce+stream (live attach)", true, true, false},
		{"coalesce+stream+pagecache", true, true, true},
	}
	t := Table{
		ID:    "pipeline",
		Title: "Pipeline knobs under the Figure 5 workload: origin fan-in, follower TTFB, invalidation staleness",
		Columns: []string{
			"config", "origin req/resp", "coalesced %", "mean latency", "burst follower TTFB", "staleness window",
		},
	}
	for _, c := range configs {
		fanIn, coalesced, mean, ttfb, err := runPipelinePoint(opts, c.coalesce, c.stream, c.pagecache)
		if err != nil {
			return t, fmt.Errorf("pipeline %s: %w", c.name, err)
		}
		t.Rows = append(t.Rows, []string{
			c.name, f3(fanIn), f1(coalesced),
			mean.Round(10 * time.Microsecond).String(),
			ttfb.Round(10 * time.Microsecond).String(),
			"-",
		})
	}
	// Concurrency sweep: same knobs (coalesce+stream), rising offered
	// concurrency. Fan-in per response falls as bursts deepen.
	for _, conc := range []int{2, 8, 16} {
		o := opts
		o.Concurrency = conc
		fanIn, coalesced, mean, ttfb, err := runPipelinePoint(o, true, true, false)
		if err != nil {
			return t, fmt.Errorf("pipeline sweep c=%d: %w", conc, err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("coalesce+stream @c=%d", conc), f3(fanIn), f1(coalesced),
			mean.Round(10 * time.Microsecond).String(),
			ttfb.Round(10 * time.Microsecond).String(),
			"-",
		})
	}
	// Assemble stage: per-page assembly cost by fragments-per-page,
	// template interpreter vs the compiled plan cache (warm), sequential
	// vs parallel fragment resolution. In-process against a resident
	// store, so it isolates the decode-and-dispatch overhead the plan
	// cache removes.
	for _, frags := range []int{4, 16, 64} {
		for _, m := range []struct {
			name        string
			compiled    bool
			parallelism int
		}{
			{"interpreter", false, 0},
			{"compiled", true, 1},
			{"compiled par=4", true, 4},
		} {
			mean, err := runAssemblePoint(opts, frags, m.compiled, m.parallelism)
			if err != nil {
				return t, fmt.Errorf("pipeline assemble f=%d %s: %w", frags, m.name, err)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("assemble f=%d %s", frags, m.name), "-", "-",
				mean.Round(10 * time.Nanosecond).String(),
				"-", "-",
			})
		}
	}
	// Invalidation: how long a dead fragment's bytes keep being served
	// from the page tier, with and without the invalidation fabric.
	for _, inv := range []struct {
		name   string
		fabric bool
	}{
		{"invalidation (ttl only)", false},
		{"invalidation (fabric)", true},
	} {
		window, err := runInvalidationPoint(opts, inv.fabric)
		if err != nil {
			return t, fmt.Errorf("pipeline %s: %w", inv.name, err)
		}
		t.Rows = append(t.Rows, []string{
			inv.name, "-", "-", "-", "-",
			window.Round(time.Millisecond).String(),
		})
	}
	t.Notes = append(t.Notes,
		"origin req/resp < 1 means coalescing collapsed concurrent identical fetches (origin fan-in stays 1 per flight)",
		"burst follower TTFB: mean first-byte latency of followers that join while a leader's fetch of the same page is in flight",
		"the pagecache row serves anonymous revisits whole from the page tier, so origin fan-in falls below the coalesce-only rows",
		"@c=N rows sweep offered concurrency with coalesce+stream: deeper bursts collapse more identical fetches per flight",
		fmt.Sprintf("staleness window: elapsed time a %v-TTL page tier kept serving a dead fragment's bytes after a repository write; the fabric drops the page on the invalidation itself, so its window is one in-flight request, not the TTL", invalidationTTL),
		"assemble rows: in-process mean per-page assembly time (512B fragments, resident store) — the compiled rows run a warm plan cache, so the per-request template decode disappears; par=4 adds the bounded prefetch fan-out, which pays only when fragment reads are slower than goroutine handoff (it loses against a resident in-memory store, as here)")
	return t, nil
}

// runAssemblePoint measures mean per-page assembly time for a template of
// frags GET instructions against a resident store: the interpreter
// (per-request streaming decode) or the compiled plan path (warm plan
// cache, optionally with parallel fragment prefetch).
func runAssemblePoint(opts Options, frags int, compiled bool, parallelism int) (time.Duration, error) {
	store, err := dpc.NewStore(frags + 1)
	if err != nil {
		return 0, err
	}
	codec := tmpl.Binary{}
	content := bytes.Repeat([]byte("f"), 512)
	var buf bytes.Buffer
	enc := codec.NewEncoder(&buf)
	for k := 0; k < frags; k++ {
		if err := store.Set(uint32(k), 1, content); err != nil {
			return 0, err
		}
		if err := enc.Literal([]byte("<div>")); err != nil {
			return 0, err
		}
		if err := enc.Get(uint32(k), 1); err != nil {
			return 0, err
		}
		if err := enc.Literal([]byte("</div>")); err != nil {
			return 0, err
		}
	}
	if err := enc.Flush(); err != nil {
		return 0, err
	}
	body := buf.Bytes()

	iters := 5 * opts.Requests
	if iters < 500 {
		iters = 500
	}
	if !compiled {
		asm := dpc.NewAssembler(store, codec, true)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := asm.Assemble(io.Discard, bytes.NewReader(body)); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(iters), nil
	}
	cache, err := tmplplan.NewCache(codec, tmplplan.CacheConfig{})
	if err != nil {
		return 0, err
	}
	ex := &tmplplan.Exec{
		Store: store, Strict: true, Codec: codec,
		Plans: cache, Parallelism: parallelism,
	}
	if _, _, err := cache.Get(body); err != nil { // warm the plan cache
		return 0, err
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		plan, _, err := cache.Get(body)
		if err != nil {
			return 0, err
		}
		if _, err := ex.Run(plan, io.Discard, nil); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(iters), nil
}

// invalidationTTL is the deliberately long page-tier TTL the invalidation
// rows use: long enough that a TTL-bounded tier visibly serves stale, yet
// short enough that the no-fabric row terminates quickly.
const invalidationTTL = 300 * time.Millisecond

// runInvalidationPoint warms an anonymous page into the page tier,
// invalidates one of its fragments through the repository's update bus
// (the BEM's data-dependency path), and measures how long the front keeps
// serving the dead fragment's bytes.
func runInvalidationPoint(opts Options, fabric bool) (time.Duration, error) {
	siteCfg := site.DefaultSynthetic()
	sys, err := core.NewSystem(core.Config{
		Capacity:         2 * siteCfg.Pages * siteCfg.FragmentsPerPage,
		Strict:           true,
		Seed:             opts.Seed,
		ExtraHeaderBytes: opts.ExtraHeaderBytes,
		Coalesce:         true,
		Stream:           true,
		PageCache:        true,
		PageCacheTTL:     invalidationTTL,
		Fabric:           fabric,
	}, core.ModeCached)
	if err != nil {
		return 0, err
	}
	sc, _, err := site.BuildSynthetic(siteCfg, sys.Repo)
	if err != nil {
		return 0, err
	}
	if err := sys.Register(sc); err != nil {
		return 0, err
	}
	if err := sys.Start(); err != nil {
		return 0, err
	}
	defer sys.Close()

	url := sys.FrontURL() + "/page/synth?page=0"
	fetch := func() (string, error) {
		resp, err := http.Get(url)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return string(b), err
	}
	// Warm until the page tier serves the entry (fill happens after the
	// first response completes).
	if _, err := fetch(); err != nil {
		return 0, err
	}
	if _, err := fetch(); err != nil {
		return 0, err
	}

	// Kill fragment 0 (cacheable, first fragment of page 0) via a
	// repository write, then measure time-to-freshness at the front.
	site.TouchFragment(sys.Repo, 0, "2")
	start := time.Now()
	deadline := start.Add(5 * time.Second)
	for {
		body, err := fetch()
		if err != nil {
			return 0, err
		}
		if strings.Contains(body, "<!--frag 0 v2-->") {
			return time.Since(start), nil
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("front never served the fresh fragment within %v", 5*time.Second)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// runPipelinePoint stands up a cached system with the given pipeline knobs,
// drives the standard Zipf workload, then probes follower TTFB with a
// burst of identical requests against one page.
func runPipelinePoint(opts Options, coalesce, stream, pagecache bool) (fanIn, coalescedPct float64, mean, ttfb time.Duration, err error) {
	siteCfg := site.DefaultSynthetic()
	sys, err := core.NewSystem(core.Config{
		Capacity:         2 * siteCfg.Pages * siteCfg.FragmentsPerPage,
		Strict:           true,
		ForcedMissProb:   0.2, // the Figure 5 h=0.8 operating point
		Seed:             opts.Seed,
		Latency:          repository.LatencyModel{QueryDelay: 200 * time.Microsecond},
		ExtraHeaderBytes: opts.ExtraHeaderBytes,
		Coalesce:         coalesce,
		Stream:           stream,
		PageCache:        pagecache,
	}, core.ModeCached)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	sc, _, err := site.BuildSynthetic(siteCfg, sys.Repo)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if err := sys.Register(sc); err != nil {
		return 0, 0, 0, 0, err
	}
	if err := sys.Start(); err != nil {
		return 0, 0, 0, 0, err
	}
	defer sys.Close()

	for p := 0; p < siteCfg.Pages; p++ {
		if err := fetchOnce(fmt.Sprintf("%s/page/synth?page=%d", sys.FrontURL(), p)); err != nil {
			return 0, 0, 0, 0, fmt.Errorf("warmup fetch: %w", err)
		}
	}

	z, err := workload.NewZipf(siteCfg.Pages, opts.ZipfAlpha)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	users, err := workload.NewUserPool(0, 0)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	driver := &workload.Driver{
		BaseURL:     sys.FrontURL(),
		Gen:         workload.PageGenerator(z, users, "/page/synth"),
		Concurrency: opts.Concurrency,
		Seed:        opts.Seed,
	}
	origin0 := sys.Registry.Counter("origin.requests").Value()
	coalesced0 := sys.Registry.Counter("dpc.coalesced").Value()
	res, err := driver.Run(opts.Requests)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if res.Errors > 0 {
		return 0, 0, 0, 0, fmt.Errorf("%d of %d requests failed", res.Errors, res.Requests)
	}
	fanIn = float64(sys.Registry.Counter("origin.requests").Value()-origin0) / float64(res.Requests)
	coalescedPct = 100 * float64(sys.Registry.Counter("dpc.coalesced").Value()-coalesced0) / float64(res.Requests)
	mean = res.Latency.Mean()

	ttfb, err = burstFollowerTTFB(sys.FrontURL()+"/page/synth?page=0", 4)
	return fanIn, coalescedPct, mean, ttfb, err
}

// burstFollowerTTFB fires one leader request, then followers while the
// leader is presumed in flight, and returns the followers' mean
// time-to-first-body-byte.
func burstFollowerTTFB(url string, followers int) (time.Duration, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	drain := func() error {
		resp, err := client.Get(url)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	leaderErr := make(chan error, 1)
	go func() { leaderErr <- drain() }()

	var mu sync.Mutex
	var total time.Duration
	var firstErr error
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			resp, err := client.Get(url)
			if err == nil {
				br := bufio.NewReader(resp.Body)
				_, err = br.ReadByte()
				elapsed := time.Since(start)
				if err == nil {
					mu.Lock()
					total += elapsed
					mu.Unlock()
					_, err = io.Copy(io.Discard, br)
				}
				resp.Body.Close()
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if err := <-leaderErr; err != nil {
		return 0, err
	}
	if firstErr != nil {
		return 0, firstErr
	}
	return total / time.Duration(followers), nil
}
