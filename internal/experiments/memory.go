package experiments

import (
	"fmt"

	"dpcache/internal/core"
	"dpcache/internal/repository"
	"dpcache/internal/site"
)

// Memory extends the paper's Figure 5 along the axis it holds fixed:
// cache memory. Figure 5 sweeps the hit ratio h with an unbounded store;
// here the store's byte budget is swept instead — the hit ratio becomes a
// *consequence* of memory pressure and the eviction policy rather than a
// forced parameter. Each point stands up a cached system on the sharded
// backend with a budget set to a fraction of the synthetic site's nominal
// working set and measures the fragment store's GET hit ratio, the
// eviction and stale-bypass activity, and the origin wire bytes — for LRU
// and GDSF side by side.
//
// The mechanism under pressure: an evicted slot makes the next template
// GET stale, the proxy recovers with a bypass fetch (a full page on the
// origin link, the B_NC cost), and the BEM re-learns the slot. Savings
// therefore degrade smoothly from the Figure 5 h→1 operating point toward
// the no-cache baseline as the budget shrinks.
//
// The site is Table 2's structure with *heterogeneous* fragment sizes (a
// heavy-tailed 1×/1×/4×/16× cycle over the 1KB base): with uniform sizes
// every eviction costs the same and GDSF degenerates to LRU-with-extra-
// steps; with a size spread GDSF keeps many small hot fragments where
// LRU holds few large ones, which is the regime the policy exists for.
func Memory(opts Options) (Table, error) {
	opts = opts.withDefaults()
	siteCfg := site.DefaultSynthetic()
	siteCfg.FragmentSizeFactors = []int{1, 1, 4, 16}
	workingSet := siteCfg.TotalFragmentBytes()

	nc, _, err := runPoint(core.ModeNoCache, siteCfg, 0, opts, repository.LatencyModel{})
	if err != nil {
		return Table{}, fmt.Errorf("memory no-cache: %w", err)
	}

	t := Table{
		ID:    "memory",
		Title: "Hit ratio and savings vs store byte budget (Figure 5 extension: LRU vs GDSF)",
		Columns: []string{
			"policy", "budget KB", "of working set", "store hit", "evictions", "stale bypasses", "savings %",
		},
	}

	run := func(policy string, budget int64) (point, error) {
		o := opts
		o.StoreBackend = "sharded"
		o.StoreByteBudget = budget
		o.StoreEviction = policy
		if budget == 0 {
			o.StoreEviction = "none"
		}
		ch, _, err := runPoint(core.ModeCached, siteCfg, 0, o, repository.LatencyModel{})
		return ch, err
	}

	addRow := func(policy string, budget int64, pt point) {
		frac := "unbounded"
		kb := "∞"
		if budget > 0 {
			frac = f2(float64(budget) / float64(workingSet))
			kb = f1(float64(budget) / 1024)
		}
		savings := (1 - float64(pt.wireOut)/float64(nc.wireOut)) * 100
		t.Rows = append(t.Rows, []string{
			policy, kb, frac, f3(pt.storeHit),
			fmt.Sprint(pt.storeEvictions), fmt.Sprint(pt.staleFallbacks), f1(savings),
		})
	}

	// Unbounded reference: the Figure 5 operating point this table
	// degrades from.
	ref, err := run("none", 0)
	if err != nil {
		return t, fmt.Errorf("memory unbounded: %w", err)
	}
	addRow("none", 0, ref)

	fractions := []float64{1, 0.5, 0.25, 0.125}
	for _, policy := range []string{"lru", "gdsf"} {
		for _, f := range fractions {
			budget := int64(f * float64(workingSet))
			pt, err := run(policy, budget)
			if err != nil {
				return t, fmt.Errorf("memory %s %.3f: %w", policy, f, err)
			}
			addRow(policy, budget, pt)
		}
	}
	t.Notes = append(t.Notes,
		"budget is the sharded store's global byte ledger (SystemConfig.StoreByteBudget); eviction fires on global pressure only",
		"an evicted slot costs a stale-bypass page fetch (full B_NC page) plus BEM re-learning, so savings fall toward the no-cache baseline as memory shrinks",
		"fragment sizes follow a heavy-tailed 1x/1x/4x/16x cycle (site.FragmentSizeFactors): GDSF keeps many small hot fragments where LRU pins few large ones, so the policies separate at tight budgets")
	return t, nil
}
