package experiments

import (
	"fmt"
	"os"

	"dpcache/internal/core"
	"dpcache/internal/netsim"
	"dpcache/internal/repository"
	"dpcache/internal/site"
	"dpcache/internal/workload"
)

// Memory extends the paper's Figure 5 along the axis it holds fixed:
// cache memory. Figure 5 sweeps the hit ratio h with an unbounded store;
// here the store's byte budget is swept instead — the hit ratio becomes a
// *consequence* of memory pressure and the eviction policy rather than a
// forced parameter. Each point stands up a cached system on the sharded
// backend with a budget set to a fraction of the synthetic site's nominal
// working set and measures the fragment store's GET hit ratio, the
// eviction and stale-bypass activity, and the origin wire bytes — for LRU
// and GDSF side by side.
//
// The mechanism under pressure: an evicted slot makes the next template
// GET stale, the proxy recovers with a bypass fetch (a full page on the
// origin link, the B_NC cost), and the BEM re-learns the slot. Savings
// therefore degrade smoothly from the Figure 5 h→1 operating point toward
// the no-cache baseline as the budget shrinks.
//
// The site is Table 2's structure with *heterogeneous* fragment sizes (a
// heavy-tailed 1×/1×/4×/16× cycle over the 1KB base): with uniform sizes
// every eviction costs the same and GDSF degenerates to LRU-with-extra-
// steps; with a size spread GDSF keeps many small hot fragments where
// LRU holds few large ones, which is the regime the policy exists for.
func Memory(opts Options) (Table, error) {
	opts = opts.withDefaults()
	siteCfg := site.DefaultSynthetic()
	siteCfg.FragmentSizeFactors = []int{1, 1, 4, 16}
	workingSet := siteCfg.TotalFragmentBytes()

	nc, _, err := runPoint(core.ModeNoCache, siteCfg, 0, opts, repository.LatencyModel{})
	if err != nil {
		return Table{}, fmt.Errorf("memory no-cache: %w", err)
	}

	t := Table{
		ID:    "memory",
		Title: "Hit ratio and savings vs store byte budget (Figure 5 extension: LRU vs GDSF)",
		Columns: []string{
			"policy", "budget KB", "of working set", "store hit", "evictions", "stale bypasses", "savings %",
		},
	}

	run := func(policy string, budget int64) (point, error) {
		o := opts
		o.StoreBackend = "sharded"
		o.StoreByteBudget = budget
		o.StoreEviction = policy
		if budget == 0 {
			o.StoreEviction = "none"
		}
		ch, _, err := runPoint(core.ModeCached, siteCfg, 0, o, repository.LatencyModel{})
		return ch, err
	}

	// runTiered is run with the disk-backed second tier mounted: the same
	// RAM budget, but eviction demotes to an unbounded heap file instead
	// of dropping, so the hit ratio should hold near the unbounded point
	// at every budget.
	runTiered := func(budget int64) (point, error) {
		dir, err := os.MkdirTemp("", "dpc-memory-disk-*")
		if err != nil {
			return point{}, err
		}
		defer os.RemoveAll(dir)
		o := opts
		o.StoreBackend = "tiered"
		o.StoreByteBudget = budget
		o.StoreEviction = "lru"
		o.StoreDiskDir = dir
		ch, _, err := runPoint(core.ModeCached, siteCfg, 0, o, repository.LatencyModel{})
		return ch, err
	}

	addRow := func(policy string, budget int64, pt point) {
		frac := "unbounded"
		kb := "∞"
		if budget > 0 {
			frac = f2(float64(budget) / float64(workingSet))
			kb = f1(float64(budget) / 1024)
		}
		savings := (1 - float64(pt.wireOut)/float64(nc.wireOut)) * 100
		t.Rows = append(t.Rows, []string{
			policy, kb, frac, f3(pt.storeHit),
			fmt.Sprint(pt.storeEvictions), fmt.Sprint(pt.staleFallbacks), f1(savings),
		})
	}

	// Unbounded reference: the Figure 5 operating point this table
	// degrades from.
	ref, err := run("none", 0)
	if err != nil {
		return t, fmt.Errorf("memory unbounded: %w", err)
	}
	addRow("none", 0, ref)

	fractions := []float64{1, 0.5, 0.25, 0.125}
	for _, policy := range []string{"lru", "gdsf"} {
		for _, f := range fractions {
			budget := int64(f * float64(workingSet))
			pt, err := run(policy, budget)
			if err != nil {
				return t, fmt.Errorf("memory %s %.3f: %w", policy, f, err)
			}
			addRow(policy, budget, pt)
		}
	}

	// The disk-backed tier at the same RAM budgets: demotion instead of
	// eviction should hold the hit ratio near the unbounded reference
	// even at the tightest budget.
	for _, f := range fractions {
		budget := int64(f * float64(workingSet))
		pt, err := runTiered(budget)
		if err != nil {
			return t, fmt.Errorf("memory lru+disk %.3f: %w", f, err)
		}
		addRow("lru+disk", budget, pt)
	}

	// Restart behavior: a tiered edge bounced mid-run replays its heap
	// file and serves warm on the first pass over the site, where a cold
	// edge starts from nothing.
	steady, warm, cold, err := runRestart(siteCfg, workingSet/8, opts, nc)
	if err != nil {
		return t, fmt.Errorf("memory restart: %w", err)
	}
	t.Rows = append(t.Rows, steady, warm, cold)

	t.Notes = append(t.Notes,
		"budget is the sharded store's global byte ledger (SystemConfig.StoreByteBudget); eviction fires on global pressure only",
		"an evicted slot costs a stale-bypass page fetch (full B_NC page) plus BEM re-learning, so savings fall toward the no-cache baseline as memory shrinks",
		"fragment sizes follow a heavy-tailed 1x/1x/4x/16x cycle (site.FragmentSizeFactors): GDSF keeps many small hot fragments where LRU pins few large ones, so the policies separate at tight budgets",
		"lru+disk rows mount the tiered backend (-store=tiered): the same RAM ledger, but victims demote to an unbounded heap file and disk hits promote back, so the hit ratio holds near the unbounded point at every budget",
		"restart rows measure the first sequential pass over the site at an edge: restart:warm bounces a tiered edge (Edge.Close, then StartEdge with the same name reopens and replays its heap file) and restart:cold starts a fresh edge; restart:steady is the same edge's driven steady-state window for reference",
		"restart-row savings are per-response against the no-cache baseline (the restart windows serve fewer requests than the sweep windows)")
	return t, nil
}

// winStats is one measurement window at an edge proxy.
type winStats struct {
	hit       float64 // store GET hit ratio over the window
	evictions int64
	bypasses  int64
	savings   float64 // per-response wire savings vs the no-cache baseline, %
}

// restartRow formats one restart-phase measurement into the table's
// seven-column schema.
func restartRow(phase, frac string, budget int64, w winStats) []string {
	return []string{
		phase, f1(float64(budget) / 1024), frac, f3(w.hit),
		fmt.Sprint(w.evictions), fmt.Sprint(w.bypasses), f1(w.savings),
	}
}

// runRestart measures warm-restart vs cold-start behavior of the tiered
// backend at an edge proxy: steady-state hit ratio first, then the
// first-pass hit ratio of (a) the same edge bounced and reopened over
// its heap file and (b) a brand-new edge. The interior system (origin,
// BEM, front proxy) stays up throughout, as in a rolling edge restart.
func runRestart(siteCfg site.SyntheticConfig, ramBudget int64, opts Options, nc point) (steady, warm, cold []string, err error) {
	dir, err := os.MkdirTemp("", "dpc-memory-restart-*")
	if err != nil {
		return nil, nil, nil, err
	}
	defer os.RemoveAll(dir)

	sys, err := core.NewSystem(core.Config{
		Capacity:         2 * siteCfg.Pages * siteCfg.FragmentsPerPage,
		Strict:           true,
		Seed:             opts.Seed,
		ExtraHeaderBytes: opts.ExtraHeaderBytes,
		Coalesce:         opts.Coalesce,
		Stream:           opts.Stream,
		StoreBackend:     "tiered",
		StoreByteBudget:  ramBudget,
		StoreEviction:    "lru",
		StoreDiskDir:     dir,
	}, core.ModeCached)
	if err != nil {
		return nil, nil, nil, err
	}
	sc, _, err := site.BuildSynthetic(siteCfg, sys.Repo)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := sys.Register(sc); err != nil {
		return nil, nil, nil, err
	}
	if err := sys.Start(); err != nil {
		return nil, nil, nil, err
	}
	defer sys.Close()

	// One sequential pass over every page of the site — the smallest
	// window in which a cold store has seen everything once.
	pass := func(baseURL string) (int64, error) {
		for p := 0; p < siteCfg.Pages; p++ {
			if err := fetchOnce(fmt.Sprintf("%s/page/synth?page=%d", baseURL, p)); err != nil {
				return 0, err
			}
		}
		return int64(siteCfg.Pages), nil
	}
	// window runs requests against one edge and measures the store-hit
	// ratio, eviction delta, stale-bypass delta, and per-response wire
	// savings over it.
	window := func(e core.Edge, requests func() (int64, error)) (winStats, error) {
		s0 := e.Proxy.Store().Stats()
		b0 := sys.Registry.Counter("dpc.stale_fallbacks").Value()
		sys.Meter.Reset()
		n, err := requests()
		if err != nil {
			return winStats{}, err
		}
		s1 := e.Proxy.Store().Stats()
		w := winStats{
			evictions: s1.Evictions - s0.Evictions,
			bypasses:  sys.Registry.Counter("dpc.stale_fallbacks").Value() - b0,
		}
		if d := (s1.Hits - s0.Hits) + (s1.Misses - s0.Misses); d > 0 {
			w.hit = float64(s1.Hits-s0.Hits) / float64(d)
		}
		wirePerResp := float64(netsim.DefaultOverhead().WireBytesOut(sys.Meter)) / float64(n)
		ncPerResp := float64(nc.wireOut) / float64(nc.responses)
		w.savings = (1 - wirePerResp/ncPerResp) * 100
		return w, nil
	}
	frac := f2(float64(ramBudget) / float64(siteCfg.TotalFragmentBytes()))

	// Steady state: drive the edge the way runPoint drives the front —
	// one full pass, a random warmup batch, then the measured window.
	edge, err := sys.StartEdge("restart")
	if err != nil {
		return nil, nil, nil, err
	}
	if _, err := pass(edge.URL); err != nil {
		return nil, nil, nil, fmt.Errorf("steady warmup: %w", err)
	}
	z, err := workload.NewZipf(siteCfg.Pages, opts.ZipfAlpha)
	if err != nil {
		return nil, nil, nil, err
	}
	users, err := workload.NewUserPool(0, 0) // synthetic site is layout-static
	if err != nil {
		return nil, nil, nil, err
	}
	driver := &workload.Driver{
		BaseURL:     edge.URL,
		Gen:         workload.PageGenerator(z, users, "/page/synth"),
		Concurrency: opts.Concurrency,
		Seed:        opts.Seed,
	}
	if opts.Warmup > 0 {
		if _, err := driver.Run(opts.Warmup); err != nil {
			return nil, nil, nil, err
		}
	}
	sw, err := window(edge, func() (int64, error) {
		res, err := driver.Run(opts.Requests)
		if err != nil {
			return 0, err
		}
		if res.Errors > 0 {
			return 0, fmt.Errorf("%d of %d requests failed", res.Errors, res.Requests)
		}
		return res.Requests, nil
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("steady window: %w", err)
	}

	// Warm restart: bounce the same edge. Close drains the RAM tier to
	// the heap file; StartEdge with the same name reopens it and replays,
	// so the first pass over the site should hit nearly everywhere.
	if err := edge.Close(); err != nil {
		return nil, nil, nil, fmt.Errorf("edge bounce: %w", err)
	}
	warmEdge, err := sys.StartEdge("restart")
	if err != nil {
		return nil, nil, nil, err
	}
	ww, err := window(warmEdge, func() (int64, error) { return pass(warmEdge.URL) })
	if err != nil {
		return nil, nil, nil, fmt.Errorf("warm window: %w", err)
	}

	// Cold start: a brand-new edge with an empty heap file measures the
	// same first pass from nothing.
	coldEdge, err := sys.StartEdge("cold")
	if err != nil {
		return nil, nil, nil, err
	}
	cw, err := window(coldEdge, func() (int64, error) { return pass(coldEdge.URL) })
	if err != nil {
		return nil, nil, nil, fmt.Errorf("cold window: %w", err)
	}

	return restartRow("restart:steady", frac, ramBudget, sw),
		restartRow("restart:warm", frac, ramBudget, ww),
		restartRow("restart:cold", frac, ramBudget, cw), nil
}
