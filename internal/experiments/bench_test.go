package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestWriteBench(t *testing.T) {
	dir := t.TempDir()
	tab := Table{
		ID:      "pipeline",
		Title:   "coalescing pipeline",
		Columns: []string{"clients", "ttfb_ms"},
		Rows:    [][]string{{"1", "2.0"}, {"64", "2.4"}},
		Notes:   []string{"measured"},
	}
	path, err := WriteBench(dir, tab, Options{Requests: 60, Warmup: 20, Concurrency: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_pipeline.json"); path != want {
		t.Fatalf("path = %q, want %q", path, want)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec BenchRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatalf("written file is not valid JSON: %v", err)
	}
	if rec.ID != "pipeline" || rec.Title != "coalescing pipeline" {
		t.Errorf("record identity = %q/%q", rec.ID, rec.Title)
	}
	if rec.Options.Seed != 7 || rec.Options.Requests != 60 {
		t.Errorf("options not echoed: %+v", rec.Options)
	}
	if len(rec.Rows) != 2 || rec.Rows[1][1] != "2.4" {
		t.Errorf("rows not preserved: %v", rec.Rows)
	}
	if len(rec.Notes) != 1 || rec.Notes[0] != "measured" {
		t.Errorf("notes not preserved: %v", rec.Notes)
	}
	if _, err := time.Parse(time.RFC3339, rec.GeneratedAt); err != nil {
		t.Errorf("generated_at %q not RFC 3339: %v", rec.GeneratedAt, err)
	}
	if raw[len(raw)-1] != '\n' {
		t.Error("file should end with a newline")
	}
}

// Zero-valued options are filled with defaults before being echoed, so a
// committed record always states real run parameters.
func TestWriteBenchDefaultsOptions(t *testing.T) {
	path, err := WriteBench(t.TempDir(), Table{ID: "x"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	var rec BenchRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	d := DefaultOptions()
	if rec.Options.Requests != d.Requests || rec.Options.Seed != d.Seed {
		t.Errorf("defaults not applied: %+v", rec.Options)
	}
}
