package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"dpcache/internal/core"
	"dpcache/internal/origin"
	"dpcache/internal/site"
	"dpcache/internal/workload"
)

// Saturation-experiment shape: a fault-injected origin with a fixed
// worker pool (capacity = workers / service time) is driven open-loop at
// offered loads swept past that capacity, with the admission-control
// stage off and on. Off, every page-tier miss queues on the origin:
// queueing delay compounds, the client farm's in-flight bound fills, and
// goodput collapses while p99 explodes. On, the proxy bounds origin
// concurrency and answers the overflow from stale page-tier entries (or
// a fast 503), so goodput tracks offered load and the tail stays
// bounded.
// The operating point is chosen so that page-tier *refresh demand* —
// one coalesced origin fetch per distinct expired page, the floor
// neither the page tier nor single-flight coalescing can absorb —
// decisively exceeds origin capacity at the swept overload rates. The
// page population must be large relative to capacity: coalescing alone
// self-regulates a small hot set (flights lengthen, refreshes per page
// per second fall, the queue stabilizes), so collapse only appears when
// the expired-key working set outruns what the origin can refresh.
const (
	satOriginWorkers = 2
	satOriginLatency = 120 * time.Millisecond
	satPages         = 48
	satPageTTL       = 150 * time.Millisecond
	// satClientInFlight bounds the open-loop client farm; arrivals past
	// it are dropped and counted as errors (an overloaded farm, not a
	// well-behaved closed loop).
	satClientInFlight = 48
)

// satCapacity is the fault-injected origin's service capacity in
// requests/second.
func satCapacity() float64 {
	return float64(satOriginWorkers) / satOriginLatency.Seconds()
}

// Saturation measures goodput and tail latency at offered loads below and
// past origin capacity, with admission control off and on.
func Saturation(opts Options) (Table, error) {
	opts = opts.withDefaults()
	t := Table{
		ID:    "saturation",
		Title: "Overload resilience: goodput and p99 vs offered load, admission control off/on",
		Columns: []string{
			"admission", "offered rps", "goodput rps", "p99", "shed 503s", "stale served", "errors",
		},
	}
	for _, mult := range []float64{0.5, 2, 4} {
		offered := mult * satCapacity()
		for _, shedding := range []bool{false, true} {
			row, err := runSaturationPoint(opts, offered, shedding)
			if err != nil {
				return t, fmt.Errorf("saturation %.0f rps shedding=%v: %w", offered, shedding, err)
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("origin capacity ≈ %.0f req/s (%d workers × %v service time, fault-injected); offered load is an open-loop Poisson trace at 0.5×, 2×, and 4× capacity", satCapacity(), satOriginWorkers, satOriginLatency),
		fmt.Sprintf("both modes run the page tier with a %v TTL over %d pages, so distinct-key refresh demand alone can reach %0.f/s against origin capacity at overload", satPageTTL, satPages, float64(satPages)/satPageTTL.Seconds()),
		"goodput counts 200s only: shed 503s, dropped arrivals (client farm past its in-flight bound), and timeouts are errors",
		"with admission on, overflow is served stale from the page tier (X-Cache: STALE) under a bounded origin concurrency, so goodput tracks offered load where the unprotected pipeline queues and collapses")
	return t, nil
}

// runSaturationPoint stands up one system (admission off or on) behind
// the fault-injected origin, warms the page tier, then drives an
// open-loop Poisson trace at the offered rate.
func runSaturationPoint(opts Options, offered float64, shedding bool) ([]string, error) {
	siteCfg := site.DefaultSynthetic()
	siteCfg.Pages = satPages
	cfg := core.Config{
		Capacity:         2 * siteCfg.Pages * siteCfg.FragmentsPerPage,
		Strict:           true,
		Seed:             opts.Seed,
		ExtraHeaderBytes: opts.ExtraHeaderBytes,
		Coalesce:         true,
		Stream:           true,
		PageCache:        true,
		PageCacheTTL:     satPageTTL,
		OriginFaults: &origin.FaultConfig{
			Latency:       satOriginLatency,
			MaxConcurrent: satOriginWorkers,
			Seed:          opts.Seed,
		},
	}
	if shedding {
		cfg.Admission = true
		cfg.AdmissionMaxInFlight = 4
		cfg.AdmissionMaxFlightWaiters = 8
		cfg.AdmissionStaleWindow = 30 * time.Second
		cfg.AdmissionRetryAfter = time.Second
	}
	sys, err := core.NewSystem(cfg, core.ModeCached)
	if err != nil {
		return nil, err
	}
	sc, _, err := site.BuildSynthetic(siteCfg, sys.Repo)
	if err != nil {
		return nil, err
	}
	if err := sys.Register(sc); err != nil {
		return nil, err
	}
	if err := sys.Start(); err != nil {
		return nil, err
	}
	defer sys.Close()

	// Warm every page into the page tier so stale copies exist when
	// pressure hits. Warmers run a few at a time (the fault-injected
	// origin serializes them anyway) but stay under the admission
	// in-flight bound so no warmup fetch is shed in the shedding run.
	warmErr := make(chan error, siteCfg.Pages)
	warmSem := make(chan struct{}, 3)
	for p := 0; p < siteCfg.Pages; p++ {
		warmSem <- struct{}{}
		go func(p int) {
			defer func() { <-warmSem }()
			warmErr <- fetchOnce(fmt.Sprintf("%s/page/synth?page=%d", sys.FrontURL(), p))
		}(p)
	}
	for p := 0; p < siteCfg.Pages; p++ {
		if err := <-warmErr; err != nil {
			return nil, fmt.Errorf("warmup fetch: %w", err)
		}
	}

	z, err := workload.NewZipf(siteCfg.Pages, opts.ZipfAlpha)
	if err != nil {
		return nil, err
	}
	users, err := workload.NewUserPool(0, 0) // anonymous: page-tier eligible
	if err != nil {
		return nil, err
	}
	pois, err := workload.NewPoisson(offered)
	if err != nil {
		return nil, err
	}
	// The measured window scales with opts.Requests (default ≈ 4s) so
	// every offered rate is observed for the same wall-clock span.
	window := float64(opts.Requests) / 100
	n := int(offered * window)
	if n < 20 {
		n = 20
	}
	trace := pois.Trace(rand.New(rand.NewSource(opts.Seed)), n)
	driver := &workload.Driver{
		BaseURL:     sys.FrontURL(),
		Gen:         workload.PageGenerator(z, users, "/page/synth"),
		Concurrency: satClientInFlight,
		Seed:        opts.Seed,
	}
	shed0 := sys.Registry.Counter("dpc.shed_503s").Value()
	stale0 := sys.Registry.Counter("dpc.stale_served_page").Value() +
		sys.Registry.Counter("dpc.stale_served_static").Value()
	res, err := driver.RunTrace(trace)
	if err != nil {
		return nil, err
	}

	mode := "off"
	if shedding {
		mode = "on"
	}
	goodput := float64(res.Requests-res.Errors) / res.Elapsed.Seconds()
	shedN := sys.Registry.Counter("dpc.shed_503s").Value() - shed0
	staleN := sys.Registry.Counter("dpc.stale_served_page").Value() +
		sys.Registry.Counter("dpc.stale_served_static").Value() - stale0
	return []string{
		mode, f1(offered), f1(goodput),
		res.Latency.Quantile(0.99).Round(time.Millisecond).String(),
		fmt.Sprintf("%d", shedN), fmt.Sprintf("%d", staleN),
		fmt.Sprintf("%d", res.Errors),
	}, nil
}
