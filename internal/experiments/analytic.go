package experiments

import (
	"fmt"

	"dpcache/internal/analytical"
)

// Table2 reproduces Table 2: the baseline parameter settings.
func Table2() Table {
	p := analytical.Baseline()
	return Table{
		ID:      "table2",
		Title:   "Baseline parameter settings for analysis (Table 2)",
		Columns: []string{"parameter", "value"},
		Rows: [][]string{
			{"hit ratio (h)", f2(p.HitRatio)},
			{"fragment size (s_e)", fmt.Sprintf("%.0f bytes", p.FragmentBytes)},
			{"number of fragments per page", fmt.Sprint(p.FragmentsPerPage)},
			{"number of pages", fmt.Sprint(p.Pages)},
			{"average size of header information (f)", fmt.Sprintf("%.0f bytes", p.HeaderBytes)},
			{"tag size (g)", fmt.Sprintf("%.0f bytes", p.TagBytes)},
			{"cacheability factor", f2(p.Cacheability)},
			{"number of requests during interval (R)", fmt.Sprintf("%.0f", p.Requests)},
		},
	}
}

// Fig2a reproduces Figure 2(a): analytical B_C/B_NC as fragment size
// varies from 0 to 5KB.
func Fig2a() Table {
	p := analytical.Baseline()
	pts := analytical.SweepFragmentSize(p, 0, 5120, 256)
	t := Table{
		ID:      "fig2a",
		Title:   "Bytes served cache/no-cache vs fragment size (Figure 2(a), analytical)",
		Columns: []string{"fragment KB", "B_C/B_NC"},
	}
	for _, pt := range pts {
		t.Rows = append(t.Rows, []string{f2(pt.X / 1024), f3(pt.Y)})
	}
	t.Notes = append(t.Notes,
		"ratio > 1 near zero fragment size: tag overhead dominates",
		"steep drop below 1KB, flattening toward c(1-h)+(1-c) at large fragments")
	return t
}

// Fig2b reproduces Figure 2(b): analytical savings in expected bytes
// served as the hit ratio varies from 0 to 1.
func Fig2b() Table {
	p := analytical.Baseline()
	pts := analytical.SweepHitRatio(p, 0, 1, 0.05)
	t := Table{
		ID:      "fig2b",
		Title:   "Savings in bytes served (%) vs hit ratio (Figure 2(b), analytical)",
		Columns: []string{"hit ratio", "savings %"},
	}
	for _, pt := range pts {
		t.Rows = append(t.Rows, []string{f2(pt.X), f1(pt.Y)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("break-even hit ratio: %.4f (paper: ~0.01 at its settings)", p.BreakEvenHitRatio()),
		"negative savings at h=0: tags inflate responses when nothing hits")
	return t
}

// Fig3a reproduces Figure 3(a): network savings and firewall (scan-cost)
// savings as the cacheability factor varies from 20% to 100%.
func Fig3a() Table {
	p := analytical.Baseline()
	network, fwall := analytical.SweepCacheability(p, 0.2, 1.0, 0.05)
	t := Table{
		ID:      "fig3a",
		Title:   "Cost savings (%) vs cacheability (Figure 3(a), analytical)",
		Columns: []string{"cacheability %", "network savings %", "firewall savings %"},
	}
	for i := range network {
		t.Rows = append(t.Rows, []string{f1(network[i].X), f1(network[i].Y), f1(fwall[i].Y)})
	}
	t.Notes = append(t.Notes,
		"network savings positive over the whole range; >70% at full cacheability",
		"firewall savings cross zero where B_NC = 2*B_C (Result 1)")
	return t
}

// Result1 verifies Result 1 numerically: the DPC is preferable on total
// scan cost exactly when B_NC > 2*B_C.
func Result1() Table {
	t := Table{
		ID:      "result1",
		Title:   "Result 1: prefer DPC when expected bytes served without cache exceed twice the bytes with cache",
		Columns: []string{"cacheability", "B_NC (MB)", "2*B_C (MB)", "prefer DPC", "scan-cost check"},
	}
	for c := 0.2; c <= 1.0001; c += 0.1 {
		p := analytical.Baseline()
		p.Cacheability = c
		prefer := p.PreferCache()
		scanAgrees := (p.ScanCostCached(1) < p.ScanCostNoCache(1)) == prefer
		t.Rows = append(t.Rows, []string{
			f2(c),
			f1(p.BytesNoCache() / 1e6),
			f1(2 * p.BytesCached() / 1e6),
			fmt.Sprint(prefer),
			map[bool]string{true: "consistent", false: "INCONSISTENT"}[scanAgrees],
		})
	}
	return t
}
