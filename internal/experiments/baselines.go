package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"dpcache/internal/core"
	"dpcache/internal/netsim"
	"dpcache/internal/pagecache"
	"dpcache/internal/site"
)

// Baselines quantifies Section 3's qualitative comparison on the bookstore
// site with a mixed registered/anonymous population:
//
//   - no cache: every page generated at the origin (correct, expensive);
//   - page-level cache: the paper's flawed baseline — saves bytes but
//     serves wrong pages because the URL does not identify the content;
//   - DPC: fragment caching with dynamic layouts — saves bytes *and*
//     stays correct.
//
// A "wrong page" is one whose greeting does not match the requesting
// user (including any greeting served to an anonymous visitor).
func Baselines(opts Options) (Table, error) {
	opts = opts.withDefaults()
	users := []string{"", "bob", "carol", "dave"}
	names := map[string]string{"bob": "Bob", "carol": "Carol", "dave": "Dave"}
	categories := []string{"Fiction", "Science", "History", "Computing"}

	type outcome struct {
		bytesPerReq int64
		wrongPages  int
		requests    int
	}

	runStrategy := func(strategy string) (outcome, error) {
		mode := core.ModeNoCache
		if strategy == "dpc" {
			mode = core.ModeCached
		}
		sys, err := core.NewSystem(core.Config{
			Capacity:         512,
			Strict:           true,
			Seed:             opts.Seed,
			ExtraHeaderBytes: opts.ExtraHeaderBytes,
		}, mode)
		if err != nil {
			return outcome{}, err
		}
		if err := sys.Register(site.BuildBookstore(sys.Repo)); err != nil {
			return outcome{}, err
		}
		if err := sys.Start(); err != nil {
			return outcome{}, err
		}
		defer sys.Close()

		frontURL := sys.FrontURL()
		if strategy == "pagecache" {
			pc, err := pagecache.New(pagecache.Config{
				OriginURL: sys.OriginURL(),
				TTL:       time.Minute,
			})
			if err != nil {
				return outcome{}, err
			}
			front := httptest.NewServer(pc)
			defer front.Close()
			frontURL = front.URL
		}

		rng := rand.New(rand.NewSource(opts.Seed))
		client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 8}}
		fetch := func(user, cat string) (string, error) {
			req, err := http.NewRequest(http.MethodGet,
				fmt.Sprintf("%s/page/catalog?categoryID=%s", frontURL, cat), nil)
			if err != nil {
				return "", err
			}
			if user != "" {
				req.Header.Set("X-User", user)
			}
			resp, err := client.Do(req)
			if err != nil {
				return "", err
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil || resp.StatusCode != http.StatusOK {
				return "", fmt.Errorf("status %d err %v", resp.StatusCode, err)
			}
			return string(b), nil
		}

		// Warmup, then measure.
		for i := 0; i < opts.Warmup; i++ {
			if _, err := fetch(users[rng.Intn(len(users))], categories[rng.Intn(len(categories))]); err != nil {
				return outcome{}, err
			}
		}
		sys.Meter.Reset()
		var out outcome
		for i := 0; i < opts.Requests; i++ {
			user := users[rng.Intn(len(users))]
			cat := categories[rng.Intn(len(categories))]
			page, err := fetch(user, cat)
			if err != nil {
				return outcome{}, err
			}
			out.requests++
			if wrongPage(page, user, names) {
				out.wrongPages++
			}
		}
		out.bytesPerReq = netsim.DefaultOverhead().WireBytesOut(sys.Meter) / int64(out.requests)
		return out, nil
	}

	t := Table{
		ID:      "baselines",
		Title:   "Baselines (Section 3): no cache vs page-level cache vs DPC, bookstore with mixed users",
		Columns: []string{"strategy", "origin wire bytes/req", "wrong pages", "requests"},
	}
	for _, strategy := range []string{"nocache", "pagecache", "dpc"} {
		out, err := runStrategy(strategy)
		if err != nil {
			return t, fmt.Errorf("baselines %s: %w", strategy, err)
		}
		t.Rows = append(t.Rows, []string{
			strategy,
			fmt.Sprint(out.bytesPerReq),
			fmt.Sprint(out.wrongPages),
			fmt.Sprint(out.requests),
		})
	}
	t.Notes = append(t.Notes,
		"page-level caching saves origin bytes but serves personalized pages to the wrong users (Section 3.2.1's Bob/Alice failure)",
		"the DPC saves bytes with zero wrong pages: layout is computed per request, only fragments are shared")
	return t, nil
}

// wrongPage checks the greeting against the requesting user.
func wrongPage(page, user string, names map[string]string) bool {
	hasGreeting := strings.Contains(page, "Hello,")
	if user == "" {
		return hasGreeting // anonymous must never see a greeting
	}
	want := fmt.Sprintf("Hello, %s!", names[user])
	if !strings.Contains(page, want) {
		return true // missing or different user's greeting
	}
	// Exactly one greeting, and it must be ours.
	return strings.Count(page, "Hello,") != 1
}
