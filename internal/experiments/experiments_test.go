package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// cell parses a table cell as float.
func cell(t *testing.T, tab Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(tab.Rows[row][col], "x"), 64)
	if err != nil {
		t.Fatalf("%s row %d col %d = %q: %v", tab.ID, row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestTableString(t *testing.T) {
	tab := Table{ID: "x", Title: "demo", Columns: []string{"a", "bb"},
		Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	s := tab.String()
	for _, want := range []string{"== x: demo ==", "a", "bb", "note: n"} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
}

func TestCatalogueComplete(t *testing.T) {
	want := []string{"table2", "fig2a", "fig2b", "fig3a", "result1", "fig3b", "fig5", "fig6", "memory", "pipeline", "casestudy", "baselines",
		"ablation-codec", "ablation-strict", "ablation-latency", "saturation"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("catalogue has %d entries, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("entry %d = %q, want %q", i, e.ID, want[i])
		}
		if _, err := ByID(e.ID); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

func TestTable2RowsMatchPaper(t *testing.T) {
	tab := Table2()
	if len(tab.Rows) != 8 {
		t.Fatalf("Table 2 has %d rows, want 8", len(tab.Rows))
	}
	if tab.Rows[0][1] != "0.80" {
		t.Fatalf("hit ratio cell = %q", tab.Rows[0][1])
	}
}

func TestFig2aTable(t *testing.T) {
	tab := Fig2a()
	if len(tab.Rows) < 15 {
		t.Fatalf("fig2a rows = %d", len(tab.Rows))
	}
	first := cell(t, tab, 0, 1)
	last := cell(t, tab, len(tab.Rows)-1, 1)
	if first <= 1 {
		t.Fatalf("ratio at s→0 = %v, want > 1", first)
	}
	if last >= 0.6 {
		t.Fatalf("ratio at 5KB = %v, want < 0.6", last)
	}
}

func TestFig2bTable(t *testing.T) {
	tab := Fig2b()
	if cell(t, tab, 0, 1) >= 0 {
		t.Fatal("savings at h=0 should be negative")
	}
	last := cell(t, tab, len(tab.Rows)-1, 1)
	if last < 50 {
		t.Fatalf("savings at h=1 = %v, want > 50", last)
	}
}

func TestFig3aTable(t *testing.T) {
	tab := Fig3a()
	for i := range tab.Rows {
		if cell(t, tab, i, 1) <= 0 {
			t.Fatalf("network savings non-positive at row %d", i)
		}
	}
	if cell(t, tab, 0, 2) >= 0 {
		t.Fatal("firewall savings at 20% should be negative")
	}
	if cell(t, tab, len(tab.Rows)-1, 2) <= 0 {
		t.Fatal("firewall savings at 100% should be positive")
	}
}

func TestResult1Consistent(t *testing.T) {
	tab := Result1()
	for i, row := range tab.Rows {
		if row[4] != "consistent" {
			t.Fatalf("row %d: %v", i, row)
		}
	}
}

// The live experiments are exercised with quick options; shapes must match
// the paper even on a small request budget.
func TestFig3bLive(t *testing.T) {
	if testing.Short() {
		t.Skip("live experiment")
	}
	tab, err := Fig3b(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		ana := cell(t, tab, i, 1)
		exp := cell(t, tab, i, 2)
		if exp < ana-0.02 {
			t.Fatalf("row %d: experimental %v below analytical %v (protocol overhead must push it up)", i, exp, ana)
		}
		if exp > ana+0.35 {
			t.Fatalf("row %d: experimental %v too far above analytical %v", i, exp, ana)
		}
	}
	// Ratio must fall as fragments grow (coarse: first vs last).
	if first, last := cell(t, tab, 0, 2), cell(t, tab, len(tab.Rows)-1, 2); last >= first {
		t.Fatalf("experimental ratio did not fall with fragment size: %v → %v", first, last)
	}
}

func TestFig5Live(t *testing.T) {
	if testing.Short() {
		t.Skip("live experiment")
	}
	tab, err := Fig5(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Savings increase with h; experimental below analytical + noise.
	prevExp := -100.0
	for i := range tab.Rows {
		exp := cell(t, tab, i, 3)
		ana := cell(t, tab, i, 2)
		if exp > ana+8 {
			t.Fatalf("row %d: experimental %v well above analytical %v", i, exp, ana)
		}
		if exp < prevExp-8 {
			t.Fatalf("row %d: experimental savings fell sharply: %v after %v", i, exp, prevExp)
		}
		prevExp = exp
	}
	first, last := cell(t, tab, 0, 3), cell(t, tab, len(tab.Rows)-1, 3)
	if last <= first {
		t.Fatalf("experimental savings did not grow with h: %v → %v", first, last)
	}
}

func TestFig6Live(t *testing.T) {
	if testing.Short() {
		t.Skip("live experiment")
	}
	tab, err := Fig6(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	first, last := cell(t, tab, 0, 2), cell(t, tab, len(tab.Rows)-1, 2)
	if last <= first {
		t.Fatalf("experimental savings did not grow with cacheability: %v → %v", first, last)
	}
	if last < 40 {
		t.Fatalf("experimental savings at full cacheability = %v, want substantial", last)
	}
}

func TestPipelineLive(t *testing.T) {
	if testing.Short() {
		t.Skip("live experiment")
	}
	tab, err := Pipeline(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 4 knob configs + 3 concurrency-sweep rows + 9 assemble rows
	// (3 fragment counts × interpreter/compiled/compiled-parallel) +
	// 2 invalidation rows.
	if len(tab.Rows) != 18 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Without coalescing every served response costs at least one origin
	// fetch (stale-fallback bypasses can add more); with coalescing,
	// concurrent identical fetches collapse, so fan-in must not grow
	// beyond baseline noise.
	base := cell(t, tab, 0, 1)
	if base < 0.999 {
		t.Fatalf("no-coalesce origin fan-in = %v, want >= 1", base)
	}
	for i := 1; i < 7; i++ {
		if v := cell(t, tab, i, 1); v > base+0.1 {
			t.Fatalf("row %d: coalescing raised origin fan-in to %v (baseline %v)", i, v, base)
		}
	}
	// The page-tier row must cut origin fan-in well below the
	// coalesce-only rows: anonymous revisits within the TTL never reach
	// the origin at all.
	if pc, co := cell(t, tab, 3, 1), cell(t, tab, 2, 1); pc >= co {
		t.Fatalf("pagecache fan-in %v not below coalesce+stream fan-in %v", pc, co)
	}
	// The assemble rows hold the plan cache's headline claim: at every
	// fragment count, a warm compiled plan assembles the page faster
	// than the per-request interpreter.
	for i := 0; i < 3; i++ {
		base := 7 + 3*i
		interp, err := time.ParseDuration(tab.Rows[base][3])
		if err != nil {
			t.Fatalf("assemble interpreter row %d %q: %v", base, tab.Rows[base][3], err)
		}
		compiled, err := time.ParseDuration(tab.Rows[base+1][3])
		if err != nil {
			t.Fatalf("assemble compiled row %d %q: %v", base+1, tab.Rows[base+1][3], err)
		}
		if compiled >= interp {
			t.Fatalf("%s: compiled %v not faster than interpreter %v",
				tab.Rows[base][0], compiled, interp)
		}
	}
	// The invalidation rows hold the PR's freshness claim: without the
	// fabric the page tier serves the dead fragment until its TTL;
	// with it, freshness returns within one request, not the TTL.
	ttlWindow, err := time.ParseDuration(tab.Rows[16][5])
	if err != nil {
		t.Fatalf("ttl-only staleness window %q: %v", tab.Rows[16][5], err)
	}
	fabricWindow, err := time.ParseDuration(tab.Rows[17][5])
	if err != nil {
		t.Fatalf("fabric staleness window %q: %v", tab.Rows[17][5], err)
	}
	if ttlWindow < invalidationTTL/2 {
		t.Fatalf("ttl-only staleness window %v implausibly short for a %v TTL", ttlWindow, invalidationTTL)
	}
	if fabricWindow >= invalidationTTL/2 {
		t.Fatalf("fabric staleness window %v did not beat the TTL bound %v", fabricWindow, invalidationTTL)
	}
}

func TestMemoryLive(t *testing.T) {
	if testing.Short() {
		t.Skip("live experiment")
	}
	tab, err := Memory(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 1 unbounded reference + 4 budgets × 2 policies + 4 lru+disk budgets
	// + 3 restart phases.
	if len(tab.Rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(tab.Rows))
	}
	// The unbounded reference must not evict and must hit nearly always
	// once warm.
	if tab.Rows[0][4] != "0" {
		t.Fatalf("unbounded row evicted: %v", tab.Rows[0])
	}
	if ref := cell(t, tab, 0, 3); ref < 0.9 {
		t.Fatalf("unbounded store hit ratio = %v, want >= 0.9", ref)
	}
	// Within each policy, the hit ratio must not rise as the budget
	// shrinks (rows are ordered largest budget first), and the tightest
	// budget must actually evict.
	for _, rows := range [][]int{{1, 2, 3, 4}, {5, 6, 7, 8}} {
		prev := 2.0
		for _, i := range rows {
			h := cell(t, tab, i, 3)
			if h > prev+0.05 {
				t.Fatalf("row %d: store hit ratio rose to %v as the budget shrank (prev %v)", i, h, prev)
			}
			prev = h
		}
		if ev := cell(t, tab, rows[len(rows)-1], 4); ev == 0 {
			t.Fatalf("tightest budget row %d evicted nothing", rows[len(rows)-1])
		}
	}
	// The disk-backed tier demotes instead of dropping, so its hit ratio
	// must hold near the unbounded reference at every RAM budget — the
	// whole point of the second tier.
	ref := cell(t, tab, 0, 3)
	for i := 9; i <= 12; i++ {
		if tab.Rows[i][0] != "lru+disk" {
			t.Fatalf("row %d policy = %q, want lru+disk", i, tab.Rows[i][0])
		}
		if h := cell(t, tab, i, 3); h < ref-0.1 {
			t.Fatalf("lru+disk row %d hit ratio %v fell below unbounded reference %v", i, h, ref)
		}
	}
	// A warm restart replays the heap file and must reach at least 80% of
	// the steady-state hit ratio on the very first pass; a cold edge's
	// first pass starts from nothing.
	steady := cell(t, tab, 13, 3)
	warm := cell(t, tab, 14, 3)
	cold := cell(t, tab, 15, 3)
	if steady < 0.5 {
		t.Fatalf("restart:steady hit ratio = %v, implausibly low", steady)
	}
	if warm < 0.8*steady {
		t.Fatalf("restart:warm hit ratio %v < 80%% of steady %v", warm, steady)
	}
	if cold > warm/2 {
		t.Fatalf("restart:cold hit ratio %v not clearly below warm %v", cold, warm)
	}
}

func TestCaseStudyLive(t *testing.T) {
	if testing.Short() {
		t.Skip("live experiment")
	}
	opts := QuickOptions()
	tab, err := CaseStudy(opts)
	if err != nil {
		t.Fatal(err)
	}
	bw := cell(t, tab, 0, 3)
	rt := cell(t, tab, 1, 3)
	// The paper claims order-of-magnitude reductions; even the quick
	// configuration lands well above these floors.
	if bw < 5 {
		t.Fatalf("bandwidth reduction %vx, want >= 5x", bw)
	}
	if rt < 3 {
		t.Fatalf("response-time reduction %vx, want >= 3x", rt)
	}
}

func TestAblationCodecLive(t *testing.T) {
	if testing.Short() {
		t.Skip("live experiment")
	}
	tab, err := AblationCodec(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 || tab.Rows[0][0] != "binary" || tab.Rows[1][0] != "text" {
		t.Fatalf("rows = %v", tab.Rows)
	}
	// Binary templates must not be larger than text templates on the wire.
	if cell(t, tab, 0, 1) > cell(t, tab, 1, 1) {
		t.Fatalf("binary (%v B/req) larger than text (%v B/req)", cell(t, tab, 0, 1), cell(t, tab, 1, 1))
	}
}

func TestAblationStrictLive(t *testing.T) {
	if testing.Short() {
		t.Skip("live experiment")
	}
	tab, err := AblationStrict(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %v", tab.Rows)
	}
}

func TestAblationLatencyLive(t *testing.T) {
	if testing.Short() {
		t.Skip("live experiment")
	}
	tab, err := AblationLatencyModel(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Speedup must grow with back-end delay.
	first := cell(t, tab, 0, 3)
	last := cell(t, tab, len(tab.Rows)-1, 3)
	if last <= first {
		t.Fatalf("speedup did not grow with query delay: %v → %v", first, last)
	}
	if last < 3 {
		t.Fatalf("speedup at 4ms delay = %vx, want >= 3x", last)
	}
}

func TestBaselinesLive(t *testing.T) {
	if testing.Short() {
		t.Skip("live experiment")
	}
	tab, err := Baselines(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %v", tab.Rows)
	}
	byName := map[string][]string{}
	for _, r := range tab.Rows {
		byName[r[0]] = r
	}
	if byName["nocache"][2] != "0" {
		t.Fatalf("no-cache served wrong pages: %v", byName["nocache"])
	}
	if byName["dpc"][2] != "0" {
		t.Fatalf("DPC served wrong pages: %v", byName["dpc"])
	}
	if byName["pagecache"][2] == "0" {
		t.Fatal("page cache served no wrong pages — the baseline flaw did not reproduce")
	}
	if cell(t, tab, 2, 1) >= cell(t, tab, 0, 1) {
		t.Fatalf("DPC bytes (%v) not below no-cache (%v)", cell(t, tab, 2, 1), cell(t, tab, 0, 1))
	}
}

func TestSaturationLive(t *testing.T) {
	if testing.Short() {
		t.Skip("live experiment")
	}
	// A 2s measured window per point: long enough past the page-tier TTL
	// that the unprotected pipeline visibly queues at overload.
	opts := QuickOptions()
	opts.Requests = 200
	tab, err := Saturation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (3 offered rates × off/on)", len(tab.Rows))
	}
	for i, r := range tab.Rows {
		want := "off"
		if i%2 == 1 {
			want = "on"
		}
		if r[0] != want {
			t.Fatalf("row %d mode = %q, want %q", i, r[0], want)
		}
	}
	// At 4× origin capacity the admission stage must actually be working:
	// it shed or stale-served some of the overflow…
	offShed := cell(t, tab, 4, 4) + cell(t, tab, 4, 5)
	onShed := cell(t, tab, 5, 4) + cell(t, tab, 5, 5)
	if onShed == 0 {
		t.Fatalf("admission-on row shed/stale-served nothing at 4x capacity:\n%s", tab)
	}
	if offShed != 0 {
		t.Fatalf("admission-off row recorded sheds/stale serves (stage must be absent):\n%s", tab)
	}
	// …and goodput with shedding must beat the collapsing unprotected run.
	if off, on := cell(t, tab, 4, 2), cell(t, tab, 5, 2); on <= off {
		t.Fatalf("goodput at 4x capacity: shedding on (%v rps) did not beat shedding off (%v rps)\n%s", on, off, tab)
	}
}
