package experiments

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"dpcache/internal/analytical"
	"dpcache/internal/core"
	"dpcache/internal/netsim"
	"dpcache/internal/repository"
	"dpcache/internal/site"
	"dpcache/internal/tmpl"
	"dpcache/internal/workload"
)

// effectiveTagBytes is the g the analytical companion curves use: the
// binary codec's GET tag size at representative key/generation magnitudes
// (compare Table 2's g = 10).
func effectiveTagBytes() float64 {
	return float64(tmpl.Binary{}.GetTagSize(1000, 1000))
}

// point is one measured operating point.
type point struct {
	wireOut     int64
	appOut      int64
	responses   int64
	measuredHit float64
	meanLatency time.Duration
	headerBytes float64 // calibrated per-response header overhead

	// Fragment-store activity over the measurement window (the memory
	// experiment reads these; zero in no-cache mode).
	storeHit       float64 // store GET hit ratio
	storeEvictions int64
	staleFallbacks int64
}

// runPoint stands up a system in the given mode running the synthetic
// site, warms it, then measures a steady-state window.
func runPoint(mode core.Mode, siteCfg site.SyntheticConfig, forcedMiss float64,
	opts Options, lat repository.LatencyModel) (point, site.Manifest, error) {

	sys, err := core.NewSystem(core.Config{
		Capacity:         2 * siteCfg.Pages * siteCfg.FragmentsPerPage,
		Strict:           true,
		ForcedMissProb:   forcedMiss,
		Seed:             opts.Seed,
		Latency:          lat,
		ExtraHeaderBytes: opts.ExtraHeaderBytes,
		Coalesce:         opts.Coalesce,
		Stream:           opts.Stream,
		StoreBackend:     opts.StoreBackend,
		StoreByteBudget:  opts.StoreByteBudget,
		StoreEviction:    opts.StoreEviction,
		StoreDiskDir:     opts.StoreDiskDir,
		StoreDiskBudget:  opts.StoreDiskBudget,
		PageCache:        opts.PageCache,
	}, mode)
	if err != nil {
		return point{}, site.Manifest{}, err
	}
	sc, man, err := site.BuildSynthetic(siteCfg, sys.Repo)
	if err != nil {
		return point{}, site.Manifest{}, err
	}
	if err := sys.Register(sc); err != nil {
		return point{}, site.Manifest{}, err
	}
	if err := sys.Start(); err != nil {
		return point{}, site.Manifest{}, err
	}
	defer sys.Close()

	// Calibrate per-response header overhead with one cold fetch of a
	// known page through the proxy: everything beyond the page content
	// on the origin link is headers (plus, in cached mode, tag bytes —
	// so calibration always uses a bypassing direct-origin request).
	var pageBytes int64 // page 0's exact content size (sizes may be heterogeneous)
	for j := 0; j < siteCfg.FragmentsPerPage; j++ {
		pageBytes += int64(siteCfg.FragmentSize(j))
	}
	before := sys.Meter.BytesOut()
	if err := fetchOnce(sys.OriginURL() + "/page/synth?page=0"); err != nil {
		return point{}, man, fmt.Errorf("calibration fetch: %w", err)
	}
	headerBytes := float64(sys.Meter.BytesOut() - before - pageBytes)
	if headerBytes < 0 {
		headerBytes = 0
	}

	z, err := workload.NewZipf(siteCfg.Pages, opts.ZipfAlpha)
	if err != nil {
		return point{}, man, err
	}
	users, err := workload.NewUserPool(0, 0) // synthetic site is layout-static
	if err != nil {
		return point{}, man, err
	}
	driver := &workload.Driver{
		BaseURL:     sys.FrontURL(),
		Gen:         workload.PageGenerator(z, users, "/page/synth"),
		Concurrency: opts.Concurrency,
		Seed:        opts.Seed,
	}

	// Warmup: touch every page once (fills every slot), then run the
	// random warmup batch so forced-miss churn reaches steady state.
	for p := 0; p < siteCfg.Pages; p++ {
		if err := fetchOnce(fmt.Sprintf("%s/page/synth?page=%d", sys.FrontURL(), p)); err != nil {
			return point{}, man, fmt.Errorf("warmup fetch: %w", err)
		}
	}
	if opts.Warmup > 0 {
		if _, err := driver.Run(opts.Warmup); err != nil {
			return point{}, man, err
		}
	}

	// Measurement window.
	var hits0, lookups0 int64
	if sys.Monitor != nil {
		st := sys.Monitor.Stats()
		hits0, lookups0 = st.Hits, st.Lookups
	}
	store0 := sys.Proxy.Store().Stats()
	stale0 := sys.Registry.Counter("dpc.stale_fallbacks").Value()
	sys.Meter.Reset()
	res, err := driver.Run(opts.Requests)
	if err != nil {
		return point{}, man, err
	}
	if res.Errors > 0 {
		return point{}, man, fmt.Errorf("%d of %d requests failed", res.Errors, res.Requests)
	}

	pt := point{
		appOut:      sys.Meter.BytesOut(),
		wireOut:     netsim.DefaultOverhead().WireBytesOut(sys.Meter),
		responses:   res.Requests,
		meanLatency: res.Latency.Mean(),
		headerBytes: headerBytes,
	}
	if sys.Monitor != nil {
		st := sys.Monitor.Stats()
		if d := st.Lookups - lookups0; d > 0 {
			pt.measuredHit = float64(st.Hits-hits0) / float64(d)
		}
	}
	store1 := sys.Proxy.Store().Stats()
	if d := (store1.Hits - store0.Hits) + (store1.Misses - store0.Misses); d > 0 {
		pt.storeHit = float64(store1.Hits-store0.Hits) / float64(d)
	}
	pt.storeEvictions = store1.Evictions - store0.Evictions
	pt.staleFallbacks = sys.Registry.Counter("dpc.stale_fallbacks").Value() - stale0
	return pt, man, nil
}

func fetchOnce(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

// analyticalCompanion computes the closed-form expectation for a measured
// configuration: same fragment structure, same Zipf weights, calibrated
// header size, effective binary-codec tag size.
func analyticalCompanion(man site.Manifest, opts Options, headerBytes, hitRatio float64, pages int) analytical.Model {
	return man.Model(headerBytes, effectiveTagBytes(), hitRatio, analytical.ZipfWeights(pages, opts.ZipfAlpha))
}

// Fig3b reproduces Figure 3(b): measured vs analytical B_C/B_NC as the
// fragment size varies, at the Table 2 operating point (h pinned to 0.8
// via the BEM's forced-miss hook).
func Fig3b(opts Options) (Table, error) {
	opts = opts.withDefaults()
	const targetHit = 0.8
	sizes := []int{128, 512, 1024, 2048, 3072, 4096, 5120}
	t := Table{
		ID:      "fig3b",
		Title:   "B_C/B_NC vs fragment size (Figure 3(b): analytical and experimental)",
		Columns: []string{"fragment KB", "analytical", "experimental", "measured h"},
	}
	for _, s := range sizes {
		cfg := site.DefaultSynthetic()
		cfg.FragmentBytes = s
		nc, man, err := runPoint(core.ModeNoCache, cfg, 0, opts, repository.LatencyModel{})
		if err != nil {
			return t, fmt.Errorf("fig3b s=%d no-cache: %w", s, err)
		}
		ch, _, err := runPoint(core.ModeCached, cfg, 1-targetHit, opts, repository.LatencyModel{})
		if err != nil {
			return t, fmt.Errorf("fig3b s=%d cached: %w", s, err)
		}
		exp := float64(ch.wireOut) / float64(nc.wireOut)
		model := analyticalCompanion(man, opts, nc.headerBytes, targetHit, cfg.Pages)
		t.Rows = append(t.Rows, []string{
			f2(float64(s) / 1024), f3(model.Ratio()), f3(exp), f3(ch.measuredHit),
		})
	}
	t.Notes = append(t.Notes,
		"experimental curve sits above analytical: wire measurement includes TCP/IP header overhead, proportionally larger for small responses (paper, Section 6)")
	return t, nil
}

// Fig5 reproduces Figure 5: measured vs analytical savings in bytes
// served as the hit ratio varies, fragment size fixed at 1KB.
func Fig5(opts Options) (Table, error) {
	opts = opts.withDefaults()
	cfg := site.DefaultSynthetic()
	nc, man, err := runPoint(core.ModeNoCache, cfg, 0, opts, repository.LatencyModel{})
	if err != nil {
		return Table{}, fmt.Errorf("fig5 no-cache: %w", err)
	}
	t := Table{
		ID:      "fig5",
		Title:   "Savings in bytes served (%) vs hit ratio (Figure 5: analytical and experimental)",
		Columns: []string{"target h", "measured h", "analytical %", "experimental %"},
	}
	for _, h := range []float64{0, 0.2, 0.4, 0.6, 0.8, 0.95} {
		ch, _, err := runPoint(core.ModeCached, cfg, 1-h, opts, repository.LatencyModel{})
		if err != nil {
			return t, fmt.Errorf("fig5 h=%.2f: %w", h, err)
		}
		exp := (1 - float64(ch.wireOut)/float64(nc.wireOut)) * 100
		model := analyticalCompanion(man, opts, nc.headerBytes, h, cfg.Pages)
		ana := (1 - model.Ratio()) * 100
		t.Rows = append(t.Rows, []string{f2(h), f3(ch.measuredHit), f1(ana), f1(exp)})
	}
	t.Notes = append(t.Notes,
		"experimental savings sit slightly below analytical and the gap grows with h: constant protocol overhead dilutes savings as responses shrink (paper, Section 6)")
	return t, nil
}

// Fig6 reproduces Figure 6: measured vs analytical network savings as the
// cacheability factor varies, h pinned at 0.8.
func Fig6(opts Options) (Table, error) {
	opts = opts.withDefaults()
	const targetHit = 0.8
	base := site.DefaultSynthetic()
	nc, _, err := runPoint(core.ModeNoCache, base, 0, opts, repository.LatencyModel{})
	if err != nil {
		return Table{}, fmt.Errorf("fig6 no-cache: %w", err)
	}
	t := Table{
		ID:      "fig6",
		Title:   "Network savings (%) vs cacheability (Figure 6: analytical and experimental)",
		Columns: []string{"cacheability %", "analytical %", "experimental %", "measured h"},
	}
	for _, c := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		cfg := base
		cfg.Cacheability = c
		ch, man, err := runPoint(core.ModeCached, cfg, 1-targetHit, opts, repository.LatencyModel{})
		if err != nil {
			return t, fmt.Errorf("fig6 c=%.1f: %w", c, err)
		}
		exp := (1 - float64(ch.wireOut)/float64(nc.wireOut)) * 100
		model := analyticalCompanion(man, opts, nc.headerBytes, targetHit, cfg.Pages)
		ana := (1 - model.Ratio()) * 100
		t.Rows = append(t.Rows, []string{f1(c * 100), f1(ana), f1(exp), f3(ch.measuredHit)})
	}
	t.Notes = append(t.Notes,
		"experimental curve tracks analytical from below, per the paper's protocol-header explanation")
	return t, nil
}

// CaseStudy reproduces the deployment result quoted in Sections 1 and 8:
// order-of-magnitude reductions in origin bandwidth and end-to-end
// response time on a personalized portal whose content generation touches
// a slow back end.
func CaseStudy(opts Options) (Table, error) {
	opts = opts.withDefaults()
	lat := repository.LatencyModel{QueryDelay: 2 * time.Millisecond}
	pcfg := site.DefaultPortal()

	run := func(mode core.Mode) (point, error) {
		sys, err := core.NewSystem(core.Config{
			Capacity:         1024,
			Strict:           true,
			Seed:             opts.Seed,
			Latency:          lat,
			ExtraHeaderBytes: opts.ExtraHeaderBytes,
		}, mode)
		if err != nil {
			return point{}, err
		}
		sc, err := site.BuildPortal(pcfg, sys.Repo)
		if err != nil {
			return point{}, err
		}
		if err := sys.Register(sc); err != nil {
			return point{}, err
		}
		if err := sys.Start(); err != nil {
			return point{}, err
		}
		defer sys.Close()

		users, err := workload.NewUserPool(pcfg.Users, 1.0)
		if err != nil {
			return point{}, err
		}
		z, err := workload.NewZipf(1, 0)
		if err != nil {
			return point{}, err
		}
		driver := &workload.Driver{
			BaseURL:     sys.FrontURL(),
			Gen:         workload.PageGenerator(z, users, "/page/portal"),
			Concurrency: opts.Concurrency,
			Seed:        opts.Seed,
		}
		warm := opts.Warmup
		if mode == core.ModeCached && warm < pcfg.Users {
			warm = pcfg.Users // every profile's modules enter cache
		}
		if _, err := driver.Run(warm); err != nil {
			return point{}, err
		}
		sys.Meter.Reset()
		res, err := driver.Run(opts.Requests)
		if err != nil {
			return point{}, err
		}
		if res.Errors > 0 {
			return point{}, fmt.Errorf("%d errors", res.Errors)
		}
		return point{
			appOut:      sys.Meter.BytesOut(),
			wireOut:     netsim.DefaultOverhead().WireBytesOut(sys.Meter),
			responses:   res.Requests,
			meanLatency: res.Latency.Mean(),
		}, nil
	}

	nc, err := run(core.ModeNoCache)
	if err != nil {
		return Table{}, fmt.Errorf("casestudy no-cache: %w", err)
	}
	ch, err := run(core.ModeCached)
	if err != nil {
		return Table{}, fmt.Errorf("casestudy cached: %w", err)
	}

	bwFactor := float64(nc.wireOut) / float64(ch.wireOut)
	rtFactor := float64(nc.meanLatency) / float64(ch.meanLatency)
	t := Table{
		ID:      "casestudy",
		Title:   "Deployment case study: personalized portal, slow content back end",
		Columns: []string{"metric", "no cache", "with DPC", "reduction"},
		Rows: [][]string{
			{"origin wire bytes / request",
				fmt.Sprintf("%d", nc.wireOut/nc.responses),
				fmt.Sprintf("%d", ch.wireOut/ch.responses),
				fmt.Sprintf("%.1fx", bwFactor)},
			{"mean response time",
				nc.meanLatency.Round(10 * time.Microsecond).String(),
				ch.meanLatency.Round(10 * time.Microsecond).String(),
				fmt.Sprintf("%.1fx", rtFactor)},
		},
		Notes: []string{
			"paper claims order-of-magnitude reductions in bandwidth and response time at a major financial institution; shape, not absolute numbers, is the reproduction target",
		},
	}
	return t, nil
}
