package tmpl

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
)

var codecs = []Codec{Binary{}, Text{}}

// equalStreams compares two instruction streams after normalization.
func equalStreams(a, b []Instruction) bool {
	a, b = Normalize(a), Normalize(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Op != b[i].Op || a[i].Key != b[i].Key || a[i].Gen != b[i].Gen || !bytes.Equal(a[i].Data, b[i].Data) {
			return false
		}
	}
	return true
}

func TestOpString(t *testing.T) {
	if OpLiteral.String() != "LIT" || OpGet.String() != "GET" || OpSet.String() != "SET" || OpInclude.String() != "INC" {
		t.Fatal("op mnemonics wrong")
	}
	if Op(99).String() != "Op(99)" {
		t.Fatalf("unknown op = %q", Op(99).String())
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"binary", "text"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if c.Name() != name {
			t.Fatalf("ByName(%s).Name() = %s", name, c.Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("ByName(bogus) did not error")
	}
}

func TestRoundTripSimple(t *testing.T) {
	in := []Instruction{
		{Op: OpLiteral, Data: []byte("<html><body>")},
		{Op: OpGet, Key: 7, Gen: 1},
		{Op: OpLiteral, Data: []byte("<hr>")},
		{Op: OpSet, Key: 12, Gen: 3, Data: []byte("fragment content here")},
		{Op: OpLiteral, Data: []byte("</body></html>")},
	}
	for _, c := range codecs {
		var buf bytes.Buffer
		if err := EncodeAll(c, &buf, in); err != nil {
			t.Fatalf("%s encode: %v", c.Name(), err)
		}
		out, err := DecodeAll(c, &buf)
		if err != nil {
			t.Fatalf("%s decode: %v", c.Name(), err)
		}
		if !equalStreams(in, out) {
			t.Fatalf("%s roundtrip mismatch:\n in=%v\nout=%v", c.Name(), in, out)
		}
	}
}

func TestRoundTripInclude(t *testing.T) {
	in := []Instruction{
		{Op: OpLiteral, Data: []byte("<header>")},
		{Op: OpInclude, Key: 300, Gen: 2},
		{Op: OpGet, Key: 7, Gen: 1},
		{Op: OpInclude, Key: 0, Gen: 0},
		{Op: OpLiteral, Data: []byte("</footer>")},
	}
	for _, c := range codecs {
		var buf bytes.Buffer
		if err := EncodeAll(c, &buf, in); err != nil {
			t.Fatalf("%s encode: %v", c.Name(), err)
		}
		out, err := DecodeAll(c, &buf)
		if err != nil {
			t.Fatalf("%s decode: %v", c.Name(), err)
		}
		if !equalStreams(in, out) {
			t.Fatalf("%s roundtrip mismatch:\n in=%v\nout=%v", c.Name(), in, out)
		}
	}
}

func TestRoundTripEmptyStream(t *testing.T) {
	for _, c := range codecs {
		var buf bytes.Buffer
		if err := EncodeAll(c, &buf, nil); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		out, err := DecodeAll(c, &buf)
		if err != nil || len(out) != 0 {
			t.Fatalf("%s: out=%v err=%v", c.Name(), out, err)
		}
	}
}

func TestRoundTripEmptySetContent(t *testing.T) {
	in := []Instruction{{Op: OpSet, Key: 1, Gen: 0, Data: []byte{}}}
	for _, c := range codecs {
		var buf bytes.Buffer
		if err := EncodeAll(c, &buf, in); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		out, err := DecodeAll(c, &buf)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if len(out) != 1 || out[0].Op != OpSet || len(out[0].Data) != 0 {
			t.Fatalf("%s: out=%v", c.Name(), out)
		}
	}
}

// Literals containing the codec's own tag introducer must survive.
func TestRoundTripAdversarialLiterals(t *testing.T) {
	adversarial := [][]byte{
		Magic,
		[]byte(textMark),
		append(append([]byte("x"), Magic...), []byte("<dpc:get k=\"1\" g=\"1\"/>")...),
		bytes.Repeat(Magic, 5),
		[]byte("<dpc:<dpc:<dpc:"),
		[]byte{0x01, 'D', 'P'}, // partial magic at end
		[]byte("<dpc"),         // partial mark at end
	}
	for _, c := range codecs {
		for _, lit := range adversarial {
			in := []Instruction{
				{Op: OpLiteral, Data: lit},
				{Op: OpGet, Key: 3, Gen: 9},
				{Op: OpLiteral, Data: lit},
			}
			var buf bytes.Buffer
			if err := EncodeAll(c, &buf, in); err != nil {
				t.Fatalf("%s encode %q: %v", c.Name(), lit, err)
			}
			out, err := DecodeAll(c, &buf)
			if err != nil {
				t.Fatalf("%s decode %q: %v", c.Name(), lit, err)
			}
			if !equalStreams(in, out) {
				t.Fatalf("%s adversarial literal %q did not roundtrip: %v", c.Name(), lit, Normalize(out))
			}
		}
	}
}

// SET content may contain raw magic/marks: it is length-prefixed, never
// escaped, and must roundtrip untouched.
func TestRoundTripAdversarialSetContent(t *testing.T) {
	for _, c := range codecs {
		content := append(append([]byte("a"), Magic...), []byte("<dpc:set k=\"9\" g=\"9\" n=\"3\">")...)
		in := []Instruction{{Op: OpSet, Key: 5, Gen: 2, Data: content}}
		var buf bytes.Buffer
		if err := EncodeAll(c, &buf, in); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		out, err := DecodeAll(c, &buf)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if !equalStreams(in, out) {
			t.Fatalf("%s SET content mangled: %v", c.Name(), out)
		}
	}
}

// Property: random instruction streams (with literals drawn from an
// alphabet that includes magic/mark bytes) roundtrip through both codecs.
func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2002))
	alphabet := []byte("abD<dpc:PC\x01\"/>")
	genBytes := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return b
	}
	for trial := 0; trial < 200; trial++ {
		var in []Instruction
		for i, n := 0, rng.Intn(8); i < n; i++ {
			switch rng.Intn(4) {
			case 0:
				in = append(in, Instruction{Op: OpLiteral, Data: genBytes(rng.Intn(80))})
			case 1:
				in = append(in, Instruction{Op: OpGet, Key: rng.Uint32() % 5000, Gen: rng.Uint32() % 16})
			case 2:
				in = append(in, Instruction{Op: OpSet, Key: rng.Uint32() % 5000, Gen: rng.Uint32() % 16, Data: genBytes(rng.Intn(120))})
			case 3:
				in = append(in, Instruction{Op: OpInclude, Key: rng.Uint32() % 5000, Gen: rng.Uint32() % 16})
			}
		}
		for _, c := range codecs {
			var buf bytes.Buffer
			if err := EncodeAll(c, &buf, in); err != nil {
				t.Fatalf("%s trial %d encode: %v", c.Name(), trial, err)
			}
			out, err := DecodeAll(c, &buf)
			if err != nil {
				t.Fatalf("%s trial %d decode: %v", c.Name(), trial, err)
			}
			if !equalStreams(in, out) {
				t.Fatalf("%s trial %d mismatch\n in=%v\nout=%v", c.Name(), trial, Normalize(in), Normalize(out))
			}
		}
	}
}

// The decoder must stream long literals in bounded chunks rather than
// buffering them whole.
func TestDecoderChunksLongLiterals(t *testing.T) {
	long := bytes.Repeat([]byte("y"), 3*maxLiteralChunk+17)
	for _, c := range codecs {
		var buf bytes.Buffer
		if err := EncodeAll(c, &buf, []Instruction{{Op: OpLiteral, Data: long}}); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		d := c.NewDecoder(&buf)
		var total int
		var pieces int
		for {
			in, err := d.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%s: %v", c.Name(), err)
			}
			if in.Op != OpLiteral {
				t.Fatalf("%s: unexpected op %v", c.Name(), in.Op)
			}
			if len(in.Data) > maxLiteralChunk+len(Magic)+len(textMark) {
				t.Fatalf("%s: literal chunk of %d bytes exceeds cap", c.Name(), len(in.Data))
			}
			total += len(in.Data)
			pieces++
		}
		if total != len(long) {
			t.Fatalf("%s: reassembled %d bytes, want %d", c.Name(), total, len(long))
		}
		if pieces < 3 {
			t.Fatalf("%s: long literal delivered in %d pieces, want >= 3", c.Name(), pieces)
		}
	}
}

func TestBinaryGetTagSizeMatchesWire(t *testing.T) {
	for _, key := range []uint32{0, 1, 127, 128, 300, 1 << 20} {
		for _, gen := range []uint32{0, 1, 200} {
			var buf bytes.Buffer
			e := Binary{}.NewEncoder(&buf)
			if err := e.Get(key, gen); err != nil {
				t.Fatal(err)
			}
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
			if got, want := buf.Len(), (Binary{}).GetTagSize(key, gen); got != want {
				t.Fatalf("key=%d gen=%d: wire=%d, GetTagSize=%d", key, gen, got, want)
			}
		}
	}
}

func TestBinarySetOverheadMatchesWire(t *testing.T) {
	content := []byte("0123456789")
	for _, key := range []uint32{0, 777, 99999} {
		var buf bytes.Buffer
		e := Binary{}.NewEncoder(&buf)
		if err := e.Set(key, 4, content); err != nil {
			t.Fatal(err)
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		want := Binary{}.SetOverhead(key, 4, len(content)) + len(content)
		if buf.Len() != want {
			t.Fatalf("key=%d: wire=%d, SetOverhead+content=%d", key, buf.Len(), want)
		}
	}
}

func TestTextSizeModelMatchesWire(t *testing.T) {
	var buf bytes.Buffer
	e := Text{}.NewEncoder(&buf)
	if err := e.Get(42, 7); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.Len(), (Text{}).GetTagSize(42, 7); got != want {
		t.Fatalf("text GET wire=%d model=%d", got, want)
	}
	buf.Reset()
	e = Text{}.NewEncoder(&buf)
	if err := e.Set(42, 7, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.Len(), (Text{}).SetOverhead(42, 7, 3)+3; got != want {
		t.Fatalf("text SET wire=%d model=%d", got, want)
	}
}

// The paper's Table 2 uses g = 10 bytes; the binary codec's GET tag must be
// in that neighborhood for realistic key ranges.
func TestBinaryTagSizeNearPaperG(t *testing.T) {
	g := Binary{}.GetTagSize(5000, 3)
	if g < 6 || g > 12 {
		t.Fatalf("binary GET tag = %d bytes; want within [6,12] (paper g=10)", g)
	}
}

func TestDecodeCorruptStreams(t *testing.T) {
	cases := []struct {
		name string
		raw  string
	}{
		{"binary truncated after magic", string(Magic)},
		{"binary unknown op", string(Magic) + "Q"},
		{"binary set missing close", string(Magic) + "S\x01\x01\x03abc"},
		{"binary get missing gen", string(Magic) + "G\x01"},
	}
	for _, tc := range cases {
		_, err := DecodeAll(Binary{}, strings.NewReader(tc.raw))
		if err == nil {
			t.Errorf("%s: decode succeeded, want error", tc.name)
		}
	}
	textCases := []string{
		"<dpc:get k=\"1\"/>",                  // missing g attr
		"<dpc:zzz/>",                          // unknown verb
		"<dpc:set k=\"1\" g=\"1\" n=\"5\">ab", // truncated content
		"<dpc:get k=\"x\" g=\"1\"/>",          // non-numeric key
	}
	for _, raw := range textCases {
		if _, err := DecodeAll(Text{}, strings.NewReader(raw)); err == nil {
			t.Errorf("text %q: decode succeeded, want error", raw)
		}
	}
}

func TestNormalizeMergesAdjacentLiterals(t *testing.T) {
	in := []Instruction{
		{Op: OpLiteral, Data: []byte("a")},
		{Op: OpLiteral, Data: []byte{}},
		{Op: OpLiteral, Data: []byte("b")},
		{Op: OpGet, Key: 1},
		{Op: OpLiteral, Data: []byte("c")},
	}
	out := Normalize(in)
	if len(out) != 3 {
		t.Fatalf("normalized to %d instructions, want 3: %v", len(out), out)
	}
	if string(out[0].Data) != "ab" || out[1].Op != OpGet || string(out[2].Data) != "c" {
		t.Fatalf("bad normalization: %v", out)
	}
}

func TestBinaryTextRelativeSize(t *testing.T) {
	in := []Instruction{{Op: OpGet, Key: 100, Gen: 2}, {Op: OpGet, Key: 101, Gen: 0}}
	var bin, txt bytes.Buffer
	if err := EncodeAll(Binary{}, &bin, in); err != nil {
		t.Fatal(err)
	}
	if err := EncodeAll(Text{}, &txt, in); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= txt.Len() {
		t.Fatalf("binary (%dB) should be smaller than text (%dB)", bin.Len(), txt.Len())
	}
}

func benchmarkEncode(b *testing.B, c Codec) {
	frag := bytes.Repeat([]byte("f"), 1024)
	lit := bytes.Repeat([]byte("l"), 200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		e := c.NewEncoder(&buf)
		for j := 0; j < 4; j++ {
			_ = e.Literal(lit)
			if j%2 == 0 {
				_ = e.Get(uint32(j), 1)
			} else {
				_ = e.Set(uint32(j), 1, frag)
			}
		}
		_ = e.Flush()
	}
}

func benchmarkDecode(b *testing.B, c Codec) {
	frag := bytes.Repeat([]byte("f"), 1024)
	lit := bytes.Repeat([]byte("l"), 200)
	var buf bytes.Buffer
	e := c.NewEncoder(&buf)
	for j := 0; j < 4; j++ {
		_ = e.Literal(lit)
		if j%2 == 0 {
			_ = e.Get(uint32(j), 1)
		} else {
			_ = e.Set(uint32(j), 1, frag)
		}
	}
	_ = e.Flush()
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := c.NewDecoder(bytes.NewReader(raw))
		for {
			if _, err := d.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkCodecBinaryEncode(b *testing.B) { benchmarkEncode(b, Binary{}) }
func BenchmarkCodecTextEncode(b *testing.B)   { benchmarkEncode(b, Text{}) }
func BenchmarkCodecBinaryDecode(b *testing.B) { benchmarkDecode(b, Binary{}) }
func BenchmarkCodecTextDecode(b *testing.B)   { benchmarkDecode(b, Text{}) }
