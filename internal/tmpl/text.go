package tmpl

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"dpcache/internal/kmp"
)

// textMark introduces every text-codec tag.
const textMark = "<dpc:"

// Text is the human-readable debug codec. Tags look like XML processing
// instructions:
//
//	<dpc:get k="7" g="2"/>
//	<dpc:set k="7" g="3" n="1024">…1024 bytes…</dpc:set>
//	<dpc:inc k="7" g="2"/>           (slot 7 holds a nested template)
//	<dpc:esc/>                       (a literal "<dpc:" in page output)
//
// It is roughly 2–3x larger on the wire than the binary codec; the codec
// ablation benchmark quantifies the difference.
type Text struct{}

// Name implements Codec.
func (Text) Name() string { return "text" }

// GetTagSize implements Codec.
func (Text) GetTagSize(key, gen uint32) int {
	return len(fmt.Sprintf(`<dpc:get k="%d" g="%d"/>`, key, gen))
}

// SetOverhead implements Codec.
func (Text) SetOverhead(key, gen uint32, contentLen int) int {
	open := len(fmt.Sprintf(`<dpc:set k="%d" g="%d" n="%d">`, key, gen, contentLen))
	return open + len("</dpc:set>")
}

// NewEncoder implements Codec.
func (Text) NewEncoder(w io.Writer) Encoder {
	return &textEncoder{w: bufio.NewWriter(w), mark: kmp.Compile([]byte(textMark))}
}

type textEncoder struct {
	w    *bufio.Writer
	mark *kmp.Matcher
}

func (e *textEncoder) Literal(p []byte) error {
	for {
		i := e.mark.Index(p)
		if i < 0 {
			_, err := e.w.Write(p)
			return err
		}
		if _, err := e.w.Write(p[:i]); err != nil {
			return err
		}
		if _, err := e.w.WriteString("<dpc:esc/>"); err != nil {
			return err
		}
		p = p[i+len(textMark):]
	}
}

func (e *textEncoder) Get(key, gen uint32) error {
	_, err := fmt.Fprintf(e.w, `<dpc:get k="%d" g="%d"/>`, key, gen)
	return err
}

func (e *textEncoder) Include(key, gen uint32) error {
	_, err := fmt.Fprintf(e.w, `<dpc:inc k="%d" g="%d"/>`, key, gen)
	return err
}

func (e *textEncoder) Set(key, gen uint32, content []byte) error {
	if _, err := fmt.Fprintf(e.w, `<dpc:set k="%d" g="%d" n="%d">`, key, gen, len(content)); err != nil {
		return err
	}
	if _, err := e.w.Write(content); err != nil {
		return err
	}
	_, err := e.w.WriteString("</dpc:set>")
	return err
}

func (e *textEncoder) Flush() error { return e.w.Flush() }

// NewDecoder implements Codec.
func (Text) NewDecoder(r io.Reader) Decoder {
	return &textDecoder{r: bufio.NewReader(r), mark: kmp.Compile([]byte(textMark)).Stream()}
}

type textDecoder struct {
	r       *bufio.Reader
	mark    *kmp.Stream
	buf     []byte
	pending []Instruction
	eof     bool
}

func (d *textDecoder) Next() (Instruction, error) {
	for {
		if len(d.pending) > 0 {
			in := d.pending[0]
			d.pending = d.pending[1:]
			return in, nil
		}
		if d.eof {
			return Instruction{}, io.EOF
		}
		if err := d.readMore(); err != nil {
			return Instruction{}, err
		}
	}
}

func (d *textDecoder) emitLiteral(drop int) {
	lit := d.buf[:len(d.buf)-drop]
	if len(lit) > 0 {
		cp := make([]byte, len(lit))
		copy(cp, lit)
		d.pending = append(d.pending, Instruction{Op: OpLiteral, Data: cp})
	}
	d.buf = d.buf[:0]
}

func (d *textDecoder) readMore() error {
	for len(d.pending) == 0 {
		b, err := d.r.ReadByte()
		if err == io.EOF {
			d.eof = true
			d.mark.Reset()
			d.emitLiteral(0)
			return nil
		}
		if err != nil {
			return err
		}
		d.buf = append(d.buf, b)
		if ends := d.mark.Feed([]byte{b}); len(ends) > 0 {
			d.mark.Reset()
			d.emitLiteral(len(textMark))
			in, err := d.readTag()
			if err != nil {
				return err
			}
			d.pending = append(d.pending, in)
			return nil
		}
		if keep := d.mark.State(); len(d.buf)-keep >= maxLiteralChunk {
			tail := make([]byte, keep)
			copy(tail, d.buf[len(d.buf)-keep:])
			d.emitLiteral(keep)
			d.buf = append(d.buf, tail...)
			return nil
		}
	}
	return nil
}

// expect consumes and verifies a fixed string.
func (d *textDecoder) expect(want string) error {
	got := make([]byte, len(want))
	if _, err := io.ReadFull(d.r, got); err != nil {
		return corrupt("truncated tag (want %q): %v", want, err)
	}
	if string(got) != want {
		return corrupt("malformed tag: got %q, want %q", got, want)
	}
	return nil
}

// attr parses ` NAME="123"` (leading space included).
func (d *textDecoder) attr(name string) (uint64, error) {
	if err := d.expect(" " + name + `="`); err != nil {
		return 0, err
	}
	digits, err := d.r.ReadBytes('"')
	if err != nil {
		return 0, corrupt("truncated %s attribute: %v", name, err)
	}
	v, err := strconv.ParseUint(string(digits[:len(digits)-1]), 10, 64)
	if err != nil {
		return 0, corrupt("bad %s attribute %q", name, digits)
	}
	return v, nil
}

func (d *textDecoder) readTag() (Instruction, error) {
	// The "<dpc:" mark is already consumed; a 3-byte verb follows.
	verb := make([]byte, 3)
	if _, err := io.ReadFull(d.r, verb); err != nil {
		return Instruction{}, corrupt("truncated tag verb: %v", err)
	}
	switch string(verb) {
	case "esc":
		if err := d.expect("/>"); err != nil {
			return Instruction{}, err
		}
		return Instruction{Op: OpLiteral, Data: []byte(textMark)}, nil
	case "get":
		key, err := d.attr("k")
		if err != nil {
			return Instruction{}, err
		}
		gen, err := d.attr("g")
		if err != nil {
			return Instruction{}, err
		}
		if err := d.expect("/>"); err != nil {
			return Instruction{}, err
		}
		return Instruction{Op: OpGet, Key: uint32(key), Gen: uint32(gen)}, nil
	case "inc":
		key, err := d.attr("k")
		if err != nil {
			return Instruction{}, err
		}
		gen, err := d.attr("g")
		if err != nil {
			return Instruction{}, err
		}
		if err := d.expect("/>"); err != nil {
			return Instruction{}, err
		}
		return Instruction{Op: OpInclude, Key: uint32(key), Gen: uint32(gen)}, nil
	case "set":
		key, err := d.attr("k")
		if err != nil {
			return Instruction{}, err
		}
		gen, err := d.attr("g")
		if err != nil {
			return Instruction{}, err
		}
		n, err := d.attr("n")
		if err != nil {
			return Instruction{}, err
		}
		if err := d.expect(">"); err != nil {
			return Instruction{}, err
		}
		if n > 1<<30 {
			return Instruction{}, corrupt("SET len %d exceeds limit", n)
		}
		content, err := readSetContent(d.r, n)
		if err != nil {
			return Instruction{}, corrupt("SET content: %v", err)
		}
		if err := d.expect("</dpc:set>"); err != nil {
			return Instruction{}, err
		}
		return Instruction{Op: OpSet, Key: uint32(key), Gen: uint32(gen), Data: content}, nil
	default:
		return Instruction{}, corrupt("unknown text tag verb %q", verb)
	}
}
