package tmpl_test

// Fuzz harnesses for the template codecs. Three properties per codec:
//
//  1. The decoder never panics on arbitrary input (and never trusts a
//     length header for an allocation — see readSetContent in tmpl.go).
//  2. tmplplan.Compile never panics and errors exactly when DecodeAll
//     errors: the proxy decides "plan path vs interpreter fallback" on
//     that error, so the two must never disagree about corruption.
//  3. When the template decodes, the compiled executor and the streaming
//     interpreter agree on error/no-error and on output bytes against
//     identically seeded stores — the conformance suite's invariant,
//     extended from eight golden shapes to whatever the mutator finds.
//
// The fuzz package is external (tmpl_test) so it can drive the real
// interpreter in internal/dpc without an import cycle.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"runtime"
	"testing"

	"dpcache/internal/dpc"
	"dpcache/internal/fragstore"
	"dpcache/internal/tmpl"
	"dpcache/internal/tmplplan"
)

// seedTemplates mirrors the conformance-suite golden shapes
// (internal/dpc/planconform_test.go): every opcode, set-then-get reuse,
// strict generation mismatches, nested includes, and literals that
// collide with the codec's own framing so the mutator starts near the
// escape machinery.
func seedTemplates(c tmpl.Codec) [][]byte {
	shapes := [][]tmpl.Instruction{
		nil, // empty template
		{{Op: tmpl.OpLiteral, Data: []byte("<html>static</html>")}},
		{
			{Op: tmpl.OpLiteral, Data: []byte("<a>")},
			{Op: tmpl.OpSet, Key: 3, Gen: 9, Data: []byte("FRAG")},
			{Op: tmpl.OpGet, Key: 3, Gen: 9},
			{Op: tmpl.OpLiteral, Data: []byte("</a>")},
		},
		{
			{Op: tmpl.OpGet, Key: 1, Gen: 1},
			{Op: tmpl.OpLiteral, Data: []byte("|")},
			{Op: tmpl.OpGet, Key: 2, Gen: 1},
			{Op: tmpl.OpGet, Key: 1, Gen: 1},
		},
		{
			{Op: tmpl.OpGet, Key: 9, Gen: 3},
			{Op: tmpl.OpSet, Key: 5, Gen: 1, Data: []byte("landed")},
			{Op: tmpl.OpGet, Key: 8, Gen: 1},
		},
		{{Op: tmpl.OpGet, Key: 2, Gen: 7}},
		{
			{Op: tmpl.OpLiteral, Data: []byte("A")},
			{Op: tmpl.OpInclude, Key: 20, Gen: 1},
			{Op: tmpl.OpGet, Key: 1, Gen: 1},
		},
		// Literal containing the binary magic and the text tag prefix:
		// exercises both codecs' escape paths.
		{{Op: tmpl.OpLiteral, Data: append(append([]byte("x"), tmpl.Magic...), []byte("<dpc:esc/><dpc:get")...)}},
		// Large-ish SET so length-header mutations are reachable.
		{{Op: tmpl.OpSet, Key: 7, Gen: 2, Data: bytes.Repeat([]byte("y"), 4096)}},
	}
	var out [][]byte
	for _, ins := range shapes {
		var buf bytes.Buffer
		if err := tmpl.EncodeAll(c, &buf, ins); err != nil {
			panic(err)
		}
		out = append(out, buf.Bytes())
	}
	return out
}

// fuzzDecode is the shared fuzz body for both codecs.
func fuzzDecode(t *testing.T, codec tmpl.Codec, data []byte) {
	if len(data) > 1<<20 {
		return // bound per-case work; headers lie about lengths far below this
	}

	_, decErr := tmpl.DecodeAll(codec, bytes.NewReader(data))
	plan, compErr := tmplplan.Compile(codec, data)
	if (decErr == nil) != (compErr == nil) {
		t.Fatalf("decode/compile disagree on corruption:\nDecodeAll: %v\nCompile:   %v", decErr, compErr)
	}
	if decErr != nil {
		return
	}

	// The template is well-formed: both engines must agree. Stores start
	// empty and identical; unresolved GETs are strict-mode staleness, not
	// corruption, and must be reported identically by both paths. The
	// map-backed keyed view is used instead of the slot store because the
	// slot store allocates its full capacity up front and fuzz-mutated
	// keys span the whole uint32 range.
	oracleStore := fuzzStore(t)
	planStore := fuzzStore(t)

	var wantPage bytes.Buffer
	asm := dpc.NewAssembler(oracleStore, codec, true)
	_, wantErr := asm.Assemble(&wantPage, bytes.NewReader(data))

	var gotPage bytes.Buffer
	ex := &tmplplan.Exec{Store: planStore, Strict: true, Codec: codec, Parallelism: 1}
	_, gotErr := ex.Run(plan, &gotPage, nil)

	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("engines disagree on error:\ninterpreter: %v\ncompiled:    %v\ntemplate: %q", wantErr, gotErr, data)
	}
	if !bytes.Equal(wantPage.Bytes(), gotPage.Bytes()) {
		t.Fatalf("engines disagree on output:\ninterpreter: %q\ncompiled:    %q\ntemplate: %q",
			wantPage.Bytes(), gotPage.Bytes(), data)
	}
}

// fuzzStore returns an unbounded map-backed fragment store that accepts
// the full uint32 key range without allocating per-slot capacity.
func fuzzStore(t *testing.T) fragstore.FragmentStore {
	t.Helper()
	ks, err := fragstore.NewKeyed(fragstore.KeyedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := ks.AsFragmentStore(1 << 32)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// TestSetLengthHeaderDoesNotPreallocate pins the crasher class the fuzz
// harnesses exist to catch: a few-byte input whose SET length header
// claims half a gigabyte must fail as corrupt without the decoder ever
// allocating the claimed size (it used to make([]byte, n) before
// reading a single content byte).
func TestSetLengthHeaderDoesNotPreallocate(t *testing.T) {
	const claimed = 512 << 20

	// Binary open tag: magic 'S' uvarint(key) uvarint(gen) uvarint(len),
	// then the stream ends with no content at all.
	lying := append([]byte{}, tmpl.Magic...)
	lying = append(lying, 'S', 1, 1)
	lying = binary.AppendUvarint(lying, claimed)

	inputs := map[string]struct {
		codec tmpl.Codec
		data  []byte
	}{
		"binary": {tmpl.Binary{}, lying},
		"text":   {tmpl.Text{}, []byte(`<dpc:set k="1" g="1" n="536870912">oops`)},
	}
	for name, in := range inputs {
		t.Run(name, func(t *testing.T) {
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			_, err := tmpl.DecodeAll(in.codec, bytes.NewReader(in.data))
			runtime.ReadMemStats(&after)
			if !errors.Is(err, tmpl.ErrCorrupt) {
				t.Fatalf("lying SET header decoded without ErrCorrupt: %v", err)
			}
			if grew := after.TotalAlloc - before.TotalAlloc; grew > 1<<20 {
				t.Fatalf("decoder allocated %d bytes for a %d-byte input claiming a %d-byte SET",
					grew, len(in.data), claimed)
			}
		})
	}
}

func FuzzTemplateDecodeBinary(f *testing.F) {
	for _, seed := range seedTemplates(tmpl.Binary{}) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzDecode(t, tmpl.Binary{}, data)
	})
}

func FuzzTemplateDecodeText(f *testing.F) {
	for _, seed := range seedTemplates(tmpl.Text{}) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzDecode(t, tmpl.Text{}, data)
	})
}
