package tmpl

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"

	"dpcache/internal/kmp"
)

// Magic introduces every binary-codec tag. 0x01 cannot appear in HTML text
// produced by well-formed generators, so escapes are rare in practice; the
// encoder still handles them for full generality.
var Magic = []byte{0x01, 'D', 'P', 'C'}

// Binary op bytes following the magic.
const (
	bopGet   = 'G' // magic G key gen
	bopSet   = 'S' // magic S key gen len <content> magic E
	bopEnd   = 'E' // closes a SET
	bopQuote = 'Z' // literal occurrence of the magic itself
	bopInc   = 'I' // magic I key gen — nested-include of slot Key
)

// Binary is the compact production codec.
type Binary struct{}

// Name implements Codec.
func (Binary) Name() string { return "binary" }

// GetTagSize implements Codec: magic + op + uvarint(key) + uvarint(gen).
func (Binary) GetTagSize(key, gen uint32) int {
	return len(Magic) + 1 + uvarintLen(uint64(key)) + uvarintLen(uint64(gen))
}

// SetOverhead implements Codec: open tag (magic+op+key+gen+len) plus close
// tag (magic+op).
func (Binary) SetOverhead(key, gen uint32, contentLen int) int {
	open := len(Magic) + 1 + uvarintLen(uint64(key)) + uvarintLen(uint64(gen)) + uvarintLen(uint64(contentLen))
	return open + len(Magic) + 1
}

func uvarintLen(v uint64) int {
	var buf [binary.MaxVarintLen64]byte
	return binary.PutUvarint(buf[:], v)
}

// NewEncoder implements Codec.
func (Binary) NewEncoder(w io.Writer) Encoder {
	return &binEncoder{w: bufio.NewWriter(w), magic: kmp.Compile(Magic)}
}

type binEncoder struct {
	w     *bufio.Writer
	magic *kmp.Matcher
}

func (e *binEncoder) tag(op byte, fields ...uint64) error {
	if _, err := e.w.Write(Magic); err != nil {
		return err
	}
	if err := e.w.WriteByte(op); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	for _, f := range fields {
		n := binary.PutUvarint(buf[:], f)
		if _, err := e.w.Write(buf[:n]); err != nil {
			return err
		}
	}
	return nil
}

// Literal writes p, escaping any embedded magic sequences.
func (e *binEncoder) Literal(p []byte) error {
	for {
		i := e.magic.Index(p)
		if i < 0 {
			_, err := e.w.Write(p)
			return err
		}
		if _, err := e.w.Write(p[:i]); err != nil {
			return err
		}
		if err := e.tag(bopQuote); err != nil {
			return err
		}
		p = p[i+len(Magic):]
	}
}

func (e *binEncoder) Get(key, gen uint32) error {
	return e.tag(bopGet, uint64(key), uint64(gen))
}

func (e *binEncoder) Include(key, gen uint32) error {
	return e.tag(bopInc, uint64(key), uint64(gen))
}

func (e *binEncoder) Set(key, gen uint32, content []byte) error {
	if err := e.tag(bopSet, uint64(key), uint64(gen), uint64(len(content))); err != nil {
		return err
	}
	if _, err := e.w.Write(content); err != nil {
		return err
	}
	return e.tag(bopEnd)
}

func (e *binEncoder) Flush() error { return e.w.Flush() }

// NewDecoder implements Codec.
func (Binary) NewDecoder(r io.Reader) Decoder {
	return &binDecoder{r: bufio.NewReader(r), magic: kmp.Compile(Magic).Stream()}
}

// maxLiteralChunk bounds the size of a single literal instruction so the
// assembler can stream very large non-cacheable regions without buffering
// them whole.
const maxLiteralChunk = 32 * 1024

type binDecoder struct {
	r       *bufio.Reader
	magic   *kmp.Stream
	buf     []byte // literal bytes accumulated since the last instruction
	pending []Instruction
	eof     bool
}

// Next implements Decoder. Returned Data slices are freshly allocated and
// remain valid after subsequent calls.
func (d *binDecoder) Next() (Instruction, error) {
	for {
		if len(d.pending) > 0 {
			in := d.pending[0]
			d.pending = d.pending[1:]
			return in, nil
		}
		if d.eof {
			return Instruction{}, io.EOF
		}
		if err := d.readMore(); err != nil {
			return Instruction{}, err
		}
	}
}

// emitLiteral queues the accumulated literal (minus the trailing drop
// bytes, which belong to a recognized tag) and resets the buffer.
func (d *binDecoder) emitLiteral(drop int) {
	lit := d.buf[:len(d.buf)-drop]
	if len(lit) > 0 {
		cp := make([]byte, len(lit))
		copy(cp, lit)
		d.pending = append(d.pending, Instruction{Op: OpLiteral, Data: cp})
	}
	d.buf = d.buf[:0]
}

// readMore consumes input until at least one instruction is queued or an
// error occurs.
func (d *binDecoder) readMore() error {
	for len(d.pending) == 0 {
		b, err := d.r.ReadByte()
		if err == io.EOF {
			d.eof = true
			// A partial magic prefix at EOF is plain literal output.
			d.magic.Reset()
			d.emitLiteral(0)
			return nil
		}
		if err != nil {
			return err
		}
		d.buf = append(d.buf, b)
		if ends := d.magic.Feed([]byte{b}); len(ends) > 0 {
			d.magic.Reset()
			d.emitLiteral(len(Magic))
			in, err := d.readTag()
			if err != nil {
				return err
			}
			d.pending = append(d.pending, in)
			return nil
		}
		// Stream out very long literals early; never split a
		// partial magic prefix across the boundary.
		if keep := d.magic.State(); len(d.buf)-keep >= maxLiteralChunk {
			tail := make([]byte, keep)
			copy(tail, d.buf[len(d.buf)-keep:])
			d.emitLiteral(keep)
			d.buf = append(d.buf, tail...)
			return nil
		}
	}
	return nil
}

func (d *binDecoder) readTag() (Instruction, error) {
	op, err := d.r.ReadByte()
	if err != nil {
		return Instruction{}, corrupt("truncated tag: %v", err)
	}
	switch op {
	case bopQuote:
		return Instruction{Op: OpLiteral, Data: append([]byte(nil), Magic...)}, nil
	case bopGet:
		key, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Instruction{}, corrupt("GET key: %v", err)
		}
		gen, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Instruction{}, corrupt("GET gen: %v", err)
		}
		return Instruction{Op: OpGet, Key: uint32(key), Gen: uint32(gen)}, nil
	case bopInc:
		key, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Instruction{}, corrupt("INC key: %v", err)
		}
		gen, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Instruction{}, corrupt("INC gen: %v", err)
		}
		return Instruction{Op: OpInclude, Key: uint32(key), Gen: uint32(gen)}, nil
	case bopSet:
		key, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Instruction{}, corrupt("SET key: %v", err)
		}
		gen, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Instruction{}, corrupt("SET gen: %v", err)
		}
		n, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Instruction{}, corrupt("SET len: %v", err)
		}
		if n > 1<<30 {
			return Instruction{}, corrupt("SET len %d exceeds limit", n)
		}
		content, err := readSetContent(d.r, n)
		if err != nil {
			return Instruction{}, corrupt("SET content: %v", err)
		}
		var close [5]byte
		if _, err := io.ReadFull(d.r, close[:]); err != nil {
			return Instruction{}, corrupt("SET close tag: %v", err)
		}
		if !bytes.Equal(close[:4], Magic) || close[4] != bopEnd {
			return Instruction{}, corrupt("SET not closed by END tag")
		}
		return Instruction{Op: OpSet, Key: uint32(key), Gen: uint32(gen), Data: content}, nil
	default:
		return Instruction{}, corrupt("unknown op byte %q", op)
	}
}
