package tmpl_test

import (
	"bytes"
	"fmt"
	"io"

	"dpcache/internal/tmpl"
)

// A template is literal page bytes interleaved with GET and SET
// instructions; the text codec shows the structure, the binary codec is
// what production traffic uses.
func Example() {
	var wire bytes.Buffer
	enc := tmpl.Text{}.NewEncoder(&wire)
	_ = enc.Literal([]byte("<html>"))
	_ = enc.Get(7, 1)                           // splice cached fragment from slot 7
	_ = enc.Set(8, 2, []byte("fresh fragment")) // store + splice new content
	_ = enc.Literal([]byte("</html>"))
	_ = enc.Flush()
	fmt.Println(wire.String())

	dec := tmpl.Text{}.NewDecoder(&wire)
	for {
		in, err := dec.Next()
		if err == io.EOF {
			break
		}
		fmt.Printf("%s key=%d len=%d\n", in.Op, in.Key, len(in.Data))
	}
	// Output:
	// <html><dpc:get k="7" g="1"/><dpc:set k="8" g="2" n="14">fresh fragment</dpc:set></html>
	// LIT key=0 len=6
	// GET key=7 len=0
	// SET key=8 len=14
	// LIT key=0 len=7
}
