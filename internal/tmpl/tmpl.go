// Package tmpl defines the template wire protocol spoken between the Back
// End Monitor (origin side) and the Dynamic Proxy Cache.
//
// A template is the page layout the paper describes in Section 4: the
// origin's response body is a stream of instructions —
//
//   - literal bytes (non-cacheable output, markup between fragments),
//   - GET(dpcKey): "splice in the fragment you already hold in this slot",
//   - SET(dpcKey){content}: "store this freshly generated fragment in this
//     slot, and splice it in",
//   - INCLUDE(dpcKey): "the fragment in this slot is itself a template;
//     assemble it recursively in place" (ESI-style nested composition).
//
// Two codecs implement the protocol. The binary codec is the production
// format: a 4-byte magic, an op byte, and uvarint fields give a GET tag of
// ~7–10 bytes, matching the paper's tag-size parameter g (Table 2: 10
// bytes). SET content is bracketed by an open tag and a close tag so a cache
// miss costs s_e + 2g bytes, exactly the accounting of Section 5. The text
// codec is human-readable and exists for debugging and for the codec
// ablation benchmark.
//
// Literal output may contain bytes that collide with the magic sequence;
// encoders escape such occurrences so decode(encode(x)) == x for arbitrary
// x. (The paper does not discuss this, but any real deployment needs it.)
package tmpl

import (
	"bytes"
	"errors"
	"fmt"
	"io"
)

// readSetContent reads exactly n bytes of SET payload without trusting n
// for the allocation: a corrupt length header can claim a gigabyte the
// stream never delivers, and sizing the buffer up front would turn a
// few-byte template into a giant allocation. The buffer grows only as
// bytes actually arrive.
func readSetContent(r io.Reader, n uint64) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Op identifies an instruction kind.
type Op byte

// Instruction opcodes.
const (
	OpLiteral Op = iota // Data holds literal page bytes
	OpGet               // splice fragment from slot Key
	OpSet               // store Data into slot Key, then splice it
	OpInclude           // slot Key holds a nested template; assemble it inline
)

// String returns the mnemonic for the op.
func (o Op) String() string {
	switch o {
	case OpLiteral:
		return "LIT"
	case OpGet:
		return "GET"
	case OpSet:
		return "SET"
	case OpInclude:
		return "INC"
	default:
		return fmt.Sprintf("Op(%d)", byte(o))
	}
}

// Instruction is one decoded unit of a template stream.
type Instruction struct {
	Op   Op
	Key  uint32 // dpcKey; meaningful for GET/SET
	Gen  uint32 // generation for strict-mode staleness checks
	Data []byte // literal bytes, or SET fragment content
}

// Encoder writes a template stream.
type Encoder interface {
	// Literal appends raw page bytes.
	Literal(p []byte) error
	// Get emits a splice-from-cache tag.
	Get(key, gen uint32) error
	// Set emits a store-and-splice tag pair bracketing content.
	Set(key, gen uint32, content []byte) error
	// Include emits a nested-include tag: slot Key holds another template
	// in the same codec, to be assembled recursively in place (ESI-style
	// composition). A missing or stale slot is a stale reference, exactly
	// like a GET.
	Include(key, gen uint32) error
	// Flush forces any buffered bytes to the underlying writer.
	Flush() error
}

// Decoder reads a template stream. Next returns io.EOF after the final
// instruction. Implementations may reuse the returned Data buffer between
// calls; callers that retain it must copy.
type Decoder interface {
	Next() (Instruction, error)
}

// Codec constructs encoders and decoders for one wire format.
type Codec interface {
	// Name identifies the codec on the X-DPC-Template response header.
	Name() string
	NewEncoder(w io.Writer) Encoder
	NewDecoder(r io.Reader) Decoder
	// GetTagSize returns the encoded size of a GET tag for the given key
	// and generation — the paper's g.
	GetTagSize(key, gen uint32) int
	// SetOverhead returns the encoded overhead (everything except the
	// content itself) of a SET for the given fields — the paper's 2g.
	SetOverhead(key, gen uint32, contentLen int) int
}

// ErrCorrupt reports a malformed template stream.
var ErrCorrupt = errors.New("tmpl: corrupt template stream")

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// ByName returns the codec registered under name.
func ByName(name string) (Codec, error) {
	switch name {
	case "binary":
		return Binary{}, nil
	case "text":
		return Text{}, nil
	}
	return nil, fmt.Errorf("tmpl: unknown codec %q", name)
}

// EncodeAll is a convenience that writes a sequence of instructions to w.
func EncodeAll(c Codec, w io.Writer, ins []Instruction) error {
	e := c.NewEncoder(w)
	for _, in := range ins {
		var err error
		switch in.Op {
		case OpLiteral:
			err = e.Literal(in.Data)
		case OpGet:
			err = e.Get(in.Key, in.Gen)
		case OpSet:
			err = e.Set(in.Key, in.Gen, in.Data)
		case OpInclude:
			err = e.Include(in.Key, in.Gen)
		default:
			err = fmt.Errorf("tmpl: cannot encode op %v", in.Op)
		}
		if err != nil {
			return err
		}
	}
	return e.Flush()
}

// DecodeAll reads instructions until EOF, copying Data buffers so the
// result remains valid. Adjacent literals are returned as produced by the
// decoder (they are not merged).
func DecodeAll(c Codec, r io.Reader) ([]Instruction, error) {
	d := c.NewDecoder(r)
	var out []Instruction
	for {
		in, err := d.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		cp := make([]byte, len(in.Data))
		copy(cp, in.Data)
		in.Data = cp
		out = append(out, in)
	}
}

// Normalize merges adjacent literals and drops empty ones, producing the
// canonical form used to compare instruction streams in tests.
func Normalize(ins []Instruction) []Instruction {
	var out []Instruction
	for _, in := range ins {
		if in.Op == OpLiteral {
			if len(in.Data) == 0 {
				continue
			}
			if n := len(out); n > 0 && out[n-1].Op == OpLiteral {
				merged := make([]byte, 0, len(out[n-1].Data)+len(in.Data))
				merged = append(merged, out[n-1].Data...)
				merged = append(merged, in.Data...)
				out[n-1].Data = merged
				continue
			}
		}
		out = append(out, in)
	}
	return out
}
