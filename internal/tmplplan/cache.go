package tmplplan

import (
	"crypto/sha256"
	"sync/atomic"

	"dpcache/internal/fragstore"
	"dpcache/internal/tmpl"
)

// Cache is the plan-cache tier: compiled programs keyed by a SHA-256 of
// the template bytes, stored by reference in a KeyedStore so the global
// eviction machinery (byte budget via Plan.Footprint, entry bound, LRU)
// and the invalidation fabric's KeyedTier surface apply unchanged.
// Content hashing makes invalidation-by-redeploy automatic — an origin
// that ships a changed layout produces different bytes, misses, and
// compiles fresh; the old plan ages out — while the fabric's
// "plan"-scoped flush (and gap recovery) empties the tier explicitly.
type Cache struct {
	codec tmpl.Codec
	store *fragstore.KeyedStore

	hits     atomic.Int64
	misses   atomic.Int64
	compiles atomic.Int64
}

// CacheConfig parameterizes a plan cache.
type CacheConfig struct {
	// Shards is the backing KeyedStore's shard count (0 = default).
	Shards int
	// MaxEntries bounds resident plans (0 = unbounded).
	MaxEntries int
	// ByteBudget bounds the summed Plan.Footprint of resident plans
	// (0 = unbounded).
	ByteBudget int64
}

// CacheStats is a point-in-time snapshot of plan-cache activity.
type CacheStats struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Compiles int64 `json:"compiles"`
	Resident int   `json:"resident"`
	Bytes    int64 `json:"bytes"`
}

// NewCache returns a plan cache compiling templates with codec.
func NewCache(codec tmpl.Codec, cfg CacheConfig) (*Cache, error) {
	ks, err := fragstore.NewKeyed(fragstore.KeyedConfig{
		Shards:     cfg.Shards,
		MaxEntries: cfg.MaxEntries,
		ByteBudget: cfg.ByteBudget,
	})
	if err != nil {
		return nil, err
	}
	return &Cache{codec: codec, store: ks}, nil
}

// Get returns the compiled plan for template, compiling and caching it on
// miss; hit reports whether the plan was already resident. Two concurrent
// misses on the same bytes may both compile; plans are immutable, so the
// duplicate Put is harmless. A compile error (a corrupt template) is
// returned without caching — the caller falls back to the streaming
// interpreter, which reproduces the exact partial-consumption error
// semantics.
func (c *Cache) Get(template []byte) (plan *Plan, hit bool, err error) {
	sum := sha256.Sum256(template)
	key := string(sum[:])
	if e, ok := c.store.Get(key); ok {
		if p, ok := e.Obj.(*Plan); ok {
			c.hits.Add(1)
			return p, true, nil
		}
	}
	c.misses.Add(1)
	p, err := Compile(c.codec, template)
	if err != nil {
		return nil, false, err
	}
	c.compiles.Add(1)
	c.store.Put(key, fragstore.KeyedEntry{Obj: p, Cost: p.Footprint()}, 0)
	return p, false, nil
}

// Codec returns the codec plans are compiled with.
func (c *Cache) Codec() tmpl.Codec { return c.codec }

// Store exposes the backing KeyedStore — the KeyedTier surface the
// invalidation fabric's plan subscriber drives.
func (c *Cache) Store() *fragstore.KeyedStore { return c.store }

// Stats snapshots cache activity.
func (c *Cache) Stats() CacheStats {
	ks := c.store.Stats()
	return CacheStats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Compiles: c.compiles.Load(),
		Resident: ks.Resident,
		Bytes:    ks.Bytes,
	}
}
