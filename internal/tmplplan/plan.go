package tmplplan

import (
	"bytes"

	"dpcache/internal/tmpl"
)

// opKind discriminates program operators.
type opKind uint8

const (
	opLit opKind = iota // emit data
	opGet               // resolve slot (key, gen) and emit it
	opSet               // store data into slot (key, gen), then emit it
	opInc               // slot (key, gen) holds a nested template; run it
)

// op is one operator of a compiled program. Programs are immutable after
// Compile; data slices are owned by the plan and shared zero-copy with
// every execution.
type op struct {
	kind opKind
	key  uint32
	gen  uint32
	// data holds literal bytes (opLit) or SET content (opSet).
	data []byte
	// refStr is the interned "key:gen" string for trace events
	// (opGet/opSet/opInc).
	refStr string
	// refSlot is the plan-dense index of this op's (key, gen) pair, used
	// for allocation-free ref dedup at execution (-1 for literals).
	refSlot int32
	// pre is this op's index into Plan.par when the GET is eligible for
	// parallel prefetch, -1 otherwise.
	pre int32
	// seq marks a GET that must resolve in walk order because an earlier
	// SET in the program writes its key, or because it follows an
	// include (which can SET arbitrary keys at runtime).
	seq bool
}

// parGet is one prefetchable lookup: a distinct (key, gen) pair no
// earlier program op can affect.
type parGet struct {
	key uint32
	gen uint32
}

// Plan is an immutable compiled template program. A Plan is safe for
// concurrent execution by any number of goroutines.
type Plan struct {
	ops []op
	// par lists the distinct independent GET lookups, in first-use order.
	par []parGet
	// numRefs is the count of distinct (key, gen) pairs referenced.
	numRefs int
	// hasInc marks programs containing nested includes, whose ref dedup
	// must span sub-programs and therefore cannot use the dense slots.
	hasInc bool
	// srcLen is the compiled template's byte length (Stats.TemplateBytes).
	srcLen int64
	// footprint is the plan's retained memory estimate (cache Cost).
	footprint int64
}

// Ops returns the program length in operators.
func (p *Plan) Ops() int { return len(p.ops) }

// IndependentGets returns how many distinct GET lookups are eligible for
// parallel prefetch.
func (p *Plan) IndependentGets() int { return len(p.par) }

// SrcLen returns the compiled template's byte length.
func (p *Plan) SrcLen() int64 { return p.srcLen }

// Footprint estimates the plan's retained bytes — the cost it charges
// against a plan cache's byte budget.
func (p *Plan) Footprint() int64 { return p.footprint }

// opOverhead approximates the per-op struct + bookkeeping bytes counted
// into a plan's footprint beyond its retained data.
const opOverhead = 64

// Compile decodes template once and builds its operator program. The
// returned error is the decoder's own (wrapping tmpl.ErrCorrupt for
// malformed streams); callers fall back to the streaming interpreter in
// that case so partial-consumption semantics stay identical.
func Compile(codec tmpl.Codec, template []byte) (*Plan, error) {
	ins, err := tmpl.DecodeAll(codec, bytes.NewReader(template))
	if err != nil {
		return nil, err
	}
	p := &Plan{srcLen: int64(len(template))}
	p.ops = make([]op, 0, len(ins))
	refSlots := make(map[uint64]int32, 8)
	parSlots := make(map[uint64]int32, 8)
	setKeys := make(map[uint32]bool, 4)
	afterInc := false
	var retained int64
	slot := func(key, gen uint32) int32 {
		id := uint64(key)<<32 | uint64(gen)
		if s, ok := refSlots[id]; ok {
			return s
		}
		s := int32(len(refSlots))
		refSlots[id] = s
		return s
	}
	for _, in := range ins {
		switch in.Op {
		case tmpl.OpLiteral:
			p.ops = append(p.ops, op{kind: opLit, data: in.Data, refSlot: -1, pre: -1})
			retained += int64(len(in.Data))
		case tmpl.OpGet:
			o := op{
				kind: opGet, key: in.Key, gen: in.Gen,
				refStr:  RefString(in.Key, in.Gen),
				refSlot: slot(in.Key, in.Gen),
				pre:     -1,
				seq:     setKeys[in.Key] || afterInc,
			}
			if !o.seq {
				id := uint64(in.Key)<<32 | uint64(in.Gen)
				pi, ok := parSlots[id]
				if !ok {
					pi = int32(len(p.par))
					parSlots[id] = pi
					p.par = append(p.par, parGet{key: in.Key, gen: in.Gen})
				}
				o.pre = pi
			}
			p.ops = append(p.ops, o)
		case tmpl.OpSet:
			p.ops = append(p.ops, op{
				kind: opSet, key: in.Key, gen: in.Gen, data: in.Data,
				refStr:  RefString(in.Key, in.Gen),
				refSlot: slot(in.Key, in.Gen),
				pre:     -1,
			})
			retained += int64(len(in.Data))
			setKeys[in.Key] = true
		case tmpl.OpInclude:
			p.ops = append(p.ops, op{
				kind: opInc, key: in.Key, gen: in.Gen,
				refStr:  RefString(in.Key, in.Gen),
				refSlot: slot(in.Key, in.Gen),
				pre:     -1,
			})
			p.hasInc = true
			afterInc = true
		}
	}
	p.numRefs = len(refSlots)
	p.footprint = retained + int64(len(p.ops))*opOverhead + int64(p.numRefs)*24 + 128
	return p, nil
}
