// Package tmplplan compiles template streams into immutable operator
// programs and executes them against a fragment store.
//
// The interpreter in internal/dpc pays the paper's scan cost (z·B_C) on
// every request: the template byte stream is re-decoded and every GET
// resolves sequentially even when the identical template was assembled
// microseconds ago. This package pays the scan once. Compile decodes a
// template into a flat []op program — literal-emit ops referencing the
// template's bytes (retained once, sliced zero-copy at execution),
// fragment-get, fragment-set, and nested-include ops — and Cache keys
// compiled programs by a strong hash of the template bytes, so an origin
// redeploy that changes the layout naturally misses and recompiles.
//
// Execution (Exec.Run) walks the program in template order, so output
// bytes, AssembleStats counters, Refs/Stale ordering, and the
// "consume all SETs even when doomed" invariant are identical to the
// interpreter's — the conformance suite in internal/dpc asserts byte
// equality. The one liberty taken is *when* independent fragment-gets
// read the store: GETs that no earlier SET or include in the same
// program can affect are resolved concurrently by a bounded worker
// fan-out before the walk begins, and the walk stitches the prefetched
// results back in template order. Fragment refs ("key:gen") are interned
// package-wide so neither execution path allocates per-request ref
// strings for trace events or dependency edges.
package tmplplan

import "errors"

// Ref identifies a fragment slot reference (key + generation). It is the
// element type of Stats.Stale and Stats.Refs; internal/dpc aliases it as
// StaleRef.
type Ref struct {
	Key uint32
	Gen uint32
}

// ErrStale reports that one or more GET (or include) instructions
// referenced slots that are empty or (in strict mode) carry a different
// generation than the template expected. The proxy recovers by
// re-fetching the page with the bypass header, reporting the stale
// references so the BEM invalidates them (see Stats.Stale).
var ErrStale = errors.New("dpc: template references stale or unset slot")

// MaxIncludeDepth bounds nested-include recursion: a template stored as a
// fragment may (transitively) include itself, and without a bound a cycle
// would recurse forever. Both execution paths enforce the same limit so
// they fail identically.
const MaxIncludeDepth = 8

// Stats reports what one assembly consumed and produced. internal/dpc
// aliases it as AssembleStats; both the interpreter and the compiled
// executor fill it with identical values for identical inputs (the
// conformance suite asserts this), except ParallelGets, which only the
// parallel executor moves.
type Stats struct {
	// TemplateBytes is the template stream size — the bytes that crossed
	// the origin↔DPC link and were scanned for tags (the z·B_C term of
	// the paper's scan-cost analysis). Nested-include bodies come from
	// the fragment store, not that link, so they are not counted.
	TemplateBytes int64
	// PageBytes is the assembled page size delivered to the client.
	PageBytes int64
	Gets      int
	Sets      int
	Literals  int
	// Includes counts nested-include instructions executed (at any
	// depth).
	Includes int
	// ParallelGets counts GET instructions resolved through the
	// concurrent prefetch fan-out rather than the sequential walk.
	ParallelGets int
	// Stale lists GET references that could not be satisfied. When
	// non-empty the page output is unusable and execution returns
	// ErrStale — but the template was still consumed to the end, so
	// every SET it carried has been applied to the store. (Aborting at
	// the first bad GET would discard those SETs while the directory
	// already believes them cached, wedging the fragments into a
	// permanent fallback loop.)
	Stale []Ref
	// Refs lists the unique fragment references (SETs, satisfied GETs,
	// and satisfied includes) whose content flowed into the page — the
	// dependency edges the invalidation fabric records, so a later
	// invalidation of any of them can drop the cached page.
	Refs []Ref
}
