package tmplplan

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"dpcache/internal/fragstore"
	"dpcache/internal/tmpl"
	"dpcache/internal/trace"
)

// Planner resolves nested-include bodies to compiled plans. *Cache
// implements it; a nil Planner on Exec compiles includes uncached.
type Planner interface {
	Get(template []byte) (plan *Plan, hit bool, err error)
}

// Exec executes compiled plans against a fragment store. It is a
// configuration bundle, stateless across runs and safe for concurrent
// use.
type Exec struct {
	// Store resolves fragment GETs and receives SETs.
	Store fragstore.FragmentStore
	// Strict enables generation checking on GETs (the proxy's strict
	// mode).
	Strict bool
	// Codec decodes nested-include bodies when Plans is nil.
	Codec tmpl.Codec
	// Plans, when set, caches compiled nested-include bodies (the same
	// plan cache that holds top-level plans).
	Plans Planner
	// Parallelism bounds the prefetch worker fan-out for independent
	// GETs; <= 1 disables prefetch and resolves everything in walk
	// order.
	Parallelism int
	// MinParallelGets is the minimum number of distinct independent GETs
	// a plan must carry before the fan-out is worth its goroutines
	// (default 4).
	MinParallelGets int
}

// preResult is one prefetched lookup, indexed like Plan.par.
type preResult struct {
	data []byte
	ok   bool
}

// execState threads the per-run mutable state through include recursion:
// one writer, one Stats, one ref-dedup set for the whole page.
type execState struct {
	e  *Exec
	w  io.Writer
	st *Stats
	// Dense-slot dedup for plans without includes (allocation-free up to
	// 64 distinct refs via bits; one []bool past that).
	bits uint64
	seen []bool
	// Map dedup for plans with includes, whose sub-programs have their
	// own slot spaces (lazily allocated, like the interpreter's).
	seenMap map[uint64]struct{}
	useMap  bool
}

// Run executes p, writing the assembled page to w. Semantics mirror the
// interpreter's Assembler.AssembleTrace exactly: SETs are applied even
// after the page is doomed by a stale GET, output is suppressed from the
// first stale reference onward, and the final error carries the first
// stale ref and the total count. sp, when non-nil, receives a child span
// per fragment resolution, exactly as the interpreter records them.
func (e *Exec) Run(p *Plan, w io.Writer, sp *trace.Span) (Stats, error) {
	var st Stats
	st.TemplateBytes = p.srcLen
	x := &execState{e: e, w: w, st: &st, useMap: p.hasInc}
	if !p.hasInc && p.numRefs > 64 {
		x.seen = make([]bool, p.numRefs)
	}
	var pre []preResult
	if min := e.minParallelGets(); e.Parallelism > 1 && len(p.par) >= min {
		pre = e.prefetch(p)
		st.ParallelGets = len(p.par)
	}
	if err := x.run(p, pre, sp, 0); err != nil {
		return st, err
	}
	if len(st.Stale) > 0 {
		first := st.Stale[0]
		return st, fmt.Errorf("%w (first: key %d gen %d, %d total)",
			ErrStale, first.Key, first.Gen, len(st.Stale))
	}
	return st, nil
}

func (e *Exec) minParallelGets() int {
	if e.MinParallelGets > 0 {
		return e.MinParallelGets
	}
	return 4
}

// prefetch resolves the plan's independent GETs with a bounded worker
// pool and returns the results indexed like p.par.
func (e *Exec) prefetch(p *Plan) []preResult {
	res := make([]preResult, len(p.par))
	workers := e.Parallelism
	if workers > len(p.par) {
		workers = len(p.par)
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(p.par) {
					return
				}
				g := p.par[i]
				data, ok := e.Store.Get(g.key, g.gen, e.Strict)
				res[i] = preResult{data: data, ok: ok}
			}
		}()
	}
	wg.Wait()
	return res
}

// addRef records a unique fragment reference in first-use order.
func (x *execState) addRef(key, gen uint32, slot int32) {
	if x.useMap {
		id := uint64(key)<<32 | uint64(gen)
		if x.seenMap == nil {
			x.seenMap = make(map[uint64]struct{}, 8)
		} else if _, dup := x.seenMap[id]; dup {
			return
		}
		x.seenMap[id] = struct{}{}
	} else if x.seen != nil {
		if x.seen[slot] {
			return
		}
		x.seen[slot] = true
	} else {
		if x.bits&(1<<uint(slot)) != 0 {
			return
		}
		x.bits |= 1 << uint(slot)
	}
	x.st.Refs = append(x.st.Refs, Ref{Key: key, Gen: gen})
}

// run walks one program. pre carries the top-level prefetch results
// (nil for sub-programs, whose GETs resolve in walk order).
func (x *execState) run(p *Plan, pre []preResult, sp *trace.Span, depth int) error {
	st := x.st
	for i := range p.ops {
		o := &p.ops[i]
		doomed := len(st.Stale) > 0
		switch o.kind {
		case opLit:
			st.Literals++
			if doomed {
				continue
			}
			n, err := x.w.Write(o.data)
			st.PageBytes += int64(n)
			if err != nil {
				return err
			}
		case opSet:
			st.Sets++
			if err := x.e.Store.Set(o.key, o.gen, o.data); err != nil {
				return err
			}
			x.addRef(o.key, o.gen, o.refSlot)
			if doomed {
				continue
			}
			n, err := x.w.Write(o.data)
			st.PageBytes += int64(n)
			if err != nil {
				return err
			}
		case opGet:
			st.Gets++
			var fsp *trace.Span
			if sp != nil {
				fsp = sp.Child("fragment")
			}
			var data []byte
			var ok bool
			if pre != nil && o.pre >= 0 {
				r := pre[o.pre]
				data, ok = r.data, r.ok
			} else {
				data, ok = x.e.Store.Get(o.key, o.gen, x.e.Strict)
			}
			if !ok {
				if fsp != nil {
					fsp.Event(trace.KindMiss, "fragment", o.refStr, 0)
					fsp.Finish()
				}
				st.Stale = append(st.Stale, Ref{Key: o.key, Gen: o.gen})
				continue
			}
			if fsp != nil {
				fsp.Event(trace.KindHit, "fragment", o.refStr, int64(len(data)))
				fsp.Finish()
			}
			x.addRef(o.key, o.gen, o.refSlot)
			if doomed {
				continue
			}
			n, err := x.w.Write(data)
			st.PageBytes += int64(n)
			if err != nil {
				return err
			}
		case opInc:
			st.Includes++
			if depth >= MaxIncludeDepth {
				return fmt.Errorf("dpc: include depth exceeds %d (key %d gen %d)",
					MaxIncludeDepth, o.key, o.gen)
			}
			var fsp *trace.Span
			if sp != nil {
				fsp = sp.Child("include")
			}
			data, ok := x.e.Store.Get(o.key, o.gen, x.e.Strict)
			if !ok {
				if fsp != nil {
					fsp.Event(trace.KindMiss, "fragment", o.refStr, 0)
					fsp.Finish()
				}
				st.Stale = append(st.Stale, Ref{Key: o.key, Gen: o.gen})
				continue
			}
			if fsp != nil {
				fsp.Event(trace.KindHit, "fragment", o.refStr, int64(len(data)))
			}
			x.addRef(o.key, o.gen, o.refSlot)
			// Recurse even when doomed: the nested template's SETs must
			// still land in the store (write suppression carries through
			// the shared Stats).
			sub, err := x.subplan(data)
			if err != nil {
				if fsp != nil {
					fsp.Finish()
				}
				return fmt.Errorf("dpc: decoding template: %w", err)
			}
			err = x.run(sub, nil, fsp, depth+1)
			if fsp != nil {
				fsp.Finish()
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// subplan resolves a nested-include body to a compiled plan, through the
// plan cache when one is configured.
func (x *execState) subplan(data []byte) (*Plan, error) {
	if x.e.Plans != nil {
		p, _, err := x.e.Plans.Get(data)
		return p, err
	}
	return Compile(x.e.Codec, data)
}
