package tmplplan

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"dpcache/internal/depindex"
	"dpcache/internal/fragstore"
	"dpcache/internal/tmpl"
)

func lit(s string) tmpl.Instruction {
	return tmpl.Instruction{Op: tmpl.OpLiteral, Data: []byte(s)}
}
func get(k, g uint32) tmpl.Instruction { return tmpl.Instruction{Op: tmpl.OpGet, Key: k, Gen: g} }
func set(k, g uint32, s string) tmpl.Instruction {
	return tmpl.Instruction{Op: tmpl.OpSet, Key: k, Gen: g, Data: []byte(s)}
}
func inc(k, g uint32) tmpl.Instruction {
	return tmpl.Instruction{Op: tmpl.OpInclude, Key: k, Gen: g}
}

func encode(t testing.TB, c tmpl.Codec, ins []tmpl.Instruction) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tmpl.EncodeAll(c, &buf, ins); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

func newStore(t testing.TB) fragstore.FragmentStore {
	t.Helper()
	st, err := fragstore.New(fragstore.Config{Backend: fragstore.BackendSlot, Capacity: 256})
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	return st
}

func TestRefStringMatchesDepindex(t *testing.T) {
	for _, tc := range [][2]uint32{{0, 0}, {1, 2}, {42, 7}, {1 << 31, 999999}, {4294967295, 4294967295}} {
		want := depindex.Ref(tc[0], tc[1])
		if got := RefString(tc[0], tc[1]); got != want {
			t.Fatalf("RefString(%d,%d) = %q, depindex.Ref = %q", tc[0], tc[1], got, want)
		}
	}
	// Interned: the steady state allocates nothing.
	RefString(11, 22)
	if n := testing.AllocsPerRun(100, func() { RefString(11, 22) }); n != 0 {
		t.Fatalf("interned RefString allocated %v per call", n)
	}
}

func TestCompileAnalysis(t *testing.T) {
	codec := tmpl.Binary{}
	// GET 1 is independent; GET 2 follows a SET of key 2 (sequential);
	// the second GET 1 dedups into the same prefetch slot; everything
	// after the include is sequential.
	body := encode(t, codec, []tmpl.Instruction{
		lit("a"), get(1, 1), set(2, 1, "two"), get(2, 1), get(1, 1),
		inc(5, 1), get(3, 1),
	})
	p, err := Compile(codec, body)
	if err != nil {
		t.Fatal(err)
	}
	if p.Ops() != 7 {
		t.Fatalf("ops = %d, want 7", p.Ops())
	}
	if got := p.IndependentGets(); got != 1 {
		t.Fatalf("independent gets = %d, want 1 (only key 1)", got)
	}
	if !p.hasInc {
		t.Fatal("hasInc not set")
	}
	if p.SrcLen() != int64(len(body)) {
		t.Fatalf("SrcLen = %d, want %d", p.SrcLen(), len(body))
	}
	if p.Footprint() <= 0 {
		t.Fatal("footprint not positive")
	}
}

func TestRunHappyPath(t *testing.T) {
	for _, codec := range []tmpl.Codec{tmpl.Binary{}, tmpl.Text{}} {
		store := newStore(t)
		if err := store.Set(1, 1, []byte("ONE")); err != nil {
			t.Fatal(err)
		}
		body := encode(t, codec, []tmpl.Instruction{
			lit("["), get(1, 1), set(2, 1, "TWO"), get(2, 1), lit("]"),
		})
		p, err := Compile(codec, body)
		if err != nil {
			t.Fatal(err)
		}
		e := &Exec{Store: store, Strict: true, Codec: codec}
		var out bytes.Buffer
		st, err := e.Run(p, &out, nil)
		if err != nil {
			t.Fatalf("%s: run: %v", codec.Name(), err)
		}
		if got := out.String(); got != "[ONETWOTWO]" {
			t.Fatalf("%s: page = %q", codec.Name(), got)
		}
		if st.Gets != 2 || st.Sets != 1 || st.Literals != 2 {
			t.Fatalf("stats = %+v", st)
		}
		if st.TemplateBytes != int64(len(body)) {
			t.Fatalf("TemplateBytes = %d, want %d", st.TemplateBytes, len(body))
		}
		wantRefs := []Ref{{1, 1}, {2, 1}}
		if len(st.Refs) != 2 || st.Refs[0] != wantRefs[0] || st.Refs[1] != wantRefs[1] {
			t.Fatalf("refs = %v, want %v", st.Refs, wantRefs)
		}
	}
}

func TestRunStaleDoomsOutputButAppliesSets(t *testing.T) {
	codec := tmpl.Binary{}
	store := newStore(t)
	body := encode(t, codec, []tmpl.Instruction{
		lit("head"), get(9, 3), lit("never"), set(5, 1, "X"), get(8, 1),
	})
	p, err := Compile(codec, body)
	if err != nil {
		t.Fatal(err)
	}
	e := &Exec{Store: store, Strict: true, Codec: codec}
	var out bytes.Buffer
	st, err := e.Run(p, &out, nil)
	if !errors.Is(err, ErrStale) {
		t.Fatalf("err = %v, want ErrStale", err)
	}
	want := fmt.Sprintf("%v (first: key 9 gen 3, 2 total)", ErrStale)
	if err.Error() != want {
		t.Fatalf("err = %q, want %q", err.Error(), want)
	}
	if got := out.String(); got != "head" {
		t.Fatalf("page = %q, want output suppressed after first stale", got)
	}
	if len(st.Stale) != 2 || st.Stale[0] != (Ref{9, 3}) || st.Stale[1] != (Ref{8, 1}) {
		t.Fatalf("stale = %v", st.Stale)
	}
	// The SET after the doom still landed.
	if data, ok := store.Get(5, 1, true); !ok || string(data) != "X" {
		t.Fatalf("doomed SET not applied: %q %v", data, ok)
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	codec := tmpl.Binary{}
	store := newStore(t)
	var ins []tmpl.Instruction
	for k := uint32(1); k <= 6; k++ {
		if k != 4 { // key 4 left unset: staleness must surface identically
			if err := store.Set(k, 1, []byte(fmt.Sprintf("<%d>", k))); err != nil {
				t.Fatal(err)
			}
		}
		ins = append(ins, lit("|"), get(k, 1))
	}
	p, err := Compile(codec, encode(t, codec, ins))
	if err != nil {
		t.Fatal(err)
	}
	if p.IndependentGets() != 6 {
		t.Fatalf("independent gets = %d", p.IndependentGets())
	}
	seq := &Exec{Store: store, Strict: true, Codec: codec, Parallelism: 1}
	par := &Exec{Store: store, Strict: true, Codec: codec, Parallelism: 8}
	var outSeq, outPar bytes.Buffer
	stSeq, errSeq := seq.Run(p, &outSeq, nil)
	stPar, errPar := par.Run(p, &outPar, nil)
	if (errSeq == nil) != (errPar == nil) || !errors.Is(errPar, ErrStale) {
		t.Fatalf("errs diverge: seq=%v par=%v", errSeq, errPar)
	}
	if errSeq.Error() != errPar.Error() {
		t.Fatalf("error text diverges: %q vs %q", errSeq, errPar)
	}
	if outSeq.String() != outPar.String() {
		t.Fatalf("bytes diverge: %q vs %q", outSeq.String(), outPar.String())
	}
	if stSeq.ParallelGets != 0 || stPar.ParallelGets != 6 {
		t.Fatalf("ParallelGets: seq=%d par=%d", stSeq.ParallelGets, stPar.ParallelGets)
	}
	stPar.ParallelGets = stSeq.ParallelGets
	if fmt.Sprintf("%+v", stSeq) != fmt.Sprintf("%+v", stPar) {
		t.Fatalf("stats diverge:\nseq %+v\npar %+v", stSeq, stPar)
	}
}

func TestRunInclude(t *testing.T) {
	codec := tmpl.Text{}
	store := newStore(t)
	nested := encode(t, codec, []tmpl.Instruction{lit("("), get(1, 1), lit(")")})
	if err := store.Set(1, 1, []byte("leaf")); err != nil {
		t.Fatal(err)
	}
	if err := store.Set(10, 2, nested); err != nil {
		t.Fatal(err)
	}
	body := encode(t, codec, []tmpl.Instruction{lit("A"), inc(10, 2), lit("B")})
	p, err := Compile(codec, body)
	if err != nil {
		t.Fatal(err)
	}
	e := &Exec{Store: store, Strict: true, Codec: codec}
	var out bytes.Buffer
	st, err := e.Run(p, &out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != "A(leaf)B" {
		t.Fatalf("page = %q", got)
	}
	if st.Includes != 1 {
		t.Fatalf("includes = %d", st.Includes)
	}
	// Refs span the include boundary in first-use order.
	if len(st.Refs) != 2 || st.Refs[0] != (Ref{10, 2}) || st.Refs[1] != (Ref{1, 1}) {
		t.Fatalf("refs = %v", st.Refs)
	}
	// TemplateBytes counts only the top-level body, as the interpreter does.
	if st.TemplateBytes != int64(len(body)) {
		t.Fatalf("TemplateBytes = %d, want %d", st.TemplateBytes, len(body))
	}
}

func TestRunIncludeDepthLimit(t *testing.T) {
	codec := tmpl.Binary{}
	store := newStore(t)
	// Slot 10 includes itself: recursion must stop at MaxIncludeDepth.
	self := encode(t, codec, []tmpl.Instruction{inc(10, 1)})
	if err := store.Set(10, 1, self); err != nil {
		t.Fatal(err)
	}
	p, err := Compile(codec, self)
	if err != nil {
		t.Fatal(err)
	}
	e := &Exec{Store: store, Codec: codec}
	_, err = e.Run(p, io.Discard, nil)
	if err == nil || !strings.Contains(err.Error(), fmt.Sprintf("include depth exceeds %d", MaxIncludeDepth)) {
		t.Fatalf("err = %v", err)
	}
}

func TestCacheHitMissCompile(t *testing.T) {
	codec := tmpl.Binary{}
	c, err := NewCache(codec, CacheConfig{MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	body := encode(t, codec, []tmpl.Instruction{lit("x"), get(1, 1)})
	p1, hit, err := c.Get(body)
	if err != nil || hit {
		t.Fatalf("first get: hit=%v err=%v", hit, err)
	}
	p2, hit, err := c.Get(body)
	if err != nil || !hit {
		t.Fatalf("second get: hit=%v err=%v", hit, err)
	}
	if p1 != p2 {
		t.Fatal("hit returned a different plan instance")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Compiles != 1 || st.Resident != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Bytes != p1.Footprint() {
		t.Fatalf("bytes = %d, want footprint %d", st.Bytes, p1.Footprint())
	}
	// A corrupt template is never cached: both lookups miss, neither
	// compiles.
	corrupt := []byte{0x01, 'D', 'P', 'C', 0xFF}
	for i := 0; i < 2; i++ {
		if _, _, err := c.Get(corrupt); err == nil {
			t.Fatal("corrupt template compiled")
		}
	}
	st = c.Stats()
	if st.Misses != 3 || st.Compiles != 1 {
		t.Fatalf("after corrupt: %+v", st)
	}
}

// TestStormCompileExecuteInvalidate races plan compilation, execution
// (sequential and parallel), fragment rewrites, fragment drops, and
// whole-tier plan flushes; run under -race. Every execution must end in
// a clean page or ErrStale — never a torn state or decode error.
func TestStormCompileExecuteInvalidate(t *testing.T) {
	codec := tmpl.Binary{}
	store := newStore(t)
	cache, err := NewCache(codec, CacheConfig{MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	nested := encode(t, codec, []tmpl.Instruction{lit("("), get(1, 1), lit(")")})
	for k := uint32(1); k <= 8; k++ {
		if err := store.Set(k, 1, []byte(fmt.Sprintf("<%d>", k))); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Set(20, 1, nested); err != nil {
		t.Fatal(err)
	}
	var bodies [][]byte
	for i := 0; i < 4; i++ {
		ins := []tmpl.Instruction{lit(fmt.Sprintf("t%d:", i))}
		for k := uint32(1); k <= 8; k++ {
			ins = append(ins, get(k, 1))
		}
		ins = append(ins, set(uint32(30+i), 1, "s"), inc(20, 1))
		bodies = append(bodies, encode(t, codec, ins))
	}
	ex := &Exec{Store: store, Codec: codec, Plans: cache, Parallelism: 4, MinParallelGets: 2}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				p, _, err := cache.Get(bodies[(w+i)%len(bodies)])
				if err != nil {
					t.Errorf("compile: %v", err)
					return
				}
				if _, err := ex.Run(p, io.Discard, nil); err != nil && !errors.Is(err, ErrStale) {
					t.Errorf("run: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			k := uint32(1 + i%8)
			store.Drop(k)
			_ = store.Set(k, 1, []byte("fresh"))
			if i%50 == 0 {
				cache.Store().Flush()
			}
		}
	}()
	wg.Wait()
}

func BenchmarkRefString(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = RefString(uint32(i%512), 7)
	}
}

func BenchmarkRefSprintf(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = fmt.Sprintf("%d:%d", uint32(i%512), 7)
	}
}
