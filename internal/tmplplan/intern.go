package tmplplan

import (
	"strconv"
	"sync"
)

// The ref interner maps packed (key, gen) pairs to their canonical
// "key:gen" strings. The assembler's trace events and the page tier's
// dependency edges both need that string on the hot path, and building it
// per request (fmt.Sprintf in the old interpreter) allocated twice per
// fragment. Interning makes the steady state allocation-free: a bounded,
// sharded map hands back the same string forever.
//
// The table is an optimization, never a correctness surface: a shard that
// reaches its cap is simply cleared (the strings already handed out stay
// valid), so an adversarial key stream costs re-formatting, not memory.

const (
	internShards   = 16
	internShardCap = 4096
)

type internShard struct {
	mu sync.RWMutex
	m  map[uint64]string
}

var interner [internShards]internShard

// RefString returns the canonical "key:gen" string for a fragment ref,
// interned so repeated calls with the same pair return the same string
// without allocating. The format matches depindex.Ref exactly.
func RefString(key, gen uint32) string {
	id := uint64(key)<<32 | uint64(gen)
	sh := &interner[(key^gen)&(internShards-1)]
	sh.mu.RLock()
	s, ok := sh.m[id]
	sh.mu.RUnlock()
	if ok {
		return s
	}
	buf := make([]byte, 0, 24)
	buf = strconv.AppendUint(buf, uint64(key), 10)
	buf = append(buf, ':')
	buf = strconv.AppendUint(buf, uint64(gen), 10)
	s = string(buf)
	sh.mu.Lock()
	if sh.m == nil || len(sh.m) >= internShardCap {
		sh.m = make(map[uint64]string, 64)
	}
	sh.m[id] = s
	sh.mu.Unlock()
	return s
}
