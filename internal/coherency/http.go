package coherency

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// The HTTP bridge carries hub events between machines: the hub side POSTs
// JSON events to each edge's invalidation endpoint; the edge side applies
// them to its store subscriber. Lost deliveries surface as sequence gaps,
// which the StoreSubscriber already handles by flushing.

// wireEvent is the JSON encoding of an Event. Kind zero (fragment) and
// empty payload fields are omitted, so pre-generalization peers remain
// wire-compatible for the fragment stream.
type wireEvent struct {
	Seq   uint64 `json:"seq"`
	Kind  uint8  `json:"kind,omitempty"`
	Frag  string `json:"frag,omitempty"`
	Key   uint32 `json:"key"`
	Gen   uint32 `json:"gen"`
	Why   string `json:"why,omitempty"`
	URI   string `json:"uri,omitempty"`
	Scope string `json:"scope,omitempty"`
}

func toWire(ev Event) wireEvent {
	return wireEvent{
		Seq: ev.Seq, Kind: uint8(ev.Kind), Frag: ev.FragmentID,
		Key: ev.Key, Gen: ev.Gen, Why: ev.Reason, URI: ev.URI, Scope: ev.Scope,
	}
}

func fromWire(we wireEvent) Event {
	return Event{
		Seq: we.Seq, Kind: Kind(we.Kind), FragmentID: we.Frag,
		Key: we.Key, Gen: we.Gen, Reason: we.Why, URI: we.URI, Scope: we.Scope,
	}
}

// Handler returns the edge-side HTTP endpoint applying events to sub.
// Mount it at e.g. /_coherency/invalidate on the edge proxy's admin mux.
func Handler(sub Subscriber) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var we wireEvent
		if err := json.NewDecoder(r.Body).Decode(&we); err != nil {
			http.Error(w, fmt.Sprintf("bad event: %v", err), http.StatusBadRequest)
			return
		}
		acked := sub.Apply(fromWire(we))
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]uint64{"acked": acked})
	})
}

// RemoteSubscriber is the hub-side proxy for an edge endpoint: it POSTs
// each event and records the remote ack. Delivery failures are dropped
// (the edge will observe the gap and flush), which is the conservative
// behavior Section 7's scalability discussion calls for.
type RemoteSubscriber struct {
	// URL is the edge's invalidation endpoint.
	URL string
	// Client overrides the default 2-second-timeout HTTP client.
	Client *http.Client

	mu     sync.Mutex
	acked  uint64
	errors int
}

// Apply implements Subscriber by delivering the event over HTTP.
func (r *RemoteSubscriber) Apply(ev Event) uint64 {
	client := r.Client
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	body, err := json.Marshal(toWire(ev))
	if err != nil {
		return r.ackedValue()
	}
	resp, err := client.Post(r.URL, "application/json", bytes.NewReader(body))
	if err != nil {
		r.mu.Lock()
		r.errors++
		r.mu.Unlock()
		return r.ackedValue()
	}
	defer resp.Body.Close()
	var out map[string]uint64
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&out) != nil {
		r.mu.Lock()
		r.errors++
		r.mu.Unlock()
		return r.ackedValue()
	}
	r.mu.Lock()
	if out["acked"] > r.acked {
		r.acked = out["acked"]
	}
	v := r.acked
	r.mu.Unlock()
	return v
}

func (r *RemoteSubscriber) ackedValue() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.acked
}

// Errors reports failed deliveries.
func (r *RemoteSubscriber) Errors() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.errors
}
