package coherency

import (
	"io"
	"path/filepath"
	"testing"

	"dpcache/internal/fragstore"
)

// TestStoreSubscriberDropsDiskResident pins the coherency guarantee at
// the tier boundary: a fabric invalidation must remove a fragment that
// has been demoted out of RAM and lives only in the heap file — the
// disk tier honors tombstones exactly like the RAM tier.
func TestStoreSubscriberDropsDiskResident(t *testing.T) {
	fs, err := fragstore.New(fragstore.Config{
		Backend:    fragstore.BackendTiered,
		Capacity:   16,
		ByteBudget: 16, // two 8-byte fragments: the third put demotes
		Eviction:   "lru",
		DiskPath:   filepath.Join(t.TempDir(), "fabric.heap"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.(io.Closer).Close() })
	for k := uint32(1); k <= 3; k++ {
		if err := fs.Set(k, 5, []byte("88888888")); err != nil {
			t.Fatal(err)
		}
	}
	dt := fs.(fragstore.DiskTiered)
	if st := dt.TierStats(); st.Disk.Resident != 1 {
		t.Fatalf("setup: want key 1 demoted to disk, got %+v", st)
	}

	sub := NewStoreSubscriber(fs)
	sub.Apply(Event{Seq: 1, Kind: KindFragment, FragmentID: "f1", Key: 1, Gen: 5})
	if _, ok := fs.Get(1, 5, false); ok {
		t.Fatal("invalidated disk-resident fragment still served")
	}
	if st := dt.TierStats(); st.Disk.Resident != 0 {
		t.Fatalf("invalidated fragment still on disk: %+v", st)
	}

	// A sequence gap flushes everything, disk tier included.
	for k := uint32(1); k <= 3; k++ {
		fs.Set(k, 5, []byte("88888888"))
	}
	sub.Apply(Event{Seq: 5, Kind: KindFragment, FragmentID: "f2", Key: 2, Gen: 5})
	if fs.Resident() != 0 {
		t.Fatalf("gap flush left %d entries across the tiers", fs.Resident())
	}
	if st := dt.TierStats(); st.Disk.Resident != 0 {
		t.Fatalf("gap flush left disk entries: %+v", st)
	}
}
