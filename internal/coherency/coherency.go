// Package coherency addresses the second open problem of the paper's
// Section 7: keeping multiple forward-deployed Dynamic Proxy Caches
// coherent when source-data changes invalidate fragments.
//
// The reverse-proxy design needs no invalidation channel at all — the BEM
// simply stops referencing a slot until a SET reuses it. With several edge
// caches that silence is no longer enough: a proxy that cached a fragment
// keeps serving it until its own slot is overwritten, which may never
// happen if later traffic for the fragment routes elsewhere.
//
// The Hub turns the BEM's invalidation stream into a sequenced broadcast.
// Each event carries a monotonically increasing sequence number; a
// subscriber that observes a gap (lost event) conservatively flushes its
// whole store and resynchronizes, trading a burst of misses for guaranteed
// freshness. Subscribers acknowledge events, and AckedThrough reports the
// sequence number every subscriber has durably applied — the property the
// stale-read tests assert on.
package coherency

import (
	"sync"

	"dpcache/internal/bem"
	"dpcache/internal/fragstore"
)

// Event is one broadcast invalidation.
type Event struct {
	// Seq is the hub-assigned sequence number, starting at 1.
	Seq uint64
	// FragmentID names the invalidated fragment.
	FragmentID string
	// Key is the DPC slot the fragment occupied.
	Key uint32
	// Gen is the generation that became invalid.
	Gen uint32
}

// Subscriber consumes invalidation events. Apply must be idempotent; the
// hub may redeliver during resync.
type Subscriber interface {
	// Apply processes one event and returns the highest sequence number
	// the subscriber has applied.
	Apply(ev Event) uint64
}

// Hub fans the BEM's invalidations out to edge subscribers.
type Hub struct {
	mu   sync.Mutex
	seq  uint64
	subs []Subscriber
	acks []uint64
	log  []Event // retained for resync; bounded by Trim
	// MaxLog bounds the retained event log (default 4096).
	MaxLog int
}

// NewHub returns a hub wired to the monitor's invalidation stream.
func NewHub(mon *bem.Monitor) *Hub {
	h := &Hub{MaxLog: 4096}
	mon.OnInvalidate(func(fragID string, key, gen uint32) {
		h.Broadcast(fragID, key, gen)
	})
	return h
}

// Subscribe adds a subscriber; events broadcast before subscription are
// not replayed (the subscriber starts empty, so it holds nothing stale).
func (h *Hub) Subscribe(s Subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.subs = append(h.subs, s)
	h.acks = append(h.acks, h.seq) // nothing older can be stale in it
}

// Broadcast assigns the next sequence number and delivers the event to
// every subscriber synchronously.
func (h *Hub) Broadcast(fragID string, key, gen uint32) Event {
	h.mu.Lock()
	h.seq++
	ev := Event{Seq: h.seq, FragmentID: fragID, Key: key, Gen: gen}
	h.log = append(h.log, ev)
	if max := h.MaxLog; max > 0 && len(h.log) > max {
		h.log = append([]Event(nil), h.log[len(h.log)-max:]...)
	}
	subs := append([]Subscriber(nil), h.subs...)
	h.mu.Unlock()

	for i, s := range subs {
		acked := s.Apply(ev)
		h.mu.Lock()
		if i < len(h.acks) && acked > h.acks[i] {
			h.acks[i] = acked
		}
		h.mu.Unlock()
	}
	return ev
}

// Seq returns the last assigned sequence number.
func (h *Hub) Seq() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seq
}

// AckedThrough returns the highest sequence number acknowledged by every
// subscriber (0 when there are none yet).
func (h *Hub) AckedThrough() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.acks) == 0 {
		return h.seq
	}
	min := h.acks[0]
	for _, a := range h.acks[1:] {
		if a < min {
			min = a
		}
	}
	return min
}

// Events returns the retained event log from seq (exclusive) onward; ok is
// false when the log no longer reaches back that far (subscriber must
// flush).
func (h *Hub) Events(after uint64) (evs []Event, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.log) == 0 {
		return nil, after >= h.seq
	}
	oldest := h.log[0].Seq
	if after+1 < oldest {
		return nil, false
	}
	for _, ev := range h.log {
		if ev.Seq > after {
			evs = append(evs, ev)
		}
	}
	return evs, true
}

// StoreSubscriber applies invalidations to an edge DPC's fragment store
// (any fragstore backend): the slot is dropped so the next GET misses and
// triggers the strict-mode refetch. A sequence gap flushes every slot.
type StoreSubscriber struct {
	mu      sync.Mutex
	store   fragstore.FragmentStore
	lastSeq uint64
	flushes int
	applied int
}

// NewStoreSubscriber wraps a store.
func NewStoreSubscriber(store fragstore.FragmentStore) *StoreSubscriber {
	return &StoreSubscriber{store: store}
}

// Apply implements Subscriber.
func (s *StoreSubscriber) Apply(ev Event) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lastSeq != 0 && ev.Seq != s.lastSeq+1 && ev.Seq > s.lastSeq {
		// Gap: events were lost. Flush everything.
		s.store.DropAll()
		s.flushes++
	}
	if ev.Seq > s.lastSeq {
		s.store.Drop(ev.Key)
		s.lastSeq = ev.Seq
		s.applied++
	}
	return s.lastSeq
}

// Flushes reports how many full flushes gap detection forced.
func (s *StoreSubscriber) Flushes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushes
}

// Applied reports how many events were applied.
func (s *StoreSubscriber) Applied() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// SeedSeq initializes the subscriber's sequence cursor (used when
// attaching to a hub mid-stream after an explicit flush).
func (s *StoreSubscriber) SeedSeq(seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastSeq = seq
}
