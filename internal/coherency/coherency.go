// Package coherency is the invalidation fabric: it turns the BEM's
// invalidation stream into a sequenced broadcast that *every* cache tier
// subscribes to — fragment stores on edge DPCs, and the keyed page and
// static tiers on any proxy.
//
// It began (paper Section 7) as the answer to multi-edge fragment
// coherency: the reverse-proxy design needs no invalidation channel at
// all — the BEM simply stops referencing a slot until a SET reuses it —
// but a forward-deployed DPC that cached a fragment keeps serving it
// until its own slot is overwritten, which may never happen. The same
// silence problem reappears inside a single proxy once whole pages are
// cached: a page-tier entry is an opaque blob the BEM's slot discipline
// cannot reach, so without the fabric only its TTL bounds staleness.
//
// The Hub assigns each event a monotonically increasing sequence number;
// a subscriber that observes a gap (lost event) conservatively flushes
// its whole store and resynchronizes, trading a burst of misses for
// guaranteed freshness. Events are typed: fragment invalidations (the
// BEM's stream), scoped URI purges, and whole-tier flushes. Subscribers
// acknowledge events, and AckedThrough reports the sequence number every
// subscriber has durably applied — the property the stale-read tests
// assert on.
//
// Three subscriber families cover the tiers:
//
//   - StoreSubscriber drops fragment-store slots (any fragstore backend).
//   - PageSubscriber / StaticSubscriber (TierSubscriber) consult the
//     proxy's dependency index (internal/depindex) to surgically drop
//     only the keyed entries composed from the invalidated fragment,
//     falling back to a scoped tier flush when the index has evicted the
//     edge and cannot answer authoritatively.
package coherency

import (
	"sync"

	"dpcache/internal/bem"
	"dpcache/internal/depindex"
	"dpcache/internal/fragstore"
)

// Kind discriminates event payloads.
type Kind uint8

// Event kinds.
const (
	// KindFragment invalidates one fragment (slot key + generation).
	KindFragment Kind = iota
	// KindPurge drops every keyed-tier entry for one request URI (all
	// variants) — an explicit, surgical purge.
	KindPurge
	// KindFlush empties the tiers matching Scope.
	KindFlush
)

// Event is one broadcast invalidation.
type Event struct {
	// Seq is the hub-assigned sequence number, starting at 1.
	Seq uint64
	// Kind selects which payload fields below are meaningful.
	Kind Kind
	// FragmentID names the invalidated fragment (KindFragment).
	FragmentID string
	// Key is the DPC slot the fragment occupied (KindFragment).
	Key uint32
	// Gen is the generation that became invalid (KindFragment).
	Gen uint32
	// Reason says why the fragment died (KindFragment; bem reason string).
	Reason string
	// URI is the request URI whose entries are purged (KindPurge).
	URI string
	// Scope targets KindFlush: "page", "static", "store", "plan", or ""
	// for every tier.
	Scope string
}

// Subscriber consumes invalidation events. Apply must be idempotent; the
// hub may redeliver during resync.
type Subscriber interface {
	// Apply processes one event and returns the highest sequence number
	// the subscriber has applied.
	Apply(ev Event) uint64
}

// Hub fans invalidation events out to subscribers.
type Hub struct {
	mu   sync.Mutex
	seq  uint64
	subs []Subscriber
	acks []uint64
	log  []Event // retained for resync; bounded by Trim
	// MaxLog bounds the retained event log (default 4096).
	MaxLog int
}

// NewHub returns a hub wired to the monitor's invalidation stream.
func NewHub(mon *bem.Monitor) *Hub {
	h := &Hub{MaxLog: 4096}
	mon.OnInvalidate(func(fragID string, key, gen uint32, reason bem.InvalidationReason) {
		h.BroadcastEvent(Event{
			Kind: KindFragment, FragmentID: fragID, Key: key, Gen: gen,
			Reason: string(reason),
		})
	})
	return h
}

// Subscribe adds a subscriber; events broadcast before subscription are
// not replayed (the subscriber starts empty, so it holds nothing stale).
func (h *Hub) Subscribe(s Subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.subs = append(h.subs, s)
	h.acks = append(h.acks, h.seq) // nothing older can be stale in it
}

// Broadcast delivers a fragment invalidation (compatibility helper; the
// generalized entry point is BroadcastEvent).
func (h *Hub) Broadcast(fragID string, key, gen uint32) Event {
	return h.BroadcastEvent(Event{Kind: KindFragment, FragmentID: fragID, Key: key, Gen: gen})
}

// BroadcastPurge drops every keyed-tier entry (page and static, all
// variants) for one request URI on every subscriber.
func (h *Hub) BroadcastPurge(uri string) Event {
	return h.BroadcastEvent(Event{Kind: KindPurge, URI: uri})
}

// BroadcastFlush empties the tiers matching scope ("page", "static",
// "store", or "" for all) on every subscriber.
func (h *Hub) BroadcastFlush(scope string) Event {
	return h.BroadcastEvent(Event{Kind: KindFlush, Scope: scope})
}

// BroadcastEvent assigns the next sequence number and delivers the event
// to every subscriber synchronously.
func (h *Hub) BroadcastEvent(ev Event) Event {
	h.mu.Lock()
	h.seq++
	ev.Seq = h.seq
	h.log = append(h.log, ev)
	if max := h.MaxLog; max > 0 && len(h.log) > max {
		h.log = append([]Event(nil), h.log[len(h.log)-max:]...)
	}
	subs := append([]Subscriber(nil), h.subs...)
	h.mu.Unlock()

	for i, s := range subs {
		acked := s.Apply(ev)
		h.mu.Lock()
		if i < len(h.acks) && acked > h.acks[i] {
			h.acks[i] = acked
		}
		h.mu.Unlock()
	}
	return ev
}

// Seq returns the last assigned sequence number.
func (h *Hub) Seq() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seq
}

// AckedThrough returns the highest sequence number acknowledged by every
// subscriber (0 when there are none yet).
func (h *Hub) AckedThrough() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.acks) == 0 {
		return h.seq
	}
	min := h.acks[0]
	for _, a := range h.acks[1:] {
		if a < min {
			min = a
		}
	}
	return min
}

// Events returns the retained event log from seq (exclusive) onward; ok is
// false when the log no longer reaches back that far (subscriber must
// flush).
func (h *Hub) Events(after uint64) (evs []Event, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.log) == 0 {
		return nil, after >= h.seq
	}
	oldest := h.log[0].Seq
	if after+1 < oldest {
		return nil, false
	}
	for _, ev := range h.log {
		if ev.Seq > after {
			evs = append(evs, ev)
		}
	}
	return evs, true
}

// Fanout combines subscribers into one: Apply delivers the event to each
// and acknowledges the minimum — the hub's at-least-once/gap semantics
// then hold for the slowest member. The HTTP bridge uses it to drive
// every tier of an edge proxy from one invalidation endpoint.
func Fanout(subs ...Subscriber) Subscriber { return fanout(subs) }

type fanout []Subscriber

func (f fanout) Apply(ev Event) uint64 {
	var min uint64
	for i, s := range f {
		acked := s.Apply(ev)
		if i == 0 || acked < min {
			min = acked
		}
	}
	return min
}

// StoreSubscriber applies invalidations to a DPC's fragment store (any
// fragstore backend): the slot is dropped so the next GET misses and
// triggers the strict-mode refetch. A sequence gap flushes every slot.
type StoreSubscriber struct {
	mu      sync.Mutex
	store   fragstore.FragmentStore
	lastSeq uint64
	flushes int
	applied int
}

// NewStoreSubscriber wraps a store.
func NewStoreSubscriber(store fragstore.FragmentStore) *StoreSubscriber {
	return &StoreSubscriber{store: store}
}

// Apply implements Subscriber.
func (s *StoreSubscriber) Apply(ev Event) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lastSeq != 0 && ev.Seq != s.lastSeq+1 && ev.Seq > s.lastSeq {
		// Gap: events were lost. Flush everything.
		s.store.DropAll()
		s.flushes++
	}
	if ev.Seq > s.lastSeq {
		switch ev.Kind {
		case KindFragment:
			s.store.Drop(ev.Key)
		case KindFlush:
			if ev.Scope == "" || ev.Scope == "store" {
				s.store.DropAll()
				s.flushes++
			}
		case KindPurge:
			// Keyed-tier payload; nothing for a slot store to do, but the
			// sequence cursor still advances so no false gap follows.
		}
		s.lastSeq = ev.Seq
		s.applied++
	}
	return s.lastSeq
}

// Flushes reports how many full flushes were applied (gap detection or
// flush-scope events).
func (s *StoreSubscriber) Flushes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushes
}

// Applied reports how many events were applied.
func (s *StoreSubscriber) Applied() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// SeedSeq initializes the subscriber's sequence cursor (used when
// attaching to a hub mid-stream after an explicit flush).
func (s *StoreSubscriber) SeedSeq(seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastSeq = seq
}

// KeyedTier is the string-keyed cache surface a TierSubscriber drives —
// implemented by pagecache.Cache and therefore by the DPC's page and
// static tiers.
type KeyedTier interface {
	// Delete removes one entry, reporting whether it was resident.
	Delete(key string) bool
	// DeleteFunc removes entries by predicate, returning the count.
	DeleteFunc(pred func(key string) bool) int
	// Flush empties the tier.
	Flush()
}

// TierSubscriber keeps one keyed cache tier (page or static) coherent
// with the BEM's fragment stream. On a fragment invalidation it asks the
// dependency index which keys were composed from the dead fragment and
// drops exactly those; when the index cannot answer authoritatively (the
// edge was evicted recently) it falls back to flushing the tier. It
// always tombstones the invalidated ref first, so in-flight response
// captures that read the fragment before it died refuse to file.
type TierSubscriber struct {
	mu   sync.Mutex
	tier KeyedTier
	ix   *depindex.Index
	// scope is the tier's flush-scope name ("page", "static", or "plan").
	scope string
	// fragmentEvents marks the tier as able to hold fragment-composed
	// entries. When false (the plan tier: compiled programs are keyed by
	// template content hash and retain no fragment bytes), fragment
	// invalidations are skipped outright — consulting the shared index
	// would double-count lookups and, under index eviction pressure,
	// needlessly flush the tier per event.
	fragmentEvents bool

	lastSeq   uint64
	applied   int
	dropped   int64
	flushes   int
	fallbacks int

	// KeyPrefix maps a purge URI to the tier's key-prefix for that URI
	// (every variant shares it). Set by the wiring layer, which knows the
	// tier's key schema; nil disables KindPurge handling.
	KeyPrefix func(uri string) string
	// OnDrop, when set, observes every batch of surgically dropped
	// entries (the wiring layer bumps a metrics counter here).
	OnDrop func(n int)
	// OnFlush, when set, observes tier flushes (gap or fallback).
	OnFlush func()
}

// NewPageSubscriber returns a subscriber keeping a whole-page tier
// coherent. ix is the owning proxy's dependency index; nil is allowed
// and makes every fragment event a conservative tier flush.
func NewPageSubscriber(tier KeyedTier, ix *depindex.Index) *TierSubscriber {
	return &TierSubscriber{tier: tier, ix: ix, scope: "page", fragmentEvents: true}
}

// NewStaticSubscriber returns a subscriber keeping a static tier
// coherent. The static tier is mostly plain explicitly-cacheable
// responses, but origins can opt assembled template pages into it
// (Cache-Control: max-age on a template response); those entries are
// fragment-composed, with their edges recorded in the index under the
// static key, so fragment invalidations are consulted exactly as the
// page tier's are and drop the dependent entries surgically.
func NewStaticSubscriber(tier KeyedTier, ix *depindex.Index) *TierSubscriber {
	return &TierSubscriber{tier: tier, ix: ix, scope: "static", fragmentEvents: true}
}

// NewPlanSubscriber returns a subscriber keeping a compiled-template
// plan cache coherent. Plans are keyed by a content hash of the template
// bytes and retain no fragment content — a changed fragment changes what
// an execution resolves, never the compiled program — so fragment
// invalidations and URI purges are no-ops here. The subscriber exists
// for "plan"-scoped (and global) flushes and for gap recovery: a lost
// event could have been such a flush, so the tier conservatively empties
// and recompiles on demand.
func NewPlanSubscriber(tier KeyedTier) *TierSubscriber {
	return &TierSubscriber{tier: tier, scope: "plan"}
}

// Apply implements Subscriber.
func (s *TierSubscriber) Apply(ev Event) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lastSeq != 0 && ev.Seq != s.lastSeq+1 && ev.Seq > s.lastSeq {
		s.flushLocked() // gap: events were lost
	}
	if ev.Seq <= s.lastSeq {
		return s.lastSeq // duplicate or stale redelivery
	}
	s.lastSeq = ev.Seq
	s.applied++
	switch ev.Kind {
	case KindFragment:
		if s.fragmentEvents {
			s.applyFragmentLocked(ev)
		}
	case KindPurge:
		if s.KeyPrefix != nil {
			prefix := s.KeyPrefix(ev.URI)
			n := s.tier.DeleteFunc(func(key string) bool {
				return len(key) >= len(prefix) && key[:len(prefix)] == prefix
			})
			s.noteDropsLocked(n)
		}
	case KindFlush:
		if ev.Scope == "" || ev.Scope == s.scope {
			s.flushLocked()
		}
	}
	return s.lastSeq
}

func (s *TierSubscriber) applyFragmentLocked(ev Event) {
	if s.ix == nil {
		// No index to consult: the only sound answer is a flush.
		s.fallbacks++
		s.flushLocked()
		return
	}
	ref := depindex.Ref(ev.Key, ev.Gen)
	// Tombstone first: an in-flight capture that read this fragment's
	// bytes before the drop must see the marker when it files, whichever
	// side of our Delete its Put lands on.
	s.ix.MarkInvalid(ref)
	keys, exact := s.ix.Dependents(ref)
	if !exact {
		// The index evicted edges recently; this fragment's may be among
		// them. Trade a burst of misses for guaranteed freshness.
		s.fallbacks++
		s.flushLocked()
		return
	}
	n := 0
	for _, k := range keys {
		if s.tier.Delete(k) {
			n++
		}
	}
	s.noteDropsLocked(n)
}

func (s *TierSubscriber) flushLocked() {
	s.tier.Flush()
	if s.ix != nil {
		// Kill in-flight fills too: a capture filed after this flush
		// would resurrect an entry the flush was meant to remove.
		s.ix.BumpEpoch()
	}
	s.flushes++
	if s.OnFlush != nil {
		s.OnFlush()
	}
}

func (s *TierSubscriber) noteDropsLocked(n int) {
	if n <= 0 {
		return
	}
	s.dropped += int64(n)
	if s.OnDrop != nil {
		s.OnDrop(n)
	}
}

// Applied reports how many events were applied.
func (s *TierSubscriber) Applied() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// Dropped reports how many entries were surgically dropped.
func (s *TierSubscriber) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Flushes reports tier flushes (gaps, flush events, index fallbacks).
func (s *TierSubscriber) Flushes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushes
}

// Fallbacks reports fragment events the index could not answer
// authoritatively, each of which forced a tier flush.
func (s *TierSubscriber) Fallbacks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fallbacks
}

// SeedSeq initializes the sequence cursor (attach mid-stream after an
// explicit flush).
func (s *TierSubscriber) SeedSeq(seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastSeq = seq
}
