package coherency

import (
	"net/http/httptest"
	"testing"

	"dpcache/internal/bem"
	"dpcache/internal/dpc"
	"dpcache/internal/fragstore"
)

func newStore(t *testing.T, capacity int) *dpc.Store {
	t.Helper()
	s, err := dpc.NewStore(capacity)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// storeBackends enumerates every fragment-store backend the subscriber
// must keep coherent.
func storeBackends(t *testing.T, capacity int) map[string]fragstore.FragmentStore {
	t.Helper()
	slot, err := fragstore.NewSlotStore(capacity)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := fragstore.NewSharded(fragstore.ShardedConfig{Capacity: capacity, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]fragstore.FragmentStore{"slot": slot, "sharded": sharded}
}

func TestBroadcastDropsSlotOnAllSubscribers(t *testing.T) {
	mon, _ := bem.New(bem.Config{Capacity: 8})
	hub := NewHub(mon)
	s1, s2 := newStore(t, 8), newStore(t, 8)
	_ = s1.Set(3, 1, []byte("frag"))
	_ = s2.Set(3, 1, []byte("frag"))
	hub.Subscribe(NewStoreSubscriber(s1))
	hub.Subscribe(NewStoreSubscriber(s2))

	// Drive a real BEM invalidation: lookup then invalidate.
	d, _ := mon.Lookup("f", 0)
	mon.Invalidate("f")
	if _, ok := s1.Get(d.Key, d.Gen, false); ok {
		t.Fatal("subscriber 1 still holds dropped slot")
	}
	if _, ok := s2.Get(d.Key, d.Gen, false); ok {
		t.Fatal("subscriber 2 still holds dropped slot")
	}
}

func TestSequenceNumbersMonotonic(t *testing.T) {
	mon, _ := bem.New(bem.Config{Capacity: 4})
	hub := NewHub(mon)
	e1 := hub.Broadcast("a", 0, 1)
	e2 := hub.Broadcast("b", 1, 2)
	if e2.Seq != e1.Seq+1 {
		t.Fatalf("seq %d then %d", e1.Seq, e2.Seq)
	}
	if hub.Seq() != e2.Seq {
		t.Fatalf("hub seq = %d", hub.Seq())
	}
}

func TestAckedThrough(t *testing.T) {
	mon, _ := bem.New(bem.Config{Capacity: 4})
	hub := NewHub(mon)
	s1 := NewStoreSubscriber(newStore(t, 4))
	hub.Subscribe(s1)
	hub.Broadcast("a", 0, 1)
	hub.Broadcast("b", 1, 2)
	if got := hub.AckedThrough(); got != 2 {
		t.Fatalf("AckedThrough = %d, want 2", got)
	}
}

func TestGapForcesFlush(t *testing.T) {
	for name, store := range storeBackends(t, 4) {
		t.Run(name, func(t *testing.T) {
			for k := uint32(0); k < 4; k++ {
				_ = store.Set(k, 1, []byte("x"))
			}
			sub := NewStoreSubscriber(store)
			sub.Apply(Event{Seq: 1, Key: 0})
			if store.Resident() != 3 {
				t.Fatalf("resident = %d after seq 1", store.Resident())
			}
			// Seq 3 arrives, 2 was lost: everything must flush.
			sub.Apply(Event{Seq: 3, Key: 1})
			if store.Resident() != 0 {
				t.Fatalf("resident = %d after gap, want 0", store.Resident())
			}
			if sub.Flushes() != 1 {
				t.Fatalf("flushes = %d", sub.Flushes())
			}
		})
	}
}

// lossySubscriber forwards hub events to an inner subscriber except the
// sequence numbers listed in drop — a lossy delivery channel.
type lossySubscriber struct {
	inner Subscriber
	drop  map[uint64]bool
	acked uint64
}

func (l *lossySubscriber) Apply(ev Event) uint64 {
	if l.drop[ev.Seq] {
		return l.acked
	}
	l.acked = l.inner.Apply(ev)
	return l.acked
}

// TestHubGapFlushEndToEnd drives the full hub → subscriber path over a
// lossy channel for both store backends: a dropped broadcast must surface
// as a sequence gap at the store subscriber and flush every resident
// fragment, after which the store keeps working.
func TestHubGapFlushEndToEnd(t *testing.T) {
	for name, store := range storeBackends(t, 8) {
		t.Run(name, func(t *testing.T) {
			for k := uint32(0); k < 8; k++ {
				_ = store.Set(k, 1, []byte("frag"))
			}
			mon, _ := bem.New(bem.Config{Capacity: 8})
			hub := NewHub(mon)
			sub := NewStoreSubscriber(store)
			hub.Subscribe(&lossySubscriber{inner: sub, drop: map[uint64]bool{2: true}})

			hub.Broadcast("a", 0, 1) // seq 1: applied, drops key 0
			if got := store.Resident(); got != 7 {
				t.Fatalf("resident = %d after seq 1, want 7", got)
			}
			hub.Broadcast("b", 1, 1) // seq 2: lost in transit
			if got := store.Resident(); got != 7 {
				t.Fatalf("resident = %d after lost event, want 7 (nothing delivered)", got)
			}
			hub.Broadcast("c", 2, 1) // seq 3: gap detected → full flush
			if got := store.Resident(); got != 0 {
				t.Fatalf("resident = %d after gap, want 0 (full flush)", got)
			}
			if sub.Flushes() != 1 {
				t.Fatalf("flushes = %d, want 1", sub.Flushes())
			}
			// The subscriber is caught up: in-order events keep applying
			// without another flush.
			_ = store.Set(5, 2, []byte("fresh"))
			hub.Broadcast("d", 5, 2) // seq 4
			if _, ok := store.Get(5, 2, false); ok {
				t.Fatal("post-flush invalidation not applied")
			}
			if sub.Flushes() != 1 {
				t.Fatalf("flushes = %d after in-order resume, want 1", sub.Flushes())
			}
		})
	}
}

func TestDuplicateAndStaleEventsIdempotent(t *testing.T) {
	store := newStore(t, 4)
	sub := NewStoreSubscriber(store)
	sub.Apply(Event{Seq: 1, Key: 0})
	sub.Apply(Event{Seq: 2, Key: 1})
	before := sub.Applied()
	sub.Apply(Event{Seq: 2, Key: 1}) // duplicate
	sub.Apply(Event{Seq: 1, Key: 0}) // stale
	if sub.Applied() != before {
		t.Fatal("duplicate/stale events were applied")
	}
	if sub.Flushes() != 0 {
		t.Fatal("duplicates treated as gaps")
	}
}

func TestSeedSeqSuppressesInitialGap(t *testing.T) {
	store := newStore(t, 4)
	sub := NewStoreSubscriber(store)
	sub.SeedSeq(41)
	sub.Apply(Event{Seq: 42, Key: 0})
	if sub.Flushes() != 0 {
		t.Fatal("seeded subscriber flushed on first event")
	}
}

func TestEventsLog(t *testing.T) {
	mon, _ := bem.New(bem.Config{Capacity: 4})
	hub := NewHub(mon)
	hub.Broadcast("a", 0, 1)
	hub.Broadcast("b", 1, 2)
	hub.Broadcast("c", 2, 3)
	evs, ok := hub.Events(1)
	if !ok || len(evs) != 2 || evs[0].Seq != 2 {
		t.Fatalf("Events(1) = %v, %v", evs, ok)
	}
	all, ok := hub.Events(0)
	if !ok || len(all) != 3 {
		t.Fatalf("Events(0) = %v, %v", all, ok)
	}
}

func TestEventsLogTrimReportsTooOld(t *testing.T) {
	mon, _ := bem.New(bem.Config{Capacity: 4})
	hub := NewHub(mon)
	hub.MaxLog = 2
	for i := 0; i < 5; i++ {
		hub.Broadcast("x", uint32(i%4), uint32(i))
	}
	if _, ok := hub.Events(0); ok {
		t.Fatal("trimmed log claimed to reach back to 0")
	}
	evs, ok := hub.Events(3)
	if !ok || len(evs) != 2 {
		t.Fatalf("Events(3) = %v, %v", evs, ok)
	}
}

func TestHTTPBridgeDeliversAndAcks(t *testing.T) {
	store := newStore(t, 8)
	_ = store.Set(5, 9, []byte("stale"))
	edgeSub := NewStoreSubscriber(store)
	edge := httptest.NewServer(Handler(edgeSub))
	defer edge.Close()

	mon, _ := bem.New(bem.Config{Capacity: 8})
	hub := NewHub(mon)
	remote := &RemoteSubscriber{URL: edge.URL}
	hub.Subscribe(remote)

	hub.Broadcast("f", 5, 9)
	if _, ok := store.Get(5, 9, false); ok {
		t.Fatal("edge store still holds invalidated slot")
	}
	if hub.AckedThrough() != 1 {
		t.Fatalf("AckedThrough = %d", hub.AckedThrough())
	}
}

func TestHTTPBridgeToleratesDeadEdge(t *testing.T) {
	mon, _ := bem.New(bem.Config{Capacity: 8})
	hub := NewHub(mon)
	remote := &RemoteSubscriber{URL: "http://127.0.0.1:1/invalidate"}
	hub.Subscribe(remote)
	hub.Broadcast("f", 0, 1) // must not panic or block
	if remote.Errors() != 1 {
		t.Fatalf("errors = %d", remote.Errors())
	}
}

func TestHandlerRejectsBadRequests(t *testing.T) {
	edge := httptest.NewServer(Handler(NewStoreSubscriber(newStore(t, 2))))
	defer edge.Close()
	resp, err := edge.Client().Get(edge.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
	resp, err = edge.Client().Post(edge.URL, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("empty POST status = %d", resp.StatusCode)
	}
}
