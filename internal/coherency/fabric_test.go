package coherency

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dpcache/internal/bem"
	"dpcache/internal/depindex"
	"dpcache/internal/pagecache"
)

func newTier(t *testing.T) *pagecache.Cache {
	t.Helper()
	c, err := pagecache.NewCache(pagecache.CacheConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// A fragment invalidation must drop exactly the keyed entries the
// dependency index recorded as composed from it — nothing more.
func TestTierSubscriberDropsDependents(t *testing.T) {
	tier := newTier(t)
	ix := depindex.New(depindex.Config{Horizon: time.Minute})
	tier.Put("pageA", []byte("a"), "", time.Minute)
	tier.Put("pageB", []byte("b"), "", time.Minute)
	tier.Put("pageC", []byte("c"), "", time.Minute)
	ix.Record(depindex.Ref(5, 9), "pageA")
	ix.Record(depindex.Ref(5, 9), "pageB")
	ix.Record(depindex.Ref(6, 1), "pageC")

	sub := NewPageSubscriber(tier, ix)
	mon, _ := bem.New(bem.Config{Capacity: 8})
	hub := NewHub(mon)
	hub.Subscribe(sub)

	hub.Broadcast("frag", 5, 9)
	if _, _, ok := tier.Get("pageA"); ok {
		t.Fatal("pageA survived its fragment's invalidation")
	}
	if _, _, ok := tier.Get("pageB"); ok {
		t.Fatal("pageB survived its fragment's invalidation")
	}
	if _, _, ok := tier.Get("pageC"); !ok {
		t.Fatal("pageC dropped though its fragment is alive")
	}
	if sub.Dropped() != 2 || sub.Flushes() != 0 {
		t.Fatalf("dropped=%d flushes=%d, want 2/0", sub.Dropped(), sub.Flushes())
	}
	// The invalidated ref is tombstoned for in-flight fills.
	if !ix.AnyInvalid([]string{depindex.Ref(5, 9)}) {
		t.Fatal("invalidated ref not tombstoned")
	}
	// A fragment with no recorded dependents is a surgical no-op.
	hub.Broadcast("other", 7, 1)
	if tier.Len() != 1 || sub.Flushes() != 0 {
		t.Fatalf("no-dependent event disturbed the tier: len=%d flushes=%d", tier.Len(), sub.Flushes())
	}
}

// When the index evicted the edge under byte pressure, the subscriber
// cannot know which pages held the fragment — it must flush the tier
// (the documented fallback) rather than risk serving stale bytes.
func TestTierSubscriberEvictionFallbackFlushes(t *testing.T) {
	tier := newTier(t)
	// A budget small enough that recording evicts earlier fragments.
	ix := depindex.New(depindex.Config{Shards: 1, ByteBudget: 256, Horizon: time.Minute})
	tier.Put("victim-page", []byte("stale bytes"), "", time.Minute)
	ix.Record(depindex.Ref(1, 1), "victim-page")
	for i := uint32(2); i < 40; i++ {
		ix.Record(depindex.Ref(i, 1), "some-other-rather-long-page-key")
	}
	if ix.Stats().Evictions == 0 {
		t.Fatal("test setup: no evictions occurred")
	}

	sub := NewPageSubscriber(tier, ix)
	sub.Apply(Event{Seq: 1, Kind: KindFragment, Key: 1, Gen: 1})
	if _, _, ok := tier.Get("victim-page"); ok {
		t.Fatal("evicted-edge invalidation left the dependent page resident")
	}
	if sub.Fallbacks() != 1 || sub.Flushes() != 1 {
		t.Fatalf("fallbacks=%d flushes=%d, want 1/1", sub.Fallbacks(), sub.Flushes())
	}
}

// A sequence gap (lost event) must flush the tier and bump the index
// epoch so in-flight fills discard too.
func TestTierSubscriberGapFlushes(t *testing.T) {
	tier := newTier(t)
	ix := depindex.New(depindex.Config{Horizon: time.Minute})
	tier.Put("p", []byte("x"), "", time.Minute)
	sub := NewPageSubscriber(tier, ix)
	e0 := ix.Epoch()

	sub.Apply(Event{Seq: 1, Kind: KindFragment, Key: 0, Gen: 1})
	sub.Apply(Event{Seq: 3, Kind: KindFragment, Key: 1, Gen: 1}) // 2 lost
	if tier.Len() != 0 {
		t.Fatal("gap did not flush the tier")
	}
	if sub.Flushes() != 1 {
		t.Fatalf("flushes = %d", sub.Flushes())
	}
	if ix.Epoch() == e0 {
		t.Fatal("gap flush did not bump the index epoch")
	}
	// Duplicates after the gap are idempotent.
	before := sub.Applied()
	sub.Apply(Event{Seq: 3, Kind: KindFragment, Key: 1, Gen: 1})
	if sub.Applied() != before {
		t.Fatal("duplicate event applied twice")
	}
}

// A purge event drops every variant of one URI — and only that URI —
// using the tier's key-prefix schema supplied by the wiring layer.
func TestTierSubscriberPurgeDropsVariants(t *testing.T) {
	tier := newTier(t)
	tier.Put("GET\x00/a\x00fr", []byte("x"), "", time.Minute)
	tier.Put("GET\x00/a\x00en", []byte("x"), "", time.Minute)
	tier.Put("GET\x00/ab\x00", []byte("x"), "", time.Minute)
	sub := NewPageSubscriber(tier, nil)
	sub.KeyPrefix = func(uri string) string { return "GET\x00" + uri + "\x00" }

	sub.Apply(Event{Seq: 1, Kind: KindPurge, URI: "/a"})
	if tier.Len() != 1 {
		t.Fatalf("purge left %d entries, want 1 (/ab must survive)", tier.Len())
	}
	if _, _, ok := tier.Get("GET\x00/ab\x00"); !ok {
		t.Fatal("purge of /a dropped /ab")
	}
	if sub.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", sub.Dropped())
	}
}

// Flush events respect scope: a "static" flush must not touch a page
// tier, a "" flush empties everything.
func TestTierSubscriberFlushScope(t *testing.T) {
	tier := newTier(t)
	tier.Put("p", []byte("x"), "", time.Minute)
	sub := NewPageSubscriber(tier, nil)
	sub.Apply(Event{Seq: 1, Kind: KindFlush, Scope: "static"})
	if tier.Len() != 1 {
		t.Fatal("static-scoped flush emptied the page tier")
	}
	sub.Apply(Event{Seq: 2, Kind: KindFlush, Scope: "page"})
	if tier.Len() != 0 {
		t.Fatal("page-scoped flush did not empty the page tier")
	}
}

// The static subscriber treats fragment events with an authoritative
// empty dependent set as no-ops — static entries are never assembled
// from fragments, and flushing the static tier per invalidation would
// defeat it entirely.
func TestStaticSubscriberFragmentNoop(t *testing.T) {
	tier := newTier(t)
	ix := depindex.New(depindex.Config{Horizon: time.Minute})
	tier.Put("/asset.css\x00", []byte("body"), "", time.Minute)
	sub := NewStaticSubscriber(tier, ix)
	sub.Apply(Event{Seq: 1, Kind: KindFragment, Key: 3, Gen: 7})
	if tier.Len() != 1 || sub.Flushes() != 0 {
		t.Fatalf("fragment event disturbed the static tier: len=%d flushes=%d", tier.Len(), sub.Flushes())
	}
}

// Fanout must deliver to every member and ack the minimum, so the hub's
// gap semantics hold for the slowest tier behind one endpoint.
func TestFanoutAcksMinimum(t *testing.T) {
	fast := NewStoreSubscriber(newStore(t, 4))
	slow := &lossySubscriber{inner: NewStoreSubscriber(newStore(t, 4)), drop: map[uint64]bool{2: true}}
	f := Fanout(fast, slow)
	if got := f.Apply(Event{Seq: 1, Kind: KindFragment, Key: 0}); got != 1 {
		t.Fatalf("ack = %d, want 1", got)
	}
	if got := f.Apply(Event{Seq: 2, Kind: KindFragment, Key: 1}); got != 1 {
		t.Fatalf("ack = %d after a lossy member, want 1 (min)", got)
	}
}

// A store subscriber must advance its cursor over keyed-tier events
// (purge) without treating them as gaps or dropping slots.
func TestStoreSubscriberSkipsKeyedEvents(t *testing.T) {
	store := newStore(t, 4)
	_ = store.Set(2, 1, []byte("frag"))
	sub := NewStoreSubscriber(store)
	sub.Apply(Event{Seq: 1, Kind: KindPurge, URI: "/x"})
	if store.Resident() != 1 {
		t.Fatal("purge event touched the fragment store")
	}
	sub.Apply(Event{Seq: 2, Kind: KindFragment, Key: 2, Gen: 1})
	if store.Resident() != 0 {
		t.Fatal("in-order fragment event after purge not applied")
	}
	if sub.Flushes() != 0 {
		t.Fatal("purge event mistaken for a gap")
	}
	sub.Apply(Event{Seq: 3, Kind: KindFlush, Scope: "page"})
	if sub.Flushes() != 0 {
		t.Fatal("page-scoped flush applied to the fragment store")
	}
	sub.Apply(Event{Seq: 4, Kind: KindFlush})
	if sub.Flushes() != 1 {
		t.Fatal("unscoped flush did not drop the store")
	}
}

// The HTTP bridge must carry the generalized payloads: a purge event
// posted to an edge endpoint drops the keyed variants there.
func TestHTTPBridgeCarriesPurge(t *testing.T) {
	tier, err := pagecache.NewCache(pagecache.CacheConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tier.Put("GET\x00/p\x00", []byte("x"), "", time.Minute)
	sub := NewPageSubscriber(tier, nil)
	sub.KeyPrefix = func(uri string) string { return "GET\x00" + uri + "\x00" }
	edge := httptest.NewServer(Handler(sub))
	defer edge.Close()

	mon, _ := bem.New(bem.Config{Capacity: 4})
	hub := NewHub(mon)
	hub.Subscribe(&RemoteSubscriber{URL: edge.URL})
	hub.BroadcastPurge("/p")
	if tier.Len() != 0 {
		t.Fatal("purge did not cross the HTTP bridge")
	}
	if hub.AckedThrough() != 1 {
		t.Fatalf("AckedThrough = %d", hub.AckedThrough())
	}
}

// Fragment events arriving from the BEM carry their invalidation reason.
func TestHubEventCarriesReason(t *testing.T) {
	mon, _ := bem.New(bem.Config{Capacity: 4})
	hub := NewHub(mon)
	if _, err := mon.Lookup("f", 0); err != nil {
		t.Fatal(err)
	}
	mon.Invalidate("f")
	evs, ok := hub.Events(0)
	if !ok || len(evs) != 1 {
		t.Fatalf("events = %v, %v", evs, ok)
	}
	if evs[0].Kind != KindFragment || evs[0].Reason != string(bem.ReasonExplicit) {
		t.Fatalf("event = %+v, want explicit fragment invalidation", evs[0])
	}
	if !strings.Contains(evs[0].FragmentID, "f") {
		t.Fatalf("fragment id = %q", evs[0].FragmentID)
	}
}
