package bem

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"dpcache/internal/clock"
	"dpcache/internal/repository"
)

func newMonitor(t *testing.T, capacity int) *Monitor {
	t.Helper()
	m, err := New(Config{Capacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Capacity: 0}); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	if _, err := New(Config{Capacity: 1, ForcedMissProb: 1.5}); err == nil {
		t.Fatal("forced-miss prob 1.5 accepted")
	}
}

func TestFirstLookupMissesThenHits(t *testing.T) {
	m := newMonitor(t, 4)
	d1, err := m.Lookup("nav+top", 0)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Hit {
		t.Fatal("first lookup was a hit")
	}
	d2, err := m.Lookup("nav+top", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Hit {
		t.Fatal("second lookup was a miss")
	}
	if d2.Key != d1.Key || d2.Gen != d1.Gen {
		t.Fatalf("hit decision %+v does not match miss decision %+v", d2, d1)
	}
}

func TestDistinctFragmentsGetDistinctKeys(t *testing.T) {
	m := newMonitor(t, 8)
	seen := map[uint32]string{}
	for _, id := range []string{"a", "b", "c", "d"} {
		d, err := m.Lookup(id, 0)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[d.Key]; dup {
			t.Fatalf("key %d assigned to both %q and %q", d.Key, prev, id)
		}
		seen[d.Key] = id
	}
}

func TestGenerationsGloballyUnique(t *testing.T) {
	m := newMonitor(t, 2)
	gens := map[uint32]bool{}
	for i := 0; i < 10; i++ {
		id := string(rune('a' + i%3))
		d, err := m.Lookup(id, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Hit {
			if gens[d.Gen] {
				t.Fatalf("generation %d reused", d.Gen)
			}
			gens[d.Gen] = true
		}
		m.Invalidate(id)
	}
}

func TestTTLExpiryInvalidatesLazily(t *testing.T) {
	fake := clock.NewFake(time.Unix(1000, 0))
	m, err := New(Config{Capacity: 4, Clock: fake})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Lookup("quote+IBM", 30*time.Second); err != nil {
		t.Fatal(err)
	}
	fake.Advance(10 * time.Second)
	d, _ := m.Lookup("quote+IBM", 30*time.Second)
	if !d.Hit {
		t.Fatal("fragment expired early")
	}
	fake.Advance(25 * time.Second)
	d, _ = m.Lookup("quote+IBM", 30*time.Second)
	if d.Hit {
		t.Fatal("fragment not expired after TTL")
	}
	if got := m.Stats().TTLInvalidations; got != 1 {
		t.Fatalf("TTLInvalidations = %d, want 1", got)
	}
}

func TestSweepExpired(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	m, err := New(Config{Capacity: 8, Clock: fake})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = m.Lookup("a", time.Second)
	_, _ = m.Lookup("b", time.Minute)
	_, _ = m.Lookup("c", 0) // no TTL
	fake.Advance(10 * time.Second)
	if n := m.SweepExpired(); n != 1 {
		t.Fatalf("SweepExpired = %d, want 1", n)
	}
	if d, _ := m.Lookup("b", time.Minute); !d.Hit {
		t.Fatal("unexpired fragment was swept")
	}
	if d, _ := m.Lookup("c", 0); !d.Hit {
		t.Fatal("no-TTL fragment was swept")
	}
}

func TestZeroTTLNeverExpires(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	m, err := New(Config{Capacity: 2, Clock: fake})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = m.Lookup("eternal", 0)
	fake.Advance(1000 * time.Hour)
	if d, _ := m.Lookup("eternal", 0); !d.Hit {
		t.Fatal("no-TTL fragment expired")
	}
}

func TestExplicitInvalidate(t *testing.T) {
	m := newMonitor(t, 4)
	_, _ = m.Lookup("x", 0)
	if !m.Invalidate("x") {
		t.Fatal("Invalidate returned false for valid fragment")
	}
	if m.Invalidate("x") {
		t.Fatal("Invalidate returned true for already-invalid fragment")
	}
	if m.Invalidate("never-seen") {
		t.Fatal("Invalidate returned true for unknown fragment")
	}
	if d, _ := m.Lookup("x", 0); d.Hit {
		t.Fatal("invalidated fragment served as hit")
	}
}

func TestInvalidationReassignsKeyAndBumpsGen(t *testing.T) {
	m := newMonitor(t, 4)
	d1, _ := m.Lookup("x", 0)
	m.Invalidate("x")
	d2, _ := m.Lookup("x", 0)
	if d2.Hit {
		t.Fatal("lookup after invalidation hit")
	}
	if d2.Gen == d1.Gen {
		t.Fatal("generation not bumped on regeneration")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDependencyInvalidation(t *testing.T) {
	m := newMonitor(t, 8)
	repo := repository.New(repository.LatencyModel{})
	m.BindRepo(repo)

	dep := repository.Key{Table: "quotes", Row: "IBM"}
	_, _ = m.Lookup("quote+IBM", 0)
	m.Commit("quote+IBM", 100, []repository.Key{dep})
	_, _ = m.Lookup("headlines+IBM", 0)
	m.Commit("headlines+IBM", 400, []repository.Key{{Table: "news", Row: "IBM"}})

	repo.Put(dep, map[string]string{"px": "142.10"})

	if d, _ := m.Lookup("quote+IBM", 0); d.Hit {
		t.Fatal("dependent fragment survived data update")
	}
	if d, _ := m.Lookup("headlines+IBM", 0); !d.Hit {
		t.Fatal("unrelated fragment was invalidated")
	}
	if got := m.Stats().DataInvalidations; got != 1 {
		t.Fatalf("DataInvalidations = %d, want 1", got)
	}
}

func TestCommitReplacesDeps(t *testing.T) {
	m := newMonitor(t, 4)
	old := repository.Key{Table: "t", Row: "old"}
	nw := repository.Key{Table: "t", Row: "new"}
	_, _ = m.Lookup("f", 0)
	m.Commit("f", 10, []repository.Key{old})
	m.Invalidate("f")
	_, _ = m.Lookup("f", 0)
	m.Commit("f", 10, []repository.Key{nw})
	if n := m.InvalidateDependents(old); n != 0 {
		t.Fatalf("stale dependency still registered: invalidated %d", n)
	}
	if n := m.InvalidateDependents(nw); n != 1 {
		t.Fatalf("new dependency not registered: invalidated %d", n)
	}
}

func TestLRUEvictionWhenFull(t *testing.T) {
	m := newMonitor(t, 3)
	for _, id := range []string{"a", "b", "c"} {
		_, _ = m.Lookup(id, 0)
	}
	// Touch a and c so b is LRU.
	_, _ = m.Lookup("a", 0)
	_, _ = m.Lookup("c", 0)
	// Inserting d forces eviction of b.
	_, _ = m.Lookup("d", 0)
	if got := m.Stats().Evictions; got != 1 {
		t.Fatalf("Evictions = %d, want 1", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// b must now miss (this lookup itself evicts another fragment).
	if d, _ := m.Lookup("b", 0); d.Hit {
		t.Fatal("LRU fragment b survived eviction")
	}
}

func TestEvictionPrefersLeastRecentlyUsed(t *testing.T) {
	m := newMonitor(t, 2)
	_, _ = m.Lookup("old", 0)
	_, _ = m.Lookup("new", 0)
	_, _ = m.Lookup("new", 0)    // refresh new
	_, _ = m.Lookup("newest", 0) // evicts old, not new
	if d, _ := m.Lookup("new", 0); !d.Hit {
		t.Fatal("recently used fragment was evicted before LRU one")
	}
}

func TestForcedMissPinsHitRatio(t *testing.T) {
	m, err := New(Config{Capacity: 4, ForcedMissProb: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	hits := 0
	for i := 0; i < n; i++ {
		d, err := m.Lookup("f", 0)
		if err != nil {
			t.Fatal(err)
		}
		if d.Hit {
			hits++
		}
	}
	h := float64(hits) / float64(n)
	if h < 0.44 || h > 0.56 {
		t.Fatalf("measured hit ratio %.3f, want ~0.5", h)
	}
	if m.Stats().ForcedMisses == 0 {
		t.Fatal("no forced misses recorded")
	}
}

func TestStatsHitRatio(t *testing.T) {
	m := newMonitor(t, 4)
	_, _ = m.Lookup("a", 0)
	_, _ = m.Lookup("a", 0)
	_, _ = m.Lookup("a", 0)
	_, _ = m.Lookup("a", 0)
	s := m.Stats()
	if got := s.HitRatio(); got != 0.75 {
		t.Fatalf("HitRatio = %v, want 0.75", got)
	}
	if (Stats{}).HitRatio() != 0 {
		t.Fatal("empty HitRatio not 0")
	}
}

func TestOnInvalidateHookFires(t *testing.T) {
	m := newMonitor(t, 4)
	var mu sync.Mutex
	var got []string
	m.OnInvalidate(func(fragID string, key, gen uint32, reason InvalidationReason) {
		mu.Lock()
		got = append(got, fragID)
		mu.Unlock()
	})
	d, _ := m.Lookup("x", 0)
	_ = d
	m.Invalidate("x")
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != "x" {
		t.Fatalf("hook calls = %v, want [x]", got)
	}
}

func TestHookFiresOnTTLAndEviction(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	m, err := New(Config{Capacity: 1, Clock: fake})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	count := 0
	m.OnInvalidate(func(string, uint32, uint32, InvalidationReason) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	_, _ = m.Lookup("a", time.Second)
	fake.Advance(2 * time.Second)
	_, _ = m.Lookup("a", time.Second) // TTL invalidation + regeneration
	_, _ = m.Lookup("b", 0)           // evicts a
	mu.Lock()
	defer mu.Unlock()
	if count != 2 {
		t.Fatalf("hook fired %d times, want 2 (one TTL, one eviction)", count)
	}
}

// Property: after an arbitrary interleaving of lookups, invalidations,
// dependency updates, TTL advances, and evictions, the freeList/directory
// key discipline holds.
func TestInvariantsUnderRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	fake := clock.NewFake(time.Unix(0, 0))
	const capacity = 5
	m, err := New(Config{Capacity: capacity, Clock: fake})
	if err != nil {
		t.Fatal(err)
	}
	frags := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	deps := []repository.Key{{Table: "t", Row: "1"}, {Table: "t", Row: "2"}}
	for op := 0; op < 5000; op++ {
		switch rng.Intn(5) {
		case 0, 1:
			id := frags[rng.Intn(len(frags))]
			ttl := time.Duration(rng.Intn(3)) * time.Second
			if _, err := m.Lookup(id, ttl); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			m.Commit(id, rng.Intn(2048), []repository.Key{deps[rng.Intn(len(deps))]})
		case 2:
			m.Invalidate(frags[rng.Intn(len(frags))])
		case 3:
			m.InvalidateDependents(deps[rng.Intn(len(deps))])
		case 4:
			fake.Advance(time.Duration(rng.Intn(1500)) * time.Millisecond)
			m.SweepExpired()
		}
		if op%97 == 0 {
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.ValidFragments > capacity {
		t.Fatalf("%d valid fragments exceed capacity %d", s.ValidFragments, capacity)
	}
}

func TestConcurrentLookups(t *testing.T) {
	m := newMonitor(t, 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 500; i++ {
				id := string(rune('a' + rng.Intn(20)))
				if _, err := m.Lookup(id, 0); err != nil {
					t.Errorf("lookup: %v", err)
					return
				}
				if rng.Intn(10) == 0 {
					m.Invalidate(id)
				}
			}
		}(g)
	}
	wg.Wait()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestKeyQueueFIFOAndGrowth(t *testing.T) {
	q := newKeyQueue(2)
	for i := uint32(0); i < 10; i++ {
		q.push(i)
	}
	if q.len() != 10 {
		t.Fatalf("len = %d", q.len())
	}
	for i := uint32(0); i < 10; i++ {
		k, ok := q.pop()
		if !ok || k != i {
			t.Fatalf("pop %d = %d,%v", i, k, ok)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
}

func TestKeyQueueWrapAround(t *testing.T) {
	q := newKeyQueue(4)
	for round := 0; round < 5; round++ {
		for i := uint32(0); i < 3; i++ {
			q.push(i)
		}
		for i := uint32(0); i < 3; i++ {
			k, ok := q.pop()
			if !ok || k != i {
				t.Fatalf("round %d: pop = %d,%v want %d", round, k, ok, i)
			}
		}
	}
}

func TestInvalidatedKeyGoesToFreeListTail(t *testing.T) {
	// Paper: invalid keys are appended at the tail, so reuse happens as
	// late as possible. With capacity 3 and one fragment invalidated,
	// two fresh fragments must consume the two never-used keys before
	// the recycled key reappears.
	m := newMonitor(t, 3)
	d, _ := m.Lookup("a", 0)
	m.Invalidate("a")
	d1, _ := m.Lookup("b", 0)
	d2, _ := m.Lookup("c", 0)
	if d1.Key == d.Key || d2.Key == d.Key {
		t.Fatalf("recycled key %d reused before fresh keys (got %d, %d)", d.Key, d1.Key, d2.Key)
	}
	d3, _ := m.Lookup("d", 0)
	if d3.Key != d.Key {
		t.Fatalf("fourth fragment key = %d, want recycled %d", d3.Key, d.Key)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	m, _ := New(Config{Capacity: 1024})
	_, _ = m.Lookup("hot", 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Lookup("hot", 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookupMissInvalidate(b *testing.B) {
	m, _ := New(Config{Capacity: 1024})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Lookup("f", 0); err != nil {
			b.Fatal(err)
		}
		m.Invalidate("f")
	}
}

func TestInvalidateStale(t *testing.T) {
	m := newMonitor(t, 4)
	d, _ := m.Lookup("f", 0)
	if !m.InvalidateStale(d.Key, d.Gen) {
		t.Fatal("stale report for valid entry rejected")
	}
	if d2, _ := m.Lookup("f", 0); d2.Hit {
		t.Fatal("fragment still hit after stale invalidation")
	}
	if m.Stats().StaleInvalidations != 1 {
		t.Fatalf("StaleInvalidations = %d", m.Stats().StaleInvalidations)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidateStaleWrongGenIgnored(t *testing.T) {
	m := newMonitor(t, 4)
	d, _ := m.Lookup("f", 0)
	if m.InvalidateStale(d.Key, d.Gen+1) {
		t.Fatal("stale report with wrong generation accepted")
	}
	if d2, _ := m.Lookup("f", 0); !d2.Hit {
		t.Fatal("valid fragment was invalidated by mismatched report")
	}
}

func TestInvalidateStaleUnknownKey(t *testing.T) {
	m := newMonitor(t, 4)
	if m.InvalidateStale(3, 1) {
		t.Fatal("unknown key accepted")
	}
}

func TestSweeperReclaimsExpiredSlots(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	m, err := New(Config{Capacity: 4, Clock: fake})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = m.Lookup("short", 100*time.Millisecond)
	stop := m.StartSweeper(5 * time.Millisecond)
	defer stop()
	fake.Advance(time.Second)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if m.Stats().TTLInvalidations == 1 {
			if m.Stats().FreeKeys != 4 {
				t.Fatalf("FreeKeys = %d, want 4", m.Stats().FreeKeys)
			}
			stop()
			stop() // idempotent
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("sweeper never reclaimed the expired fragment")
}

func TestTopFragments(t *testing.T) {
	m := newMonitor(t, 8)
	_, _ = m.Lookup("hot", 0)
	m.Commit("hot", 512, nil)
	for i := 0; i < 5; i++ {
		_, _ = m.Lookup("hot", 0)
	}
	_, _ = m.Lookup("cold", 0)
	m.Commit("cold", 128, nil)
	_, _ = m.Lookup("cold", 0)

	top := m.TopFragments(1)
	if len(top) != 1 || top[0].FragmentID != "hot" {
		t.Fatalf("top = %+v", top)
	}
	if top[0].Hits != 5 || top[0].Size != 512 || !top[0].Valid {
		t.Fatalf("hot info = %+v", top[0])
	}
	all := m.TopFragments(0)
	if len(all) != 2 {
		t.Fatalf("all = %+v", all)
	}
}

func TestTopFragmentsDeterministicTies(t *testing.T) {
	m := newMonitor(t, 8)
	_, _ = m.Lookup("b", 0)
	_, _ = m.Lookup("a", 0)
	top := m.TopFragments(2)
	if top[0].FragmentID != "a" || top[1].FragmentID != "b" {
		t.Fatalf("tie order = %v, %v", top[0].FragmentID, top[1].FragmentID)
	}
}
