// Package bem implements the Back End Monitor of Section 4.3.3: the
// component that lives beside the application server, watches script
// execution, and owns *all* cache-management state for the Dynamic Proxy
// Cache.
//
// The BEM's central data structure is the cache directory, mapping
//
//	fragmentID (name + parameterList) → {dpcKey, gen, isValid, ttl, …}
//
// plus the freeList of reusable integer dpcKeys. The common integer key is
// the paper's trick for avoiding any explicit BEM→DPC control channel: the
// DPC learns about slot assignments purely from SET instructions embedded
// in response templates, and invalid slots are simply never referenced
// again until a SET reuses them.
//
// Fragments become invalid through (a) TTL expiry, (b) updates to the
// underlying data sources (the dependency index + the repository's update
// bus), or (c) the LRU replacement manager reclaiming slots when the
// directory is full. In every case the key is appended to the *tail* of the
// freeList, so a key is reused as late as possible — the paper's argument
// for why in-flight references drain before a slot changes meaning. The
// generation number (a BEM-wide counter) makes reuse detectable by the
// strict-mode DPC even under concurrency.
package bem

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dpcache/internal/clock"
	"dpcache/internal/metrics"
	"dpcache/internal/repository"
)

// Config parameterizes a Monitor.
type Config struct {
	// Capacity is the number of DPC slots (and the maximum number of
	// simultaneously valid fragments). Required, > 0.
	Capacity int
	// Clock supplies time for TTL bookkeeping; defaults to the real clock.
	Clock clock.Clock
	// ForcedMissProb is an experiment hook: on each lookup of a valid
	// fragment, with this probability the fragment is invalidated and the
	// lookup proceeds as a miss. Figure 5 uses it to pin the hit ratio h.
	ForcedMissProb float64
	// Seed seeds the forced-miss RNG (so experiments are reproducible).
	Seed int64
	// Registry receives bem.* metrics; optional.
	Registry *metrics.Registry
}

// entry is one cache-directory record (paper's table in Section 4.3.3).
type entry struct {
	fragmentID string
	dpcKey     uint32
	gen        uint32
	valid      bool
	expiry     time.Time // zero when the fragment has no TTL
	size       int
	lastUsed   int64 // LRU tick
	hits       int64
	deps       []repository.Key
}

// FragmentInfo is a read-only view of one directory entry, for
// operational introspection (the /stats endpoint and capacity planning).
type FragmentInfo struct {
	FragmentID string
	DpcKey     uint32
	Gen        uint32
	Valid      bool
	Size       int
	Hits       int64
}

// InvalidationReason says why a fragment became invalid; the invalidation
// hook reports it so downstream consumers (the coherency fabric, metrics)
// can distinguish data-driven drops from TTL churn and slot pressure.
type InvalidationReason string

// Invalidation reasons, matching the Stats counters.
const (
	// ReasonTTL: the fragment's time-to-live expired.
	ReasonTTL InvalidationReason = "ttl"
	// ReasonData: a repository write touched a declared dependency.
	ReasonData InvalidationReason = "data"
	// ReasonExplicit: Invalidate was called on the fragment by name.
	ReasonExplicit InvalidationReason = "explicit"
	// ReasonStale: a DPC reported it could not satisfy a GET for the slot.
	ReasonStale InvalidationReason = "stale"
	// ReasonEviction: the replacement manager reclaimed the slot.
	ReasonEviction InvalidationReason = "eviction"
	// ReasonForced: the experiment hook forced a miss.
	ReasonForced InvalidationReason = "forced"
)

// Decision is the outcome of a Lookup.
type Decision struct {
	// Hit reports whether the fragment may be served from the DPC. On a
	// hit the caller emits GET(Key, Gen); on a miss it generates content
	// and emits SET(Key, Gen, content) followed by Commit.
	Hit bool
	Key uint32
	Gen uint32
}

// Stats is a point-in-time summary of monitor activity.
type Stats struct {
	Lookups               int64
	Hits                  int64
	Misses                int64
	ForcedMisses          int64
	Evictions             int64
	TTLInvalidations      int64
	DataInvalidations     int64
	ExplicitInvalidations int64
	StaleInvalidations    int64
	DirectorySize         int
	ValidFragments        int
	FreeKeys              int
}

// HitRatio returns hits/lookups, the paper's h, or 0 when no lookups.
func (s Stats) HitRatio() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// Monitor is the Back End Monitor. It is safe for concurrent use.
type Monitor struct {
	mu   sync.Mutex
	cfg  Config
	clk  clock.Clock
	dir  map[string]*entry
	free *keyQueue
	// byKey records which fragmentID a dpcKey was most recently assigned
	// to, so stale directory entries are purged when their key is reused.
	byKey map[uint32]string
	deps  map[repository.Key]map[string]struct{}
	rng   *rand.Rand

	genCounter uint32
	lruTick    int64

	stats Stats

	// pendingHooks accumulates invalidations performed while holding mu;
	// public entry points drain it after unlocking.
	pendingHooks []hookEvent

	// onInvalidate hooks fire (outside the monitor lock) after a fragment
	// is invalidated; the coherency extension uses this to broadcast to
	// edge DPCs and the keyed cache tiers.
	hookMu       sync.RWMutex
	onInvalidate []func(fragmentID string, key, gen uint32, reason InvalidationReason)
}

type hookEvent struct {
	fragmentID string
	key, gen   uint32
	reason     InvalidationReason
}

// New returns a Monitor with all dpcKeys [0, Capacity) on the freeList.
func New(cfg Config) (*Monitor, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("bem: capacity must be positive, got %d", cfg.Capacity)
	}
	if cfg.ForcedMissProb < 0 || cfg.ForcedMissProb > 1 {
		return nil, fmt.Errorf("bem: forced-miss probability %v outside [0,1]", cfg.ForcedMissProb)
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	m := &Monitor{
		cfg:   cfg,
		clk:   clk,
		dir:   make(map[string]*entry),
		free:  newKeyQueue(cfg.Capacity),
		byKey: make(map[uint32]string),
		deps:  make(map[repository.Key]map[string]struct{}),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	for k := 0; k < cfg.Capacity; k++ {
		m.free.push(uint32(k))
	}
	return m, nil
}

// BindRepo subscribes the monitor to a repository's update bus so that
// writes invalidate dependent fragments automatically.
func (m *Monitor) BindRepo(r *repository.Repo) {
	r.Subscribe(func(ev repository.UpdateEvent) {
		m.InvalidateDependents(ev.Key)
	})
}

// OnInvalidate registers a hook called after every invalidation with the
// fragment's identity (ID, slot key, generation) and the reason it died
// (TTL, data-driven, explicit, stale report, eviction, or forced miss).
// Hooks run outside the monitor lock.
func (m *Monitor) OnInvalidate(fn func(fragmentID string, key, gen uint32, reason InvalidationReason)) {
	m.hookMu.Lock()
	defer m.hookMu.Unlock()
	m.onInvalidate = append(m.onInvalidate, fn)
}

// drainHooksLocked takes the pending events; the caller fires them after
// releasing m.mu.
func (m *Monitor) drainHooksLocked() []hookEvent {
	evs := m.pendingHooks
	m.pendingHooks = nil
	return evs
}

func (m *Monitor) fire(evs []hookEvent) {
	if len(evs) == 0 {
		return
	}
	m.hookMu.RLock()
	hooks := m.onInvalidate
	m.hookMu.RUnlock()
	for _, ev := range evs {
		for _, fn := range hooks {
			fn(ev.fragmentID, ev.key, ev.gen, ev.reason)
		}
	}
}

// Lookup consults the cache directory for fragmentID, implementing the two
// run-time cases of Section 4.3.2. On a miss the directory entry is created
// (or revalidated) immediately — dpcKey assigned from the freeList head,
// generation bumped — and the caller is expected to generate the fragment
// and emit a SET carrying the returned key and generation, then call
// Commit with the fragment's size and data dependencies.
//
// ttl <= 0 means the fragment does not expire by time.
func (m *Monitor) Lookup(fragmentID string, ttl time.Duration) (Decision, error) {
	m.mu.Lock()
	m.stats.Lookups++
	m.lruTick++
	now := m.clk.Now()

	e, ok := m.dir[fragmentID]
	if ok && e.valid && !e.expiry.IsZero() && !now.Before(e.expiry) {
		// Lazy TTL invalidation.
		m.invalidateLocked(e, &m.stats.TTLInvalidations, ReasonTTL)
	}
	if ok && e.valid && m.cfg.ForcedMissProb > 0 && m.rng.Float64() < m.cfg.ForcedMissProb {
		m.invalidateLocked(e, &m.stats.ForcedMisses, ReasonForced)
	}

	if ok && e.valid {
		m.stats.Hits++
		e.hits++
		e.lastUsed = m.lruTick
		d := Decision{Hit: true, Key: e.dpcKey, Gen: e.gen}
		evs := m.drainHooksLocked()
		m.mu.Unlock()
		m.fire(evs)
		return d, nil
	}

	// Miss: case 1 of Section 4.3.2. Insert/refresh the directory entry.
	m.stats.Misses++
	key, err := m.allocKeyLocked()
	if err != nil {
		evs := m.drainHooksLocked()
		m.mu.Unlock()
		m.fire(evs)
		return Decision{}, err
	}
	m.genCounter++
	gen := m.genCounter
	// allocKeyLocked may have purged this fragment's own stale entry
	// (when the popped key is the one it used to hold), so re-fetch.
	e, ok = m.dir[fragmentID]
	if !ok {
		e = &entry{fragmentID: fragmentID}
		m.dir[fragmentID] = e
	}
	e.dpcKey = key
	e.gen = gen
	e.valid = true
	e.lastUsed = m.lruTick
	if ttl > 0 {
		e.expiry = now.Add(ttl)
	} else {
		e.expiry = time.Time{}
	}
	m.byKey[key] = fragmentID
	evs := m.drainHooksLocked()
	m.mu.Unlock()
	m.fire(evs)
	return Decision{Hit: false, Key: key, Gen: gen}, nil
}

// Commit records generation results for a fragment that just missed: its
// content size (for stats) and the data dependencies discovered while
// generating it (for update-driven invalidation).
func (m *Monitor) Commit(fragmentID string, size int, deps []repository.Key) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.dir[fragmentID]
	if !ok {
		return
	}
	e.size = size
	m.setDepsLocked(e, deps)
}

func (m *Monitor) setDepsLocked(e *entry, deps []repository.Key) {
	for _, d := range e.deps {
		if set, ok := m.deps[d]; ok {
			delete(set, e.fragmentID)
			if len(set) == 0 {
				delete(m.deps, d)
			}
		}
	}
	e.deps = append([]repository.Key(nil), deps...)
	for _, d := range e.deps {
		set, ok := m.deps[d]
		if !ok {
			set = make(map[string]struct{})
			m.deps[d] = set
		}
		set[e.fragmentID] = struct{}{}
	}
}

// allocKeyLocked pops a free dpcKey, evicting the LRU valid fragment when
// the freeList is empty (the replacement manager of Section 4.3.3).
func (m *Monitor) allocKeyLocked() (uint32, error) {
	for {
		key, ok := m.free.pop()
		if !ok {
			if err := m.evictLRULocked(); err != nil {
				return 0, err
			}
			continue
		}
		// Purge the stale directory entry that last held this key, if
		// it is still parked there invalid.
		if old, ok := m.byKey[key]; ok {
			if oe, ok := m.dir[old]; ok && oe.dpcKey == key && !oe.valid {
				m.removeEntryLocked(oe)
			}
			delete(m.byKey, key)
		}
		return key, nil
	}
}

func (m *Monitor) evictLRULocked() error {
	var victim *entry
	for _, e := range m.dir {
		if !e.valid {
			continue
		}
		if victim == nil || e.lastUsed < victim.lastUsed {
			victim = e
		}
	}
	if victim == nil {
		return fmt.Errorf("bem: freeList empty but no valid fragment to evict (capacity %d)", m.cfg.Capacity)
	}
	m.invalidateLocked(victim, &m.stats.Evictions, ReasonEviction)
	return nil
}

// invalidateLocked marks e invalid, returns its key to the freeList tail,
// and schedules the invalidation hook with its reason.
func (m *Monitor) invalidateLocked(e *entry, counter *int64, reason InvalidationReason) {
	if !e.valid {
		return
	}
	e.valid = false
	m.free.push(e.dpcKey)
	if counter != nil {
		*counter++
	}
	m.pendingHooks = append(m.pendingHooks, hookEvent{e.fragmentID, e.dpcKey, e.gen, reason})
}

func (m *Monitor) removeEntryLocked(e *entry) {
	m.setDepsLocked(e, nil)
	delete(m.dir, e.fragmentID)
}

// Invalidate explicitly invalidates one fragment, returning whether it was
// present and valid.
func (m *Monitor) Invalidate(fragmentID string) bool {
	m.mu.Lock()
	e, ok := m.dir[fragmentID]
	hit := ok && e.valid
	if hit {
		m.invalidateLocked(e, &m.stats.ExplicitInvalidations, ReasonExplicit)
	}
	evs := m.drainHooksLocked()
	m.mu.Unlock()
	m.fire(evs)
	return hit
}

// InvalidateStale invalidates the fragment currently holding the given
// dpcKey at the given generation. The DPC calls this (via the origin's
// stale-report header) when a GET instruction could not be satisfied from
// its store — e.g. after a proxy restart or a lost SET — so the next
// request regenerates the fragment instead of looping through the bypass
// fallback forever. Returns whether anything was invalidated.
func (m *Monitor) InvalidateStale(key, gen uint32) bool {
	m.mu.Lock()
	var hit bool
	if fragID, ok := m.byKey[key]; ok {
		if e, ok := m.dir[fragID]; ok && e.valid && e.dpcKey == key && e.gen == gen {
			m.invalidateLocked(e, &m.stats.StaleInvalidations, ReasonStale)
			hit = true
		}
	}
	evs := m.drainHooksLocked()
	m.mu.Unlock()
	m.fire(evs)
	return hit
}

// InvalidateDependents invalidates every valid fragment that declared a
// dependency on the given repository key.
func (m *Monitor) InvalidateDependents(k repository.Key) int {
	m.mu.Lock()
	n := 0
	for fragID := range m.deps[k] {
		if e, ok := m.dir[fragID]; ok && e.valid {
			m.invalidateLocked(e, &m.stats.DataInvalidations, ReasonData)
			n++
		}
	}
	evs := m.drainHooksLocked()
	m.mu.Unlock()
	m.fire(evs)
	return n
}

// SweepExpired proactively invalidates every fragment whose TTL has
// passed, returning the count. (Lookup also does this lazily; the sweep
// exists for the invalidation-manager loop.)
func (m *Monitor) SweepExpired() int {
	m.mu.Lock()
	now := m.clk.Now()
	n := 0
	for _, e := range m.dir {
		if e.valid && !e.expiry.IsZero() && !now.Before(e.expiry) {
			m.invalidateLocked(e, &m.stats.TTLInvalidations, ReasonTTL)
			n++
		}
	}
	evs := m.drainHooksLocked()
	m.mu.Unlock()
	m.fire(evs)
	return n
}

// TopFragments returns up to n directory entries ordered by hit count
// (descending), ties broken by fragmentID for determinism.
func (m *Monitor) TopFragments(n int) []FragmentInfo {
	m.mu.Lock()
	out := make([]FragmentInfo, 0, len(m.dir))
	for _, e := range m.dir {
		out = append(out, FragmentInfo{
			FragmentID: e.fragmentID,
			DpcKey:     e.dpcKey,
			Gen:        e.gen,
			Valid:      e.valid,
			Size:       e.size,
			Hits:       e.hits,
		})
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hits != out[j].Hits {
			return out[i].Hits > out[j].Hits
		}
		return out[i].FragmentID < out[j].FragmentID
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// StartSweeper runs the invalidation-manager loop: SweepExpired every
// interval until the returned stop function is called. The paper's cache
// invalidation manager "monitors fragments to determine when they become
// invalid"; lazy expiry at Lookup already guarantees correctness, so the
// sweeper's job is reclaiming slots for fragments that stopped being
// requested.
func (m *Monitor) StartSweeper(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				m.SweepExpired()
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Stats returns a snapshot of monitor counters.
func (m *Monitor) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.DirectorySize = len(m.dir)
	s.FreeKeys = m.free.len()
	for _, e := range m.dir {
		if e.valid {
			s.ValidFragments++
		}
	}
	return s
}

// CheckInvariants verifies the freeList/directory key discipline; tests
// and the property harness call it after mutation storms.
//
// Invariants: (1) every dpcKey in [0, capacity) is either on the freeList
// or held by exactly one *valid* directory entry; (2) no key appears twice
// across those two places; (3) at most Capacity fragments are valid.
func (m *Monitor) CheckInvariants() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := make(map[uint32]string, m.cfg.Capacity)
	for _, k := range m.free.snapshot() {
		if prev, dup := seen[k]; dup {
			return fmt.Errorf("bem: key %d on freeList twice (also %s)", k, prev)
		}
		seen[k] = "freeList"
	}
	valid := 0
	for id, e := range m.dir {
		if !e.valid {
			continue
		}
		valid++
		if prev, dup := seen[e.dpcKey]; dup {
			return fmt.Errorf("bem: key %d held by valid entry %q but already in %s", e.dpcKey, id, prev)
		}
		seen[e.dpcKey] = "entry " + id
	}
	if valid > m.cfg.Capacity {
		return fmt.Errorf("bem: %d valid fragments exceed capacity %d", valid, m.cfg.Capacity)
	}
	for k := 0; k < m.cfg.Capacity; k++ {
		if _, ok := seen[uint32(k)]; !ok {
			return fmt.Errorf("bem: key %d neither free nor validly held", k)
		}
	}
	return nil
}

// keyQueue is a FIFO of dpcKeys implemented as a growable ring buffer.
type keyQueue struct {
	buf        []uint32
	head, size int
}

func newKeyQueue(capHint int) *keyQueue {
	if capHint < 1 {
		capHint = 1
	}
	return &keyQueue{buf: make([]uint32, capHint)}
}

func (q *keyQueue) len() int { return q.size }

func (q *keyQueue) push(k uint32) {
	if q.size == len(q.buf) {
		nb := make([]uint32, 2*len(q.buf))
		for i := 0; i < q.size; i++ {
			nb[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf = nb
		q.head = 0
	}
	q.buf[(q.head+q.size)%len(q.buf)] = k
	q.size++
}

func (q *keyQueue) pop() (uint32, bool) {
	if q.size == 0 {
		return 0, false
	}
	k := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	return k, true
}

func (q *keyQueue) snapshot() []uint32 {
	out := make([]uint32, q.size)
	for i := 0; i < q.size; i++ {
		out[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	return out
}
