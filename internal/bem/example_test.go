package bem_test

import (
	"fmt"
	"time"

	"dpcache/internal/bem"
	"dpcache/internal/repository"
)

// The run-time operation of Section 4.3.2: first request misses (the
// caller generates content and emits SET), later requests hit (GET), and
// a data update invalidates the fragment through its dependencies.
func Example() {
	mon, _ := bem.New(bem.Config{Capacity: 16})
	repo := repository.New(repository.LatencyModel{})
	mon.BindRepo(repo)
	quote := repository.Key{Table: "quotes", Row: "IBM"}
	repo.Put(quote, map[string]string{"px": "141.80"})

	d, _ := mon.Lookup("pxquote+IBM", 2*time.Second)
	fmt.Println("first lookup hit:", d.Hit)
	mon.Commit("pxquote+IBM", 64, []repository.Key{quote})

	d, _ = mon.Lookup("pxquote+IBM", 2*time.Second)
	fmt.Println("second lookup hit:", d.Hit)

	repo.Put(quote, map[string]string{"px": "142.10"}) // price tick
	d, _ = mon.Lookup("pxquote+IBM", 2*time.Second)
	fmt.Println("after update hit:", d.Hit)

	st := mon.Stats()
	fmt.Printf("lookups=%d hits=%d data-invalidations=%d\n",
		st.Lookups, st.Hits, st.DataInvalidations)
	// Output:
	// first lookup hit: false
	// second lookup hit: true
	// after update hit: false
	// lookups=3 hits=1 data-invalidations=1
}
