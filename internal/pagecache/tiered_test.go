package pagecache

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dpcache/internal/diskstore"
	"dpcache/internal/fragstore"
)

// newTieredCache mounts the page cache on the disk-backed tiered store
// through the CacheConfig.Store override — the wiring the DPC uses for
// a disk-backed page tier.
func newTieredCache(t *testing.T, ramBudget int64) (*Cache, *fragstore.TieredKeyed) {
	t.Helper()
	ts, err := fragstore.NewTieredKeyed(fragstore.TieredConfig{
		RAM:  fragstore.KeyedConfig{Shards: 1, ByteBudget: ramBudget},
		Disk: diskstore.Config{Path: filepath.Join(t.TempDir(), "pages.heap")},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ts.Close() })
	c, err := NewCache(CacheConfig{Store: ts})
	if err != nil {
		t.Fatal(err)
	}
	return c, ts
}

// TestTieredPageCache drives whole pages across the tier boundary: a
// page demoted to disk must come back with its content type and entity
// tag intact, and purges must reach disk-resident pages.
func TestTieredPageCache(t *testing.T) {
	c, ts := newTieredCache(t, 64)
	pageA := bytes.Repeat([]byte("A"), 48)
	pageB := bytes.Repeat([]byte("B"), 48)
	c.PutTagged("GET /a", pageA, "text/html", `"etag-a"`, time.Minute)
	c.PutTagged("GET /b", pageB, "text/html", `"etag-b"`, time.Minute)
	if st := ts.TierStats(); st.Disk.Resident != 1 {
		t.Fatalf("setup: want one page demoted, got %+v", st)
	}
	body, ctype, etag, ok := c.GetTagged("GET /a")
	if !ok || !bytes.Equal(body, pageA) || ctype != "text/html" || etag != `"etag-a"` {
		t.Fatalf("demoted page lost its envelope: ok=%v ctype=%q etag=%q", ok, ctype, etag)
	}

	// A scoped purge (key-prefix DeleteFunc, the TierSubscriber's purge
	// path) must drop pages from both tiers.
	if st := ts.TierStats(); st.Disk.Resident != 1 {
		t.Fatalf("want one page still on disk before purge, got %+v", st)
	}
	if n := c.DeleteFunc(func(k string) bool { return strings.HasPrefix(k, "GET /") }); n != 2 {
		t.Fatalf("purge removed %d pages, want 2", n)
	}
	if c.Len() != 0 || ts.TierStats().Disk.Resident != 0 {
		t.Fatalf("purge left residue: len=%d %+v", c.Len(), ts.TierStats())
	}

	// Delete of a disk-resident page reports true.
	c.PutTagged("GET /a", pageA, "text/html", "", time.Minute)
	c.PutTagged("GET /b", pageB, "text/html", "", time.Minute)
	if _, _, ok := c.GetKeep("GET /a"); !ok {
		t.Fatal("page lost")
	}
	if ts.TierStats().Disk.Resident == 0 {
		t.Fatal("no page on disk")
	}
	// One of the two keys is disk-resident; Delete must find both.
	for _, k := range []string{"GET /a", "GET /b"} {
		if !c.Delete(k) {
			t.Fatalf("Delete(%q) missed a resident page", k)
		}
	}
}
