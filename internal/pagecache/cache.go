package pagecache

import (
	"time"

	"dpcache/internal/clock"
	"dpcache/internal/fragstore"
)

// CacheConfig parameterizes a Cache.
type CacheConfig struct {
	// MaxEntries bounds resident pages (0 selects 1024).
	MaxEntries int
	// ByteBudget bounds resident page bytes across the whole cache (0 =
	// unbounded). Like every fragstore-backed tier it is one global
	// ledger, not a per-shard split.
	ByteBudget int64
	// Eviction selects the policy ("", "lru", or "gdsf"; empty = lru).
	Eviction string
	// Clock drives TTL expiry (tests); nil = real clock.
	Clock clock.Clock
}

// Cache is a URL-keyed whole-page store: a thin typed wrapper over
// fragstore.KeyedStore holding complete response bodies plus their
// content type. It carries no locking, LRU, or accounting of its own —
// eviction (entry bound, global byte budget) and TTL expiry are owned by
// the keyed store. Both consumers share it: the baseline Proxy in this
// package and the DPC's pagecache pipeline stage.
type Cache struct {
	store *fragstore.KeyedStore
}

// NewCache returns a whole-page cache.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 1024
	}
	pol, err := fragstore.ParsePolicy(cfg.Eviction)
	if err != nil {
		return nil, err
	}
	store, err := fragstore.NewKeyed(fragstore.KeyedConfig{
		MaxEntries: cfg.MaxEntries,
		ByteBudget: cfg.ByteBudget,
		Policy:     pol, // PolicyNone (the zero value) selects LRU in the keyed store
		Clock:      cfg.Clock,
	})
	if err != nil {
		return nil, err
	}
	return &Cache{store: store}, nil
}

// Get returns the cached page under key, if fresh.
func (c *Cache) Get(key string) (body []byte, contentType string, ok bool) {
	e, ok := c.store.Get(key)
	if !ok {
		return nil, "", false
	}
	return e.Value, e.Meta, true
}

// Put stores a page under key for ttl. Non-positive ttl is ignored: a
// URL-keyed page cache cannot see fragment invalidations, so time is the
// only freshness signal it has — an unexpiring page would be wrong
// forever.
func (c *Cache) Put(key string, body []byte, contentType string, ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	c.store.Put(key, fragstore.KeyedEntry{Value: body, Meta: contentType}, ttl)
}

// Flush empties the cache.
func (c *Cache) Flush() { c.store.Flush() }

// Len returns the resident page count.
func (c *Cache) Len() int { return c.store.Len() }

// Bytes returns the resident page bytes.
func (c *Cache) Bytes() int64 { return c.store.Bytes() }

// Stats exposes the backing keyed store's snapshot.
func (c *Cache) Stats() fragstore.KeyedStats { return c.store.Stats() }

// Store exposes the backing keyed store (conformance tests run the
// fragment-store suite against it through AsFragmentStore).
func (c *Cache) Store() *fragstore.KeyedStore { return c.store }
