package pagecache

import (
	"strings"
	"time"

	"dpcache/internal/clock"
	"dpcache/internal/fragstore"
)

// CacheConfig parameterizes a Cache.
type CacheConfig struct {
	// MaxEntries bounds resident pages (0 selects 1024).
	MaxEntries int
	// ByteBudget bounds resident page bytes across the whole cache (0 =
	// unbounded). Like every fragstore-backed tier it is one global
	// ledger, not a per-shard split.
	ByteBudget int64
	// Eviction selects the policy ("", "lru", or "gdsf"; empty = lru).
	Eviction string
	// Clock drives TTL expiry (tests); nil = real clock.
	Clock clock.Clock
	// Store, when non-nil, is a prebuilt keyed backend the cache wraps
	// instead of allocating its own (the tiered disk-backed store, or a
	// test double). All other fields are ignored — the caller owns the
	// store's sizing, eviction, and lifecycle.
	Store fragstore.Keyed
}

// Cache is a URL-keyed whole-page store: a thin typed wrapper over a
// fragstore.Keyed backend holding complete response bodies plus their
// content type. It carries no locking, LRU, or accounting of its own —
// eviction (entry bound, global byte budget) and TTL expiry are owned by
// the keyed backend, which is an in-RAM KeyedStore by default or the
// disk-backed TieredKeyed when the caller supplies one. Both consumers
// share it: the baseline Proxy in this package and the DPC's pagecache
// pipeline stage.
type Cache struct {
	store fragstore.Keyed
}

// NewCache returns a whole-page cache.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if cfg.Store != nil {
		return &Cache{store: cfg.Store}, nil
	}
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 1024
	}
	pol, err := fragstore.ParsePolicy(cfg.Eviction)
	if err != nil {
		return nil, err
	}
	store, err := fragstore.NewKeyed(fragstore.KeyedConfig{
		MaxEntries: cfg.MaxEntries,
		ByteBudget: cfg.ByteBudget,
		Policy:     pol, // PolicyNone (the zero value) selects LRU in the keyed store
		Clock:      cfg.Clock,
	})
	if err != nil {
		return nil, err
	}
	return &Cache{store: store}, nil
}

// metaSep separates the content type from the entity tag inside the
// keyed store's Meta string. NUL cannot appear in either field (one is a
// header value, the other a quoted hex digest).
const metaSep = "\x00"

func packMeta(contentType, etag string) string {
	if etag == "" {
		return contentType
	}
	return contentType + metaSep + etag
}

func unpackMeta(meta string) (contentType, etag string) {
	if i := strings.IndexByte(meta, 0); i >= 0 {
		return meta[:i], meta[i+1:]
	}
	return meta, ""
}

// Get returns the cached page under key, if fresh.
func (c *Cache) Get(key string) (body []byte, contentType string, ok bool) {
	body, contentType, _, ok = c.GetTagged(key)
	return body, contentType, ok
}

// GetTagged returns the cached page under key plus the entity tag it was
// stamped with at capture time ("" when stored untagged).
func (c *Cache) GetTagged(key string) (body []byte, contentType, etag string, ok bool) {
	e, ok := c.store.Get(key)
	if !ok {
		return nil, "", "", false
	}
	contentType, etag = unpackMeta(e.Meta)
	return e.Value, contentType, etag, true
}

// GetKeep is Get without lazy-expiry removal: an expired page misses but
// stays resident for a later GetStale (see KeyedStore.GetKeep).
func (c *Cache) GetKeep(key string) (body []byte, contentType string, ok bool) {
	body, contentType, _, ok = c.GetTaggedKeep(key)
	return body, contentType, ok
}

// GetTaggedKeep is GetTagged without lazy-expiry removal.
func (c *Cache) GetTaggedKeep(key string) (body []byte, contentType, etag string, ok bool) {
	e, ok := c.store.GetKeep(key)
	if !ok {
		return nil, "", "", false
	}
	contentType, etag = unpackMeta(e.Meta)
	return e.Value, contentType, etag, true
}

// GetStale returns the cached page under key even when its TTL has
// lapsed, along with how far past expiry it is (zero while fresh). The
// admission-control stage serves these during origin overload
// (stale-while-revalidate); invalidated pages are Deleted outright and
// can never surface here. The caller bounds acceptable staleness.
func (c *Cache) GetStale(key string) (body []byte, contentType, etag string, age time.Duration, ok bool) {
	e, age, ok := c.store.GetStale(key)
	if !ok {
		return nil, "", "", 0, false
	}
	contentType, etag = unpackMeta(e.Meta)
	return e.Value, contentType, etag, age, true
}

// Put stores a page under key for ttl. Non-positive ttl is ignored: a
// URL-keyed page cache cannot see fragment invalidations on its own, so
// time is the baseline freshness signal — an unexpiring page would be
// wrong forever wherever no invalidation fabric is wired.
func (c *Cache) Put(key string, body []byte, contentType string, ttl time.Duration) {
	c.PutTagged(key, body, contentType, "", ttl)
}

// PutTagged stores a page along with its strong entity tag, letting the
// tier answer If-None-Match revalidations with a 304 instead of a body.
func (c *Cache) PutTagged(key string, body []byte, contentType, etag string, ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	c.store.Put(key, fragstore.KeyedEntry{Value: body, Meta: packMeta(contentType, etag)}, ttl)
}

// Delete removes the page under key, reporting whether one was resident.
// The coherency fabric's page subscriber drops invalidated pages here.
func (c *Cache) Delete(key string) bool { return c.store.Delete(key) }

// DeleteFunc removes every page whose key satisfies pred, returning the
// count (scoped purges: every variant of one URI shares a key prefix).
func (c *Cache) DeleteFunc(pred func(key string) bool) int {
	return c.store.DeleteFunc(pred)
}

// ReserveCapture charges n in-flight capture-buffer bytes (negative
// releases them) against the cache's global byte ledger, so concurrent
// response captures evict resident pages to make room instead of letting
// a capture storm hold budget-busting bytes off the books. No-op when
// the cache is unbudgeted.
func (c *Cache) ReserveCapture(n int64) { c.store.ReserveScratch(n) }

// Flush empties the cache.
func (c *Cache) Flush() { c.store.Flush() }

// Len returns the resident page count.
func (c *Cache) Len() int { return c.store.Len() }

// Bytes returns the resident page bytes.
func (c *Cache) Bytes() int64 { return c.store.Bytes() }

// Stats exposes the backing keyed store's snapshot.
func (c *Cache) Stats() fragstore.KeyedStats { return c.store.Stats() }

// Store exposes the backing keyed store (conformance tests run the
// fragment-store suite against it through AsFragmentStore).
func (c *Cache) Store() fragstore.Keyed { return c.store }
