// Package pagecache implements whole-page caching: a URL-keyed store of
// complete response bodies, used in two very different roles.
//
// As a standalone Proxy it is the paper's principal baseline: page-level
// proxy caching (Section 3.2.1) — a conventional reverse proxy that caches
// *entire* dynamically generated pages keyed by request URL, kept to
// demonstrate, measurably, the two failures the paper attributes to this
// approach:
//
//  1. Incorrect pages: the URL does not identify the content. Bob
//     (registered) warms the cache; Alice (anonymous, same URL) receives
//     Bob's personalized page.
//  2. Unnecessary invalidation: the page is the invalidation unit, so one
//     volatile fragment (a stock price) forces regeneration of all the
//     stable ones.
//
// As a Cache it is the DPC's whole-page tier: the dpc package mounts it
// as the "pagecache" pipeline stage for *anonymous-session* traffic only
// (no Cookie, Authorization, or X-User), where the URL does identify the
// content and the baseline's correctness flaw cannot occur. Short TTLs
// bound its staleness — a page cache cannot see fragment invalidations.
//
// Storage is fragstore.KeyedStore in both roles: this package owns no
// mutexes, LRU lists, or byte accounting. Eviction (entry bound and the
// global byte-budget ledger) and TTL expiry belong to the keyed store;
// this package only chooses keys and TTLs.
package pagecache

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"dpcache/internal/clock"
	"dpcache/internal/metrics"
)

// Config parameterizes the baseline page-cache proxy.
type Config struct {
	// OriginURL is the origin base URL. Required.
	OriginURL string
	// TTL is the page freshness lifetime. Required, > 0: URL-keyed
	// caches cannot see fragment invalidations, so time is all they
	// have.
	TTL time.Duration
	// MaxEntries bounds the cache (0 selects 1024).
	MaxEntries int
	// Clock overrides expiry time (tests).
	Clock clock.Clock
	// Transport overrides the origin transport.
	Transport http.RoundTripper
	// Registry receives pagecache.* metrics; optional.
	Registry *metrics.Registry
}

// Proxy is a URL-keyed full-page caching reverse proxy — the paper's
// flawed baseline, preserved as a measurable artifact.
type Proxy struct {
	cfg    Config
	cache  *Cache
	client *http.Client
	reg    *metrics.Registry
}

// New returns a page-level caching proxy.
func New(cfg Config) (*Proxy, error) {
	if cfg.OriginURL == "" {
		return nil, fmt.Errorf("pagecache: OriginURL is required")
	}
	if cfg.TTL <= 0 {
		return nil, fmt.Errorf("pagecache: TTL must be positive")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	transport := cfg.Transport
	if transport == nil {
		transport = &http.Transport{MaxIdleConnsPerHost: 64}
	}
	cache, err := NewCache(CacheConfig{MaxEntries: cfg.MaxEntries, Clock: cfg.Clock})
	if err != nil {
		return nil, err
	}
	return &Proxy{
		cfg:    cfg,
		cache:  cache,
		client: &http.Client{Transport: transport, Timeout: 30 * time.Second},
		reg:    reg,
	}, nil
}

// Registry returns the proxy's metrics registry.
func (p *Proxy) Registry() *metrics.Registry { return p.reg }

// Cache returns the underlying whole-page cache.
func (p *Proxy) Cache() *Cache { return p.cache }

// ServeHTTP implements http.Handler. The cache key is the request URI and
// nothing else — deliberately reproducing the baseline's flaw: user
// identity is invisible to the cache.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	key := r.URL.RequestURI()
	if body, ctype, ok := p.cache.Get(key); ok {
		p.reg.Counter("pagecache.hits").Inc()
		p.write(w, body, ctype, "HIT")
		return
	}
	p.reg.Counter("pagecache.misses").Inc()

	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, p.cfg.OriginURL+key, nil)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	// The page cache *does* forward the user header — the origin needs
	// it to build the page — but cannot key on it, which is exactly the
	// paper's point.
	for _, h := range []string{"X-User", "Cookie", "Accept"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	resp, err := p.client.Do(req)
	if err != nil {
		p.reg.Counter("pagecache.errors").Inc()
		http.Error(w, fmt.Sprintf("pagecache: %v", err), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		p.reg.Counter("pagecache.errors").Inc()
		http.Error(w, fmt.Sprintf("pagecache: %v", err), http.StatusBadGateway)
		return
	}
	if resp.StatusCode != http.StatusOK {
		w.WriteHeader(resp.StatusCode)
		_, _ = w.Write(body)
		return
	}
	ctype := resp.Header.Get("Content-Type")
	p.cache.Put(key, body, ctype, p.cfg.TTL)
	p.write(w, body, ctype, "MISS")
}

func (p *Proxy) write(w http.ResponseWriter, body []byte, ctype, state string) {
	if ctype == "" {
		ctype = "text/html; charset=utf-8"
	}
	w.Header().Set("Content-Type", ctype)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.Header().Set("X-Cache", state)
	w.Header().Set("Via", "dpcache-pagecache/1.0")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// Flush empties the cache (experiments use it between phases).
func (p *Proxy) Flush() { p.cache.Flush() }
