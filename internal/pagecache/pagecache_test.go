package pagecache

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dpcache/internal/clock"
	"dpcache/internal/fragstore"
	"dpcache/internal/fragstore/storetest"
)

// The page cache is a wrapper over the sharded keyed store — no private
// cache implementation. The fragment-store conformance suite must hold
// against its backing store, through the same adapter every keyed tier
// shares.
func TestPageCacheStoreConformance(t *testing.T) {
	storetest.Run(t, "pagecache", func(capacity int) (fragstore.FragmentStore, error) {
		c, err := NewCache(CacheConfig{MaxEntries: 1 << 20})
		if err != nil {
			return nil, err
		}
		return c.Store().AsFragmentStore(capacity)
	})
}

func TestCacheByteBudgetEvicts(t *testing.T) {
	c, err := NewCache(CacheConfig{ByteBudget: 1000, Eviction: "lru"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		c.Put(fmt.Sprintf("/p%d", i), make([]byte, 100), "text/html", time.Minute)
	}
	if got := c.Bytes(); got > 1000 {
		t.Fatalf("resident %d bytes, over the 1000 budget", got)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatal("no evictions under over-budget puts")
	}
}

func TestCacheRejectsBadEviction(t *testing.T) {
	if _, err := NewCache(CacheConfig{Eviction: "arc"}); err == nil {
		t.Fatal("unknown eviction policy accepted")
	}
}

func newOriginServer(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		user := r.Header.Get("X-User")
		if user == "" {
			fmt.Fprintf(w, "<html>anon page %s</html>", r.URL.RawQuery)
			return
		}
		fmt.Fprintf(w, "<html>Hello, %s! %s</html>", user, r.URL.RawQuery)
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func newProxy(t *testing.T, originURL string, ttl time.Duration, clk clock.Clock) *httptest.Server {
	t.Helper()
	p, err := New(Config{OriginURL: originURL, TTL: ttl, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p)
	t.Cleanup(ts.Close)
	return ts
}

func fetch(t *testing.T, url, user string) (string, string) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	if user != "" {
		req.Header.Set("X-User", user)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b), resp.Header.Get("X-Cache")
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{TTL: time.Second}); err == nil {
		t.Fatal("missing origin accepted")
	}
	if _, err := New(Config{OriginURL: "http://x"}); err == nil {
		t.Fatal("zero TTL accepted")
	}
}

func TestCachesByURL(t *testing.T) {
	origin, hits := newOriginServer(t)
	proxy := newProxy(t, origin.URL, time.Minute, nil)
	b1, s1 := fetch(t, proxy.URL+"/page?q=1", "")
	b2, s2 := fetch(t, proxy.URL+"/page?q=1", "")
	if s1 != "MISS" || s2 != "HIT" {
		t.Fatalf("states = %s, %s", s1, s2)
	}
	if b1 != b2 {
		t.Fatal("cached page differs")
	}
	if hits.Load() != 1 {
		t.Fatalf("origin hits = %d", hits.Load())
	}
}

func TestDistinctURLsDistinctEntries(t *testing.T) {
	origin, hits := newOriginServer(t)
	proxy := newProxy(t, origin.URL, time.Minute, nil)
	fetch(t, proxy.URL+"/page?q=1", "")
	fetch(t, proxy.URL+"/page?q=2", "")
	if hits.Load() != 2 {
		t.Fatalf("origin hits = %d", hits.Load())
	}
}

// The deliberate flaw, reproduced: Alice gets Bob's page.
func TestServesWrongPageAcrossUsers(t *testing.T) {
	origin, _ := newOriginServer(t)
	proxy := newProxy(t, origin.URL, time.Minute, nil)
	bob, _ := fetch(t, proxy.URL+"/page?q=1", "bob")
	if !strings.Contains(bob, "Hello, bob!") {
		t.Fatalf("bob page = %q", bob)
	}
	alice, state := fetch(t, proxy.URL+"/page?q=1", "") // anonymous, same URL
	if state != "HIT" {
		t.Fatalf("alice state = %s", state)
	}
	if !strings.Contains(alice, "Hello, bob!") {
		t.Fatalf("expected the baseline to serve Bob's page to Alice (that is its documented flaw); got %q", alice)
	}
}

func TestTTLExpiry(t *testing.T) {
	origin, hits := newOriginServer(t)
	fake := clock.NewFake(time.Unix(0, 0))
	proxy := newProxy(t, origin.URL, 30*time.Second, fake)
	fetch(t, proxy.URL+"/p", "")
	fake.Advance(31 * time.Second)
	_, state := fetch(t, proxy.URL+"/p", "")
	if state != "MISS" {
		t.Fatalf("state after expiry = %s", state)
	}
	if hits.Load() != 2 {
		t.Fatalf("origin hits = %d", hits.Load())
	}
}

func TestErrorsPassThroughUncached(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer ts.Close()
	proxy := newProxy(t, ts.URL, time.Minute, nil)
	resp, err := http.Get(proxy.URL + "/missing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	resp, _ = http.Get(proxy.URL + "/missing")
	resp.Body.Close()
	if resp.Header.Get("X-Cache") == "HIT" {
		t.Fatal("error response was cached")
	}
}

func TestFlush(t *testing.T) {
	origin, hits := newOriginServer(t)
	p, err := New(Config{OriginURL: origin.URL, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p)
	defer ts.Close()
	fetch(t, ts.URL+"/p", "")
	p.Flush()
	fetch(t, ts.URL+"/p", "")
	if hits.Load() != 2 {
		t.Fatalf("origin hits after flush = %d", hits.Load())
	}
}

func TestMetrics(t *testing.T) {
	origin, _ := newOriginServer(t)
	p, err := New(Config{OriginURL: origin.URL, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p)
	defer ts.Close()
	fetch(t, ts.URL+"/p", "")
	fetch(t, ts.URL+"/p", "")
	if p.Registry().Counter("pagecache.hits").Value() != 1 ||
		p.Registry().Counter("pagecache.misses").Value() != 1 {
		t.Fatal("hit/miss accounting wrong")
	}
}

// Tagged entries carry their entity tag alongside the content type; the
// untagged API must keep working and never leak the separator.
func TestCacheTaggedEntries(t *testing.T) {
	c, err := NewCache(CacheConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c.PutTagged("/p", []byte("body"), "text/html", `"abc123"`, time.Minute)
	body, ctype, etag, ok := c.GetTagged("/p")
	if !ok || string(body) != "body" || ctype != "text/html" || etag != `"abc123"` {
		t.Fatalf("GetTagged = %q, %q, %q, %v", body, ctype, etag, ok)
	}
	if _, ctype, ok := c.Get("/p"); !ok || ctype != "text/html" {
		t.Fatalf("untagged Get on a tagged entry: ctype = %q, ok = %v", ctype, ok)
	}
	c.Put("/q", []byte("other"), "text/plain", time.Minute)
	if _, _, etag, _ := c.GetTagged("/q"); etag != "" {
		t.Fatalf("untagged Put produced etag %q", etag)
	}
}

// Deleting a key removes only that entry; DeleteFunc drops by predicate.
func TestCacheDelete(t *testing.T) {
	c, err := NewCache(CacheConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c.Put("GET\x00/a\x00fr", []byte("x"), "", time.Minute)
	c.Put("GET\x00/a\x00en", []byte("x"), "", time.Minute)
	c.Put("GET\x00/b\x00", []byte("x"), "", time.Minute)
	if !c.Delete("GET\x00/b\x00") || c.Delete("GET\x00/b\x00") {
		t.Fatal("Delete did not report residency correctly")
	}
	n := c.DeleteFunc(func(k string) bool { return strings.HasPrefix(k, "GET\x00/a\x00") })
	if n != 2 || c.Len() != 0 {
		t.Fatalf("DeleteFunc dropped %d, %d resident", n, c.Len())
	}
}

// Capture reservations count against the page tier's budget: a burst of
// in-flight captures must evict resident pages rather than let
// resident + in-flight exceed the ledger.
func TestCacheReserveCapture(t *testing.T) {
	c, err := NewCache(CacheConfig{ByteBudget: 1024})
	if err != nil {
		t.Fatal(err)
	}
	c.Put("/hot", make([]byte, 800), "", time.Minute)
	c.ReserveCapture(800)
	if c.Len() != 0 {
		t.Fatalf("resident = %d under capture pressure, want 0", c.Len())
	}
	c.ReserveCapture(-800)
	c.Put("/hot", make([]byte, 800), "", time.Minute)
	if c.Len() != 1 {
		t.Fatal("release did not restore headroom")
	}
}
