package fragstore

import (
	"container/heap"
	"container/list"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// DefaultShards is the shard count used when ShardedConfig.Shards is zero.
const DefaultShards = 16

// maxShards bounds the shard count (beyond this, per-shard fixed overhead
// dominates any contention win).
const maxShards = 1024

// ShardedConfig parameterizes a Sharded store.
type ShardedConfig struct {
	// Capacity is the key-space size shared with the BEM. Required.
	Capacity int
	// Shards is rounded up to a power of two; 0 selects DefaultShards.
	Shards int
	// ByteBudget bounds total resident content bytes (0 = unbounded).
	// The budget is a single global ledger shared by every shard — not a
	// per-shard partition — so a skewed key distribution can fill one
	// shard with the entire budget without triggering eviction while the
	// store as a whole still has headroom. Requires Policy != PolicyNone.
	ByteBudget int64
	// Policy selects the eviction strategy applied when the store
	// exceeds its global byte budget.
	Policy Policy
}

// Sharded is a fragment store split into power-of-two shards: key k lives
// in shard k&mask at local index k>>shardBits, so like the paper's slot
// array it is still array-indexed — only the lock is per shard. SETs
// against different shards never contend, which is what lets it match or
// beat the single-lock SlotStore under parallel load. An optional byte
// budget bounds total resident content with LRU or GDSF eviction, giving
// the DPC a capacity model the freeList-governed slot array cannot
// express (bound resident bytes, not slot count). The budget is accounted
// on one global atomic ledger shared by all shards (see ledger); eviction
// fires only under global pressure, preferring victims from the shard
// being written and sweeping the others when it runs dry.
type Sharded struct {
	shards    []shard
	mask      uint32
	shardBits uint32
	capacity  int
	cfg       ShardedConfig
	led       ledger
}

type shard struct {
	mu       sync.RWMutex
	slots    []entry // local index = key >> shardBits
	bytes    int64
	resident int
	led      *ledger // the store's global byte ledger
	policy   Policy

	// LRU state: front = most recent; values are *entry.
	lru *list.List
	// GDSF state: min-heap by priority plus the aging term L, raised to
	// the priority of each evicted entry so long-resident entries decay
	// relative to fresh ones.
	heap      gdsfHeap
	inflation float64

	evictions    int64
	evictedBytes int64

	// Op counters are atomic so PolicyNone GETs stay read-locked.
	sets, hits, misses, drops atomic.Int64

	_ [24]byte // keep neighboring shards' hot fields off one cache line
}

type entry struct {
	key  uint32
	gen  uint32
	set  bool
	data []byte

	elem *list.Element // LRU handle (nil unless resident under PolicyLRU)
	freq int64         // GDSF access count
	prio float64       // GDSF priority
	hidx int           // GDSF heap index
}

// validate checks the configuration without allocating the store.
func (cfg ShardedConfig) validate() error {
	if cfg.Capacity <= 0 {
		return fmt.Errorf("fragstore: store capacity must be positive, got %d", cfg.Capacity)
	}
	if cfg.ByteBudget < 0 {
		return fmt.Errorf("fragstore: negative byte budget %d", cfg.ByteBudget)
	}
	if cfg.ByteBudget > 0 && cfg.Policy == PolicyNone {
		return fmt.Errorf("fragstore: a byte budget requires an eviction policy (lru or gdsf)")
	}
	return nil
}

// NewSharded returns a sharded store.
func NewSharded(cfg ShardedConfig) (*Sharded, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Shards
	if n <= 0 {
		n = DefaultShards
	}
	if n > maxShards {
		n = maxShards
	}
	n = nextPow2(n)
	s := &Sharded{
		shards:    make([]shard, n),
		mask:      uint32(n - 1),
		shardBits: uint32(bits.TrailingZeros(uint(n))),
		capacity:  cfg.Capacity,
		cfg:       cfg,
		led:       ledger{budget: cfg.ByteBudget},
	}
	perShardSlots := (cfg.Capacity + n - 1) / n
	for i := range s.shards {
		sh := &s.shards[i]
		sh.slots = make([]entry, perShardSlots)
		sh.led = &s.led
		sh.policy = cfg.Policy
		if cfg.Policy == PolicyLRU {
			sh.lru = list.New()
		}
	}
	return s, nil
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Shards returns the actual (power-of-two) shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// BudgetUsed returns the global ledger's current reservation — the byte
// count budget enforcement is driven by. It equals Bytes() whenever the
// store is quiescent; mid-write the two may transiently differ by in-flight
// reservations.
func (s *Sharded) BudgetUsed() int64 { return s.led.Used() }

// Capacity returns the key-space size.
func (s *Sharded) Capacity() int { return s.capacity }

// locate returns the shard and entry owning key (key must be < capacity).
func (s *Sharded) locate(key uint32) (*shard, *entry) {
	sh := &s.shards[key&s.mask]
	return sh, &sh.slots[key>>s.shardBits]
}

// Set stores content under key; see FragmentStore.Set. When the write
// pushes the store over its global byte budget the policy evicts
// coldest-first — from this shard while it has residents (the incoming
// entry itself is evictable, matching the "don't admit what you'd
// immediately evict" behavior of size-aware caches), then sweeping the
// other shards if global pressure persists after this one runs dry.
func (s *Sharded) Set(key, gen uint32, content []byte) error {
	if int64(key) >= int64(s.capacity) {
		return fmt.Errorf("fragstore: key %d outside store capacity %d", key, s.capacity)
	}
	if s.led.budget > 0 && int64(len(content)) > s.led.budget {
		// Content larger than the entire budget can never fit: refuse
		// admission (counted as an eviction of the refused bytes) rather
		// than flushing every shard in a futile attempt to make room. An
		// overwritten slot must not keep its stale content either.
		sh, e := s.locate(key)
		sh.sets.Add(1)
		sh.mu.Lock()
		if e.set {
			sh.remove(e)
		}
		sh.evictions++
		sh.evictedBytes += int64(len(content))
		sh.mu.Unlock()
		return nil
	}
	cp := make([]byte, len(content))
	copy(cp, content)
	sh, e := s.locate(key)
	sh.sets.Add(1)
	sh.mu.Lock()
	if e.set {
		delta := int64(len(cp)) - int64(len(e.data))
		sh.bytes += delta
		sh.led.reserve(delta)
		e.data = cp
		e.gen = gen
		sh.touch(e)
	} else {
		e.key = key
		e.gen = gen
		e.data = cp
		e.set = true
		sh.bytes += int64(len(cp))
		sh.led.reserve(int64(len(cp)))
		sh.resident++
		sh.admit(e)
	}
	for sh.policy != PolicyNone && sh.led.overBudget() && sh.resident > 1 {
		sh.evictOne()
	}
	sh.mu.Unlock()
	if s.led.overBudget() {
		s.evictSweep(sh)
	}
	return nil
}

// evictSweep relieves global budget pressure the writing shard could not:
// round-robin the *other* shards, evicting each one's coldest entry, until
// the ledger fits or they are empty. Reached when the overflow bytes live
// in shards other than the one just written — the inverse of the skew the
// global ledger exists to tolerate. Only if every other shard runs dry is
// the writer's shard (down to, and including, the entry just admitted)
// asked to give the bytes back — the "don't admit what you'd immediately
// evict" behavior of size-aware caches, reserved for a store that is
// otherwise empty.
func (s *Sharded) evictSweep(writer *shard) {
	for s.led.overBudget() {
		evicted := false
		for i := range s.shards {
			if !s.led.overBudget() {
				return
			}
			sh := &s.shards[i]
			if sh == writer {
				continue
			}
			sh.mu.Lock()
			if sh.resident > 0 && sh.policy != PolicyNone {
				sh.evictOne()
				evicted = true
			}
			sh.mu.Unlock()
		}
		if !evicted {
			break
		}
	}
	if writer == nil {
		return
	}
	writer.mu.Lock()
	for writer.policy != PolicyNone && s.led.overBudget() && writer.resident > 0 {
		writer.evictOne()
	}
	writer.mu.Unlock()
}

// Get returns the content under key; see FragmentStore.Get for strict.
// Hits refresh the entry's recency (LRU) or frequency (GDSF); with
// PolicyNone reads take only the shard's read lock.
func (s *Sharded) Get(key, gen uint32, strict bool) ([]byte, bool) {
	if int64(key) >= int64(s.capacity) {
		s.shards[key&s.mask].misses.Add(1)
		return nil, false
	}
	sh, e := s.locate(key)
	if sh.policy == PolicyNone {
		sh.mu.RLock()
		if !e.set || (strict && e.gen != gen) {
			sh.mu.RUnlock()
			sh.misses.Add(1)
			return nil, false
		}
		data := e.data
		sh.mu.RUnlock()
		sh.hits.Add(1)
		return data, true
	}
	sh.mu.Lock()
	if !e.set || (strict && e.gen != gen) {
		sh.mu.Unlock()
		sh.misses.Add(1)
		return nil, false
	}
	sh.touch(e)
	data := e.data
	sh.mu.Unlock()
	sh.hits.Add(1)
	return data, true
}

// Drop removes the entry under key.
func (s *Sharded) Drop(key uint32) {
	if int64(key) >= int64(s.capacity) {
		return
	}
	sh, e := s.locate(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !e.set {
		return
	}
	sh.remove(e)
	sh.drops.Add(1)
}

// DropAll removes every resident entry.
func (s *Sharded) DropAll() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.drops.Add(int64(sh.resident))
		for j := range sh.slots {
			sh.slots[j] = entry{}
		}
		sh.led.release(sh.bytes)
		sh.bytes = 0
		sh.resident = 0
		if sh.lru != nil {
			sh.lru.Init()
		}
		sh.heap = sh.heap[:0]
		sh.mu.Unlock()
	}
}

// Bytes returns the total resident content bytes across shards.
func (s *Sharded) Bytes() int64 {
	var n int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += sh.bytes
		sh.mu.RUnlock()
	}
	return n
}

// Resident returns the number of resident entries across shards.
func (s *Sharded) Resident() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += sh.resident
		sh.mu.RUnlock()
	}
	return n
}

// Stats implements FragmentStore.
func (s *Sharded) Stats() Stats {
	st := Stats{
		Backend:    BackendSharded,
		Shards:     len(s.shards),
		Capacity:   s.capacity,
		ByteBudget: s.cfg.ByteBudget,
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		st.Resident += sh.resident
		st.Bytes += sh.bytes
		st.Evictions += sh.evictions
		st.EvictedBytes += sh.evictedBytes
		sh.mu.RUnlock()
		st.Sets += sh.sets.Load()
		st.Hits += sh.hits.Load()
		st.Misses += sh.misses.Load()
		st.Drops += sh.drops.Load()
	}
	return st
}

// --- per-shard policy plumbing (shard.mu held throughout) ---

// admit registers a newly resident entry with the eviction policy.
func (sh *shard) admit(e *entry) {
	switch sh.policy {
	case PolicyLRU:
		e.elem = sh.lru.PushFront(e)
	case PolicyGDSF:
		e.freq = 1
		e.prio = sh.inflation + gdsfValue(e)
		heap.Push(&sh.heap, e)
	}
}

// touch refreshes an entry on access (a hit, or a SET overwrite — which
// may also have resized e.data, so the GDSF priority is recomputed).
func (sh *shard) touch(e *entry) {
	switch sh.policy {
	case PolicyLRU:
		sh.lru.MoveToFront(e.elem)
	case PolicyGDSF:
		e.freq++
		e.prio = sh.inflation + gdsfValue(e)
		heap.Fix(&sh.heap, e.hidx)
	}
}

// remove clears a resident entry and detaches it from policy structures.
func (sh *shard) remove(e *entry) {
	sh.bytes -= int64(len(e.data))
	sh.led.release(int64(len(e.data)))
	sh.resident--
	switch sh.policy {
	case PolicyLRU:
		sh.lru.Remove(e.elem)
	case PolicyGDSF:
		heap.Remove(&sh.heap, e.hidx)
	}
	*e = entry{}
}

// evictOne removes the policy's coldest entry.
func (sh *shard) evictOne() {
	var victim *entry
	switch sh.policy {
	case PolicyLRU:
		victim = sh.lru.Back().Value.(*entry)
	case PolicyGDSF:
		victim = sh.heap[0]
		// Age the shard: future priorities start from the evicted
		// entry's, so stale-but-once-hot entries eventually lose to
		// fresh ones. This is the "L" term of GDSF.
		sh.inflation = victim.prio
	default:
		return
	}
	size := int64(len(victim.data))
	sh.remove(victim)
	sh.evictions++
	sh.evictedBytes += size
}

// gdsfValue is the unaged GDSF priority term frequency·cost/size with unit
// cost: keeping a fragment is worth more the hotter and smaller it is.
func gdsfValue(e *entry) float64 {
	size := len(e.data)
	if size < 1 {
		size = 1
	}
	return float64(e.freq) / float64(size)
}

// gdsfHeap is a min-heap of entries by priority.
type gdsfHeap []*entry

func (h gdsfHeap) Len() int           { return len(h) }
func (h gdsfHeap) Less(i, j int) bool { return h[i].prio < h[j].prio }
func (h gdsfHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].hidx = i; h[j].hidx = j }
func (h *gdsfHeap) Push(x any)        { e := x.(*entry); e.hidx = len(*h); *h = append(*h, e) }
func (h *gdsfHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
