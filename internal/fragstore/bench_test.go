// Benchmarks comparing the fragment-store backends under parallel load.
// Run:
//
//	go test ./internal/fragstore -bench=. -benchmem -cpu=1,4,8
//
// The headline comparison is BenchmarkStoreParallel: the sharded store
// must match or beat the slot store as parallelism grows, since that is
// the reason it exists.
package fragstore_test

import (
	"sync/atomic"
	"testing"

	"dpcache/internal/fragstore"
)

const (
	benchCapacity = 4096
	benchPayload  = 512 // typical fragment size (Table 2's order of magnitude)
)

// benchBackends enumerates every selectable backend configuration.
func benchBackends(b *testing.B) map[string]func() fragstore.FragmentStore {
	b.Helper()
	mk := func(cfg fragstore.ShardedConfig) func() fragstore.FragmentStore {
		return func() fragstore.FragmentStore {
			s, err := fragstore.NewSharded(cfg)
			if err != nil {
				b.Fatal(err)
			}
			return s
		}
	}
	return map[string]func() fragstore.FragmentStore{
		"slot": func() fragstore.FragmentStore {
			s, err := fragstore.NewSlotStore(benchCapacity)
			if err != nil {
				b.Fatal(err)
			}
			return s
		},
		"sharded":      mk(fragstore.ShardedConfig{Capacity: benchCapacity}),
		"sharded-lru":  mk(fragstore.ShardedConfig{Capacity: benchCapacity, ByteBudget: benchCapacity * benchPayload, Policy: fragstore.PolicyLRU}),
		"sharded-gdsf": mk(fragstore.ShardedConfig{Capacity: benchCapacity, ByteBudget: benchCapacity * benchPayload, Policy: fragstore.PolicyGDSF}),
	}
}

func fill(s fragstore.FragmentStore, payload []byte) {
	for k := uint32(0); k < benchCapacity; k++ {
		_ = s.Set(k, 1, payload)
	}
}

// BenchmarkStoreParallel is the assembly-path mix: ~90% GETs, 10% SETs
// (the paper's steady state, where most templates reference warm slots),
// issued from all procs at once via b.RunParallel.
func BenchmarkStoreParallel(b *testing.B) {
	payload := make([]byte, benchPayload)
	for name, mkStore := range benchBackends(b) {
		b.Run(name, func(b *testing.B) {
			s := mkStore()
			fill(s, payload)
			var seq atomic.Uint32
			b.SetBytes(benchPayload)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := seq.Add(1) * 2654435761 // decorrelate goroutine key streams
				for pb.Next() {
					i++
					k := i % benchCapacity
					if i%10 == 0 {
						_ = s.Set(k, 1, payload)
					} else {
						s.Get(k, 1, true)
					}
				}
			})
		})
	}
}

// BenchmarkStoreParallelGet is the pure read path: every proc hammering
// warm slots, the best case for the slot store's RWMutex.
func BenchmarkStoreParallelGet(b *testing.B) {
	payload := make([]byte, benchPayload)
	for name, mkStore := range benchBackends(b) {
		b.Run(name, func(b *testing.B) {
			s := mkStore()
			fill(s, payload)
			var seq atomic.Uint32
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := seq.Add(1) * 2654435761
				for pb.Next() {
					i++
					s.Get(i%benchCapacity, 1, true)
				}
			})
		})
	}
}

// BenchmarkStoreParallelSet is the write-storm path (cold cache warmup or
// invalidation recovery): all procs SETting, where the single write lock
// fully serializes the slot store.
func BenchmarkStoreParallelSet(b *testing.B) {
	payload := make([]byte, benchPayload)
	for name, mkStore := range benchBackends(b) {
		b.Run(name, func(b *testing.B) {
			s := mkStore()
			var seq atomic.Uint32
			b.SetBytes(benchPayload)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := seq.Add(1) * 2654435761
				for pb.Next() {
					i++
					_ = s.Set(i%benchCapacity, 1, payload)
				}
			})
		})
	}
}

// BenchmarkStoreGlobalBudget measures the cost of the global byte-budget
// ledger under parallel writes: every SET reserves against one shared
// atomic and the store hovers at its budget, so this is the worst case for
// ledger contention (plus steady single-entry evictions). Compare with
// BenchmarkStoreParallelSet (unbudgeted) to read the ledger overhead.
func BenchmarkStoreGlobalBudget(b *testing.B) {
	payload := make([]byte, benchPayload)
	for _, pol := range []fragstore.Policy{fragstore.PolicyLRU, fragstore.PolicyGDSF} {
		b.Run(pol.String(), func(b *testing.B) {
			s, err := fragstore.NewSharded(fragstore.ShardedConfig{
				Capacity: benchCapacity,
				// Half the working set fits: the ledger sits at its limit
				// and every SET of a cold key evicts exactly one victim.
				ByteBudget: benchCapacity * benchPayload / 2,
				Policy:     pol,
			})
			if err != nil {
				b.Fatal(err)
			}
			var seq atomic.Uint32
			b.SetBytes(benchPayload)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := seq.Add(1) * 2654435761
				for pb.Next() {
					i++
					_ = s.Set(i%benchCapacity, 1, payload)
				}
			})
			if used, bytes := s.BudgetUsed(), s.Bytes(); used != bytes {
				b.Fatalf("ledger (%d) disagrees with shard accounting (%d)", used, bytes)
			}
		})
	}
}

// BenchmarkStoreEvictionChurn drives the byte-budgeted configurations
// permanently over budget so every SET evicts: the policy bookkeeping
// cost, isolated.
func BenchmarkStoreEvictionChurn(b *testing.B) {
	payload := make([]byte, benchPayload)
	for _, pol := range []fragstore.Policy{fragstore.PolicyLRU, fragstore.PolicyGDSF} {
		b.Run(pol.String(), func(b *testing.B) {
			s, err := fragstore.NewSharded(fragstore.ShardedConfig{
				Capacity: benchCapacity,
				// A quarter of the working set fits, so churn is constant.
				ByteBudget: benchCapacity * benchPayload / 4,
				Policy:     pol,
			})
			if err != nil {
				b.Fatal(err)
			}
			var seq atomic.Uint32
			b.SetBytes(benchPayload)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := seq.Add(1) * 2654435761
				for pb.Next() {
					i++
					k := i % benchCapacity
					if i%4 == 0 {
						_ = s.Set(k, 1, payload)
					} else {
						s.Get(k, 1, true)
					}
				}
			})
		})
	}
}
