// Benchmarks for the tiered store's headline claim: a disk hit must be
// an order of magnitude cheaper than the origin round-trip it replaces.
// Run:
//
//	go test ./internal/fragstore -bench BenchmarkTieredStore -benchmem
package fragstore_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"dpcache/internal/diskstore"
	"dpcache/internal/fragstore"
)

const tieredBenchPayload = 4 << 10 // 4 KiB, a typical page fragment

func newBenchTiered(b *testing.B, ramBudget int64) *fragstore.TieredKeyed {
	b.Helper()
	ts, err := fragstore.NewTieredKeyed(fragstore.TieredConfig{
		RAM:  fragstore.KeyedConfig{ByteBudget: ramBudget},
		Disk: diskstore.Config{Path: filepath.Join(b.TempDir(), "bench.heap")},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ts.Close() })
	return ts
}

// BenchmarkTieredStore measures the tier costs side by side:
//
//   - RAMHitGet: the unchanged fast path (baseline).
//   - DiskHitGet: a Get answered by the heap file through the buffer
//     pool — the cost of serving a disk-resident entry.
//   - PromoteCycleGet: the fully-thrashing variant where every Get also
//     pays a promotion and the displaced victim's demotion write-back.
//   - DemotePut: a Put whose RAM eviction demotes a victim to disk.
//   - OriginRoundTrip: fetching the same payload from a local HTTP
//     origin — the cost a disk hit avoids. The tentpole's acceptance
//     bar is DiskHitGet >= 10x faster than this, and the origin here is
//     loopback with zero think time, the cheapest origin there is.
func BenchmarkTieredStore(b *testing.B) {
	payload := make([]byte, tieredBenchPayload)
	for i := range payload {
		payload[i] = byte(i)
	}

	b.Run("RAMHitGet", func(b *testing.B) {
		ts := newBenchTiered(b, 0) // unbounded RAM: everything stays hot
		ts.Put("hot", fragstore.KeyedEntry{Value: payload}, 0)
		b.SetBytes(tieredBenchPayload)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := ts.Get("hot"); !ok {
				b.Fatal("lost hot entry")
			}
		}
	})

	b.Run("DiskHitGet", func(b *testing.B) {
		// A RAM budget smaller than the payload keeps the entry
		// disk-resident (promotion is refused, nothing is displaced), so
		// every Get measures the pure second-tier read: index lookup,
		// buffer-pool pin, segment copy.
		ts := newBenchTiered(b, tieredBenchPayload/2)
		ts.Put("cold", fragstore.KeyedEntry{Value: payload}, 0)
		b.SetBytes(tieredBenchPayload)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := ts.Get("cold"); !ok {
				b.Fatal("disk-resident entry lost")
			}
		}
		b.StopTimer()
		if st := ts.TierStats(); st.DiskHits < int64(b.N) || st.Promotions != 0 {
			b.Fatalf("benchmark did not stay on the disk tier: %+v", st)
		}
	})

	b.Run("PromoteCycleGet", func(b *testing.B) {
		// RAM holds exactly one payload, so alternating two keys makes
		// every Get a disk hit that promotes and displaces — the
		// worst-case (fully thrashing) second-tier read.
		ts := newBenchTiered(b, tieredBenchPayload)
		ts.Put("a", fragstore.KeyedEntry{Value: payload}, 0)
		ts.Put("b", fragstore.KeyedEntry{Value: payload}, 0) // a → disk
		b.SetBytes(tieredBenchPayload)
		b.ResetTimer()
		keys := [2]string{"a", "b"}
		for i := 0; i < b.N; i++ {
			if _, ok := ts.Get(keys[i%2]); !ok {
				b.Fatal("entry lost across tiers")
			}
		}
		b.StopTimer()
		if st := ts.TierStats(); st.DiskHits < int64(b.N/2) {
			b.Fatalf("benchmark did not exercise the disk tier: %+v", st)
		}
	})

	b.Run("DemotePut", func(b *testing.B) {
		ts := newBenchTiered(b, tieredBenchPayload)
		b.SetBytes(tieredBenchPayload)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Every Put displaces the previous key into the disk tier.
			ts.Put(fmt.Sprintf("k%d", i%512), fragstore.KeyedEntry{Value: payload}, 0)
		}
	})

	b.Run("OriginRoundTrip", func(b *testing.B) {
		origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write(payload)
		}))
		defer origin.Close()
		client := origin.Client()
		b.SetBytes(tieredBenchPayload)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := client.Get(origin.URL)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
		}
	})
}
