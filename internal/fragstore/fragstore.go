// Package fragstore defines the Dynamic Proxy Cache's fragment-memory
// contract and provides swappable backends behind it.
//
// The paper's Section 4.3.3 store is "an in-memory array of pointers to
// cached fragments, where the DpcKey serves as the array index", guarded in
// the seed implementation by a single RWMutex. That design is faithful but
// caps concurrency (every SET serializes on one lock) and supports exactly
// one capacity model (slot count, no byte bound). This package splits the
// contract from the implementation so the proxy, assembler, and coherency
// subscribers can run against either:
//
//   - SlotStore: the paper-faithful single-lock slot array, extracted
//     unchanged in behavior from internal/dpc.
//   - Sharded: a power-of-two-sharded store with per-shard locks, an
//     optional byte budget, and pluggable eviction (LRU or cost-aware
//     GDSF) for deployments where fragment bytes — not the BEM freeList —
//     are the binding resource.
//
// The package is also the storage engine for every URL-keyed cache tier
// in the system: KeyedStore generalizes the sharded design to string
// keys with per-entry TTLs and an entry-count bound, and the DPC's
// static cache and the whole-page cache are thin wrappers over it.
//
// Eviction ownership: each store owns its own eviction entirely —
// callers never evict. Byte budgets are enforced on a single global
// atomic ledger per store (see ledger), not per-shard partitions: shards
// reserve resident bytes against the ledger on write and release on
// removal, and eviction fires only when the store as a whole is over
// budget. The ledger therefore guarantees (1) a skewed key distribution
// can fill one shard with the entire budget without early eviction, and
// (2) at quiescence the store never settles above its budget.
//
// All backends — slot, sharded, and keyed (through its AsFragmentStore
// adapter) — satisfy the same conformance suite (see storetest).
package fragstore

import (
	"fmt"
	"strings"

	"dpcache/internal/diskstore"
	"dpcache/internal/metrics"
)

// FragmentStore is the fragment memory contract shared by the assembler
// (SET/GET instructions), the proxy (stats), and the coherency extension
// (Drop/DropAll). Implementations must be safe for concurrent use.
//
// Content returned by Get is shared with the store; callers must not
// modify it. Set copies its input.
type FragmentStore interface {
	// Set stores content under key, stamping it with the generation from
	// the SET tag. Keys at or beyond Capacity are rejected with an error.
	Set(key, gen uint32, content []byte) error
	// Get returns the content stored under key. When strict is true the
	// stored generation must equal gen (a mismatch means the slot was
	// reassigned after the template referencing it was produced); when
	// false any resident entry matches — the paper's original fast path.
	Get(key, gen uint32, strict bool) ([]byte, bool)
	// Drop removes the entry under key immediately (coherency
	// invalidation) rather than waiting for slot reuse. Unknown and
	// out-of-range keys are no-ops.
	Drop(key uint32)
	// DropAll removes every resident entry (the coherency subscriber's
	// gap-detection full flush).
	DropAll()
	// Capacity returns the key-space size (the BEM's slot count).
	Capacity() int
	// Bytes returns the total content bytes currently resident.
	Bytes() int64
	// Resident returns the number of resident entries.
	Resident() int
	// Stats returns a point-in-time snapshot of store activity.
	Stats() Stats
}

// Stats is a point-in-time snapshot of a store's occupancy and activity.
type Stats struct {
	// Backend names the implementation ("slot", "sharded").
	Backend string `json:"backend"`
	// Shards is the shard count (1 for the slot store).
	Shards int `json:"shards"`
	// Capacity is the key-space size.
	Capacity int `json:"capacity"`
	// Resident is the number of entries currently stored.
	Resident int `json:"resident"`
	// Bytes is the total resident content size.
	Bytes int64 `json:"bytes"`
	// ByteBudget is the configured byte bound (0 = unbounded).
	ByteBudget int64 `json:"byte_budget"`
	// Sets, Hits, Misses, Drops count store operations since creation.
	Sets   int64 `json:"sets"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Drops  int64 `json:"drops"`
	// Evictions counts entries removed by the eviction policy (not by
	// Drop), and EvictedBytes their cumulative size.
	Evictions    int64 `json:"evictions"`
	EvictedBytes int64 `json:"evicted_bytes"`
}

// Publish copies a stats snapshot into registry gauges under prefix
// (e.g. "dpc.store"), so store occupancy and eviction activity appear in
// metrics snapshots alongside the proxy's counters.
func Publish(reg *metrics.Registry, prefix string, st Stats) {
	if reg == nil {
		return
	}
	reg.Gauge(prefix + ".capacity").Set(int64(st.Capacity))
	reg.Gauge(prefix + ".resident").Set(int64(st.Resident))
	reg.Gauge(prefix + ".bytes").Set(st.Bytes)
	reg.Gauge(prefix + ".byte_budget").Set(st.ByteBudget)
	reg.Gauge(prefix + ".shards").Set(int64(st.Shards))
	reg.Gauge(prefix + ".sets").Set(st.Sets)
	reg.Gauge(prefix + ".hits").Set(st.Hits)
	reg.Gauge(prefix + ".misses").Set(st.Misses)
	reg.Gauge(prefix + ".drops").Set(st.Drops)
	reg.Gauge(prefix + ".evictions").Set(st.Evictions)
	reg.Gauge(prefix + ".evicted_bytes").Set(st.EvictedBytes)
}

// Backend names.
const (
	// BackendSlot is the paper-faithful single-lock slot array.
	BackendSlot = "slot"
	// BackendSharded is the sharded, byte-budgeted store.
	BackendSharded = "sharded"
	// BackendTiered is the two-tier store: a keyed RAM tier demoting
	// evictions into a disk-backed heap file that replays on restart.
	BackendTiered = "tiered"
)

// Config selects and parameterizes a backend from plain values, the shape
// carried by core.Config and command-line flags.
type Config struct {
	// Backend is "slot" (default) or "sharded".
	Backend string
	// Capacity is the key-space size shared with the BEM. Required.
	Capacity int
	// Shards is the sharded backend's shard count, rounded up to a power
	// of two (0 selects DefaultShards). The slot backend rejects a
	// non-zero value.
	Shards int
	// ByteBudget bounds resident content bytes in the sharded backend
	// (0 = unbounded). The budget is one global ledger shared by every
	// shard, so eviction fires only when the store as a whole is over —
	// never because one shard's key slice is popular. Requires an
	// eviction policy. The slot backend rejects a non-zero value.
	ByteBudget int64
	// Eviction is "none" (default), "lru", or "gdsf". The slot backend
	// rejects any other value.
	Eviction string
	// DiskPath is the tiered backend's heap-file path, created on first
	// open and replayed on restart. Required for (and only valid with)
	// the tiered backend.
	DiskPath string
	// DiskBudget bounds the tiered backend's disk-resident bytes (0 =
	// unbounded); over-budget writes drop the disk tier's LRU victims.
	DiskBudget int64
	// DiskPageBytes is the heap file's page size (0 = diskstore
	// default). Changing it across restarts invalidates the file.
	DiskPageBytes int
}

// Validate reports whether the configuration selects a buildable backend,
// without allocating one (NewSystem-style fail-fast checks).
func (c Config) Validate() error {
	if c.Backend != BackendTiered && (c.DiskPath != "" || c.DiskBudget != 0 || c.DiskPageBytes != 0) {
		return fmt.Errorf("fragstore: disk options require the %q backend (got backend=%q)", BackendTiered, c.Backend)
	}
	switch c.Backend {
	case "", BackendSlot:
		if c.Capacity <= 0 {
			return fmt.Errorf("fragstore: store capacity must be positive, got %d", c.Capacity)
		}
		if c.ByteBudget != 0 || c.Shards != 0 || (c.Eviction != "" && c.Eviction != "none") {
			return fmt.Errorf("fragstore: slot backend supports neither sharding, byte budgets, nor eviction (got shards=%d budget=%d eviction=%q)",
				c.Shards, c.ByteBudget, c.Eviction)
		}
		return nil
	case BackendSharded:
		pol, err := ParsePolicy(c.Eviction)
		if err != nil {
			return err
		}
		return ShardedConfig{
			Capacity:   c.Capacity,
			Shards:     c.Shards,
			ByteBudget: c.ByteBudget,
			Policy:     pol,
		}.validate()
	case BackendTiered:
		if c.Capacity <= 0 {
			return fmt.Errorf("fragstore: store capacity must be positive, got %d", c.Capacity)
		}
		if _, err := ParsePolicy(c.Eviction); err != nil {
			return err
		}
		return diskstore.Config{
			Path:       c.DiskPath,
			ByteBudget: c.DiskBudget,
			PageBytes:  c.DiskPageBytes,
		}.Validate()
	default:
		return fmt.Errorf("fragstore: unknown backend %q (want %q, %q, or %q)", c.Backend, BackendSlot, BackendSharded, BackendTiered)
	}
}

// New builds the configured backend.
func New(cfg Config) (FragmentStore, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Backend {
	case BackendSharded:
		pol, _ := ParsePolicy(cfg.Eviction) // validated above
		return NewSharded(ShardedConfig{
			Capacity:   cfg.Capacity,
			Shards:     cfg.Shards,
			ByteBudget: cfg.ByteBudget,
			Policy:     pol,
		})
	case BackendTiered:
		pol, _ := ParsePolicy(cfg.Eviction) // validated above
		t, err := NewTieredKeyed(TieredConfig{
			RAM: KeyedConfig{
				Shards:     cfg.Shards,
				ByteBudget: cfg.ByteBudget,
				Policy:     pol,
			},
			Disk: diskstore.Config{
				Path:       cfg.DiskPath,
				ByteBudget: cfg.DiskBudget,
				PageBytes:  cfg.DiskPageBytes,
			},
		})
		if err != nil {
			return nil, err
		}
		return t.AsFragmentStore(cfg.Capacity)
	}
	return NewSlotStore(cfg.Capacity)
}

// Policy selects the sharded store's eviction strategy.
type Policy int

// Eviction policies.
const (
	// PolicyNone performs no eviction: entries are replaced only by slot
	// reuse, the paper's freeList discipline. Incompatible with a byte
	// budget.
	PolicyNone Policy = iota
	// PolicyLRU evicts the least-recently-used entry when the shard
	// exceeds its byte budget.
	PolicyLRU
	// PolicyGDSF evicts by Greedy-Dual-Size-Frequency priority
	// (frequency/size with aging), preferring to keep small, hot
	// fragments when the byte budget is tight.
	PolicyGDSF
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyLRU:
		return "lru"
	case PolicyGDSF:
		return "gdsf"
	default:
		return "none"
	}
}

// ParsePolicy maps a policy name ("", "none", "lru", "gdsf") to a Policy.
func ParsePolicy(name string) (Policy, error) {
	switch strings.ToLower(name) {
	case "", "none":
		return PolicyNone, nil
	case "lru":
		return PolicyLRU, nil
	case "gdsf":
		return PolicyGDSF, nil
	default:
		return PolicyNone, fmt.Errorf("fragstore: unknown eviction policy %q (want none, lru, or gdsf)", name)
	}
}
