// Package storetest is the conformance suite every FragmentStore backend
// must pass. It exercises the contract the assembler, proxy, and coherency
// subscriber rely on: generation-checked gets, copy-on-set, byte and
// residency accounting, drop semantics, and concurrent safety.
package storetest

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"dpcache/internal/fragstore"
)

// Factory builds a fresh store with the given key-space capacity. It is
// called once per subtest.
type Factory func(capacity int) (fragstore.FragmentStore, error)

// Run executes the conformance suite against the backend under name.
func Run(t *testing.T, name string, factory Factory) {
	t.Helper()
	mk := func(t *testing.T, capacity int) fragstore.FragmentStore {
		t.Helper()
		s, err := factory(capacity)
		if err != nil {
			t.Fatalf("factory(%d): %v", capacity, err)
		}
		return s
	}

	t.Run(name+"/SetGet", func(t *testing.T) {
		s := mk(t, 8)
		if err := s.Set(3, 7, []byte("hello")); err != nil {
			t.Fatal(err)
		}
		got, ok := s.Get(3, 7, true)
		if !ok || string(got) != "hello" {
			t.Fatalf("Get = %q, %v", got, ok)
		}
	})

	t.Run(name+"/GetUnset", func(t *testing.T) {
		s := mk(t, 8)
		if _, ok := s.Get(0, 0, false); ok {
			t.Fatal("unset key reported a hit")
		}
	})

	t.Run(name+"/StrictGenerationCheck", func(t *testing.T) {
		s := mk(t, 8)
		if err := s.Set(1, 5, []byte("v5")); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(1, 6, true); ok {
			t.Fatal("strict Get matched a different generation")
		}
		if got, ok := s.Get(1, 6, false); !ok || string(got) != "v5" {
			t.Fatalf("non-strict Get = %q, %v (want any-generation hit)", got, ok)
		}
		if got, ok := s.Get(1, 5, true); !ok || string(got) != "v5" {
			t.Fatalf("strict Get with matching gen = %q, %v", got, ok)
		}
	})

	t.Run(name+"/KeyOutOfRange", func(t *testing.T) {
		s := mk(t, 2)
		if err := s.Set(2, 1, []byte("x")); err == nil {
			t.Fatal("Set beyond capacity succeeded")
		}
		if _, ok := s.Get(2, 1, false); ok {
			t.Fatal("Get beyond capacity reported a hit")
		}
		s.Drop(2) // must not panic
	})

	t.Run(name+"/SetCopiesContent", func(t *testing.T) {
		s := mk(t, 2)
		buf := []byte("original")
		if err := s.Set(0, 1, buf); err != nil {
			t.Fatal(err)
		}
		copy(buf, "CLOBBER!")
		if got, _ := s.Get(0, 1, true); !bytes.Equal(got, []byte("original")) {
			t.Fatalf("stored content aliased caller buffer: %q", got)
		}
	})

	t.Run(name+"/Overwrite", func(t *testing.T) {
		s := mk(t, 4)
		if err := s.Set(2, 1, []byte("first")); err != nil {
			t.Fatal(err)
		}
		if err := s.Set(2, 2, []byte("second, longer")); err != nil {
			t.Fatal(err)
		}
		if got, ok := s.Get(2, 2, true); !ok || string(got) != "second, longer" {
			t.Fatalf("Get after overwrite = %q, %v", got, ok)
		}
		if _, ok := s.Get(2, 1, true); ok {
			t.Fatal("old generation still strict-matches after overwrite")
		}
		if s.Bytes() != int64(len("second, longer")) || s.Resident() != 1 {
			t.Fatalf("Bytes=%d Resident=%d after overwrite", s.Bytes(), s.Resident())
		}
	})

	t.Run(name+"/BytesAndResident", func(t *testing.T) {
		s := mk(t, 4)
		_ = s.Set(0, 1, []byte("abc"))
		_ = s.Set(1, 1, []byte("defg"))
		if s.Bytes() != 7 || s.Resident() != 2 {
			t.Fatalf("Bytes=%d Resident=%d, want 7, 2", s.Bytes(), s.Resident())
		}
		s.Drop(1)
		if s.Bytes() != 3 || s.Resident() != 1 {
			t.Fatalf("after Drop: Bytes=%d Resident=%d, want 3, 1", s.Bytes(), s.Resident())
		}
		if _, ok := s.Get(1, 1, false); ok {
			t.Fatal("dropped key still resident")
		}
	})

	t.Run(name+"/DropIdempotent", func(t *testing.T) {
		s := mk(t, 4)
		_ = s.Set(0, 1, []byte("x"))
		s.Drop(0)
		s.Drop(0)
		if s.Bytes() != 0 || s.Resident() != 0 {
			t.Fatalf("double Drop corrupted accounting: Bytes=%d Resident=%d", s.Bytes(), s.Resident())
		}
	})

	t.Run(name+"/DropAll", func(t *testing.T) {
		s := mk(t, 16)
		for k := uint32(0); k < 16; k++ {
			_ = s.Set(k, 1, []byte("payload"))
		}
		s.DropAll()
		if s.Bytes() != 0 || s.Resident() != 0 {
			t.Fatalf("after DropAll: Bytes=%d Resident=%d", s.Bytes(), s.Resident())
		}
		for k := uint32(0); k < 16; k++ {
			if _, ok := s.Get(k, 1, false); ok {
				t.Fatalf("key %d survived DropAll", k)
			}
		}
		// The store must remain usable after a full flush.
		if err := s.Set(3, 2, []byte("again")); err != nil {
			t.Fatal(err)
		}
		if got, ok := s.Get(3, 2, true); !ok || string(got) != "again" {
			t.Fatalf("Set after DropAll = %q, %v", got, ok)
		}
	})

	t.Run(name+"/Capacity", func(t *testing.T) {
		s := mk(t, 32)
		if s.Capacity() != 32 {
			t.Fatalf("Capacity = %d, want 32", s.Capacity())
		}
		if _, err := factory(0); err == nil {
			t.Fatal("factory accepted zero capacity")
		}
		if _, err := factory(-1); err == nil {
			t.Fatal("factory accepted negative capacity")
		}
	})

	t.Run(name+"/StatsConsistency", func(t *testing.T) {
		s := mk(t, 8)
		_ = s.Set(0, 1, []byte("aa"))
		_ = s.Set(1, 1, []byte("bbb"))
		s.Get(0, 1, true)  // hit
		s.Get(5, 1, false) // miss
		s.Drop(1)
		st := s.Stats()
		if st.Backend == "" {
			t.Fatal("Stats.Backend is empty")
		}
		if st.Capacity != 8 || st.Resident != s.Resident() || st.Bytes != s.Bytes() {
			t.Fatalf("Stats occupancy mismatch: %+v vs Resident=%d Bytes=%d", st, s.Resident(), s.Bytes())
		}
		if st.Sets != 2 || st.Hits != 1 || st.Misses != 1 || st.Drops != 1 {
			t.Fatalf("Stats activity mismatch: %+v", st)
		}
	})

	t.Run(name+"/ConcurrentMixed", func(t *testing.T) {
		const capacity = 64
		s := mk(t, capacity)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				payload := []byte(fmt.Sprintf("worker-%d-payload", g))
				for i := 0; i < 500; i++ {
					k := uint32((g*31 + i) % capacity)
					switch i % 4 {
					case 0, 1:
						if got, ok := s.Get(k, 1, false); ok && len(got) == 0 {
							t.Errorf("hit returned empty content for key %d", k)
							return
						}
					case 2:
						if err := s.Set(k, 1, payload); err != nil {
							t.Errorf("Set(%d): %v", k, err)
							return
						}
					default:
						s.Drop(k)
					}
				}
			}(g)
		}
		wg.Wait()
		// Accounting must still be coherent after the storm.
		st := s.Stats()
		if st.Bytes < 0 || st.Resident < 0 || st.Resident > capacity {
			t.Fatalf("accounting out of range after concurrency: %+v", st)
		}
	})
}
