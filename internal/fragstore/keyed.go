package fragstore

import (
	"container/heap"
	"container/list"
	"fmt"
	"hash/maphash"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"dpcache/internal/clock"
)

// KeyedStore is the sharded store generalized from uint32 slot keys to
// strings: the same power-of-two shard layout, per-shard locks, LRU/GDSF
// eviction, and global byte-budget ledger as Sharded, plus per-entry TTL
// expiry and an optional entry-count bound. It is the storage engine
// behind every URL-keyed cache tier in the system — the DPC's static
// cache and the whole-page cache both wrap it instead of carrying their
// own mutex+LRU implementations.
//
// Budgets are global, never per-shard: ByteBudget and MaxEntries are
// enforced on store-wide atomic ledgers, so a skewed key distribution
// filling one shard does not evict while the store as a whole has
// headroom. Eviction is global too: under pressure the store compares
// every shard's local victim candidate (LRU recency via a store-wide
// touch sequence, GDSF priority) and evicts the globally coldest — the
// shard count is small, so the O(shards) scan per eviction buys exact
// global policy order rather than the per-shard approximation.
//
// Values returned by Get are shared with the store; callers must not
// modify them. Put copies its input. Expiry is lazy: an expired entry is
// removed by the Get that discovers it (counted as Expired + a miss), or
// by eviction.
type KeyedStore struct {
	shards  []kshard
	mask    uint64
	seed    maphash.Seed
	cfg     KeyedConfig
	clk     clock.Clock
	led     ledger
	entries atomic.Int64 // global resident-entry count (MaxEntries ledger)
	seq     atomic.Int64 // store-wide LRU touch sequence
	// infl is the GDSF aging term L, shared store-wide (float64 bits,
	// raised monotonically to each victim's priority) so priorities are
	// comparable across shards — a per-shard term would skew evictGlobal
	// away from heavily-evicted shards.
	infl atomic.Uint64
}

// KeyedConfig parameterizes a KeyedStore.
type KeyedConfig struct {
	// Shards is rounded up to a power of two; 0 selects DefaultShards.
	Shards int
	// MaxEntries bounds resident entries across all shards (0 =
	// unbounded). Like ByteBudget it is a global bound, not a per-shard
	// partition.
	MaxEntries int
	// ByteBudget bounds resident value bytes across all shards (0 =
	// unbounded). Only Value bytes count; key and Meta overhead does not.
	ByteBudget int64
	// Policy selects the eviction strategy. The zero value selects
	// PolicyLRU: a keyed cache with any bound must be able to evict, and
	// LRU is the safe default. PolicyGDSF prefers keeping small, hot
	// entries.
	Policy Policy
	// Clock drives TTL expiry; nil selects the real clock.
	Clock clock.Clock
	// OnEvict, when set, receives each entry the eviction policy removes
	// under budget or entry-bound pressure — never entries removed by
	// Delete, DeleteFunc, Flush, TTL expiry, or an oversized-put refusal.
	// It is invoked after the victim's shard lock is released, so it may
	// block or re-enter the store; the tiered backend demotes victims to
	// its disk tier here. The deadline is the victim's absolute expiry
	// (zero = none).
	OnEvict func(key string, e KeyedEntry, deadline time.Time)
}

// KeyedEntry is one stored value with its caller-owned annotations.
type KeyedEntry struct {
	// Value is the cached payload (a response body, a whole page).
	Value []byte
	// Meta is a small caller-defined tag stored alongside the value (the
	// cache tiers keep the Content-Type here).
	Meta string
	// Gen is a caller-defined generation (the fragment-store adapter
	// keeps the SET tag generation here; cache tiers leave it zero).
	Gen uint32
	// Obj is an optional structured payload stored by reference — never
	// copied, so it must be immutable once stored (the plan cache keeps
	// compiled template programs here). Tiers that use Obj should charge
	// its footprint via Cost.
	Obj any
	// Cost, when positive, overrides len(Value) as the bytes this entry
	// charges against the store's budget and occupancy accounting.
	Cost int64
}

// size is the entry's charge against the byte ledger.
func (e KeyedEntry) size() int64 {
	if e.Cost > 0 {
		return e.Cost
	}
	return int64(len(e.Value))
}

// KeyedStats is a point-in-time snapshot of a KeyedStore's occupancy and
// activity.
type KeyedStats struct {
	Shards     int   `json:"shards"`
	Resident   int   `json:"resident"`
	Bytes      int64 `json:"bytes"`
	ByteBudget int64 `json:"byte_budget"`
	MaxEntries int   `json:"max_entries"`
	// Puts, Hits, Misses, Drops count store operations since creation.
	Puts   int64 `json:"puts"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Drops  int64 `json:"drops"`
	// Expired counts entries removed lazily at their deadline (each also
	// counts as a miss for the Get that discovered it).
	Expired int64 `json:"expired"`
	// Evictions counts entries removed by the eviction policy, and
	// EvictedBytes their cumulative value size.
	Evictions    int64 `json:"evictions"`
	EvictedBytes int64 `json:"evicted_bytes"`
}

type kshard struct {
	mu      sync.Mutex
	entries map[string]*kentry
	bytes   int64
	led     *ledger
	count   *atomic.Int64
	seq     *atomic.Int64
	infl    *atomic.Uint64 // store-wide GDSF aging term (float64 bits)
	policy  Policy
	lru     *list.List // front = most recent; values are *kentry
	heap    kheap

	evictions                          int64
	evictedBytes                       int64
	puts, hits, misses, drops, expired atomic.Int64
}

type kentry struct {
	key      string
	val      KeyedEntry
	deadline time.Time // zero = no expiry

	elem     *list.Element // LRU handle
	touchSeq int64         // store-wide recency stamp (LRU cross-shard compare)
	freq     int64         // GDSF access count
	prio     float64       // GDSF priority
	hidx     int           // GDSF heap index
}

// NewKeyed returns a keyed store.
func NewKeyed(cfg KeyedConfig) (*KeyedStore, error) {
	if cfg.ByteBudget < 0 {
		return nil, fmt.Errorf("fragstore: negative byte budget %d", cfg.ByteBudget)
	}
	if cfg.MaxEntries < 0 {
		return nil, fmt.Errorf("fragstore: negative entry bound %d", cfg.MaxEntries)
	}
	if cfg.Policy == PolicyNone {
		cfg.Policy = PolicyLRU
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	n := cfg.Shards
	if n <= 0 {
		n = DefaultShards
	}
	if n > maxShards {
		n = maxShards
	}
	n = nextPow2(n)
	s := &KeyedStore{
		shards: make([]kshard, n),
		mask:   uint64(n - 1),
		seed:   maphash.MakeSeed(),
		cfg:    cfg,
		clk:    clk,
		led:    ledger{budget: cfg.ByteBudget},
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.entries = make(map[string]*kentry)
		sh.led = &s.led
		sh.count = &s.entries
		sh.seq = &s.seq
		sh.infl = &s.infl
		sh.policy = cfg.Policy
		if cfg.Policy == PolicyLRU {
			sh.lru = list.New()
		}
	}
	return s, nil
}

// locate returns the shard owning key.
func (s *KeyedStore) locate(key string) *kshard {
	return &s.shards[maphash.String(s.seed, key)&s.mask]
}

// overLimits reports global pressure on either ledger.
func (s *KeyedStore) overLimits() bool {
	if s.led.overBudget() {
		return true
	}
	return s.cfg.MaxEntries > 0 && int(s.entries.Load()) > s.cfg.MaxEntries
}

// Get returns the entry stored under key, if resident and unexpired.
func (s *KeyedStore) Get(key string) (KeyedEntry, bool) {
	sh := s.locate(key)
	sh.mu.Lock()
	e, ok := sh.entries[key]
	if !ok {
		sh.mu.Unlock()
		sh.misses.Add(1)
		return KeyedEntry{}, false
	}
	if !e.deadline.IsZero() && !s.clk.Now().Before(e.deadline) {
		sh.remove(e)
		sh.mu.Unlock()
		sh.expired.Add(1)
		sh.misses.Add(1)
		return KeyedEntry{}, false
	}
	sh.touch(e)
	val := e.val
	sh.mu.Unlock()
	sh.hits.Add(1)
	return val, true
}

// GetKeep behaves like Get — hits are counted and an expired entry
// misses — except the expired entry is left resident instead of removed,
// so a later GetStale can still serve it. The proxy's cache-tier stages
// switch to it when admission control is enabled: lazy-expiry removal
// would destroy the very copy stale-while-revalidate exists to serve.
// Resident expired entries are bounded like everything else (entry cap,
// byte ledger) and are replaced by the next Put under their key.
func (s *KeyedStore) GetKeep(key string) (KeyedEntry, bool) {
	sh := s.locate(key)
	sh.mu.Lock()
	e, ok := sh.entries[key]
	if !ok {
		sh.mu.Unlock()
		sh.misses.Add(1)
		return KeyedEntry{}, false
	}
	if !e.deadline.IsZero() && !s.clk.Now().Before(e.deadline) {
		sh.mu.Unlock()
		sh.misses.Add(1)
		return KeyedEntry{}, false
	}
	sh.touch(e)
	val := e.val
	sh.mu.Unlock()
	sh.hits.Add(1)
	return val, true
}

// GetStale returns the entry stored under key even when its TTL has
// lapsed, along with how far past its deadline it is (zero while still
// fresh). Unlike Get it never removes an expired entry — the caller is a
// stale-while-revalidate path that wants the lapsed copy served while a
// background refresh replaces it. Invalidation is unaffected: Delete and
// DeleteFunc remove entries outright, so a stale read can only observe
// TTL lapse, never invalidated content. The read refreshes recency (a
// key being stale-served is still hot) but is not counted as a hit or
// miss — it is not a freshness lookup.
func (s *KeyedStore) GetStale(key string) (entry KeyedEntry, age time.Duration, ok bool) {
	sh := s.locate(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	if !ok {
		return KeyedEntry{}, 0, false
	}
	if !e.deadline.IsZero() {
		if now := s.clk.Now(); now.After(e.deadline) {
			age = now.Sub(e.deadline)
		}
	}
	sh.touch(e)
	return e.val, age, true
}

// Put stores entry under key for ttl (ttl <= 0 means no expiry). The
// value is copied. When the write pushes the store over its global byte
// budget or entry bound, the globally coldest entries are evicted until
// it fits (the incoming entry is itself a candidate under GDSF — the
// "don't admit what you'd immediately evict" behavior; under LRU it is
// by definition the most recent).
func (s *KeyedStore) Put(key string, entry KeyedEntry, ttl time.Duration) {
	if s.led.budget > 0 && entry.size() > s.led.budget {
		// A value larger than the entire budget can never fit: refuse
		// admission (counted as an eviction of the refused bytes) rather
		// than emptying the store to make room, and drop any stale
		// entry the refused write was replacing.
		sh := s.locate(key)
		sh.puts.Add(1)
		sh.mu.Lock()
		if e, ok := sh.entries[key]; ok {
			sh.remove(e)
		}
		sh.evictions++
		sh.evictedBytes += entry.size()
		sh.mu.Unlock()
		return
	}
	cp := make([]byte, len(entry.Value))
	copy(cp, entry.Value)
	entry.Value = cp
	var deadline time.Time
	if ttl > 0 {
		deadline = s.clk.Now().Add(ttl)
	}
	sh := s.locate(key)
	sh.puts.Add(1)
	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		delta := entry.size() - e.val.size()
		sh.bytes += delta
		sh.led.reserve(delta)
		e.val = entry
		e.deadline = deadline
		sh.touch(e)
	} else {
		e := &kentry{key: key, val: entry, deadline: deadline}
		sh.entries[key] = e
		sh.bytes += entry.size()
		sh.led.reserve(entry.size())
		sh.count.Add(1)
		sh.admit(e)
	}
	sh.mu.Unlock()
	if s.overLimits() {
		s.evictGlobal()
	}
}

// evictGlobal relieves budget pressure by repeatedly evicting the
// globally coldest entry: scan every shard's local victim candidate (its
// LRU tail or GDSF heap minimum) and evict the coldest of those minima —
// which is the store-wide minimum, so the global policy order is exact,
// not a per-shard approximation. Candidates are read under each shard's
// lock but compared outside it; a concurrent touch can promote the chosen
// victim before the final lock, in which case whatever is then coldest in
// that shard is evicted instead — a benign inversion bounded by one
// concurrent access.
func (s *KeyedStore) evictGlobal() {
	for s.overLimits() {
		var victim *kshard
		best := 0.0
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.Lock()
			m, ok := sh.coldness()
			sh.mu.Unlock()
			if ok && (victim == nil || m < best) {
				best, victim = m, sh
			}
		}
		if victim == nil {
			return // store is empty; nothing left to give back
		}
		victim.mu.Lock()
		var ev *kentry
		if len(victim.entries) > 0 {
			ev = victim.evictOne()
		}
		victim.mu.Unlock()
		if ev != nil && s.cfg.OnEvict != nil {
			s.cfg.OnEvict(ev.key, ev.val, ev.deadline)
		}
	}
}

// coldness scores this shard's eviction candidate for the cross-shard
// compare: lower is colder. Called with sh.mu held.
func (sh *kshard) coldness() (float64, bool) {
	switch sh.policy {
	case PolicyLRU:
		if sh.lru.Len() == 0 {
			return 0, false
		}
		return float64(sh.lru.Back().Value.(*kentry).touchSeq), true
	case PolicyGDSF:
		if len(sh.heap) == 0 {
			return 0, false
		}
		return sh.heap[0].prio, true
	}
	return 0, false
}

// DeleteFunc removes every resident entry whose key satisfies pred,
// returning how many were dropped. It takes each shard's lock once, so
// pred must be fast and must not call back into the store. Cache tiers
// use it for scoped drops the exact-key API cannot express — e.g. purging
// every variant of one URI, whose keys share a prefix.
func (s *KeyedStore) DeleteFunc(pred func(key string) bool) int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, e := range sh.entries {
			//dpclint:ignore lockscope pred is contract-bound (doc comment) to be fast and never re-enter the store; snapshotting keys to call it unlocked would cost O(resident) per sweep on the invalidation path
			if pred(k) {
				sh.remove(e)
				sh.drops.Add(1)
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// ReserveScratch charges n transient bytes (negative releases them)
// against the store's global byte ledger without storing anything: the
// page tier accounts its in-flight capture buffers here so a storm of
// concurrent captures evicts resident entries to make room instead of
// blowing past the budget. No-op on an unbounded store. Scratch bytes
// are never evictable — the caller must release exactly what it
// reserved once the capture is filed or discarded.
func (s *KeyedStore) ReserveScratch(n int64) {
	if s.led.budget <= 0 || n == 0 {
		return
	}
	s.led.reserve(n)
	if n > 0 && s.overLimits() {
		s.evictGlobal()
	}
}

// Range calls fn for every resident entry (expired ones included) until
// fn returns false. Each shard's contents are snapshotted under its lock
// and fn runs unlocked, so fn may call back into the store; entries
// added or removed while Range runs may or may not be seen. The tiered
// store's clean shutdown drains the RAM tier to disk through this.
func (s *KeyedStore) Range(fn func(key string, e KeyedEntry, deadline time.Time) bool) {
	type snap struct {
		key      string
		val      KeyedEntry
		deadline time.Time
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		entries := make([]snap, 0, len(sh.entries))
		for _, e := range sh.entries {
			entries = append(entries, snap{e.key, e.val, e.deadline})
		}
		sh.mu.Unlock()
		for _, e := range entries {
			if !fn(e.key, e.val, e.deadline) {
				return
			}
		}
	}
}

// Delete removes the entry under key, reporting whether one was resident.
func (s *KeyedStore) Delete(key string) bool {
	sh := s.locate(key)
	sh.mu.Lock()
	e, ok := sh.entries[key]
	if ok {
		sh.remove(e)
	}
	sh.mu.Unlock()
	if ok {
		sh.drops.Add(1)
	}
	return ok
}

// Flush removes every resident entry.
func (s *KeyedStore) Flush() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.drops.Add(int64(len(sh.entries)))
		sh.count.Add(-int64(len(sh.entries)))
		sh.led.release(sh.bytes)
		sh.entries = make(map[string]*kentry)
		sh.bytes = 0
		if sh.lru != nil {
			sh.lru.Init()
		}
		for i := range sh.heap {
			sh.heap[i] = nil // release the entries (and their values)
		}
		sh.heap = sh.heap[:0]
		sh.mu.Unlock()
	}
}

// Len returns the number of resident entries.
func (s *KeyedStore) Len() int { return int(s.entries.Load()) }

// Bytes returns the total resident value bytes.
func (s *KeyedStore) Bytes() int64 {
	var n int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.bytes
		sh.mu.Unlock()
	}
	return n
}

// BudgetUsed returns the global byte ledger's current reservation.
func (s *KeyedStore) BudgetUsed() int64 { return s.led.Used() }

// Stats returns a point-in-time snapshot of store activity.
func (s *KeyedStore) Stats() KeyedStats {
	st := KeyedStats{
		Shards:     len(s.shards),
		ByteBudget: s.cfg.ByteBudget,
		MaxEntries: s.cfg.MaxEntries,
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st.Resident += len(sh.entries)
		st.Bytes += sh.bytes
		st.Evictions += sh.evictions
		st.EvictedBytes += sh.evictedBytes
		sh.mu.Unlock()
		st.Puts += sh.puts.Load()
		st.Hits += sh.hits.Load()
		st.Misses += sh.misses.Load()
		st.Drops += sh.drops.Load()
		st.Expired += sh.expired.Load()
	}
	return st
}

// --- per-shard policy plumbing (kshard.mu held throughout) ---

func (sh *kshard) admit(e *kentry) {
	switch sh.policy {
	case PolicyLRU:
		e.elem = sh.lru.PushFront(e)
		e.touchSeq = sh.seq.Add(1)
	case PolicyGDSF:
		e.freq = 1
		e.prio = sh.inflation() + kGdsfValue(e)
		heap.Push(&sh.heap, e)
	}
}

func (sh *kshard) touch(e *kentry) {
	switch sh.policy {
	case PolicyLRU:
		sh.lru.MoveToFront(e.elem)
		e.touchSeq = sh.seq.Add(1)
	case PolicyGDSF:
		e.freq++
		e.prio = sh.inflation() + kGdsfValue(e)
		heap.Fix(&sh.heap, e.hidx)
	}
}

// inflation reads the store-wide GDSF aging term.
func (sh *kshard) inflation() float64 {
	return math.Float64frombits(sh.infl.Load())
}

// raiseInflation lifts the aging term to at least p (GDSF's L := victim
// priority; monotone, so a CAS max loop suffices).
func (sh *kshard) raiseInflation(p float64) {
	for {
		old := sh.infl.Load()
		if math.Float64frombits(old) >= p || sh.infl.CompareAndSwap(old, math.Float64bits(p)) {
			return
		}
	}
}

func (sh *kshard) remove(e *kentry) {
	sh.bytes -= e.val.size()
	sh.led.release(e.val.size())
	sh.count.Add(-1)
	switch sh.policy {
	case PolicyLRU:
		sh.lru.Remove(e.elem)
	case PolicyGDSF:
		heap.Remove(&sh.heap, e.hidx)
	}
	delete(sh.entries, e.key)
}

// evictOne removes this shard's policy victim and returns it so the
// caller can hand it to KeyedConfig.OnEvict once the lock is released.
func (sh *kshard) evictOne() *kentry {
	var victim *kentry
	switch sh.policy {
	case PolicyLRU:
		victim = sh.lru.Back().Value.(*kentry)
	case PolicyGDSF:
		victim = sh.heap[0]
		sh.raiseInflation(victim.prio) // GDSF aging term L
	default:
		return nil
	}
	size := victim.val.size()
	sh.remove(victim)
	sh.evictions++
	sh.evictedBytes += size
	return victim
}

func kGdsfValue(e *kentry) float64 {
	size := e.val.size()
	if size < 1 {
		size = 1
	}
	return float64(e.freq) / float64(size)
}

// kheap is a min-heap of keyed entries by GDSF priority.
type kheap []*kentry

func (h kheap) Len() int           { return len(h) }
func (h kheap) Less(i, j int) bool { return h[i].prio < h[j].prio }
func (h kheap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].hidx = i; h[j].hidx = j }
func (h *kheap) Push(x any)        { e := x.(*kentry); e.hidx = len(*h); *h = append(*h, e) }
func (h *kheap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// AsFragmentStore adapts the keyed store to the FragmentStore contract
// (uint32 keys formatted as strings, generations carried in KeyedEntry.Gen)
// so the storetest conformance suite — the same one the slot and sharded
// fragment backends pass — can verify any keyed-backed cache tier.
func (s *KeyedStore) AsFragmentStore(capacity int) (FragmentStore, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("fragstore: store capacity must be positive, got %d", capacity)
	}
	return &keyedFragmentView{s: s, capacity: capacity}, nil
}

type keyedFragmentView struct {
	s        *KeyedStore
	capacity int
}

func kfvKey(key uint32) string { return fmt.Sprintf("k%d", key) }

func (v *keyedFragmentView) Set(key, gen uint32, content []byte) error {
	if int64(key) >= int64(v.capacity) {
		return fmt.Errorf("fragstore: key %d outside store capacity %d", key, v.capacity)
	}
	v.s.Put(kfvKey(key), KeyedEntry{Value: content, Gen: gen}, 0)
	return nil
}

func (v *keyedFragmentView) Get(key, gen uint32, strict bool) ([]byte, bool) {
	if int64(key) >= int64(v.capacity) {
		v.s.locate(kfvKey(key)).misses.Add(1)
		return nil, false
	}
	e, ok := v.s.Get(kfvKey(key))
	if !ok || (strict && e.Gen != gen) {
		return nil, false
	}
	return e.Value, true
}

func (v *keyedFragmentView) Drop(key uint32) {
	if int64(key) >= int64(v.capacity) {
		return
	}
	v.s.Delete(kfvKey(key))
}

func (v *keyedFragmentView) DropAll() { v.s.Flush() }

func (v *keyedFragmentView) Capacity() int { return v.capacity }

func (v *keyedFragmentView) Bytes() int64 { return v.s.Bytes() }

func (v *keyedFragmentView) Resident() int { return v.s.Len() }

func (v *keyedFragmentView) Stats() Stats {
	ks := v.s.Stats()
	return Stats{
		Backend:      "keyed",
		Shards:       ks.Shards,
		Capacity:     v.capacity,
		Resident:     ks.Resident,
		Bytes:        ks.Bytes,
		ByteBudget:   ks.ByteBudget,
		Sets:         ks.Puts,
		Hits:         ks.Hits,
		Misses:       ks.Misses,
		Drops:        ks.Drops,
		Evictions:    ks.Evictions,
		EvictedBytes: ks.EvictedBytes,
	}
}
