package fragstore_test

import (
	"fmt"
	"sync"
	"testing"

	"dpcache/internal/fragstore"
	"dpcache/internal/fragstore/storetest"
	"dpcache/internal/metrics"
)

// TestConformance runs the shared suite against every backend
// configuration the system can select.
func TestConformance(t *testing.T) {
	storetest.Run(t, "slot", func(capacity int) (fragstore.FragmentStore, error) {
		return fragstore.NewSlotStore(capacity)
	})
	storetest.Run(t, "sharded", func(capacity int) (fragstore.FragmentStore, error) {
		return fragstore.NewSharded(fragstore.ShardedConfig{Capacity: capacity})
	})
	storetest.Run(t, "sharded-1shard", func(capacity int) (fragstore.FragmentStore, error) {
		return fragstore.NewSharded(fragstore.ShardedConfig{Capacity: capacity, Shards: 1})
	})
	// Budgets large enough that the conformance workloads never evict:
	// the accounting contract must hold with the policies armed.
	storetest.Run(t, "sharded-lru", func(capacity int) (fragstore.FragmentStore, error) {
		return fragstore.NewSharded(fragstore.ShardedConfig{
			Capacity: capacity, ByteBudget: 1 << 30, Policy: fragstore.PolicyLRU})
	})
	storetest.Run(t, "sharded-gdsf", func(capacity int) (fragstore.FragmentStore, error) {
		return fragstore.NewSharded(fragstore.ShardedConfig{
			Capacity: capacity, ByteBudget: 1 << 30, Policy: fragstore.PolicyGDSF})
	})
}

func TestNewSelectsBackend(t *testing.T) {
	s, err := fragstore.New(fragstore.Config{Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Backend != fragstore.BackendSlot {
		t.Fatalf("default backend = %q", st.Backend)
	}
	s, err = fragstore.New(fragstore.Config{
		Backend: fragstore.BackendSharded, Capacity: 8, Shards: 4,
		ByteBudget: 1024, Eviction: "lru"})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Backend != fragstore.BackendSharded || st.Shards != 4 || st.ByteBudget != 1024 {
		t.Fatalf("sharded stats = %+v", st)
	}
	if _, err := fragstore.New(fragstore.Config{Backend: "bogus", Capacity: 8}); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if _, err := fragstore.New(fragstore.Config{Capacity: 8, ByteBudget: 1}); err == nil {
		t.Fatal("slot backend accepted a byte budget")
	}
	if _, err := fragstore.New(fragstore.Config{
		Backend: fragstore.BackendSharded, Capacity: 8, Eviction: "clock"}); err == nil {
		t.Fatal("unknown eviction policy accepted")
	}
}

func TestShardCountRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, fragstore.DefaultShards}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {16, 16}, {17, 32},
	} {
		s, err := fragstore.NewSharded(fragstore.ShardedConfig{Capacity: 1024, Shards: tc.in})
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Shards(); got != tc.want {
			t.Errorf("Shards=%d rounded to %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestBudgetRequiresPolicy(t *testing.T) {
	if _, err := fragstore.NewSharded(fragstore.ShardedConfig{
		Capacity: 8, ByteBudget: 100}); err == nil {
		t.Fatal("byte budget without a policy accepted")
	}
	if _, err := fragstore.NewSharded(fragstore.ShardedConfig{
		Capacity: 8, ByteBudget: -1, Policy: fragstore.PolicyLRU}); err == nil {
		t.Fatal("negative budget accepted")
	}
}

// singleShard returns a one-shard LRU/GDSF store so eviction order is
// deterministic (no key→shard spreading).
func singleShard(t *testing.T, budget int64, pol fragstore.Policy) *fragstore.Sharded {
	t.Helper()
	s, err := fragstore.NewSharded(fragstore.ShardedConfig{
		Capacity: 1024, Shards: 1, ByteBudget: budget, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	s := singleShard(t, 30, fragstore.PolicyLRU)
	pay := make([]byte, 10)
	for k := uint32(0); k < 3; k++ { // fills the budget exactly
		if err := s.Set(k, 1, pay); err != nil {
			t.Fatal(err)
		}
	}
	s.Get(0, 1, false) // key 0 is now hotter than key 1
	if err := s.Set(3, 1, pay); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(1, 1, false); ok {
		t.Fatal("least-recently-used key 1 survived eviction")
	}
	for _, k := range []uint32{0, 2, 3} {
		if _, ok := s.Get(k, 1, false); !ok {
			t.Fatalf("key %d evicted, want key 1 only", k)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 || st.EvictedBytes != 10 {
		t.Fatalf("eviction stats = %+v", st)
	}
	if st.Bytes > 30 {
		t.Fatalf("bytes %d exceed budget", st.Bytes)
	}
}

func TestLRUBudgetHolds(t *testing.T) {
	s := singleShard(t, 100, fragstore.PolicyLRU)
	for i := 0; i < 200; i++ {
		k := uint32(i % 50)
		if err := s.Set(k, 1, make([]byte, 1+i%17)); err != nil {
			t.Fatal(err)
		}
		if got := s.Bytes(); got > 100 {
			t.Fatalf("bytes %d exceed budget after set %d", got, i)
		}
	}
	if st := s.Stats(); st.Evictions == 0 {
		t.Fatal("no evictions under sustained over-budget writes")
	}
}

func TestGDSFPrefersSmallHotFragments(t *testing.T) {
	s := singleShard(t, 1000, fragstore.PolicyGDSF)
	// A small, frequently hit fragment...
	if err := s.Set(1, 1, make([]byte, 50)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s.Get(1, 1, false)
	}
	// ...and a large, cold one filling the rest of the budget.
	if err := s.Set(2, 1, make([]byte, 900)); err != nil {
		t.Fatal(err)
	}
	// A new medium fragment forces an eviction: GDSF must sacrifice the
	// large cold fragment, not the small hot one.
	if err := s.Set(3, 1, make([]byte, 400)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(1, 1, false); !ok {
		t.Fatal("small hot fragment evicted")
	}
	if _, ok := s.Get(2, 1, false); ok {
		t.Fatal("large cold fragment survived")
	}
}

func TestGDSFAgingAdmitsFreshEntries(t *testing.T) {
	s := singleShard(t, 100, fragstore.PolicyGDSF)
	// Make key 0 extremely hot, then stop touching it.
	_ = s.Set(0, 1, make([]byte, 60))
	for i := 0; i < 1000; i++ {
		s.Get(0, 1, false)
	}
	// Sustained fresh traffic must eventually displace it: each eviction
	// raises the shard's aging term, so fresh entries catch up. (Probing
	// key 0 during the loop would count as hits and keep it hot, so the
	// check happens once, at the end.)
	for i := 1; i <= 3000; i++ {
		_ = s.Set(uint32(i%40+1), 1, make([]byte, 30))
	}
	if _, ok := s.Get(0, 1, false); ok {
		t.Fatal("once-hot entry never aged out under sustained fresh traffic")
	}
}

// The budget is a global ledger, not a per-shard partition: a skewed key
// distribution that lands every write in one shard must not evict while
// the store as a whole has headroom. (With the budget split evenly across
// 8 shards, this workload would start evicting at 1/8th of the budget.)
func TestGlobalBudgetToleratesSkewedKeys(t *testing.T) {
	s, err := fragstore.NewSharded(fragstore.ShardedConfig{
		Capacity: 2048, Shards: 8, ByteBudget: 12800, Policy: fragstore.PolicyLRU})
	if err != nil {
		t.Fatal(err)
	}
	// Keys ≡ 0 (mod 8) all hash to shard 0: 120 × 100 B = 12000 B, 94% of
	// the global budget, all in one shard.
	pay := make([]byte, 100)
	for i := 0; i < 120; i++ {
		if err := s.Set(uint32(i*8), 1, pay); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Evictions != 0 {
		t.Fatalf("evicted %d entries while %d/%d bytes under the global budget (per-shard partitioning?)",
			st.Evictions, st.Bytes, st.ByteBudget)
	}
	if got := s.Resident(); got != 120 {
		t.Fatalf("resident = %d, want all 120 skewed entries", got)
	}
	// Pushing past the global budget must now evict — the ledger is a
	// bound, not a suggestion.
	for i := 120; i < 130; i++ {
		if err := s.Set(uint32(i*8), 1, pay); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions after exceeding the global budget")
	}
	if st.Bytes > st.ByteBudget {
		t.Fatalf("settled at %d bytes, over the %d budget", st.Bytes, st.ByteBudget)
	}
}

// When the writing shard has nothing left to evict but the bytes live
// elsewhere, the sweep must relieve pressure from the other shards.
func TestGlobalBudgetSweepsOtherShards(t *testing.T) {
	s, err := fragstore.NewSharded(fragstore.ShardedConfig{
		Capacity: 1024, Shards: 8, ByteBudget: 1000, Policy: fragstore.PolicyLRU})
	if err != nil {
		t.Fatal(err)
	}
	// Fill shard 0 to the brim...
	for i := 0; i < 9; i++ {
		if err := s.Set(uint32(i*8), 1, make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	// ...then write a single large entry into shard 1. Its own shard has
	// only that entry; the overflow must be clawed back from shard 0.
	if err := s.Set(1, 1, make([]byte, 500)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(1, 1, false); !ok {
		t.Fatal("fresh entry evicted instead of sweeping the loaded shard")
	}
	if got := s.Bytes(); got > 1000 {
		t.Fatalf("settled at %d bytes, over the 1000 budget", got)
	}
	if st := s.Stats(); st.Evictions == 0 {
		t.Fatal("sweep evicted nothing")
	}
}

// A single entry larger than the whole budget must be refused, not
// admitted by flushing every shard — and an overwritten slot must not
// keep its stale content.
func TestOversizedSetRefusedNotFlushed(t *testing.T) {
	s, err := fragstore.NewSharded(fragstore.ShardedConfig{
		Capacity: 1024, Shards: 8, ByteBudget: 1000, Policy: fragstore.PolicyLRU})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.Set(uint32(i), 1, make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Set(0, 2, make([]byte, 5000)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(0, 2, false); ok {
		t.Fatal("oversized entry admitted")
	}
	if got := s.Resident(); got != 7 {
		t.Fatalf("resident = %d after oversized set, want the 7 untouched entries", got)
	}
	if st := s.Stats(); st.Evictions != 1 || st.EvictedBytes != 5000 {
		t.Fatalf("refusal not counted: %+v", st)
	}
	if used, bytes := s.BudgetUsed(), s.Bytes(); used != bytes || used != 700 {
		t.Fatalf("accounting after refusal: ledger=%d bytes=%d, want 700", used, bytes)
	}
}

// Concurrent reserve/release on the global ledger: hammer a budgeted store
// with racing sets, overwrites, and drops, then check the ledger agrees
// exactly with the per-shard byte accounting at quiescence. Run under
// -race this doubles as the ledger's data-race test.
func TestGlobalBudgetLedgerRace(t *testing.T) {
	const budget = 64 << 10
	s, err := fragstore.NewSharded(fragstore.ShardedConfig{
		Capacity: 512, Shards: 8, ByteBudget: budget, Policy: fragstore.PolicyLRU})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := uint32((g*131 + i*7) % 512)
				switch i % 5 {
				case 0, 1:
					_ = s.Set(k, uint32(i), make([]byte, 64+(i%512)))
				case 2:
					s.Get(k, 1, false)
				case 3:
					s.Drop(k)
				default:
					_ = s.Set(k, uint32(i), make([]byte, 16)) // shrink overwrites
				}
			}
		}(g)
	}
	wg.Wait()
	if used, bytes := s.BudgetUsed(), s.Bytes(); used != bytes {
		t.Fatalf("ledger (%d) disagrees with shard accounting (%d) at quiescence", used, bytes)
	}
	if got := s.Bytes(); got > budget {
		t.Fatalf("settled at %d bytes, over the %d budget", got, budget)
	}
	s.DropAll()
	if used := s.BudgetUsed(); used != 0 {
		t.Fatalf("ledger holds %d bytes after DropAll", used)
	}
}

func TestShardedDistributesKeys(t *testing.T) {
	s, err := fragstore.NewSharded(fragstore.ShardedConfig{Capacity: 4096, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint32(0); k < 4096; k++ {
		if err := s.Set(k, 1, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if s.Resident() != 4096 || s.Bytes() != 4096 {
		t.Fatalf("Resident=%d Bytes=%d after filling", s.Resident(), s.Bytes())
	}
}

func TestPolicyParseRoundTrip(t *testing.T) {
	for _, name := range []string{"none", "lru", "gdsf"} {
		p, err := fragstore.ParsePolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.String() != name {
			t.Errorf("ParsePolicy(%q).String() = %q", name, p)
		}
	}
	if p, err := fragstore.ParsePolicy(""); err != nil || p != fragstore.PolicyNone {
		t.Errorf("empty policy = %v, %v", p, err)
	}
	if _, err := fragstore.ParsePolicy("arc"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestPublish(t *testing.T) {
	reg := metrics.NewRegistry()
	s, _ := fragstore.NewSharded(fragstore.ShardedConfig{
		Capacity: 16, Shards: 2, ByteBudget: 1 << 20, Policy: fragstore.PolicyLRU})
	_ = s.Set(1, 1, []byte("abcde"))
	s.Get(1, 1, false)
	s.Get(9, 1, false)
	fragstore.Publish(reg, "dpc.store", s.Stats())
	snap := reg.Snapshot()
	for key, want := range map[string]int64{
		"dpc.store.capacity":    16,
		"dpc.store.resident":    1,
		"dpc.store.bytes":       5,
		"dpc.store.byte_budget": 1 << 20,
		"dpc.store.shards":      2,
		"dpc.store.sets":        1,
		"dpc.store.hits":        1,
		"dpc.store.misses":      1,
	} {
		if snap[key] != want {
			t.Errorf("%s = %d, want %d", key, snap[key], want)
		}
	}
	fragstore.Publish(nil, "x", s.Stats()) // must not panic
}

func TestShardedStatsAggregate(t *testing.T) {
	s, _ := fragstore.NewSharded(fragstore.ShardedConfig{Capacity: 64, Shards: 4})
	for k := uint32(0); k < 8; k++ {
		_ = s.Set(k, 1, []byte(fmt.Sprintf("frag-%d", k)))
	}
	s.Drop(3)
	st := s.Stats()
	if st.Sets != 8 || st.Drops != 1 || st.Resident != 7 {
		t.Fatalf("aggregate stats = %+v", st)
	}
}
