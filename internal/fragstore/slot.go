package fragstore

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// SlotStore is the paper-faithful fragment memory of Section 4.3.3: "an
// in-memory array of pointers to cached fragments, where the DpcKey serves
// as the array index", guarded by one RWMutex. Slots are written only by
// SET instructions; invalid slots are never explicitly cleared — their
// content simply goes unreferenced until a SET reuses the slot, exactly
// the freeList discipline the BEM enforces. (Drop exists for the
// coherency extension, which must stop serving a fragment immediately.)
type SlotStore struct {
	mu       sync.RWMutex
	slots    []slot
	capacity int
	bytes    int64
	resident int

	sets   atomic.Int64
	hits   atomic.Int64
	misses atomic.Int64
	drops  atomic.Int64
}

type slot struct {
	set  bool
	gen  uint32
	data []byte
}

// NewSlotStore returns a store with the given slot capacity.
func NewSlotStore(capacity int) (*SlotStore, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("fragstore: store capacity must be positive, got %d", capacity)
	}
	return &SlotStore{slots: make([]slot, capacity), capacity: capacity}, nil
}

// Capacity returns the slot count.
func (s *SlotStore) Capacity() int { return s.capacity }

// Set stores content into a slot, stamping it with the generation from the
// SET tag. The content is copied.
func (s *SlotStore) Set(key, gen uint32, content []byte) error {
	if int64(key) >= int64(s.capacity) {
		return fmt.Errorf("fragstore: key %d outside store capacity %d", key, s.capacity)
	}
	cp := make([]byte, len(content))
	copy(cp, content)
	s.sets.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	sl := &s.slots[key]
	if !sl.set {
		s.resident++
	}
	s.bytes += int64(len(cp)) - int64(len(sl.data))
	sl.set = true
	sl.gen = gen
	sl.data = cp
	return nil
}

// Get returns the slot's content; see FragmentStore.Get for strict.
func (s *SlotStore) Get(key, gen uint32, strict bool) ([]byte, bool) {
	if int64(key) >= int64(s.capacity) {
		s.misses.Add(1)
		return nil, false
	}
	s.mu.RLock()
	sl := &s.slots[key]
	if !sl.set || (strict && sl.gen != gen) {
		s.mu.RUnlock()
		s.misses.Add(1)
		return nil, false
	}
	data := sl.data
	s.mu.RUnlock()
	s.hits.Add(1)
	return data, true
}

// Drop clears a slot.
func (s *SlotStore) Drop(key uint32) {
	if int64(key) >= int64(s.capacity) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sl := &s.slots[key]
	if sl.set {
		s.resident--
		s.drops.Add(1)
	}
	s.bytes -= int64(len(sl.data))
	sl.set = false
	sl.data = nil
	sl.gen = 0
}

// DropAll clears every slot.
func (s *SlotStore) DropAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.slots {
		if s.slots[i].set {
			s.drops.Add(1)
		}
		s.slots[i] = slot{}
	}
	s.bytes = 0
	s.resident = 0
}

// Bytes returns the total content bytes currently resident.
func (s *SlotStore) Bytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Resident returns the number of set slots.
func (s *SlotStore) Resident() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.resident
}

// Stats implements FragmentStore.
func (s *SlotStore) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Backend:  BackendSlot,
		Shards:   1,
		Capacity: s.capacity,
		Resident: s.resident,
		Bytes:    s.bytes,
		Sets:     s.sets.Load(),
		Hits:     s.hits.Load(),
		Misses:   s.misses.Load(),
		Drops:    s.drops.Load(),
	}
}
