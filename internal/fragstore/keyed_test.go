package fragstore_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dpcache/internal/clock"
	"dpcache/internal/fragstore"
	"dpcache/internal/fragstore/storetest"
)

// The keyed store must satisfy the same fragment-memory contract as the
// slot and sharded backends (through the string-key adapter), for both
// eviction policies.
func TestKeyedConformance(t *testing.T) {
	storetest.Run(t, "keyed-lru", func(capacity int) (fragstore.FragmentStore, error) {
		s, err := fragstore.NewKeyed(fragstore.KeyedConfig{Policy: fragstore.PolicyLRU})
		if err != nil {
			return nil, err
		}
		return s.AsFragmentStore(capacity)
	})
	storetest.Run(t, "keyed-gdsf", func(capacity int) (fragstore.FragmentStore, error) {
		s, err := fragstore.NewKeyed(fragstore.KeyedConfig{Policy: fragstore.PolicyGDSF})
		if err != nil {
			return nil, err
		}
		return s.AsFragmentStore(capacity)
	})
}

func newKeyed(t *testing.T, cfg fragstore.KeyedConfig) *fragstore.KeyedStore {
	t.Helper()
	s, err := fragstore.NewKeyed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestKeyedTTLExpiry(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	s := newKeyed(t, fragstore.KeyedConfig{Clock: fake})
	s.Put("/a", fragstore.KeyedEntry{Value: []byte("x"), Meta: "text/plain"}, 10*time.Second)
	fake.Advance(9 * time.Second)
	if e, ok := s.Get("/a"); !ok || e.Meta != "text/plain" {
		t.Fatalf("fresh entry: %+v, %v", e, ok)
	}
	fake.Advance(2 * time.Second)
	if _, ok := s.Get("/a"); ok {
		t.Fatal("served past expiry")
	}
	if s.Len() != 0 || s.Bytes() != 0 || s.BudgetUsed() != 0 {
		t.Fatalf("expired entry not fully released: len=%d bytes=%d ledger=%d",
			s.Len(), s.Bytes(), s.BudgetUsed())
	}
	if st := s.Stats(); st.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", st.Expired)
	}
}

func TestKeyedNoTTLNeverExpires(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	s := newKeyed(t, fragstore.KeyedConfig{Clock: fake})
	s.Put("/a", fragstore.KeyedEntry{Value: []byte("x")}, 0)
	fake.Advance(1000 * time.Hour)
	if _, ok := s.Get("/a"); !ok {
		t.Fatal("no-TTL entry expired")
	}
}

func TestKeyedMaxEntriesGlobalBound(t *testing.T) {
	s := newKeyed(t, fragstore.KeyedConfig{Shards: 4, MaxEntries: 8})
	for i := 0; i < 100; i++ {
		s.Put(fmt.Sprintf("/f%d", i), fragstore.KeyedEntry{Value: []byte("x")}, 0)
	}
	if got := s.Len(); got != 8 {
		t.Fatalf("resident = %d, want the MaxEntries bound of 8", got)
	}
	if st := s.Stats(); st.Evictions != 92 {
		t.Fatalf("evictions = %d, want 92", st.Evictions)
	}
}

func TestKeyedByteBudgetHolds(t *testing.T) {
	s := newKeyed(t, fragstore.KeyedConfig{Shards: 4, ByteBudget: 1000})
	for i := 0; i < 200; i++ {
		s.Put(fmt.Sprintf("/f%d", i%50), fragstore.KeyedEntry{Value: make([]byte, 30+i%40)}, 0)
		if got := s.Bytes(); got > 1000 {
			t.Fatalf("bytes %d exceed budget after put %d", got, i)
		}
	}
	if st := s.Stats(); st.Evictions == 0 {
		t.Fatal("no evictions under sustained over-budget puts")
	}
}

func TestKeyedLRUOrder(t *testing.T) {
	s := newKeyed(t, fragstore.KeyedConfig{Shards: 1, MaxEntries: 2})
	s.Put("/a", fragstore.KeyedEntry{Value: []byte("a")}, 0)
	s.Put("/b", fragstore.KeyedEntry{Value: []byte("b")}, 0)
	if _, ok := s.Get("/a"); !ok { // touch a; b becomes LRU
		t.Fatal("a missing")
	}
	s.Put("/c", fragstore.KeyedEntry{Value: []byte("c")}, 0)
	if _, ok := s.Get("/b"); ok {
		t.Fatal("LRU entry b survived")
	}
	if _, ok := s.Get("/a"); !ok {
		t.Fatal("recently used entry a evicted")
	}
}

// A value larger than the whole budget is refused, not admitted by
// emptying the store; a stale entry it was replacing is dropped.
func TestKeyedOversizedPutRefused(t *testing.T) {
	s := newKeyed(t, fragstore.KeyedConfig{Shards: 4, ByteBudget: 1000})
	for i := 0; i < 8; i++ {
		s.Put(fmt.Sprintf("/f%d", i), fragstore.KeyedEntry{Value: make([]byte, 100)}, 0)
	}
	s.Put("/f0", fragstore.KeyedEntry{Value: make([]byte, 5000)}, 0)
	if _, ok := s.Get("/f0"); ok {
		t.Fatal("oversized value admitted (or stale entry retained)")
	}
	if got := s.Len(); got != 7 {
		t.Fatalf("resident = %d after oversized put, want the 7 untouched entries", got)
	}
	if st := s.Stats(); st.Evictions != 1 || st.EvictedBytes != 5000 {
		t.Fatalf("refusal not counted: %+v", st)
	}
}

// The keyed store's ledger is global like the fragment store's: keys
// crowding one shard must not evict while the whole store has headroom.
func TestKeyedGlobalBudgetLedgerRace(t *testing.T) {
	const budget = 32 << 10
	s := newKeyed(t, fragstore.KeyedConfig{Shards: 8, ByteBudget: budget})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1500; i++ {
				key := fmt.Sprintf("/k%d", (g*37+i*3)%96)
				switch i % 4 {
				case 0, 1:
					s.Put(key, fragstore.KeyedEntry{Value: make([]byte, 64+(i%256))}, 0)
				case 2:
					s.Get(key)
				default:
					s.Delete(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if used, bytes := s.BudgetUsed(), s.Bytes(); used != bytes {
		t.Fatalf("ledger (%d) disagrees with shard accounting (%d) at quiescence", used, bytes)
	}
	if got := s.Bytes(); got > budget {
		t.Fatalf("settled at %d bytes, over the %d budget", got, budget)
	}
	s.Flush()
	if s.Len() != 0 || s.BudgetUsed() != 0 {
		t.Fatalf("flush left len=%d ledger=%d", s.Len(), s.BudgetUsed())
	}
}

func TestKeyedConfigValidation(t *testing.T) {
	if _, err := fragstore.NewKeyed(fragstore.KeyedConfig{ByteBudget: -1}); err == nil {
		t.Fatal("negative budget accepted")
	}
	if _, err := fragstore.NewKeyed(fragstore.KeyedConfig{MaxEntries: -1}); err == nil {
		t.Fatal("negative entry bound accepted")
	}
	s := newKeyed(t, fragstore.KeyedConfig{})
	if _, err := s.AsFragmentStore(0); err == nil {
		t.Fatal("adapter accepted zero capacity")
	}
}

// DeleteFunc drops exactly the matching keys, releasing their bytes.
func TestKeyedDeleteFunc(t *testing.T) {
	s := newKeyed(t, fragstore.KeyedConfig{Shards: 4})
	for i := 0; i < 10; i++ {
		prefix := "a\x00"
		if i%2 == 1 {
			prefix = "b\x00"
		}
		s.Put(fmt.Sprintf("%svariant%d", prefix, i), fragstore.KeyedEntry{Value: []byte("body")}, 0)
	}
	n := s.DeleteFunc(func(key string) bool {
		return len(key) > 2 && key[:2] == "a\x00"
	})
	if n != 5 {
		t.Fatalf("DeleteFunc dropped %d, want 5", n)
	}
	if s.Len() != 5 {
		t.Fatalf("resident = %d after scoped drop, want 5", s.Len())
	}
	if got := s.Stats().Drops; got != 5 {
		t.Fatalf("drops = %d, want 5", got)
	}
	if used, bytes := s.BudgetUsed(), s.Bytes(); used != bytes {
		t.Fatalf("ledger (%d) disagrees with shard accounting (%d)", used, bytes)
	}
	if _, ok := s.Get("b\x00variant1"); !ok {
		t.Fatal("unmatched key dropped")
	}
}

// Scratch reservations share the global ledger with resident entries:
// reserving capture bytes under pressure must evict resident entries, and
// releasing must restore headroom.
func TestKeyedReserveScratchEvicts(t *testing.T) {
	const budget = 1024
	s := newKeyed(t, fragstore.KeyedConfig{Shards: 1, ByteBudget: budget})
	for i := 0; i < 4; i++ {
		s.Put(fmt.Sprintf("k%d", i), fragstore.KeyedEntry{Value: make([]byte, 200)}, 0)
	}
	if s.Len() != 4 {
		t.Fatalf("resident = %d before reservation", s.Len())
	}
	// Reserving 600 scratch bytes leaves room for only 424 resident.
	s.ReserveScratch(600)
	if got := s.BudgetUsed(); got > budget {
		t.Fatalf("ledger settled at %d, over the %d budget", got, budget)
	}
	if s.Len() > 2 {
		t.Fatalf("resident = %d after a 600-byte reservation, want <= 2", s.Len())
	}
	s.ReserveScratch(-600)
	if used, bytes := s.BudgetUsed(), s.Bytes(); used != bytes {
		t.Fatalf("ledger (%d) disagrees with shard accounting (%d) after release", used, bytes)
	}
	// Unbudgeted stores ignore reservations entirely.
	u := newKeyed(t, fragstore.KeyedConfig{})
	u.ReserveScratch(1 << 30)
	if u.BudgetUsed() != 0 {
		t.Fatalf("unbudgeted store accounted scratch bytes: %d", u.BudgetUsed())
	}
}

// Entries carrying a structured Obj payload are stored by reference and
// charge their declared Cost against the byte budget instead of
// len(Value), so a tier of compiled objects evicts under pressure like
// any byte-valued tier.
func TestKeyedObjCostAccounting(t *testing.T) {
	s := newKeyed(t, fragstore.KeyedConfig{Shards: 1, ByteBudget: 1000})
	type plan struct{ n int }
	p := &plan{n: 42}
	s.Put("/plan", fragstore.KeyedEntry{Obj: p, Cost: 400}, 0)
	if got := s.Bytes(); got != 400 {
		t.Fatalf("Bytes = %d after Cost=400 put, want 400", got)
	}
	e, ok := s.Get("/plan")
	if !ok || e.Obj == nil {
		t.Fatal("Obj entry missing")
	}
	if e.Obj.(*plan) != p {
		t.Fatal("Obj was not stored by reference")
	}
	// Replacing the entry adjusts the ledger by the cost delta.
	s.Put("/plan", fragstore.KeyedEntry{Obj: p, Cost: 700}, 0)
	if got := s.Bytes(); got != 700 {
		t.Fatalf("Bytes = %d after replace with Cost=700, want 700", got)
	}
	// Two more 400-cost entries push past the 1000-byte budget and force
	// an eviction; the ledger must return to within budget.
	s.Put("/plan2", fragstore.KeyedEntry{Obj: &plan{}, Cost: 400}, 0)
	if got := s.Bytes(); got > 1000 {
		t.Fatalf("bytes %d exceed budget", got)
	}
	if st := s.Stats(); st.Evictions == 0 {
		t.Fatal("no eviction after over-budget Obj puts")
	}
	// An Obj entry whose cost exceeds the entire budget is refused.
	s.Put("/huge", fragstore.KeyedEntry{Obj: &plan{}, Cost: 5000}, 0)
	if _, ok := s.Get("/huge"); ok {
		t.Fatal("over-budget Obj entry admitted")
	}
}

// GetKeep must miss on an expired entry (counted) without destroying it:
// stale-while-revalidate depends on the copy surviving the freshness
// lookup that discovered its expiry.
func TestKeyedGetKeepLeavesExpiredResident(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	s := newKeyed(t, fragstore.KeyedConfig{Clock: fake})
	s.Put("/a", fragstore.KeyedEntry{Value: []byte("stale-me"), Meta: "text/html"}, 10*time.Second)

	fake.Advance(9 * time.Second)
	if e, ok := s.GetKeep("/a"); !ok || string(e.Value) != "stale-me" {
		t.Fatalf("fresh GetKeep: %+v, %v", e, ok)
	}

	fake.Advance(6 * time.Second) // 5s past the deadline
	if _, ok := s.GetKeep("/a"); ok {
		t.Fatal("GetKeep served an expired entry as fresh")
	}
	st := s.Stats()
	if st.Misses != 1 {
		t.Fatalf("Misses = %d after the expired GetKeep, want 1", st.Misses)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (expired entry must stay resident)", s.Len())
	}
	e, age, ok := s.GetStale("/a")
	if !ok || string(e.Value) != "stale-me" {
		t.Fatalf("GetStale after GetKeep: %+v, %v", e, ok)
	}
	if age != 5*time.Second {
		t.Fatalf("stale age = %v, want 5s", age)
	}
}

// GetStale serves entries past their deadline with their age, without
// touching the hit/miss counters, and a fresh entry reads back with age
// zero. Delete still removes the entry outright — an invalidation beats
// any stale serve.
func TestKeyedGetStale(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	s := newKeyed(t, fragstore.KeyedConfig{Clock: fake})
	s.Put("/a", fragstore.KeyedEntry{Value: []byte("v"), Meta: "text/plain"}, 10*time.Second)

	if e, age, ok := s.GetStale("/a"); !ok || age != 0 || e.Meta != "text/plain" {
		t.Fatalf("fresh GetStale: entry=%+v age=%v ok=%v", e, age, ok)
	}
	fake.Advance(13 * time.Second)
	if _, age, ok := s.GetStale("/a"); !ok || age != 3*time.Second {
		t.Fatalf("expired GetStale: age=%v ok=%v, want 3s true", age, ok)
	}
	if st := s.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("GetStale moved the freshness counters: hits=%d misses=%d", st.Hits, st.Misses)
	}
	if _, _, ok := s.GetStale("/missing"); ok {
		t.Fatal("GetStale invented an entry")
	}

	if !s.Delete("/a") {
		t.Fatal("Delete missed the resident entry")
	}
	if _, _, ok := s.GetStale("/a"); ok {
		t.Fatal("GetStale served a deleted (invalidated) entry")
	}
}
