package fragstore_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dpcache/internal/clock"
	"dpcache/internal/diskstore"
	"dpcache/internal/fragstore"
	"dpcache/internal/fragstore/storetest"
)

// tieredFactory builds a tiered fragment store over a fresh heap file
// per call (the conformance suite constructs many stores).
func tieredFactory(t *testing.T, ramBudget int64) storetest.Factory {
	t.Helper()
	dir := t.TempDir()
	n := 0
	return func(capacity int) (fragstore.FragmentStore, error) {
		n++
		return fragstore.New(fragstore.Config{
			Backend:    fragstore.BackendTiered,
			Capacity:   capacity,
			ByteBudget: ramBudget,
			Eviction:   "lru",
			DiskPath:   filepath.Join(dir, fmt.Sprintf("conf-%d.heap", n)),
		})
	}
}

func TestTieredConformance(t *testing.T) {
	storetest.Run(t, "tiered", tieredFactory(t, 0))
	// A 64-byte RAM budget forces nearly every Set through a demotion
	// and every Get through a disk hit + promotion, so the conformance
	// contract must hold while entries bounce across the tier boundary.
	storetest.Run(t, "tiered-tiny-ram", tieredFactory(t, 64))
}

func newTiered(t *testing.T, ram fragstore.KeyedConfig, disk diskstore.Config) *fragstore.TieredKeyed {
	t.Helper()
	if disk.Path == "" {
		disk.Path = filepath.Join(t.TempDir(), "tiered.heap")
	}
	ts, err := fragstore.NewTieredKeyed(fragstore.TieredConfig{RAM: ram, Disk: disk})
	if err != nil {
		t.Fatalf("NewTieredKeyed: %v", err)
	}
	t.Cleanup(func() { ts.Close() })
	return ts
}

// TestTieredDemotionOrder checks that RAM evicts its coldest entry into
// the disk tier (not dropping it), that a disk Get promotes back, and
// that the promotion's displacement demotes the next-coldest.
func TestTieredDemotionOrder(t *testing.T) {
	val := func(s string) fragstore.KeyedEntry { return fragstore.KeyedEntry{Value: []byte(s)} }
	// Budget fits exactly two 8-byte values.
	ts := newTiered(t, fragstore.KeyedConfig{Shards: 1, ByteBudget: 16}, diskstore.Config{})
	ts.Put("a", val("aaaaaaaa"), 0)
	ts.Put("b", val("bbbbbbbb"), 0)
	ts.Put("c", val("cccccccc"), 0) // a is coldest → demoted to disk
	st := ts.TierStats()
	if st.Demotions != 1 || st.Disk.Resident != 1 || st.RAM.Resident != 2 {
		t.Fatalf("after 3 puts: %+v", st)
	}
	// Get(a): disk hit, promoted; b (now coldest) demoted to make room.
	e, ok := ts.Get("a")
	if !ok || string(e.Value) != "aaaaaaaa" {
		t.Fatalf("a not served from disk: ok=%v %q", ok, e.Value)
	}
	st = ts.TierStats()
	if st.DiskHits != 1 || st.Promotions != 1 {
		t.Fatalf("promotion not counted: %+v", st)
	}
	if st.Demotions != 2 || st.Disk.Resident != 1 {
		t.Fatalf("displaced victim not demoted: %+v", st)
	}
	// b must still be retrievable (from disk), and nothing was lost.
	for _, k := range []string{"a", "b", "c"} {
		if _, ok := ts.Get(k); !ok {
			t.Fatalf("%s lost across the tier boundary", k)
		}
	}
	if ag := ts.Stats(); ag.Evictions != 0 {
		t.Fatalf("aggregate evictions should be zero while disk is unbounded: %+v", ag)
	}
}

// TestTieredDiskLRUVictims fills past both budgets: the disk tier's own
// budget must drop its least-recently-used entries — the only true
// evictions a tiered store has.
func TestTieredDiskLRUVictims(t *testing.T) {
	ts := newTiered(t,
		fragstore.KeyedConfig{Shards: 1, ByteBudget: 64},
		diskstore.Config{ByteBudget: 300})
	v := make([]byte, 64)
	for i := 0; i < 10; i++ {
		ts.Put(fmt.Sprintf("k%d", i), fragstore.KeyedEntry{Value: v}, 0)
	}
	st := ts.TierStats()
	if st.Disk.Evictions == 0 {
		t.Fatalf("disk tier never evicted under its budget: %+v", st)
	}
	if got := ts.Stats().Evictions; got != st.Disk.Evictions {
		t.Fatalf("aggregate evictions %d != disk evictions %d", got, st.Disk.Evictions)
	}
	if ts.Bytes() > 64+300 {
		t.Fatalf("combined budgets exceeded: %d bytes resident", ts.Bytes())
	}
	// Most recent keys must have survived somewhere.
	if _, ok := ts.Get("k9"); !ok {
		t.Fatal("most recent key evicted")
	}
}

// TestTieredOversizedForRAM: entries too large for the RAM ledger go
// straight to disk and are served from there without promotion churn.
func TestTieredOversizedForRAM(t *testing.T) {
	ts := newTiered(t, fragstore.KeyedConfig{Shards: 1, ByteBudget: 32}, diskstore.Config{})
	big := bytes.Repeat([]byte("x"), 100)
	ts.Put("big", fragstore.KeyedEntry{Value: big}, 0)
	st := ts.TierStats()
	if st.Disk.Resident != 1 || st.RAM.Resident != 0 {
		t.Fatalf("oversized entry not routed to disk: %+v", st)
	}
	for i := 0; i < 3; i++ {
		e, ok := ts.Get("big")
		if !ok || !bytes.Equal(e.Value, big) {
			t.Fatalf("oversized entry not served from disk (i=%d)", i)
		}
	}
	st = ts.TierStats()
	if st.Promotions != 0 {
		t.Fatalf("oversized entry must not be promoted into a budget that cannot hold it: %+v", st)
	}
	if st.Disk.Resident != 1 {
		t.Fatalf("oversized entry lost: %+v", st)
	}
}

// TestTieredTTLAcrossTiers: a TTL set at Put keeps counting down on
// disk; expired entries are not served from either tier.
func TestTieredTTLAcrossTiers(t *testing.T) {
	fc := clock.NewFake(time.Unix(9000, 0))
	ts := newTiered(t,
		fragstore.KeyedConfig{Shards: 1, ByteBudget: 16, Clock: fc},
		diskstore.Config{Clock: fc})
	ts.Put("ttl", fragstore.KeyedEntry{Value: []byte("12345678")}, time.Minute)
	ts.Put("pad1", fragstore.KeyedEntry{Value: []byte("aaaaaaaa")}, 0)
	ts.Put("pad2", fragstore.KeyedEntry{Value: []byte("bbbbbbbb")}, 0) // ttl demoted
	if st := ts.TierStats(); st.Disk.Resident != 1 {
		t.Fatalf("setup: ttl entry not on disk: %+v", st)
	}
	// Still fresh: served from disk.
	if e, ok := ts.Get("ttl"); !ok || string(e.Value) != "12345678" {
		t.Fatalf("fresh demoted entry not served: ok=%v", ok)
	}
	// Demote it again, then let it lapse.
	ts.Put("pad3", fragstore.KeyedEntry{Value: []byte("cccccccc")}, 0)
	ts.Put("pad4", fragstore.KeyedEntry{Value: []byte("dddddddd")}, 0)
	fc.Advance(2 * time.Minute)
	if _, ok := ts.Get("ttl"); ok {
		t.Fatal("expired entry served from disk")
	}
	// GetStale still reaches the lapsed copy wherever it lives, with age.
	ts.Put("stale", fragstore.KeyedEntry{Value: []byte("stale-v")}, time.Second)
	fc.Advance(10 * time.Second)
	e, age, ok := ts.GetStale("stale")
	if !ok || string(e.Value) != "stale-v" || age != 9*time.Second {
		t.Fatalf("GetStale: ok=%v age=%v", ok, age)
	}
}

// TestTieredInvalidationDropsDiskResident is the coherency guarantee at
// the tier boundary: a fabric Drop must remove an entry resident only
// on disk, and the key must stay gone even though a demotion for it may
// be in flight.
func TestTieredInvalidationDropsDiskResident(t *testing.T) {
	factory := tieredFactory(t, 16)
	fs, err := factory(64)
	if err != nil {
		t.Fatal(err)
	}
	// Fill so key 1 is demoted to disk (RAM holds 2 newest 8-byte values).
	for k := uint32(1); k <= 3; k++ {
		if err := fs.Set(k, 7, []byte("88888888")); err != nil {
			t.Fatal(err)
		}
	}
	dt := fs.(fragstore.DiskTiered)
	if st := dt.TierStats(); st.Disk.Resident != 1 {
		t.Fatalf("setup: want key 1 disk-resident: %+v", st)
	}
	// The fabric invalidation path is FragmentStore.Drop.
	fs.Drop(1)
	if _, ok := fs.Get(1, 7, true); ok {
		t.Fatal("invalidated disk-resident entry still served")
	}
	st := dt.TierStats()
	if st.Disk.Resident != 0 {
		t.Fatalf("invalidated entry still on disk: %+v", st)
	}
	// DropAll must clear both tiers too.
	for k := uint32(1); k <= 3; k++ {
		fs.Set(k, 7, []byte("88888888"))
	}
	fs.DropAll()
	if fs.Resident() != 0 {
		t.Fatalf("DropAll left %d resident", fs.Resident())
	}
	for k := uint32(1); k <= 3; k++ {
		if _, ok := fs.Get(k, 7, false); ok {
			t.Fatalf("key %d survived DropAll", k)
		}
	}
}

// TestTieredDeleteFunc drops matching keys from both tiers.
func TestTieredDeleteFunc(t *testing.T) {
	ts := newTiered(t, fragstore.KeyedConfig{Shards: 1, ByteBudget: 16}, diskstore.Config{})
	ts.Put("page/a", fragstore.KeyedEntry{Value: []byte("11111111")}, 0)
	ts.Put("page/b", fragstore.KeyedEntry{Value: []byte("22222222")}, 0)
	ts.Put("other", fragstore.KeyedEntry{Value: []byte("33333333")}, 0)
	// One of the page/* keys is now on disk, one in RAM.
	n := ts.DeleteFunc(func(k string) bool { return len(k) > 5 && k[:5] == "page/" })
	if n != 2 {
		t.Fatalf("DeleteFunc removed %d, want 2", n)
	}
	for _, k := range []string{"page/a", "page/b"} {
		if _, ok := ts.Get(k); ok {
			t.Fatalf("%s survived DeleteFunc", k)
		}
	}
	if _, ok := ts.Get("other"); !ok {
		t.Fatal("unmatched key dropped")
	}
}

// TestTieredGetKeepAcrossTiers mirrors the KeyedStore GetKeep contract
// over the boundary: an expired disk entry misses but stays resident
// for GetStale.
func TestTieredGetKeepAcrossTiers(t *testing.T) {
	fc := clock.NewFake(time.Unix(100, 0))
	ts := newTiered(t,
		fragstore.KeyedConfig{Shards: 1, ByteBudget: 16, Clock: fc},
		diskstore.Config{Clock: fc})
	ts.Put("k", fragstore.KeyedEntry{Value: []byte("kkkkkkkk")}, time.Second)
	ts.Put("p1", fragstore.KeyedEntry{Value: []byte("11111111")}, 0)
	ts.Put("p2", fragstore.KeyedEntry{Value: []byte("22222222")}, 0) // k → disk
	fc.Advance(time.Minute)
	if _, ok := ts.GetKeep("k"); ok {
		t.Fatal("GetKeep served an expired disk entry")
	}
	if _, _, ok := ts.GetStale("k"); !ok {
		t.Fatal("GetKeep removed the stale copy it promised to keep")
	}
	// A fresh disk entry is promoted by GetKeep.
	if _, ok := ts.GetKeep("p1"); !ok && ts.TierStats().Disk.Resident > 0 {
		t.Fatal("GetKeep missed a fresh entry")
	}
}

// TestTieredLedgerRace is the keyed ledger-race test aimed across the
// boundary: concurrent puts, gets, deletes, and flushes while demotion
// and promotion traffic crosses tiers. At quiescence both ledgers must
// be exact and within budget.
func TestTieredLedgerRace(t *testing.T) {
	ts := newTiered(t,
		fragstore.KeyedConfig{Shards: 4, ByteBudget: 4 << 10},
		diskstore.Config{ByteBudget: 16 << 10, PageBytes: diskstore.MinPageBytes})
	const (
		workers = 8
		ops     = 300
		keys    = 64
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				k := fmt.Sprintf("k%d", rng.Intn(keys))
				switch rng.Intn(12) {
				case 0:
					ts.Delete(k)
				case 1:
					ts.Flush()
				case 2:
					ts.GetStale(k)
				case 3, 4, 5:
					if e, ok := ts.Get(k); ok && e.Meta != k {
						t.Errorf("key %s served meta %s", k, e.Meta)
					}
				default:
					v := make([]byte, 16+rng.Intn(512))
					ts.Put(k, fragstore.KeyedEntry{Value: v, Meta: k}, 0)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	st := ts.TierStats()
	if st.RAM.Bytes > 4<<10 {
		t.Fatalf("RAM budget exceeded at quiescence: %d", st.RAM.Bytes)
	}
	if st.Disk.Bytes > 16<<10 {
		t.Fatalf("disk budget exceeded at quiescence: %d", st.Disk.Bytes)
	}
	if used := ts.BudgetUsed(); used != st.RAM.Bytes+st.Disk.Bytes && st.RAM.Bytes >= 0 {
		// RAM BudgetUsed may include scratch (none reserved here), so it
		// must equal resident bytes exactly.
		t.Fatalf("ledger drift: BudgetUsed=%d resident=%d", used, st.RAM.Bytes+st.Disk.Bytes)
	}
	// Deleted keys must stay deleted: no transit resurrection.
	ts.Put("victim", fragstore.KeyedEntry{Value: make([]byte, 8<<10), Meta: "victim"}, 0)
	ts.Delete("victim")
	if _, ok := ts.Get("victim"); ok {
		t.Fatal("deleted key resurrected")
	}
}

// TestTieredWarmRestart: closing and reopening over the same heap file
// serves previously-demoted entries without any refill.
func TestTieredWarmRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "warm.heap")
	open := func() *fragstore.TieredKeyed {
		ts, err := fragstore.NewTieredKeyed(fragstore.TieredConfig{
			RAM:  fragstore.KeyedConfig{Shards: 1, ByteBudget: 32},
			Disk: diskstore.Config{Path: path},
		})
		if err != nil {
			t.Fatal(err)
		}
		return ts
	}
	ts := open()
	for i := 0; i < 20; i++ {
		ts.Put(fmt.Sprintf("k%d", i), fragstore.KeyedEntry{Value: bytes.Repeat([]byte{byte(i)}, 16), Meta: fmt.Sprintf("m%d", i)}, 0)
	}
	if ts.TierStats().Disk.Resident == 0 {
		t.Fatal("setup: nothing demoted")
	}
	// Close drains the RAM tier through to disk, so the WHOLE resident
	// set — including the hot RAM-tier entries — survives the restart.
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}

	ts2 := open()
	defer ts2.Close()
	st := ts2.TierStats()
	if st.Disk.RecoveredEntries != 20 {
		t.Fatalf("recovered %d, want all 20", st.Disk.RecoveredEntries)
	}
	for i := 0; i < 20; i++ {
		e, ok := ts2.Get(fmt.Sprintf("k%d", i))
		if !ok {
			t.Fatalf("k%d lost across restart", i)
		}
		if !bytes.Equal(e.Value, bytes.Repeat([]byte{byte(i)}, 16)) || e.Meta != fmt.Sprintf("m%d", i) {
			t.Fatalf("k%d corrupt after restart", i)
		}
	}
}

func TestTieredConfigValidation(t *testing.T) {
	base := fragstore.Config{Backend: fragstore.BackendTiered, Capacity: 16, DiskPath: "x.heap"}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid tiered config rejected: %v", err)
	}
	noPath := base
	noPath.DiskPath = ""
	if err := noPath.Validate(); err == nil {
		t.Fatal("tiered without DiskPath accepted")
	}
	badPage := base
	badPage.DiskPageBytes = 17
	if err := badPage.Validate(); err == nil {
		t.Fatal("bad page size accepted")
	}
	leak := fragstore.Config{Backend: fragstore.BackendSharded, Capacity: 16, DiskPath: "x.heap"}
	if err := leak.Validate(); err == nil {
		t.Fatal("disk options on sharded backend accepted")
	}
}
