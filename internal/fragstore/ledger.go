package fragstore

import "sync/atomic"

// ledger is a store-wide byte-budget account. Shards reserve bytes against
// it when content becomes resident and release them when content leaves;
// eviction is triggered by *global* pressure (used > budget), never by any
// per-shard partition. This is what lets a pathologically skewed key
// distribution fill one shard with the entire budget without evicting
// while the store as a whole still has headroom.
//
// The account is a single atomic: reserve/release are wait-free and safe
// to call with or without shard locks held. overBudget is a snapshot —
// concurrent writers may both observe pressure and both evict, so the
// store can transiently dip slightly below budget, but it can never settle
// above it: every byte that became resident was reserved before the
// writer's pressure check.
type ledger struct {
	budget int64        // 0 = unbounded
	used   atomic.Int64 // bytes currently reserved
}

// reserve accounts n more resident bytes (n may be negative when an
// overwrite shrinks an entry).
func (l *ledger) reserve(n int64) { l.used.Add(n) }

// release accounts n bytes leaving residency.
func (l *ledger) release(n int64) { l.used.Add(-n) }

// overBudget reports whether the store currently holds more bytes than the
// budget allows (always false when unbounded).
func (l *ledger) overBudget() bool {
	return l.budget > 0 && l.used.Load() > l.budget
}

// Used returns the bytes currently reserved.
func (l *ledger) Used() int64 { return l.used.Load() }
