package fragstore

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dpcache/internal/clock"
	"dpcache/internal/diskstore"
	"dpcache/internal/metrics"
)

// Keyed is the string-keyed store surface shared by *KeyedStore and
// *TieredKeyed, so cache tiers (pagecache, the static cache) can mount
// either a RAM-only store or a RAM+disk tiered one without changing
// their code.
type Keyed interface {
	Get(key string) (KeyedEntry, bool)
	GetKeep(key string) (KeyedEntry, bool)
	GetStale(key string) (entry KeyedEntry, age time.Duration, ok bool)
	Put(key string, entry KeyedEntry, ttl time.Duration)
	Delete(key string) bool
	DeleteFunc(pred func(key string) bool) int
	ReserveScratch(n int64)
	Flush()
	Len() int
	Bytes() int64
	BudgetUsed() int64
	Stats() KeyedStats
	AsFragmentStore(capacity int) (FragmentStore, error)
}

var (
	_ Keyed = (*KeyedStore)(nil)
	_ Keyed = (*TieredKeyed)(nil)
)

// TieredConfig parameterizes NewTieredKeyed.
type TieredConfig struct {
	// RAM configures the front tier. Its OnEvict must be nil (the tiered
	// store installs its own demotion hook) and it should carry a byte
	// budget or entry bound — an unbounded RAM tier never demotes.
	RAM KeyedConfig
	// Disk configures the heap-file tier (path required; its own byte
	// budget with LRU victim drop).
	Disk diskstore.Config
}

// TieredStats extends the aggregate KeyedStats view with per-tier
// detail and the cross-tier traffic counters.
type TieredStats struct {
	RAM  KeyedStats      `json:"ram"`
	Disk diskstore.Stats `json:"disk"`
	// DiskHits counts Gets served from the disk tier (also counted in
	// the aggregate Hits).
	DiskHits int64 `json:"disk_hits"`
	// Promotions counts disk hits moved back into RAM; Demotions counts
	// RAM evictions written to disk instead of dropped.
	Promotions int64 `json:"promotions"`
	Demotions  int64 `json:"demotions"`
}

// TieredKeyed is a two-tier Keyed store: a KeyedStore in RAM fronting a
// diskstore heap file. The global byte ledger of the RAM tier acts as
// the admission gate between tiers — eviction under ledger pressure
// *demotes* the victim to disk instead of dropping it, and a Get that
// misses RAM but hits disk *promotes* the entry back (removing it from
// disk, so the tiers stay exclusive and bytes are never double-
// resident). Entries too large for the RAM budget bypass it and land
// directly on disk. Deletes, flushes, and fabric invalidations apply to
// both tiers, and an in-flight transit handshake ensures a Delete
// racing a demotion or promotion always wins — a killed entry cannot
// resurface from the tier boundary.
//
// On construction the disk tier replays its heap file, so a restarted
// proxy reopening the same path serves warm from disk immediately.
type TieredKeyed struct {
	ram  *KeyedStore
	disk *diskstore.Store
	clk  clock.Clock

	mu      sync.Mutex
	transit map[string]*transit

	hits, misses, puts   atomic.Int64
	drops                atomic.Int64
	diskHits, promotions atomic.Int64
	demotions            atomic.Int64
}

// transit tracks one key crossing the tier boundary (demotion or
// promotion in flight). A concurrent Delete marks it killed; whoever
// finishes the crossing then re-deletes from both tiers, so the kill
// wins regardless of interleaving.
type transit struct {
	refs   int
	killed bool
}

// NewTieredKeyed opens the disk tier (replaying its heap file) and
// wires the RAM tier's eviction hook to demote into it.
func NewTieredKeyed(cfg TieredConfig) (*TieredKeyed, error) {
	if cfg.RAM.OnEvict != nil {
		return nil, fmt.Errorf("fragstore: tiered store owns the RAM tier's OnEvict hook")
	}
	if cfg.Disk.Clock == nil {
		cfg.Disk.Clock = cfg.RAM.Clock
	}
	clk := cfg.RAM.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	t := &TieredKeyed{clk: clk, transit: make(map[string]*transit)}
	cfg.RAM.OnEvict = t.demote
	ram, err := NewKeyed(cfg.RAM)
	if err != nil {
		return nil, err
	}
	disk, err := diskstore.Open(cfg.Disk)
	if err != nil {
		return nil, err
	}
	t.ram = ram
	t.disk = disk
	return t, nil
}

// enterTransit registers key as crossing the tier boundary.
func (t *TieredKeyed) enterTransit(key string) *transit {
	t.mu.Lock()
	f := t.transit[key]
	if f == nil {
		f = &transit{}
		t.transit[key] = f
	}
	f.refs++
	t.mu.Unlock()
	return f
}

// exitTransit completes a crossing; if a Delete arrived while the entry
// was mid-flight, it is applied now so the kill wins.
func (t *TieredKeyed) exitTransit(key string, f *transit) {
	t.mu.Lock()
	f.refs--
	killed := f.killed
	if f.refs == 0 {
		delete(t.transit, key)
	}
	t.mu.Unlock()
	if killed {
		t.ram.Delete(key)
		t.disk.Delete(key)
	}
}

// killTransit marks any in-flight crossing of key as deleted.
func (t *TieredKeyed) killTransit(key string) {
	t.mu.Lock()
	if f := t.transit[key]; f != nil {
		f.killed = true
	}
	t.mu.Unlock()
}

// killTransitsFunc marks every in-flight key matching pred. Keys are
// snapshotted first so pred runs without the transit lock held.
func (t *TieredKeyed) killTransitsFunc(pred func(string) bool) {
	t.mu.Lock()
	keys := make([]string, 0, len(t.transit))
	for k := range t.transit {
		keys = append(keys, k)
	}
	t.mu.Unlock()
	for _, k := range keys {
		if pred(k) {
			t.killTransit(k)
		}
	}
}

func (t *TieredKeyed) killAllTransits() {
	t.mu.Lock()
	for _, f := range t.transit {
		f.killed = true
	}
	t.mu.Unlock()
}

// demote is the RAM tier's OnEvict hook: the ledger victim is written
// to the disk tier instead of being dropped. Structured payloads (Obj)
// cannot be serialized and entries already past their deadline are not
// worth keeping, so both fall out here.
func (t *TieredKeyed) demote(key string, e KeyedEntry, deadline time.Time) {
	if e.Obj != nil {
		return
	}
	if !deadline.IsZero() && !t.clk.Now().Before(deadline) {
		return
	}
	f := t.enterTransit(key)
	if t.disk.Put(key, diskstore.Entry{Value: e.Value, Meta: e.Meta, Gen: uint64(e.Gen), Deadline: deadline}) {
		t.demotions.Add(1)
	}
	t.exitTransit(key, f)
}

// promote moves a disk hit back into RAM (exclusive tiers: the disk
// copy is removed first). Entries the RAM budget could never admit stay
// on disk — promoting them would bounce straight back out.
func (t *TieredKeyed) promote(key string, e diskstore.Entry) {
	ke := KeyedEntry{Value: e.Value, Meta: e.Meta, Gen: uint32(e.Gen)}
	if b := t.ram.cfg.ByteBudget; b > 0 && ke.size() > b {
		return
	}
	var ttl time.Duration
	if !e.Deadline.IsZero() {
		ttl = e.Deadline.Sub(t.clk.Now())
		if ttl <= 0 {
			return
		}
	}
	f := t.enterTransit(key)
	t.disk.Delete(key)
	t.ram.Put(key, ke, ttl)
	t.promotions.Add(1)
	t.exitTransit(key, f)
}

// Get returns the entry under key from either tier, promoting disk hits
// back into RAM.
func (t *TieredKeyed) Get(key string) (KeyedEntry, bool) {
	if e, ok := t.ram.Get(key); ok {
		t.hits.Add(1)
		return e, true
	}
	e, ok := t.disk.Get(key)
	if !ok {
		t.misses.Add(1)
		return KeyedEntry{}, false
	}
	t.hits.Add(1)
	t.diskHits.Add(1)
	ke := KeyedEntry{Value: e.Value, Meta: e.Meta, Gen: uint32(e.Gen)}
	t.promote(key, e)
	return ke, true
}

// GetKeep behaves like Get but leaves expired entries resident (in
// whichever tier holds them) for a later GetStale.
func (t *TieredKeyed) GetKeep(key string) (KeyedEntry, bool) {
	if e, ok := t.ram.GetKeep(key); ok {
		t.hits.Add(1)
		return e, true
	}
	if t.ramHoldsStale(key) {
		// Expired-but-kept in RAM: miss without consulting disk (the
		// tiers are exclusive; disk cannot hold a fresher copy).
		t.misses.Add(1)
		return KeyedEntry{}, false
	}
	e, ok := t.disk.Peek(key)
	if !ok {
		t.misses.Add(1)
		return KeyedEntry{}, false
	}
	if !e.Deadline.IsZero() && !t.clk.Now().Before(e.Deadline) {
		// Expired on disk: keep it for GetStale, miss here.
		t.misses.Add(1)
		return KeyedEntry{}, false
	}
	t.hits.Add(1)
	t.diskHits.Add(1)
	ke := KeyedEntry{Value: e.Value, Meta: e.Meta, Gen: uint32(e.Gen)}
	t.promote(key, e)
	return ke, true
}

// ramHoldsStale reports whether RAM holds key at all (GetKeep already
// said it isn't fresh).
func (t *TieredKeyed) ramHoldsStale(key string) bool {
	_, _, ok := t.ram.GetStale(key)
	return ok
}

// GetStale returns the entry under key even past its TTL, with its age
// (zero while fresh), from whichever tier holds it. Stale reads do not
// promote — the next fresh Get will.
func (t *TieredKeyed) GetStale(key string) (KeyedEntry, time.Duration, bool) {
	if e, age, ok := t.ram.GetStale(key); ok {
		return e, age, true
	}
	e, ok := t.disk.Peek(key)
	if !ok {
		return KeyedEntry{}, 0, false
	}
	var age time.Duration
	if !e.Deadline.IsZero() {
		if now := t.clk.Now(); now.After(e.Deadline) {
			age = now.Sub(e.Deadline)
		}
	}
	return KeyedEntry{Value: e.Value, Meta: e.Meta, Gen: uint32(e.Gen)}, age, true
}

// Put stores entry under key. The RAM tier admits it (possibly demoting
// colder entries to disk); entries its budget could never hold go
// straight to disk. Any stale disk copy is removed first so the tiers
// never hold two versions.
func (t *TieredKeyed) Put(key string, entry KeyedEntry, ttl time.Duration) {
	t.puts.Add(1)
	f := t.enterTransit(key)
	t.disk.Delete(key)
	if b := t.ram.cfg.ByteBudget; b > 0 && entry.Obj == nil && entry.size() > b {
		// Too large for the RAM ledger: admit directly to the disk tier
		// (the RAM store would refuse it outright).
		var deadline time.Time
		if ttl > 0 {
			deadline = t.clk.Now().Add(ttl)
		}
		cp := make([]byte, len(entry.Value))
		copy(cp, entry.Value)
		if t.disk.Put(key, diskstore.Entry{Value: cp, Meta: entry.Meta, Gen: uint64(entry.Gen), Deadline: deadline}) {
			t.demotions.Add(1)
		}
	} else {
		t.ram.Put(key, entry, ttl)
	}
	t.exitTransit(key, f)
}

// Delete removes key from both tiers and kills any in-flight crossing.
func (t *TieredKeyed) Delete(key string) bool {
	t.killTransit(key)
	r := t.ram.Delete(key)
	d := t.disk.Delete(key)
	if r || d {
		t.drops.Add(1)
		return true
	}
	return false
}

// DeleteFunc removes every key matching pred from both tiers.
func (t *TieredKeyed) DeleteFunc(pred func(key string) bool) int {
	t.killTransitsFunc(pred)
	n := t.ram.DeleteFunc(pred)
	n += t.disk.DeleteFunc(pred)
	t.drops.Add(int64(n))
	return n
}

// ReserveScratch charges transient bytes against the RAM ledger;
// resulting evictions demote as usual.
func (t *TieredKeyed) ReserveScratch(n int64) { t.ram.ReserveScratch(n) }

// Flush empties both tiers (and truncates the heap file).
func (t *TieredKeyed) Flush() {
	t.killAllTransits()
	t.drops.Add(int64(t.ram.Len() + t.disk.Len()))
	t.ram.Flush()
	t.disk.Flush()
}

// Len returns resident entries across both tiers.
func (t *TieredKeyed) Len() int { return t.ram.Len() + t.disk.Len() }

// Bytes returns resident bytes across both tiers.
func (t *TieredKeyed) Bytes() int64 { return t.ram.Bytes() + t.disk.Bytes() }

// BudgetUsed returns the RAM ledger reservation plus disk-resident
// bytes.
func (t *TieredKeyed) BudgetUsed() int64 { return t.ram.BudgetUsed() + t.disk.Bytes() }

// Stats returns the aggregate two-tier view: request-level counters
// (one Get is one hit or one miss, wherever it lands), summed
// occupancy, and eviction figures from the disk tier — the only place
// entries finally leave the store under pressure.
func (t *TieredKeyed) Stats() KeyedStats {
	rs := t.ram.Stats()
	ds := t.disk.Stats()
	return KeyedStats{
		Shards:       rs.Shards,
		Resident:     rs.Resident + ds.Resident,
		Bytes:        rs.Bytes + ds.Bytes,
		ByteBudget:   rs.ByteBudget + ds.ByteBudget,
		MaxEntries:   rs.MaxEntries,
		Puts:         t.puts.Load(),
		Hits:         t.hits.Load(),
		Misses:       t.misses.Load(),
		Drops:        t.drops.Load(),
		Expired:      rs.Expired + ds.Expired,
		Evictions:    ds.Evictions,
		EvictedBytes: ds.EvictedBytes,
	}
}

// TierStats returns the per-tier detail plus cross-tier traffic.
func (t *TieredKeyed) TierStats() TieredStats {
	return TieredStats{
		RAM:        t.ram.Stats(),
		Disk:       t.disk.Stats(),
		DiskHits:   t.diskHits.Load(),
		Promotions: t.promotions.Load(),
		Demotions:  t.demotions.Load(),
	}
}

// Close drains the RAM tier into the heap file, then flushes dirty
// pages and closes it. The write-through is what makes restarts warm:
// without it only previously-demoted entries would survive, and the
// hottest entries — promoted back to RAM, their disk copy reclaimed —
// would be exactly the ones lost. Entries the disk tier refuses
// (oversized, structured Obj payloads) are dropped as a plain eviction
// would have. Idempotent; a second Close finds an empty RAM tier.
func (t *TieredKeyed) Close() error {
	t.ram.Range(func(key string, e KeyedEntry, deadline time.Time) bool {
		t.ram.Delete(key)
		t.demote(key, e, deadline)
		return true
	})
	return t.disk.Close()
}

// AsFragmentStore adapts the tiered store to the FragmentStore contract,
// the same way KeyedStore.AsFragmentStore does.
func (t *TieredKeyed) AsFragmentStore(capacity int) (FragmentStore, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("fragstore: store capacity must be positive, got %d", capacity)
	}
	return &tieredFragmentView{t: t, capacity: capacity}, nil
}

// DiskTiered is implemented by stores backed by a disk tier; the proxy
// uses it to publish dpc.store.disk_* gauges and /_dpc/stats detail.
type DiskTiered interface {
	TierStats() TieredStats
}

// PublishDisk copies disk-tier stats into registry gauges under prefix
// (e.g. "dpc.store" → "dpc.store.disk_hits").
func PublishDisk(reg *metrics.Registry, prefix string, ts TieredStats) {
	if reg == nil {
		return
	}
	reg.Gauge(prefix + ".disk_hits").Set(ts.DiskHits)
	reg.Gauge(prefix + ".disk_promotions").Set(ts.Promotions)
	reg.Gauge(prefix + ".disk_demotions").Set(ts.Demotions)
	reg.Gauge(prefix + ".disk_resident").Set(int64(ts.Disk.Resident))
	reg.Gauge(prefix + ".disk_bytes").Set(ts.Disk.Bytes)
	reg.Gauge(prefix + ".disk_byte_budget").Set(ts.Disk.ByteBudget)
	reg.Gauge(prefix + ".disk_recovered_entries").Set(ts.Disk.RecoveredEntries)
	reg.Gauge(prefix + ".disk_checksum_discards").Set(ts.Disk.ChecksumDiscards)
}

type tieredFragmentView struct {
	t        *TieredKeyed
	capacity int
}

func (v *tieredFragmentView) Set(key, gen uint32, content []byte) error {
	if int64(key) >= int64(v.capacity) {
		return fmt.Errorf("fragstore: key %d outside store capacity %d", key, v.capacity)
	}
	v.t.Put(kfvKey(key), KeyedEntry{Value: content, Gen: gen}, 0)
	return nil
}

func (v *tieredFragmentView) Get(key, gen uint32, strict bool) ([]byte, bool) {
	if int64(key) >= int64(v.capacity) {
		v.t.misses.Add(1)
		return nil, false
	}
	e, ok := v.t.Get(kfvKey(key))
	if !ok || (strict && e.Gen != gen) {
		return nil, false
	}
	return e.Value, true
}

func (v *tieredFragmentView) Drop(key uint32) {
	if int64(key) >= int64(v.capacity) {
		return
	}
	v.t.Delete(kfvKey(key))
}

func (v *tieredFragmentView) DropAll() { v.t.Flush() }

func (v *tieredFragmentView) Capacity() int { return v.capacity }

func (v *tieredFragmentView) Bytes() int64 { return v.t.Bytes() }

func (v *tieredFragmentView) Resident() int { return v.t.Len() }

func (v *tieredFragmentView) Stats() Stats {
	ks := v.t.Stats()
	return Stats{
		Backend:      BackendTiered,
		Shards:       ks.Shards,
		Capacity:     v.capacity,
		Resident:     ks.Resident,
		Bytes:        ks.Bytes,
		ByteBudget:   ks.ByteBudget,
		Sets:         ks.Puts,
		Hits:         ks.Hits,
		Misses:       ks.Misses,
		Drops:        ks.Drops,
		Evictions:    ks.Evictions,
		EvictedBytes: ks.EvictedBytes,
	}
}

// TierStats exposes the disk-tier detail through the fragment adapter.
func (v *tieredFragmentView) TierStats() TieredStats { return v.t.TierStats() }

// Close closes the underlying tiered store.
func (v *tieredFragmentView) Close() error { return v.t.Close() }
