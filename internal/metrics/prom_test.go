package metrics

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestPromName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"dpc.page.hits", "dpc_page_hits"},
		{"dpc.stage.origin-fetch.latency", "dpc_stage_origin_fetch_latency"},
		{"already_fine", "already_fine"},
		{"9lives", "_9lives"},
	} {
		if got := PromName(tc.in); got != tc.want {
			t.Errorf("PromName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestWritePrometheusScalars(t *testing.T) {
	r := NewRegistry()
	r.Counter("dpc.requests").Add(7)
	r.Gauge("dpc.cache.bytes").Set(4096)
	var b strings.Builder
	err := WritePrometheus(&b, r, []ExpositionMetric{
		{Name: "dpc.requests", Type: "counter", Help: "Total requests."},
		{Name: "dpc.cache.bytes", Type: "gauge", Help: "Bytes held."},
		{Name: "dpc.never.touched", Type: "counter", Help: "Still exposed."},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP dpc_requests Total requests.\n",
		"# TYPE dpc_requests counter\n",
		"dpc_requests 7\n",
		"# TYPE dpc_cache_bytes gauge\n",
		"dpc_cache_bytes 4096\n",
		"dpc_never_touched 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dpc.latency")
	h.Observe(500 * time.Microsecond) // falls in the 512µs bucket
	h.Observe(3 * time.Millisecond)
	h.Observe(30 * time.Second) // overflow past the 16s top bound
	var b strings.Builder
	if err := WritePrometheus(&b, r, []ExpositionMetric{
		{Name: "dpc.latency", Type: "histogram", Help: "End-to-end latency."},
	}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# TYPE dpc_latency histogram\n") {
		t.Fatalf("missing TYPE line:\n%s", out)
	}
	// Buckets are cumulative: the top bound (2^23 µs = 8.388608s) has
	// seen 2 of 3 observations, +Inf all 3.
	for _, want := range []string{
		`dpc_latency_bucket{le="8.388608"} 2` + "\n",
		`dpc_latency_bucket{le="+Inf"} 3` + "\n",
		"dpc_latency_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "dpc_latency_sum 30.0035\n") {
		t.Errorf("unexpected _sum line:\n%s", out)
	}
	// Cumulative counts never decrease across bucket lines.
	var last int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "dpc_latency_bucket") {
			continue
		}
		fields := strings.Fields(line)
		n, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		last = n
	}
}

func TestWritePrometheusUnknownType(t *testing.T) {
	r := NewRegistry()
	err := WritePrometheus(&strings.Builder{}, r, []ExpositionMetric{
		{Name: "dpc.x", Type: "summary"},
	})
	if err == nil {
		t.Fatal("unknown exposition type accepted")
	}
}

func TestBucketsSnapshotIsCopy(t *testing.T) {
	h := NewHistogram(time.Millisecond, 8*time.Millisecond)
	h.Observe(2 * time.Millisecond)
	b := h.Buckets()
	if b.Total != 1 || b.Sum != 2*time.Millisecond {
		t.Fatalf("snapshot = %+v", b)
	}
	b.Counts[0] = 99
	if h.Buckets().Counts[0] == 99 {
		t.Fatal("Buckets returned live slice, not a copy")
	}
}
